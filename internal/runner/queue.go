package runner

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueClosed is returned by Submit once Close or Drain has been
// called: the queue no longer accepts work (the daemon is shutting down).
var ErrQueueClosed = errors.New("runner: queue closed")

// Queue is the job-scheduling layer of the sweep engine: a long-lived
// bounded worker pool that accepts work over time instead of draining one
// fixed plan. Map and MapKeyed fan a known point list out and return; a
// Queue is what a daemon schedules *jobs* on — each job typically being a
// whole plan executed through Map/MapKeyed on its own inner pool.
//
// Jobs run in submission order (FIFO) on a fixed number of workers.
// Cancellation is cooperative and two-level: every job carries a
// context, and the worker hands it to the job function unexamined — a
// job canceled while still queued gets to observe ctx.Err() itself and
// record whatever terminal state its owner expects, rather than silently
// vanishing from the queue.
type Queue struct {
	// OnStart, when non-nil, is called on the worker goroutine each time
	// it picks a job up, with how long the job sat pending — the queue-
	// wait observation the daemon's latency histograms want, measured by
	// the component that actually owns the wait. Set it before the first
	// Submit; it must not block.
	OnStart func(waited time.Duration)

	mu      sync.Mutex
	cond    *sync.Cond // signals: work queued, or closed
	idle    *sync.Cond // signals: a worker finished a job (for Drain)
	pending []queuedJob
	active  int
	closed  bool
}

// queuedJob is one submitted unit: the job function, its context, and
// when it entered the queue.
type queuedJob struct {
	ctx      context.Context
	fn       func(context.Context)
	enqueued time.Time
}

// NewQueue starts a queue with the given number of workers (minimum 1).
// The workers live until Close/Drain.
func NewQueue(workers int) *Queue {
	if workers < 1 {
		workers = 1
	}
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	q.idle = sync.NewCond(&q.mu)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit enqueues fn to run on a worker with ctx. It returns
// ErrQueueClosed after Close/Drain; it never blocks on queue depth (the
// queue is bounded by worker count, not by admission — admission control
// is the caller's policy).
func (q *Queue) Submit(ctx context.Context, fn func(context.Context)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.pending = append(q.pending, queuedJob{ctx: ctx, fn: fn, enqueued: time.Now()})
	q.cond.Signal()
	return nil
}

// Len returns the number of jobs waiting (not yet picked up by a worker).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Active returns the number of jobs currently executing.
func (q *Queue) Active() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active
}

// Drain closes the queue to new submissions and waits until every
// already-accepted job — queued or executing — has finished, or ctx
// expires (context.Cause error returned; the jobs keep running). Calling
// Drain twice is fine; the second call just waits.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	// Waking the cond-wait from a context is done with a watcher: when ctx
	// fires it broadcasts so the loop below can re-check.
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.idle.Broadcast()
		q.mu.Unlock()
	})
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending) > 0 || q.active > 0 {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		q.idle.Wait()
	}
	return nil
}

// Close is Drain with no deadline.
func (q *Queue) Close() { _ = q.Drain(context.Background()) }

// worker pops jobs FIFO until the queue is closed and empty.
func (q *Queue) worker() {
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 { // closed and drained
			q.mu.Unlock()
			return
		}
		job := q.pending[0]
		q.pending = q.pending[1:]
		q.active++
		onStart := q.OnStart
		q.mu.Unlock()

		if onStart != nil {
			onStart(time.Since(job.enqueued))
		}
		job.fn(job.ctx)

		q.mu.Lock()
		q.active--
		q.idle.Broadcast()
		q.mu.Unlock()
	}
}
