// Package runner is the experiment sweep engine: it fans a plan's points
// out over a bounded worker pool, memoizes points that share a key so
// redundant work (notably the no-DRAM-cache baseline every speedup divides
// by) executes exactly once, and hands results back in plan order so
// concurrent execution is indistinguishable from a serial loop.
//
// The engine is deliberately generic — it knows nothing about simulations.
// Determinism is the caller's contract: fn must be a pure function of its
// point (every simulation Run is, for a fixed Seed), and then the returned
// slice is bit-identical no matter the worker count or scheduling order.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Options configures one sweep execution.
type Options struct {
	// Jobs is the worker-pool size. Zero or negative selects
	// runtime.GOMAXPROCS(0) — one worker per schedulable CPU.
	Jobs int
	// Progress, when non-nil, receives a carriage-return-prefixed status
	// line after every completed job and a trailing newline at the end
	// (pass os.Stderr to get a live "runner: 12/84 jobs" ticker).
	Progress io.Writer
}

func (o Options) jobs() int {
	if o.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Jobs
}

// Map runs fn over every point concurrently and returns the results in
// point order. If any point fails, Map returns the error of the failing
// point with the smallest index among those that ran, and stops handing
// out further work (in-flight points finish).
func Map[T, R any](points []T, fn func(T) (R, error), opt Options) ([]R, error) {
	jobs := make([]job[T], len(points))
	for i, p := range points {
		jobs[i] = job[T]{point: p, out: []int{i}}
	}
	return execute(jobs, len(points), fn, opt)
}

// MapKeyed is Map with memoization: points whose keys compare equal
// execute fn exactly once — on the first point carrying the key — and
// every such point receives the shared result. Result order is still
// point order.
func MapKeyed[T any, K comparable, R any](points []T, key func(T) K, fn func(T) (R, error), opt Options) ([]R, error) {
	index := make(map[K]int)
	var jobs []job[T]
	for i, p := range points {
		k := key(p)
		j, ok := index[k]
		if !ok {
			j = len(jobs)
			index[k] = j
			jobs = append(jobs, job[T]{point: p})
		}
		jobs[j].out = append(jobs[j].out, i)
	}
	return execute(jobs, len(points), fn, opt)
}

// Refine is the adaptive-plan primitive CI-target sweeps are built on:
// run executes a whole batch of points (fanning out over its own worker
// pool, memoizing as it likes), then grow inspects each point/result
// pair and may hand back a replacement point — typically the same
// configuration with a larger budget — to re-execute; only the
// unsatisfied subset re-runs, for at most rounds refinement rounds.
// Results stay in point order, satisfied points keep their earlier
// results untouched, and determinism is inherited from run and grow
// being pure — the refined plan a point walks is a function of nothing
// but the point list.
func Refine[T, R any](points []T, run func([]T) ([]R, error), grow func(T, R) (T, bool), rounds int) ([]R, error) {
	current := make([]T, len(points))
	copy(current, points)
	results, err := run(current)
	if err != nil {
		return nil, err
	}
	for round := 0; round < rounds; round++ {
		var idx []int
		for i := range current {
			if next, again := grow(current[i], results[i]); again {
				current[i] = next
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			break
		}
		subset := make([]T, len(idx))
		for j, i := range idx {
			subset[j] = current[i]
		}
		refined, err := run(subset)
		if err != nil {
			return nil, err
		}
		for j, i := range idx {
			results[i] = refined[j]
		}
	}
	return results, nil
}

// job is one unit of work and the point indices that share its result.
type job[T any] struct {
	point T
	out   []int
}

// execute drains the job list through the worker pool and scatters each
// job's result to the point indices that share it.
func execute[T, R any](jobs []job[T], points int, fn func(T) (R, error), opt Options) ([]R, error) {
	results := make([]R, points)
	perJob := make([]R, len(jobs))
	errs := make([]error, len(jobs))

	var (
		mu     sync.Mutex
		done   int
		failed bool
	)
	next := make(chan int)
	go func() {
		defer close(next)
		for j := range jobs {
			mu.Lock()
			bail := failed
			mu.Unlock()
			if bail {
				return
			}
			next <- j
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < opt.jobs(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				r, err := fn(jobs[j].point)
				mu.Lock()
				perJob[j], errs[j] = r, err
				if err != nil {
					failed = true
				}
				done++
				if opt.Progress != nil {
					fmt.Fprintf(opt.Progress, "\rrunner: %d/%d jobs", done, len(jobs))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if opt.Progress != nil {
		fmt.Fprintln(opt.Progress)
	}

	// Report the failure whose first point index is smallest, so the
	// error matches what a serial loop would have hit first.
	firstErr, firstIdx := error(nil), points
	for j, err := range errs {
		if err != nil && jobs[j].out[0] < firstIdx {
			firstErr, firstIdx = err, jobs[j].out[0]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for j := range jobs {
		for _, i := range jobs[j].out {
			results[i] = perJob[j]
		}
	}
	return results, nil
}
