package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapPlanOrder checks results come back in point order regardless of
// worker count, with completion order deliberately scrambled by making
// early points slow.
func TestMapPlanOrder(t *testing.T) {
	points := make([]int, 64)
	for i := range points {
		points[i] = i
	}
	fn := func(p int) (int, error) {
		// Earlier points sleep longer, so they finish last.
		time.Sleep(time.Duration(len(points)-p) * 50 * time.Microsecond)
		return p * p, nil
	}
	for _, jobs := range []int{1, 2, 8, 0} {
		got, err := Map(points, fn, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("Jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestMapMatchesSerial checks the parallel engine is bit-identical to a
// plain serial loop over the same pure function.
func TestMapMatchesSerial(t *testing.T) {
	points := make([]uint64, 100)
	for i := range points {
		points[i] = uint64(i)
	}
	fn := func(p uint64) (uint64, error) {
		// A deterministic hash stands in for a simulation.
		v := p
		for i := 0; i < 1000; i++ {
			v = v*6364136223846793005 + 1442695040888963407
		}
		return v, nil
	}
	want := make([]uint64, len(points))
	for i, p := range points {
		want[i], _ = fn(p)
	}
	got, err := Map(points, fn, Options{Jobs: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestMapFullFanOut pins the contract time-parallel replay builds on:
// with Jobs == len(points) every point is in flight simultaneously — no
// hidden throttle — and results still land in point order. Each worker
// blocks on a barrier that only opens once all of them have started, so
// any throttling would deadlock (caught by the watchdog) instead of
// silently serializing the segments.
func TestMapFullFanOut(t *testing.T) {
	const n = 9
	points := make([]int, n)
	for i := range points {
		points[i] = i
	}
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err := Map(points, func(p int) (int, error) {
			if started.Add(1) == n {
				close(release)
			}
			<-release
			return p + 100, nil
		}, Options{Jobs: n})
		if err != nil {
			t.Error(err)
			return
		}
		for i, v := range got {
			if v != i+100 {
				t.Errorf("result[%d] = %d, want %d", i, v, i+100)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("Map throttled below Jobs=%d: only %d points started", n, started.Load())
	}
}

// TestMapKeyedMemoization checks points sharing a key execute exactly
// once and all receive the shared result — the baseline-dedup contract.
func TestMapKeyedMemoization(t *testing.T) {
	points := make([]int, 40)
	for i := range points {
		points[i] = i
	}
	var calls atomic.Int64
	got, err := MapKeyed(points, func(p int) int { return p % 5 }, func(p int) (int, error) {
		calls.Add(1)
		return (p % 5) * 100, nil
	}, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 5 {
		t.Fatalf("fn ran %d times, want 5 (one per unique key)", n)
	}
	for i, v := range got {
		if v != (i%5)*100 {
			t.Fatalf("result[%d] = %d, want %d", i, v, (i%5)*100)
		}
	}
}

// TestMapKeyedRunsFirstPoint checks the memoized execution uses the first
// point carrying the key, so which duplicate "wins" is deterministic.
func TestMapKeyedRunsFirstPoint(t *testing.T) {
	points := []string{"a0", "b0", "a1", "b1", "a2"}
	got, err := MapKeyed(points,
		func(p string) string { return p[:1] },
		func(p string) (string, error) { return p, nil },
		Options{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a0", "b0", "a0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMapErrorPropagation checks a failing point surfaces its error and
// that the reported failure is the serially-first one when several fail.
func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(points, func(p int) (int, error) {
		if p == 3 {
			return 0, fmt.Errorf("point %d: %w", p, boom)
		}
		return p, nil
	}, Options{Jobs: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}

	// All points fail: Jobs=1 guarantees every job runs in order, so the
	// reported error must be point 0's.
	_, err = Map(points, func(p int) (int, error) {
		return 0, fmt.Errorf("point %d failed", p)
	}, Options{Jobs: 1})
	if err == nil || err.Error() != "point 0 failed" {
		t.Fatalf("err = %v, want point 0's error", err)
	}
}

// TestMapProgress checks the progress writer sees every completion and a
// final count.
func TestMapProgress(t *testing.T) {
	var sb strings.Builder
	points := []int{1, 2, 3}
	_, err := Map(points, func(p int) (int, error) { return p, nil }, Options{Jobs: 2, Progress: &sb})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "runner: 3/3 jobs") {
		t.Fatalf("progress output %q missing final count", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("progress output %q missing trailing newline", out)
	}
}

// TestMapEmpty checks the zero-point plan is a no-op, not a hang.
func TestMapEmpty(t *testing.T) {
	got, err := Map(nil, func(p int) (int, error) { return p, nil }, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}
