package runner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueRunsJobsFIFO: one worker executes submissions in order.
func TestQueueRunsJobsFIFO(t *testing.T) {
	q := NewQueue(1)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		if err := q.Submit(context.Background(), func(context.Context) {
			defer wg.Done()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	wg.Wait()
	q.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want 0..7 in submission order", order)
		}
	}
}

// TestQueueBoundedConcurrency: with 2 workers, at most 2 jobs run at once
// even with many queued.
func TestQueueBoundedConcurrency(t *testing.T) {
	q := NewQueue(2)
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		if err := q.Submit(context.Background(), func(context.Context) {
			defer wg.Done()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	q.Close()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d, want <= 2", got)
	}
}

// TestQueueCanceledWhileQueued: a job whose context is canceled before a
// worker reaches it still runs, and observes the cancellation — the
// owner's chance to record a terminal "canceled" state.
func TestQueueCanceledWhileQueued(t *testing.T) {
	q := NewQueue(1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	if err := q.Submit(context.Background(), func(context.Context) {
		defer wg.Done()
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var sawCancel atomic.Bool
	if err := q.Submit(ctx, func(ctx context.Context) {
		defer wg.Done()
		sawCancel.Store(ctx.Err() != nil)
	}); err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	wg.Wait()
	q.Close()
	if !sawCancel.Load() {
		t.Fatal("second job did not observe its queued-time cancellation")
	}
}

// TestQueueDrain: Drain rejects new work, waits for queued + running jobs,
// and a deadline-limited Drain gives up without losing them.
func TestQueueDrain(t *testing.T) {
	q := NewQueue(1)
	release := make(chan struct{})
	var ran atomic.Int32
	for i := 0; i < 3; i++ {
		if err := q.Submit(context.Background(), func(context.Context) {
			<-release
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A deadline Drain while jobs are blocked: times out, jobs unharmed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil while jobs were still blocked")
	}
	if err := q.Submit(context.Background(), func(context.Context) {}); err != ErrQueueClosed {
		t.Fatalf("Submit after Drain = %v, want ErrQueueClosed", err)
	}

	close(release)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d jobs, want all 3 accepted before Drain", got)
	}
	if q.Len() != 0 || q.Active() != 0 {
		t.Fatalf("queue not empty after Drain: len=%d active=%d", q.Len(), q.Active())
	}
}
