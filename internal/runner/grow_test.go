package runner

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestRefineRounds: unsatisfied points re-run with grown budgets, bounded
// by the round cap, and results come back in point order.
func TestRefineRounds(t *testing.T) {
	type pt struct{ id, budget int }
	points := []pt{{0, 1}, {1, 8}, {2, 2}}
	run := func(ps []pt) ([]int, error) {
		out := make([]int, len(ps))
		for i, p := range ps {
			out[i] = p.budget
		}
		return out, nil
	}
	grow := func(p pt, r int) (pt, bool) {
		if r >= 8 {
			return p, false
		}
		p.budget *= 2
		return p, true
	}
	got, err := Refine(points, run, grow, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{8, 8, 8} {
		if got[i] != want {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want)
		}
	}
	// A tight round cap stops refinement early.
	capped, err := Refine(points, run, grow, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{2, 8, 4} {
		if capped[i] != want {
			t.Fatalf("capped result[%d] = %d, want %d", i, capped[i], want)
		}
	}
}

// TestRefineOnlyUnsatisfiedRerun: satisfied points never re-execute and
// keep their first-round results.
func TestRefineOnlyUnsatisfiedRerun(t *testing.T) {
	var batches atomic.Int64
	var executed atomic.Int64
	points := []int{10, 1, 10, 2}
	run := func(ps []int) ([]int, error) {
		batches.Add(1)
		executed.Add(int64(len(ps)))
		out := make([]int, len(ps))
		for i, p := range ps {
			out[i] = p
		}
		return out, nil
	}
	grow := func(p, r int) (int, bool) {
		if r >= 4 {
			return p, false
		}
		return p * 2, true
	}
	got, err := Refine(points, run, grow, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 4, 10, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Round 1: all 4. Round 2: points 1 and 3 (now 2 and 4). Round 3:
	// point 1 only (now 4). Round 4: none.
	if b, e := batches.Load(), executed.Load(); b != 3 || e != 7 {
		t.Fatalf("ran %d batches / %d point-executions, want 3 / 7", b, e)
	}
}

// TestRefinePropagatesError: a failing refinement round surfaces its
// error.
func TestRefinePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	run := func(ps []int) ([]int, error) {
		calls++
		if calls == 2 {
			return nil, boom
		}
		return ps, nil
	}
	grow := func(p, r int) (int, bool) { return p + 1, p < 5 }
	if _, err := Refine([]int{1}, run, grow, 3); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestRefineZeroRounds reduces to a single batch run.
func TestRefineZeroRounds(t *testing.T) {
	run := func(ps []int) ([]int, error) { return ps, nil }
	grow := func(p, r int) (int, bool) { return p * 10, true } // would always grow
	got, err := Refine([]int{3, 4}, run, grow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("got %v, want [3 4]", got)
	}
}
