// Package cache implements the on-chip SRAM caches of the baseline system
// (Table III): per-core L1 data caches and the shared L2. The model is a
// set-associative, write-back, write-allocate cache with true-LRU
// replacement, tracking tags only — simulated data never exists, which is
// what makes 10^8-access runs practical.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one SRAM cache level.
type Config struct {
	Name string
	// SizeBytes is the total data capacity; it must be a power-of-two
	// multiple of the 64 B block.
	SizeBytes int
	Ways      int
	// Latency is the load-to-use latency in CPU cycles.
	Latency uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: size and ways must be positive", c.Name)
	}
	blocks := c.SizeBytes / 64
	if blocks*64 != c.SizeBytes || blocks%c.Ways != 0 {
		return fmt.Errorf("cache %q: size %d not divisible into %d-way sets of 64B blocks", c.Name, c.SizeBytes, c.Ways)
	}
	sets := blocks / c.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Writebacks uint64
}

// Misses returns Accesses - Hits.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// HitRatio returns Hits/Accesses. With zero accesses observed — an idle
// cache, or a telemetry epoch in which no request reached this level —
// the ratio is defined as 0, not NaN, so it can be aggregated and
// serialized without poisoning downstream arithmetic.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// HitRate returns the hit fraction (alias of HitRatio).
func (s Stats) HitRate() float64 { return s.HitRatio() }

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

const (
	stateInvalid uint8 = iota
	stateClean
	stateDirty
)

// tagInvalid is the tag stored in invalid ways. Block numbers are physical
// byte addresses divided by 64, so no reachable block ever equals it; the
// hit loop can then compare tags alone without consulting the state array.
const tagInvalid = ^uint64(0)

// Cache is one SRAM cache level. Not safe for concurrent use.
type Cache struct {
	cfg     Config
	sets    uint64
	setMask uint64
	ways    int
	// tags, state, lru and order are sets*ways flat arrays; way w of set s
	// lives at index s*ways+w. Invalid ways hold tagInvalid. lru holds
	// recency ranks (0 = MRU, ways-1 = LRU) and order is its inverse —
	// order[s*ways+r] is the way holding rank r — so the MRU probe and
	// LRU victim choice are both O(1) lookups instead of scans.
	tags  []uint64
	state []uint8
	lru   []uint8
	order []uint8
	// fill counts each set's valid ways. Ways fill in index order and are
	// never invalidated, so ways [0, fill) are valid and fill is the next
	// invalid way — victim selection scans nothing until the set is full.
	fill  []uint8
	stats Stats
	// packed caches (ways <= 8) keep each set's rank-ordered way list in
	// one uint64 of orderW — byte r is the way holding rank r — so LRU
	// promotion is a handful of ALU ops instead of two array rewrites.
	// packed16 caches (8 < ways <= 16, the L2 shape) split the list across
	// orderW (ranks 0-7) and orderHi (ranks 8-15). The lru/order byte
	// arrays stay allocated as the checkpoint wire format and are
	// materialized from the rank words on demand (syncLRUArrays).
	packed   bool
	packed16 bool
	orderW   []uint64
	orderHi  []uint64
}

// initOrderWord is a fresh set's packed rank word: byte r holds way r
// (initOrderHi covers ranks 8-15). Bytes at ranks >= ways never change and
// hold values >= ways, so they can never alias a real way in the promote
// byte search.
const (
	initOrderWord = 0x0706050403020100
	initOrderHi   = 0x0f0e0d0c0b0a0908
)

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := uint64(cfg.SizeBytes / 64 / cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: sets - 1,
		ways:    cfg.Ways,
		tags:    make([]uint64, sets*uint64(cfg.Ways)),
		state:   make([]uint8, sets*uint64(cfg.Ways)),
		lru:     make([]uint8, sets*uint64(cfg.Ways)),
		order:   make([]uint8, sets*uint64(cfg.Ways)),
		fill:    make([]uint8, sets),
	}
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
	for s := uint64(0); s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.lru[s*uint64(cfg.Ways)+uint64(w)] = uint8(w)
			c.order[s*uint64(cfg.Ways)+uint64(w)] = uint8(w)
		}
	}
	if cfg.Ways <= 8 {
		c.packed = true
		c.orderW = make([]uint64, sets)
		for s := range c.orderW {
			c.orderW[s] = initOrderWord
		}
	} else if cfg.Ways <= 16 {
		c.packed16 = true
		c.orderW = make([]uint64, sets)
		c.orderHi = make([]uint64, sets)
		for s := range c.orderW {
			c.orderW[s] = initOrderWord
			c.orderHi[s] = initOrderHi
		}
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency in CPU cycles.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, leaving content warm.
func (c *Cache) ResetStats() { c.stats.Reset() }

// Result reports the outcome of an Access.
type Result struct {
	Hit bool
	// Writeback is set when the allocation evicted a dirty block, whose
	// block number is WritebackBlock; the caller forwards it down the
	// hierarchy.
	Writeback      bool
	WritebackBlock uint64
}

// Access looks up the block (a block number, not a byte address), allocates
// on miss and applies LRU promotion. write marks the block dirty.
func (c *Cache) Access(block uint64, write bool) Result {
	if c.packed {
		return c.accessPacked(block, write)
	}
	if c.packed16 {
		return c.accessPacked16(block, write)
	}
	c.stats.Accesses++
	set := block & c.setMask
	base := set * uint64(c.ways)
	// Fast path: re-touching the set's MRU way. No promotion needed, and
	// block-repeat locality makes this the most common cache event.
	if m := base + uint64(c.order[base]); c.tags[m] == block {
		c.stats.Hits++
		if write {
			c.state[m] = stateDirty
		}
		return Result{Hit: true}
	}
	// Lookup: invalid ways hold tagInvalid, so one compare per way
	// suffices. The subslice lets the compiler drop per-way bounds checks.
	for w, tag := range c.tags[base : base+uint64(c.ways)] {
		if tag == block {
			i := base + uint64(w)
			c.stats.Hits++
			if write {
				c.state[i] = stateDirty
			}
			c.promote(base, uint64(w))
			return Result{Hit: true}
		}
	}
	// Miss: fill the next invalid way while the set has one (ways fill in
	// index order — exactly the way the original invalid-preferring scan
	// chose), else evict the way holding the LRU rank.
	var victim uint64
	if f := c.fill[set]; int(f) < c.ways {
		victim = uint64(f)
		c.fill[set] = f + 1
	} else {
		victim = uint64(c.order[base+uint64(c.ways-1)])
	}
	i := base + victim
	res := Result{}
	if c.state[i] == stateDirty {
		res.Writeback = true
		res.WritebackBlock = c.tags[i]
		c.stats.Writebacks++
	}
	c.tags[i] = block
	if write {
		c.state[i] = stateDirty
	} else {
		c.state[i] = stateClean
	}
	c.promote(base, victim)
	return res
}

// accessPacked is Access for packed caches: identical outcomes, with the
// set's LRU state read and rewritten as a single rank word.
func (c *Cache) accessPacked(block uint64, write bool) Result {
	c.stats.Accesses++
	set := block & c.setMask
	base := set * uint64(c.ways)
	ow := c.orderW[set]
	// Fast path: re-touching the set's MRU way (rank word byte 0).
	if m := base + ow&0xff; c.tags[m] == block {
		c.stats.Hits++
		if write {
			c.state[m] = stateDirty
		}
		return Result{Hit: true}
	}
	for w, tag := range c.tags[base : base+uint64(c.ways)] {
		if tag == block {
			i := base + uint64(w)
			c.stats.Hits++
			if write {
				c.state[i] = stateDirty
			}
			c.orderW[set] = promoteWord(ow, uint64(w))
			return Result{Hit: true}
		}
	}
	var victim uint64
	if f := c.fill[set]; int(f) < c.ways {
		victim = uint64(f)
		c.fill[set] = f + 1
	} else {
		victim = ow >> (8 * uint(c.ways-1)) & 0xff
	}
	i := base + victim
	res := Result{}
	if c.state[i] == stateDirty {
		res.Writeback = true
		res.WritebackBlock = c.tags[i]
		c.stats.Writebacks++
	}
	c.tags[i] = block
	if write {
		c.state[i] = stateDirty
	} else {
		c.state[i] = stateClean
	}
	c.orderW[set] = promoteWord(ow, victim)
	return res
}

// accessPacked16 is Access for two-word packed caches: identical outcomes,
// with the set's LRU state split across a low (ranks 0-7) and a high
// (ranks 8-15) rank word.
func (c *Cache) accessPacked16(block uint64, write bool) Result {
	c.stats.Accesses++
	set := block & c.setMask
	base := set * uint64(c.ways)
	lo := c.orderW[set]
	// Fast path: re-touching the set's MRU way (low rank word byte 0).
	if m := base + lo&0xff; c.tags[m] == block {
		c.stats.Hits++
		if write {
			c.state[m] = stateDirty
		}
		return Result{Hit: true}
	}
	for w, tag := range c.tags[base : base+uint64(c.ways)] {
		if tag == block {
			i := base + uint64(w)
			c.stats.Hits++
			if write {
				c.state[i] = stateDirty
			}
			c.promoteWord16(set, lo, uint64(w))
			return Result{Hit: true}
		}
	}
	var victim uint64
	if f := c.fill[set]; int(f) < c.ways {
		victim = uint64(f)
		c.fill[set] = f + 1
	} else {
		victim = c.orderHi[set] >> (8 * uint(c.ways-9)) & 0xff
	}
	i := base + victim
	res := Result{}
	if c.state[i] == stateDirty {
		res.Writeback = true
		res.WritebackBlock = c.tags[i]
		c.stats.Writebacks++
	}
	c.tags[i] = block
	if write {
		c.state[i] = stateDirty
	} else {
		c.state[i] = stateClean
	}
	c.promoteWord16(set, lo, victim)
	return res
}

// promoteWord16 makes way the MRU of a two-word rank list. When way sits
// in the low word the move is promoteWord on that word alone; when it sits
// in the high word, the low word shifts up wholesale (its rank-7 byte
// spilling into the high word's rank-8 slot) and the high bytes below
// way's old rank slide up one.
func (c *Cache) promoteWord16(set uint64, lo, way uint64) {
	x := lo ^ way*lruOnes
	if z := (x - lruOnes) &^ x & lruHighs; z != 0 {
		p := uint(bits.TrailingZeros64(z)) &^ 7
		below := lo & (uint64(1)<<p - 1)
		c.orderW[set] = lo&^(uint64(1)<<(p+8)-1) | below<<8 | way
		return
	}
	hi := c.orderHi[set]
	x = hi ^ way*lruOnes
	p := uint(bits.TrailingZeros64((x-lruOnes)&^x&lruHighs)) &^ 7
	below := hi & (uint64(1)<<p - 1)
	c.orderHi[set] = hi&^(uint64(1)<<(p+8)-1) | below<<8 | lo>>56
	c.orderW[set] = lo<<8 | way
}

// lruOnes has the low bit of every byte set; lruHighs the high bit.
const (
	lruOnes  = 0x0101010101010101
	lruHighs = 0x8080808080808080
)

// promoteWord makes way the MRU of the packed rank word: its byte moves to
// rank 0 and the bytes below its old rank slide up one. The byte holding
// way is found with the zero-byte trick on ow XOR broadcast(way); borrows
// in the subtraction can only corrupt detection above the lowest zero
// byte, and the lowest match is the only match (ranks are a permutation
// and unused high bytes hold values >= ways), so TrailingZeros is exact.
func promoteWord(ow, way uint64) uint64 {
	x := ow ^ way*lruOnes
	p := uint(bits.TrailingZeros64((x-lruOnes)&^x&lruHighs)) &^ 7
	below := ow & (uint64(1)<<p - 1)
	return ow&^(uint64(1)<<(p+8)-1) | below<<8 | way
}

// Contains reports whether the block is present (no LRU side effects).
func (c *Cache) Contains(block uint64) bool {
	set := block & c.setMask
	base := set * uint64(c.ways)
	for _, tag := range c.tags[base : base+uint64(c.ways)] {
		if tag == block {
			return true
		}
	}
	return false
}

// promote makes way the MRU of its set: ranks below its old one slide up,
// realized as a shift of the rank-ordered way list. Re-promoting the MRU —
// the common case under block-repeat locality — is a no-op.
func (c *Cache) promote(base, way uint64) {
	old := uint64(c.lru[base+way])
	if old == 0 {
		return
	}
	copy(c.order[base+1:base+old+1], c.order[base:base+old])
	c.order[base] = uint8(way)
	for r := uint64(0); r <= old; r++ {
		c.lru[base+uint64(c.order[base+r])] = uint8(r)
	}
}

// syncLRUArrays materializes the packed rank words into the lru/order byte
// arrays — the checkpoint wire format and the shape the invariant checker
// reads. Unpacked caches maintain the arrays directly, so this is a no-op.
func (c *Cache) syncLRUArrays() {
	if !c.packed && !c.packed16 {
		return
	}
	for s := uint64(0); s < c.sets; s++ {
		base := s * uint64(c.ways)
		for r := 0; r < c.ways; r++ {
			var way uint8
			if r < 8 {
				way = uint8(c.orderW[s] >> (8 * uint(r)))
			} else {
				way = uint8(c.orderHi[s] >> (8 * uint(r-8)))
			}
			c.order[base+uint64(r)] = way
			c.lru[base+uint64(way)] = uint8(r)
		}
	}
}

// rebuildPacked derives the packed rank words from the order byte array
// after a checkpoint restore. Ranks beyond ways keep their initial
// non-aliasing filler bytes.
func (c *Cache) rebuildPacked() {
	if !c.packed && !c.packed16 {
		return
	}
	for s := uint64(0); s < c.sets; s++ {
		lo, hi := uint64(initOrderWord), uint64(initOrderHi)
		base := s * uint64(c.ways)
		for r := 0; r < c.ways; r++ {
			way := uint64(c.order[base+uint64(r)])
			if r < 8 {
				sh := 8 * uint(r)
				lo = lo&^(uint64(0xff)<<sh) | way<<sh
			} else {
				sh := 8 * uint(r-8)
				hi = hi&^(uint64(0xff)<<sh) | way<<sh
			}
		}
		c.orderW[s] = lo
		if c.packed16 {
			c.orderHi[s] = hi
		}
	}
}

// Sets returns the number of sets (exported for tests and sizing reports).
func (c *Cache) Sets() uint64 { return c.sets }

// checkLRUInvariant verifies each set's ranks are a permutation of
// 0..ways-1 and that the cached MRU way really holds rank 0. Exposed
// (unexported) for property tests.
func (c *Cache) checkLRUInvariant() error {
	c.syncLRUArrays()
	for s := uint64(0); s < c.sets; s++ {
		var seen uint64
		for w := 0; w < c.ways; w++ {
			r := c.lru[s*uint64(c.ways)+uint64(w)]
			if int(r) >= c.ways {
				return fmt.Errorf("set %d way %d: rank %d out of range", s, w, r)
			}
			if seen&(1<<r) != 0 {
				return fmt.Errorf("set %d: duplicate rank %d", s, r)
			}
			seen |= 1 << r
		}
		for r := 0; r < c.ways; r++ {
			w := c.order[s*uint64(c.ways)+uint64(r)]
			if int(w) >= c.ways || c.lru[s*uint64(c.ways)+uint64(w)] != uint8(r) {
				return fmt.Errorf("set %d rank %d: order way %d disagrees with lru ranks", s, r, w)
			}
		}
		for w := 0; w < c.ways; w++ {
			valid := c.state[s*uint64(c.ways)+uint64(w)] != stateInvalid
			if want := w < int(c.fill[s]); valid != want {
				return fmt.Errorf("set %d way %d: validity %v breaks the fill-order invariant (fill %d)", s, w, valid, c.fill[s])
			}
		}
	}
	return nil
}
