// Package cache implements the on-chip SRAM caches of the baseline system
// (Table III): per-core L1 data caches and the shared L2. The model is a
// set-associative, write-back, write-allocate cache with true-LRU
// replacement, tracking tags only — simulated data never exists, which is
// what makes 10^8-access runs practical.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one SRAM cache level.
type Config struct {
	Name string
	// SizeBytes is the total data capacity; it must be a power-of-two
	// multiple of the 64 B block.
	SizeBytes int
	Ways      int
	// Latency is the load-to-use latency in CPU cycles.
	Latency uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: size and ways must be positive", c.Name)
	}
	blocks := c.SizeBytes / 64
	if blocks*64 != c.SizeBytes || blocks%c.Ways != 0 {
		return fmt.Errorf("cache %q: size %d not divisible into %d-way sets of 64B blocks", c.Name, c.SizeBytes, c.Ways)
	}
	sets := blocks / c.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Writebacks uint64
}

// Misses returns Accesses - Hits.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// HitRate returns the hit fraction.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

const (
	stateInvalid uint8 = iota
	stateClean
	stateDirty
)

// Cache is one SRAM cache level. Not safe for concurrent use.
type Cache struct {
	cfg     Config
	sets    uint64
	setMask uint64
	ways    int
	// tags, state and lru are sets*ways flat arrays; way w of set s lives
	// at index s*ways+w. lru holds recency ranks: 0 = MRU, ways-1 = LRU.
	tags  []uint64
	state []uint8
	lru   []uint8
	stats Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := uint64(cfg.SizeBytes / 64 / cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: sets - 1,
		ways:    cfg.Ways,
		tags:    make([]uint64, sets*uint64(cfg.Ways)),
		state:   make([]uint8, sets*uint64(cfg.Ways)),
		lru:     make([]uint8, sets*uint64(cfg.Ways)),
	}
	for s := uint64(0); s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.lru[s*uint64(cfg.Ways)+uint64(w)] = uint8(w)
		}
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency in CPU cycles.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, leaving content warm.
func (c *Cache) ResetStats() { c.stats.Reset() }

// Result reports the outcome of an Access.
type Result struct {
	Hit bool
	// Writeback is set when the allocation evicted a dirty block, whose
	// block number is WritebackBlock; the caller forwards it down the
	// hierarchy.
	Writeback      bool
	WritebackBlock uint64
}

// Access looks up the block (a block number, not a byte address), allocates
// on miss and applies LRU promotion. write marks the block dirty.
func (c *Cache) Access(block uint64, write bool) Result {
	c.stats.Accesses++
	set := block & c.setMask
	base := set * uint64(c.ways)
	// Lookup.
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.state[i] != stateInvalid && c.tags[i] == block {
			c.stats.Hits++
			if write {
				c.state[i] = stateDirty
			}
			c.promote(base, uint64(w))
			return Result{Hit: true}
		}
	}
	// Miss: pick the LRU way (preferring invalid ways, which carry the
	// highest ranks after initialization).
	victim := uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lru[i] == uint8(c.ways-1) {
			victim = uint64(w)
		}
		if c.state[i] == stateInvalid {
			victim = uint64(w)
			break
		}
	}
	i := base + victim
	res := Result{}
	if c.state[i] == stateDirty {
		res.Writeback = true
		res.WritebackBlock = c.tags[i]
		c.stats.Writebacks++
	}
	c.tags[i] = block
	if write {
		c.state[i] = stateDirty
	} else {
		c.state[i] = stateClean
	}
	c.promote(base, victim)
	return res
}

// Contains reports whether the block is present (no LRU side effects).
func (c *Cache) Contains(block uint64) bool {
	set := block & c.setMask
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.state[i] != stateInvalid && c.tags[i] == block {
			return true
		}
	}
	return false
}

// promote makes way the MRU of its set.
func (c *Cache) promote(base, way uint64) {
	old := c.lru[base+way]
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lru[i] < old {
			c.lru[i]++
		}
	}
	c.lru[base+way] = 0
}

// Sets returns the number of sets (exported for tests and sizing reports).
func (c *Cache) Sets() uint64 { return c.sets }

// checkLRUInvariant verifies each set's ranks are a permutation of
// 0..ways-1. Exposed (unexported) for property tests.
func (c *Cache) checkLRUInvariant() error {
	for s := uint64(0); s < c.sets; s++ {
		var seen uint64
		for w := 0; w < c.ways; w++ {
			r := c.lru[s*uint64(c.ways)+uint64(w)]
			if int(r) >= c.ways {
				return fmt.Errorf("set %d way %d: rank %d out of range", s, w, r)
			}
			if seen&(1<<r) != 0 {
				return fmt.Errorf("set %d: duplicate rank %d", s, r)
			}
			seen |= 1 << r
		}
	}
	return nil
}
