package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	// 4 sets x 2 ways x 64B = 512B.
	return mustCache(t, Config{Name: "t", SizeBytes: 512, Ways: 2, Latency: 2})
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{Name: "l1", SizeBytes: 64 << 10, Ways: 8, Latency: 2},
		{Name: "l2", SizeBytes: 4 << 20, Ways: 16, Latency: 13},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 1},
		{Name: "negways", SizeBytes: 512, Ways: -1},
		{Name: "notpow2sets", SizeBytes: 3 * 64, Ways: 1},
		{Name: "indivisible", SizeBytes: 640, Ways: 3},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", cfg.Name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	if r := c.Access(100, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(100, false); !r.Hit {
		t.Error("second access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses() != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 4 sets, 2 ways; blocks 0,4,8 share set 0
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // 0 is MRU, 4 is LRU
	c.Access(8, false) // evicts 4
	if !c.Contains(0) {
		t.Error("MRU block evicted")
	}
	if c.Contains(4) {
		t.Error("LRU block survived")
	}
	if !c.Contains(8) {
		t.Error("new block missing")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small(t)
	c.Access(0, true) // dirty
	c.Access(4, false)
	r := c.Access(8, false) // evicts 0 (LRU, dirty)
	if !r.Writeback || r.WritebackBlock != 0 {
		t.Errorf("expected writeback of block 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.Access(4, false)
	r := c.Access(8, false)
	if r.Writeback {
		t.Error("clean eviction produced a writeback")
	}
}

func TestWriteHitDirties(t *testing.T) {
	c := small(t)
	c.Access(0, false) // clean
	c.Access(0, true)  // now dirty
	c.Access(4, false)
	r := c.Access(8, false)
	if !r.Writeback || r.WritebackBlock != 0 {
		t.Errorf("write-hit did not mark dirty: %+v", r)
	}
}

func TestWritebackClearsDirty(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(4, false)
	c.Access(8, false) // writes back 0
	// Refill 0 clean, then evict again: no writeback this time.
	c.Access(0, false)
	c.Access(12, false)
	wbBefore := c.Stats().Writebacks
	c.Access(4, false) // evicts someone; 0 or 8/12 depending on LRU, do a full cycle
	c.Access(8, false)
	c.Access(12, false)
	if c.Stats().Writebacks != wbBefore {
		t.Errorf("stale dirty state caused writeback: %d -> %d", wbBefore, c.Stats().Writebacks)
	}
}

func TestContainsNoSideEffects(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.Access(4, false) // 4 MRU, 0 LRU
	if c.Contains(0) != true {
		t.Fatal("Contains(0) false")
	}
	// Contains must not promote 0; inserting 8 should still evict 0.
	c.Access(8, false)
	if c.Contains(0) {
		t.Error("Contains promoted the block")
	}
	if c.Contains(999) {
		t.Error("Contains on absent block")
	}
	a := c.Stats().Accesses
	c.Contains(8)
	if c.Stats().Accesses != a {
		t.Error("Contains counted as access")
	}
}

func TestSetIsolation(t *testing.T) {
	c := small(t)
	// Fill set 0 far past capacity; set 1 content must be untouched.
	c.Access(1, false) // set 1
	for i := uint64(0); i < 100; i++ {
		c.Access(i*4, false) // all set 0
	}
	if !c.Contains(1) {
		t.Error("traffic in set 0 evicted set 1 block")
	}
}

func TestLRUInvariantProperty(t *testing.T) {
	c := mustCache(t, Config{Name: "p", SizeBytes: 4096, Ways: 4, Latency: 1})
	f := func(blocks []uint16, writes []bool) bool {
		for i, b := range blocks {
			w := i < len(writes) && writes[i]
			c.Access(uint64(b), w)
		}
		return c.checkLRUInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHitAfterAnyAccessSequenceProperty(t *testing.T) {
	// Immediately re-accessing the last touched block always hits.
	c := mustCache(t, Config{Name: "p", SizeBytes: 2048, Ways: 2, Latency: 1})
	f := func(blocks []uint16) bool {
		for _, b := range blocks {
			c.Access(uint64(b), false)
			if r := c.Access(uint64(b), false); !r.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	// A working set exactly equal to capacity never misses after warmup.
	c := mustCache(t, Config{Name: "fit", SizeBytes: 8192, Ways: 4, Latency: 1})
	blocks := c.Sets() * 4
	for round := 0; round < 3; round++ {
		for b := uint64(0); b < blocks; b++ {
			c.Access(b, false)
		}
	}
	c.ResetStats()
	for b := uint64(0); b < blocks; b++ {
		if r := c.Access(b, false); !r.Hit {
			t.Fatalf("block %d missed with a capacity-fitting working set", b)
		}
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	// A working set of 2x capacity accessed cyclically with LRU always misses.
	c := mustCache(t, Config{Name: "thrash", SizeBytes: 1024, Ways: 2, Latency: 1})
	blocks := c.Sets() * 4 // 2x ways per set
	for round := 0; round < 4; round++ {
		for b := uint64(0); b < blocks; b++ {
			c.Access(b, false)
		}
	}
	c.ResetStats()
	for b := uint64(0); b < blocks; b++ {
		c.Access(b, false)
	}
	if c.Stats().Hits != 0 {
		t.Errorf("cyclic over-capacity scan hit %d times under LRU", c.Stats().Hits)
	}
}

func TestStatsResetKeepsContent(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("ResetStats did not zero")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Error("ResetStats lost cache content")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty HitRate")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestHitRatio(t *testing.T) {
	tests := []struct {
		name string
		s    Stats
		want float64
	}{
		{"zero accesses", Stats{}, 0},
		{"zero accesses nonzero writebacks", Stats{Writebacks: 7}, 0},
		{"all hits", Stats{Accesses: 8, Hits: 8}, 1},
		{"all misses", Stats{Accesses: 5}, 0},
		{"mixed", Stats{Accesses: 4, Hits: 3}, 0.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.s.HitRatio()
			if math.IsNaN(got) {
				t.Fatalf("HitRatio(%+v) is NaN", tt.s)
			}
			if got != tt.want {
				t.Errorf("HitRatio(%+v) = %v, want %v", tt.s, got, tt.want)
			}
			if got != tt.s.HitRate() {
				t.Errorf("HitRate diverged from HitRatio: %v vs %v", tt.s.HitRate(), got)
			}
		})
	}
}

func TestTableIIIL1L2Shapes(t *testing.T) {
	l1 := mustCache(t, Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, Latency: 2})
	if l1.Sets() != 128 {
		t.Errorf("L1 sets = %d, want 128", l1.Sets())
	}
	l2 := mustCache(t, Config{Name: "L2", SizeBytes: 4 << 20, Ways: 16, Latency: 13})
	if l2.Sets() != 4096 {
		t.Errorf("L2 sets = %d, want 4096", l2.Sets())
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, _ := New(Config{Name: "b", SizeBytes: 4 << 20, Ways: 16, Latency: 13})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&8191], i&15 == 0)
	}
}

// TestPackedMatchesGeneric drives a packed cache and a generic (byte-array
// LRU) cache of identical geometry through the same random access stream:
// every Result and every counter must agree at every step, and both must
// hold the LRU invariant afterwards. This is the bit-identity wall of the
// rank-word promote.
func TestPackedMatchesGeneric(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8, 12, 16} {
		cfg := Config{Name: "t", SizeBytes: 64 * 8 * ways, Ways: ways, Latency: 2}
		packed := mustCache(t, cfg)
		generic := mustCache(t, cfg)
		generic.packed = false // force the byte-array reference path
		generic.packed16 = false
		if !packed.packed && !packed.packed16 {
			t.Fatalf("ways=%d: expected packed representation", ways)
		}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 60_000; i++ {
			block := uint64(rng.Intn(64))
			write := rng.Intn(4) == 0
			p := packed.Access(block, write)
			g := generic.Access(block, write)
			if p != g {
				t.Fatalf("ways=%d access %d (block %d write %v): packed %+v generic %+v", ways, i, block, write, p, g)
			}
		}
		if packed.Stats() != generic.Stats() {
			t.Fatalf("ways=%d: stats diverged: %+v vs %+v", ways, packed.Stats(), generic.Stats())
		}
		if err := packed.checkLRUInvariant(); err != nil {
			t.Fatalf("ways=%d packed: %v", ways, err)
		}
		if err := generic.checkLRUInvariant(); err != nil {
			t.Fatalf("ways=%d generic: %v", ways, err)
		}
	}
}
