package cache

import "unisoncache/internal/checkpoint"

// SaveState serializes the cache's complete mutable state — tag, block
// state, LRU, insertion-order and fill arrays plus counters — into a
// checkpoint stream. Geometry (sets, ways) is not serialized: it is owned
// by construction, and LoadState rejects a snapshot whose array sizes
// disagree with the configured geometry.
func (c *Cache) SaveState(w *checkpoint.Writer) {
	c.syncLRUArrays() // packed caches carry LRU state in rank words
	w.Section("cache")
	w.U64Slice(c.tags)
	w.U8Slice(c.state)
	w.U8Slice(c.lru)
	w.U8Slice(c.order)
	w.U8Slice(c.fill)
	w.U64(c.stats.Accesses)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Writebacks)
}

// LoadState restores state saved by SaveState into an identically
// configured cache.
func (c *Cache) LoadState(r *checkpoint.Reader) error {
	r.Section("cache")
	r.U64SliceInto(c.tags)
	r.U8SliceInto(c.state)
	r.U8SliceInto(c.lru)
	r.U8SliceInto(c.order)
	r.U8SliceInto(c.fill)
	c.stats.Accesses = r.U64()
	c.stats.Hits = r.U64()
	c.stats.Writebacks = r.U64()
	c.rebuildPacked()
	return r.Err()
}
