package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys returns n content-addressed-style keys (hex SHA-256 digests,
// exactly what the daemon routes).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("run-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

// TestRingDeterministic: two rings over the same members (in any order)
// agree on every owner — the property that lets daemons and clients route
// without coordination.
func TestRingDeterministic(t *testing.T) {
	a := New([]string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}, 0)
	b := New([]string{"http://n3:8080", "http://n1:8080", "http://n2:8080", "http://n1:8080"}, 0)
	for _, k := range testKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with virtual nodes, each of N members owns roughly
// 1/N of the key space.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}
	r := New(nodes, 0)
	counts := map[string]int{}
	keys := testKeys(30_000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		share := float64(counts[n]) / want
		if share < 0.7 || share > 1.3 {
			t.Errorf("node %s owns %.2fx its fair share (%d keys)", n, share, counts[n])
		}
	}
}

// TestRingStability pins the consistent-hashing contract: growing the
// ring from N to N+1 members remaps only about 1/(N+1) of the keys — the
// ones the new node takes over — and every remapped key moves TO the new
// node, never between old ones.
func TestRingStability(t *testing.T) {
	old := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}
	grown := append(append([]string{}, old...), "http://n4:8080")
	before, after := New(old, 0), New(grown, 0)

	keys := testKeys(30_000)
	moved := 0
	for _, k := range keys {
		if b, a := before.Owner(k), after.Owner(k); b != a {
			moved++
			if a != "http://n4:8080" {
				t.Fatalf("key %s moved between surviving nodes (%s -> %s)", k, b, a)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / float64(len(grown))
	if frac < want*0.6 || frac > want*1.4 {
		t.Errorf("adding 1 of %d nodes remapped %.1f%% of keys, want ~%.1f%%",
			len(grown), 100*frac, 100*want)
	}
}

// TestRingPreference: the fallback order starts at the owner, covers
// every member exactly once, and stays consistent across builds.
func TestRingPreference(t *testing.T) {
	nodes := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}
	r := New(nodes, 0)
	for _, k := range testKeys(100) {
		pref := r.Preference(k)
		if len(pref) != len(nodes) {
			t.Fatalf("Preference(%s) has %d entries, want %d", k, len(pref), len(nodes))
		}
		if pref[0] != r.Owner(k) {
			t.Fatalf("Preference(%s)[0] = %s, Owner = %s", k, pref[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("Preference(%s) repeats %s", k, n)
			}
			seen[n] = true
		}
	}
}

// TestRingSingleAndEmpty: degenerate member lists.
func TestRingSingleAndEmpty(t *testing.T) {
	if r := New(nil, 0); r != nil {
		t.Error("empty ring should be nil")
	}
	if r := New([]string{"", ""}, 0); r != nil {
		t.Error("blank-only ring should be nil")
	}
	r := New([]string{"http://solo:8080"}, 0)
	for _, k := range testKeys(10) {
		if r.Owner(k) != "http://solo:8080" {
			t.Fatal("single-node ring must own everything")
		}
	}
}
