// Package cluster implements consistent-hash job routing for the
// unisonserved daemon: a hash ring over a static node list with virtual
// nodes, mapping content-addressed run keys to owning daemons. Every
// process that builds a Ring from the same member list computes the same
// owners — the routing needs no coordination traffic, only agreement on
// the list — and because keys are SHA-256 run digests, load spreads
// uniformly without any knowledge of run contents.
//
// Adding or removing one node remaps only ~1/N of the key space (the
// classic consistent-hashing property, pinned by TestRingStability);
// combined with peer cache fill, a membership change costs a few fetches
// instead of a re-simulation storm.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member: high enough that
// the per-node share of the key space concentrates near 1/N (the spread
// shrinks like 1/sqrt(replicas)), low enough that ring construction and
// lookup stay trivially cheap.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring. Build with New; safe for
// concurrent use.
type Ring struct {
	nodes  []string // sorted, deduplicated member list
	points []point  // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// New builds a ring over nodes with the given virtual-node count per
// member (replicas <= 0 uses DefaultReplicas). Duplicate members are
// collapsed; the member strings are opaque (the daemon uses base URLs).
// A nil return means no nodes were given.
func New(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	var uniq []string
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	if len(uniq) == 0 {
		return nil
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]point, 0, len(uniq)*replicas)}
	for _, n := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hash: hash(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // deterministic on (absurdly unlikely) collisions
	})
	return r
}

// hash maps a string onto the ring's key space: the first 8 bytes of its
// SHA-256. Cryptographic mixing keeps virtual nodes uniform regardless of
// how similar the member names are (":8080" vs ":8081").
func hash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the sorted member list.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].node
}

// Preference returns every member in fallback order for key: the owner
// first, then each distinct node met walking clockwise. Callers use it to
// fail over when the owner is unreachable — every process computes the
// same order, so a failed-over key lands on the same substitute
// everywhere.
func (r *Ring) Preference(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i, at := 0, r.search(key); i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(at+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search finds the index of the first point at or clockwise-after the
// key's hash.
func (r *Ring) search(key string) int {
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
