package dramcache

import (
	"fmt"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
	"unisoncache/internal/predictor"
)

// TADsPerRow is the number of 72 B tag-and-data units per 8 KB DRAM row
// (Table II: "64B Blocks per 8KB Row — 112" for Alloy Cache).
const TADsPerRow = 112

// tadBytes is the size of one streamed tag-and-data unit: a 64 B block
// alloyed with its 8 B tag.
const tadBytes = 72

// Alloy implements the Alloy Cache of Qureshi & Loh [24]: a direct-mapped,
// block-based stacked-DRAM cache that merges each data block with its tag
// into a single TAD streamed in one DRAM access, plus the MAP-I miss
// predictor that moves the DRAM tag probe off the miss path.
type Alloy struct {
	stacked *dram.Controller
	offchip *dram.Controller
	mp      *predictor.MissPredictor

	// tads packs (blockNumber << 2 | state) per direct-mapped slot.
	tads    []uint64
	numTADs uint64

	// plan is the reusable AccessBatch scratch; mpStamp/mpGen invalidate
	// MAP-I probes made in a batch's plan phase when an earlier commit in
	// the same batch trained the probed counter (see commit).
	plan    []alloyPlan
	mpStamp []uint32
	mpGen   uint32

	st baseStats
}

// alloyPlan is the precomputed, purely address-dependent part of one
// access: the direct-mapped slot, its stacked-row mapping, and the MAP-I
// probe. The TAD presence check and all timing stay in commit — an
// earlier request in the batch can fill or evict the same slot.
type alloyPlan struct {
	block    uint64
	slot     uint64
	row      uint64
	ch       int32
	bank     int32
	mpIdx    int32
	predMiss bool
}

const (
	tadInvalid uint64 = iota
	tadClean
	tadDirty
)

// NewAlloy builds an Alloy Cache with the given data capacity over the two
// DRAM parts. cores sizes the per-core miss-predictor tables.
func NewAlloy(capacityBytes uint64, cores int, stacked, offchip *dram.Controller) (*Alloy, error) {
	rows := capacityBytes / mem.RowBytes
	if rows == 0 {
		return nil, fmt.Errorf("dramcache: alloy capacity %d smaller than one row", capacityBytes)
	}
	mp := predictor.NewMissPredictor(cores, 256)
	return &Alloy{
		stacked: stacked,
		offchip: offchip,
		mp:      mp,
		tads:    make([]uint64, rows*TADsPerRow),
		numTADs: rows * TADsPerRow,
		mpStamp: make([]uint32, cores*mp.Entries()),
		mpGen:   1, // stamps start at 0: nothing is stale yet
	}, nil
}

// Name implements Design.
func (d *Alloy) Name() string { return "alloy" }

// MissPredictor exposes the MAP-I predictor for Table V reporting.
func (d *Alloy) MissPredictor() *predictor.MissPredictor { return d.mp }

// slot returns the direct-mapped TAD index for a block number.
func (d *Alloy) slot(block uint64) uint64 { return block % d.numTADs }

// rowOf maps a TAD slot to its stacked-DRAM location.
func (d *Alloy) rowOf(slot uint64) (ch, bank int, row uint64) {
	return d.stacked.MapAddr(slot / TADsPerRow * mem.RowBytes)
}

// readTAD streams the 72 B TAD for slot starting at cycle at.
func (d *Alloy) readTAD(slot uint64, at uint64) dram.Result {
	ch, bank, row := d.rowOf(slot)
	return d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: tadBytes, At: at})
}

// writeTAD writes the 72 B TAD for slot starting at cycle at.
func (d *Alloy) writeTAD(slot uint64, at uint64) dram.Result {
	ch, bank, row := d.rowOf(slot)
	return d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: tadBytes, Write: true, At: at})
}

// Access implements Design.
func (d *Alloy) Access(r Request) Response {
	var p alloyPlan
	d.planOne(&r, &p)
	return d.commit(r, &p)
}

// AccessBatch implements Design: the plan phase runs the pure address
// work — slot and row mapping plus MAP-I table probes — over the whole
// batch, then the commit phase replays the batch in arrival order against
// TAD and DRAM controller state. Probes a same-batch commit trained are
// redone from the live counters, so results are bit-identical to serial
// Access.
func (d *Alloy) AccessBatch(reqs []Request, resps []Response) {
	if len(reqs) > cap(d.plan) {
		d.plan = make([]alloyPlan, len(reqs))
	}
	plans := d.plan[:len(reqs)]
	for i := range reqs {
		d.planOne(&reqs[i], &plans[i])
	}
	d.mpGen++
	for i := range reqs {
		resps[i] = d.commit(reqs[i], &plans[i])
	}
}

// planOne computes the address-only plan for one request.
func (d *Alloy) planOne(r *Request, p *alloyPlan) {
	block := r.Addr.Block()
	slot := d.slot(block)
	ch, bank, row := d.rowOf(slot)
	idx := d.mp.Index(r.PC)
	*p = alloyPlan{
		block:    block,
		slot:     slot,
		row:      row,
		ch:       int32(ch),
		bank:     int32(bank),
		mpIdx:    int32(idx),
		predMiss: d.mp.PredictMissIndexed(r.Core, idx),
	}
}

// mpTrain updates the MAP-I counter and stamps it so planned probes of
// the same entry later in the current batch know to re-probe.
func (d *Alloy) mpTrain(core, idx int, predictedMiss, actualMiss bool) {
	d.mp.UpdateIndexed(core, idx, predictedMiss, actualMiss)
	d.mpStamp[core*d.mp.Entries()+idx] = d.mpGen
}

// commit services one planned request against live state.
func (d *Alloy) commit(r Request, pl *alloyPlan) Response {
	block, slot := pl.block, pl.slot
	entry := d.tads[slot]
	present := entry>>2 == block && entry&3 != tadInvalid

	if r.Write {
		return d.write(r, block, slot, present, pl)
	}
	d.st.reads++

	idx := int(pl.mpIdx)
	predMiss := pl.predMiss
	if d.mpStamp[r.Core*d.mp.Entries()+idx] == d.mpGen {
		// An earlier commit in this batch trained the probed counter; the
		// serial path would have seen the new value, so probe again.
		predMiss = d.mp.PredictMissIndexed(r.Core, idx)
	}
	probeAt := r.At + d.mp.Latency()
	tad := d.stacked.Do(dram.Request{Channel: int(pl.ch), Bank: int(pl.bank), Row: pl.row, Bytes: tadBytes, At: probeAt})

	if present {
		d.st.readHits++
		d.mpTrain(r.Core, idx, predMiss, false)
		if predMiss {
			// False miss: the off-chip fetch was already launched in
			// parallel and its data is discarded — pure wasted traffic
			// and bandwidth occupancy (§II-A).
			d.offchip.Access(uint64(r.Addr), probeAt, mem.BlockSize, false)
			d.st.offReadBytes += mem.BlockSize
		}
		return Response{DoneAt: tad.Done, Hit: true}
	}

	// Miss path: a correctly predicted miss overlaps the off-chip fetch
	// with the (verification) probe; a mispredicted one serializes behind
	// the probe (§II-A).
	d.mpTrain(r.Core, idx, predMiss, true)
	d.st.triggerMisses++
	launchAt := tad.Done
	if predMiss {
		launchAt = probeAt
	}
	off := d.offchip.Access(uint64(r.Addr), launchAt, mem.BlockSize, false)
	d.st.offReadBytes += mem.BlockSize
	// The fill is charged at the demand timestamp; see Footprint.Access
	// for why future-dated background reservations would be wrong.
	d.fill(block, slot, probeAt, false, pl)
	return Response{DoneAt: off.Done, Hit: false}
}

// write absorbs an L2 dirty writeback. The full block arrives with the
// request, so allocation needs no off-chip fetch; a conflicting dirty
// victim is written back.
func (d *Alloy) write(r Request, block, slot uint64, present bool, pl *alloyPlan) Response {
	d.st.writes++
	res := d.stacked.Do(dram.Request{Channel: int(pl.ch), Bank: int(pl.bank), Row: pl.row, Bytes: tadBytes, Write: true, At: r.At})
	if !present {
		d.fill(block, slot, r.At, true, pl)
	} else {
		d.tads[slot] = block<<2 | tadDirty
	}
	return Response{DoneAt: res.Done, Hit: present}
}

// fill installs block into slot at cycle at (off the critical path),
// evicting and writing back any dirty conflicting TAD.
func (d *Alloy) fill(block, slot uint64, at uint64, dirty bool, pl *alloyPlan) {
	if old := d.tads[slot]; old&3 == tadDirty {
		victim := old >> 2
		d.offchip.Access(uint64(mem.BlockAddr(victim)), at, mem.BlockSize, true)
		d.st.offWriteBytes += mem.BlockSize
	}
	state := tadClean
	if dirty {
		state = tadDirty
	}
	d.tads[slot] = block<<2 | state
	if !dirty {
		// The demand fill writes the TAD into the stacked row.
		d.stacked.Do(dram.Request{Channel: int(pl.ch), Bank: int(pl.bank), Row: pl.row, Bytes: tadBytes, Write: true, At: at})
	}
}

// Contains reports (for tests) whether the block is cached.
func (d *Alloy) Contains(block uint64) bool {
	e := d.tads[d.slot(block)]
	return e>>2 == block && e&3 != tadInvalid
}

// Snapshot implements Design.
func (d *Alloy) Snapshot() Snapshot {
	s := d.st.snapshot(d.Name())
	mps := d.mp.Stats()
	acc := mps.Accuracy
	s.MP = &acc
	s.MPOverfetchPct = mps.OverfetchPercent()
	return s
}

// ResetStats implements Design.
func (d *Alloy) ResetStats() {
	d.st.reset()
	d.mp.ResetStats()
}
