package dramcache

import (
	"fmt"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
	"unisoncache/internal/predictor"
)

// TADsPerRow is the number of 72 B tag-and-data units per 8 KB DRAM row
// (Table II: "64B Blocks per 8KB Row — 112" for Alloy Cache).
const TADsPerRow = 112

// tadBytes is the size of one streamed tag-and-data unit: a 64 B block
// alloyed with its 8 B tag.
const tadBytes = 72

// Alloy implements the Alloy Cache of Qureshi & Loh [24]: a direct-mapped,
// block-based stacked-DRAM cache that merges each data block with its tag
// into a single TAD streamed in one DRAM access, plus the MAP-I miss
// predictor that moves the DRAM tag probe off the miss path.
type Alloy struct {
	stacked *dram.Controller
	offchip *dram.Controller
	mp      *predictor.MissPredictor

	// tads packs (blockNumber << 2 | state) per direct-mapped slot.
	tads    []uint64
	numTADs uint64

	st baseStats
}

const (
	tadInvalid uint64 = iota
	tadClean
	tadDirty
)

// NewAlloy builds an Alloy Cache with the given data capacity over the two
// DRAM parts. cores sizes the per-core miss-predictor tables.
func NewAlloy(capacityBytes uint64, cores int, stacked, offchip *dram.Controller) (*Alloy, error) {
	rows := capacityBytes / mem.RowBytes
	if rows == 0 {
		return nil, fmt.Errorf("dramcache: alloy capacity %d smaller than one row", capacityBytes)
	}
	return &Alloy{
		stacked: stacked,
		offchip: offchip,
		mp:      predictor.NewMissPredictor(cores, 256),
		tads:    make([]uint64, rows*TADsPerRow),
		numTADs: rows * TADsPerRow,
	}, nil
}

// Name implements Design.
func (d *Alloy) Name() string { return "alloy" }

// MissPredictor exposes the MAP-I predictor for Table V reporting.
func (d *Alloy) MissPredictor() *predictor.MissPredictor { return d.mp }

// slot returns the direct-mapped TAD index for a block number.
func (d *Alloy) slot(block uint64) uint64 { return block % d.numTADs }

// rowOf maps a TAD slot to its stacked-DRAM location.
func (d *Alloy) rowOf(slot uint64) (ch, bank int, row uint64) {
	return d.stacked.MapAddr(slot / TADsPerRow * mem.RowBytes)
}

// readTAD streams the 72 B TAD for slot starting at cycle at.
func (d *Alloy) readTAD(slot uint64, at uint64) dram.Result {
	ch, bank, row := d.rowOf(slot)
	return d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: tadBytes, At: at})
}

// writeTAD writes the 72 B TAD for slot starting at cycle at.
func (d *Alloy) writeTAD(slot uint64, at uint64) dram.Result {
	ch, bank, row := d.rowOf(slot)
	return d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: tadBytes, Write: true, At: at})
}

// Access implements Design.
func (d *Alloy) Access(r Request) Response {
	block := r.Addr.Block()
	slot := d.slot(block)
	entry := d.tads[slot]
	present := entry>>2 == block && entry&3 != tadInvalid

	if r.Write {
		return d.write(r, block, slot, present)
	}
	d.st.reads++

	predMiss := d.mp.PredictMiss(r.Core, r.PC)
	probeAt := r.At + d.mp.Latency()
	tad := d.readTAD(slot, probeAt)

	if present {
		d.st.readHits++
		d.mp.Update(r.Core, r.PC, predMiss, false)
		if predMiss {
			// False miss: the off-chip fetch was already launched in
			// parallel and its data is discarded — pure wasted traffic
			// and bandwidth occupancy (§II-A).
			d.offchip.Access(uint64(r.Addr), probeAt, mem.BlockSize, false)
			d.st.offReadBytes += mem.BlockSize
		}
		return Response{DoneAt: tad.Done, Hit: true}
	}

	// Miss path: a correctly predicted miss overlaps the off-chip fetch
	// with the (verification) probe; a mispredicted one serializes behind
	// the probe (§II-A).
	d.mp.Update(r.Core, r.PC, predMiss, true)
	d.st.triggerMisses++
	launchAt := tad.Done
	if predMiss {
		launchAt = probeAt
	}
	off := d.offchip.Access(uint64(r.Addr), launchAt, mem.BlockSize, false)
	d.st.offReadBytes += mem.BlockSize
	// The fill is charged at the demand timestamp; see Footprint.Access
	// for why future-dated background reservations would be wrong.
	d.fill(block, slot, probeAt, false)
	return Response{DoneAt: off.Done, Hit: false}
}

// write absorbs an L2 dirty writeback. The full block arrives with the
// request, so allocation needs no off-chip fetch; a conflicting dirty
// victim is written back.
func (d *Alloy) write(r Request, block, slot uint64, present bool) Response {
	d.st.writes++
	res := d.writeTAD(slot, r.At)
	if !present {
		d.fill(block, slot, r.At, true)
	} else {
		d.tads[slot] = block<<2 | tadDirty
	}
	return Response{DoneAt: res.Done, Hit: present}
}

// fill installs block into slot at cycle at (off the critical path),
// evicting and writing back any dirty conflicting TAD.
func (d *Alloy) fill(block, slot uint64, at uint64, dirty bool) {
	if old := d.tads[slot]; old&3 == tadDirty {
		victim := old >> 2
		d.offchip.Access(uint64(mem.BlockAddr(victim)), at, mem.BlockSize, true)
		d.st.offWriteBytes += mem.BlockSize
	}
	state := tadClean
	if dirty {
		state = tadDirty
	}
	d.tads[slot] = block<<2 | state
	if !dirty {
		// The demand fill writes the TAD into the stacked row.
		d.writeTAD(slot, at)
	}
}

// Contains reports (for tests) whether the block is cached.
func (d *Alloy) Contains(block uint64) bool {
	e := d.tads[d.slot(block)]
	return e>>2 == block && e&3 != tadInvalid
}

// Snapshot implements Design.
func (d *Alloy) Snapshot() Snapshot {
	s := d.st.snapshot(d.Name())
	mps := d.mp.Stats()
	acc := mps.Accuracy
	s.MP = &acc
	s.MPOverfetchPct = mps.OverfetchPercent()
	return s
}

// ResetStats implements Design.
func (d *Alloy) ResetStats() {
	d.st.reset()
	d.mp.ResetStats()
}
