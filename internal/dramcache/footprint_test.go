package dramcache

import (
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
	"unisoncache/internal/predictor"
)

func newFC(t *testing.T, capacity uint64, tagLat uint64) (*Footprint, *dram.Controller, *dram.Controller) {
	t.Helper()
	s, o := parts(t)
	fc, err := NewFootprint(FCConfig{CapacityBytes: capacity, TagLatency: tagLat}, s, o)
	if err != nil {
		t.Fatal(err)
	}
	return fc, s, o
}

// blockAddrInPage returns the address of block off within 2KB page p.
func fcAddr(page uint64, off int) mem.Addr {
	return mem.BlockAddr(page*FCPageBlocks + uint64(off))
}

func TestFCRejectsTinyCapacity(t *testing.T) {
	s, o := parts(t)
	if _, err := NewFootprint(FCConfig{CapacityBytes: 2048}, s, o); err == nil {
		t.Error("capacity below one set accepted")
	}
}

func TestFCDefaults(t *testing.T) {
	fc, _, _ := newFC(t, 1<<20, 5)
	if fc.table.Ways() != 32 {
		t.Errorf("default ways = %d, want 32", fc.table.Ways())
	}
	if fc.Name() != "footprint" {
		t.Error("name")
	}
}

func TestFCTriggerMissFetchesFullPageCold(t *testing.T) {
	fc, _, o := newFC(t, 1<<20, 5)
	r := fc.Access(Request{Addr: fcAddr(3, 4), PC: 77, At: 0})
	if r.Hit {
		t.Error("cold access hit")
	}
	// Cold predictor fetches the whole 2KB page (32 blocks).
	if got := o.Stats().BytesRead; got != 32*64 {
		t.Errorf("cold trigger fetched %d bytes, want 2048", got)
	}
	s := fc.Snapshot()
	if s.TriggerMisses != 1 {
		t.Errorf("TriggerMisses = %d", s.TriggerMisses)
	}
}

func TestFCSpatialHitsAfterTrigger(t *testing.T) {
	fc, _, _ := newFC(t, 1<<20, 5)
	r := fc.Access(Request{Addr: fcAddr(3, 0), PC: 77, At: 0})
	// Every other block of the page now hits: the spatial-locality win.
	at := r.DoneAt
	for off := 1; off < 32; off++ {
		res := fc.Access(Request{Addr: fcAddr(3, off), PC: 77, At: at})
		if !res.Hit {
			t.Fatalf("block %d missed after full-page fetch", off)
		}
		at = res.DoneAt
	}
	if got := fc.Snapshot().MissRatioPct(); got > 4 {
		t.Errorf("page-visit miss ratio = %.1f%%, want ~3%% (1/32)", got)
	}
}

func TestFCLearnsFootprintOnEviction(t *testing.T) {
	fc, _, o := newFC(t, 1<<20, 5)
	pages := uint64(1<<20) / 2048 // capacity in pages
	// Visit page 0 with PC 5 touching only blocks {0,1}.
	at := fc.Access(Request{Addr: fcAddr(0, 0), PC: 5, At: 0}).DoneAt
	at = fc.Access(Request{Addr: fcAddr(0, 1), PC: 5, At: at}).DoneAt
	// Evict page 0 by filling its set with other pages (same set: stride
	// = number of sets).
	sets := fc.table.Sets()
	for i := uint64(1); i <= 32; i++ {
		at = fc.Access(Request{Addr: fcAddr(i*sets, 0), PC: 99, At: at}).DoneAt
	}
	_ = pages
	// Now PC 5 triggers a different page: only learned blocks {0,1}
	// (plus trigger) are fetched.
	before := o.Stats().BytesRead
	fc.Access(Request{Addr: fcAddr(500, 0), PC: 5, At: at})
	fetched := o.Stats().BytesRead - before
	if fetched != 2*64 {
		t.Errorf("learned trigger fetched %d bytes, want 128 (blocks {0,1})", fetched)
	}
}

func TestFCUnderpredictionFetchesSingleBlock(t *testing.T) {
	fc, _, o := newFC(t, 1<<20, 5)
	sets := fc.table.Sets()
	// Teach PC 5 the footprint {0} — a singleton... use {0,1} to avoid
	// the singleton bypass, then access an unpredicted block.
	at := fc.Access(Request{Addr: fcAddr(0, 0), PC: 5, At: 0}).DoneAt
	at = fc.Access(Request{Addr: fcAddr(0, 1), PC: 5, At: at}).DoneAt
	for i := uint64(1); i <= 32; i++ {
		at = fc.Access(Request{Addr: fcAddr(i*sets, 0), PC: 99, At: at}).DoneAt
	}
	// Fresh page via PC 5: fetches {0,1}. Then touch block 9: an
	// underprediction fetching exactly one block.
	at = fc.Access(Request{Addr: fcAddr(500, 0), PC: 5, At: at}).DoneAt
	before := o.Stats().BytesRead
	res := fc.Access(Request{Addr: fcAddr(500, 9), PC: 5, At: at})
	if res.Hit {
		t.Error("unpredicted block hit")
	}
	if got := o.Stats().BytesRead - before; got != 64 {
		t.Errorf("underprediction fetched %d bytes, want 64", got)
	}
	if fc.Snapshot().UnderpredMisses != 1 {
		t.Errorf("UnderpredMisses = %d", fc.Snapshot().UnderpredMisses)
	}
}

func TestFCSingletonBypass(t *testing.T) {
	fc, _, _ := newFC(t, 1<<20, 5)
	sets := fc.table.Sets()
	// Train PC 7 as a singleton: visit a page touching one block, evict.
	at := fc.Access(Request{Addr: fcAddr(0, 3), PC: 7, At: 0}).DoneAt
	for i := uint64(1); i <= 32; i++ {
		at = fc.Access(Request{Addr: fcAddr(i*sets, 0), PC: 99, At: at}).DoneAt
	}
	// PC 7 triggers a new page: predicted singleton, bypassed.
	at = fc.Access(Request{Addr: fcAddr(700, 3), PC: 7, At: at}).DoneAt
	if fc.Snapshot().SingletonSkips != 1 {
		t.Fatalf("SingletonSkips = %d, want 1", fc.Snapshot().SingletonSkips)
	}
	if _, ok := fc.table.Lookup(fc.table.SetOf(700), 700); ok {
		t.Error("bypassed singleton was allocated")
	}
	// A second block of that page arrives: promotion path allocates and
	// repairs the footprint entry.
	fc.Access(Request{Addr: fcAddr(700, 9), PC: 7, At: at})
	if _, ok := fc.table.Lookup(fc.table.SetOf(700), 700); !ok {
		t.Error("promoted page not allocated")
	}
}

func TestFCDirtyEvictionWritesFootprintGranularity(t *testing.T) {
	fc, _, o := newFC(t, 1<<20, 5)
	sets := fc.table.Sets()
	// Dirty two blocks of page 0.
	at := fc.Access(Request{Addr: fcAddr(0, 0), PC: 5, At: 0}).DoneAt
	at = fc.Access(Request{Addr: fcAddr(0, 1), PC: 5, Write: true, At: at}).DoneAt
	at = fc.Access(Request{Addr: fcAddr(0, 2), PC: 5, Write: true, At: at}).DoneAt
	before := o.Stats().BytesWritten
	beforeActs := o.Stats().Activations
	for i := uint64(1); i <= 32; i++ {
		at = fc.Access(Request{Addr: fcAddr(i*sets, 0), PC: 99, At: at}).DoneAt
	}
	wrote := o.Stats().BytesWritten - before
	if wrote != 2*64 {
		t.Errorf("dirty eviction wrote %d bytes, want 128", wrote)
	}
	// The two dirty blocks go in one request: at most one extra
	// activation beyond the fetch traffic.
	_ = beforeActs
}

func TestFCWriteToAbsentPageWritesThrough(t *testing.T) {
	fc, _, o := newFC(t, 1<<20, 5)
	fc.Access(Request{Addr: fcAddr(10, 0), PC: 1, Write: true, At: 0})
	if o.Stats().BytesWritten != 64 {
		t.Errorf("write-through bytes = %d, want 64", o.Stats().BytesWritten)
	}
	if _, ok := fc.table.Lookup(fc.table.SetOf(10), 10); ok {
		t.Error("write miss allocated a page")
	}
}

func TestFCTagLatencyAddsToHit(t *testing.T) {
	fast, _, _ := newFC(t, 1<<20, 5)
	slow, _, _ := newFC(t, 1<<20, 48)
	rf := fast.Access(Request{Addr: fcAddr(1, 0), PC: 1, At: 0})
	rs := slow.Access(Request{Addr: fcAddr(1, 0), PC: 1, At: 0})
	hf := fast.Access(Request{Addr: fcAddr(1, 1), PC: 1, At: rf.DoneAt + 1000}).DoneAt - (rf.DoneAt + 1000)
	hs := slow.Access(Request{Addr: fcAddr(1, 1), PC: 1, At: rs.DoneAt + 1000}).DoneAt - (rs.DoneAt + 1000)
	if hs != hf+43 {
		t.Errorf("hit latencies %d vs %d: tag latency delta not 43", hf, hs)
	}
}

func TestFCSnapshotHasFP(t *testing.T) {
	fc, _, _ := newFC(t, 1<<20, 5)
	s := fc.Snapshot()
	if s.FP == nil || s.FO == nil {
		t.Fatal("FP/FO stats missing")
	}
	if s.MP != nil || s.WP != nil {
		t.Error("footprint cache should not report MP/WP")
	}
}

func TestFCResetStatsKeepsContent(t *testing.T) {
	fc, _, _ := newFC(t, 1<<20, 5)
	r := fc.Access(Request{Addr: fcAddr(1, 0), PC: 1, At: 0})
	fc.ResetStats()
	if fc.Snapshot().Reads != 0 {
		t.Error("ResetStats did not zero")
	}
	if res := fc.Access(Request{Addr: fcAddr(1, 5), PC: 1, At: r.DoneAt}); !res.Hit {
		t.Error("ResetStats lost cached page")
	}
}

func TestFCPredictorAccessible(t *testing.T) {
	fc, _, _ := newFC(t, 1<<20, 5)
	var _ *predictor.FootprintPredictor = fc.Predictor()
}
