// Package dramcache defines the interface every die-stacked DRAM cache
// design implements, plus the designs the paper evaluates against Unison
// Cache: the block-based Alloy Cache, the page-based Footprint Cache, the
// ideal latency-optimized cache, and the no-cache baseline. Unison Cache
// itself — the paper's contribution — lives in internal/core and implements
// the same interface.
package dramcache

import (
	"unisoncache/internal/checkpoint"
	"unisoncache/internal/mem"
	"unisoncache/internal/stats"
)

// Request is one L2-miss-level access presented to the DRAM cache.
type Request struct {
	// Addr is the physical byte address (block-aligned by callers).
	Addr mem.Addr
	// PC is the program counter of the triggering instruction; the
	// footprint and miss predictors key on it.
	PC uint64
	// Core is the issuing core, used by per-core predictor tables.
	Core int
	// Write marks a dirty writeback arriving from the L2.
	Write bool
	// At is the CPU cycle the request reaches the DRAM cache controller.
	At uint64
}

// Response reports when and how a request was satisfied.
type Response struct {
	// DoneAt is the CPU cycle the requested block is available (reads) or
	// accepted (writes).
	DoneAt uint64
	// Hit reports whether the DRAM cache supplied the block.
	Hit bool
}

// Design is the interface all DRAM cache organizations implement.
type Design interface {
	// Name identifies the design in reports ("alloy", "footprint",
	// "unison", "ideal", "none").
	Name() string
	// Access services one request, advancing DRAM timing state.
	Access(Request) Response
	// AccessBatch services len(reqs) requests, writing resps[i] for
	// reqs[i]. It must be bit-identical to calling Access once per request
	// in slice order: designs split the work into a vectorizable plan
	// phase (address mapping, tag/row precompute, predictor table probes)
	// and a commit phase that replays the batch in arrival order against
	// DRAM controller and table state. resps must be at least as long as
	// reqs. SerialAccess is the default one-at-a-time adapter.
	AccessBatch(reqs []Request, resps []Response)
	// Snapshot returns the current statistics.
	Snapshot() Snapshot
	// ResetStats zeroes statistics while keeping all cache, predictor and
	// DRAM state warm (the warmup/measurement boundary).
	ResetStats()
	// SaveState serializes the design's complete mutable state — arrays,
	// predictor tables and counters — into a checkpoint stream.
	SaveState(*checkpoint.Writer)
	// LoadState restores state saved by SaveState into an identically
	// configured design, rejecting geometry mismatches.
	LoadState(*checkpoint.Reader) error
}

// SerialAccess implements AccessBatch as one Access call per request, in
// order. It is the default adapter for designs without a vectorized plan
// phase (and the reference semantics every batched path must reproduce
// bit-for-bit).
func SerialAccess(d Design, reqs []Request, resps []Response) {
	for i := range reqs {
		resps[i] = d.Access(reqs[i])
	}
}

// Snapshot is the uniform statistics view the experiment harness consumes.
// Predictor sections are nil for designs that lack the predictor.
type Snapshot struct {
	Name string

	// Demand-read accounting; the paper's miss ratios are over reads.
	Reads    uint64
	ReadHits uint64
	// Writes counts L2 writebacks absorbed.
	Writes uint64

	// Miss taxonomy (page-based designs).
	TriggerMisses   uint64 // first access to an uncached page
	UnderpredMisses uint64 // page cached, block not fetched (§III-A.3)
	SingletonSkips  uint64 // misses bypassed without allocation (§III-A.4)

	// Off-chip traffic in bytes; the bandwidth-efficiency metric.
	OffchipReadBytes  uint64
	OffchipWriteBytes uint64

	FP *stats.Ratio // footprint accuracy (nil when n/a)
	FO *stats.Ratio // footprint overfetch
	WP *stats.Ratio // way-prediction accuracy
	MP *stats.Ratio // miss-prediction accuracy
	// MPOverfetchPct is the unnecessary off-chip fetch percentage of the
	// Alloy miss predictor.
	MPOverfetchPct float64
}

// MissRatioPct returns the demand-read miss ratio in percent:
// 100 * (Reads - ReadHits) / Reads. Writes (L2 dirty writebacks absorbed
// by the cache) are excluded from both numerator and denominator — the
// paper's miss ratios are over demand reads only, and a write "hit" says
// nothing about fetch traffic. With zero reads observed (e.g. a snapshot
// taken before any demand read) the ratio is defined as 0, not NaN.
func (s Snapshot) MissRatioPct() float64 {
	if s.Reads == 0 {
		return 0
	}
	return 100 * float64(s.Reads-s.ReadHits) / float64(s.Reads)
}

// baseStats carries the counters every design shares.
type baseStats struct {
	reads           uint64
	readHits        uint64
	writes          uint64
	triggerMisses   uint64
	underpredMisses uint64
	singletonSkips  uint64
	offReadBytes    uint64
	offWriteBytes   uint64
}

func (b *baseStats) reset() { *b = baseStats{} }

func (b *baseStats) snapshot(name string) Snapshot {
	return Snapshot{
		Name:              name,
		Reads:             b.reads,
		ReadHits:          b.readHits,
		Writes:            b.writes,
		TriggerMisses:     b.triggerMisses,
		UnderpredMisses:   b.underpredMisses,
		SingletonSkips:    b.singletonSkips,
		OffchipReadBytes:  b.offReadBytes,
		OffchipWriteBytes: b.offWriteBytes,
	}
}
