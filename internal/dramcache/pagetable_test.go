package dramcache

import (
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, sets uint64, ways int) *PageTable {
	t.Helper()
	tb, err := NewPageTable(sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestPageTableRejectsBadShapes(t *testing.T) {
	for _, tc := range []struct {
		sets uint64
		ways int
	}{{0, 4}, {4, 0}, {4, -1}, {4, 256}} {
		if _, err := NewPageTable(tc.sets, tc.ways); err == nil {
			t.Errorf("NewPageTable(%d,%d) accepted", tc.sets, tc.ways)
		}
	}
}

func TestPageTableLookupInstall(t *testing.T) {
	tb := mustTable(t, 8, 4)
	set := tb.SetOf(100)
	if _, ok := tb.Lookup(set, 100); ok {
		t.Fatal("empty table lookup hit")
	}
	w := tb.Victim(set)
	*tb.Page(set, w) = PageState{Tag: 100, Valid: true}
	tb.Promote(set, w)
	got, ok := tb.Lookup(set, 100)
	if !ok || got != w {
		t.Errorf("Lookup = (%d,%v), want (%d,true)", got, ok, w)
	}
}

func TestPageTableNonPowerOfTwoSets(t *testing.T) {
	tb := mustTable(t, 6, 4) // Unison's set counts are not powers of two
	for page := uint64(0); page < 100; page++ {
		if s := tb.SetOf(page); s != page%6 {
			t.Fatalf("SetOf(%d) = %d, want %d", page, s, page%6)
		}
	}
}

func TestPageTableVictimPrefersInvalid(t *testing.T) {
	tb := mustTable(t, 2, 4)
	// Fill ways 0..2; victim must be the remaining invalid way 3.
	for w := 0; w < 3; w++ {
		*tb.Page(0, w) = PageState{Tag: uint64(w), Valid: true}
		tb.Promote(0, w)
	}
	if v := tb.Victim(0); v != 3 {
		t.Errorf("Victim = %d, want invalid way 3", v)
	}
}

func TestPageTableLRUVictim(t *testing.T) {
	tb := mustTable(t, 1, 4)
	for w := 0; w < 4; w++ {
		*tb.Page(0, w) = PageState{Tag: uint64(w), Valid: true}
		tb.Promote(0, w)
	}
	// Touch 0 again: LRU is now 1.
	tb.Promote(0, 0)
	if v := tb.Victim(0); v != 1 {
		t.Errorf("Victim = %d, want 1", v)
	}
}

func TestPageTableLRUInvariantProperty(t *testing.T) {
	tb := mustTable(t, 7, 4)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			set := uint64(op) % tb.Sets()
			way := int(op>>8) % tb.Ways()
			tb.Promote(set, way)
		}
		return tb.CheckLRU() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPageTableAccessors(t *testing.T) {
	tb := mustTable(t, 3, 8)
	if tb.Sets() != 3 || tb.Ways() != 8 {
		t.Errorf("Sets/Ways = %d/%d", tb.Sets(), tb.Ways())
	}
}
