package dramcache

import (
	"fmt"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/predictor"
)

// This file serializes each design's complete mutable state into a
// checkpoint stream: page/TAD arrays, predictor tables (via the predictor
// package's own codecs) and the access counters. Geometry is owned by
// construction; LoadState rejects snapshots whose array sizes disagree.

func (b *baseStats) saveState(w *checkpoint.Writer) {
	w.U64(b.reads)
	w.U64(b.readHits)
	w.U64(b.writes)
	w.U64(b.triggerMisses)
	w.U64(b.underpredMisses)
	w.U64(b.singletonSkips)
	w.U64(b.offReadBytes)
	w.U64(b.offWriteBytes)
}

func (b *baseStats) loadState(r *checkpoint.Reader) {
	b.reads = r.U64()
	b.readHits = r.U64()
	b.writes = r.U64()
	b.triggerMisses = r.U64()
	b.underpredMisses = r.U64()
	b.singletonSkips = r.U64()
	b.offReadBytes = r.U64()
	b.offWriteBytes = r.U64()
}

// SaveState serializes every page's state and the LRU array.
func (t *PageTable) SaveState(w *checkpoint.Writer) {
	w.Section("dramcache.pagetable")
	w.U64(uint64(len(t.pages)))
	for i := range t.pages {
		p := &t.pages[i]
		w.U64(p.Tag)
		w.U32(uint32(p.Predicted))
		w.U32(uint32(p.Fetched))
		w.U32(uint32(p.Touched))
		w.U32(uint32(p.Dirty))
		w.U64(p.PC)
		w.U8(uint8(p.Off))
		w.Bool(p.Valid)
	}
	w.U8Slice(t.lru)
}

// LoadState restores state saved by SaveState into an identically sized
// table.
func (t *PageTable) LoadState(r *checkpoint.Reader) error {
	r.Section("dramcache.pagetable")
	if n := r.U64(); r.Err() == nil && n != uint64(len(t.pages)) {
		return fmt.Errorf("dramcache: snapshot has %d pages, table has %d", n, len(t.pages))
	}
	for i := range t.pages {
		p := &t.pages[i]
		p.Tag = r.U64()
		p.Predicted = predictor.Footprint(r.U32())
		p.Fetched = predictor.Footprint(r.U32())
		p.Touched = predictor.Footprint(r.U32())
		p.Dirty = predictor.Footprint(r.U32())
		p.PC = r.U64()
		p.Off = int8(r.U8())
		p.Valid = r.Bool()
	}
	r.U8SliceInto(t.lru)
	return r.Err()
}

// SaveState implements Design.
func (d *Alloy) SaveState(w *checkpoint.Writer) {
	w.Section("alloy")
	w.U64Slice(d.tads)
	d.mp.SaveState(w)
	d.st.saveState(w)
}

// LoadState implements Design.
func (d *Alloy) LoadState(r *checkpoint.Reader) error {
	r.Section("alloy")
	r.U64SliceInto(d.tads)
	if err := d.mp.LoadState(r); err != nil {
		return err
	}
	d.st.loadState(r)
	return r.Err()
}

// SaveState implements Design.
func (d *Footprint) SaveState(w *checkpoint.Writer) {
	w.Section("footprint")
	d.fp.SaveState(w)
	d.single.SaveState(w)
	d.table.SaveState(w)
	d.st.saveState(w)
}

// LoadState implements Design.
func (d *Footprint) LoadState(r *checkpoint.Reader) error {
	r.Section("footprint")
	if err := d.fp.LoadState(r); err != nil {
		return err
	}
	if err := d.single.LoadState(r); err != nil {
		return err
	}
	if err := d.table.LoadState(r); err != nil {
		return err
	}
	d.st.loadState(r)
	return r.Err()
}

// SaveState implements Design.
func (d *LohHill) SaveState(w *checkpoint.Writer) {
	w.Section("lohhill")
	d.table.SaveState(w)
	d.st.saveState(w)
}

// LoadState implements Design.
func (d *LohHill) LoadState(r *checkpoint.Reader) error {
	r.Section("lohhill")
	if err := d.table.LoadState(r); err != nil {
		return err
	}
	d.st.loadState(r)
	return r.Err()
}

// SaveState implements Design.
func (d *Ideal) SaveState(w *checkpoint.Writer) {
	w.Section("ideal")
	d.st.saveState(w)
}

// LoadState implements Design.
func (d *Ideal) LoadState(r *checkpoint.Reader) error {
	r.Section("ideal")
	d.st.loadState(r)
	return r.Err()
}

// SaveState implements Design.
func (d *None) SaveState(w *checkpoint.Writer) {
	w.Section("none")
	d.st.saveState(w)
}

// LoadState implements Design.
func (d *None) LoadState(r *checkpoint.Reader) error {
	r.Section("none")
	d.st.loadState(r)
	return r.Err()
}
