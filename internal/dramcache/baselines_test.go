package dramcache

import (
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
)

func parts(t *testing.T) (stacked, offchip *dram.Controller) {
	t.Helper()
	s, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		t.Fatal(err)
	}
	o, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, o
}

func TestIdealAlwaysHits(t *testing.T) {
	s, _ := parts(t)
	d := NewIdeal(s)
	if d.Name() != "ideal" {
		t.Error("name")
	}
	var at uint64
	for i := 0; i < 100; i++ {
		r := d.Access(Request{Addr: mem.Addr(uint64(i) * 64 * 997), At: at})
		if !r.Hit {
			t.Fatal("ideal cache missed")
		}
		at = r.DoneAt
	}
	snap := d.Snapshot()
	if snap.MissRatioPct() != 0 {
		t.Errorf("ideal miss ratio = %v", snap.MissRatioPct())
	}
	if snap.Reads != 100 {
		t.Errorf("Reads = %d", snap.Reads)
	}
	if snap.OffchipReadBytes != 0 {
		t.Error("ideal cache went off-chip")
	}
}

func TestIdealWrite(t *testing.T) {
	s, _ := parts(t)
	d := NewIdeal(s)
	r := d.Access(Request{Addr: 0, Write: true, At: 5})
	if !r.Hit || r.DoneAt <= 5 {
		t.Errorf("write response = %+v", r)
	}
	if d.Snapshot().Writes != 1 {
		t.Error("write not counted")
	}
	d.ResetStats()
	if d.Snapshot().Writes != 0 {
		t.Error("ResetStats")
	}
}

func TestNoneNeverHits(t *testing.T) {
	_, o := parts(t)
	d := NewNone(o)
	if d.Name() != "none" {
		t.Error("name")
	}
	r := d.Access(Request{Addr: 4096, At: 10})
	if r.Hit {
		t.Error("baseline hit")
	}
	if r.DoneAt <= 10 {
		t.Error("no latency")
	}
	w := d.Access(Request{Addr: 8192, Write: true, At: 10})
	if w.Hit {
		t.Error("baseline write hit")
	}
	snap := d.Snapshot()
	if snap.MissRatioPct() != 100 {
		t.Errorf("baseline miss ratio = %v", snap.MissRatioPct())
	}
	if snap.OffchipReadBytes != 64 || snap.OffchipWriteBytes != 64 {
		t.Errorf("traffic = %d/%d", snap.OffchipReadBytes, snap.OffchipWriteBytes)
	}
	d.ResetStats()
	if d.Snapshot().Reads != 0 {
		t.Error("ResetStats")
	}
}

func TestNoneSlowerThanIdeal(t *testing.T) {
	// The stacked part must serve a block faster than the off-chip part:
	// the entire premise of die-stacked caching.
	s, o := parts(t)
	ideal := NewIdeal(s)
	none := NewNone(o)
	ri := ideal.Access(Request{Addr: 64 * 1024, At: 0})
	rn := none.Access(Request{Addr: 64 * 1024, At: 0})
	if ri.DoneAt-0 >= rn.DoneAt-0 {
		t.Errorf("stacked latency %d >= off-chip %d", ri.DoneAt, rn.DoneAt)
	}
}

func TestSnapshotMissRatioEmpty(t *testing.T) {
	var s Snapshot
	if s.MissRatioPct() != 0 {
		t.Error("empty snapshot miss ratio")
	}
}
