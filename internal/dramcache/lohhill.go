package dramcache

import (
	"fmt"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
)

// LHWays is the associativity of the Loh-Hill organization: an 8 KB DRAM
// row holds a 29-way set (28 usable data ways after ECC in the original;
// we model 28) plus three 64 B tag blocks at the head of the row.
const (
	LHWays      = 28
	lhTagBlocks = 3
)

// LohHill implements the block-based design of Loh & Hill [20] that the
// paper's §II-A discusses as Alloy Cache's predecessor: each DRAM row is
// one highly-associative set with its tags colocated in the same row. A
// lookup reads the tag blocks first and then the hit way — serialized, but
// scheduled so the data access hits the open row. An on-chip "MissMap"
// tracks block presence so misses skip the in-DRAM tag lookup entirely; its
// cost is an SRAM lookup on every access, hit or miss, and a capacity that
// does not scale (the multi-MB structure the paper calls out).
type LohHill struct {
	stacked *dram.Controller
	offchip *dram.Controller
	table   *PageTable // one "page" per way with a single block: tags only
	// missMapLatency is charged on every access (§II-A: the MissMap adds
	// to the cache lookup path).
	missMapLatency uint64

	st baseStats
}

// NewLohHill builds the design with the given data capacity.
func NewLohHill(capacityBytes uint64, stacked, offchip *dram.Controller) (*LohHill, error) {
	rows := capacityBytes / mem.RowBytes
	if rows == 0 {
		return nil, fmt.Errorf("dramcache: loh-hill capacity %d below one row", capacityBytes)
	}
	table, err := NewPageTable(rows, LHWays)
	if err != nil {
		return nil, err
	}
	return &LohHill{
		stacked:        stacked,
		offchip:        offchip,
		table:          table,
		missMapLatency: 20, // multi-MB SRAM MissMap lookup
	}, nil
}

// Name implements Design.
func (d *LohHill) Name() string { return "lohhill" }

// rowOf maps a set to its stacked row (one set per row).
func (d *LohHill) rowOf(set uint64) (ch, bank int, row uint64) {
	return d.stacked.MapAddr(set * mem.RowBytes)
}

// Access implements Design.
func (d *LohHill) Access(r Request) Response {
	block := r.Addr.Block()
	set := d.table.SetOf(block)
	// Every access consults the MissMap first.
	t0 := r.At + d.missMapLatency

	way, present := d.table.Lookup(set, block)
	ch, bank, row := d.rowOf(set)

	if r.Write {
		d.st.writes++
		if present {
			p := d.table.Page(set, way)
			p.Dirty = 1
			d.table.Promote(set, way)
			res := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: t0})
			return Response{DoneAt: res.Done, Hit: true}
		}
		d.install(set, block, t0, true)
		res := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: t0})
		return Response{DoneAt: res.Done, Hit: false}
	}

	d.st.reads++
	if present {
		d.st.readHits++
		d.table.Promote(set, way)
		// Serialized tag-then-data: the tag blocks stream first, then the
		// matching way is read from the now-open row (the row-buffer-hit
		// scheduling optimization of [20]).
		tags := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: lhTagBlocks * mem.BlockSize, At: t0})
		data := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, At: tags.Done})
		return Response{DoneAt: data.Done, Hit: true}
	}

	// MissMap says absent: go straight off-chip, no DRAM tag lookup.
	off := d.offchip.Access(uint64(r.Addr), t0, mem.BlockSize, false)
	d.st.offReadBytes += mem.BlockSize
	d.st.triggerMisses++
	d.install(set, block, t0, false)
	// The fill writes tag blocks + data into the row (background,
	// charged at the demand timestamp like every other design's fills).
	d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: (lhTagBlocks + 1) * mem.BlockSize, Write: true, At: t0})
	return Response{DoneAt: off.Done, Hit: false}
}

// AccessBatch implements Design via the serial adapter: Loh-Hill is a
// §II-A strawman kept off every hot path, so it takes no vectorized plan
// phase.
func (d *LohHill) AccessBatch(reqs []Request, resps []Response) {
	SerialAccess(d, reqs, resps)
}

// install places block into its set, writing back a dirty LRU victim.
func (d *LohHill) install(set, block uint64, at uint64, dirty bool) {
	way := d.table.Victim(set)
	p := d.table.Page(set, way)
	if p.Valid && p.Dirty != 0 {
		d.offchip.Access(uint64(mem.BlockAddr(p.Tag)), at, mem.BlockSize, true)
		d.st.offWriteBytes += mem.BlockSize
	}
	*p = PageState{Tag: block, Valid: true}
	if dirty {
		p.Dirty = 1
	}
	d.table.Promote(set, way)
}

// Contains reports (for tests) whether the block is cached.
func (d *LohHill) Contains(block uint64) bool {
	_, ok := d.table.Lookup(d.table.SetOf(block), block)
	return ok
}

// Snapshot implements Design.
func (d *LohHill) Snapshot() Snapshot { return d.st.snapshot(d.Name()) }

// ResetStats implements Design.
func (d *LohHill) ResetStats() { d.st.reset() }
