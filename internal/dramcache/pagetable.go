package dramcache

import (
	"fmt"

	"unisoncache/internal/predictor"
)

// PageState is the per-page metadata a page-based DRAM cache maintains. For
// Footprint Cache it lives in the SRAM tag array; for Unison Cache it is
// the in-DRAM metadata of Figure 2 (tag, valid/dirty bit vectors, the
// triggering PC+offset pair). The simulator keeps Fetched and Touched as
// separate vectors; hardware encodes the distinction in the modified
// valid/dirty semantics the paper adopts from the Footprint Cache study.
type PageState struct {
	// Tag is the full page number.
	Tag uint64
	// Predicted is the footprint predicted at allocation time, frozen for
	// eviction-time accuracy accounting (Table V).
	Predicted predictor.Footprint
	// Fetched marks blocks brought into the cache (predicted footprint
	// plus underprediction fills).
	Fetched predictor.Footprint
	// Touched marks blocks actually demanded during residency — the
	// page's true footprint, learned at eviction.
	Touched predictor.Footprint
	// Dirty marks blocks written during residency.
	Dirty predictor.Footprint
	// PC and Off are the (PC, offset) pair of the triggering miss.
	PC  uint64
	Off int8
	// Valid marks the way as occupied.
	Valid bool
}

// PageTable is a set-associative array of PageState with true-LRU
// replacement, shared by the page-based designs. Sets need not be a power
// of two (Unison Cache's non-power-of-two geometry).
type PageTable struct {
	sets uint64
	ways int
	// setMask is sets-1 when sets is a power of two (the common scaled
	// configuration), letting SetOf skip the modulo; ^0 otherwise.
	setMask uint64
	pages   []PageState
	lru     []uint8
}

// NewPageTable allocates a table of sets x ways pages.
func NewPageTable(sets uint64, ways int) (*PageTable, error) {
	if sets == 0 || ways <= 0 || ways > 255 {
		return nil, fmt.Errorf("dramcache: page table needs sets>0, 0<ways<=255; got %d x %d", sets, ways)
	}
	t := &PageTable{
		sets:    sets,
		ways:    ways,
		setMask: ^uint64(0),
		pages:   make([]PageState, sets*uint64(ways)),
		lru:     make([]uint8, sets*uint64(ways)),
	}
	if sets&(sets-1) == 0 {
		t.setMask = sets - 1
	}
	for s := uint64(0); s < sets; s++ {
		for w := 0; w < ways; w++ {
			t.lru[s*uint64(ways)+uint64(w)] = uint8(w)
		}
	}
	return t, nil
}

// Sets returns the set count.
func (t *PageTable) Sets() uint64 { return t.sets }

// Ways returns the associativity.
func (t *PageTable) Ways() int { return t.ways }

// SetOf maps a page number to its set index.
func (t *PageTable) SetOf(page uint64) uint64 {
	if t.setMask != ^uint64(0) {
		return page & t.setMask
	}
	return page % t.sets
}

// Lookup finds the way holding page within set, if any.
func (t *PageTable) Lookup(set, page uint64) (way int, ok bool) {
	base := set * uint64(t.ways)
	for w := 0; w < t.ways; w++ {
		p := &t.pages[base+uint64(w)]
		if p.Valid && p.Tag == page {
			return w, true
		}
	}
	return 0, false
}

// Page returns the state of way w of set (mutable).
func (t *PageTable) Page(set uint64, way int) *PageState {
	return &t.pages[set*uint64(t.ways)+uint64(way)]
}

// Victim returns the way to replace in set: an invalid way if one exists,
// else the LRU way.
func (t *PageTable) Victim(set uint64) int {
	base := set * uint64(t.ways)
	victim := 0
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if !t.pages[i].Valid {
			return w
		}
		if t.lru[i] == uint8(t.ways-1) {
			victim = w
		}
	}
	return victim
}

// Promote makes way the MRU of its set.
func (t *PageTable) Promote(set uint64, way int) {
	base := set * uint64(t.ways)
	old := t.lru[base+uint64(way)]
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if t.lru[i] < old {
			t.lru[i]++
		}
	}
	t.lru[base+uint64(way)] = 0
}

// CheckLRU verifies every set's recency ranks form a permutation; used by
// property tests.
func (t *PageTable) CheckLRU() error {
	for s := uint64(0); s < t.sets; s++ {
		var seen uint64
		for w := 0; w < t.ways; w++ {
			r := t.lru[s*uint64(t.ways)+uint64(w)]
			if int(r) >= t.ways {
				return fmt.Errorf("set %d way %d: rank %d out of range", s, w, r)
			}
			if seen&(1<<r) != 0 {
				return fmt.Errorf("set %d: duplicate rank %d", s, r)
			}
			seen |= 1 << r
		}
	}
	return nil
}
