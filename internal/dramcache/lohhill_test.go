package dramcache

import (
	"testing"

	"unisoncache/internal/mem"
)

func newLH(t *testing.T, capacity uint64) (*LohHill, func() uint64) {
	t.Helper()
	s, o := parts(t)
	lh, err := NewLohHill(capacity, s, o)
	if err != nil {
		t.Fatal(err)
	}
	return lh, func() uint64 { return o.Stats().BytesWritten }
}

func TestLohHillRejectsTinyCapacity(t *testing.T) {
	s, o := parts(t)
	if _, err := NewLohHill(100, s, o); err == nil {
		t.Error("sub-row capacity accepted")
	}
}

func TestLohHillMissThenHit(t *testing.T) {
	lh, _ := newLH(t, 1<<20)
	r1 := lh.Access(Request{Addr: 4096, At: 0})
	if r1.Hit {
		t.Error("cold access hit")
	}
	r2 := lh.Access(Request{Addr: 4096, At: r1.DoneAt})
	if !r2.Hit {
		t.Error("refetch missed")
	}
	if lh.Snapshot().MissRatioPct() != 50 {
		t.Errorf("miss ratio = %v", lh.Snapshot().MissRatioPct())
	}
}

func TestLohHillHitSlowerThanAlloy(t *testing.T) {
	// §II-A: the serialized tag-then-data lookup is the latency problem
	// Alloy Cache fixed — verify the ordering holds in the model.
	lh, _ := newLH(t, 1<<20)
	s2, o2 := parts(t)
	ac, err := NewAlloy(1<<20, 16, s2, o2)
	if err != nil {
		t.Fatal(err)
	}
	at := lh.Access(Request{Addr: 4096, PC: 1, At: 0}).DoneAt + 1000
	lhLat := lh.Access(Request{Addr: 4096, PC: 1, At: at}).DoneAt - at

	at2 := ac.Access(Request{Addr: 4096, PC: 1, At: 0}).DoneAt + 1000
	acLat := ac.Access(Request{Addr: 4096, PC: 1, At: at2}).DoneAt - at2
	if lhLat <= acLat {
		t.Errorf("Loh-Hill hit latency %d not above Alloy %d", lhLat, acLat)
	}
}

func TestLohHillHighAssociativityAvoidsConflicts(t *testing.T) {
	lh, _ := newLH(t, 1<<20)
	sets := lh.table.Sets()
	// 20 blocks mapping to one set coexist in a 28-way design.
	var at uint64
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 20; i++ {
			at = lh.Access(Request{Addr: mem.BlockAddr(7 + i*sets), At: at}).DoneAt
		}
	}
	snap := lh.Snapshot()
	// After the cold fill, everything hits.
	if snap.ReadHits < 40 {
		t.Errorf("hits = %d, want 40 (two warm rounds)", snap.ReadHits)
	}
}

func TestLohHillDirtyWriteback(t *testing.T) {
	lh, wb := newLH(t, 1<<20)
	sets := lh.table.Sets()
	var at uint64
	// Dirty one block, then overflow its set with 28 more.
	at = lh.Access(Request{Addr: mem.BlockAddr(3), Write: true, At: at}).DoneAt
	before := wb()
	for i := uint64(1); i <= LHWays; i++ {
		at = lh.Access(Request{Addr: mem.BlockAddr(3 + i*sets), At: at}).DoneAt
	}
	if wb()-before != mem.BlockSize {
		t.Errorf("dirty eviction wrote %d bytes, want 64", wb()-before)
	}
}

func TestLohHillWriteHit(t *testing.T) {
	lh, _ := newLH(t, 1<<20)
	at := lh.Access(Request{Addr: 64, At: 0}).DoneAt
	r := lh.Access(Request{Addr: 64, Write: true, At: at})
	if !r.Hit {
		t.Error("write to cached block missed")
	}
	if lh.Snapshot().Writes != 1 {
		t.Error("write not counted")
	}
}

func TestLohHillMissBypassesTagLookup(t *testing.T) {
	// With the MissMap, a miss goes straight off-chip: its latency must be
	// below the hit path's serialized tag read plus an off-chip access.
	lh, _ := newLH(t, 1<<20)
	r := lh.Access(Request{Addr: 8192, At: 0})
	// Pure off-chip access from t=20 (MissMap) should be well under 400.
	if r.DoneAt > 400 {
		t.Errorf("bypassed miss took %d cycles", r.DoneAt)
	}
}

func TestLohHillResetStats(t *testing.T) {
	lh, _ := newLH(t, 1<<20)
	at := lh.Access(Request{Addr: 0, At: 0}).DoneAt
	lh.ResetStats()
	if lh.Snapshot().Reads != 0 {
		t.Error("ResetStats did not zero")
	}
	if r := lh.Access(Request{Addr: 0, At: at}); !r.Hit {
		t.Error("ResetStats lost content")
	}
	if lh.Name() != "lohhill" {
		t.Error("name")
	}
	if !lh.Contains(0) {
		t.Error("Contains")
	}
}
