package dramcache

import (
	"fmt"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
	"unisoncache/internal/predictor"
)

// FCPageBlocks is Footprint Cache's page size in blocks: 2 KB pages, the
// accuracy/tag-overhead sweet spot the FC study found (§IV-C.2).
const FCPageBlocks = 32

// Footprint implements the Footprint Cache of Jevdjic, Volos & Falsafi
// [10]: a page-based stacked-DRAM cache with an SRAM tag array, 32-way
// associativity, and footprint prediction so only the blocks a page visit
// will demand are fetched. Its defining scalability problem — the SRAM tag
// array growing to tens of MBs (Table IV) — appears here as the
// size-dependent tagLatency added to every hit and miss.
type Footprint struct {
	stacked *dram.Controller
	offchip *dram.Controller
	fp      *predictor.FootprintPredictor
	single  *predictor.SingletonTable
	table   *PageTable

	tagLatency uint64

	// plan is the reusable AccessBatch scratch (see footprintPlan).
	plan []footprintPlan

	st baseStats
}

// footprintPlan is the precomputed, purely address-dependent part of one
// access: page decomposition, set index and the tag-SRAM-adjusted start
// time. The footprint predictor is NOT probed here — it is only consulted
// on trigger misses, and whether an access triggers depends on page-table
// state earlier batch entries may change, so the probe stays in commit.
// The data row likewise depends on the commit-time way.
type footprintPlan struct {
	page uint64
	set  uint64
	t1   uint64
	bit  predictor.Footprint
	off  int8
}

// FCConfig parameterizes NewFootprint.
type FCConfig struct {
	CapacityBytes uint64
	Ways          int
	// TagLatency is the SRAM tag-array lookup latency in CPU cycles
	// (Table IV; grows with capacity).
	TagLatency uint64
	// PredictorEntries sizes the footprint history table (16 K ≈ 144 KB).
	PredictorEntries int
	// SingletonEntries sizes the singleton table (256 ≈ 3 KB).
	SingletonEntries int
}

// NewFootprint builds a Footprint Cache over the two DRAM parts.
func NewFootprint(cfg FCConfig, stacked, offchip *dram.Controller) (*Footprint, error) {
	if cfg.Ways <= 0 {
		cfg.Ways = 32
	}
	if cfg.PredictorEntries == 0 {
		cfg.PredictorEntries = 16384
	}
	if cfg.SingletonEntries == 0 {
		cfg.SingletonEntries = 256
	}
	pages := cfg.CapacityBytes / (FCPageBlocks * mem.BlockSize)
	if pages < uint64(cfg.Ways) {
		return nil, fmt.Errorf("dramcache: footprint capacity %d below one set", cfg.CapacityBytes)
	}
	table, err := NewPageTable(pages/uint64(cfg.Ways), cfg.Ways)
	if err != nil {
		return nil, err
	}
	return &Footprint{
		stacked:    stacked,
		offchip:    offchip,
		fp:         predictor.NewFootprintPredictor(cfg.PredictorEntries, FCPageBlocks),
		single:     predictor.NewSingletonTable(cfg.SingletonEntries),
		table:      table,
		tagLatency: cfg.TagLatency,
	}, nil
}

// Name implements Design.
func (d *Footprint) Name() string { return "footprint" }

// Predictor exposes the footprint predictor for Table V reporting.
func (d *Footprint) Predictor() *predictor.FootprintPredictor { return d.fp }

// Table exposes the page table for white-box tests.
func (d *Footprint) Table() *PageTable { return d.table }

// dataRow maps (set, way) to the stacked-DRAM row holding the page: four
// 2 KB pages per 8 KB row.
func (d *Footprint) dataRow(set uint64, way int) (ch, bank int, row uint64) {
	slot := set*uint64(d.table.Ways()) + uint64(way)
	return d.stacked.MapAddr(slot / 4 * mem.RowBytes)
}

// pageAddr returns the physical byte address of the page's first block.
func pageAddr(page uint64, pageBlocks int) mem.Addr {
	return mem.BlockAddr(page * uint64(pageBlocks))
}

// Access implements Design.
func (d *Footprint) Access(r Request) Response {
	var p footprintPlan
	d.planOne(&r, &p)
	return d.commit(r, &p)
}

// AccessBatch implements Design: page decomposition, set indexing and the
// tag-latency offset vectorize over the batch; the commit phase replays the
// batch in arrival order against page-table, predictor and DRAM state, so
// results are bit-identical to serial Access.
func (d *Footprint) AccessBatch(reqs []Request, resps []Response) {
	if len(reqs) > cap(d.plan) {
		d.plan = make([]footprintPlan, len(reqs))
	}
	plans := d.plan[:len(reqs)]
	for i := range reqs {
		d.planOne(&reqs[i], &plans[i])
	}
	for i := range reqs {
		resps[i] = d.commit(reqs[i], &plans[i])
	}
}

// planOne computes the address-only plan for one request.
func (d *Footprint) planOne(r *Request, p *footprintPlan) {
	block := r.Addr.Block()
	page := block / FCPageBlocks
	off := int(block % FCPageBlocks)
	*p = footprintPlan{
		page: page,
		set:  d.table.SetOf(page),
		// Every path first pays the SRAM tag lookup (Table IV).
		t1:  r.At + d.tagLatency,
		bit: predictor.Footprint(1) << off,
		off: int8(off),
	}
}

// commit services one planned request against live state.
func (d *Footprint) commit(r Request, pl *footprintPlan) Response {
	page, set, t1, bit, off := pl.page, pl.set, pl.t1, pl.bit, int(pl.off)

	if way, ok := d.table.Lookup(set, page); ok {
		p := d.table.Page(set, way)
		if p.Fetched&bit != 0 {
			// Block present: a hit costs tag SRAM + one stacked read.
			p.Touched |= bit
			if r.Write {
				p.Dirty |= bit
				d.st.writes++
			} else {
				d.st.reads++
				d.st.readHits++
			}
			d.table.Promote(set, way)
			ch, bank, row := d.dataRow(set, way)
			res := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: r.Write, At: t1})
			return Response{DoneAt: res.Done, Hit: true}
		}
		// Underprediction: the page is resident but this block was not in
		// the predicted footprint (§III-A.3). Fetch just the block; the
		// eviction-time update will repair the footprint entry.
		p.Fetched |= bit
		p.Touched |= bit
		d.table.Promote(set, way)
		if r.Write {
			p.Dirty |= bit
			d.st.writes++
			ch, bank, row := d.dataRow(set, way)
			res := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: t1})
			return Response{DoneAt: res.Done, Hit: false}
		}
		d.st.reads++
		d.st.underpredMisses++
		res := d.offchip.Access(uint64(r.Addr), t1, mem.BlockSize, false)
		d.st.offReadBytes += mem.BlockSize
		ch, bank, row := d.dataRow(set, way)
		// Background fill charged at the demand timestamp (the simulator
		// serves requests in processing order; a future-dated fill would
		// wrongly block demand reads a reordering controller puts first).
		d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: t1})
		return Response{DoneAt: res.Done, Hit: false}
	}

	// Page absent.
	if r.Write {
		// Dirty writeback to an evicted page: write through to memory
		// rather than allocating a page for a lone block.
		d.st.writes++
		res := d.offchip.Access(uint64(r.Addr), t1, mem.BlockSize, true)
		d.st.offWriteBytes += mem.BlockSize
		return Response{DoneAt: res.Done, Hit: false}
	}
	d.st.reads++
	d.st.triggerMisses++
	return d.triggerMiss(r, page, off, set, t1)
}

// triggerMiss handles the first access to an uncached page: footprint
// prediction, singleton bypass, allocation, eviction learning.
func (d *Footprint) triggerMiss(r Request, page uint64, off int, set uint64, t1 uint64) Response {
	var predicted predictor.Footprint
	if pc0, off0, promoted := d.single.Check(page); promoted {
		// A bypassed singleton is being re-demanded: correct the history
		// entry so this trigger stops predicting a singleton, and
		// allocate with both blocks (§III-A.4).
		predicted = predictor.Footprint(1)<<off0 | predictor.Footprint(1)<<off
		d.fp.Update(pc0, off0, predicted)
	} else {
		predicted = d.fp.Predict(r.PC, off)
	}

	if mem.PopCount32(predicted) == 1 {
		// Predicted singleton: forward the block without allocating,
		// preserving effective capacity (§III-A.4).
		d.st.singletonSkips++
		d.single.Insert(page, r.PC, off)
		res := d.offchip.Access(uint64(r.Addr), t1, mem.BlockSize, false)
		d.st.offReadBytes += mem.BlockSize
		return Response{DoneAt: res.Done, Hit: false}
	}

	// Allocate: evict the LRU page, learning its footprint.
	way := d.table.Victim(set)
	p := d.table.Page(set, way)
	if p.Valid {
		d.evict(p, t1)
	}

	// Fetch the predicted footprint: critical block first, then the rest
	// of the footprint streamed from the same memory row.
	crit := d.offchip.Access(uint64(r.Addr), t1, mem.BlockSize, false)
	k := mem.PopCount32(predicted)
	d.st.offReadBytes += uint64(k) * mem.BlockSize
	if k > 1 {
		d.offchip.Access(uint64(pageAddr(page, FCPageBlocks)), crit.DataAt, (k-1)*mem.BlockSize, false)
	}
	// Install and write the footprint into the stacked row (off the
	// critical path).
	*p = PageState{
		Tag:       page,
		Predicted: predicted,
		Fetched:   predicted,
		Touched:   predictor.Footprint(1) << off,
		PC:        r.PC,
		Off:       int8(off),
		Valid:     true,
	}
	d.table.Promote(set, way)
	ch, bank, row := d.dataRow(set, way)
	d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: k * mem.BlockSize, Write: true, At: t1})
	return Response{DoneAt: crit.Done, Hit: false}
}

// evict retires a page: trains the footprint predictor with the observed
// footprint and writes dirty blocks back to memory at footprint
// granularity (one row activation for the whole group, the §V-D energy
// advantage).
func (d *Footprint) evict(p *PageState, at uint64) {
	d.fp.RecordEviction(p.PC, int(p.Off), p.Predicted, p.Touched)
	if n := mem.PopCount32(p.Dirty); n > 0 {
		d.offchip.Access(uint64(pageAddr(p.Tag, FCPageBlocks)), at, n*mem.BlockSize, true)
		d.st.offWriteBytes += uint64(n) * mem.BlockSize
	}
	p.Valid = false
}

// Snapshot implements Design.
func (d *Footprint) Snapshot() Snapshot {
	s := d.st.snapshot(d.Name())
	fps := d.fp.Stats()
	acc, of := fps.Accuracy, fps.Overfetch
	s.FP = &acc
	s.FO = &of
	return s
}

// ResetStats implements Design.
func (d *Footprint) ResetStats() {
	d.st.reset()
	d.fp.ResetStats()
	d.single.ResetStats()
}
