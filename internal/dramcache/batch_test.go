package dramcache

import (
	"bytes"
	"math/rand"
	"testing"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/mem"
	"unisoncache/internal/stats"
)

// batchEquivalence drives a serial and a batched copy of the same design
// through one request stream — Access per request on one, AccessBatch in
// random-size batches on the other — and requires bit-identical responses,
// statistics and checkpoint bytes. This is the contract AccessBatch
// documents: batching is a pure performance transform.
func batchEquivalence(t *testing.T, build func(t *testing.T) Design) {
	t.Helper()
	serial := build(t)
	batched := build(t)

	rng := rand.New(rand.NewSource(42))
	const total = 20000
	reqs := make([]Request, 0, 64)
	resps := make([]Response, 64)
	at := uint64(0)
	done := 0
	for done < total {
		n := 1 + rng.Intn(17)
		if done+n > total {
			n = total - done
		}
		reqs = reqs[:0]
		for i := 0; i < n; i++ {
			at += uint64(rng.Intn(200))
			reqs = append(reqs, Request{
				// A few thousand blocks: enough reuse to exercise hits,
				// evictions and predictor training.
				Addr:  mem.BlockAddr(uint64(rng.Intn(4096))),
				PC:    uint64(rng.Intn(512)) * 4,
				Core:  rng.Intn(4),
				Write: rng.Intn(4) == 0,
				At:    at,
			})
		}
		for i, r := range reqs {
			resps[i] = serial.Access(r)
		}
		got := make([]Response, n)
		batched.AccessBatch(reqs, got)
		for i := range reqs {
			if got[i] != resps[i] {
				t.Fatalf("%s: request %d of batch at %d: batched %+v != serial %+v",
					serial.Name(), i, done, got[i], resps[i])
			}
		}
		done += n
		if done == total/2 {
			// Exercise the warmup/measurement boundary mid-stream.
			serial.ResetStats()
			batched.ResetStats()
		}
	}

	if s, b := serial.Snapshot(), batched.Snapshot(); !snapshotsEqual(s, b) {
		t.Errorf("%s: snapshots diverge:\nserial  %+v\nbatched %+v", serial.Name(), s, b)
	}
	ws, wb := checkpoint.NewWriter(), checkpoint.NewWriter()
	serial.SaveState(ws)
	batched.SaveState(wb)
	if ws.Err() != nil || wb.Err() != nil {
		t.Fatalf("save: %v / %v", ws.Err(), wb.Err())
	}
	if !bytes.Equal(ws.Bytes(), wb.Bytes()) {
		t.Errorf("%s: checkpoint bytes diverge after batched run", serial.Name())
	}
}

// snapshotsEqual compares two snapshots by value, dereferencing the ratio
// pointers (plain struct equality would compare their addresses).
func snapshotsEqual(a, b Snapshot) bool {
	ratioEq := func(x, y *stats.Ratio) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || *x == *y
	}
	if !ratioEq(a.FP, b.FP) || !ratioEq(a.FO, b.FO) || !ratioEq(a.WP, b.WP) || !ratioEq(a.MP, b.MP) {
		return false
	}
	a.FP, a.FO, a.WP, a.MP = nil, nil, nil, nil
	b.FP, b.FO, b.WP, b.MP = nil, nil, nil, nil
	return a == b
}

func TestAccessBatchMatchesSerialAlloy(t *testing.T) {
	batchEquivalence(t, func(t *testing.T) Design {
		s, o := parts(t)
		a, err := NewAlloy(1<<20, 4, s, o)
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
}

func TestAccessBatchMatchesSerialFootprint(t *testing.T) {
	batchEquivalence(t, func(t *testing.T) Design {
		s, o := parts(t)
		f, err := NewFootprint(FCConfig{CapacityBytes: 1 << 20, TagLatency: 12}, s, o)
		if err != nil {
			t.Fatal(err)
		}
		return f
	})
}

func TestAccessBatchMatchesSerialIdeal(t *testing.T) {
	batchEquivalence(t, func(t *testing.T) Design {
		s, _ := parts(t)
		return NewIdeal(s)
	})
}

func TestAccessBatchMatchesSerialNone(t *testing.T) {
	batchEquivalence(t, func(t *testing.T) Design {
		_, o := parts(t)
		return NewNone(o)
	})
}

func TestAccessBatchMatchesSerialLohHill(t *testing.T) {
	batchEquivalence(t, func(t *testing.T) Design {
		s, o := parts(t)
		l, err := NewLohHill(1<<20, s, o)
		if err != nil {
			t.Fatal(err)
		}
		return l
	})
}

// TestAccessBatchSizeOne pins the degenerate batch: AccessBatch with a
// single request must be byte-for-byte the same as Access.
func TestAccessBatchSizeOne(t *testing.T) {
	s1, o1 := parts(t)
	a1, err := NewAlloy(1<<20, 4, s1, o1)
	if err != nil {
		t.Fatal(err)
	}
	s2, o2 := parts(t)
	a2, err := NewAlloy(1<<20, 4, s2, o2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var resp [1]Response
	at := uint64(0)
	for i := 0; i < 5000; i++ {
		at += uint64(rng.Intn(300))
		r := Request{
			Addr:  mem.BlockAddr(uint64(rng.Intn(2048))),
			PC:    uint64(rng.Intn(256)) * 4,
			Core:  rng.Intn(4),
			Write: rng.Intn(5) == 0,
			At:    at,
		}
		want := a1.Access(r)
		a2.AccessBatch([]Request{r}, resp[:])
		if resp[0] != want {
			t.Fatalf("request %d: size-1 batch %+v != serial %+v", i, resp[0], want)
		}
	}
	w1, w2 := checkpoint.NewWriter(), checkpoint.NewWriter()
	a1.SaveState(w1)
	a2.SaveState(w2)
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Error("checkpoint bytes diverge after size-1 batches")
	}
}
