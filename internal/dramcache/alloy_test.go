package dramcache

import (
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
)

func newAlloy(t *testing.T, capacity uint64) (*Alloy, *dram.Controller, *dram.Controller) {
	t.Helper()
	s, o := parts(t)
	a, err := NewAlloy(capacity, 16, s, o)
	if err != nil {
		t.Fatal(err)
	}
	return a, s, o
}

func TestAlloyRejectsTinyCapacity(t *testing.T) {
	s, o := parts(t)
	if _, err := NewAlloy(100, 1, s, o); err == nil {
		t.Error("sub-row capacity accepted")
	}
}

func TestAlloyMissThenHit(t *testing.T) {
	a, _, _ := newAlloy(t, 1<<20)
	r1 := a.Access(Request{Addr: 4096, PC: 1, At: 0})
	if r1.Hit {
		t.Error("cold access hit")
	}
	r2 := a.Access(Request{Addr: 4096, PC: 1, At: r1.DoneAt})
	if !r2.Hit {
		t.Error("refetched block missed")
	}
	snap := a.Snapshot()
	if snap.Reads != 2 || snap.ReadHits != 1 {
		t.Errorf("reads/hits = %d/%d", snap.Reads, snap.ReadHits)
	}
	if snap.MissRatioPct() != 50 {
		t.Errorf("miss ratio = %v", snap.MissRatioPct())
	}
}

func TestAlloyDirectMappedConflict(t *testing.T) {
	a, _, _ := newAlloy(t, 1<<20) // 128 rows x 112 TADs = 14336 slots
	numTADs := uint64(1<<20) / mem.RowBytes * TADsPerRow
	b1 := uint64(5)
	b2 := b1 + numTADs // same slot
	a.Access(Request{Addr: mem.BlockAddr(b1), At: 0})
	a.Access(Request{Addr: mem.BlockAddr(b2), At: 1000})
	if a.Contains(b1) {
		t.Error("conflicting block survived in a direct-mapped cache")
	}
	if !a.Contains(b2) {
		t.Error("newly fetched block absent")
	}
}

func TestAlloyDirtyWritebackOnConflict(t *testing.T) {
	a, _, o := newAlloy(t, 1<<20)
	numTADs := uint64(1<<20) / mem.RowBytes * TADsPerRow
	// Install dirty via an L2 writeback, then conflict-evict it.
	a.Access(Request{Addr: mem.BlockAddr(7), Write: true, At: 0})
	before := o.Stats().BytesWritten
	a.Access(Request{Addr: mem.BlockAddr(7 + numTADs), At: 100})
	if got := o.Stats().BytesWritten - before; got != mem.BlockSize {
		t.Errorf("dirty conflict wrote %d off-chip bytes, want 64", got)
	}
	if a.Snapshot().OffchipWriteBytes != mem.BlockSize {
		t.Error("writeback traffic not counted")
	}
}

func TestAlloyWriteHitNoOffchip(t *testing.T) {
	a, _, _ := newAlloy(t, 1<<20)
	a.Access(Request{Addr: 64, At: 0})
	snap0 := a.Snapshot()
	r := a.Access(Request{Addr: 64, Write: true, At: 1000})
	if !r.Hit {
		t.Error("write to cached block missed")
	}
	snap := a.Snapshot()
	if snap.OffchipReadBytes != snap0.OffchipReadBytes || snap.OffchipWriteBytes != 0 {
		t.Error("write hit generated off-chip traffic")
	}
	if snap.Writes != 1 {
		t.Errorf("Writes = %d", snap.Writes)
	}
}

func TestAlloyPredictedMissOverlapsOffchip(t *testing.T) {
	// A correctly predicted miss launches off-chip immediately after the
	// 1-cycle predictor; a mispredicted miss waits for the TAD probe. So
	// cold misses (predictor initialized toward miss) must be faster than
	// misses right after the predictor learned hits for the PC.
	aFast, _, _ := newAlloy(t, 1<<20)
	missLatFast := aFast.Access(Request{Addr: 4096, PC: 42, At: 0}).DoneAt

	aSlow, _, _ := newAlloy(t, 1<<20)
	// Teach PC 42 to predict hit.
	at := uint64(0)
	for i := 0; i < 8; i++ {
		aSlow.Access(Request{Addr: 4096, PC: 42, At: at})
		at += 2000
	}
	// Distinct cold block, same PC: predicted hit, actual miss.
	r := aSlow.Access(Request{Addr: 1 << 19, PC: 42, At: 1 << 20})
	if r.Hit {
		t.Fatal("expected miss")
	}
	missLatSlow := r.DoneAt - (1 << 20)
	if missLatSlow <= missLatFast {
		t.Errorf("mispredicted miss (%d cycles) not slower than predicted miss (%d)", missLatSlow, missLatFast)
	}
}

func TestAlloyFalseMissTraffic(t *testing.T) {
	a, _, o := newAlloy(t, 1<<20)
	// Prime the block and train the predictor toward miss for PC 9 by
	// touching many cold blocks with it.
	r := a.Access(Request{Addr: 64, PC: 9, At: 0})
	at := r.DoneAt
	for i := 1; i < 8; i++ {
		at = a.Access(Request{Addr: mem.Addr(1<<18 + i*64), PC: 9, At: at}).DoneAt
	}
	// Now access the cached block with the miss-trained PC: a false miss.
	reads0 := o.Stats().BytesRead
	res := a.Access(Request{Addr: 64, PC: 9, At: at})
	if !res.Hit {
		t.Fatal("block should be cached")
	}
	if o.Stats().BytesRead == reads0 {
		t.Error("false miss generated no wasted off-chip fetch")
	}
	if a.MissPredictor().Stats().FalseMiss == 0 {
		t.Error("false miss not recorded")
	}
}

func TestAlloySnapshotHasMP(t *testing.T) {
	a, _, _ := newAlloy(t, 1<<20)
	a.Access(Request{Addr: 0, At: 0})
	s := a.Snapshot()
	if s.MP == nil {
		t.Fatal("MP stats missing")
	}
	if s.FP != nil || s.WP != nil {
		t.Error("alloy should not report FP/WP stats")
	}
	a.ResetStats()
	if a.Snapshot().MP.Den != 0 {
		t.Error("ResetStats did not clear MP")
	}
}

func TestAlloyHitFasterThanMiss(t *testing.T) {
	a, _, _ := newAlloy(t, 1<<20)
	miss := a.Access(Request{Addr: 8192, PC: 3, At: 0})
	hit := a.Access(Request{Addr: 8192, PC: 3, At: 100000})
	missLat := miss.DoneAt
	hitLat := hit.DoneAt - 100000
	if hitLat >= missLat {
		t.Errorf("hit latency %d >= miss latency %d", hitLat, missLat)
	}
}

func TestAlloyCapacityScaling(t *testing.T) {
	small, _, _ := newAlloy(t, 1<<20)
	large, _, _ := newAlloy(t, 1<<24)
	if small.numTADs*16 != large.numTADs {
		t.Errorf("TAD count not linear: %d vs %d", small.numTADs, large.numTADs)
	}
}
