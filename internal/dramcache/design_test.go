package dramcache

import (
	"math"
	"testing"
)

// TestMissRatioPct pins the documented contract: the ratio is over demand
// reads only — writes never shift it — and the zero-read snapshot reports
// 0, not NaN.
func TestMissRatioPct(t *testing.T) {
	cases := []struct {
		name string
		snap Snapshot
		want float64
	}{
		{"zero reads", Snapshot{}, 0},
		{"zero reads with writes", Snapshot{Writes: 900}, 0},
		{"all hits", Snapshot{Reads: 250, ReadHits: 250}, 0},
		{"all misses", Snapshot{Reads: 64, ReadHits: 0}, 100},
		{"half", Snapshot{Reads: 10, ReadHits: 5}, 50},
		{"writes excluded", Snapshot{Reads: 10, ReadHits: 5, Writes: 1000}, 50},
		{"single read hit", Snapshot{Reads: 1, ReadHits: 1}, 0},
		{"single read miss", Snapshot{Reads: 1}, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.snap.MissRatioPct()
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("MissRatioPct(%+v) = %v, want finite", c.snap, got)
			}
			if got != c.want {
				t.Errorf("MissRatioPct(%+v) = %v, want %v", c.snap, got, c.want)
			}
		})
	}
}
