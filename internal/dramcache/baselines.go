package dramcache

import (
	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
)

// mapPlan is the precomputed DRAM address mapping for one baseline access.
// Controller.Access is exactly MapAddr followed by Do, so hoisting the
// mapping into a batch plan phase and issuing Do in arrival order is
// bit-identical to the serial path.
type mapPlan struct {
	row  uint64
	ch   int32
	bank int32
}

// Ideal is the latency-optimized reference of Figures 7 and 8: a DRAM cache
// that never misses and pays no tag overhead — functionally die-stacked
// main memory. Every access is a single stacked-DRAM block transfer.
type Ideal struct {
	stacked *dram.Controller
	plan    []mapPlan
	st      baseStats
}

// NewIdeal builds the ideal cache over the given stacked part.
func NewIdeal(stacked *dram.Controller) *Ideal {
	return &Ideal{stacked: stacked}
}

// Name implements Design.
func (d *Ideal) Name() string { return "ideal" }

// Access implements Design: always a hit, one 64 B stacked access.
func (d *Ideal) Access(r Request) Response {
	res := d.stacked.Access(uint64(r.Addr), r.At, mem.BlockSize, r.Write)
	if r.Write {
		d.st.writes++
		return Response{DoneAt: res.Done, Hit: true}
	}
	d.st.reads++
	d.st.readHits++
	return Response{DoneAt: res.Done, Hit: true}
}

// AccessBatch implements Design: the address mapping vectorizes over the
// batch; the timing-ordered Do calls replay in arrival order.
func (d *Ideal) AccessBatch(reqs []Request, resps []Response) {
	if len(reqs) > cap(d.plan) {
		d.plan = make([]mapPlan, len(reqs))
	}
	plans := d.plan[:len(reqs)]
	for i := range reqs {
		ch, bank, row := d.stacked.MapAddr(uint64(reqs[i].Addr))
		plans[i] = mapPlan{row: row, ch: int32(ch), bank: int32(bank)}
	}
	for i := range reqs {
		r := &reqs[i]
		pl := &plans[i]
		res := d.stacked.Do(dram.Request{Channel: int(pl.ch), Bank: int(pl.bank), Row: pl.row, Bytes: mem.BlockSize, Write: r.Write, At: r.At})
		if r.Write {
			d.st.writes++
		} else {
			d.st.reads++
			d.st.readHits++
		}
		resps[i] = Response{DoneAt: res.Done, Hit: true}
	}
}

// Snapshot implements Design.
func (d *Ideal) Snapshot() Snapshot { return d.st.snapshot(d.Name()) }

// ResetStats implements Design.
func (d *Ideal) ResetStats() { d.st.reset() }

// None is the cache-less baseline: every L2 miss goes to off-chip memory.
// It is the denominator of every speedup in Figures 7 and 8.
type None struct {
	offchip *dram.Controller
	plan    []mapPlan
	st      baseStats
}

// NewNone builds the baseline over the off-chip part.
func NewNone(offchip *dram.Controller) *None {
	return &None{offchip: offchip}
}

// Name implements Design.
func (d *None) Name() string { return "none" }

// Access implements Design: a 64 B off-chip transfer, never a hit.
func (d *None) Access(r Request) Response {
	res := d.offchip.Access(uint64(r.Addr), r.At, mem.BlockSize, r.Write)
	if r.Write {
		d.st.writes++
		d.st.offWriteBytes += mem.BlockSize
	} else {
		d.st.reads++
		d.st.offReadBytes += mem.BlockSize
	}
	return Response{DoneAt: res.Done, Hit: false}
}

// AccessBatch implements Design: the address mapping vectorizes over the
// batch; the timing-ordered Do calls replay in arrival order.
func (d *None) AccessBatch(reqs []Request, resps []Response) {
	if len(reqs) > cap(d.plan) {
		d.plan = make([]mapPlan, len(reqs))
	}
	plans := d.plan[:len(reqs)]
	for i := range reqs {
		ch, bank, row := d.offchip.MapAddr(uint64(reqs[i].Addr))
		plans[i] = mapPlan{row: row, ch: int32(ch), bank: int32(bank)}
	}
	for i := range reqs {
		r := &reqs[i]
		pl := &plans[i]
		res := d.offchip.Do(dram.Request{Channel: int(pl.ch), Bank: int(pl.bank), Row: pl.row, Bytes: mem.BlockSize, Write: r.Write, At: r.At})
		if r.Write {
			d.st.writes++
			d.st.offWriteBytes += mem.BlockSize
		} else {
			d.st.reads++
			d.st.offReadBytes += mem.BlockSize
		}
		resps[i] = Response{DoneAt: res.Done, Hit: false}
	}
}

// Snapshot implements Design.
func (d *None) Snapshot() Snapshot { return d.st.snapshot(d.Name()) }

// ResetStats implements Design.
func (d *None) ResetStats() { d.st.reset() }
