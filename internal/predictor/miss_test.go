package predictor

import "testing"

func TestMissPredictorColdPredictsMiss(t *testing.T) {
	p := NewMissPredictor(16, 256)
	if !p.PredictMiss(0, 0x400) {
		t.Error("cold predictor should predict miss (empty cache)")
	}
}

func TestMissPredictorLearnsHits(t *testing.T) {
	p := NewMissPredictor(1, 256)
	pc := uint64(0x1234)
	for i := 0; i < 8; i++ {
		p.Update(0, pc, p.PredictMiss(0, pc), false) // stream of hits
	}
	if p.PredictMiss(0, pc) {
		t.Error("predictor did not learn a hit-dominated PC")
	}
	for i := 0; i < 8; i++ {
		p.Update(0, pc, p.PredictMiss(0, pc), true) // stream of misses
	}
	if !p.PredictMiss(0, pc) {
		t.Error("predictor did not re-learn a miss-dominated PC")
	}
}

func TestMissPredictorPerCoreIsolation(t *testing.T) {
	p := NewMissPredictor(2, 256)
	pc := uint64(0x99)
	for i := 0; i < 8; i++ {
		p.Update(0, pc, true, false) // core 0 sees hits
	}
	if p.PredictMiss(0, pc) {
		t.Error("core 0 should predict hit")
	}
	if !p.PredictMiss(1, pc) {
		t.Error("core 1 state leaked from core 0")
	}
}

func TestMissPredictorAccuracyMetric(t *testing.T) {
	p := NewMissPredictor(1, 64)
	// 3 misses: 2 predicted correctly, 1 wrongly predicted hit.
	p.Update(0, 1, true, true)
	p.Update(0, 1, true, true)
	p.Update(0, 1, false, true)
	// 2 hits: 1 wrongly predicted miss.
	p.Update(0, 1, false, false)
	p.Update(0, 1, true, false)
	s := p.Stats()
	if got := s.Accuracy.Value(); got != 2.0/3 {
		t.Errorf("MP accuracy = %v, want 2/3 (misses correctly identified)", got)
	}
	if s.FalseMiss != 1 || s.SlowMiss != 1 {
		t.Errorf("FalseMiss=%d SlowMiss=%d, want 1/1", s.FalseMiss, s.SlowMiss)
	}
	if s.Hits != 2 || s.Misses != 3 {
		t.Errorf("Hits=%d Misses=%d", s.Hits, s.Misses)
	}
	// Overfetch: 1 false miss / (3 misses + 1 false miss) = 25%.
	if got := s.OverfetchPercent(); got != 25 {
		t.Errorf("OverfetchPercent = %v, want 25", got)
	}
}

func TestMissPredictorOverfetchEmpty(t *testing.T) {
	var s MissStats
	if s.OverfetchPercent() != 0 {
		t.Error("empty OverfetchPercent should be 0")
	}
}

func TestMissPredictorSaturation(t *testing.T) {
	p := NewMissPredictor(1, 64)
	pc := uint64(7)
	for i := 0; i < 100; i++ {
		p.Update(0, pc, true, true)
	}
	// One hit must not flip a saturated miss counter.
	p.Update(0, pc, true, false)
	if !p.PredictMiss(0, pc) {
		t.Error("single hit flipped a saturated miss counter")
	}
	for i := 0; i < 100; i++ {
		p.Update(0, pc, false, false)
	}
	p.Update(0, pc, false, true)
	if p.PredictMiss(0, pc) {
		t.Error("single miss flipped a saturated hit counter")
	}
}

func TestMissPredictorSizeTable2(t *testing.T) {
	// Table II: 96B per core, 1.5KB total for 16 cores.
	p := NewMissPredictor(16, 256)
	if got := p.SizeBytes(); got != 1536 {
		t.Errorf("SizeBytes = %d, want 1536 (1.5KB)", got)
	}
	if p.Latency() != 1 {
		t.Errorf("Latency = %d, want 1", p.Latency())
	}
}

func TestMissPredictorResetStats(t *testing.T) {
	p := NewMissPredictor(1, 64)
	for i := 0; i < 8; i++ {
		p.Update(0, 5, true, false)
	}
	p.ResetStats()
	if p.Stats().Hits != 0 || p.Stats().Accuracy.Den != 0 {
		t.Error("ResetStats did not zero")
	}
	// Counter state survives: still predicts hit for this PC.
	if p.PredictMiss(0, 5) {
		t.Error("ResetStats lost counter state")
	}
}

func TestSingletonTableRoundTrip(t *testing.T) {
	s := NewSingletonTable(256)
	s.Insert(1000, 0xABC, 5)
	pc, off, ok := s.Check(1000)
	if !ok || pc != 0xABC || off != 5 {
		t.Errorf("Check = (%#x,%d,%v), want (0xABC,5,true)", pc, off, ok)
	}
	// Entries are consumed by Check.
	if _, _, ok := s.Check(1000); ok {
		t.Error("entry survived Check")
	}
	if s.Promotions != 1 || s.Bypasses != 1 {
		t.Errorf("Promotions=%d Bypasses=%d", s.Promotions, s.Bypasses)
	}
}

func TestSingletonTableMissingPage(t *testing.T) {
	s := NewSingletonTable(256)
	if _, _, ok := s.Check(42); ok {
		t.Error("Check hit on an empty table")
	}
	s.Insert(1, 2, 3)
	if _, _, ok := s.Check(9999999); ok {
		t.Error("Check hit a non-inserted page")
	}
}

func TestSingletonTableConflictReplaces(t *testing.T) {
	s := NewSingletonTable(2) // tiny: force conflicts
	var pages []uint64
	// Find two pages mapping to the same slot.
	base := uint64(1)
	for x := uint64(2); len(pages) < 1; x++ {
		if s.index(x) == s.index(base) {
			pages = append(pages, x)
		}
	}
	s.Insert(base, 1, 0)
	s.Insert(pages[0], 2, 0)
	if _, _, ok := s.Check(base); ok {
		t.Error("conflicting insert did not replace")
	}
	if _, _, ok := s.Check(pages[0]); !ok {
		t.Error("latest insert missing")
	}
}

func TestSingletonTableSizeTable2(t *testing.T) {
	// Table II: singleton table 3KB. 256 x 12B = 3KB.
	if got := NewSingletonTable(256).SizeBytes(); got != 3<<10 {
		t.Errorf("SizeBytes = %d, want 3072", got)
	}
}

func TestSingletonResetStats(t *testing.T) {
	s := NewSingletonTable(16)
	s.Insert(7, 1, 1)
	s.ResetStats()
	if s.Bypasses != 0 || s.Promotions != 0 {
		t.Error("ResetStats did not zero")
	}
	if _, _, ok := s.Check(7); !ok {
		t.Error("ResetStats dropped tracked pages")
	}
}
