// Package predictor implements the four prediction structures the evaluated
// DRAM cache designs rely on (paper Table II):
//
//   - the footprint predictor of Footprint/Unison Cache — a (PC, offset)
//     indexed history table mapping trigger accesses to page footprints
//     (§III-A.1–3);
//   - the singleton table that suppresses page allocation for
//     single-block footprints (§III-A.4);
//   - Unison Cache's address-hash way predictor (§III-A.6);
//   - Alloy Cache's instruction-indexed MAP-I hit/miss predictor.
//
// All tables are deterministic and sized to the SRAM budgets of Table II.
package predictor

import (
	"unisoncache/internal/mem"
	"unisoncache/internal/stats"
)

// Footprint is a bit vector over the blocks of a page; bit i set means
// block i belongs to the page's footprint. Pages have at most 32 blocks
// (2 KB pages of 64 B blocks), so 32 bits suffice for every design.
type Footprint = uint32

// FootprintStats aggregates the predictor quality metrics of Table V,
// measured at page eviction time exactly as the paper defines them:
// accuracy is the fraction of a page's actual footprint that was correctly
// predicted (and fetched); overfetch is the fraction of fetched blocks that
// were never demanded before eviction.
type FootprintStats struct {
	// Accuracy accumulates |predicted ∩ actual| / |actual| per eviction.
	Accuracy stats.Ratio
	// Overfetch accumulates |predicted \ actual| / |predicted|.
	Overfetch stats.Ratio
	// Evictions counts footprint observations (page evictions).
	Evictions uint64
	// Singletons counts evicted pages whose actual footprint was a single
	// block.
	Singletons uint64
	// Density histograms the actual footprint popcount at eviction.
	Density *stats.Histogram
}

// Reset zeroes the statistics.
func (s *FootprintStats) Reset() {
	*s = FootprintStats{Density: stats.NewHistogram(32)}
}

// FootprintPredictor is the SRAM footprint history table: entries tagged by
// a hash of the triggering (PC, offset) pair, each holding the last
// observed footprint for that trigger. 4096 entries ≈ 144 KB per Table II
// (36 B of tag+footprint+metadata per entry).
type FootprintPredictor struct {
	entries []fpEntry
	mask    uint64
	// pageBlocks is the footprint width; predictions are masked to it.
	pageBlocks int
	stats      FootprintStats
}

type fpEntry struct {
	tag   uint32
	fp    Footprint
	valid bool
}

// NewFootprintPredictor creates a table with the given number of entries
// (rounded up to a power of two) for pages of pageBlocks blocks.
func NewFootprintPredictor(entries int, pageBlocks int) *FootprintPredictor {
	if pageBlocks <= 0 || pageBlocks > 32 {
		panic("predictor: pageBlocks must be in [1,32]")
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	p := &FootprintPredictor{
		entries:    make([]fpEntry, n),
		mask:       uint64(n - 1),
		pageBlocks: pageBlocks,
	}
	p.stats.Reset()
	return p
}

// index hashes a (PC, offset) trigger into the table.
func (p *FootprintPredictor) index(pc uint64, offset int) (idx uint64, tag uint32) {
	h := mem.Mix64(pc*37 + uint64(offset))
	return h & p.mask, uint32(h >> 40)
}

// fullMask returns the all-blocks footprint for the configured page size.
func (p *FootprintPredictor) fullMask() Footprint {
	if p.pageBlocks == 32 {
		return ^Footprint(0)
	}
	return Footprint(1)<<p.pageBlocks - 1
}

// Predict returns the footprint to fetch for a page whose trigger access is
// (pc, offset). Cold or aliased entries fall back to fetching the whole
// page — the optimistic default the Footprint Cache study uses, which the
// predictor then trims as footprints are learned. The trigger block is
// always included.
func (p *FootprintPredictor) Predict(pc uint64, offset int) Footprint {
	idx, tag := p.index(pc, offset)
	e := p.entries[idx]
	trigger := Footprint(1) << offset
	if !e.valid || e.tag != tag {
		return p.fullMask() | trigger
	}
	return (e.fp | trigger) & p.fullMask()
}

// Update records the actual footprint observed at a page's eviction for the
// trigger that allocated it.
func (p *FootprintPredictor) Update(pc uint64, offset int, actual Footprint) {
	idx, tag := p.index(pc, offset)
	p.entries[idx] = fpEntry{tag: tag, fp: actual & p.fullMask(), valid: true}
}

// RecordEviction feeds the Table V accounting with the predicted-vs-actual
// footprints of an evicted page and trains the table.
func (p *FootprintPredictor) RecordEviction(pc uint64, offset int, predicted, actual Footprint) {
	p.stats.Evictions++
	actual &= p.fullMask()
	predicted &= p.fullMask()
	na := mem.PopCount32(actual)
	np := mem.PopCount32(predicted)
	if na > 0 {
		p.stats.Accuracy.AddN(uint64(mem.PopCount32(predicted&actual)), uint64(na))
	}
	if np > 0 {
		p.stats.Overfetch.AddN(uint64(mem.PopCount32(predicted&^actual)), uint64(np))
	}
	if na == 1 {
		p.stats.Singletons++
	}
	p.stats.Density.Add(na)
	p.Update(pc, offset, actual)
}

// Stats returns the accumulated quality metrics.
func (p *FootprintPredictor) Stats() *FootprintStats { return &p.stats }

// ResetStats zeroes the metrics without forgetting learned footprints.
func (p *FootprintPredictor) ResetStats() { p.stats.Reset() }

// SizeBytes reports the SRAM cost of the table (36 bits tag+valid, 32 bits
// footprint, rounded to 9 bytes per entry — ~144 KB at 16 K entries,
// matching Table II's "Footprint History Table 144KB" with the paper's
// entry count).
func (p *FootprintPredictor) SizeBytes() int { return len(p.entries) * 9 }
