package predictor

import (
	"unisoncache/internal/mem"
	"unisoncache/internal/stats"
)

// MissStats aggregates miss-predictor quality (the "MP" rows of Table V).
type MissStats struct {
	// Accuracy is the fraction of actual misses correctly predicted as
	// misses — the paper's MP accuracy metric.
	Accuracy stats.Ratio
	// FalseMiss counts hits wrongly predicted as misses; each one sends an
	// unnecessary fetch off-chip (the "MP Overfetch" numerator).
	FalseMiss uint64
	// SlowMiss counts misses wrongly predicted as hits; each one pays the
	// DRAM-cache tag lookup before the off-chip request is issued.
	SlowMiss uint64
	// Hits and Misses count the actual outcomes observed.
	Hits, Misses uint64
}

// Reset zeroes the statistics.
func (s *MissStats) Reset() { *s = MissStats{} }

// OverfetchPercent returns unnecessary off-chip fetches as a percentage of
// all off-chip demand fetches (misses + false misses), the extra-traffic
// metric of Table V.
func (s MissStats) OverfetchPercent() float64 {
	den := s.Misses + s.FalseMiss
	if den == 0 {
		return 0
	}
	return 100 * float64(s.FalseMiss) / float64(den)
}

// MissPredictor is Alloy Cache's MAP-I (Memory Access Predictor,
// Instruction-based): per-core tables of 3-bit saturating counters indexed
// by a hash of the miss-causing instruction's PC. 256 entries per core at 3
// bits ≈ 96 B per core, 1.5 KB for 16 cores (Table II). Prediction takes a
// single cycle and is consulted before the DRAM cache is probed.
type MissPredictor struct {
	tables  [][]uint8 // per core
	mask    uint64
	stats   MissStats
	latency uint64
}

// NewMissPredictor builds per-core tables with entriesPerCore counters
// (rounded up to a power of two).
func NewMissPredictor(cores, entriesPerCore int) *MissPredictor {
	n := 1
	for n < entriesPerCore {
		n <<= 1
	}
	t := make([][]uint8, cores)
	for i := range t {
		// Initialize weakly toward "miss": an empty cache misses, and the
		// paper's predictor bypasses lookups from the start.
		row := make([]uint8, n)
		for j := range row {
			row[j] = 4
		}
		t[i] = row
	}
	return &MissPredictor{tables: t, mask: uint64(n - 1), latency: 1}
}

// Latency returns the prediction latency in CPU cycles (1, per §IV-C.3).
func (p *MissPredictor) Latency() uint64 { return p.latency }

func (p *MissPredictor) index(pc uint64) uint64 { return mem.Mix64(pc) & p.mask }

// PredictMiss returns true if the access by pc on core is predicted to miss
// the DRAM cache.
func (p *MissPredictor) PredictMiss(core int, pc uint64) bool {
	return p.tables[core][p.index(pc)] >= 4
}

// Index returns the per-core table entry probed for pc. Batched plan
// phases precompute it once for the probe, the update and the stale-probe
// invalidation stamp.
func (p *MissPredictor) Index(pc uint64) int { return int(p.index(pc)) }

// PredictMissIndexed returns the prediction stored at a precomputed Index.
func (p *MissPredictor) PredictMissIndexed(core, idx int) bool {
	return p.tables[core][idx] >= 4
}

// Entries returns the per-core table size (sizes batch invalidation
// scratch).
func (p *MissPredictor) Entries() int {
	if len(p.tables) == 0 {
		return 0
	}
	return len(p.tables[0])
}

// Update trains the counter with the actual outcome and records Table V
// accounting for the prediction that was made.
func (p *MissPredictor) Update(core int, pc uint64, predictedMiss, actualMiss bool) {
	p.UpdateIndexed(core, int(p.index(pc)), predictedMiss, actualMiss)
}

// UpdateIndexed is Update with a precomputed Index.
func (p *MissPredictor) UpdateIndexed(core, idx int, predictedMiss, actualMiss bool) {
	i := idx
	c := p.tables[core][i]
	if actualMiss {
		if c < 7 {
			c++
		}
		p.stats.Misses++
		p.stats.Accuracy.Add(predictedMiss)
		if !predictedMiss {
			p.stats.SlowMiss++
		}
	} else {
		if c > 0 {
			c--
		}
		p.stats.Hits++
		if predictedMiss {
			p.stats.FalseMiss++
		}
	}
	p.tables[core][i] = c
}

// Stats returns the accumulated quality metrics.
func (p *MissPredictor) Stats() *MissStats { return &p.stats }

// ResetStats zeroes metrics without forgetting counter state.
func (p *MissPredictor) ResetStats() { p.stats.Reset() }

// SizeBytes reports the SRAM cost: 3 bits per counter.
func (p *MissPredictor) SizeBytes() int {
	if len(p.tables) == 0 {
		return 0
	}
	return len(p.tables) * len(p.tables[0]) * 3 / 8
}
