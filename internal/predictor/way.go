package predictor

import (
	"unisoncache/internal/mem"
	"unisoncache/internal/stats"
)

// WayStats aggregates way-predictor quality (the "WP Accuracy" rows of
// Table V). Accuracy is measured over accesses to pages actually present in
// the cache — mispredicting the way of an absent page costs nothing extra,
// since the overlapped tag read detects the miss either way.
type WayStats struct {
	Accuracy stats.Ratio
}

// Reset zeroes the statistics.
func (s *WayStats) Reset() { *s = WayStats{} }

// WayPredictor is Unison Cache's way predictor (§III-A.6): an array of
// 2-bit entries directly indexed by the 12-bit XOR hash of the page
// address (16-bit hash for caches above 4 GB), 1 KB / 16 KB of SRAM. It
// works at page granularity, which is why its accuracy (~95%) far exceeds
// block-grain address-based way prediction (~85%): abundant spatial
// locality makes consecutive accesses land on the same page.
type WayPredictor struct {
	table    []uint8
	hashBits uint
	wayMask  uint8
	stats    WayStats
}

// NewWayPredictor builds a predictor indexed by hashBits bits of XOR-folded
// page address, for a cache of the given associativity (ways must be a
// power of two ≤ 256; the design uses 4).
func NewWayPredictor(hashBits uint, ways int) *WayPredictor {
	if hashBits == 0 || hashBits > 24 {
		panic("predictor: way predictor hash bits must be in [1,24]")
	}
	if ways <= 0 || ways > 256 || ways&(ways-1) != 0 {
		panic("predictor: ways must be a power of two in [1,256]")
	}
	return &WayPredictor{
		table:    make([]uint8, 1<<hashBits),
		hashBits: hashBits,
		wayMask:  uint8(ways - 1),
	}
}

// HashBitsFor returns the paper's sizing rule: 12-bit hash (1 KB at 2 bits
// per entry) up to 4 GB, 16-bit (16 KB) above.
func HashBitsFor(cacheBytes uint64) uint {
	if cacheBytes > 4<<30 {
		return 16
	}
	return 12
}

// Predict returns the predicted way for the page.
func (p *WayPredictor) Predict(page uint64) int {
	return int(p.table[mem.XORFoldHash(page, p.hashBits)] & p.wayMask)
}

// Update trains the predictor with the page's true way.
func (p *WayPredictor) Update(page uint64, way int) {
	p.table[mem.XORFoldHash(page, p.hashBits)] = uint8(way) & p.wayMask
}

// Index returns the table entry probed for page. Batched plan phases
// precompute it once and reuse it for the probe, the update and the
// stale-probe invalidation stamp.
func (p *WayPredictor) Index(page uint64) int {
	return int(mem.XORFoldHash(page, p.hashBits))
}

// PredictIndexed returns the prediction stored at a precomputed Index.
func (p *WayPredictor) PredictIndexed(idx int) int {
	return int(p.table[idx] & p.wayMask)
}

// UpdateIndexed trains the entry at a precomputed Index.
func (p *WayPredictor) UpdateIndexed(idx, way int) {
	p.table[idx] = uint8(way) & p.wayMask
}

// Entries returns the table size (sizes batch invalidation scratch).
func (p *WayPredictor) Entries() int { return len(p.table) }

// Record notes a prediction outcome for Table V accounting.
func (p *WayPredictor) Record(correct bool) { p.stats.Accuracy.Add(correct) }

// Stats returns the accumulated accuracy.
func (p *WayPredictor) Stats() *WayStats { return &p.stats }

// ResetStats zeroes accuracy without forgetting learned ways.
func (p *WayPredictor) ResetStats() { p.stats.Reset() }

// SizeBytes reports the SRAM cost: 2 bits per entry.
func (p *WayPredictor) SizeBytes() int { return len(p.table) / 4 }
