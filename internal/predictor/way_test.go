package predictor

import (
	"testing"
	"testing/quick"
)

func TestWayPredictorLearns(t *testing.T) {
	p := NewWayPredictor(12, 4)
	if got := p.Predict(100); got != 0 {
		t.Errorf("cold prediction = %d, want 0", got)
	}
	p.Update(100, 3)
	if got := p.Predict(100); got != 3 {
		t.Errorf("trained prediction = %d, want 3", got)
	}
	p.Update(100, 1)
	if got := p.Predict(100); got != 1 {
		t.Errorf("retrained prediction = %d, want 1", got)
	}
}

func TestWayPredictorRange(t *testing.T) {
	p := NewWayPredictor(12, 4)
	f := func(page uint64, way uint8) bool {
		p.Update(page, int(way))
		w := p.Predict(page)
		return w >= 0 && w < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWayPredictorAliasing(t *testing.T) {
	// Pages whose XOR folds collide share an entry: the predictor is a
	// direct-indexed array, not a tagged table.
	p := NewWayPredictor(12, 4)
	a := uint64(0x1)
	b := a | (a << 12) // folds to 0... construct a true alias instead
	b = uint64(0x1001) // 0x1 ^ 0x001 = 0x000? 0x1001 folds to 0x001^0x1 = 0
	_ = b
	// Find a real alias by search.
	p.Update(a, 2)
	var alias uint64
	for x := uint64(2); ; x++ {
		if x != a && p.Predict(x) == 2 {
			// could be default 0 ways... check a colliding update instead
			p2 := NewWayPredictor(12, 4)
			p2.Update(x, 3)
			if p2.Predict(a) == 3 {
				alias = x
				break
			}
		}
		if x > 1<<20 {
			t.Skip("no alias found in search range")
		}
	}
	p.Update(alias, 1)
	if got := p.Predict(a); got != 1 {
		t.Errorf("aliased entry not shared: got %d", got)
	}
}

func TestWayPredictorStats(t *testing.T) {
	p := NewWayPredictor(12, 4)
	p.Record(true)
	p.Record(true)
	p.Record(false)
	if got := p.Stats().Accuracy.Value(); got != 2.0/3 {
		t.Errorf("accuracy = %v", got)
	}
	p.ResetStats()
	if p.Stats().Accuracy.Den != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestHashBitsFor(t *testing.T) {
	cases := []struct {
		bytes uint64
		want  uint
	}{
		{128 << 20, 12},
		{1 << 30, 12},
		{4 << 30, 12},
		{(4 << 30) + 1, 16},
		{8 << 30, 16},
	}
	for _, c := range cases {
		if got := HashBitsFor(c.bytes); got != c.want {
			t.Errorf("HashBitsFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestWayPredictorSizeTable2(t *testing.T) {
	// Table II: way predictor 1-16KB. 12-bit hash -> 4096 x 2bit = 1KB;
	// 16-bit -> 16KB.
	if got := NewWayPredictor(12, 4).SizeBytes(); got != 1<<10 {
		t.Errorf("12-bit predictor = %d B, want 1KB", got)
	}
	if got := NewWayPredictor(16, 4).SizeBytes(); got != 16<<10 {
		t.Errorf("16-bit predictor = %d B, want 16KB", got)
	}
}

func TestWayPredictorPanics(t *testing.T) {
	for _, tc := range []struct {
		bits uint
		ways int
	}{
		{0, 4}, {25, 4}, {12, 0}, {12, 3}, {12, 512},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWayPredictor(%d,%d) did not panic", tc.bits, tc.ways)
				}
			}()
			NewWayPredictor(tc.bits, tc.ways)
		}()
	}
}

func TestWayPredictorPageLocalityAccuracy(t *testing.T) {
	// The paper's argument: page-level operation gives ~95% accuracy
	// because successive accesses hit the same page. Simulate bursts of
	// accesses to pages and verify high accuracy.
	p := NewWayPredictor(12, 4)
	correct, total := 0, 0
	for page := uint64(0); page < 1000; page++ {
		way := int(page % 4)
		for a := 0; a < 10; a++ {
			if p.Predict(page) == way {
				correct++
			}
			total++
			p.Update(page, way)
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Errorf("burst accuracy = %.2f, want >= 0.85 (first access per page may miss)", acc)
	}
}
