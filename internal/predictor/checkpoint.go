package predictor

import (
	"fmt"

	"unisoncache/internal/checkpoint"
)

// This file serializes each predictor's complete mutable state into a
// checkpoint stream. Geometry (entry counts, hash widths, page sizes) is
// owned by construction and never serialized; LoadState rejects snapshots
// whose table sizes disagree with the configured structure.

// SaveState serializes the footprint history table and its statistics.
func (p *FootprintPredictor) SaveState(w *checkpoint.Writer) {
	w.Section("predictor.footprint")
	w.U64(uint64(len(p.entries)))
	for _, e := range p.entries {
		w.U32(e.tag)
		w.U32(uint32(e.fp))
		w.Bool(e.valid)
	}
	w.U64(p.stats.Accuracy.Num)
	w.U64(p.stats.Accuracy.Den)
	w.U64(p.stats.Overfetch.Num)
	w.U64(p.stats.Overfetch.Den)
	w.U64(p.stats.Evictions)
	w.U64(p.stats.Singletons)
	p.stats.Density.SaveState(w)
}

// LoadState restores state saved by SaveState.
func (p *FootprintPredictor) LoadState(r *checkpoint.Reader) error {
	r.Section("predictor.footprint")
	if n := r.U64(); r.Err() == nil && n != uint64(len(p.entries)) {
		return fmt.Errorf("predictor: snapshot has %d footprint entries, table has %d", n, len(p.entries))
	}
	for i := range p.entries {
		p.entries[i].tag = r.U32()
		p.entries[i].fp = Footprint(r.U32())
		p.entries[i].valid = r.Bool()
	}
	p.stats.Accuracy.Num = r.U64()
	p.stats.Accuracy.Den = r.U64()
	p.stats.Overfetch.Num = r.U64()
	p.stats.Overfetch.Den = r.U64()
	p.stats.Evictions = r.U64()
	p.stats.Singletons = r.U64()
	if err := p.stats.Density.LoadState(r); err != nil {
		return err
	}
	return r.Err()
}

// SaveState serializes the way-prediction table and its accuracy counter.
func (p *WayPredictor) SaveState(w *checkpoint.Writer) {
	w.Section("predictor.way")
	w.U8Slice(p.table)
	w.U64(p.stats.Accuracy.Num)
	w.U64(p.stats.Accuracy.Den)
}

// LoadState restores state saved by SaveState.
func (p *WayPredictor) LoadState(r *checkpoint.Reader) error {
	r.Section("predictor.way")
	r.U8SliceInto(p.table)
	p.stats.Accuracy.Num = r.U64()
	p.stats.Accuracy.Den = r.U64()
	return r.Err()
}

// SaveState serializes the singleton table and its counters.
func (t *SingletonTable) SaveState(w *checkpoint.Writer) {
	w.Section("predictor.singleton")
	w.U64(uint64(len(t.entries)))
	for _, e := range t.entries {
		w.U64(e.page)
		w.U64(e.pc)
		w.U8(uint8(e.offset))
		w.Bool(e.valid)
	}
	w.U64(t.Promotions)
	w.U64(t.Bypasses)
}

// LoadState restores state saved by SaveState.
func (t *SingletonTable) LoadState(r *checkpoint.Reader) error {
	r.Section("predictor.singleton")
	if n := r.U64(); r.Err() == nil && n != uint64(len(t.entries)) {
		return fmt.Errorf("predictor: snapshot has %d singleton entries, table has %d", n, len(t.entries))
	}
	for i := range t.entries {
		t.entries[i].page = r.U64()
		t.entries[i].pc = r.U64()
		t.entries[i].offset = int8(r.U8())
		t.entries[i].valid = r.Bool()
	}
	t.Promotions = r.U64()
	t.Bypasses = r.U64()
	return r.Err()
}

// SaveState serializes the per-core MAP-I counter tables and statistics.
func (p *MissPredictor) SaveState(w *checkpoint.Writer) {
	w.Section("predictor.miss")
	w.U64(uint64(len(p.tables)))
	for _, t := range p.tables {
		w.U8Slice(t)
	}
	w.U64(p.stats.Accuracy.Num)
	w.U64(p.stats.Accuracy.Den)
	w.U64(p.stats.FalseMiss)
	w.U64(p.stats.SlowMiss)
	w.U64(p.stats.Hits)
	w.U64(p.stats.Misses)
}

// LoadState restores state saved by SaveState.
func (p *MissPredictor) LoadState(r *checkpoint.Reader) error {
	r.Section("predictor.miss")
	if n := r.U64(); r.Err() == nil && n != uint64(len(p.tables)) {
		return fmt.Errorf("predictor: snapshot has %d per-core tables, predictor has %d", n, len(p.tables))
	}
	for _, t := range p.tables {
		r.U8SliceInto(t)
	}
	p.stats.Accuracy.Num = r.U64()
	p.stats.Accuracy.Den = r.U64()
	p.stats.FalseMiss = r.U64()
	p.stats.SlowMiss = r.U64()
	p.stats.Hits = r.U64()
	p.stats.Misses = r.U64()
	return r.Err()
}
