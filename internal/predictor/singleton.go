package predictor

import "unisoncache/internal/mem"

// SingletonTable tracks pages that were predicted to be singletons and thus
// bypassed allocation (§III-A.4). Because bypassed pages are never evicted,
// the footprint predictor would have no chance to correct a wrong singleton
// prediction; this small table watches recently bypassed pages and detects
// a second block being demanded, at which point the page is promoted to
// non-singleton and the caller re-trains the footprint predictor. 256
// entries ≈ 3 KB per Table II.
type SingletonTable struct {
	entries []singletonEntry
	mask    uint64

	// Promotions counts singleton→non-singleton corrections.
	Promotions uint64
	// Bypasses counts pages that entered the table.
	Bypasses uint64
}

type singletonEntry struct {
	page   uint64 // page number (full, for exactness; hardware would tag)
	pc     uint64
	offset int8
	valid  bool
}

// NewSingletonTable creates a table with the given entry count (rounded up
// to a power of two).
func NewSingletonTable(entries int) *SingletonTable {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &SingletonTable{entries: make([]singletonEntry, n), mask: uint64(n - 1)}
}

func (t *SingletonTable) index(page uint64) uint64 {
	return mem.Mix64(page) & t.mask
}

// Insert records that page was bypassed as a predicted singleton triggered
// by (pc, offset).
func (t *SingletonTable) Insert(page, pc uint64, offset int) {
	t.Bypasses++
	t.entries[t.index(page)] = singletonEntry{page: page, pc: pc, offset: int8(offset), valid: true}
}

// Check looks the page up; if present it is removed and its triggering
// (pc, offset) returned with ok=true. Callers invoke Check when a miss hits
// a page absent from the cache: a hit here means the page was recently
// bypassed as a singleton and a second block is now being demanded.
func (t *SingletonTable) Check(page uint64) (pc uint64, offset int, ok bool) {
	i := t.index(page)
	e := t.entries[i]
	if !e.valid || e.page != page {
		return 0, 0, false
	}
	t.entries[i].valid = false
	t.Promotions++
	return e.pc, int(e.offset), true
}

// ResetStats zeroes the counters but keeps tracked pages.
func (t *SingletonTable) ResetStats() {
	t.Promotions = 0
	t.Bypasses = 0
}

// SizeBytes reports the SRAM cost (12 bytes of tag+PC+offset per entry;
// 256 entries ≈ 3 KB per Table II).
func (t *SingletonTable) SizeBytes() int { return len(t.entries) * 12 }
