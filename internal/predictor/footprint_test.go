package predictor

import (
	"testing"
	"testing/quick"

	"unisoncache/internal/mem"
)

func TestFootprintColdPredictsFullPage(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	fp := p.Predict(0x400, 3)
	if fp != (1<<15)-1 {
		t.Errorf("cold prediction = %#x, want full 15-block mask", fp)
	}
	if fp&(1<<3) == 0 {
		t.Error("trigger block not included")
	}
}

func TestFootprintLearnsAndRecalls(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	want := Footprint(0b101010101010101)
	p.Update(0x400, 0, want)
	got := p.Predict(0x400, 0)
	if got != want|1 {
		t.Errorf("Predict = %#b, want learned %#b", got, want|1)
	}
}

func TestFootprintTriggerAlwaysIncluded(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	p.Update(0x400, 7, 0b1) // learned footprint excludes block 7
	got := p.Predict(0x400, 7)
	if got&(1<<7) == 0 {
		t.Error("trigger block missing from prediction")
	}
}

func TestFootprintMasksToPageSize(t *testing.T) {
	p := NewFootprintPredictor(64, 15)
	p.Update(1, 0, ^Footprint(0))
	if got := p.Predict(1, 0); got != (1<<15)-1 {
		t.Errorf("prediction %#x exceeds 15-block page", got)
	}
	p32 := NewFootprintPredictor(64, 32)
	p32.Update(1, 0, ^Footprint(0))
	if got := p32.Predict(1, 0); got != ^Footprint(0) {
		t.Errorf("32-block page prediction = %#x", got)
	}
}

func TestFootprintDistinguishesTriggers(t *testing.T) {
	p := NewFootprintPredictor(1<<16, 15)
	p.Update(0xAAA, 1, 0b0011)
	p.Update(0xBBB, 1, 0b1100)
	if a, b := p.Predict(0xAAA, 1), p.Predict(0xBBB, 1); a == b {
		t.Errorf("different PCs predicted identically: %#b", a)
	}
	p.Update(0xAAA, 2, 0b111000000)
	if a, b := p.Predict(0xAAA, 1), p.Predict(0xAAA, 2); a == b {
		t.Error("different offsets predicted identically")
	}
}

func TestFootprintEvictionAccounting(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	// predicted {0,1,2,3}, actual {0,1,4}: 2 of 3 actual covered, 2 of 4
	// fetched wasted.
	p.RecordEviction(1, 0, 0b1111, 0b10011)
	s := p.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d", s.Evictions)
	}
	if got := s.Accuracy.Value(); got != 2.0/3 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if got := s.Overfetch.Value(); got != 2.0/4 {
		t.Errorf("Overfetch = %v, want 1/2", got)
	}
	if s.Density.Total() != 1 || s.Density.Count(3) != 1 {
		t.Error("density histogram not updated")
	}
}

func TestFootprintSingletonCounting(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	p.RecordEviction(1, 0, 0b1, 0b1)
	p.RecordEviction(2, 0, 0b11, 0b11)
	if p.Stats().Singletons != 1 {
		t.Errorf("Singletons = %d, want 1", p.Stats().Singletons)
	}
}

func TestFootprintPerfectPredictionStats(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	for i := 0; i < 100; i++ {
		p.RecordEviction(uint64(i), 0, 0b10101, 0b10101)
	}
	s := p.Stats()
	if s.Accuracy.Percent() != 100 {
		t.Errorf("perfect accuracy = %v%%", s.Accuracy.Percent())
	}
	if s.Overfetch.Percent() != 0 {
		t.Errorf("perfect overfetch = %v%%", s.Overfetch.Percent())
	}
}

func TestFootprintEvictionTrains(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	p.RecordEviction(9, 2, (1<<15)-1, 0b10100)
	if got := p.Predict(9, 2); got != 0b10100|(1<<2) {
		t.Errorf("post-eviction prediction = %#b, want trained 0b10100|trigger", got)
	}
}

func TestFootprintAccuracyBounds(t *testing.T) {
	p := NewFootprintPredictor(256, 32)
	f := func(pred, act Footprint) bool {
		p.RecordEviction(uint64(pred), int(act%32), pred, act)
		s := p.Stats()
		a := s.Accuracy.Value()
		o := s.Overfetch.Value()
		return a >= 0 && a <= 1 && o >= 0 && o <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFootprintResetStatsKeepsLearning(t *testing.T) {
	p := NewFootprintPredictor(4096, 15)
	p.RecordEviction(5, 1, 0b111, 0b11)
	p.ResetStats()
	if p.Stats().Evictions != 0 {
		t.Error("ResetStats did not zero")
	}
	if got := p.Predict(5, 1); got != 0b11|0b10 {
		t.Errorf("ResetStats lost learned footprint: %#b", got)
	}
}

func TestFootprintSizeMatchesTable2(t *testing.T) {
	// Table II: Footprint History Table 144KB. 16K entries x 9B = 144KB.
	p := NewFootprintPredictor(16384, 32)
	if got := p.SizeBytes(); got != 144<<10 {
		t.Errorf("SizeBytes = %d, want 147456 (144KB)", got)
	}
}

func TestFootprintBadPageBlocksPanics(t *testing.T) {
	for _, n := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pageBlocks=%d did not panic", n)
				}
			}()
			NewFootprintPredictor(16, n)
		}()
	}
}

func TestFootprintZeroActualNoAccuracySample(t *testing.T) {
	p := NewFootprintPredictor(64, 15)
	p.RecordEviction(1, 0, 0b111, 0)
	if p.Stats().Accuracy.Den != 0 {
		t.Error("zero-footprint eviction contributed to accuracy denominator")
	}
	if p.Stats().Overfetch.Num != 3 {
		t.Error("fully wasted fetch not counted as overfetch")
	}
}

func TestMix64Determinism(t *testing.T) {
	if mem.Mix64(42) != mem.Mix64(42) {
		t.Error("Mix64 not deterministic")
	}
}
