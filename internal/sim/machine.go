// Package sim is the trace-replay timing engine that stands in for the
// paper's Flexus full-system simulation (§IV-A). Sixteen cores replay
// workload event sources — live synthetic streams or recorded traces,
// anything implementing trace.Source — through private L1 data caches and a
// shared L2; L2 misses go to the DRAM cache design under test, which in turn uses
// the shared stacked and off-chip DRAM timing models. Contention emerges
// from the shared DRAM bank/bus reservations; cores are advanced
// minimum-clock-first so their clocks stay interleaved.
//
// The core model: one instruction per cycle while not stalled; a load that
// misses the L1 stalls the core for the portion of its latency an
// out-of-order window cannot hide (HideCycles); stores retire through a
// write buffer without stalling. The paper's performance metric — user
// instructions per cycle, "shown to accurately reflect overall server
// throughput" — is the sum of per-core IPCs over the measured interval.
package sim

import (
	"fmt"
	"math/bits"

	"unisoncache/internal/cache"
	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/mem"
	"unisoncache/internal/telemetry"
	"unisoncache/internal/trace"
)

// Config describes the CMP of Table III.
type Config struct {
	Cores int
	L1    cache.Config
	L2    cache.Config
	// HideCycles is the memory latency (beyond the L1) that the 3-way OoO
	// core can overlap with useful work.
	HideCycles uint64
	// MLP divides residual stall cycles, approximating overlapped misses.
	// It must stay 1 when the DRAM parts are shared timing models: a
	// divisor lets cores issue faster than the memory system's service
	// rate, which in an absolute-time reservation model grows queues
	// without bound. Latency overlap is instead captured by HideCycles.
	MLP uint64
	// WarmupFrac is the fraction of each run discarded before measurement
	// (the paper uses two thirds of its traces for warmup).
	WarmupFrac float64
}

// Default returns the Table III baseline: 16 cores, 64 KB L1d (2-cycle),
// 4 MB 16-way L2 (13-cycle).
func Default() Config {
	return Config{
		Cores:      16,
		L1:         cache.Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, Latency: 2},
		L2:         cache.Config{Name: "L2", SizeBytes: 4 << 20, Ways: 16, Latency: 13},
		HideCycles: 30,
		MLP:        1,
		WarmupFrac: 2.0 / 3.0,
	}
}

// Machine wires cores, caches, a DRAM cache design and the DRAM parts into
// a runnable system.
type Machine struct {
	cfg     Config
	cores   []coreState
	l2      *cache.Cache
	design  dramcache.Design
	stacked *dram.Controller
	offchip *dram.Controller

	// remaining is replay's per-core event budget, kept on the machine so
	// the steady-state loop allocates nothing.
	remaining []int
	// tree is a tournament (winner) tree over packed scheduling keys:
	// node n holds clock<<shift|core for the winner of its subtree,
	// tree[leaves+i] the leaf key of core i (+inf sentinel when exhausted
	// or absent), tree[1] the next core to step. Packing the core index
	// into the key's low bits makes every match one branchless uint64 min
	// — comparing keys compares clocks first and breaks ties toward the
	// lower index, the same core a linear rescan with lowest-index
	// tie-breaking would pick — at a cost of log2(cores) node updates per
	// step instead of a full scan, with no side lookup into a clock
	// array. Sound while clocks stay below 2^(64-shift), ~2^60 cycles at
	// sixteen cores.
	tree   []uint64
	leaves int
	shift  uint

	// run is the full-run cursor: BeginRun/RunTo express Run as a resumable
	// sequence of bounded steps, which is what lets a checkpoint freeze a
	// run mid-flight and a restored machine continue it bit-identically.
	run runState

	// batching enables the drain path: steps defer their design accesses
	// into breqs — appended in the tournament's serial order, so the
	// pending batch is always a consecutive slice of the serial request
	// sequence — and flush through Design.AccessBatch only when a response
	// is actually needed. Every flush point just splits that sequence at a
	// batch boundary — AccessBatch is bit-identical to serial Access by
	// contract — so toggling this changes performance only.
	// SetBatching(false) forces the one-at-a-time reference path.
	batching bool
	breqs    []dramcache.Request
	bresps   []dramcache.Response

	// teleSpec arms epoch-sliced telemetry (SetTelemetry); tele is the
	// run's recorder, created lazily when the measurement phase first
	// advances so machines restored from a checkpoint — which never call
	// BeginRun — record too. With the zero spec the dispatch in RunTo
	// selects the untouched continuePhase loop: telemetry disabled costs
	// nothing.
	teleSpec telemetry.Spec
	teleEmit func(telemetry.Epoch)
	tele     *telemetry.Recorder
	// teleClamp is continueTelemetry's scratch: per core, the events
	// withheld from remaining while the countdown is clamped at the core's
	// next epoch boundary. Always all-zero outside continueTelemetry, so
	// it never enters checkpoints.
	teleClamp []int
}

// designBatchCap bounds the pending design batch (and its preallocated
// response scratch): a full batch flushes early, which is always legal, so
// the drain stays zero-alloc no matter how long a core runs uncontested.
const designBatchCap = 64

// runState tracks a full run's progress in global steps — events executed
// across all cores in the one serial min-clock-first schedule. Because
// every core executes exactly eventsPerCore events within a phase, the
// warmup/measurement boundary always falls at cores×warm global steps
// regardless of interleaving, making (phase, step) plus the per-core
// remaining budgets a complete description of where the schedule stands.
type runState struct {
	accesses int    // per-core event budget of the whole run
	warm     int    // per-core warmup events (accesses × WarmupFrac)
	phase    uint8  // 0 = not started, 1 = warmup, 2 = measurement
	step     uint64 // global steps executed so far
}

// eventBatch is the per-core prefetch depth: how many events a core pulls
// from its source per NextBatch call. Prefetching is legal because
// min-clock-first scheduling only interleaves cores — it never reorders
// events within a core, and each core's source generates its stream
// independently of the other cores' progress (DESIGN.md §8). 256 events
// (7 KB per core) amortizes the interface call without thrashing L1d.
const eventBatch = 256

type coreState struct {
	clock  uint64
	instr  uint64
	stall  uint64
	latSum uint64
	latN   uint64
	l1     *cache.Cache
	src    trace.Batcher

	// buf is the reusable prefetch slab: buf[pos:n] holds events pulled
	// from src but not yet executed. Unconsumed events survive the
	// warmup/measurement boundary — only execution order matters, and that
	// is unchanged.
	buf []trace.Event
	pos int
	n   int

	// Measurement checkpoint (set when warmup ends).
	clock0, instr0 uint64
}

// nextEvent returns the core's next event, refilling the prefetch slab
// when it empties. Refills never request more than budget events — the
// core's remaining demand in the current replay phase — so a finite
// source sized exactly to the run is never over-pulled, the same contract
// the pre-batching per-event machine honored. The pointer aims into the
// slab and is valid until the next call — the hot loop reads a couple of
// fields and moves on, so no copy is needed.
func (c *coreState) nextEvent(budget int) *trace.Event {
	if c.pos >= c.n {
		want := eventBatch
		if budget < want {
			want = budget
		}
		c.n = c.src.NextBatch(c.buf[:want])
		c.pos = 0
		if c.n == 0 {
			panic("sim: event source drained past its recorded length")
		}
	}
	ev := &c.buf[c.pos]
	c.pos++
	return ev
}

// New builds a machine over one event source per core — live synthetic
// streams, recorded-trace replays, or any other trace.Source. The design
// must already be wired to the same stacked/offchip controllers passed here
// (they are shared for stats).
func New(cfg Config, sources []trace.Source, design dramcache.Design, stacked, offchip *dram.Controller) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: need at least one core")
	}
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}
	if cfg.WarmupFrac < 0 || cfg.WarmupFrac >= 1 {
		return nil, fmt.Errorf("sim: WarmupFrac %v outside [0,1)", cfg.WarmupFrac)
	}
	if cfg.MLP == 0 {
		cfg.MLP = 1
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, l2: l2, design: design, stacked: stacked, offchip: offchip}
	m.cores = make([]coreState, cfg.Cores)
	m.remaining = make([]int, cfg.Cores)
	m.teleClamp = make([]int, cfg.Cores)
	m.batching = true
	m.breqs = make([]dramcache.Request, 0, designBatchCap)
	m.bresps = make([]dramcache.Response, designBatchCap)
	m.leaves = 1
	for m.leaves < cfg.Cores {
		m.leaves *= 2
	}
	m.shift = uint(bits.TrailingZeros(uint(m.leaves)))
	m.tree = make([]uint64, 2*m.leaves)
	for i := range m.cores {
		if sources[i] == nil {
			return nil, fmt.Errorf("sim: nil source for core %d", i)
		}
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		m.cores[i] = coreState{
			l1:  l1,
			src: trace.AsBatcher(sources[i]),
			buf: make([]trace.Event, eventBatch),
		}
	}
	return m, nil
}

// Results aggregates one run's measurements.
type Results struct {
	// UIPC is the summed per-core instructions-per-cycle over the
	// measured interval — the paper's throughput metric.
	UIPC float64
	// Instructions and Cycles are measured-interval totals (cycles is the
	// max across cores).
	Instructions uint64
	Cycles       uint64
	// Design is the DRAM cache design's statistics snapshot.
	Design dramcache.Snapshot
	// Stacked and Offchip are the DRAM parts' activity counters.
	Stacked dram.Stats
	Offchip dram.Stats
	// L2 is the shared-cache statistics.
	L2 cache.Stats
	// L1HitRate is averaged across cores.
	L1HitRate float64
	// OffchipGBPerKI is off-chip traffic (read+write) per kilo-instruction
	// in bytes, the bandwidth-efficiency metric.
	OffchipBytesPerKI float64
	// AvgDRAMReadLatency is the mean cycles a demand read spent below the
	// L2 (DRAM cache and/or off-chip memory, including queueing).
	AvgDRAMReadLatency float64
}

// Run replays accessesPerCore events on every core (warmup fraction
// included) and returns measured-interval results. It is the one-shot
// composition of the resumable cursor: BeginRun, RunTo the end, collect.
func (m *Machine) Run(accessesPerCore int) Results {
	if accessesPerCore <= 0 {
		return Results{}
	}
	m.BeginRun(accessesPerCore)
	return m.FinishRun()
}

// BeginRun starts a full run of accessesPerCore events per core without
// executing anything. Advance it with RunTo; finish with FinishRun. The
// schedule executed is bit-identical to Run's no matter how the global
// step range is chunked (see continuePhase).
func (m *Machine) BeginRun(accessesPerCore int) {
	if accessesPerCore < 0 {
		accessesPerCore = 0
	}
	m.run = runState{
		accesses: accessesPerCore,
		warm:     int(float64(accessesPerCore) * m.cfg.WarmupFrac),
	}
	m.tele = nil
}

// SetTelemetry arms epoch-sliced telemetry for subsequent full runs: the
// measurement phase records boundary snapshots every spec.EpochEvents
// retired events per core and, when onEpoch is non-nil, emits each epoch
// the moment its closing boundary completes. The spec must already be
// defaulted and validated. Pass the zero Spec to disarm. Telemetry covers
// the Run/BeginRun cursor only — Replay and ReplaySampled never record.
func (m *Machine) SetTelemetry(spec telemetry.Spec, onEpoch func(telemetry.Epoch)) {
	m.teleSpec = spec
	m.teleEmit = onEpoch
	m.tele = nil
}

// TelemetryRecorder returns the current run's recorder — nil until the
// measurement phase has advanced with telemetry armed.
func (m *Machine) TelemetryRecorder() *telemetry.Recorder { return m.tele }

// TotalSteps returns the run's total global step count: every core's full
// event budget. RunTo targets are global step offsets in [0, TotalSteps].
func (m *Machine) TotalSteps() uint64 {
	return uint64(m.run.accesses) * uint64(len(m.cores))
}

// WarmSteps returns the global step offset of the warmup/measurement
// boundary. A checkpoint written exactly here captures the post-boundary
// state (statistics reset, measurement budgets armed), which is what makes
// the warm snapshot reusable as a sampled run's functional warmup.
func (m *Machine) WarmSteps() uint64 {
	return uint64(m.run.warm) * uint64(len(m.cores))
}

// RunTo advances the run to global step target (clamped to TotalSteps).
// The warmup/measurement transition is taken eagerly the moment the warm
// boundary is reached, so the machine state at any given step count is a
// pure function of the step count — never of how the RunTo calls were
// chunked — which is the property checkpoint bit-identity rests on.
func (m *Machine) RunTo(target uint64) {
	if total := m.TotalSteps(); target > total {
		target = total
	}
	warmSteps := m.WarmSteps()
	if m.run.phase == 0 {
		if warmSteps > 0 {
			for i := range m.remaining {
				m.remaining[i] = m.run.warm
			}
			m.run.phase = 1
		} else {
			m.beginMeasurementPhase()
		}
	}
	if m.run.phase == 1 {
		if m.run.step < warmSteps {
			bound := target
			if bound > warmSteps {
				bound = warmSteps
			}
			m.run.step += m.continuePhase(bound - m.run.step)
		}
		if m.run.step == warmSteps {
			m.beginMeasurementPhase()
		}
	}
	if m.run.phase == 2 && m.run.step < target {
		if m.teleSpec.Enabled() {
			if m.tele == nil {
				m.tele = telemetry.NewRecorder(m.teleSpec, len(m.cores), m.run.accesses-m.run.warm, m.teleEmit)
			}
			m.run.step += m.continueTelemetry(target - m.run.step)
		} else {
			m.run.step += m.continuePhase(target - m.run.step)
		}
	}
}

// FinishRun drives the run to completion and returns the measured-interval
// results.
func (m *Machine) FinishRun() Results {
	m.RunTo(m.TotalSteps())
	return m.collect()
}

// beginMeasurementPhase crosses the warmup/measurement boundary: reset
// statistics, keep state warm, arm the measurement-phase event budgets.
func (m *Machine) beginMeasurementPhase() {
	m.resetForMeasurement()
	meas := m.run.accesses - m.run.warm
	for i := range m.remaining {
		m.remaining[i] = meas
	}
	m.run.phase = 2
}

// replay advances cores lowest-clock-first for eventsPerCore events each:
// the next core to step is always the live core with the smallest clock,
// ties broken toward the lowest index. The tournament tree executes
// *exactly* that schedule — bit-identical to a linear rescan before every
// step, which the golden determinism wall enforces — at log2(cores) node
// updates per event. Exhausted cores (and the leaves padding the core
// count to a power of two) sit at the +inf sentinel, which no real clock
// reaches, so they simply never win a match.
func (m *Machine) replay(eventsPerCore int) {
	if eventsPerCore <= 0 {
		return
	}
	for i := range m.remaining {
		m.remaining[i] = eventsPerCore
	}
	m.continuePhase(^uint64(0))
}

// continuePhase executes up to budget steps of the current phase's
// tournament schedule, drawing the per-core demand from m.remaining, and
// returns the steps executed. The tournament tree is a pure function of
// the live cores' clocks (exhausted cores sit at +inf), so rebuilding it
// here from the persisted remaining/clock state resumes the schedule at
// exactly the step where the previous call — or a restored checkpoint —
// left off: chunked execution is bit-identical to one uninterrupted loop.
// Everything it touches is preallocated; the loop allocates nothing.
func (m *Machine) continuePhase(budget uint64) uint64 {
	remaining := m.remaining
	live := m.buildTree()
	tree, leaves, shift, mask := m.tree, m.leaves, m.shift, uint64(m.leaves-1)
	var steps uint64
	if m.batching {
		// Batched drain: steps append their design requests to the pending
		// batch instead of issuing them one at a time. The tournament picks
		// winners in the one serial min-clock-first order, so the batch is
		// always a consecutive slice of the serial request sequence — even
		// across interleave boundaries — and flushing it anywhere is
		// bit-identical by AccessBatch's contract. Only a load read needs
		// its response on the spot (the core stalls on it), so it flushes
		// the batch it terminates inline; everything else rides along until
		// that, capacity, or the chunk boundary below.
		for live > 0 && steps < budget {
			best := int(tree[1] & mask)
			m.stepDeferred(best, remaining[best])
			steps++
			if remaining[best]--; remaining[best] == 0 {
				tree[leaves+best] = ^uint64(0)
				live--
			} else {
				tree[leaves+best] = m.cores[best].clock<<shift | uint64(best)
			}
			for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
				tree[n] = minKey(tree[2*n], tree[2*n+1])
			}
		}
		m.flushDesign()
		return steps
	}
	for live > 0 && steps < budget {
		best := int(tree[1] & mask)
		m.step(best, remaining[best])
		steps++
		if remaining[best]--; remaining[best] == 0 {
			tree[leaves+best] = ^uint64(0)
			live--
		} else {
			tree[leaves+best] = m.cores[best].clock<<shift | uint64(best)
		}
		// Replay best's matches up the tree.
		for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
			tree[n] = minKey(tree[2*n], tree[2*n+1])
		}
	}
	return steps
}

// continueTelemetry is continuePhase for a telemetry-armed measurement
// phase: the identical tournament schedule (batched or serial step per
// m.batching) with the sampled-replay boundary-crossing mechanics woven
// in. Boundaries are pure per-core counter snapshots taken as each core
// crosses them — no barrier, so the event interleaving (and therefore the
// run's Results) is bit-identical to the plain loop. When a boundary
// completes (every core crossed it), the pending design batch is flushed —
// legal anywhere by AccessBatch's contract — and the machine-wide
// statistics row is recorded: after the flush the state equals the serial
// reference state after the crossing step, which makes the snapshot
// independent of batching, chunking, and segmentation. Sync repositions
// the recorder's cursors from the persisted remaining budgets, so chunked
// and checkpoint-restored execution resumes recording exactly where the
// schedule stands; boundaries crossed before a restored segment are
// skipped (their cells belong to the earlier segment's recorder).
//
// The recording itself costs no per-step work: every live core's
// countdown is clamped at its next epoch boundary and the unmodified
// tournament loop runs until a core parks — reaches its clamped zero —
// which by construction happens exactly at that core's boundary. The
// loop stops the instant the parking step completes, so no other core
// runs ahead of the parked core's post-boundary events and the
// concatenated schedule is the uninterrupted one (the same chunking
// property RunTo already rests on). The parked core's snapshot is
// recorded, its withheld budget restored, and the loop re-enters.
func (m *Machine) continueTelemetry(budget uint64) uint64 {
	rec := m.tele
	meas := m.run.accesses - m.run.warm
	remaining := m.remaining
	rec.Sync(func(c int) int { return meas - remaining[c] })
	clamp := m.teleClamp
	var steps uint64
	for steps < budget {
		// Clamp live countdowns at each core's next boundary. A core past
		// its last boundary has Next == maxInt, never clamps, and simply
		// exhausts; the final bound sits at meas, so the last real park
		// coincides with natural exhaustion and records the closing epoch.
		for c, rem := range remaining {
			if rem <= 0 {
				continue
			}
			if k := rec.Next(c) - (meas - rem); k < rem {
				clamp[c] = rem - k
				remaining[c] = k
			}
		}
		n, parked := m.continueUntilPark(budget - steps)
		steps += n
		for c := range remaining {
			remaining[c] += clamp[c]
			clamp[c] = 0
		}
		if parked < 0 {
			break // budget exhausted or no live cores
		}
		consumed := meas - remaining[parked]
		pc := &m.cores[parked]
		if b, complete := rec.Cross(parked, consumed, pc.instr-pc.instr0, pc.clock-pc.clock0); complete {
			m.flushDesign()
			rec.Global(b, telemetry.GlobalRow{
				Design:  m.design.Snapshot(),
				Stacked: m.stacked.Stats(),
				Offchip: m.offchip.Stats(),
				L2:      m.l2.Stats(),
			})
		}
	}
	if m.batching {
		m.flushDesign()
	}
	return steps
}

// continueUntilPark is continuePhase with one extra exit: the moment any
// core's countdown reaches zero the loop returns that core's index
// (-1 when it ran out of budget or live cores instead). The telemetry
// driver clamps countdowns at epoch boundaries, so a park is a boundary
// arrival caught at the exact global step it happens; the loop bodies are
// otherwise identical to continuePhase's, which is what keeps a
// telemetry-armed run's schedule — and therefore its Results — bit-
// identical to a plain one.
func (m *Machine) continueUntilPark(budget uint64) (uint64, int) {
	remaining := m.remaining
	live := m.buildTree()
	tree, leaves, shift, mask := m.tree, m.leaves, m.shift, uint64(m.leaves-1)
	var steps uint64
	if m.batching {
		for live > 0 && steps < budget {
			best := int(tree[1] & mask)
			m.stepDeferred(best, remaining[best])
			steps++
			if remaining[best]--; remaining[best] == 0 {
				// Park: seal the leaf, settle the tree, and return from the
				// cold branch so the hot path carries no extra checks.
				tree[leaves+best] = ^uint64(0)
				for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
					tree[n] = minKey(tree[2*n], tree[2*n+1])
				}
				m.flushDesign()
				return steps, best
			}
			tree[leaves+best] = m.cores[best].clock<<shift | uint64(best)
			for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
				tree[n] = minKey(tree[2*n], tree[2*n+1])
			}
		}
		m.flushDesign()
		return steps, -1
	}
	for live > 0 && steps < budget {
		best := int(tree[1] & mask)
		m.step(best, remaining[best])
		steps++
		if remaining[best]--; remaining[best] == 0 {
			tree[leaves+best] = ^uint64(0)
			for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
				tree[n] = minKey(tree[2*n], tree[2*n+1])
			}
			return steps, best
		}
		tree[leaves+best] = m.cores[best].clock<<shift | uint64(best)
		for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
			tree[n] = minKey(tree[2*n], tree[2*n+1])
		}
	}
	return steps, -1
}

// buildTree (re)builds the tournament tree from the live cores' clocks and
// per-core remaining budgets, returning the live-core count. The tree is a
// pure function of that state, so a rebuild resumes the schedule exactly
// where the previous chunk — or a restored checkpoint — left off.
func (m *Machine) buildTree() int {
	tree, leaves, shift := m.tree, m.leaves, m.shift
	live := 0
	for i := 0; i < leaves; i++ {
		if i < len(m.cores) && m.remaining[i] > 0 {
			tree[leaves+i] = m.cores[i].clock<<shift | uint64(i)
			live++
		} else {
			tree[leaves+i] = ^uint64(0)
		}
	}
	for n := leaves - 1; n >= 1; n-- {
		tree[n] = minKey(tree[2*n], tree[2*n+1])
	}
	return live
}

// deferDesign queues a design request on the pending batch, flushing first
// if the scratch is full (an early flush just splits the serial sequence
// at a different batch boundary, which AccessBatch's contract makes free).
func (m *Machine) deferDesign(r dramcache.Request) {
	if len(m.breqs) == cap(m.breqs) {
		m.flushDesign()
	}
	m.breqs = append(m.breqs, r)
}

// flushDesign drives the pending batch through the design. A lone request
// skips the batch path entirely — Access and a size-1 AccessBatch are
// bit-identical, and most drains end with one or two requests pending.
func (m *Machine) flushDesign() {
	switch n := len(m.breqs); n {
	case 0:
	case 1:
		m.design.Access(m.breqs[0])
		m.breqs = m.breqs[:0]
	default:
		m.design.AccessBatch(m.breqs, m.bresps[:n])
		m.breqs = m.breqs[:0]
	}
}

// flushDesignTail flushes the pending batch and returns the response of
// its final request (the load read the draining core is stalled on).
func (m *Machine) flushDesignTail() dramcache.Response {
	n := len(m.breqs)
	if n == 1 {
		r := m.design.Access(m.breqs[0])
		m.breqs = m.breqs[:0]
		return r
	}
	m.design.AccessBatch(m.breqs, m.bresps[:n])
	m.breqs = m.breqs[:0]
	return m.bresps[n-1]
}

// minKey plays one tournament match on packed clock<<shift|core keys: the
// smaller key wins, which compares clocks first and breaks ties toward the
// lower core index — the lowest-index-wins rule of the linear scan.
func minKey(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// Replay advances every core by eventsPerCore events without touching the
// warmup/measurement bookkeeping. It exists for benchmarking and allocation
// tests that need to drive the steady-state hot loop directly, and it is
// the sampled path's functional phase: warmup and inter-window gaps advance
// cache content, predictor training, row buffers and core clocks at full
// fidelity while the measurement bookkeeping stays wherever the last
// boundary left it. Full simulations use Run.
func (m *Machine) Replay(eventsPerCore int) { m.replay(eventsPerCore) }

// BeginMeasurement marks the warmup/measurement boundary for callers that
// drive the machine phase by phase (the sampled-simulation schedule):
// statistics reset everywhere, simulated state stays warm. Equivalent to
// the boundary Run places after the warmup fraction.
func (m *Machine) BeginMeasurement() { m.resetForMeasurement() }

// CollectResults assembles results for everything measured since
// BeginMeasurement. The caller owns the phase schedule; Run is the
// one-warmup-one-interval composition of Replay, BeginMeasurement,
// Replay, CollectResults.
func (m *Machine) CollectResults() Results { return m.collect() }

// CoreInterval is one core's share of a measurement window: its retired
// instructions and elapsed cycles. Per-core deltas matter because the
// run-level throughput metric is the *sum of per-core IPCs*, and cores
// finish a fixed event count at very different cycle counts — any
// estimator built from window aggregates alone misstates it badly.
type CoreInterval struct {
	Instructions uint64
	Cycles       uint64
}

// Interval is one detailed measurement window's metrics, computed from
// cheap per-core counter snapshots at the window's boundaries.
type Interval struct {
	// UIPC is the summed per-core IPC over the window — the same
	// estimator Results.UIPC uses for the whole measured region.
	UIPC float64
	// Instructions is the window's total retired instructions; Cycles is
	// the maximum per-core cycle delta.
	Instructions uint64
	Cycles       uint64
	// PerCore holds each core's window deltas (the sampling estimator's
	// raw material).
	PerCore []CoreInterval
}

// ReplaySampled replays up to eventsPerCore events per core as ONE
// continuous min-clock-first schedule while measuring windows along the
// way: window w spans each core's events [starts[w], starts[w]+length),
// offsets relative to this call. Boundaries are pure per-core counter
// snapshots taken as each core crosses them — the schedule is exactly
// Replay's, with no synchronization barrier at any boundary. That is the
// load-bearing property: pausing the replay at window edges (a separate
// Replay call per window) re-synchronizes the cores' event counts, which
// reorders how the shared L2 and DRAM reservations resolve and shifts
// measured UIPC by whole percents per barrier; a sampled run must
// replay the same event interleaving the full run would.
//
// After the last core finishes window w, measured(w, iv) is invoked; if
// it returns false the replay stops right there (the adaptive early
// termination that makes sampled runs cheap), leaving the events faster
// cores had already simulated counted in the region statistics but in no
// window. No statistics are reset at any boundary, so CollectResults
// still covers the whole region since BeginMeasurement.
//
// Windows must be ascending, non-overlapping, and end at or before
// eventsPerCore. Returns the maximum per-core event count consumed.
func (m *Machine) ReplaySampled(eventsPerCore int, starts []int, length int, measured func(w int, iv Interval) bool) int {
	if eventsPerCore <= 0 || len(starts) == 0 {
		return 0
	}
	// Per-core boundary cursors and snapshots. Boundary 2w is window w's
	// start, boundary 2w+1 its end.
	cores := len(m.cores)
	bounds := make([]int, 0, 2*len(starts))
	for _, s := range starts {
		bounds = append(bounds, s, s+length)
	}
	snaps := make([]CoreInterval, len(bounds)*cores) // snaps[b*cores+c]
	cursor := make([]int, cores)                     // next boundary index per core
	endLeft := make([]int, len(starts))              // cores yet to finish window w
	for w := range endLeft {
		endLeft[w] = cores
	}

	remaining := m.remaining
	for i := range remaining {
		remaining[i] = eventsPerCore
	}
	live := m.buildTree()
	tree, leaves, shift, mask := m.tree, m.leaves, m.shift, uint64(m.leaves-1)

	// Boundary offset 0 (a window starting immediately) is crossed by
	// every core before any event runs.
	for c := range m.cores {
		m.crossBoundaries(c, 0, bounds, cursor, snaps)
	}

	consumedMax := 0
	for live > 0 {
		best := int(tree[1] & mask)
		m.step(best, remaining[best])
		consumed := eventsPerCore - remaining[best] + 1
		if consumed > consumedMax {
			consumedMax = consumed
		}
		if w, done := m.crossBoundaries(best, consumed, bounds, cursor, snaps); done {
			if endLeft[w]--; endLeft[w] == 0 {
				// Only now — once the last core has crossed the window's
				// end — are all of the window's snapshot rows written.
				if !measured(w, windowOf(snaps[2*w*cores:], cores)) {
					return consumedMax
				}
			}
		}
		if remaining[best]--; remaining[best] == 0 {
			tree[leaves+best] = ^uint64(0)
			live--
		} else {
			tree[leaves+best] = m.cores[best].clock<<shift | uint64(best)
		}
		for n := (leaves + best) >> 1; n >= 1; n >>= 1 {
			tree[n] = minKey(tree[2*n], tree[2*n+1])
		}
	}
	return consumedMax
}

// crossBoundaries records core c's counters for every boundary at or
// below consumed, and reports the window whose END boundary was just
// crossed (done), if any.
func (m *Machine) crossBoundaries(c, consumed int, bounds []int, cursor []int, snaps []CoreInterval) (window int, done bool) {
	cores := len(m.cores)
	for cursor[c] < len(bounds) && bounds[cursor[c]] <= consumed {
		b := cursor[c]
		snaps[b*cores+c] = CoreInterval{Instructions: m.cores[c].instr, Cycles: m.cores[c].clock}
		cursor[c]++
		if b%2 == 1 {
			window, done = b/2, true
		}
	}
	return window, done
}

// windowOf assembles a window's metrics from its start/end snapshot rows.
func windowOf(rows []CoreInterval, cores int) Interval {
	iv := Interval{PerCore: make([]CoreInterval, cores)}
	for c := 0; c < cores; c++ {
		start, end := rows[c], rows[cores+c]
		instr := end.Instructions - start.Instructions
		cycles := end.Cycles - start.Cycles
		iv.PerCore[c] = CoreInterval{Instructions: instr, Cycles: cycles}
		iv.Instructions += instr
		if cycles > iv.Cycles {
			iv.Cycles = cycles
		}
		if cycles > 0 {
			iv.UIPC += float64(instr) / float64(cycles)
		}
	}
	return iv
}

// step executes one trace event on core i; budget is the core's remaining
// event demand in this replay phase (bounding how far ahead the prefetch
// may pull).
func (m *Machine) step(i, budget int) {
	c := &m.cores[i]
	ev := c.nextEvent(budget)
	c.clock += uint64(ev.Gap)
	c.instr += uint64(ev.Gap) + 1

	block := ev.Addr.Block()
	if r := c.l1.Access(block, ev.Write); r.Hit {
		return // L1 hits are pipelined away.
	} else if r.Writeback {
		m.l2Write(r.WritebackBlock, c.clock, i)
	}

	// L1 miss: look up the shared L2.
	at := c.clock + c.l1.Latency()
	l2r := m.l2.Access(block, false)
	var doneAt uint64
	if l2r.Hit {
		doneAt = at + m.l2.Latency()
	} else {
		if l2r.Writeback {
			m.designWrite(l2r.WritebackBlock, at+m.l2.Latency(), i)
		}
		resp := m.design.Access(dramcache.Request{
			Addr: ev.Addr,
			PC:   ev.PC,
			Core: i,
			At:   at + m.l2.Latency(),
		})
		doneAt = resp.DoneAt
		if !ev.Write && doneAt > at+m.l2.Latency() {
			c.latSum += doneAt - (at + m.l2.Latency())
			c.latN++
		}
	}

	if ev.Write {
		return // Stores retire through the write buffer.
	}
	lat := doneAt - c.clock
	if lat > m.cfg.HideCycles {
		stall := (lat - m.cfg.HideCycles) / m.cfg.MLP
		c.clock += stall
		c.stall += stall
	}
}

// stepDeferred is step with design accesses deferred onto the pending
// batch instead of issued one at a time. L1 and L2 lookups still run in
// step order — they decide whether design requests exist at all — but the
// design only sees requests at flush points. Writes and store fetches need
// no response (stores retire through the write buffer; their DoneAt is
// never read), so they stay queued — across interleave boundaries, since
// deferral in step order keeps the batch a consecutive slice of the serial
// sequence no matter which cores contributed; a load read is the one
// request whose response the core must stall on, so it flushes the batch
// it terminates.
func (m *Machine) stepDeferred(i, budget int) {
	c := &m.cores[i]
	ev := c.nextEvent(budget)
	c.clock += uint64(ev.Gap)
	c.instr += uint64(ev.Gap) + 1

	block := ev.Addr.Block()
	if r := c.l1.Access(block, ev.Write); r.Hit {
		return // L1 hits are pipelined away.
	} else if r.Writeback {
		m.l2WriteDeferred(r.WritebackBlock, c.clock, i)
	}

	// L1 miss: look up the shared L2.
	at := c.clock + c.l1.Latency()
	l2r := m.l2.Access(block, false)
	var doneAt uint64
	if l2r.Hit {
		doneAt = at + m.l2.Latency()
	} else {
		if l2r.Writeback {
			m.deferDesign(dramcache.Request{
				Addr:  mem.BlockAddr(l2r.WritebackBlock),
				Core:  i,
				Write: true,
				At:    at + m.l2.Latency(),
			})
		}
		req := dramcache.Request{
			Addr: ev.Addr,
			PC:   ev.PC,
			Core: i,
			At:   at + m.l2.Latency(),
		}
		if ev.Write {
			m.deferDesign(req)
			return // Store miss: the fetch's completion time is never read.
		}
		var resp dramcache.Response
		if len(m.breqs) == 0 {
			// Nothing pending: the lone read goes straight through — a
			// size-1 batch and Access are the same request sequence.
			resp = m.design.Access(req)
		} else {
			m.deferDesign(req)
			resp = m.flushDesignTail()
		}
		doneAt = resp.DoneAt
		if doneAt > at+m.l2.Latency() {
			c.latSum += doneAt - (at + m.l2.Latency())
			c.latN++
		}
	}

	if ev.Write {
		return // Stores retire through the write buffer.
	}
	lat := doneAt - c.clock
	if lat > m.cfg.HideCycles {
		stall := (lat - m.cfg.HideCycles) / m.cfg.MLP
		c.clock += stall
		c.stall += stall
	}
}

// l2WriteDeferred is l2Write with the design-bound victim deferred onto
// the pending batch.
func (m *Machine) l2WriteDeferred(block uint64, at uint64, core int) {
	r := m.l2.Access(block, true)
	if r.Writeback {
		m.deferDesign(dramcache.Request{
			Addr:  mem.BlockAddr(r.WritebackBlock),
			Core:  core,
			Write: true,
			At:    at + m.l2.Latency(),
		})
	}
}

// SetBatching toggles the batched drain path (on by default). Off forces
// the serial one-Access-per-request reference schedule; results are
// bit-identical either way, so the switch exists for A/B verification and
// for isolating the design hot path in profiles.
func (m *Machine) SetBatching(on bool) { m.batching = on }

// l2Write absorbs an L1 dirty victim into the L2, forwarding any L2 victim
// to the DRAM cache.
func (m *Machine) l2Write(block uint64, at uint64, core int) {
	r := m.l2.Access(block, true)
	if r.Writeback {
		m.designWrite(r.WritebackBlock, at+m.l2.Latency(), core)
	}
}

// designWrite sends an L2 dirty victim to the DRAM cache design.
func (m *Machine) designWrite(block uint64, at uint64, core int) {
	m.design.Access(dramcache.Request{
		Addr:  mem.BlockAddr(block),
		Core:  core,
		Write: true,
		At:    at,
	})
}

// resetForMeasurement marks the warmup/measurement boundary: statistics
// reset everywhere, state (cache content, predictor training, row buffers,
// core clocks) stays warm.
func (m *Machine) resetForMeasurement() {
	m.design.ResetStats()
	m.stacked.ResetStats()
	m.offchip.ResetStats()
	m.l2.ResetStats()
	for i := range m.cores {
		c := &m.cores[i]
		c.l1.ResetStats()
		c.clock0 = c.clock
		c.instr0 = c.instr
		c.stall = 0
		c.latSum, c.latN = 0, 0
	}
}

// collect assembles the measured-interval results.
func (m *Machine) collect() Results {
	var res Results
	var l1Hit float64
	var maxCycles uint64
	for i := range m.cores {
		c := &m.cores[i]
		instr := c.instr - c.instr0
		cycles := c.clock - c.clock0
		res.Instructions += instr
		if cycles > maxCycles {
			maxCycles = cycles
		}
		if cycles > 0 {
			res.UIPC += float64(instr) / float64(cycles)
		}
		l1Hit += c.l1.Stats().HitRate()
	}
	var latSum, latN uint64
	for i := range m.cores {
		latSum += m.cores[i].latSum
		latN += m.cores[i].latN
	}
	if latN > 0 {
		res.AvgDRAMReadLatency = float64(latSum) / float64(latN)
	}
	res.Cycles = maxCycles
	res.L1HitRate = l1Hit / float64(len(m.cores))
	res.Design = m.design.Snapshot()
	res.Stacked = m.stacked.Stats()
	res.Offchip = m.offchip.Stats()
	res.L2 = m.l2.Stats()
	if res.Instructions > 0 {
		total := res.Design.OffchipReadBytes + res.Design.OffchipWriteBytes
		res.OffchipBytesPerKI = float64(total) * 1000 / float64(res.Instructions)
	}
	return res
}
