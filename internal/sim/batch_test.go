package sim

import (
	"bytes"
	"testing"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/core"
	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
)

// unisonDesign builds the paper's design at test scale for machine-level
// batching tests: small enough to churn evictions, large enough that the
// request mix covers hits, misses and write-backs.
func unisonDesign(s, o *dram.Controller) dramcache.Design {
	u, err := core.New(core.Config{
		CapacityBytes: 1 << 20,
		LabelBytes:    32 << 20,
		PageBlocks:    15,
		Ways:          4,
	}, s, o)
	if err != nil {
		panic(err)
	}
	return u
}

// resultsEqual compares two Results by value. The Design snapshot's ratio
// fields are pointers, so they are dereferenced first and the structs
// compared with the pointers cleared.
func resultsEqual(a, b Results) bool {
	ra, rb := a.Design, b.Design
	if (ra.WP == nil) != (rb.WP == nil) || (ra.WP != nil && *ra.WP != *rb.WP) {
		return false
	}
	if (ra.FP == nil) != (rb.FP == nil) || (ra.FP != nil && *ra.FP != *rb.FP) {
		return false
	}
	if (ra.FO == nil) != (rb.FO == nil) || (ra.FO != nil && *ra.FO != *rb.FO) {
		return false
	}
	if (ra.MP == nil) != (rb.MP == nil) || (ra.MP != nil && *ra.MP != *rb.MP) {
		return false
	}
	ra.FP, ra.FO, ra.WP, ra.MP = nil, nil, nil, nil
	rb.FP, rb.FO, rb.WP, rb.MP = nil, nil, nil, nil
	a.Design, b.Design = dramcache.Snapshot{}, dramcache.Snapshot{}
	return a == b && ra == rb
}

// machineCheckpoint serializes a machine's full state.
func machineCheckpoint(t *testing.T, m *Machine) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	m.SaveState(w)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	return w.Bytes()
}

// TestBatchedRunMatchesSerial is the machine-level batching wall: a full
// Run — warmup, the ResetStats boundary into measurement, cross-core
// interleaving, L2 victim write-backs — on a batched machine must be
// bit-identical to the serial reference, down to the checkpoint bytes.
// Design batches here accumulate requests from multiple cores between load
// reads, so this is also the cross-core interleave-split test.
func TestBatchedRunMatchesSerial(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	cfg.L2.SizeBytes = 256 << 10

	serial := testMachine(t, cfg, "data-serving", unisonDesign)
	serial.SetBatching(false)
	batched := testMachine(t, cfg, "data-serving", unisonDesign)

	rs := serial.Run(6000)
	rb := batched.Run(6000)
	if !resultsEqual(rs, rb) {
		t.Errorf("results diverge:\nserial  %+v\nbatched %+v", rs, rb)
	}
	if !bytes.Equal(machineCheckpoint(t, serial), machineCheckpoint(t, batched)) {
		t.Error("checkpoint bytes diverge after batched run")
	}
}

// TestBatchedWarmupBoundary pins the warmup→measurement seam: the pending
// batch must drain before ResetStats fires, so chunking a run right across
// the boundary changes nothing. The chunked batched run stops exactly at
// the boundary step and resumes, while the reference runs uninterrupted.
func TestBatchedWarmupBoundary(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	cfg.L2.SizeBytes = 256 << 10
	const accesses = 4000

	ref := testMachine(t, cfg, "web-search", unisonDesign)
	rr := ref.Run(accesses)

	m := testMachine(t, cfg, "web-search", unisonDesign)
	m.BeginRun(accesses)
	m.RunTo(m.WarmSteps() - 3) // stop mid-batch, just shy of the boundary
	m.RunTo(m.WarmSteps())     // cross it
	rm := m.FinishRun()

	if !resultsEqual(rr, rm) {
		t.Errorf("results diverge across warmup boundary chunking:\nref     %+v\nchunked %+v", rr, rm)
	}
	if !bytes.Equal(machineCheckpoint(t, ref), machineCheckpoint(t, m)) {
		t.Error("checkpoint bytes diverge after boundary-chunked run")
	}
}

// TestBatchedCheckpointRestore runs AccessBatch on a checkpoint-restored
// machine: a batched run checkpointed mid-warmup and restored into a fresh
// machine must finish bit-identical to both an uninterrupted batched run
// and the serial reference.
func TestBatchedCheckpointRestore(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	cfg.L2.SizeBytes = 256 << 10
	const accesses = 5000

	serial := testMachine(t, cfg, "data-serving", unisonDesign)
	serial.SetBatching(false)
	rs := serial.Run(accesses)

	saver := testMachine(t, cfg, "data-serving", unisonDesign)
	saver.BeginRun(accesses)
	saver.RunTo(saver.TotalSteps() / 3)
	blob := machineCheckpoint(t, saver)

	restored := testMachine(t, cfg, "data-serving", unisonDesign)
	restored.BeginRun(accesses)
	if err := restored.LoadState(checkpoint.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	rr := restored.FinishRun()

	if !resultsEqual(rs, rr) {
		t.Errorf("restored batched run diverges from serial:\nserial   %+v\nrestored %+v", rs, rr)
	}
	if !bytes.Equal(machineCheckpoint(t, serial), machineCheckpoint(t, restored)) {
		t.Error("checkpoint bytes diverge after restored batched run")
	}
}

// TestSetBatchingMidRun flips the drain path off and back on between
// chunks of one run: the toggle is documented as performance-only, so the
// final state must match an always-batched run exactly.
func TestSetBatchingMidRun(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	cfg.L2.SizeBytes = 256 << 10
	const accesses = 4000

	ref := testMachine(t, cfg, "web-serving", unisonDesign)
	rr := ref.Run(accesses)

	m := testMachine(t, cfg, "web-serving", unisonDesign)
	m.BeginRun(accesses)
	m.RunTo(m.TotalSteps() / 4)
	m.SetBatching(false)
	m.RunTo(m.TotalSteps() / 2)
	m.SetBatching(true)
	rm := m.FinishRun()

	if !resultsEqual(rr, rm) {
		t.Errorf("mid-run toggle diverges:\nref     %+v\ntoggled %+v", rr, rm)
	}
}
