package sim

import (
	"fmt"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/mem"
	"unisoncache/internal/trace"
)

// SaveState serializes the machine's complete mutable state: the run
// cursor, every core's clocks, counters, remaining budget, buffered
// prefetched events and source cursor, the private L1s, the shared L2, the
// DRAM cache design and both DRAM parts. Restoring it into a machine built
// from the same configuration (LoadState) resumes the run bit-identically.
// Sources that do not implement trace.Stateful fail the Writer.
func (m *Machine) SaveState(w *checkpoint.Writer) {
	w.Section("sim.machine")
	w.U64(uint64(m.run.accesses))
	w.U64(uint64(m.run.warm))
	w.U8(m.run.phase)
	w.U64(m.run.step)
	w.U64(uint64(len(m.cores)))
	for i := range m.cores {
		c := &m.cores[i]
		w.U64(c.clock)
		w.U64(c.instr)
		w.U64(c.stall)
		w.U64(c.latSum)
		w.U64(c.latN)
		w.U64(c.clock0)
		w.U64(c.instr0)
		w.I64(int64(m.remaining[i]))
		// Prefetched-but-unexecuted events: the slab's live window. The
		// restored machine replays them before pulling from the source
		// again, so the source cursor below is saved at the already-pulled
		// position and the refill sequence thereafter is unchanged.
		w.U64(uint64(c.n - c.pos))
		for _, ev := range c.buf[c.pos:c.n] {
			w.U32(ev.Gap)
			w.U64(uint64(ev.Addr))
			w.U64(ev.PC)
			w.Bool(ev.Write)
		}
		st, ok := c.src.(trace.Stateful)
		if !ok {
			w.Fail(fmt.Errorf("sim: core %d source %T does not support checkpointing", i, c.src))
			return
		}
		st.SaveState(w)
		c.l1.SaveState(w)
	}
	m.l2.SaveState(w)
	m.design.SaveState(w)
	m.stacked.SaveState(w)
	m.offchip.SaveState(w)
}

// LoadState restores state saved by SaveState into a machine constructed
// with the same configuration, sources, design and DRAM parts. On error
// the machine may hold a partial restore and must be discarded — callers
// fall back to a freshly built machine.
func (m *Machine) LoadState(r *checkpoint.Reader) error {
	r.Section("sim.machine")
	accesses := r.U64()
	warm := r.U64()
	phase := r.U8()
	step := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	const maxInt = int(^uint(0) >> 1)
	if accesses > uint64(maxInt) || warm > accesses || phase > 2 ||
		step > accesses*uint64(len(m.cores)) {
		return fmt.Errorf("sim: snapshot run cursor (accesses %d, warm %d, phase %d, step %d) is inconsistent", accesses, warm, phase, step)
	}
	m.run = runState{accesses: int(accesses), warm: int(warm), phase: phase, step: step}
	if n := r.U64(); r.Err() == nil && n != uint64(len(m.cores)) {
		return fmt.Errorf("sim: snapshot has %d cores, machine has %d", n, len(m.cores))
	}
	for i := range m.cores {
		c := &m.cores[i]
		c.clock = r.U64()
		c.instr = r.U64()
		c.stall = r.U64()
		c.latSum = r.U64()
		c.latN = r.U64()
		c.clock0 = r.U64()
		c.instr0 = r.U64()
		rem := r.I64()
		if r.Err() != nil {
			return r.Err()
		}
		if rem < 0 || rem > int64(accesses) {
			return fmt.Errorf("sim: snapshot remaining budget %d for core %d is out of range", rem, i)
		}
		m.remaining[i] = int(rem)
		n := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if n > uint64(len(c.buf)) {
			return fmt.Errorf("sim: snapshot buffers %d events for core %d, slab holds %d", n, i, len(c.buf))
		}
		for j := uint64(0); j < n; j++ {
			c.buf[j] = trace.Event{Gap: r.U32()}
			c.buf[j].Addr = mem.Addr(r.U64())
			c.buf[j].PC = r.U64()
			c.buf[j].Write = r.Bool()
		}
		c.pos, c.n = 0, int(n)
		st, ok := c.src.(trace.Stateful)
		if !ok {
			return fmt.Errorf("sim: core %d source %T does not support checkpointing", i, c.src)
		}
		if err := st.LoadState(r); err != nil {
			return err
		}
		if err := c.l1.LoadState(r); err != nil {
			return err
		}
	}
	if err := m.l2.LoadState(r); err != nil {
		return err
	}
	if err := m.design.LoadState(r); err != nil {
		return err
	}
	if err := m.stacked.LoadState(r); err != nil {
		return err
	}
	if err := m.offchip.LoadState(r); err != nil {
		return err
	}
	return r.Err()
}
