package sim

import (
	"encoding/json"
	"testing"
)

// TestPhaseCompositionMatchesRun pins the interval API's core contract:
// Replay(warm) + BeginMeasurement + Replay(rest) + CollectResults is
// bit-identical to Run(accesses) on an identically constructed machine —
// the sampled driver composes exactly the same primitives Run does.
func TestPhaseCompositionMatchesRun(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	const accesses = 9_000
	whole := testMachine(t, cfg, "web-search", noneDesign).Run(accesses)

	m := testMachine(t, cfg, "web-search", noneDesign)
	warm := int(float64(accesses) * cfg.WarmupFrac)
	m.Replay(warm)
	m.BeginMeasurement()
	m.Replay(accesses - warm)
	composed := m.CollectResults()

	a, _ := json.Marshal(whole)
	b, _ := json.Marshal(composed)
	if string(a) != string(b) {
		t.Fatalf("phase composition diverged from Run:\n run: %s\ncomposed: %s", a, b)
	}
}

// TestReplaySampledNoBarrier pins the property the sampled path is built
// on: measuring windows inside ReplaySampled leaves the simulation
// bit-identical to a plain Replay of the same span — boundaries are pure
// snapshots, never synchronization barriers.
func TestReplaySampledNoBarrier(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	const warm, span = 3_000, 6_000

	plain := testMachine(t, cfg, "data-serving", noneDesign)
	plain.Replay(warm)
	plain.BeginMeasurement()
	plain.Replay(span)
	want := plain.CollectResults()

	sampled := testMachine(t, cfg, "data-serving", noneDesign)
	sampled.Replay(warm)
	sampled.BeginMeasurement()
	windows := 0
	consumed := sampled.ReplaySampled(span, []int{0, 2_000, 4_000}, 1_000, func(w int, iv Interval) bool {
		windows++
		return true
	})
	got := sampled.CollectResults()

	if consumed != span {
		t.Fatalf("consumed %d events per core, want the full span %d", consumed, span)
	}
	if windows != 3 {
		t.Fatalf("measured %d windows, want 3", windows)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("window boundaries perturbed the simulation:\nplain:   %s\nsampled: %s", a, b)
	}
}

// TestReplaySampledTiling: windows tiling the whole span telescope — the
// per-core window sums equal the region totals exactly.
func TestReplaySampledTiling(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	m := testMachine(t, cfg, "web-serving", noneDesign)
	m.Replay(2_000)
	m.BeginMeasurement()
	const windows, length = 5, 800
	perCore := make([]CoreInterval, cfg.Cores)
	var instr uint64
	starts := make([]int, windows)
	for w := range starts {
		starts[w] = w * length
	}
	n := 0
	m.ReplaySampled(windows*length, starts, length, func(w int, iv Interval) bool {
		if w != n {
			t.Fatalf("windows out of order: got %d, want %d", w, n)
		}
		n++
		if iv.UIPC <= 0 || iv.Instructions == 0 || iv.Cycles == 0 {
			t.Fatalf("window %d: empty metrics %+v", w, iv)
		}
		for c, d := range iv.PerCore {
			perCore[c].Instructions += d.Instructions
			perCore[c].Cycles += d.Cycles
		}
		instr += iv.Instructions
		return true
	})
	res := m.CollectResults()
	if res.Instructions != instr {
		t.Errorf("windows retired %d instructions, region reports %d", instr, res.Instructions)
	}
	var uipc float64
	for _, d := range perCore {
		if d.Cycles > 0 {
			uipc += float64(d.Instructions) / float64(d.Cycles)
		}
	}
	if diff := uipc - res.UIPC; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-core window sums give UIPC %v, region %v", uipc, res.UIPC)
	}
}

// TestReplaySampledEarlyStop: returning false from the visitor ends the
// replay without simulating the remaining schedule, and gap events
// between windows still land in the region statistics.
func TestReplaySampledEarlyStop(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	m := testMachine(t, cfg, "web-search", noneDesign)
	m.Replay(2_000)
	m.BeginMeasurement()
	// Windows at 0 and 2000 (gap 1500 between), horizon 10000.
	var first Interval
	consumed := m.ReplaySampled(10_000, []int{0, 2_000}, 500, func(w int, iv Interval) bool {
		if w == 0 {
			first = iv
		}
		return w < 0 // stop after the first window
	})
	if consumed >= 10_000 {
		t.Fatalf("early stop consumed the whole horizon (%d)", consumed)
	}
	if consumed < 500 {
		t.Fatalf("consumed %d events, yet the first window needs 500", consumed)
	}
	res := m.CollectResults()
	if res.Instructions < first.Instructions {
		t.Errorf("region instructions %d below the measured window's %d", res.Instructions, first.Instructions)
	}
}
