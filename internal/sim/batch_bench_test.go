package sim

import (
	"testing"

	"unisoncache/internal/core"
	"unisoncache/internal/dram"
	"unisoncache/internal/trace"
)

// steadyUnisonMachine mirrors cmd/bench's steadyMachine: the Figure 7
// unison cell at simulation scale with nothing but the replay loop timed.
func steadyUnisonMachine(tb testing.TB, cores int) *Machine {
	tb.Helper()
	const labelCap = uint64(1 << 30)
	div := uint64(32) // AutoScaleDivisor(1<<30)
	prof := *trace.Profiles()["data-serving"]
	prof.WorkingSetBytes /= div
	sources := make([]trace.Source, cores)
	for i := range sources {
		s, err := trace.NewStream(&prof, 1, i)
		if err != nil {
			tb.Fatal(err)
		}
		sources[i] = s
	}
	stacked, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		tb.Fatal(err)
	}
	offchip, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		tb.Fatal(err)
	}
	design, err := core.New(core.Config{
		CapacityBytes: labelCap / div,
		LabelBytes:    labelCap,
		PageBlocks:    15,
		Ways:          4,
	}, stacked, offchip)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := Default()
	cfg.Cores = cores
	cfg.L2.SizeBytes = 128 << 10
	m, err := New(cfg, sources, design, stacked, offchip)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func BenchmarkSteadyReplay(b *testing.B) {
	m := steadyUnisonMachine(b, 16)
	m.Replay(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Replay(5_000)
	}
}

func BenchmarkSteadyReplaySerial(b *testing.B) {
	m := steadyUnisonMachine(b, 16)
	m.SetBatching(false)
	m.Replay(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Replay(5_000)
	}
}
