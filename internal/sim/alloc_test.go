package sim

import (
	"testing"

	"unisoncache/internal/core"
	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/trace"
)

// plainSource hides a Stream's NextBatch, forcing the machine through the
// generic AsBatcher adapter.
type plainSource struct{ s *trace.Stream }

func (p plainSource) Next() trace.Event { return p.s.Next() }

// smallConfig is a fast machine shape for scheduler and allocation tests.
func smallConfig(cores int) Config {
	cfg := Default()
	cfg.Cores = cores
	cfg.L2.SizeBytes = 256 << 10
	return cfg
}

// TestBatchedSourcesMatchAdapter runs the same workload through native
// Batcher sources and through plain Sources behind the AsBatcher adapter:
// the per-core prefetch must be invisible, so results are identical.
func TestBatchedSourcesMatchAdapter(t *testing.T) {
	prof := trace.Profiles()["web-serving"]
	build := func(plain bool) *Machine {
		sources := make([]trace.Source, 4)
		for i := range sources {
			s, err := trace.NewStream(prof, 21, i)
			if err != nil {
				t.Fatal(err)
			}
			if plain {
				sources[i] = plainSource{s}
			} else {
				sources[i] = s
			}
		}
		st, err := dram.NewController(dram.StackedConfig())
		if err != nil {
			t.Fatal(err)
		}
		off, err := dram.NewController(dram.OffchipConfig())
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(smallConfig(4), sources, dramcache.NewNone(off), st, off)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	native := build(false).Run(30_000)
	adapted := build(true).Run(30_000)
	if native != adapted {
		t.Errorf("batched sources diverged from adapter:\nnative:  %+v\nadapter: %+v", native, adapted)
	}
}

// TestReplaySteadyStateZeroAllocs is the allocation wall of the hot path:
// once warm, replaying events allocates nothing — not in the scheduler,
// the prefetch buffers, the SRAM caches, the DRAM cache design, the
// predictors or the synthetic generator. testing.AllocsPerRun would hide
// rare amortized growth, so the check also repeats enough events to cycle
// every reusable buffer many times.
func TestReplaySteadyStateZeroAllocs(t *testing.T) {
	designs := map[string]func(st, off *dram.Controller) (dramcache.Design, error){
		"ideal": func(st, off *dram.Controller) (dramcache.Design, error) {
			return dramcache.NewIdeal(st), nil
		},
		"unison": func(st, off *dram.Controller) (dramcache.Design, error) {
			return core.New(core.Config{CapacityBytes: 8 << 20, PageBlocks: 15, Ways: 4}, st, off)
		},
		"alloy": func(st, off *dram.Controller) (dramcache.Design, error) {
			return dramcache.NewAlloy(8<<20, 4, st, off)
		},
		"footprint": func(st, off *dram.Controller) (dramcache.Design, error) {
			return dramcache.NewFootprint(dramcache.FCConfig{CapacityBytes: 8 << 20, Ways: 32, TagLatency: 6}, st, off)
		},
	}
	for name, build := range designs {
		t.Run(name, func(t *testing.T) {
			st, err := dram.NewController(dram.StackedConfig())
			if err != nil {
				t.Fatal(err)
			}
			off, err := dram.NewController(dram.OffchipConfig())
			if err != nil {
				t.Fatal(err)
			}
			sources := make([]trace.Source, 4)
			for i := range sources {
				s, err := trace.NewStream(trace.Profiles()["data-serving"], 5, i)
				if err != nil {
					t.Fatal(err)
				}
				sources[i] = s
			}
			design, err := build(st, off)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(smallConfig(4), sources, design, st, off)
			if err != nil {
				t.Fatal(err)
			}
			m.Replay(20_000) // Warm caches, visit buffers and predictor tables.
			if allocs := testing.AllocsPerRun(10, func() { m.Replay(5_000) }); allocs != 0 {
				t.Errorf("steady-state replay allocates %v times per 5k-event interval, want 0", allocs)
			}
		})
	}
}

// TestSegmentedReplaySteadyStateZeroAllocs extends the allocation wall to
// the chunked cursor segment workers drive: once a run is past its warmup
// boundary, advancing it RunTo-chunk by RunTo-chunk — exactly what a
// restored segment does — must allocate nothing. The tournament rebuild at
// every chunk entry works entirely in preallocated arrays.
func TestSegmentedReplaySteadyStateZeroAllocs(t *testing.T) {
	st, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		t.Fatal(err)
	}
	off, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]trace.Source, 4)
	for i := range sources {
		s, err := trace.NewStream(trace.Profiles()["data-serving"], 5, i)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = s
	}
	design, err := core.New(core.Config{CapacityBytes: 8 << 20, PageBlocks: 15, Ways: 4}, st, off)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(smallConfig(4), sources, design, st, off)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginRun(60_000)
	m.RunTo(m.WarmSteps() + 10_000) // past the boundary, tables warm
	target := m.WarmSteps() + 10_000
	if allocs := testing.AllocsPerRun(10, func() {
		target += 5_000
		m.RunTo(target)
	}); allocs != 0 {
		t.Errorf("steady-state segmented advance allocates %v times per 5k-step chunk, want 0", allocs)
	}
}
