package sim

import (
	"fmt"
	"os"
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/trace"
)

// TestTuneGaps is a calibration harness, not a regression test: run with
// TUNE=1 to print the ideal/none speedup ratio per workload and gap.
func TestTuneGaps(t *testing.T) {
	if os.Getenv("TUNE") == "" {
		t.Skip("calibration harness; set TUNE=1")
	}
	gaps := map[string][]float64{
		"data-analytics":   {14, 25, 40},
		"data-serving":     {4, 6, 8},
		"software-testing": {10, 16, 24},
		"web-search":       {14, 24, 36},
		"web-serving":      {10, 16, 24},
		"tpch":             {20, 40, 60},
	}
	for _, name := range trace.Names() {
		prof0 := trace.Profiles()[name]
		for _, gap := range gaps[name] {
			prof := *prof0
			prof.GapMean = gap
			prof.WorkingSetBytes /= 32
			ratio := idealOverNone(t, &prof)
			fmt.Printf("%-18s gap=%4.0f ideal/none=%.2f\n", name, gap, ratio)
		}
	}
}

func idealOverNone(t *testing.T, prof *trace.Profile) float64 {
	run := func(mk func(s, o *dram.Controller) dramcache.Design) float64 {
		s, _ := dram.NewController(dram.StackedConfig())
		o, _ := dram.NewController(dram.OffchipConfig())
		cfg := Default()
		cfg.L2.SizeBytes = 128 << 10
		sources := make([]trace.Source, cfg.Cores)
		for i := range sources {
			sources[i], _ = trace.NewStream(prof, 1, i)
		}
		m, err := New(cfg, sources, mk(s, o), s, o)
		if err != nil {
			t.Fatal(err)
		}
		return m.Run(100000).UIPC
	}
	none := run(func(s, o *dram.Controller) dramcache.Design { return dramcache.NewNone(o) })
	ideal := run(func(s, o *dram.Controller) dramcache.Design { return dramcache.NewIdeal(s) })
	return ideal / none
}
