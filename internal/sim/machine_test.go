package sim

import (
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/trace"
)

func testSources(t *testing.T, cores int, workload string) []trace.Source {
	t.Helper()
	sources := make([]trace.Source, cores)
	for i := range sources {
		s, err := trace.NewStream(trace.Profiles()[workload], 42, i)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = s
	}
	return sources
}

func testMachine(t *testing.T, cfg Config, workload string, design func(s, o *dram.Controller) dramcache.Design) *Machine {
	t.Helper()
	s, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		t.Fatal(err)
	}
	o, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, testSources(t, cfg.Cores, workload), design(s, o), s, o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func noneDesign(s, o *dram.Controller) dramcache.Design  { return dramcache.NewNone(o) }
func idealDesign(s, o *dram.Controller) dramcache.Design { return dramcache.NewIdeal(s) }

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	cfg := Default()
	if cfg.Cores != 16 {
		t.Errorf("cores = %d, want 16", cfg.Cores)
	}
	if cfg.L1.SizeBytes != 64<<10 || cfg.L1.Latency != 2 {
		t.Errorf("L1 = %+v", cfg.L1)
	}
	if cfg.L2.SizeBytes != 4<<20 || cfg.L2.Ways != 16 || cfg.L2.Latency != 13 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.WarmupFrac < 0.6 || cfg.WarmupFrac > 0.7 {
		t.Errorf("warmup fraction = %v, want ~2/3", cfg.WarmupFrac)
	}
}

func TestNewValidation(t *testing.T) {
	s, _ := dram.NewController(dram.StackedConfig())
	o, _ := dram.NewController(dram.OffchipConfig())
	cfg := Default()
	cfg.Cores = 2
	if _, err := New(cfg, nil, dramcache.NewNone(o), s, o); err == nil {
		t.Error("nil source slice accepted")
	}
	if _, err := New(cfg, testSources(t, 1, "web-search"), dramcache.NewNone(o), s, o); err == nil {
		t.Error("short source slice accepted")
	}
	if _, err := New(cfg, []trace.Source{nil, nil}, dramcache.NewNone(o), s, o); err == nil {
		t.Error("nil source entries accepted")
	}
	cfg.Cores = 0
	if _, err := New(cfg, nil, dramcache.NewNone(o), s, o); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = Default()
	cfg.Cores = 1
	cfg.WarmupFrac = 1.0
	if _, err := New(cfg, testSources(t, 1, "web-search"), dramcache.NewNone(o), s, o); err == nil {
		t.Error("WarmupFrac=1 accepted")
	}
}

func TestRunProducesWork(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	m := testMachine(t, cfg, "web-serving", noneDesign)
	res := m.Run(5000)
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("empty results: %+v", res)
	}
	if res.UIPC <= 0 || res.UIPC > float64(cfg.Cores) {
		t.Errorf("UIPC = %v out of (0,%d]", res.UIPC, cfg.Cores)
	}
	if res.L1HitRate <= 0 || res.L1HitRate >= 1 {
		t.Errorf("L1 hit rate = %v", res.L1HitRate)
	}
	if res.Design.Reads == 0 {
		t.Error("no demand reads reached the DRAM level")
	}
	if res.OffchipBytesPerKI <= 0 {
		t.Error("no off-chip traffic recorded")
	}
}

func TestRunZeroAccesses(t *testing.T) {
	cfg := Default()
	cfg.Cores = 1
	m := testMachine(t, cfg, "web-search", noneDesign)
	if res := m.Run(0); res.Instructions != 0 {
		t.Error("zero-access run produced work")
	}
}

func TestIdealOutperformsBaseline(t *testing.T) {
	cfg := Default()
	cfg.Cores = 4
	base := testMachine(t, cfg, "data-serving", noneDesign).Run(8000)
	ideal := testMachine(t, cfg, "data-serving", idealDesign).Run(8000)
	if ideal.UIPC <= base.UIPC {
		t.Errorf("ideal UIPC %v <= baseline %v", ideal.UIPC, base.UIPC)
	}
	if ideal.OffchipBytesPerKI != 0 {
		t.Error("ideal design produced off-chip traffic")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	r1 := testMachine(t, cfg, "software-testing", noneDesign).Run(4000)
	r2 := testMachine(t, cfg, "software-testing", noneDesign).Run(4000)
	if r1.UIPC != r2.UIPC || r1.Instructions != r2.Instructions || r1.Cycles != r2.Cycles {
		t.Errorf("identical runs diverged: %+v vs %+v", r1, r2)
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	cfg.WarmupFrac = 0.5
	m := testMachine(t, cfg, "web-search", noneDesign)
	res := m.Run(4000)
	// Measured reads must be roughly half of an unwarmed run's.
	m2 := testMachine(t, cfg, "web-search", noneDesign)
	m2.cfg.WarmupFrac = 0
	res2 := m2.Run(4000)
	if res.Design.Reads >= res2.Design.Reads {
		t.Errorf("warmup not excluded: %d >= %d", res.Design.Reads, res2.Design.Reads)
	}
}

func TestCoreClocksStayInterleaved(t *testing.T) {
	cfg := Default()
	cfg.Cores = 8
	m := testMachine(t, cfg, "tpch", noneDesign)
	m.Run(3000)
	var minC, maxC uint64 = ^uint64(0), 0
	for i := range m.cores {
		c := m.cores[i].clock
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC == 0 {
		t.Fatal("a core never advanced")
	}
	if float64(maxC-minC)/float64(maxC) > 0.5 {
		t.Errorf("core clocks diverged: min %d max %d", minC, maxC)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	// A write-heavy run must not be slower than a read-heavy one at equal
	// miss traffic — indirectly verified by UIPC being finite and > 0
	// with 100% writes is impossible via profiles, so check the stall
	// accounting instead: stalls only accumulate on loads.
	cfg := Default()
	cfg.Cores = 1
	m := testMachine(t, cfg, "data-serving", noneDesign)
	m.Run(3000)
	c := &m.cores[0]
	if c.stall == 0 {
		t.Error("no load stalls recorded on a memory-bound baseline")
	}
	if c.stall > c.clock {
		t.Error("stall cycles exceed total cycles")
	}
}

func TestHideCyclesReduceStalls(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	slow := testMachine(t, cfg, "web-serving", noneDesign).Run(4000)
	cfg.HideCycles = 200
	fast := testMachine(t, cfg, "web-serving", noneDesign).Run(4000)
	if fast.UIPC <= slow.UIPC {
		t.Errorf("larger OoO window did not help: %v <= %v", fast.UIPC, slow.UIPC)
	}
}
