package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"unisoncache/client"
	"unisoncache/internal/obs"
)

// metrics is the daemon's counter set, exposed on GET /metrics in the
// Prometheus text exposition format (flat counters and gauges, no
// dependencies).
type metrics struct {
	cacheHits     atomic.Uint64 // executions served from the in-memory result cache
	cacheMisses   atomic.Uint64 // executions that actually simulated here
	coalesced     atomic.Uint64 // executions that joined an in-flight one
	storeHits     atomic.Uint64 // executions/lookups served from the persistent store
	peerFills     atomic.Uint64 // owned keys filled from a peer's cache instead of simulating
	proxied       atomic.Uint64 // runs forwarded to their owning daemon
	jobsSubmitted atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64
	// telemetryEpochs counts epoch timeline slices recorded onto job
	// records — live from local simulations plus terminal backfills from
	// cached/stored/peer results.
	telemetryEpochs atomic.Uint64
}

// latencies is the daemon's histogram set: fixed-bucket Prometheus-text
// histograms (internal/obs) over every latency the cluster story cares
// about. All observations are whole-operation durations recorded at the
// service layer — nothing here runs inside the replay hot path.
type latencies struct {
	// http is per-endpoint request latency, labeled by route pattern.
	http *obs.Vec
	// queueWait is how long jobs sat queued before a worker picked them
	// up (fed by the runner queue's OnStart hook).
	queueWait *obs.Histogram
	// execute is the wall-clock duration of actual simulations (cache
	// misses that ran the engine).
	execute *obs.Histogram
	// storeRead / storeWrite are persistent-store operation latencies.
	storeRead  *obs.Histogram
	storeWrite *obs.Histogram
	// peer is cluster round-trip latency, labeled by hop kind
	// ("proxy" for forwarding to the owner, "peer-fill" for cache
	// lookups on other members).
	peer *obs.Vec
	// epochGap is the wall-clock gap between consecutive telemetry epochs
	// a live simulation emits — the epoch cadence, which tracks replay
	// throughput (epoch length is fixed in events, so the gap is
	// events-per-epoch over events-per-second).
	epochGap *obs.Histogram
}

func newLatencies() *latencies {
	return &latencies{
		http:       obs.NewVec("unisonserved_http_request_seconds", "HTTP request latency by route.", "route", nil),
		queueWait:  obs.NewHistogram("unisonserved_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.", nil),
		execute:    obs.NewHistogram("unisonserved_execute_seconds", "Wall-clock duration of simulations executed on this daemon.", nil),
		storeRead:  obs.NewHistogram("unisonserved_store_read_seconds", "Persistent result store read latency.", nil),
		storeWrite: obs.NewHistogram("unisonserved_store_write_seconds", "Persistent result store write latency.", nil),
		peer:       obs.NewVec("unisonserved_peer_roundtrip_seconds", "Cluster round-trip latency by hop kind.", "op", nil),
		epochGap:   obs.NewHistogram("unisonserved_telemetry_epoch_gap_seconds", "Wall-clock gap between consecutive telemetry epochs emitted by live simulations.", nil),
	}
}

// buildVersion resolves the daemon's module version from the binary's
// embedded build info ("(devel)" for a plain go build / go test).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// handleMetrics renders every counter, gauge and histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counterFloat := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeFloat := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("unisonserved_cache_hits_total", "Run executions served from the in-memory content-addressed result cache.", s.m.cacheHits.Load())
	counter("unisonserved_cache_misses_total", "Run executions that simulated on this daemon (cache fill).", s.m.cacheMisses.Load())
	counter("unisonserved_inflight_coalesced_total", "Run executions deduplicated onto a concurrent identical execution.", s.m.coalesced.Load())
	counter("unisonserved_store_hits_total", "Run executions and lookups served from the persistent result store.", s.m.storeHits.Load())
	counter("unisonserved_peer_fills_total", "Owned keys filled from a cluster peer's cache instead of re-simulating.", s.m.peerFills.Load())
	counter("unisonserved_proxied_total", "Runs forwarded to the cluster member owning their key.", s.m.proxied.Load())
	counter("unisonserved_jobs_submitted_total", "Jobs accepted by the submit endpoints.", s.m.jobsSubmitted.Load())
	counter("unisonserved_jobs_done_total", "Jobs that completed successfully.", s.m.jobsDone.Load())
	counter("unisonserved_jobs_failed_total", "Jobs that ended in an error.", s.m.jobsFailed.Load())
	counter("unisonserved_jobs_canceled_total", "Jobs canceled before completing.", s.m.jobsCanceled.Load())
	counter("unisonserved_telemetry_epochs_total", "Telemetry epochs recorded onto job records (live simulations plus terminal backfills).", s.m.telemetryEpochs.Load())
	gauge("unisonserved_cache_entries", "Results currently held by the in-memory cache.", uint64(s.cache.len()))
	gauge("unisonserved_cache_bytes", "Accounted marshaled size of the in-memory cache's results.", uint64(s.cache.bytes()))
	if s.store != nil {
		gauge("unisonserved_store_bytes", "On-disk size of the persistent result store's segments.", uint64(s.store.SizeBytes()))
		gauge("unisonserved_store_records", "Distinct keys indexed by the persistent result store.", uint64(s.store.Len()))
	}
	gauge("unisonserved_queue_depth", "Jobs waiting for a worker.", uint64(s.queue.Len()))
	gauge("unisonserved_jobs_active", "Jobs currently executing.", uint64(s.queue.Active()))
	var draining uint64
	if s.draining.Load() {
		draining = 1
	}
	gauge("unisonserved_draining", "1 while the daemon is draining for shutdown.", draining)

	// Engine throughput: cumulative events/busy-time fed by the runner
	// per completed simulation, plus the derived lifetime rate.
	counter("unisonserved_engine_events_total", "Trace events replayed by simulations on this daemon.", s.meter.Events())
	counter("unisonserved_engine_runs_total", "Simulations executed by the engine on this daemon.", s.meter.Runs())
	counterFloat("unisonserved_engine_busy_seconds_total", "Cumulative wall-clock seconds spent simulating.", s.meter.BusySeconds())
	gaugeFloat("unisonserved_engine_events_per_second", "Lifetime average engine replay rate in events per second.", s.meter.EventsPerSecond())
	done, total := s.runningProgress()
	gaugeFloat("unisonserved_replay_progress_ratio", "Completed fraction of executions across currently running jobs (0 when idle).", progressRatio(done, total))

	// Build provenance, matching the fields cmd/bench records in
	// BENCH_core.json.
	fmt.Fprintf(w, "# HELP unisonserved_build_info Build provenance of the running daemon.\n# TYPE unisonserved_build_info gauge\n")
	fmt.Fprintf(w, "unisonserved_build_info{version=%q,go_version=%q,cores_available=\"%d\"} 1\n",
		buildVersion(), runtime.Version(), runtime.NumCPU())

	// Latency histograms last: families render contiguously.
	s.lat.http.Write(w)
	s.lat.queueWait.Write(w)
	s.lat.execute.Write(w)
	if s.store != nil {
		s.lat.storeRead.Write(w)
		s.lat.storeWrite.Write(w)
	}
	s.lat.peer.Write(w)
	s.lat.epochGap.Write(w)
}

// runningProgress sums done/total across currently running jobs.
func (s *Server) runningProgress() (done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if snap := j.snapshot(); snap.State == client.StateRunning {
			done += snap.Done
			total += snap.Total
		}
	}
	return done, total
}

// progressRatio is done/total guarded against idle (0/0) and the
// sampled-refinement case where done overshoots the planned total.
func progressRatio(done, total int) float64 {
	if total <= 0 {
		return 0
	}
	if done > total {
		return 1
	}
	return float64(done) / float64(total)
}
