package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// metrics is the daemon's counter set, exposed on GET /metrics in the
// Prometheus text exposition format (flat counters and gauges, no labels,
// no dependencies).
type metrics struct {
	cacheHits     atomic.Uint64 // executions served from the in-memory result cache
	cacheMisses   atomic.Uint64 // executions that actually simulated here
	coalesced     atomic.Uint64 // executions that joined an in-flight one
	storeHits     atomic.Uint64 // executions/lookups served from the persistent store
	peerFills     atomic.Uint64 // owned keys filled from a peer's cache instead of simulating
	proxied       atomic.Uint64 // runs forwarded to their owning daemon
	jobsSubmitted atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64
}

// handleMetrics renders every counter plus the live gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("unisonserved_cache_hits_total", "Run executions served from the in-memory content-addressed result cache.", s.m.cacheHits.Load())
	counter("unisonserved_cache_misses_total", "Run executions that simulated on this daemon (cache fill).", s.m.cacheMisses.Load())
	counter("unisonserved_inflight_coalesced_total", "Run executions deduplicated onto a concurrent identical execution.", s.m.coalesced.Load())
	counter("unisonserved_store_hits_total", "Run executions and lookups served from the persistent result store.", s.m.storeHits.Load())
	counter("unisonserved_peer_fills_total", "Owned keys filled from a cluster peer's cache instead of re-simulating.", s.m.peerFills.Load())
	counter("unisonserved_proxied_total", "Runs forwarded to the cluster member owning their key.", s.m.proxied.Load())
	counter("unisonserved_jobs_submitted_total", "Jobs accepted by the submit endpoints.", s.m.jobsSubmitted.Load())
	counter("unisonserved_jobs_done_total", "Jobs that completed successfully.", s.m.jobsDone.Load())
	counter("unisonserved_jobs_failed_total", "Jobs that ended in an error.", s.m.jobsFailed.Load())
	counter("unisonserved_jobs_canceled_total", "Jobs canceled before completing.", s.m.jobsCanceled.Load())
	gauge("unisonserved_cache_entries", "Results currently held by the in-memory cache.", uint64(s.cache.len()))
	gauge("unisonserved_cache_bytes", "Accounted marshaled size of the in-memory cache's results.", uint64(s.cache.bytes()))
	if s.store != nil {
		gauge("unisonserved_store_bytes", "On-disk size of the persistent result store's segments.", uint64(s.store.SizeBytes()))
		gauge("unisonserved_store_records", "Distinct keys indexed by the persistent result store.", uint64(s.store.Len()))
	}
	gauge("unisonserved_queue_depth", "Jobs waiting for a worker.", uint64(s.queue.Len()))
	gauge("unisonserved_jobs_active", "Jobs currently executing.", uint64(s.queue.Active()))
	var draining uint64
	if s.draining.Load() {
		draining = 1
	}
	gauge("unisonserved_draining", "1 while the daemon is draining for shutdown.", draining)
}
