package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/store"
)

// expoSample is one parsed exposition sample line.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

// expoFamily is one declared metric family and its samples in file order.
type expoFamily struct {
	typ     string
	samples []expoSample
}

var expoNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// splitSample breaks a sample line into name, raw label block (may be
// empty) and value text. Label values may themselves contain '{' and
// '}' (route patterns do), so the label block ends at the LAST "} "
// separator, not the first '}'.
func splitSample(line string) (name, labels, value string, ok bool) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		var found bool
		name, value, found = strings.Cut(line, " ")
		return name, "", value, found
	}
	name = line[:brace]
	end := strings.LastIndex(line, "} ")
	if end < brace {
		return "", "", "", false
	}
	return name, line[brace+1 : end], line[end+2:], true
}

// splitLabels breaks a raw label block into k="v" pairs. Values are
// quoted strings, so commas inside quotes do not split.
func splitLabels(raw string) []string {
	var out []string
	start, depth := 0, false
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '"':
			if i == 0 || raw[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, raw[start:i])
				start = i + 1
			}
		}
	}
	if start < len(raw) {
		out = append(out, raw[start:])
	}
	return out
}

// parseExposition parses Prometheus text format strictly enough to
// enforce the invariants the tests care about: every sample line must
// parse, every sample must belong to a previously declared family, and
// families come back with their samples grouped.
func parseExposition(t *testing.T, text string) map[string]*expoFamily {
	t.Helper()
	families := make(map[string]*expoFamily)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[2], parts[3]
			if _, dup := families[name]; dup {
				t.Fatalf("family %s declared twice", name)
			}
			families[name] = &expoFamily{typ: typ}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rawLabels, rawValue, ok := splitSample(line)
		if !ok || !expoNameRe.MatchString(name) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		v, err := strconv.ParseFloat(rawValue, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		labels := make(map[string]string)
		for _, pair := range splitLabels(rawLabels) {
			k, raw, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("sample %q: bad label %q", line, pair)
			}
			val, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("sample %q: label %q not quoted: %v", line, pair, err)
			}
			labels[k] = val
		}
		fam := familyFor(families, name)
		if fam == nil {
			t.Fatalf("sample %q has no preceding # TYPE declaration", line)
		}
		fam.samples = append(fam.samples, expoSample{name: name, labels: labels, value: v})
	}
	return families
}

// familyFor resolves a sample name to its family: exact for counters and
// gauges, suffix-stripped for histogram series.
func familyFor(families map[string]*expoFamily, sample string) *expoFamily {
	if f, ok := families[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := families[base]; ok && f.typ == "histogram" {
			return f
		}
	}
	return nil
}

// seriesKey identifies one histogram series: the label set minus le.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// checkHistogram enforces the histogram contract on one family: every
// series has monotone nondecreasing cumulative buckets ending in +Inf,
// and the +Inf bucket, _count and _sum all agree.
func checkHistogram(t *testing.T, name string, fam *expoFamily) {
	t.Helper()
	type series struct {
		buckets []expoSample // in rendered order
		count   *expoSample
		sum     *expoSample
	}
	byKey := make(map[string]*series)
	get := func(labels map[string]string) *series {
		k := seriesKey(labels)
		if byKey[k] == nil {
			byKey[k] = &series{}
		}
		return byKey[k]
	}
	for i := range fam.samples {
		s := &fam.samples[i]
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			get(s.labels).buckets = append(get(s.labels).buckets, *s)
		case strings.HasSuffix(s.name, "_count"):
			get(s.labels).count = s
		case strings.HasSuffix(s.name, "_sum"):
			get(s.labels).sum = s
		default:
			t.Errorf("%s: stray histogram sample %s", name, s.name)
		}
	}
	if len(byKey) == 0 {
		t.Errorf("%s: histogram family with no series", name)
	}
	for key, se := range byKey {
		if se.count == nil || se.sum == nil {
			t.Errorf("%s{%s}: missing _count or _sum", name, key)
			continue
		}
		if len(se.buckets) == 0 {
			t.Errorf("%s{%s}: no buckets", name, key)
			continue
		}
		prevLe := -1.0
		prev := -1.0
		for _, b := range se.buckets {
			leStr := b.labels["le"]
			le, err := strconv.ParseFloat(leStr, 64) // ParseFloat accepts "+Inf"
			if err != nil {
				t.Errorf("%s{%s}: bad le %q", name, key, leStr)
				continue
			}
			if le <= prevLe {
				t.Errorf("%s{%s}: le %v out of order after %v", name, key, le, prevLe)
			}
			if b.value < prev {
				t.Errorf("%s{%s}: cumulative bucket decreased: %v after %v", name, key, b.value, prev)
			}
			prevLe, prev = le, b.value
		}
		last := se.buckets[len(se.buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%q, want +Inf", name, key, last.labels["le"])
		}
		if last.value != se.count.value {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", name, key, last.value, se.count.value)
		}
		if se.count.value > 0 && se.sum.value < 0 {
			t.Errorf("%s{%s}: negative sum %v", name, key, se.sum.value)
		}
	}
}

// TestServeMetricsExposition: after real traffic — runs, a sweep, a
// results lookup, health probes — /metrics is well-formed end to end:
// every family declared exactly once with at least one sample, every
// sample under a declared family, histograms obeying the cumulative
// contract, and the expected observability families present.
func TestServeMetricsExposition(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Execute: fakeExecute, Store: st})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	ctx := context.Background()
	run := smallRun(uc.DesignUnison)
	if _, err := cl.Execute(ctx, run); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Execute(ctx, run); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := cl.ExecuteMany(ctx, []uc.Run{smallRun(uc.DesignAlloy), smallRun(uc.DesignLohHill)}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	families := parseExposition(t, string(body))

	for name, fam := range families {
		if len(fam.samples) == 0 {
			// A declared family with no samples is only legal if nothing
			// renders it — the daemon never emits bare headers.
			t.Errorf("family %s declared without samples", name)
		}
		if fam.typ == "histogram" {
			checkHistogram(t, name, fam)
		}
	}

	for _, want := range []string{
		"unisonserved_cache_hits_total",
		"unisonserved_engine_events_total",
		"unisonserved_engine_events_per_second",
		"unisonserved_replay_progress_ratio",
		"unisonserved_build_info",
		"unisonserved_http_request_seconds",
		"unisonserved_queue_wait_seconds",
		"unisonserved_execute_seconds",
		"unisonserved_store_read_seconds",
		"unisonserved_store_write_seconds",
	} {
		if families[want] == nil {
			t.Errorf("missing family %s", want)
		}
	}

	// The executions above flowed through the meter: three distinct
	// simulations, each events = accesses × cores of the defaulted run.
	ef := families["unisonserved_engine_events_total"]
	if ef != nil && ef.samples[0].value <= 0 {
		t.Errorf("engine events = %v after 3 simulations", ef.samples[0].value)
	}
	// Per-route http series exist for the routes actually exercised.
	hf := families["unisonserved_http_request_seconds"]
	routes := make(map[string]bool)
	if hf != nil {
		for _, sm := range hf.samples {
			routes[sm.labels["route"]] = true
		}
	}
	for _, r := range []string{"/v1/runs", "/v1/sweeps", "/healthz", "/v1/jobs/{id}/events"} {
		if !routes[r] {
			t.Errorf("no http latency series for route %s (have %v)", r, routes)
		}
	}

	// Build info carries non-empty provenance labels.
	bi := families["unisonserved_build_info"]
	if bi != nil {
		lbl := bi.samples[0].labels
		if lbl["go_version"] == "" || lbl["version"] == "" || lbl["cores_available"] == "" {
			t.Errorf("build_info labels incomplete: %v", lbl)
		}
	}
}
