package serve

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeRunRequest fuzzes the service's request decoders: no input
// may panic them, and any input they accept must survive a marshal →
// decode round trip unchanged (acceptance is self-consistent — what the
// daemon echoes back is resubmittable and means the same thing).
func FuzzDecodeRunRequest(f *testing.F) {
	seeds := []string{
		`{"run":{"Workload":"web-search","Design":"unison","Capacity":1073741824}}`,
		`{"run":{"Workload":"tpch","Design":"alloy","Capacity":8589934592,"Seed":7,"Cores":16,"AccessesPerCore":400000}}`,
		`{"run":{"Workload":"data-serving","Design":"footprint","FCWays":16,"ScaleDivisor":-1}}`,
		`{"run":{"Workload":"web-search","Design":"unison","UnisonWays":32,"DisableWayPrediction":true,"SerializeTagData":true,"DisableSingleton":true}}`,
		`{"run":{"Workload":"media-streaming","Design":"unison","Sampling":{"IntervalEvents":1000,"GapEvents":3000,"MinIntervals":4,"Confidence":0.95,"TargetRelCI":0.03}}}`,
		`{"run":{"TracePath":"capture.utrace","Design":"ideal"}}`,
		`{"run":{"Workload":"no-such-workload"}}`,
		`{"run":{"Design":"no-such-design"}}`,
		`{"run":{"Capasity":1}}`,
		`{"run":{}}`,
		`{}`,
		`{"run":{"Workload":"web-search"}} trailing`,
		`[1,2,3]`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRunRequest(data)
		if err == nil {
			blob, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted request does not re-marshal: %v", err)
			}
			req2, err := DecodeRunRequest(blob)
			if err != nil {
				t.Fatalf("round trip of accepted request rejected: %s: %v", blob, err)
			}
			if req.Run != req2.Run {
				t.Fatalf("round trip changed the run:\n was: %+v\n now: %+v", req.Run, req2.Run)
			}
		}
		// The sweep decoder shares the strict-decoding core; same
		// properties, minus struct comparability (slice + pointer fields).
		sreq, err := DecodeSweepRequest(data)
		if err == nil {
			blob, err := json.Marshal(sreq)
			if err != nil {
				t.Fatalf("accepted sweep does not re-marshal: %v", err)
			}
			if _, err := DecodeSweepRequest(blob); err != nil {
				t.Fatalf("round trip of accepted sweep rejected: %s: %v", blob, err)
			}
		}
	})
}
