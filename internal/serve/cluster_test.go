package serve

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/cluster"
	"unisoncache/internal/obs"
	"unisoncache/internal/store"
)

// logBuffer is a mutex-guarded writer capturing a node's structured
// logs for grepping.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// cnode is one in-process cluster member.
type cnode struct {
	ts      *httptest.Server
	s       *Server
	url     string
	execs   atomic.Int64  // simulations this node actually ran
	handler *atomic.Value // swap target, so URLs exist before Servers
	logs    *logBuffer    // the node's JSON structured log
}

// startCluster brings up n daemons sharing one ring. Listeners start
// first behind swappable handlers — the member URLs must exist before
// any Server can be configured with them. dirs, when non-nil, gives
// each node a persistent store. Returns the nodes; use restart() to
// bounce one.
func startCluster(t *testing.T, n int, dirs []string) []*cnode {
	t.Helper()
	nodes := make([]*cnode, n)
	urls := make([]string, n)
	for i := range nodes {
		nd := &cnode{handler: &atomic.Value{}}
		nd.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := nd.handler.Load().(http.Handler)
			if h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		nd.url = nd.ts.URL
		urls[i] = nd.ts.URL
		nodes[i] = nd
		t.Cleanup(nd.ts.Close)
	}
	for i := range nodes {
		nodes[i].boot(t, urls, dirs)
	}
	return nodes
}

// boot builds (or rebuilds) the node's Server, reopening its store.
func (nd *cnode) boot(t *testing.T, urls, dirs []string) {
	t.Helper()
	var st *store.Store
	if dirs != nil {
		var err error
		for i, u := range urls {
			if u == nd.url {
				st, err = store.Open(dirs[i], store.Options{})
			}
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	nd.logs = &logBuffer{}
	lg, err := obs.NewLogger(nd.logs, obs.LogJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Self:   nd.url,
		Peers:  urls,
		Store:  st,
		Logger: lg,
		Execute: func(r uc.Run) (uc.Result, error) {
			nd.execs.Add(1)
			return fakeExecute(r)
		},
	})
	nd.s = s
	nd.handler.Store(s.Handler())
	t.Cleanup(func() {
		s.Drain(context.Background())
		if st != nil {
			st.Close()
		}
	})
}

// ownerIndex finds which node the ring assigns the key to.
func ownerIndex(t *testing.T, nodes []*cnode, key string) int {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, nd := range nodes {
		urls[i] = nd.url
	}
	owner := cluster.New(urls, 0).Owner(key)
	for i, nd := range nodes {
		if nd.url == owner {
			return i
		}
	}
	t.Fatalf("owner %s not among nodes", owner)
	return -1
}

func mustKey(t *testing.T, r uc.Run) string {
	t.Helper()
	key, err := uc.RunKey(r)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestServeClusterRouting: a run submitted to a non-owner daemon is
// forwarded to its owner, executes exactly once — on the owner — and
// the forwarding node returns a bit-identical result. A repeat
// submission anywhere is a pure cache hit.
func TestServeClusterRouting(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	point := smallRun(uc.DesignUnison)
	owner := ownerIndex(t, nodes, mustKey(t, point))
	other := (owner + 1) % 3
	ctx := context.Background()

	got, err := client.New(nodes[other].url).Execute(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fakeExecute(point)
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatalf("proxied result differs:\n%s\n%s", mustJSON(t, got), mustJSON(t, want))
	}
	for i, nd := range nodes {
		wantExecs := int64(0)
		if i == owner {
			wantExecs = 1
		}
		if nd.execs.Load() != wantExecs {
			t.Errorf("node %d executed %d times, want %d", i, nd.execs.Load(), wantExecs)
		}
	}
	if nodes[other].s.m.proxied.Load() != 1 {
		t.Errorf("forwarding node proxied %d, want 1", nodes[other].s.m.proxied.Load())
	}

	// Repeat submissions are cache hits everywhere they've been seen.
	if _, err := client.New(nodes[other].url).Execute(ctx, point); err != nil {
		t.Fatal(err)
	}
	if total := nodes[0].execs.Load() + nodes[1].execs.Load() + nodes[2].execs.Load(); total != 1 {
		t.Errorf("repeat submission re-executed (total %d)", total)
	}
}

// TestServePeerFill: the owner of a key whose result lives on another
// member fetches it from that peer instead of re-simulating.
func TestServePeerFill(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	point := smallRun(uc.DesignUnison)
	owner := ownerIndex(t, nodes, mustKey(t, point))
	other := (owner + 1) % 3
	ctx := context.Background()

	// Plant the result on a non-owner: a forwarded-marked submission
	// executes locally wherever it lands.
	planted := client.New(nodes[other].url)
	planted.Header = http.Header{forwardedHeader: []string{"1"}}
	if _, err := planted.Execute(ctx, point); err != nil {
		t.Fatal(err)
	}
	if nodes[other].execs.Load() != 1 {
		t.Fatalf("forwarded submission did not execute locally")
	}

	// Now ask the owner: it must fill from the peer, not simulate.
	got, err := client.New(nodes[owner].url).Execute(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fakeExecute(point)
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatalf("peer-filled result differs")
	}
	if nodes[owner].execs.Load() != 0 {
		t.Errorf("owner re-simulated despite a peer holding the result")
	}
	if nodes[owner].s.m.peerFills.Load() != 1 {
		t.Errorf("peerFills = %d, want 1", nodes[owner].s.m.peerFills.Load())
	}
}

// TestServeRestartServesFromStore: results survive a daemon restart via
// the persistent store; the restarted daemon answers synchronously from
// disk without re-simulating.
func TestServeRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	mk := func(st *store.Store) *Server {
		return New(Config{Store: st, Execute: func(r uc.Run) (uc.Result, error) {
			execs.Add(1)
			return fakeExecute(r)
		}})
	}
	s := mk(st)
	ts := httptest.NewServer(s.Handler())
	point := smallRun(uc.DesignUnison)
	ctx := context.Background()
	first, err := client.New(ts.URL).Execute(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	s.Drain(ctx)
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := mk(st2)
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Drain(context.Background())
		st2.Close()
	}()

	// The restarted daemon must answer in one synchronous round trip.
	var j client.Job
	code := post(t, ts2, "/v1/runs", `{"run":`+mustJSON(t, point)+`}`, &j)
	if code != http.StatusOK || j.State != client.StateDone || j.Result == nil {
		t.Fatalf("restarted submit: code %d, state %s", code, j.State)
	}
	if mustJSON(t, *j.Result) != mustJSON(t, first) {
		t.Fatalf("store round trip changed the result bytes")
	}
	if execs.Load() != 1 {
		t.Errorf("executed %d times across the restart, want 1", execs.Load())
	}
	if s2.m.storeHits.Load() != 1 {
		t.Errorf("storeHits = %d, want 1", s2.m.storeHits.Load())
	}
}

// TestServeDrainParkedDuplicate: SIGTERM-drain while a second identical
// submission is parked on the first's in-flight execution. Both jobs
// must finish with the shared result and Drain must return — parked
// callers can never hang shutdown.
func TestServeDrainParkedDuplicate(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	s := New(Config{Workers: 2, Execute: func(r uc.Run) (uc.Result, error) {
		started <- struct{}{}
		<-release
		return fakeExecute(r)
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var j1, j2 client.Job
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(uc.DesignUnison))+`}`, &j1)
	<-started // the leader is executing
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(uc.DesignUnison))+`}`, &j2)

	// Wait until the duplicate has parked on the leader's flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.cache.mu.Lock()
		parked := len(s.cache.inflight) == 1
		s.cache.mu.Unlock()
		if parked && s.queue.Active() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate never parked on the in-flight execution")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Drain observe the busy queue
	close(release)

	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung with a parked duplicate submission")
	}
	f1, f2 := waitJob(t, ts, j1.ID), waitJob(t, ts, j2.ID)
	if f1.State != client.StateDone || f2.State != client.StateDone {
		t.Fatalf("states after drain: %s, %s", f1.State, f2.State)
	}
	if mustJSON(t, *f1.Result) != mustJSON(t, *f2.Result) {
		t.Fatal("parked duplicate got a different result")
	}
	if s.m.coalesced.Load() != 1 {
		t.Errorf("coalesced = %d, want 1", s.m.coalesced.Load())
	}
}

// TestServeExecutePanic: a panicking execution fails its job — and any
// parked duplicates — with a clean error instead of hanging them and
// killing the worker; the daemon keeps serving afterwards.
func TestServeExecutePanic(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	s := New(Config{Workers: 2, Execute: func(r uc.Run) (uc.Result, error) {
		if r.Workload == "web-search" {
			started <- struct{}{}
			<-release
			panic("synthetic executor bug")
		}
		return fakeExecute(r)
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	var j1, j2 client.Job
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(uc.DesignUnison))+`}`, &j1)
	<-started
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(uc.DesignUnison))+`}`, &j2)
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.Active() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate never started")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	f1, f2 := waitJob(t, ts, j1.ID), waitJob(t, ts, j2.ID)
	for _, f := range []client.Job{f1, f2} {
		if f.State != client.StateFailed || !strings.Contains(f.Error, "panicked") {
			t.Fatalf("job %s: state %s, error %q; want a clean panic failure", f.ID, f.State, f.Error)
		}
	}

	// The worker survived: an unrelated run still executes.
	other := smallRun(uc.DesignUnison)
	other.Workload = "data-serving"
	got, err := client.New(ts.URL).Execute(context.Background(), other)
	if err != nil {
		t.Fatalf("daemon dead after panic: %v", err)
	}
	if got.UIPC <= 0 {
		t.Fatal("post-panic execution returned junk")
	}
}

// TestCacheByteBounded: the cache evicts by accounted marshaled bytes,
// LRU first, and refuses to retain an entry bigger than its whole
// budget.
func TestCacheByteBounded(t *testing.T) {
	res := func(workload string) uc.Result {
		r, _ := fakeExecute(uc.Run{Workload: workload, Capacity: 1 << 20})
		return r
	}
	one := resultBytes(res("w-0"))
	c := newResultCache(4 * one)
	for i := 0; i < 6; i++ {
		c.put(key(i), res("w-"+itoa(i)))
	}
	if c.bytes() > 4*one {
		t.Fatalf("cache holds %d bytes, budget %d", c.bytes(), 4*one)
	}
	if _, ok := c.get(key(0)); ok {
		t.Error("LRU entry survived past the byte budget")
	}
	if _, ok := c.get(key(5)); !ok {
		t.Error("MRU entry evicted")
	}
	if got := c.len(); got < 3 || got > 4 {
		t.Errorf("cache holds %d entries, want ~4", got)
	}

	// An entry larger than the whole budget is served but not retained.
	big := res("w-big")
	big.Run.TracePath = strings.Repeat("x", int(5*one))
	c.put("big", big)
	if _, ok := c.get("big"); ok {
		t.Error("oversized entry retained")
	}
	if c.bytes() > 4*one {
		t.Errorf("oversized insert corrupted accounting: %d", c.bytes())
	}
}

func key(i int) string { return "key-" + itoa(i) }

func itoa(i int) string { return string(rune('0' + i)) }

// findJobByRequestID locates a node's job record carrying id.
func findJobByRequestID(s *Server, id string) (client.Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if snap := j.snapshot(); snap.RequestID == id {
			return snap, true
		}
	}
	return client.Job{}, false
}

// hasSpan reports whether the timeline contains a span for stage.
func hasSpan(spans []client.Span, stage string) bool {
	for _, s := range spans {
		if s.Stage == stage {
			return true
		}
	}
	return false
}

// TestClusterRequestTracePropagation: one logical run shares one request
// ID across every hop it takes through the cluster — the edge daemon's
// job record, the proxy hop to the owner, the owner's job record, and
// the peer-fill lookups — and the ID lands in every involved daemon's
// structured log.
func TestClusterRequestTracePropagation(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	point := smallRun(uc.DesignUnison)
	owner := ownerIndex(t, nodes, mustKey(t, point))
	other, third := (owner+1)%3, (owner+2)%3
	ctx := context.Background()

	// Plant the result on the third node, so the owner will peer-fill.
	planted := client.New(nodes[third].url)
	planted.Header = http.Header{forwardedHeader: []string{"1"}}
	if _, err := planted.Execute(ctx, point); err != nil {
		t.Fatal(err)
	}

	// Submit to a non-owner with an explicit request ID: the edge proxies
	// to the owner, which fills from the third node's cache — three
	// daemons, one ID.
	tctx, id := obs.EnsureRequestID(ctx)
	if _, err := client.New(nodes[other].url).Execute(tctx, point); err != nil {
		t.Fatal(err)
	}

	edgeJob, ok := findJobByRequestID(nodes[other].s, id)
	if !ok {
		t.Fatalf("edge node has no job for request %s", id)
	}
	if !hasSpan(edgeJob.Spans, "proxied") {
		t.Errorf("edge job spans %v missing 'proxied'", edgeJob.Spans)
	}
	for _, stage := range []string{"received", "queued", "done"} {
		if !hasSpan(edgeJob.Spans, stage) {
			t.Errorf("edge job spans missing %q: %v", stage, edgeJob.Spans)
		}
	}
	ownerJob, ok := findJobByRequestID(nodes[owner].s, id)
	if !ok {
		t.Fatalf("owner has no job for request %s — the proxy hop dropped the ID", id)
	}
	if !hasSpan(ownerJob.Spans, "peer-fill") {
		t.Errorf("owner job spans %v missing 'peer-fill'", ownerJob.Spans)
	}

	// The ID must appear in all three daemons' logs: edge POST, owner's
	// forwarded POST, and the planted node's GET /v1/results lookup.
	for i, nd := range nodes {
		if !strings.Contains(nd.logs.String(), id) {
			t.Errorf("node %d log has no trace of request %s:\n%s", i, id, nd.logs.String())
		}
	}

	// Same contract through the fan-out cluster client: a fresh run
	// submitted via client.NewCluster routes to its owner, whose
	// peer-fill probes touch the other members — the minted ID shows up
	// on all three daemons.
	point2 := smallRun(uc.DesignIdeal)
	point2.Capacity = 512 << 20
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	cc, err := client.NewCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	cctx, id2 := obs.EnsureRequestID(ctx)
	if _, err := cc.Execute(cctx, point2); err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		if !strings.Contains(nd.logs.String(), id2) {
			t.Errorf("cluster-client run: node %d log has no trace of %s", i, id2)
		}
	}

	// The response header echoes the ID.
	req, _ := http.NewRequestWithContext(tctx, http.MethodGet, nodes[other].url+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "feedfacefeedface")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "feedfacefeedface" {
		t.Errorf("response echoed request ID %q, want the caller's", got)
	}
}
