package serve

import (
	"context"
	"sync"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/obs"
)

// job is one submitted request's server-side state. All mutation goes
// through the setter methods, which notify event subscribers; snapshots
// are what every HTTP response returns.
type job struct {
	id        string
	kind      string
	requestID string
	cancel    context.CancelFunc
	// tl is the job's span timeline (received → queued → execution
	// stages → terminal), internally synchronized.
	tl *obs.Timeline

	mu        sync.Mutex
	state     string
	done      int
	total     int
	cacheHits int
	errText   string
	result    *uc.Result
	results   []uc.Result
	speedups  []uc.SpeedupResult
	// epochs is the job's telemetry timeline: appended live while a
	// telemetry-enabled run simulates here, or backfilled from the
	// finished result (cache, store, peer or proxy hits) just before the
	// job turns terminal. GET /v1/jobs/{id}/telemetry streams it.
	epochs []uc.TimelineEpoch
	subs   map[chan struct{}]struct{}
}

func newJob(id, kind string, total int, requestID string, cancel context.CancelFunc) *job {
	j := &job{
		id:        id,
		kind:      kind,
		requestID: requestID,
		total:     total,
		state:     client.StateQueued,
		cancel:    cancel,
		tl:        obs.NewTimeline(),
		subs:      make(map[chan struct{}]struct{}),
	}
	j.tl.Mark("received")
	return j
}

// spans renders the timeline in wire form.
func (j *job) spans() []client.Span {
	src := j.tl.Spans()
	out := make([]client.Span, len(src))
	for i, s := range src {
		out[i] = client.Span{Stage: s.Stage, Start: s.Start, Dur: s.Dur}
	}
	return out
}

// snapshot renders the job as its wire form.
func (j *job) snapshot() client.Job {
	spans := j.spans()
	dropped := j.tl.Dropped()
	j.mu.Lock()
	defer j.mu.Unlock()
	return client.Job{
		ID:           j.id,
		Kind:         j.kind,
		State:        j.state,
		Done:         j.done,
		Total:        j.total,
		CacheHits:    j.cacheHits,
		Error:        j.errText,
		RequestID:    j.requestID,
		Spans:        spans,
		SpansDropped: dropped,
		Result:       j.result,
		Results:      j.results,
		Speedups:     j.speedups,
	}
}

// addEpochs appends telemetry epochs to the job record and wakes the
// telemetry stream's subscribers. Safe from the executing goroutine
// (live emission) and from the finish path (terminal backfill).
func (j *job) addEpochs(es ...uc.TimelineEpoch) {
	if len(es) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.epochs = append(j.epochs, es...)
	j.notifyLocked()
}

// epochCount returns how many epochs the job has recorded so far.
func (j *job) epochCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.epochs)
}

// epochsFrom returns a copy of the epochs recorded past sent together
// with whether the job is terminal — one atomic read, so a telemetry
// stream that observes the terminal state has necessarily observed every
// epoch too (the finish paths backfill before marking terminal).
func (j *job) epochsFrom(sent int) ([]uc.TimelineEpoch, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if sent > len(j.epochs) {
		sent = len(j.epochs)
	}
	tail := make([]uc.TimelineEpoch, len(j.epochs)-sent)
	copy(tail, j.epochs[sent:])
	return tail, j.terminalLocked()
}

// subscribe registers for change notifications (coalescing: one pending
// tick at most). The returned unsubscribe is idempotent.
func (j *job) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// notifyLocked ticks every subscriber; callers hold j.mu.
func (j *job) notifyLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // a tick is already pending; the subscriber will resnapshot
		}
	}
}

// terminalLocked reports whether the job already finished; callers hold
// j.mu. The predicate is the wire type's, so server and clients can
// never disagree about what terminal means.
func (j *job) terminalLocked() bool {
	return client.Job{State: j.state}.Terminal()
}

// setRunning moves queued → running (a no-op once terminal, e.g. after a
// queued-time cancellation).
func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return
	}
	j.state = client.StateRunning
	j.notifyLocked()
}

// recordExecution counts one completed run execution (hit: served from
// the result cache).
func (j *job) recordExecution(hit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	if hit {
		j.cacheHits++
	}
	j.notifyLocked()
}

// markCanceledIfQueued flips a still-queued job straight to canceled, so
// canceling queued work takes effect immediately instead of when a
// worker finally reaches it; running jobs transition through finish once
// they observe their canceled context.
func (j *job) markCanceledIfQueued() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != client.StateQueued {
		return
	}
	j.state = client.StateCanceled
	j.errText = "canceled while queued"
	j.tl.Mark(client.StateCanceled)
	j.notifyLocked()
}

// finish records the terminal state: canceled if the job's context was
// canceled, failed on err, done otherwise. The results arguments mirror
// the wire contract (exactly one non-nil on success). The terminal state
// is also the timeline's closing span, so the job record reads
// received → queued → stages → done end to end.
func (j *job) finish(ctx context.Context, err error, result *uc.Result, results []uc.Result, speedups []uc.SpeedupResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return
	}
	switch {
	case ctx.Err() != nil:
		j.state = client.StateCanceled
		j.errText = context.Cause(ctx).Error()
	case err != nil:
		j.state = client.StateFailed
		j.errText = err.Error()
	default:
		j.state = client.StateDone
		j.result = result
		j.results = results
		j.speedups = speedups
	}
	j.tl.Mark(j.state)
	j.notifyLocked()
}
