// Package serve implements the simulation service behind cmd/unisonserved:
// an HTTP/JSON API that accepts Run and sweep submissions, schedules them
// as jobs on a bounded worker pool (internal/runner.Queue), and serves
// repeat requests from a content-addressed result cache keyed by the
// canonical run hash (unisoncache.RunKey).
//
// The API surface:
//
//	POST /v1/runs             submit one Run            → Job
//	POST /v1/sweeps           submit a point list       → Job
//	GET  /v1/jobs/{id}        job status + results      → Job
//	GET  /v1/jobs/{id}/events NDJSON progress stream    → Event lines
//	DELETE /v1/jobs/{id}      cancel a job              → Job
//	GET  /healthz             liveness + drain state    → Health
//	GET  /metrics             Prometheus text counters
//
// Determinism contract: every result the service returns is bit-identical
// to calling Execute / ExecuteMany / SpeedupMany / SweepSampled in
// process. The cache can only serve a result that some execution of the
// exact same defaulted configuration produced, runs are pure functions of
// that configuration, and sweep assembly happens through the public sweep
// engine itself (the service merely interposes the Plan.Executor hook),
// so caching and in-flight deduplication are observable in /metrics and
// latency — never in payload bytes.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/cluster"
	"unisoncache/internal/runner"
	"unisoncache/internal/store"
)

// maxRequestBytes bounds submit-request bodies (a 100k-point sweep is
// ~50 MB of JSON; nobody legitimate sends that).
const maxRequestBytes = 8 << 20

// Config parameterizes a Server.
type Config struct {
	// Jobs is the per-plan worker fan-out each executing sweep uses
	// (Plan.Jobs; 0 = one worker per CPU).
	Jobs int
	// Workers is how many jobs execute concurrently (default 2). Queued
	// jobs beyond that wait FIFO.
	Workers int
	// CacheBytes bounds the in-memory content-addressed result cache by
	// the marshaled size of the results it holds (default 256 MiB, LRU
	// eviction).
	CacheBytes int64
	// JobHistory bounds how many finished jobs (and their result
	// payloads) stay queryable via GET /v1/jobs/{id} (default 1024;
	// oldest-finished evicted first). Queued and running jobs are never
	// evicted. Results travel only through the job record, so clients
	// must collect them before JobHistory other jobs finish — the stock
	// client fetches immediately on the terminal event, which the
	// default depth makes safe; a tiny JobHistory under heavy concurrent
	// traffic can evict a job before a slow client collects it.
	JobHistory int
	// Execute overrides the per-run execution function. Nil means
	// unisoncache.Execute; tests substitute fakes to make caching and
	// dedup observable without simulating.
	Execute func(uc.Run) (uc.Result, error)

	// Store, when non-nil, persists every locally produced result and is
	// consulted on cache misses, so a restarted daemon serves its history
	// from disk instead of re-simulating. The caller owns the store's
	// lifecycle (open before New, close after Drain).
	Store *store.Store

	// Self and Peers configure cluster routing. Peers is the full static
	// member list (daemon base URLs, any order) and Self is this
	// daemon's own entry in it. When both are set, the daemon builds the
	// shared consistent-hash ring: runs it owns execute locally (after
	// trying peer caches), runs it doesn't own are forwarded to their
	// owner. Empty means single-node, no routing.
	Self  string
	Peers []string
}

// Server is the simulation service. Create with New, expose with
// Handler, shut down with Drain.
type Server struct {
	cfg     Config
	execute func(uc.Run) (uc.Result, error)
	queue   *runner.Queue
	cache   *resultCache
	store   *store.Store
	m       metrics

	// Cluster routing (nil ring = single-node).
	self  string
	ring  *cluster.Ring
	peers map[string]*client.Client // member URL → client, self excluded

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first (bounded retention)
	seq      int

	draining atomic.Bool
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 256 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	execute := cfg.Execute
	if execute == nil {
		execute = uc.Execute
	}
	s := &Server{
		cfg:     cfg,
		execute: execute,
		queue:   runner.NewQueue(workers),
		cache:   newResultCache(cacheBytes),
		store:   cfg.Store,
		jobs:    make(map[string]*job),
	}
	if self := strings.TrimRight(cfg.Self, "/"); self != "" && len(cfg.Peers) > 0 {
		ring := cluster.New(append([]string{self}, cfg.Peers...), 0)
		s.self, s.ring = self, ring
		s.peers = make(map[string]*client.Client)
		for _, n := range ring.Nodes() {
			if n == self {
				continue
			}
			cl := client.New(n)
			// Every daemon-to-daemon request carries the forwarded
			// marker, so the receiver executes locally instead of
			// routing again — one hop maximum, no proxy loops.
			cl.Header = http.Header{forwardedHeader: []string{"1"}}
			s.peers[n] = cl
		}
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain flips the daemon into shutdown: new submissions are rejected with
// 503, read endpoints keep answering, and Drain blocks until every
// accepted job has finished (or ctx expires). Call before closing the
// HTTP listener so SIGTERM never abandons accepted work.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.queue.Drain(ctx)
}

// executeRun is the service's single-run execution path: canonical key,
// cache lookup, cluster routing, in-flight dedup, metrics.
func (s *Server) executeRun(ctx context.Context, r uc.Run, forwarded bool) (res uc.Result, hit bool, err error) {
	key, err := uc.RunKey(r)
	if err != nil {
		return uc.Result{}, false, err
	}
	return s.executeKeyed(ctx, key, r, forwarded)
}

// executeKeyed is executeRun for a caller that already computed the key
// (the run-submission path hashes once and reuses it — for replay runs
// RunKey digests the whole capture file, so recomputing is a full extra
// read). On a memory-cache miss the fill order is: persistent store,
// then cluster routing (forward to the owner, or peer caches when this
// daemon is the owner), then simulation — so re-simulating is strictly
// the last resort. forwarded marks a request already routed by a peer
// daemon, which must execute here (one hop maximum, no proxy loops).
func (s *Server) executeKeyed(ctx context.Context, key string, r uc.Run, forwarded bool) (res uc.Result, hit bool, err error) {
	res, hit, shared, err := s.cache.do(key, func() (uc.Result, error) {
		if res, ok := s.storeGet(key); ok {
			s.m.storeHits.Add(1)
			return res, nil
		}
		if s.ring != nil && !forwarded {
			if owner := s.ring.Owner(key); owner != s.self {
				if res, err := s.remoteExecute(ctx, owner, r); err == nil {
					s.m.proxied.Add(1)
					return res, nil
				}
				// Owner unreachable: fall back to executing locally —
				// availability over placement; the result is still
				// correct, just cached off its home node.
			} else if res, ok := s.peerFill(ctx, key); ok {
				s.m.peerFills.Add(1)
				s.storePut(key, res)
				return res, nil
			}
		}
		s.m.cacheMisses.Add(1)
		res, err := s.execute(r)
		if err == nil {
			s.storePut(key, res)
		}
		return res, err
	})
	switch {
	case hit:
		s.m.cacheHits.Add(1)
	case shared:
		s.m.coalesced.Add(1)
	}
	return res, hit || shared, err
}

// newJobLocked allocates the next job ID; the caller holds s.mu.
func (s *Server) newJobLocked(kind string, total int, cancel context.CancelFunc) *job {
	s.seq++
	j := newJob("j"+strconv.Itoa(s.seq), kind, total, cancel)
	s.jobs[j.id] = j
	return j
}

// admit rejects submissions while draining.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining; not accepting new jobs")
		return false
	}
	return true
}

// handleSubmitRun accepts one Run. A result already in the cache
// completes the job synchronously, so a cached submission is a single
// round trip; otherwise the job is queued.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, err := DecodeRunRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithCancel(context.Background())

	s.mu.Lock()
	j := s.newJobLocked("run", 1, cancel)
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)

	run := req.Run
	forwarded := r.Header.Get(forwardedHeader) != ""
	// The canonical key is computed once here — for replay runs it
	// digests the whole capture file — and reused by both the cached
	// fast path and the queued execution. A key error (unreadable trace)
	// is carried into the job, which fails with it.
	key, keyErr := uc.RunKey(run)
	if keyErr == nil {
		// Cached fast path: a result the daemon already holds — in
		// memory or on disk — answers the submission synchronously: one
		// round trip, no queue. The store check is what lets a freshly
		// restarted daemon keep answering its history in one hop.
		res, ok := s.cache.get(key)
		if ok {
			s.m.cacheHits.Add(1)
		} else if res, ok = s.storeGet(key); ok {
			s.m.storeHits.Add(1)
			s.cache.put(key, res)
		}
		if ok {
			j.recordExecution(true)
			j.finish(ctx, nil, &res, nil, nil)
			s.countFinished(j)
			writeJSON(w, http.StatusOK, j.snapshot())
			return
		}
	}
	work := func(ctx context.Context) {
		j.setRunning()
		var result *uc.Result
		res, hit, err := uc.Result{}, false, ctx.Err()
		if err == nil {
			if err = keyErr; err == nil {
				res, hit, err = s.executeKeyed(ctx, key, run, forwarded)
			}
		}
		if err == nil {
			j.recordExecution(hit)
			result = &res
		}
		j.finish(ctx, err, result, nil, nil)
		s.countFinished(j)
	}
	s.submit(w, j, ctx, cancel, work)
}

// submit hands a job to the queue, converting a Submit failure (a race
// with Drain closing the queue) into a terminal failed job rather than
// leaving it queued forever with no worker ever to finish it.
func (s *Server) submit(w http.ResponseWriter, j *job, ctx context.Context, cancel context.CancelFunc, work func(context.Context)) {
	if err := s.queue.Submit(ctx, work); err != nil {
		// Finish against a fresh context so the job records the Submit
		// failure, not a cancellation; then release the job's context.
		j.finish(context.Background(), err, nil, nil, nil)
		s.countFinished(j)
		cancel()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleSubmitSweep accepts an ordered point list and executes it through
// the public sweep engine with the cache interposed as Plan.Executor.
func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, err := DecodeSweepRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	total := len(req.Points)
	if req.Mode == client.ModeSpeedup {
		total *= 2 // each point plus its (memoized) baseline — an upper bound
	}
	forwarded := r.Header.Get(forwardedHeader) != ""
	ctx, cancel := context.WithCancel(context.Background())

	s.mu.Lock()
	j := s.newJobLocked("sweep", total, cancel)
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)

	work := func(ctx context.Context) {
		j.setRunning()
		plan := uc.Plan{
			Points: req.Points,
			Jobs:   s.cfg.Jobs,
			Executor: func(run uc.Run) (uc.Result, error) {
				if err := ctx.Err(); err != nil {
					return uc.Result{}, context.Cause(ctx)
				}
				res, hit, err := s.executeRun(ctx, run, forwarded)
				if err == nil {
					j.recordExecution(hit)
				}
				return res, err
			},
		}
		var (
			results  []uc.Result
			speedups []uc.SpeedupResult
			err      error
		)
		if ctx.Err() != nil {
			err = context.Cause(ctx)
		} else {
			switch {
			case req.Sample != nil:
				speedups, err = uc.SweepSampled(plan, *req.Sample)
			case req.Mode == client.ModeSpeedup:
				speedups, err = uc.SpeedupMany(plan)
			default:
				results, err = uc.ExecuteMany(plan)
			}
		}
		j.finish(ctx, err, nil, results, speedups)
		s.countFinished(j)
	}
	s.submit(w, j, ctx, cancel, work)
}

// countFinished bumps the terminal-state counters and retires the job
// into the bounded history: once more than JobHistory jobs have
// finished, the oldest-finished ones — with their result payloads — are
// forgotten, so a long-running daemon's job registry cannot grow without
// bound. (The result cache keeps serving the underlying runs either
// way; only the job records age out.)
func (s *Server) countFinished(j *job) {
	switch j.snapshot().State {
	case client.StateDone:
		s.m.jobsDone.Add(1)
	case client.StateFailed:
		s.m.jobsFailed.Add(1)
	case client.StateCanceled:
		s.m.jobsCanceled.Add(1)
	}
	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.JobHistory {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// lookupJob resolves {id} or writes 404.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return nil
	}
	return j
}

// handleJob returns the job snapshot (results included once done).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

// handleCancelJob cancels the job's context. A queued job records the
// cancellation when a worker reaches it; a running sweep aborts at its
// next point execution.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.cancel()
	j.markCanceledIfQueued()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleEvents streams the job's progress as NDJSON: the current state
// immediately, a line per change, the terminal line last, then EOF.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	tick, unsubscribe := j.subscribe()
	defer unsubscribe()
	for {
		snap := j.snapshot()
		if err := enc.Encode(client.Event{State: snap.State, Done: snap.Done, Total: snap.Total, Error: snap.Error}); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if snap.Terminal() {
			return
		}
		select {
		case <-tick:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz reports liveness and drain state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := client.Health{Status: "ok", Draining: s.draining.Load()}
	if h.Draining {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// DecodeRunRequest strictly decodes a POST /v1/runs body: unknown JSON
// fields anywhere in the payload fail (Run.UnmarshalJSON), as do unknown
// designs and — because this is the request boundary, where the daemon's
// workload registry is authoritative — unknown workloads, all with
// actionable errors.
func DecodeRunRequest(data []byte) (client.RunRequest, error) {
	var req client.RunRequest
	if err := decodeStrict(data, &req); err != nil {
		return client.RunRequest{}, fmt.Errorf("run request: %w", err)
	}
	if err := req.Run.ValidateNames(); err != nil {
		return client.RunRequest{}, fmt.Errorf("run request: %w", err)
	}
	return req, nil
}

// DecodeSweepRequest strictly decodes a POST /v1/sweeps body and
// validates the mode combination and every point's names.
func DecodeSweepRequest(data []byte) (client.SweepRequest, error) {
	var req client.SweepRequest
	if err := decodeStrict(data, &req); err != nil {
		return client.SweepRequest{}, fmt.Errorf("sweep request: %w", err)
	}
	for i, p := range req.Points {
		if err := p.ValidateNames(); err != nil {
			return client.SweepRequest{}, fmt.Errorf("sweep request: point %d: %w", i, err)
		}
	}
	switch req.Mode {
	case "", client.ModeExecute, client.ModeSpeedup:
	default:
		return client.SweepRequest{}, fmt.Errorf("sweep request: unknown mode %q (have %q, %q)", req.Mode, client.ModeExecute, client.ModeSpeedup)
	}
	if req.Sample != nil && req.Mode != client.ModeSpeedup {
		return client.SweepRequest{}, fmt.Errorf("sweep request: sample requires mode %q (sampled sweeps are speedup sweeps)", client.ModeSpeedup)
	}
	if len(req.Points) == 0 {
		return client.SweepRequest{}, fmt.Errorf("sweep request: empty points")
	}
	return req, nil
}

// decodeStrict decodes one JSON value rejecting unknown fields and
// trailing garbage.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// readBody reads a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the error payload.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
