// Package serve implements the simulation service behind cmd/unisonserved:
// an HTTP/JSON API that accepts Run and sweep submissions, schedules them
// as jobs on a bounded worker pool (internal/runner.Queue), and serves
// repeat requests from a content-addressed result cache keyed by the
// canonical run hash (unisoncache.RunKey).
//
// The API surface:
//
//	POST /v1/runs                submit one Run            → Job
//	POST /v1/sweeps              submit a point list       → Job
//	GET  /v1/jobs/{id}           job status + results      → Job
//	GET  /v1/jobs/{id}/events    NDJSON progress stream    → Event lines
//	GET  /v1/jobs/{id}/telemetry NDJSON epoch timeline     → TimelineEpoch lines
//	DELETE /v1/jobs/{id}         cancel a job              → Job
//	GET  /healthz                readiness (503 draining)  → Health
//	GET  /livez                  liveness (always 200)     → Health
//	GET  /metrics                Prometheus text counters + histograms
//
// Observability (DESIGN.md §14): every request carries an ID
// (X-Unison-Request-Id, minted at the edge when absent) that propagates
// through proxy one-hops, peer cache fills and the job record, whose
// span timeline (received → queued → execution stage → done) is served
// on the job endpoints. Latency histograms cover HTTP requests, queue
// wait, execution, store I/O and cluster hops; structured logs
// (log/slog) carry the request ID, run-key prefix and member name.
//
// Determinism contract: every result the service returns is bit-identical
// to calling Execute / ExecuteMany / SpeedupMany / SweepSampled in
// process. The cache can only serve a result that some execution of the
// exact same defaulted configuration produced, runs are pure functions of
// that configuration, and sweep assembly happens through the public sweep
// engine itself (the service merely interposes the Plan.Executor hook),
// so caching and in-flight deduplication are observable in /metrics and
// latency — never in payload bytes.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/cluster"
	"unisoncache/internal/obs"
	"unisoncache/internal/runner"
	"unisoncache/internal/store"
)

// maxRequestBytes bounds submit-request bodies (a 100k-point sweep is
// ~50 MB of JSON; nobody legitimate sends that).
const maxRequestBytes = 8 << 20

// Execution-stage span names: how one run execution was satisfied.
// These are the stages the job timeline records after "queued", and the
// vocabulary DESIGN.md §14 documents.
const (
	srcCacheHit  = "cache-hit" // served from the in-memory result cache
	srcCoalesced = "coalesced" // joined a concurrent identical execution
	srcStoreHit  = "store-hit" // read from the persistent store
	srcPeerFill  = "peer-fill" // fetched from a cluster peer's cache
	srcProxied   = "proxied"   // forwarded to the owning daemon
	srcSimulated = "simulated" // actually executed the engine here
)

// Config parameterizes a Server.
type Config struct {
	// Jobs is the per-plan worker fan-out each executing sweep uses
	// (Plan.Jobs; 0 = one worker per CPU).
	Jobs int
	// Workers is how many jobs execute concurrently (default 2). Queued
	// jobs beyond that wait FIFO.
	Workers int
	// CacheBytes bounds the in-memory content-addressed result cache by
	// the marshaled size of the results it holds (default 256 MiB, LRU
	// eviction).
	CacheBytes int64
	// JobHistory bounds how many finished jobs (and their result
	// payloads) stay queryable via GET /v1/jobs/{id} (default 1024;
	// oldest-finished evicted first). Queued and running jobs are never
	// evicted. Results travel only through the job record, so clients
	// must collect them before JobHistory other jobs finish — the stock
	// client fetches immediately on the terminal event, which the
	// default depth makes safe; a tiny JobHistory under heavy concurrent
	// traffic can evict a job before a slow client collects it.
	JobHistory int
	// Execute overrides the per-run execution function. Nil means
	// unisoncache.Execute; tests substitute fakes to make caching and
	// dedup observable without simulating.
	Execute func(uc.Run) (uc.Result, error)

	// Store, when non-nil, persists every locally produced result and is
	// consulted on cache misses, so a restarted daemon serves its history
	// from disk instead of re-simulating. The caller owns the store's
	// lifecycle (open before New, close after Drain).
	Store *store.Store

	// Self and Peers configure cluster routing. Peers is the full static
	// member list (daemon base URLs, any order) and Self is this
	// daemon's own entry in it. When both are set, the daemon builds the
	// shared consistent-hash ring: runs it owns execute locally (after
	// trying peer caches), runs it doesn't own are forwarded to their
	// owner. Empty means single-node, no routing.
	Self  string
	Peers []string

	// Logger receives the daemon's structured logs. Nil discards them
	// (the in-process test default); cmd/unisonserved wires a text or
	// JSON slog logger per -log-format. Per-request loggers derive from
	// it, carrying the request ID, run-key prefix and member name.
	Logger *slog.Logger
	// SlowThreshold, when > 0, logs any HTTP request slower than this at
	// warning level (the NDJSON events and telemetry streams are exempt —
	// holding them open for a job's lifetime is waiting, not work).
	SlowThreshold time.Duration
}

// Server is the simulation service. Create with New, expose with
// Handler, shut down with Drain.
type Server struct {
	cfg Config
	// execute runs one simulation, streaming telemetry epochs to onEpoch
	// (ignored when nil, or when Config.Execute overrode the engine —
	// fakes' timelines still reach the stream via the terminal backfill).
	execute func(r uc.Run, onEpoch func(uc.TimelineEpoch)) (uc.Result, error)
	queue   *runner.Queue
	cache   *resultCache
	store   *store.Store
	m       metrics
	lat     *latencies
	meter   obs.Meter
	log     *slog.Logger
	slow    time.Duration

	// Cluster routing (nil ring = single-node).
	self  string
	ring  *cluster.Ring
	peers map[string]*client.Client // member URL → client, self excluded

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first (bounded retention)
	seq      int

	draining atomic.Bool
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 256 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	execute := uc.ExecuteObserved
	if cfg.Execute != nil {
		override := cfg.Execute
		execute = func(r uc.Run, _ func(uc.TimelineEpoch)) (uc.Result, error) { return override(r) }
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:     cfg,
		execute: execute,
		queue:   runner.NewQueue(workers),
		cache:   newResultCache(cacheBytes),
		store:   cfg.Store,
		lat:     newLatencies(),
		log:     logger,
		slow:    cfg.SlowThreshold,
		jobs:    make(map[string]*job),
	}
	// Queue wait is measured by the runner itself: the hook fires when a
	// worker picks a job up, with the time it sat pending.
	s.queue.OnStart = func(waited time.Duration) {
		s.lat.queueWait.Observe(waited.Seconds())
	}
	if self := strings.TrimRight(cfg.Self, "/"); self != "" && len(cfg.Peers) > 0 {
		ring := cluster.New(append([]string{self}, cfg.Peers...), 0)
		s.self, s.ring = self, ring
		s.log = s.log.With("member", self)
		s.peers = make(map[string]*client.Client)
		for _, n := range ring.Nodes() {
			if n == self {
				continue
			}
			cl := client.New(n)
			// Every daemon-to-daemon request carries the forwarded
			// marker, so the receiver executes locally instead of
			// routing again — one hop maximum, no proxy loops. The
			// request ID rides along per call from the context.
			cl.Header = http.Header{forwardedHeader: []string{"1"}}
			s.peers[n] = cl
		}
	}
	return s
}

// Handler returns the service's HTTP handler: the API mux wrapped in
// the observability middleware (request IDs, per-route latency
// histograms, structured request logs).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.instrument(mux)
}

// routeLabel normalizes a request path onto the fixed route-pattern
// vocabulary the per-endpoint histogram is labeled with — bounded
// cardinality without needing the mux's matched pattern.
func routeLabel(path string) string {
	switch {
	case path == "/v1/runs", path == "/v1/sweeps",
		path == "/healthz", path == "/livez", path == "/metrics":
		return path
	case strings.HasPrefix(path, "/v1/results/"):
		return "/v1/results/{key}"
	case strings.HasPrefix(path, "/v1/jobs/"):
		if strings.HasSuffix(path, "/events") {
			return "/v1/jobs/{id}/events"
		}
		if strings.HasSuffix(path, "/telemetry") {
			return "/v1/jobs/{id}/telemetry"
		}
		return "/v1/jobs/{id}"
	default:
		return "other"
	}
}

// statusWriter captures the response code for logging and forwards
// Flush so the NDJSON events stream keeps streaming through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument is the observability middleware: it adopts the caller's
// request ID (or mints one at this edge), echoes it on the response,
// installs it in the request context for everything downstream — job
// records, proxy hops, peer fills — observes the per-route latency
// histogram, and writes the structured request log line. Read-only
// probe endpoints log at debug so an idle daemon's log stays quiet at
// the default level; submissions, cancels and cluster lookups log at
// info.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		w.Header().Set(obs.RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)

		route := routeLabel(r.URL.Path)
		s.lat.http.With(route).Observe(dur.Seconds())
		level := slog.LevelDebug
		switch route {
		case "/healthz", "/livez", "/metrics", "/v1/jobs/{id}", "/v1/jobs/{id}/events", "/v1/jobs/{id}/telemetry":
		default:
			// Submissions, cancels and cluster result lookups are the
			// cross-node traffic whose IDs operators grep for.
			level = slog.LevelInfo
		}
		lg := s.log.With("req_id", id)
		lg.Log(ctx, level, "http request",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"status", sw.code, "dur_ms", durMillis(dur))
		if s.slow > 0 && dur >= s.slow && route != "/v1/jobs/{id}/events" && route != "/v1/jobs/{id}/telemetry" {
			lg.Warn("slow request",
				"method", r.Method, "route", route, "path", r.URL.Path,
				"status", sw.code, "dur_ms", durMillis(dur), "threshold", s.slow.String())
		}
	})
}

// durMillis renders a duration as fractional milliseconds for log
// lines.
func durMillis(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// reqLog returns the per-request logger: the daemon logger plus the
// context's request ID.
func (s *Server) reqLog(ctx context.Context) *slog.Logger {
	return s.log.With("req_id", obs.RequestIDFrom(ctx))
}

// keyPrefix shortens a run key for log lines (the full key is a
// 64-char SHA-256 hex).
func keyPrefix(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Drain flips the daemon into shutdown: new submissions are rejected with
// 503, read endpoints keep answering, and Drain blocks until every
// accepted job has finished (or ctx expires). Call before closing the
// HTTP listener so SIGTERM never abandons accepted work.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("draining", "queued", s.queue.Len(), "active", s.queue.Active())
	return s.queue.Drain(ctx)
}

// executeRun is the service's single-run execution path: canonical key,
// cache lookup, cluster routing, in-flight dedup, metrics. cached
// reports the execution cost nothing here (memory cache hit or
// coalesced onto an in-flight one); source is the execution-stage span
// name recorded on the job timeline.
func (s *Server) executeRun(ctx context.Context, r uc.Run, forwarded bool) (res uc.Result, cached bool, source string, err error) {
	key, err := uc.RunKey(r)
	if err != nil {
		return uc.Result{}, false, "", err
	}
	return s.executeKeyed(ctx, key, r, forwarded, nil)
}

// executeKeyed is executeRun for a caller that already computed the key
// (the run-submission path hashes once and reuses it — for replay runs
// RunKey digests the whole capture file, so recomputing is a full extra
// read). On a memory-cache miss the fill order is: persistent store,
// then cluster routing (forward to the owner, or peer caches when this
// daemon is the owner), then simulation — so re-simulating is strictly
// the last resort. forwarded marks a request already routed by a peer
// daemon, which must execute here (one hop maximum, no proxy loops).
// onEpoch, when non-nil, receives telemetry epochs live — but only when
// this call actually simulates; every other source delivers its timeline
// on the finished Result, which the caller backfills.
func (s *Server) executeKeyed(ctx context.Context, key string, r uc.Run, forwarded bool, onEpoch func(uc.TimelineEpoch)) (res uc.Result, cached bool, source string, err error) {
	source = srcSimulated
	res, hit, shared, err := s.cache.do(key, func() (uc.Result, error) {
		if res, ok := s.storeGet(key); ok {
			s.m.storeHits.Add(1)
			source = srcStoreHit
			return res, nil
		}
		if s.ring != nil {
			if owner := s.ring.Owner(key); owner != s.self {
				if !forwarded {
					if res, err := s.remoteExecute(ctx, owner, key, r); err == nil {
						s.m.proxied.Add(1)
						source = srcProxied
						return res, nil
					}
					// Owner unreachable: fall back to executing locally —
					// availability over placement; the result is still
					// correct, just cached off its home node.
				}
				// A forwarded request landing off-owner executes here (one
				// hop maximum, no proxy loops).
			} else if res, ok := s.peerFill(ctx, key); ok {
				// The owner checks peer caches before simulating whether
				// the request arrived directly or via a proxy hop — peer
				// fill is a pure lookup, so it cannot loop.
				s.m.peerFills.Add(1)
				source = srcPeerFill
				s.storePut(key, res)
				return res, nil
			}
		}
		s.m.cacheMisses.Add(1)
		start := time.Now()
		res, err := s.execute(r, onEpoch)
		dur := time.Since(start)
		s.lat.execute.Observe(dur.Seconds())
		if err == nil {
			// Feed the engine meter: events = the defaulted run's trace
			// length (echoed on the result), accounted once per
			// simulation — never per event.
			s.meter.RecordRun(uint64(res.Run.AccessesPerCore)*uint64(max(res.Run.Cores, 0)), dur)
			s.storePut(key, res)
		}
		return res, err
	})
	switch {
	case hit:
		s.m.cacheHits.Add(1)
		source = srcCacheHit
	case shared:
		s.m.coalesced.Add(1)
		source = srcCoalesced
	}
	return res, hit || shared, source, err
}

// newJobLocked allocates the next job ID; the caller holds s.mu. The
// job adopts the request's ID and starts its span timeline at
// "received".
func (s *Server) newJobLocked(kind string, total int, requestID string, cancel context.CancelFunc) *job {
	s.seq++
	j := newJob("j"+strconv.Itoa(s.seq), kind, total, requestID, cancel)
	s.jobs[j.id] = j
	return j
}

// admit rejects submissions while draining.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining; not accepting new jobs")
		return false
	}
	return true
}

// handleSubmitRun accepts one Run. A result already in the cache
// completes the job synchronously, so a cached submission is a single
// round trip; otherwise the job is queued.
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, err := DecodeRunRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	requestID := obs.RequestIDFrom(r.Context())
	// The job outlives the HTTP request, so its context derives from the
	// background — but it keeps carrying the request ID, which is what
	// threads the ID through proxy hops and peer fills during execution.
	ctx, cancel := context.WithCancel(obs.WithRequestID(context.Background(), requestID))

	s.mu.Lock()
	j := s.newJobLocked("run", 1, requestID, cancel)
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)

	run := req.Run
	forwarded := r.Header.Get(forwardedHeader) != ""
	// The canonical key is computed once here — for replay runs it
	// digests the whole capture file — and reused by both the cached
	// fast path and the queued execution. A key error (unreadable trace)
	// is carried into the job, which fails with it.
	key, keyErr := uc.RunKey(run)
	if keyErr == nil {
		s.reqLog(r.Context()).Info("run submitted",
			"job", j.id, "run_key", keyPrefix(key),
			"workload", run.Workload, "design", string(run.Design), "forwarded", forwarded)
		// Cached fast path: a result the daemon already holds — in
		// memory or on disk — answers the submission synchronously: one
		// round trip, no queue. The store check is what lets a freshly
		// restarted daemon keep answering its history in one hop.
		lookup := time.Now()
		res, ok := s.cache.get(key)
		source := srcCacheHit
		if ok {
			s.m.cacheHits.Add(1)
		} else if res, ok = s.storeGet(key); ok {
			s.m.storeHits.Add(1)
			source = srcStoreHit
			s.cache.put(key, res)
		}
		if ok {
			j.tl.Observe(source, lookup)
			j.recordExecution(true)
			s.backfillEpochs(j, &res)
			j.finish(ctx, nil, &res, nil, nil)
			s.countFinished(j)
			writeJSON(w, http.StatusOK, j.snapshot())
			return
		}
	}
	submitted := time.Now()
	onEpoch := s.liveEpochs(j)
	work := func(ctx context.Context) {
		j.tl.Observe("queued", submitted)
		j.setRunning()
		var result *uc.Result
		res, cached, err := uc.Result{}, false, ctx.Err()
		if err == nil {
			if err = keyErr; err == nil {
				var source string
				start := time.Now()
				res, cached, source, err = s.executeKeyed(ctx, key, run, forwarded, onEpoch)
				if err == nil {
					j.tl.Observe(source, start)
				}
			}
		}
		if err == nil {
			j.recordExecution(cached)
			result = &res
		}
		s.backfillEpochs(j, result)
		j.finish(ctx, err, result, nil, nil)
		s.countFinished(j)
	}
	s.submit(w, j, ctx, cancel, work)
}

// submit hands a job to the queue, converting a Submit failure (a race
// with Drain closing the queue) into a terminal failed job rather than
// leaving it queued forever with no worker ever to finish it.
func (s *Server) submit(w http.ResponseWriter, j *job, ctx context.Context, cancel context.CancelFunc, work func(context.Context)) {
	if err := s.queue.Submit(ctx, work); err != nil {
		// Finish against a fresh context so the job records the Submit
		// failure, not a cancellation; then release the job's context.
		j.finish(context.Background(), err, nil, nil, nil)
		s.countFinished(j)
		cancel()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleSubmitSweep accepts an ordered point list and executes it through
// the public sweep engine with the cache interposed as Plan.Executor.
func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, err := DecodeSweepRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	total := len(req.Points)
	if req.Mode == client.ModeSpeedup {
		total *= 2 // each point plus its (memoized) baseline — an upper bound
	}
	forwarded := r.Header.Get(forwardedHeader) != ""
	requestID := obs.RequestIDFrom(r.Context())
	ctx, cancel := context.WithCancel(obs.WithRequestID(context.Background(), requestID))

	s.mu.Lock()
	j := s.newJobLocked("sweep", total, requestID, cancel)
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)
	s.reqLog(r.Context()).Info("sweep submitted",
		"job", j.id, "points", len(req.Points), "mode", req.Mode,
		"sampled", req.Sample != nil, "forwarded", forwarded)

	submitted := time.Now()
	work := func(ctx context.Context) {
		j.tl.Observe("queued", submitted)
		j.setRunning()
		plan := uc.Plan{
			Points: req.Points,
			Jobs:   s.cfg.Jobs,
			Executor: func(run uc.Run) (uc.Result, error) {
				if err := ctx.Err(); err != nil {
					return uc.Result{}, context.Cause(ctx)
				}
				start := time.Now()
				res, cached, source, err := s.executeRun(ctx, run, forwarded)
				if err == nil {
					j.tl.Observe(source, start)
					j.recordExecution(cached)
				}
				return res, err
			},
		}
		var (
			results  []uc.Result
			speedups []uc.SpeedupResult
			err      error
		)
		if ctx.Err() != nil {
			err = context.Cause(ctx)
		} else {
			switch {
			case req.Sample != nil:
				speedups, err = uc.SweepSampled(plan, *req.Sample)
			case req.Mode == client.ModeSpeedup:
				speedups, err = uc.SpeedupMany(plan)
			default:
				results, err = uc.ExecuteMany(plan)
			}
		}
		j.finish(ctx, err, nil, results, speedups)
		s.countFinished(j)
	}
	s.submit(w, j, ctx, cancel, work)
}

// countFinished bumps the terminal-state counters and retires the job
// into the bounded history: once more than JobHistory jobs have
// finished, the oldest-finished ones — with their result payloads — are
// forgotten, so a long-running daemon's job registry cannot grow without
// bound. (The result cache keeps serving the underlying runs either
// way; only the job records age out.)
func (s *Server) countFinished(j *job) {
	snap := j.snapshot()
	switch snap.State {
	case client.StateDone:
		s.m.jobsDone.Add(1)
	case client.StateFailed:
		s.m.jobsFailed.Add(1)
	case client.StateCanceled:
		s.m.jobsCanceled.Add(1)
	}
	s.log.Info("job finished",
		"req_id", snap.RequestID, "job", j.id, "kind", j.kind,
		"state", snap.State, "done", snap.Done, "cache_hits", snap.CacheHits,
		"error", snap.Error)
	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.JobHistory {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// lookupJob resolves {id} or writes 404.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return nil
	}
	return j
}

// handleJob returns the job snapshot (results included once done).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

// handleCancelJob cancels the job's context. A queued job records the
// cancellation when a worker reaches it; a running sweep aborts at its
// next point execution.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.cancel()
	j.markCanceledIfQueued()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleEvents streams the job's progress as NDJSON: the current state
// immediately, a line per change, the terminal line last, then EOF.
// Every line carries the job's request ID and current span timeline.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	tick, unsubscribe := j.subscribe()
	defer unsubscribe()
	for {
		snap := j.snapshot()
		e := client.Event{
			State: snap.State, Done: snap.Done, Total: snap.Total,
			Error: snap.Error, RequestID: snap.RequestID, Spans: snap.Spans,
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if snap.Terminal() {
			return
		}
		select {
		case <-tick:
		case <-r.Context().Done():
			return
		}
	}
}

// liveEpochs returns the job's live telemetry sink: each epoch a local
// simulation emits lands on the job record immediately — streaming to
// /telemetry subscribers while the run executes — feeds the epochs
// counter, and its arrival gap the cadence histogram. The engine invokes
// the sink from the single executing goroutine, so last needs no lock.
func (s *Server) liveEpochs(j *job) func(uc.TimelineEpoch) {
	var last time.Time
	return func(e uc.TimelineEpoch) {
		now := time.Now()
		if !last.IsZero() {
			s.lat.epochGap.Observe(now.Sub(last).Seconds())
		}
		last = now
		s.m.telemetryEpochs.Add(1)
		j.addEpochs(e)
	}
}

// backfillEpochs copies onto the job any timeline epochs it has not yet
// recorded, so results that arrived whole — cache, store, peer and proxy
// hits, coalesced executions — replay their telemetry over the stream
// exactly like a live simulation. It must run before the job turns
// terminal: epochsFrom pairs the epoch tail with the terminal flag, so
// this ordering is what guarantees a stream never ends short.
func (s *Server) backfillEpochs(j *job, res *uc.Result) {
	if res == nil || res.Timeline == nil {
		return
	}
	have := j.epochCount()
	if have >= len(res.Timeline.Epochs) {
		return
	}
	tail := res.Timeline.Epochs[have:]
	s.m.telemetryEpochs.Add(uint64(len(tail)))
	j.addEpochs(tail...)
}

// handleTelemetry streams the job's epoch timeline as NDJSON: one
// TimelineEpoch per line, live while a telemetry-enabled run simulates,
// replayed from the job record for finished jobs, EOF after the terminal
// drain. Jobs without telemetry yield an empty body.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	tick, unsubscribe := j.subscribe()
	defer unsubscribe()
	// Push the headers out before the first epoch exists, so a client
	// following a running job sees the stream open immediately.
	if flusher != nil {
		flusher.Flush()
	}
	sent := 0
	for {
		epochs, terminal := j.epochsFrom(sent)
		for _, e := range epochs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		sent += len(epochs)
		if len(epochs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-tick:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz is the readiness probe: 200 while the daemon accepts
// work, 503 with Ready=false once it is draining — load balancers stop
// routing to a member the moment it starts shutting down, while /livez
// keeps reporting the process alive.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	draining := s.draining.Load()
	h := client.Health{Status: "ok", Ready: !draining, Draining: draining}
	code := http.StatusOK
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleLivez is the liveness probe: 200 for as long as the process
// serves HTTP, draining or not.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, client.Health{Status: "ok", Ready: !s.draining.Load(), Draining: s.draining.Load()})
}

// DecodeRunRequest strictly decodes a POST /v1/runs body: unknown JSON
// fields anywhere in the payload fail (Run.UnmarshalJSON), as do unknown
// designs and — because this is the request boundary, where the daemon's
// workload registry is authoritative — unknown workloads, all with
// actionable errors.
func DecodeRunRequest(data []byte) (client.RunRequest, error) {
	var req client.RunRequest
	if err := decodeStrict(data, &req); err != nil {
		return client.RunRequest{}, fmt.Errorf("run request: %w", err)
	}
	if err := req.Run.ValidateNames(); err != nil {
		return client.RunRequest{}, fmt.Errorf("run request: %w", err)
	}
	return req, nil
}

// DecodeSweepRequest strictly decodes a POST /v1/sweeps body and
// validates the mode combination and every point's names.
func DecodeSweepRequest(data []byte) (client.SweepRequest, error) {
	var req client.SweepRequest
	if err := decodeStrict(data, &req); err != nil {
		return client.SweepRequest{}, fmt.Errorf("sweep request: %w", err)
	}
	for i, p := range req.Points {
		if err := p.ValidateNames(); err != nil {
			return client.SweepRequest{}, fmt.Errorf("sweep request: point %d: %w", i, err)
		}
	}
	switch req.Mode {
	case "", client.ModeExecute, client.ModeSpeedup:
	default:
		return client.SweepRequest{}, fmt.Errorf("sweep request: unknown mode %q (have %q, %q)", req.Mode, client.ModeExecute, client.ModeSpeedup)
	}
	if req.Sample != nil && req.Mode != client.ModeSpeedup {
		return client.SweepRequest{}, fmt.Errorf("sweep request: sample requires mode %q (sampled sweeps are speedup sweeps)", client.ModeSpeedup)
	}
	if len(req.Points) == 0 {
		return client.SweepRequest{}, fmt.Errorf("sweep request: empty points")
	}
	return req, nil
}

// decodeStrict decodes one JSON value rejecting unknown fields and
// trailing garbage.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// readBody reads a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the error payload.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
