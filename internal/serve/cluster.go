package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	uc "unisoncache"
)

// forwardedHeader marks daemon-to-daemon traffic. A submission carrying
// it has already been routed once and must execute on the receiving
// daemon — the guard that makes cluster routing one hop maximum even
// when members disagree about the ring (rolling config changes,
// misconfigured peer lists): requests can be misplaced, never looped.
const forwardedHeader = "X-Unison-Forwarded"

// peerFillTimeout bounds each peer cache lookup during a fill. Lookups
// are pure cache/store reads on the peer, so a slow answer means a
// wedged peer — move on and simulate.
const peerFillTimeout = 5 * time.Second

// storeGet looks key up in the persistent store. Any store error —
// including a result that no longer unmarshals — reads as a miss: the
// store is a cache of re-computable data, so degrading to re-simulation
// is always safe.
func (s *Server) storeGet(key string) (uc.Result, bool) {
	if s.store == nil {
		return uc.Result{}, false
	}
	start := time.Now()
	blob, ok, err := s.store.Get(key)
	s.lat.storeRead.ObserveSince(start)
	if err != nil || !ok {
		return uc.Result{}, false
	}
	var res uc.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		return uc.Result{}, false
	}
	return res, true
}

// storePut persists a result. Write errors are swallowed: a full or
// failing disk must not fail a simulation that already succeeded; the
// daemon just loses durability for that entry.
func (s *Server) storePut(key string, res uc.Result) {
	if s.store == nil {
		return
	}
	blob, err := json.Marshal(res)
	if err != nil {
		return
	}
	start := time.Now()
	_ = s.store.Put(key, blob)
	s.lat.storeWrite.ObserveSince(start)
}

// remoteExecute forwards a run to its owning daemon and returns the
// owner's result. The bit-identity contract holds across the hop: the
// owner executes (or serves from cache) the exact same defaulted
// configuration, and Results round-trip JSON losslessly. ctx carries the
// request ID, which the peer client stamps on the forwarded request, so
// the hop shows up under the same ID in the owner's logs.
func (s *Server) remoteExecute(ctx context.Context, owner, key string, r uc.Run) (uc.Result, error) {
	start := time.Now()
	res, err := s.peers[owner].Execute(ctx, r)
	dur := time.Since(start)
	s.lat.peer.With("proxy").Observe(dur.Seconds())
	lg := s.reqLog(ctx).With("run_key", keyPrefix(key), "owner", owner, "dur_ms", durMillis(dur))
	if err != nil {
		lg.Warn("proxy to owner failed", "error", err.Error())
	} else {
		lg.Info("proxied to owner")
	}
	return res, err
}

// peerFill asks the other members for a cached result before this
// daemon — the key's owner — re-simulates. Peers answer from memory or
// store only (GET /v1/results/{key} never executes), so the worst case
// is a few fast 404s. This is what makes membership changes and
// restarts cheap: keys that moved onto this node are fetched, not
// re-simulated.
func (s *Server) peerFill(ctx context.Context, key string) (uc.Result, bool) {
	for _, n := range s.ring.Preference(key) {
		cl, ok := s.peers[n]
		if !ok {
			continue // self
		}
		lctx, cancel := context.WithTimeout(ctx, peerFillTimeout)
		start := time.Now()
		res, ok, err := cl.LookupResult(lctx, key)
		cancel()
		s.lat.peer.With("peer-fill").ObserveSince(start)
		if err == nil && ok {
			s.reqLog(ctx).Info("peer fill",
				"run_key", keyPrefix(key), "peer", n,
				"dur_ms", durMillis(time.Since(start)))
			return res, true
		}
	}
	return uc.Result{}, false
}

// handleResult serves GET /v1/results/{key}: a pure lookup in the
// memory cache and persistent store that never triggers execution. 404
// means "not here" — peers use this for cache fill, and operators can
// use it to probe what a node holds.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := s.cache.get(key); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	if res, ok := s.storeGet(key); ok {
		s.m.storeHits.Add(1)
		s.cache.put(key, res)
		writeJSON(w, http.StatusOK, res)
		return
	}
	writeError(w, http.StatusNotFound, "no result for key "+key)
}
