package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	uc "unisoncache"
	"unisoncache/client"
)

// post submits body to path and decodes the response JSON into v,
// returning the status code.
func post(t *testing.T, ts *httptest.Server, path, body string, v any) int {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

// getJob fetches one job snapshot.
func getJob(t *testing.T, ts *httptest.Server, id string) client.Job {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j client.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitJob polls until the job is terminal.
func waitJob(t *testing.T, ts *httptest.Server, id string) client.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		j := getJob(t, ts, id)
		if j.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 60s", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mustJSON is the bit-identity comparator: Go floats marshal to their
// shortest round-trip form, so equal JSON bytes mean equal bits.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fakeExecute returns a deterministic, run-dependent fake result without
// simulating. UIPC is kept nonzero so speedup assembly works.
func fakeExecute(r uc.Run) (uc.Result, error) {
	res := uc.Result{Run: r}
	res.UIPC = 1 + float64(len(r.Workload)) + float64(r.Capacity%97)
	if r.Design == uc.DesignNone {
		res.UIPC = 2
	}
	res.Instructions = r.Capacity
	return res, nil
}

// smallRun is the shared tiny-but-real simulation configuration.
func smallRun(design uc.DesignKind) uc.Run {
	return uc.Run{
		Workload:        "web-search",
		Design:          design,
		Capacity:        256 << 20,
		Cores:           2,
		AccessesPerCore: 4_000,
	}
}

// TestServeRunBitIdentical: a Run through the HTTP service returns a
// Result bit-identical to a direct Execute call.
func TestServeRunBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	run := smallRun(uc.DesignUnison)
	want, err := uc.Execute(run)
	if err != nil {
		t.Fatal(err)
	}

	var j client.Job
	if code := post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	j = waitJob(t, ts, j.ID)
	if j.State != client.StateDone || j.Result == nil {
		t.Fatalf("job = %+v, want done with result", j)
	}
	if got, want := mustJSON(t, *j.Result), mustJSON(t, want); got != want {
		t.Errorf("service result diverges from direct Execute\n got: %s\nwant: %s", got, want)
	}

	// Resubmission: same Run, bit-identical again, zero new executions.
	var j2 client.Job
	if code := post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j2); code != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200 (synchronous)", code)
	}
	if j2.State != client.StateDone || j2.Result == nil || j2.CacheHits != 1 {
		t.Fatalf("cached job = %+v, want done with result from cache", j2)
	}
	if got, want := mustJSON(t, *j2.Result), mustJSON(t, want); got != want {
		t.Errorf("cached result diverges from direct Execute")
	}
	if hits := s.m.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := s.m.cacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
}

// TestServeSampledSweepBitIdentical: a CI-target sampled speedup sweep
// through the service matches SweepSampled in-process, bit for bit —
// including the matched-pair CIs and refinement behaviour.
func TestServeSampledSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := uc.SampleSpec{IntervalEvents: 250, GapEvents: 250, MinIntervals: 2}
	points := []uc.Run{smallRun(uc.DesignUnison), smallRun(uc.DesignAlloy)}
	want, err := uc.SweepSampled(uc.Plan{Points: points}, spec)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	body := fmt.Sprintf(`{"points":%s,"mode":"speedup","sample":%s}`, mustJSON(t, points), mustJSON(t, spec))
	var j client.Job
	if code := post(t, ts, "/v1/sweeps", body, &j); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	j = waitJob(t, ts, j.ID)
	if j.State != client.StateDone {
		t.Fatalf("job = %+v, want done", j)
	}
	if got, want := mustJSON(t, j.Speedups), mustJSON(t, want); got != want {
		t.Errorf("service sweep diverges from SweepSampled\n got: %s\nwant: %s", got, want)
	}
}

// TestServeSegmentedParity: a time-parallel run submitted through the
// daemon returns Results bit-identical to the serial daemon run. Two
// segmented passes are exercised — the first populates the boundary
// snapshots serially, so a second daemon (its result cache empty, the
// process-wide snapshot store warm) takes the concurrent path.
func TestServeSegmentedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	serial := smallRun(uc.DesignUnison)
	segmented := serial
	segmented.Segments = 3

	submit := func(s *Server, ts *httptest.Server, run uc.Run) uc.Result {
		var j client.Job
		if code := post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j); code != http.StatusAccepted {
			t.Fatalf("submit status %d", code)
		}
		j = waitJob(t, ts, j.ID)
		if j.State != client.StateDone || j.Result == nil {
			t.Fatalf("job = %+v, want done with result", j)
		}
		return *j.Result
	}

	s1 := New(Config{})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	defer s1.Drain(context.Background())

	want := submit(s1, ts1, serial)
	first := submit(s1, ts1, segmented) // snapshot store cold: serial-with-save

	s2 := New(Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Drain(context.Background())

	second := submit(s2, ts2, segmented) // snapshot store warm: concurrent segments

	for name, got := range map[string]uc.Result{"serial-with-save": first, "parallel": second} {
		if got.Run.Segments != 3 {
			t.Errorf("%s: echoed Segments = %d, want 3", name, got.Run.Segments)
		}
		got.Run.Segments = 0
		if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
			t.Errorf("%s segmented result diverges from serial\n got: %s\nwant: %s", name, g, w)
		}
	}
}

// TestServeConcurrentDedup: concurrent identical submissions collapse
// onto one execution; every caller gets the same result.
func TestServeConcurrentDedup(t *testing.T) {
	release := make(chan struct{})
	var executions atomic.Int32
	s := New(Config{
		Workers: 8,
		Execute: func(r uc.Run) (uc.Result, error) {
			executions.Add(1)
			<-release
			return fakeExecute(r)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	run := smallRun(uc.DesignUnison)
	const callers = 6
	ids := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var j client.Job
			post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j)
			ids[i] = j.ID
		}()
	}
	wg.Wait()
	// Let the workers pick everything up, then release the one execution.
	for deadline := time.Now().Add(10 * time.Second); executions.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no execution started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)

	wantRes, _ := fakeExecute(run)
	for _, id := range ids {
		j := waitJob(t, ts, id)
		if j.State != client.StateDone || j.Result == nil {
			t.Fatalf("job %s = %+v, want done", id, j)
		}
		if got := mustJSON(t, *j.Result); got != mustJSON(t, wantRes) {
			t.Errorf("job %s result diverges", id)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Errorf("identical concurrent submissions executed %d times, want 1", n)
	}
	if s.m.coalesced.Load()+s.m.cacheHits.Load() != callers-1 {
		t.Errorf("coalesced %d + hits %d, want %d total", s.m.coalesced.Load(), s.m.cacheHits.Load(), callers-1)
	}
}

// TestServeSweepSharesCacheAcrossRequests: a second sweep whose points
// were all executed by an earlier request is served entirely from cache.
func TestServeSweepSharesCacheAcrossRequests(t *testing.T) {
	var executions atomic.Int32
	s := New(Config{
		Execute: func(r uc.Run) (uc.Result, error) {
			executions.Add(1)
			return fakeExecute(r)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	points := []uc.Run{smallRun(uc.DesignUnison), smallRun(uc.DesignAlloy)}
	body := `{"points":` + mustJSON(t, points) + `,"mode":"speedup"}`
	var j client.Job
	post(t, ts, "/v1/sweeps", body, &j)
	first := waitJob(t, ts, j.ID)
	if first.State != client.StateDone {
		t.Fatalf("first sweep: %+v", first)
	}
	// 2 design points + 1 shared memoized baseline.
	if n := executions.Load(); n != 3 {
		t.Fatalf("first sweep executed %d runs, want 3", n)
	}

	post(t, ts, "/v1/sweeps", body, &j)
	second := waitJob(t, ts, j.ID)
	if second.State != client.StateDone {
		t.Fatalf("second sweep: %+v", second)
	}
	if n := executions.Load(); n != 3 {
		t.Errorf("cached resubmission executed %d new runs, want 0", n-3)
	}
	if second.CacheHits != 3 {
		t.Errorf("second sweep cache hits = %d, want 3", second.CacheHits)
	}
	if got, want := mustJSON(t, second.Speedups), mustJSON(t, first.Speedups); got != want {
		t.Errorf("cached sweep result diverges from first execution")
	}
}

// TestServeEventsStream: the NDJSON stream opens with the current state
// and ends with the terminal line.
func TestServeEventsStream(t *testing.T) {
	s := New(Config{Execute: fakeExecute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	points := []uc.Run{smallRun(uc.DesignUnison), smallRun(uc.DesignAlloy), smallRun(uc.DesignFootprint)}
	var j client.Job
	post(t, ts, "/v1/sweeps", `{"points":`+mustJSON(t, points)+`}`, &j)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var events []client.Event
	dec := json.NewDecoder(resp.Body)
	for {
		var e client.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.State != client.StateDone {
		t.Fatalf("last event %+v, want done", last)
	}
	if last.Done != 3 {
		t.Errorf("final done = %d, want 3 executions", last.Done)
	}
}

// TestServeDrain: draining rejects new submissions with 503, finishes
// accepted jobs, and flips /healthz.
func TestServeDrain(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Workers: 1,
		Execute: func(r uc.Run) (uc.Result, error) {
			<-release
			return fakeExecute(r)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := smallRun(uc.DesignUnison)
	var j client.Job
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for deadline := time.Now().Add(10 * time.Second); !s.draining.Load(); {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	var errBody struct {
		Error string `json:"error"`
	}
	if code := post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &errBody); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}
	if errBody.Error == "" {
		t.Error("draining rejection has no error message")
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h client.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.Draining || h.Status != "draining" {
		t.Errorf("healthz during drain = %+v", h)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := waitJob(t, ts, j.ID); got.State != client.StateDone {
		t.Errorf("accepted job after drain = %q, want done (drain must not abandon accepted work)", got.State)
	}
}

// TestServeCancel: canceling a queued job yields state canceled without
// executing it.
func TestServeCancel(t *testing.T) {
	release := make(chan struct{})
	var executions atomic.Int32
	s := New(Config{
		Workers: 1,
		Execute: func(r uc.Run) (uc.Result, error) {
			executions.Add(1)
			<-release
			return fakeExecute(r)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	// First job occupies the single worker; second sits queued.
	var blocker, queued client.Job
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(uc.DesignUnison))+`}`, &blocker)
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(uc.DesignAlloy))+`}`, &queued)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	close(release)

	if got := waitJob(t, ts, queued.ID); got.State != client.StateCanceled {
		t.Fatalf("canceled job state = %q, want canceled", got.State)
	}
	if got := waitJob(t, ts, blocker.ID); got.State != client.StateDone {
		t.Fatalf("blocker state = %q, want done", got.State)
	}
	if n := executions.Load(); n != 1 {
		t.Errorf("%d executions, want 1 (canceled job must not run)", n)
	}
}

// TestServeJobHistoryBounded: finished jobs age out of the registry
// beyond JobHistory, so a long-running daemon cannot accumulate every
// historical result payload.
func TestServeJobHistoryBounded(t *testing.T) {
	s := New(Config{Execute: fakeExecute, JobHistory: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	designs := []uc.DesignKind{uc.DesignUnison, uc.DesignAlloy, uc.DesignFootprint}
	ids := make([]string, len(designs))
	for i, d := range designs {
		var j client.Job
		post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, smallRun(d))+`}`, &j)
		waitJob(t, ts, j.ID)
		ids[i] = j.ID
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job still queryable (status %d), want evicted past JobHistory=2", resp.StatusCode)
	}
	if j := getJob(t, ts, ids[2]); j.State != client.StateDone {
		t.Errorf("newest job lost: %+v", j)
	}
}

// TestServeMetricsEndpoint: the exposition includes the cache counters.
func TestServeMetricsEndpoint(t *testing.T) {
	s := New(Config{Execute: fakeExecute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	run := smallRun(uc.DesignUnison)
	var j client.Job
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j)
	waitJob(t, ts, j.ID)
	post(t, ts, "/v1/runs", `{"run":`+mustJSON(t, run)+`}`, &j)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"unisonserved_cache_hits_total 1",
		"unisonserved_cache_misses_total 1",
		"unisonserved_jobs_submitted_total 2",
		"unisonserved_cache_entries 1",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("metrics output missing %q:\n%s", want, data)
		}
	}
}

// TestServeDecodeErrors: malformed submissions fail with 400 and
// actionable messages.
func TestServeDecodeErrors(t *testing.T) {
	s := New(Config{Execute: fakeExecute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	cases := []struct {
		name, path, body, wantSub string
	}{
		{"unknown field", "/v1/runs", `{"run":{"Workload":"web-search","Capasity":1}}`, "Capasity"},
		{"unknown design", "/v1/runs", `{"run":{"Workload":"web-search","Design":"unicorn"}}`, `unknown design "unicorn"`},
		{"unknown workload", "/v1/runs", `{"run":{"Workload":"web-serch"}}`, `unknown workload "web-serch"`},
		{"bad mode", "/v1/sweeps", `{"points":[{"Workload":"web-search"}],"mode":"turbo"}`, `unknown mode "turbo"`},
		{"sample without speedup", "/v1/sweeps", `{"points":[{"Workload":"web-search"}],"sample":{"IntervalEvents":100}}`, "sample requires"},
		{"empty points", "/v1/sweeps", `{"points":[]}`, "empty points"},
		{"not json", "/v1/runs", `hello`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBody struct {
				Error string `json:"error"`
			}
			code := post(t, ts, tc.path, tc.body, &errBody)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if !strings.Contains(errBody.Error, tc.wantSub) {
				t.Errorf("error %q does not mention %q", errBody.Error, tc.wantSub)
			}
		})
	}

	// Unknown job id → 404.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
}
