package serve

import (
	"container/list"
	"sync"

	uc "unisoncache"
)

// resultCache is the daemon's content-addressed result store: an LRU over
// canonical run keys (uc.RunKey) with in-flight deduplication. Concurrent
// do calls for the same key collapse onto one execution — the first
// caller runs fn, everyone else parks on the flight and shares its
// outcome — so a burst of identical submissions costs one simulation.
// Cached Results are shared by reference across callers; they are
// treated as immutable (the daemon only ever marshals them).
type resultCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	order    *list.List // front = MRU; values are *cacheEntry
	inflight map[string]*flight
}

type cacheEntry struct {
	key string
	res uc.Result
}

// flight is one in-progress execution other callers can join.
type flight struct {
	done chan struct{}
	res  uc.Result
	err  error
}

// newResultCache bounds the cache at max entries (minimum 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:      max,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight),
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// get peeks the cache without joining any in-flight execution (the
// submit fast path: answer a cached run in one round trip).
func (c *resultCache) get(key string) (uc.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		return e.Value.(*cacheEntry).res, true
	}
	return uc.Result{}, false
}

// do returns the result for key, executing fn at most once per key across
// concurrent callers. hit reports a cache hit (no execution, no waiting);
// shared reports that the caller joined another caller's in-flight
// execution. Errors are never cached — the next submission retries.
func (c *resultCache) do(key string, fn func() (uc.Result, error)) (res uc.Result, hit, shared bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		res = e.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, false, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.res, false, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: f.res})
		for c.order.Len() > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, false, false, f.err
}
