package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	uc "unisoncache"
)

// resultCache is the daemon's in-memory content-addressed result cache:
// a byte-bounded LRU over canonical run keys (uc.RunKey) with in-flight
// deduplication. Concurrent do calls for the same key collapse onto one
// execution — the first caller runs fn, everyone else parks on the
// flight and shares its outcome — so a burst of identical submissions
// costs one simulation. Cached Results are shared by reference across
// callers; they are treated as immutable (the daemon only ever marshals
// them).
//
// The bound is bytes, not entries: an entry is charged its marshaled
// JSON length (the same accounting internal/checkpoint uses), so a
// cache full of 100k-window replay results and a cache full of tiny
// synthetic ones obey the same memory budget. A single result larger
// than the whole budget is returned to its caller but not retained.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	entries  map[string]*list.Element
	order    *list.List // front = MRU; values are *cacheEntry
	inflight map[string]*flight
}

type cacheEntry struct {
	key   string
	res   uc.Result
	bytes int64
}

// flight is one in-progress execution other callers can join.
type flight struct {
	done chan struct{}
	res  uc.Result
	err  error
}

// newResultCache bounds the cache at maxBytes of marshaled results
// (minimum one page's worth, so a tiny configured bound still caches
// something).
func newResultCache(maxBytes int64) *resultCache {
	if maxBytes < 4096 {
		maxBytes = 4096
	}
	return &resultCache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight),
	}
}

// resultBytes is the accounting size of a cached result: its marshaled
// JSON length. Marshaling a Result cannot fail (it is plain exported
// data), but a defensive floor keeps the accounting sane if it ever
// did.
func resultBytes(res uc.Result) int64 {
	b, err := json.Marshal(res)
	if err != nil {
		return 1
	}
	return int64(len(b))
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// bytes returns the accounted size of all cached results.
func (c *resultCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// get peeks the cache without joining any in-flight execution (the
// submit fast path: answer a cached run in one round trip).
func (c *resultCache) get(key string) (uc.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		return e.Value.(*cacheEntry).res, true
	}
	return uc.Result{}, false
}

// put inserts a result produced elsewhere (the persistent store, a
// cluster peer) without running anything.
func (c *resultCache) put(key string, res uc.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, res)
}

// insertLocked adds or refreshes an entry and evicts from the LRU tail
// past the byte budget. Caller holds c.mu.
func (c *resultCache) insertLocked(key string, res uc.Result) {
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		return // content-addressed: same key, same bytes
	}
	n := resultBytes(res)
	if n > c.maxBytes {
		return // larger than the whole budget: serve, don't retain
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, bytes: n})
	c.size += n
	for c.size > c.maxBytes {
		oldest := c.order.Back()
		ce := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.entries, ce.key)
		c.size -= ce.bytes
	}
}

// do returns the result for key, executing fn at most once per key across
// concurrent callers. hit reports a cache hit (no execution, no waiting);
// shared reports that the caller joined another caller's in-flight
// execution. Errors are never cached — the next submission retries.
//
// A panic inside fn is converted into an error: the flight still
// completes, so parked callers and Drain see a failed execution instead
// of hanging forever on a channel nobody will ever close (and the
// worker goroutine survives to take the next job).
func (c *resultCache) do(key string, fn func() (uc.Result, error)) (res uc.Result, hit, shared bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e)
		res = e.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, false, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.res, false, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// Whatever happens in fn — return, error, panic — the flight is
	// removed and closed exactly once, so parked callers always wake.
	defer func() {
		if p := recover(); p != nil {
			f.err = fmt.Errorf("serve: execution panicked: %v", p)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.res)
		}
		c.mu.Unlock()
		close(f.done)
		res, err = f.res, f.err
	}()
	f.res, f.err = fn()
	return f.res, false, false, f.err
}
