package serve

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	uc "unisoncache"
	"unisoncache/client"
)

// fakeTimeline builds a small deterministic epoch timeline for a run.
func fakeTimeline(r uc.Run) *uc.Timeline {
	tl := &uc.Timeline{EpochEvents: r.Telemetry.EpochEvents}
	for i := 0; i < 3; i++ {
		tl.Epochs = append(tl.Epochs, uc.TimelineEpoch{
			Index:        i,
			StartEvents:  i * r.Telemetry.EpochEvents,
			EndEvents:    (i + 1) * r.Telemetry.EpochEvents,
			Instructions: uint64(100 * (i + 1)),
			Reads:        uint64(10 + i),
			ReadHits:     uint64(i),
		})
	}
	return tl
}

// fakeExecuteTelemetry is fakeExecute plus a timeline when the run asks
// for telemetry. A Config.Execute override cannot emit epochs live, so
// this exercises the terminal-backfill path: the daemon must still
// deliver the whole timeline over the stream.
func fakeExecuteTelemetry(r uc.Run) (uc.Result, error) {
	res, err := fakeExecute(r)
	if err == nil && r.Telemetry.Enabled() {
		res.Timeline = fakeTimeline(r)
	}
	return res, err
}

// submitRun posts one run and returns the accepted job snapshot.
func submitRun(t *testing.T, ts *httptest.Server, run uc.Run) client.Job {
	t.Helper()
	var j client.Job
	post(t, ts, "/v1/runs", mustJSON(t, client.RunRequest{Run: run}), &j)
	if j.ID == "" {
		t.Fatal("submission returned no job ID")
	}
	return j
}

// TestServeTelemetryStream: GET /v1/jobs/{id}/telemetry replays the
// job's epoch timeline as NDJSON — for a freshly simulated job, for a
// finished job re-read later, and for a cached fast-path submission that
// never queued — and the epochs counter on /metrics accounts each one.
func TestServeTelemetryStream(t *testing.T) {
	s := New(Config{Execute: fakeExecuteTelemetry})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	run := smallRun(uc.DesignUnison)
	run.Telemetry = uc.TelemetrySpec{EpochEvents: 500}
	want := fakeTimeline(run).Epochs

	j := submitRun(t, ts, run)
	waitJob(t, ts, j.ID)
	epochs, err := cl.CollectTelemetry(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, want) {
		t.Errorf("streamed epochs = %+v, want %+v", epochs, want)
	}

	// Re-reading a finished job replays the identical timeline.
	again, err := cl.CollectTelemetry(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Errorf("replayed epochs = %+v, want %+v", again, want)
	}

	// A repeat submission answers from the cache — terminal on arrival —
	// and its job streams the backfilled timeline all the same.
	j2 := submitRun(t, ts, run)
	if !j2.Terminal() {
		waitJob(t, ts, j2.ID)
	}
	cached, err := cl.CollectTelemetry(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, want) {
		t.Errorf("cached-submission epochs = %+v, want %+v", cached, want)
	}

	// A job without telemetry yields an empty stream, not an error.
	plain := submitRun(t, ts, smallRun(uc.DesignAlloy))
	waitJob(t, ts, plain.ID)
	none, err := cl.CollectTelemetry(ctx, plain.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("telemetry-free job streamed %d epochs", len(none))
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One simulated delivery plus one cached backfill, 3 epochs each.
	if got := m["unisonserved_telemetry_epochs_total"]; got != 6 {
		t.Errorf("unisonserved_telemetry_epochs_total = %v, want 6", got)
	}
}

// TestServeTelemetryLiveMatchesResult runs the real engine through the
// daemon: the streamed epochs (emitted live by the simulation) must
// equal the finished Result's assembled timeline exactly, and the stream
// must terminate on its own after the terminal drain.
func TestServeTelemetryLiveMatchesResult(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates; skipped in -short")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	run := smallRun(uc.DesignUnison)
	run.Telemetry = uc.TelemetrySpec{EpochEvents: 200}
	j := submitRun(t, ts, run)

	// Open the stream while the job may still be queued or running: the
	// handler must hold it open and drain every epoch before EOF.
	streamed, err := cl.CollectTelemetry(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, ts, j.ID)
	if final.State != client.StateDone {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Timeline == nil {
		t.Fatal("telemetry run finished without a timeline on its result")
	}
	if !reflect.DeepEqual(streamed, final.Result.Timeline.Epochs) {
		t.Errorf("streamed %d epochs differ from the result timeline's %d",
			len(streamed), len(final.Result.Timeline.Epochs))
	}
}

// TestServeSpansDroppedSurfaced: a sweep recording more execution spans
// than the per-job cap surfaces the overflow as SpansDropped in the job
// JSON — a truncated trace is visible as such, never mistaken for a
// short one.
func TestServeSpansDroppedSurfaced(t *testing.T) {
	s := New(Config{Execute: fakeExecute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	points := make([]uc.Run, 70)
	for i := range points {
		r := smallRun(uc.DesignUnison)
		r.Seed = uint64(i + 1) // distinct keys: every point really executes
		points[i] = r
	}
	var j client.Job
	post(t, ts, "/v1/sweeps", mustJSON(t, client.SweepRequest{Points: points}), &j)
	final := waitJob(t, ts, j.ID)
	if final.State != client.StateDone {
		t.Fatalf("sweep ended %q: %s", final.State, final.Error)
	}
	if final.SpansDropped <= 0 {
		t.Errorf("SpansDropped = %d after %d executions, want > 0", final.SpansDropped, len(points))
	}
	if len(final.Spans) > 65 {
		t.Errorf("job holds %d spans; the cap did not bound the record", len(final.Spans))
	}
	last := final.Spans[len(final.Spans)-1]
	if !strings.Contains(last.Stage, "truncated") {
		t.Errorf("last span %q is not the truncation marker", last.Stage)
	}
}
