package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	uc "unisoncache"
	"unisoncache/client"
)

// BenchmarkServeCachedRun measures the service's cached-request hot path:
// one POST /v1/runs round trip answered synchronously from the
// content-addressed cache — decode, canonical RunKey hash, LRU lookup,
// job bookkeeping, response marshal. This is the throughput ceiling for
// repeat traffic; ns/op here is pure service overhead, with zero
// simulation inside the loop (the single real execution happens in
// setup).
func BenchmarkServeCachedRun(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	run := uc.Run{
		Workload:        "web-search",
		Design:          uc.DesignUnison,
		Capacity:        256 << 20,
		Cores:           2,
		AccessesPerCore: 4_000,
	}
	blob, err := json.Marshal(run)
	if err != nil {
		b.Fatal(err)
	}
	body := `{"run":` + string(blob) + `}`

	// Warm the cache with the one real execution, then require every
	// benchmarked request to be the synchronous cached path (status 200).
	submit := func() int {
		resp, err := ts.Client().Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var j client.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			b.Fatal(err)
		}
		if j.State == client.StateFailed {
			b.Fatalf("run failed: %s", j.Error)
		}
		return resp.StatusCode
	}
	submit()
	for {
		if code := submit(); code == http.StatusOK {
			break
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := submit(); code != http.StatusOK {
			b.Fatalf("request %d missed the cache (status %d)", i, code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
