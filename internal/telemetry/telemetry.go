// Package telemetry records epoch-sliced counter timelines from a replay:
// per-core and per-design statistic deltas snapshotted every EpochEvents
// retired events per core. It generalizes the sampled-replay observation
// mechanics (internal/sample) into a first-class subsystem: boundaries are
// pure per-core counter snapshots taken as each core crosses them inside
// the one continuous min-clock-first schedule — no barrier, no replay
// perturbation — so a run's Result is bit-identical with telemetry on or
// off, and the timeline is bit-identical no matter how the run was chunked
// or segmented.
//
// The recorder stores measurement-relative values only (per-core deltas
// since the warmup boundary; global statistics, which reset at that
// boundary). That makes every cell segment-invariant: a checkpointed
// segment worker that crosses a boundary writes exactly the value the
// serial run would, so merging segment recorders is a sparse union of
// cells followed by ordinary epoch assembly.
package telemetry

import (
	"fmt"

	"unisoncache/internal/cache"
	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/stats"
)

// DefaultEpochEvents is the epoch length applied when a spec enables
// telemetry without choosing one: 10k retired events per core per epoch.
const DefaultEpochEvents = 10_000

// Spec configures epoch-sliced telemetry. The zero value disables it.
type Spec struct {
	// EpochEvents is the epoch length in retired events per core. The
	// final epoch is shorter when the measured region is not a multiple.
	EpochEvents int
}

// Enabled reports whether the spec turns telemetry on.
func (s Spec) Enabled() bool { return s != (Spec{}) }

// WithDefaults fills zero fields of an enabled spec (idempotent).
func (s Spec) WithDefaults() Spec {
	if s.EpochEvents == 0 {
		s.EpochEvents = DefaultEpochEvents
	}
	return s
}

// Validate rejects specs that cannot schedule a timeline.
func (s Spec) Validate() error {
	if s.EpochEvents <= 0 {
		return fmt.Errorf("telemetry: EpochEvents %d must be positive", s.EpochEvents)
	}
	return nil
}

// CoreRow is one core's counter snapshot at an epoch boundary, relative to
// the warmup/measurement boundary (retired instructions and elapsed cycles
// since measurement began).
type CoreRow struct {
	Instructions uint64
	Cycles       uint64
}

// GlobalRow is the machine-wide statistics snapshot taken once per epoch
// boundary, after the last core has crossed it. All four sections reset at
// the warmup/measurement boundary, so the values are measurement-relative
// by construction.
type GlobalRow struct {
	Design  dramcache.Snapshot
	Stacked dram.Stats
	Offchip dram.Stats
	L2      cache.Stats
}

// Epoch is one assembled timeline slice: the counter deltas between two
// consecutive epoch boundaries. Start/EndEvents are per-core measured-event
// offsets; [StartEvents, EndEvents) is the slice every core contributed.
type Epoch struct {
	Index       int
	StartEvents int
	EndEvents   int

	// UIPC is the summed per-core IPC over the epoch — the same estimator
	// Results.UIPC uses for the whole measured region. Instructions is the
	// epoch's total; Cycles the maximum per-core cycle delta.
	UIPC         float64
	Instructions uint64
	Cycles       uint64
	PerCore      []CoreRow

	// DRAM cache design deltas.
	Reads, ReadHits, Writes                        uint64
	WayPredHits, WayPredLookups                    uint64
	TriggerMisses, UnderpredMisses, SingletonSkips uint64
	OffchipReadBytes, OffchipWriteBytes            uint64

	// DRAM controller occupancy: CPU cycles each part's data buses were
	// busy during the epoch.
	StackedBusyCycles, OffchipBusyCycles uint64

	// Shared L2 activity.
	L2Accesses, L2Hits uint64
}

// Recorder accumulates boundary snapshots for one run (or one segment of
// one). The replay engine drives it per step: Due is the one-compare hot
// path, Cross records a core's crossing, Global records the machine-wide
// row once a boundary completes. Cells are sparse — a segment worker only
// fills the boundaries its steps cross — and Absorb unions another
// recorder's cells, so segmented execution merges into the identical
// timeline the serial run records.
type Recorder struct {
	spec  Spec
	cores int
	meas  int

	bounds []int // ascending per-core event offsets; last == meas

	coreRows []CoreRow // [b*cores+c]
	haveCore []bool
	globals  []GlobalRow
	haveGlob []bool

	cursor []int // per core: next boundary index to cross
	next   []int // per core: bounds[cursor[c]], or maxInt when done
	left   []int // per boundary: cores yet to cross it

	emit    func(Epoch)
	emitted int
}

const maxInt = int(^uint(0) >> 1)

// NewRecorder builds a recorder for a measured region of meas events per
// core over the given core count. The spec must be defaulted and valid.
// emit, when non-nil, is invoked with each fully assembled epoch the
// moment its closing boundary completes (serial execution only; segment
// workers record with emit nil and the merged recorder emits).
func NewRecorder(spec Spec, cores, meas int, emit func(Epoch)) *Recorder {
	r := &Recorder{spec: spec, cores: cores, meas: meas, emit: emit}
	if cores <= 0 || meas <= 0 {
		return r
	}
	for end := spec.EpochEvents; end < meas; end += spec.EpochEvents {
		r.bounds = append(r.bounds, end)
	}
	r.bounds = append(r.bounds, meas)
	n := len(r.bounds)
	r.coreRows = make([]CoreRow, n*cores)
	r.haveCore = make([]bool, n*cores)
	r.globals = make([]GlobalRow, n)
	r.haveGlob = make([]bool, n)
	r.cursor = make([]int, cores)
	r.next = make([]int, cores)
	r.left = make([]int, n)
	for c := range r.next {
		r.next[c] = r.bounds[0]
	}
	for b := range r.left {
		r.left[b] = cores
	}
	return r
}

// Bounds returns the epoch boundary offsets (per-core measured events).
func (r *Recorder) Bounds() []int { return r.bounds }

// Sync positions the cursors for a (re)entered execution chunk: consumed
// holds each core's measured events executed so far. Boundaries at or
// below a core's consumed count were crossed before this chunk — by an
// earlier chunk on the same recorder (cursor already past them; no-op) or
// by an earlier segment on a different recorder (skip without recording;
// that segment's recorder owns those cells). Idempotent, and O(cores)
// when no cursor moves: the left counts are rebuilt only after a skip,
// since NewRecorder seeds them and Cross keeps them consistent with the
// cursors through normal execution. Chunked replay calls Sync at every
// chunk entry, so the no-skip path must not scan the boundary table.
func (r *Recorder) Sync(consumed func(c int) int) {
	if len(r.bounds) == 0 {
		return
	}
	moved := false
	for c := 0; c < r.cores; c++ {
		done := consumed(c)
		for r.cursor[c] < len(r.bounds) && r.bounds[r.cursor[c]] <= done {
			r.cursor[c]++
			moved = true
		}
		if r.cursor[c] < len(r.bounds) {
			r.next[c] = r.bounds[r.cursor[c]]
		} else {
			r.next[c] = maxInt
		}
	}
	if !moved {
		return
	}
	for b := range r.left {
		r.left[b] = 0
	}
	for c := 0; c < r.cores; c++ {
		for b := r.cursor[c]; b < len(r.bounds); b++ {
			r.left[b]++
		}
	}
}

// Next returns the measured-event offset of core c's next uncrossed
// boundary (maxInt once the core has crossed them all). The execution
// loop clamps core budgets here so it can run the plain replay loop with
// no per-step telemetry checks at all: a core whose clamped budget runs
// out is standing exactly on its boundary.
func (r *Recorder) Next(c int) int { return r.next[c] }

// Cross records core c's snapshot at every boundary at or below consumed
// (at most one per step, since consumed advances by one). It returns the
// boundary that just completed — every core has crossed it — if any; the
// caller then takes the machine-wide snapshot and calls Global.
func (r *Recorder) Cross(c, consumed int, instr, cycles uint64) (boundary int, complete bool) {
	for r.cursor[c] < len(r.bounds) && r.bounds[r.cursor[c]] <= consumed {
		b := r.cursor[c]
		r.coreRows[b*r.cores+c] = CoreRow{Instructions: instr, Cycles: cycles}
		r.haveCore[b*r.cores+c] = true
		r.cursor[c]++
		if r.left[b]--; r.left[b] == 0 {
			boundary, complete = b, true
		}
	}
	if r.cursor[c] < len(r.bounds) {
		r.next[c] = r.bounds[r.cursor[c]]
	} else {
		r.next[c] = maxInt
	}
	return boundary, complete
}

// Global records the machine-wide statistics row for a completed boundary
// and emits any now-assemblable epochs. Boundaries complete in ascending
// order (the slowest core crosses b before b+1), so live emission is a
// simple in-order drain.
func (r *Recorder) Global(b int, row GlobalRow) {
	r.globals[b] = row
	r.haveGlob[b] = true
	if r.emit == nil {
		return
	}
	for r.emitted < len(r.bounds) && r.haveGlob[r.emitted] && r.rowComplete(r.emitted) {
		r.emit(r.epoch(r.emitted))
		r.emitted++
	}
}

func (r *Recorder) rowComplete(b int) bool {
	for c := 0; c < r.cores; c++ {
		if !r.haveCore[b*r.cores+c] {
			return false
		}
	}
	return true
}

// Absorb unions another recorder's recorded cells into this one. Both must
// describe the same schedule (spec, cores, meas). Segment workers each
// record the boundaries their step ranges cross; absorbing them in any
// order reconstructs the serial recorder's full cell set, because every
// cell value is measurement-relative and therefore identical to what the
// serial run records.
func (r *Recorder) Absorb(o *Recorder) error {
	if o.spec != r.spec || o.cores != r.cores || o.meas != r.meas {
		return fmt.Errorf("telemetry: absorbing mismatched recorder (spec %+v/%d cores/%d meas vs %+v/%d/%d)",
			o.spec, o.cores, o.meas, r.spec, r.cores, r.meas)
	}
	for i, have := range o.haveCore {
		if have {
			r.coreRows[i] = o.coreRows[i]
			r.haveCore[i] = true
		}
	}
	for b, have := range o.haveGlob {
		if have {
			r.globals[b] = o.globals[b]
			r.haveGlob[b] = true
		}
	}
	return nil
}

// Epochs assembles the complete timeline. It fails if any cell was never
// recorded (a segment merge that missed a boundary).
func (r *Recorder) Epochs() ([]Epoch, error) {
	if len(r.bounds) == 0 {
		return nil, nil
	}
	epochs := make([]Epoch, len(r.bounds))
	for b := range r.bounds {
		if !r.haveGlob[b] || !r.rowComplete(b) {
			return nil, fmt.Errorf("telemetry: boundary %d (offset %d) has unrecorded cells", b, r.bounds[b])
		}
		epochs[b] = r.epoch(b)
	}
	return epochs, nil
}

// epoch assembles boundary b's slice from rows b-1 and b (row -1 is the
// measurement boundary itself: all-zero, since every stored value is
// measurement-relative).
func (r *Recorder) epoch(b int) Epoch {
	e := Epoch{Index: b, EndEvents: r.bounds[b], PerCore: make([]CoreRow, r.cores)}
	var prevG GlobalRow
	if b > 0 {
		e.StartEvents = r.bounds[b-1]
		prevG = r.globals[b-1]
	}
	for c := 0; c < r.cores; c++ {
		cur := r.coreRows[b*r.cores+c]
		var prev CoreRow
		if b > 0 {
			prev = r.coreRows[(b-1)*r.cores+c]
		}
		d := CoreRow{Instructions: cur.Instructions - prev.Instructions, Cycles: cur.Cycles - prev.Cycles}
		e.PerCore[c] = d
		e.Instructions += d.Instructions
		if d.Cycles > e.Cycles {
			e.Cycles = d.Cycles
		}
		if d.Cycles > 0 {
			e.UIPC += float64(d.Instructions) / float64(d.Cycles)
		}
	}
	cur := r.globals[b]
	e.Reads = cur.Design.Reads - prevG.Design.Reads
	e.ReadHits = cur.Design.ReadHits - prevG.Design.ReadHits
	e.Writes = cur.Design.Writes - prevG.Design.Writes
	e.TriggerMisses = cur.Design.TriggerMisses - prevG.Design.TriggerMisses
	e.UnderpredMisses = cur.Design.UnderpredMisses - prevG.Design.UnderpredMisses
	e.SingletonSkips = cur.Design.SingletonSkips - prevG.Design.SingletonSkips
	e.OffchipReadBytes = cur.Design.OffchipReadBytes - prevG.Design.OffchipReadBytes
	e.OffchipWriteBytes = cur.Design.OffchipWriteBytes - prevG.Design.OffchipWriteBytes
	e.WayPredHits, e.WayPredLookups = ratioDelta(cur.Design.WP, prevG.Design.WP)
	e.StackedBusyCycles = cur.Stacked.BusBusyCPU - prevG.Stacked.BusBusyCPU
	e.OffchipBusyCycles = cur.Offchip.BusBusyCPU - prevG.Offchip.BusBusyCPU
	e.L2Accesses = cur.L2.Accesses - prevG.L2.Accesses
	e.L2Hits = cur.L2.Hits - prevG.L2.Hits
	return e
}

// ratioDelta subtracts two (possibly nil) predictor ratio snapshots. A nil
// ratio means the design lacks the predictor: zero activity.
func ratioDelta(cur, prev *stats.Ratio) (num, den uint64) {
	if cur == nil {
		return 0, 0
	}
	num, den = cur.Num, cur.Den
	if prev != nil {
		num -= prev.Num
		den -= prev.Den
	}
	return num, den
}

// HitRatio returns the epoch's DRAM-cache demand-read hit fraction, 0 when
// the epoch saw no reads.
func (e Epoch) HitRatio() float64 {
	if e.Reads == 0 {
		return 0
	}
	return float64(e.ReadHits) / float64(e.Reads)
}

// L2HitRatio returns the epoch's shared-L2 hit fraction via the same
// NaN-safe rule as cache.Stats.HitRatio.
func (e Epoch) L2HitRatio() float64 {
	return cache.Stats{Accesses: e.L2Accesses, Hits: e.L2Hits}.HitRatio()
}
