package checkpoint

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestWriterReaderRoundTrip: every primitive survives the codec, and
// Finish enforces exact consumption.
func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("test")
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.String("hello")
	w.U8Slice([]uint8{1, 2, 3})
	w.U64Slice([]uint64{7, 8})
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	r := NewReader(w.Bytes())
	r.Section("test")
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	b := make([]uint8, 3)
	r.U8SliceInto(b)
	if !bytes.Equal(b, []uint8{1, 2, 3}) {
		t.Errorf("U8Slice = %v", b)
	}
	u := make([]uint64, 2)
	r.U64SliceInto(u)
	if u[0] != 7 || u[1] != 8 {
		t.Errorf("U64Slice = %v", u)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}

	// Trailing bytes are an error.
	r2 := NewReader(append(w.Bytes(), 0))
	r2.Section("test")
	if err := r2.Finish(); err == nil {
		t.Error("Finish accepted trailing bytes")
	}
}

// TestReaderRejects: wrong section, bad boolean, geometry mismatch and
// truncation all error without panicking.
func TestReaderRejects(t *testing.T) {
	w := NewWriter()
	w.Section("alpha")
	r := NewReader(w.Bytes())
	r.Section("beta")
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "section") {
		t.Errorf("wrong section not rejected: %v", r.Err())
	}

	r = NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Error("Bool accepted byte 7")
	}

	w = NewWriter()
	w.U8Slice([]uint8{1, 2, 3})
	r = NewReader(w.Bytes())
	dst := make([]uint8, 4)
	r.U8SliceInto(dst)
	if r.Err() == nil {
		t.Error("U8SliceInto accepted a length mismatch")
	}

	r = NewReader([]byte{1, 2})
	r.U64()
	if r.Err() == nil {
		t.Error("truncated U64 not rejected")
	}
	// Errors are sticky: further reads keep returning zero values.
	if r.U32() != 0 || r.U8() != 0 {
		t.Error("reads after failure returned non-zero")
	}
}

// TestSnapshotRoundTrip: the container preserves key and payload exactly
// and its encoding is deterministic.
func TestSnapshotRoundTrip(t *testing.T) {
	payload := []byte("machine state bytes")
	blob := EncodeSnapshot("prefix-abc", 12345, payload)
	if !bytes.Equal(blob, EncodeSnapshot("prefix-abc", 12345, payload)) {
		t.Fatal("snapshot encoding is not deterministic")
	}
	prefix, offset, got, err := ReadSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if prefix != "prefix-abc" || offset != 12345 || !bytes.Equal(got, payload) {
		t.Errorf("round-trip mismatch: %q %d %q", prefix, offset, got)
	}
	// Empty payload and empty prefix are legal.
	if _, _, _, err := ReadSnapshot(EncodeSnapshot("", 0, nil)); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
}

// TestSnapshotRejectsCorruption: every byte flip, every truncation and a
// version skew must error — the property FuzzReadCheckpoint extends to
// arbitrary mutations.
func TestSnapshotRejectsCorruption(t *testing.T) {
	blob := EncodeSnapshot("p", 7, []byte{1, 2, 3, 4})
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, _, _, err := ReadSnapshot(bad); err == nil {
			t.Errorf("flip at byte %d accepted", i)
		}
	}
	for n := 0; n < len(blob); n++ {
		if _, _, _, err := ReadSnapshot(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// A spliced container (two snapshots concatenated) fails the hash.
	if _, _, _, err := ReadSnapshot(append(append([]byte(nil), blob...), blob...)); err == nil {
		t.Error("spliced snapshot accepted")
	}
}

// TestStoreLRU: the byte budget evicts least-recently-used entries, Get
// refreshes recency, and oversized items are not retained.
func TestStoreLRU(t *testing.T) {
	s := NewStore(100)
	s.Put("a", 1, make([]byte, 40))
	s.Put("a", 2, make([]byte, 40))
	if s.Len() != 2 || s.SizeBytes() != 80 {
		t.Fatalf("Len=%d Size=%d", s.Len(), s.SizeBytes())
	}
	// Touch (a,1) so (a,2) is the LRU victim.
	if _, ok := s.Get("a", 1); !ok {
		t.Fatal("missing (a,1)")
	}
	s.Put("a", 3, make([]byte, 40))
	if _, ok := s.Get("a", 2); ok {
		t.Error("(a,2) not evicted")
	}
	if _, ok := s.Get("a", 1); !ok {
		t.Error("(a,1) evicted despite being recently used")
	}
	// Replacement updates the size accounting.
	s.Put("a", 1, make([]byte, 10))
	if s.SizeBytes() != 50 {
		t.Errorf("SizeBytes = %d after replacement, want 50", s.SizeBytes())
	}
	// Oversized item: rejected outright, store untouched.
	s.Put("big", 1, make([]byte, 101))
	if _, ok := s.Get("big", 1); ok {
		t.Error("oversized item retained")
	}
	if got := len(s.Keys()); got != s.Len() {
		t.Errorf("Keys() returned %d keys, Len() %d", got, s.Len())
	}
	s.Reset()
	if s.Len() != 0 || s.SizeBytes() != 0 {
		t.Error("Reset left entries behind")
	}
}

// TestStoreConcurrent exercises the lock under the race detector the way
// segmented execution does: concurrent readers with a writer putting
// corrections.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(1 << 20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Put("p", uint64(i%10), []byte(fmt.Sprint(i)))
		}
	}()
	for i := 0; i < 200; i++ {
		s.Get("p", uint64(i%10))
	}
	<-done
}

// FuzzReadCheckpoint is the decode wall's fuzz face: ReadSnapshot must
// never panic, and any input it accepts must re-encode to exactly the
// bytes it came from — so no corrupted, truncated or version-skewed
// container can ever be silently (mis)restored.
func FuzzReadCheckpoint(f *testing.F) {
	valid := EncodeSnapshot("run-key-prefix", 53332, []byte("payload bytes here"))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])       // truncated trailer
	f.Add(valid[:4])                  // header only
	f.Add([]byte("UCKPgarbage"))      // magic, junk after
	f.Add([]byte("NOPE"))             // wrong magic
	f.Add(EncodeSnapshot("", 0, nil)) // minimal valid
	skew := append([]byte(nil), valid...)
	skew[4] = 99 // version field
	f.Add(skew)

	f.Fuzz(func(t *testing.T, data []byte) {
		prefix, offset, payload, err := ReadSnapshot(data)
		if err != nil {
			return
		}
		if re := EncodeSnapshot(prefix, offset, payload); !bytes.Equal(re, data) {
			t.Errorf("accepted container does not re-encode to itself:\n in: %x\nout: %x", data, re)
		}
	})
}
