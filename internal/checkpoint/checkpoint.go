// Package checkpoint implements versioned, content-addressed snapshots of
// the complete simulated machine state. A snapshot freezes every stateful
// subsystem — SRAM cache arrays, predictor tables, DRAM controller timing
// state, per-core clocks and trace cursors — at a configurable trace offset
// so a later run can resume from it bit-identically. Snapshots are keyed by
// (run-key prefix, global step offset) in an in-memory Store, which is what
// lets related sweep points share warmup and lets time-parallel replay
// split one run into concurrently simulated segments (DESIGN.md §11).
//
// The encoding is a hand-rolled fixed-width little-endian format rather
// than gob or JSON: the bytes must be deterministic (segment merge compares
// snapshots byte-for-byte), versioned, and decodable without ever
// panicking on corrupt input (the fuzz wall's contract).
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Writer serializes machine state into a deterministic byte stream. All
// integer fields are fixed-width little-endian; errors are sticky so
// subsystem SaveState methods need no error plumbing — the caller checks
// Err once after the last section.
type Writer struct {
	buf []byte
	err error
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded payload. Invalid once the Writer is reused.
func (w *Writer) Bytes() []byte { return w.buf }

// Err returns the first error recorded with Fail.
func (w *Writer) Err() error { return w.err }

// Fail records a serialization error; the first one sticks.
func (w *Writer) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a fixed-width 32-bit integer.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a fixed-width 64-bit integer.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes a signed 64-bit integer (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Section writes a named marker delimiting one subsystem's state; the
// Reader validates it, so a snapshot decoded against the wrong subsystem
// order fails fast instead of silently misinterpreting bytes.
func (w *Writer) Section(id string) { w.String(id) }

// U8Slice writes a length-prefixed byte slice.
func (w *Writer) U8Slice(v []uint8) {
	w.U64(uint64(len(v)))
	w.buf = append(w.buf, v...)
}

// U64Slice writes a length-prefixed slice of 64-bit integers.
func (w *Writer) U64Slice(v []uint64) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.U64(x)
	}
}

// Reader decodes a Writer's byte stream. Errors are sticky: after the
// first failure every read returns the zero value, and LoadState methods
// report Err at their end. A Reader never panics on corrupt or truncated
// input — out-of-bounds reads become errors.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader wraps an encoded payload.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error.
func (r *Reader) Err() error { return r.err }

// Fail records a decoding error; the first one sticks.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.pos }

// Finish reports an error if decoding failed or bytes remain unread (a
// snapshot must be consumed exactly).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("checkpoint: %d trailing bytes after final section", len(r.data)-r.pos)
	}
	return nil
}

// take returns the next n bytes, failing on truncation.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.Fail(fmt.Errorf("checkpoint: truncated at byte %d (want %d more)", r.pos, n))
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean, rejecting anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("checkpoint: invalid boolean byte at %d", r.pos-1))
		return false
	}
}

// U32 reads a fixed-width 32-bit integer.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width 64-bit integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	b := r.take(int(n))
	return string(b)
}

// Section validates a subsystem marker written by Writer.Section.
func (r *Reader) Section(id string) {
	got := r.String()
	if r.err == nil && got != id {
		r.Fail(fmt.Errorf("checkpoint: expected section %q, found %q", id, got))
	}
}

// U8SliceInto fills dst from a length-prefixed byte slice, failing if the
// encoded length differs — the geometry check that rejects restoring a
// snapshot into a differently configured structure.
func (r *Reader) U8SliceInto(dst []uint8) {
	n := r.U64()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.Fail(fmt.Errorf("checkpoint: slice length %d does not match structure size %d", n, len(dst)))
		return
	}
	copy(dst, r.take(len(dst)))
}

// U64SliceInto fills dst from a length-prefixed slice of 64-bit integers,
// failing on a length mismatch.
func (r *Reader) U64SliceInto(dst []uint64) {
	n := r.U64()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.Fail(fmt.Errorf("checkpoint: slice length %d does not match structure size %d", n, len(dst)))
		return
	}
	if r.Remaining() < 8*len(dst) {
		r.Fail(fmt.Errorf("checkpoint: truncated slice of %d words", len(dst)))
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// Snapshot container format, version 1:
//
//	magic    4 bytes  "UCKP"
//	version  u32      (1)
//	prefix   u32 length + bytes (run-key prefix the snapshot belongs to)
//	offset   u64      (global step offset the state was captured at)
//	payload  u64 length + bytes (Writer stream of all subsystem sections)
//	sha256  32 bytes  over every preceding byte
//
// The trailing digest makes the container content-addressed: any payload
// corruption — a flipped bit, a truncation, a splice of two snapshots —
// fails the hash check before a single byte reaches a LoadState method.
const (
	// SnapshotVersion is the current container format version.
	SnapshotVersion = 1

	snapshotMagic = "UCKP"
	hashLen       = sha256.Size
	maxPrefixLen  = 4096
)

// EncodeSnapshot wraps an encoded machine payload in the versioned,
// hash-trailed container. The result is deterministic: identical
// (prefix, offset, payload) always produce identical bytes, the property
// the segment-merge fix-up pass compares on.
func EncodeSnapshot(prefix string, offset uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(snapshotMagic)+4+4+len(prefix)+8+8+len(payload)+hashLen)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SnapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(prefix)))
	buf = append(buf, prefix...)
	buf = binary.LittleEndian.AppendUint64(buf, offset)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// ReadSnapshot validates and opens a snapshot container, returning its key
// and payload. Corrupted, truncated or version-skewed input returns an
// error — never a panic, and never a partially decoded snapshot: the hash
// over the full container is checked before anything is returned.
func ReadSnapshot(data []byte) (prefix string, offset uint64, payload []byte, err error) {
	fixed := len(snapshotMagic) + 4 + 4 + 8 + 8 + hashLen
	if len(data) < fixed {
		return "", 0, nil, fmt.Errorf("checkpoint: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return "", 0, nil, fmt.Errorf("checkpoint: not a snapshot (bad magic)")
	}
	body, trailer := data[:len(data)-hashLen], data[len(data)-hashLen:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return "", 0, nil, fmt.Errorf("checkpoint: snapshot hash mismatch (corrupt or truncated)")
	}
	pos := len(snapshotMagic)
	version := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if version != SnapshotVersion {
		return "", 0, nil, fmt.Errorf("checkpoint: unsupported snapshot version %d (have %d)", version, SnapshotVersion)
	}
	prefixLen := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if prefixLen > maxPrefixLen || pos+int(prefixLen)+16 > len(body) {
		return "", 0, nil, fmt.Errorf("checkpoint: corrupt snapshot header (prefix length %d)", prefixLen)
	}
	prefix = string(data[pos : pos+int(prefixLen)])
	pos += int(prefixLen)
	offset = binary.LittleEndian.Uint64(data[pos:])
	pos += 8
	payloadLen := binary.LittleEndian.Uint64(data[pos:])
	pos += 8
	if payloadLen != uint64(len(body)-pos) {
		return "", 0, nil, fmt.Errorf("checkpoint: payload length %d does not match container (%d bytes left)", payloadLen, len(body)-pos)
	}
	return prefix, offset, body[pos:], nil
}

// Key addresses one snapshot in a Store: the run-key prefix (the defaulted
// Run with sampling and segmentation stripped, so related sweep points
// share warmup) and the global step offset the state was captured at.
type Key struct {
	Prefix string
	Offset uint64
}

// Store is a bounded in-memory snapshot cache with LRU eviction by total
// byte size. It is safe for concurrent use — segment workers read from it
// while the fix-up pass writes corrections.
type Store struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	items    map[Key]*storeEntry
	head     *storeEntry // most recently used
	tail     *storeEntry // least recently used
}

type storeEntry struct {
	key        Key
	data       []byte
	prev, next *storeEntry
}

// NewStore creates a store bounded to capBytes of snapshot data.
func NewStore(capBytes int64) *Store {
	return &Store{capBytes: capBytes, items: make(map[Key]*storeEntry)}
}

// Get returns the snapshot stored under (prefix, offset), marking it
// recently used. The returned bytes are shared — callers must not mutate.
func (s *Store) Get(prefix string, offset uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[Key{Prefix: prefix, Offset: offset}]
	if !ok {
		return nil, false
	}
	s.moveToFront(e)
	return e.data, true
}

// Put stores (or replaces) the snapshot under (prefix, offset), evicting
// least-recently-used entries to stay within the byte budget. Snapshots
// larger than the whole budget are not retained.
func (s *Store) Put(prefix string, offset uint64, data []byte) {
	if int64(len(data)) > s.capBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := Key{Prefix: prefix, Offset: offset}
	if e, ok := s.items[k]; ok {
		s.size += int64(len(data)) - int64(len(e.data))
		e.data = data
		s.moveToFront(e)
	} else {
		e := &storeEntry{key: k, data: data}
		s.items[k] = e
		s.size += int64(len(data))
		s.pushFront(e)
	}
	for s.size > s.capBytes && s.tail != nil {
		s.removeLocked(s.tail)
	}
}

// Len returns the number of stored snapshots.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// SizeBytes returns the total stored snapshot bytes.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Keys returns every stored key in unspecified order.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Key, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	return keys
}

// Reset drops every stored snapshot.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[Key]*storeEntry)
	s.head, s.tail = nil, nil
	s.size = 0
}

func (s *Store) pushFront(e *storeEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) moveToFront(e *storeEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *Store) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.head == e {
		s.head = e.next
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) removeLocked(e *storeEntry) {
	s.unlink(e)
	delete(s.items, e.key)
	s.size -= int64(len(e.data))
}
