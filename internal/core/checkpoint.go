package core

import "unisoncache/internal/checkpoint"

// SaveState implements dramcache.Design: it serializes Unison Cache's
// complete mutable state — footprint, singleton and way predictor tables,
// the page table and the design counters — into a checkpoint stream.
// Geometry and configuration are owned by construction; LoadState rejects
// snapshots whose table sizes disagree.
func (d *Unison) SaveState(w *checkpoint.Writer) {
	w.Section("unison")
	d.fp.SaveState(w)
	d.single.SaveState(w)
	d.wp.SaveState(w)
	d.table.SaveState(w)
	w.U64(d.st.reads)
	w.U64(d.st.readHits)
	w.U64(d.st.writes)
	w.U64(d.st.triggerMisses)
	w.U64(d.st.underpredMisses)
	w.U64(d.st.singletonSkips)
	w.U64(d.st.offReadBytes)
	w.U64(d.st.offWriteBytes)
	w.U64(d.st.wayMispredicts)
	w.U64(d.st.hitLatSum)
	w.U64(d.st.missLatSum)
}

// LoadState implements dramcache.Design.
func (d *Unison) LoadState(r *checkpoint.Reader) error {
	r.Section("unison")
	if err := d.fp.LoadState(r); err != nil {
		return err
	}
	if err := d.single.LoadState(r); err != nil {
		return err
	}
	if err := d.wp.LoadState(r); err != nil {
		return err
	}
	if err := d.table.LoadState(r); err != nil {
		return err
	}
	d.st.reads = r.U64()
	d.st.readHits = r.U64()
	d.st.writes = r.U64()
	d.st.triggerMisses = r.U64()
	d.st.underpredMisses = r.U64()
	d.st.singletonSkips = r.U64()
	d.st.offReadBytes = r.U64()
	d.st.offWriteBytes = r.U64()
	d.st.wayMispredicts = r.U64()
	d.st.hitLatSum = r.U64()
	d.st.missLatSum = r.U64()
	return r.Err()
}
