package core

import (
	"bytes"
	"math/rand"
	"testing"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/dramcache"
)

// TestAccessBatchMatchesSerial drives a serial and a batched Unison through
// the same request stream — Access per request on one, AccessBatch in
// random-size batches on the other — and requires bit-identical responses,
// statistics and checkpoint bytes. The stream reuses a small page pool so
// way-predictor training, same-batch page hits and evictions all occur
// inside batches.
func TestAccessBatchMatchesSerial(t *testing.T) {
	build := func() *Unison {
		u, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 4})
		return u
	}
	serial := build()
	batched := build()

	rng := rand.New(rand.NewSource(42))
	const total = 20000
	reqs := make([]dramcache.Request, 0, 64)
	want := make([]dramcache.Response, 64)
	got := make([]dramcache.Response, 64)
	at := uint64(0)
	done := 0
	for done < total {
		n := 1 + rng.Intn(17)
		if done+n > total {
			n = total - done
		}
		reqs = reqs[:0]
		for i := 0; i < n; i++ {
			at += uint64(rng.Intn(200))
			reqs = append(reqs, dramcache.Request{
				Addr:  ucAddr(uint64(rng.Intn(600)), rng.Intn(15)),
				PC:    uint64(rng.Intn(512)) * 4,
				Core:  rng.Intn(4),
				Write: rng.Intn(4) == 0,
				At:    at,
			})
		}
		for i, r := range reqs {
			want[i] = serial.Access(r)
		}
		batched.AccessBatch(reqs, got)
		for i := range reqs {
			if got[i] != want[i] {
				t.Fatalf("request %d of batch at %d: batched %+v != serial %+v",
					i, done, got[i], want[i])
			}
		}
		done += n
		if done == total/2 {
			serial.ResetStats()
			batched.ResetStats()
		}
	}

	s, b := serial.Snapshot(), batched.Snapshot()
	if (s.WP == nil) != (b.WP == nil) || (s.WP != nil && *s.WP != *b.WP) {
		t.Errorf("way-predictor stats diverge: %v vs %v", s.WP, b.WP)
	}
	s.WP, s.FP, s.FO, s.MP = nil, nil, nil, nil
	b.WP, b.FP, b.FO, b.MP = nil, nil, nil, nil
	if s != b {
		t.Errorf("snapshots diverge:\nserial  %+v\nbatched %+v", s, b)
	}
	ws, wb := checkpoint.NewWriter(), checkpoint.NewWriter()
	serial.SaveState(ws)
	batched.SaveState(wb)
	if !bytes.Equal(ws.Bytes(), wb.Bytes()) {
		t.Error("checkpoint bytes diverge after batched run")
	}
}

// TestAccessBatchTrainsWithinBatch pins the same-batch invalidation path:
// two accesses to the same page inside one batch must see the second probe
// re-read the live way-predictor entry the first access trained.
func TestAccessBatchTrainsWithinBatch(t *testing.T) {
	serial, _, _ := std(t)
	batched, _, _ := std(t)

	// Two reads of one page back to back: the first trigger-miss trains the
	// way predictor; serially, the second predicts the now-correct way.
	reqs := []dramcache.Request{
		{Addr: ucAddr(9, 0), PC: 4, At: 0},
		{Addr: ucAddr(9, 1), PC: 4, At: 4000},
	}
	want := make([]dramcache.Response, len(reqs))
	for i, r := range reqs {
		want[i] = serial.Access(r)
	}
	got := make([]dramcache.Response, len(reqs))
	batched.AccessBatch(reqs, got)
	for i := range reqs {
		if got[i] != want[i] {
			t.Errorf("request %d: batched %+v != serial %+v", i, got[i], want[i])
		}
	}
	sw, bw := serial.Snapshot().WP, batched.Snapshot().WP
	if *sw != *bw {
		t.Errorf("way-prediction accuracy diverges: %v vs %v", sw, bw)
	}
}
