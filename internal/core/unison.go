// Package core implements Unison Cache, the paper's contribution: a
// page-based die-stacked DRAM cache whose tags are embedded in the stacked
// DRAM itself (like Alloy Cache) while allocation, fetch and eviction work
// at page-footprint granularity (like Footprint Cache).
//
// The design's four pillars, all modelled here:
//
//  1. In-DRAM tags with overlapped access (§III-A.6): one tag per page at
//     the head of the DRAM row (Figure 3); the tag read and the data-block
//     read are issued back-to-back to the same row, so a hit costs a
//     single row activation plus a 2-CPU-cycle burst overhead for the 32 B
//     of set metadata — the same latency as Alloy Cache's TAD stream, but
//     for a page-based organization.
//  2. Footprint prediction (§III-A.1–3): pages are allocated whole but
//     only the predicted footprint is fetched; underpredictions fetch
//     single blocks; evictions train the predictor with the observed
//     valid/dirty vectors.
//  3. Singleton suppression (§III-A.4): predicted single-block pages
//     bypass allocation entirely, protecting effective capacity.
//  4. Set associativity via way prediction (§III-A.5–6): four ways per
//     set eliminate the page-conflict problem of direct-mapped page
//     caches; a 2-bit-entry, address-hash-indexed way predictor picks the
//     way to stream so neither latency nor bandwidth grows; mispredictions
//     re-read from the (open) row buffer.
//
// Addressing uses the residue-arithmetic divider of internal/mem because
// embedding tags makes the page size a non-power-of-two block count
// (§III-A.7): 15 blocks (960 B) or 31 blocks (1984 B).
package core

import (
	"fmt"
	"math/bits"

	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/mem"
	"unisoncache/internal/predictor"
)

// Config parameterizes a Unison Cache instance.
type Config struct {
	// CapacityBytes is the stacked-DRAM capacity dedicated to the cache
	// (data + embedded tags; the data capacity is what remains after the
	// row metadata of Figure 3).
	CapacityBytes uint64
	// LabelBytes is the nominal design-point capacity used to size the
	// way predictor's hash (§III-A.6: 12-bit up to 4 GB, 16-bit above).
	// Zero means CapacityBytes. It differs from CapacityBytes only under
	// the proportional-scaling methodology (see the facade's Run type).
	LabelBytes uint64
	// PageBlocks is the page size in 64 B blocks; must be 2^n - 1 so the
	// residue unit applies. The evaluated design points are 15 (960 B)
	// and 31 (1984 B).
	PageBlocks int
	// Ways is the set associativity: 1, 4 (the design point) or 32 (the
	// Figure 5 reference).
	Ways int
	// FootprintEntries sizes the history table (default 16 K ≈ 144 KB).
	FootprintEntries int
	// SingletonEntries sizes the singleton table (default 256 ≈ 3 KB).
	SingletonEntries int
	// DisableWayPrediction forces the fetch-all-ways fallback the paper
	// argues against (§V-B ablation): every lookup streams every way.
	DisableWayPrediction bool
	// SerializeTagData forces tag-then-data serialization (the Loh-Hill
	// style lookup Unison's overlapping eliminates); ablation only.
	SerializeTagData bool
	// DisableSingleton turns off singleton bypass (ablation).
	DisableSingleton bool
	// FootprintLookupCycles is the SRAM latency of the footprint history
	// table consulted on trigger misses (fixed, small, and off the hit
	// path; default 2).
	FootprintLookupCycles uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.FootprintEntries == 0 {
		c.FootprintEntries = 16384
	}
	if c.SingletonEntries == 0 {
		c.SingletonEntries = 256
	}
	if c.FootprintLookupCycles == 0 {
		c.FootprintLookupCycles = 2
	}
	if c.LabelBytes == 0 {
		c.LabelBytes = c.CapacityBytes
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.PageBlocks {
	case 15, 31:
	default:
		return fmt.Errorf("core: PageBlocks must be 15 or 31 (2^n-1 for the residue unit), got %d", c.PageBlocks)
	}
	switch c.Ways {
	case 1, 2, 4, 8, 16, 32:
	default:
		return fmt.Errorf("core: Ways must be a power of two in [1,32], got %d", c.Ways)
	}
	if c.CapacityBytes < mem.RowBytes {
		return fmt.Errorf("core: capacity %d below one DRAM row", c.CapacityBytes)
	}
	return nil
}

// Unison is the Unison Cache design. It implements dramcache.Design.
type Unison struct {
	cfg     Config
	stacked *dram.Controller
	offchip *dram.Controller

	fp     *predictor.FootprintPredictor
	single *predictor.SingletonTable
	wp     *predictor.WayPredictor

	table *dramcache.PageTable
	div   *mem.Divider
	geo   mem.PageGeometry

	// rowsPerSet / setsPerRow describe the Figure 3 packing; exactly one
	// of them is > 1 unless both are 1.
	setsPerRow uint64
	rowsPerSet uint64

	// tagBytes is the per-set presence metadata streamed on every lookup
	// (page tags + valid/dirty vectors for all ways).
	tagBytes int
	// tagBurstCPU is the stacked-bus burst time of tagBytes, precomputed
	// because Access needs it on every request.
	tagBurstCPU uint64
	// setShift is log2(setsPerRow) when that is a power of two (every
	// Table II geometry), letting rowOf shift instead of divide; -1
	// otherwise.
	setShift int

	// plan is the reusable AccessBatch scratch; wpStamp/wpGen invalidate
	// way-predictor probes made in a batch's plan phase when an earlier
	// commit in the same batch retrained the probed entry (see commit).
	plan    []unisonPlan
	wpStamp []uint32
	wpGen   uint32

	st unisonStats
}

// unisonPlan is the precomputed, purely address-dependent part of one
// access: the residue page decomposition, set and stacked-row mapping, and
// the way-predictor probe. Everything else — table lookup, promotion,
// predictor training, DRAM timing — depends on the commits of earlier
// requests and stays in commit.
type unisonPlan struct {
	page    uint64
	row     uint64
	set     uint64
	ch      int32
	bank    int32
	predWay int32
	wpIdx   int32
	off     int8
}

// unisonStats extends the shared counters with Unison-specific events.
type unisonStats struct {
	reads           uint64
	readHits        uint64
	writes          uint64
	triggerMisses   uint64
	underpredMisses uint64
	singletonSkips  uint64
	offReadBytes    uint64
	offWriteBytes   uint64
	wayMispredicts  uint64
	hitLatSum       uint64
	missLatSum      uint64
}

// New builds a Unison Cache over the two DRAM parts.
func New(cfg Config, stacked, offchip *dram.Controller) (*Unison, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := mem.UnisonGeometry(cfg.PageBlocks, cfg.Ways)
	rows := cfg.CapacityBytes / mem.RowBytes
	var sets, setsPerRow, rowsPerSet uint64
	if err := geo.Validate(); err == nil && geo.SetsPerRow >= 1 {
		setsPerRow = uint64(geo.SetsPerRow)
		rowsPerSet = 1
		sets = rows * setsPerRow
	} else {
		// Wide sets (e.g. 32-way) span multiple rows; the Figure 5
		// reference point only.
		setBytes := cfg.Ways*geo.PageBytes() + geo.MetadataBytesPerSet
		rowsPerSet = uint64((setBytes + mem.RowBytes - 1) / mem.RowBytes)
		setsPerRow = 1
		sets = rows / rowsPerSet
	}
	if sets == 0 {
		return nil, fmt.Errorf("core: capacity %d yields zero sets", cfg.CapacityBytes)
	}
	table, err := dramcache.NewPageTable(sets, cfg.Ways)
	if err != nil {
		return nil, err
	}
	var n uint
	switch cfg.PageBlocks {
	case 15:
		n = 4
	case 31:
		n = 5
	}
	d := &Unison{
		cfg:        cfg,
		stacked:    stacked,
		offchip:    offchip,
		fp:         predictor.NewFootprintPredictor(cfg.FootprintEntries, cfg.PageBlocks),
		single:     predictor.NewSingletonTable(cfg.SingletonEntries),
		wp:         predictor.NewWayPredictor(predictor.HashBitsFor(cfg.LabelBytes), cfg.Ways),
		table:      table,
		div:        mem.NewDivider(n),
		geo:        geo,
		setsPerRow: setsPerRow,
		rowsPerSet: rowsPerSet,
		tagBytes:   cfg.Ways * 8,
		setShift:   -1,
	}
	d.tagBurstCPU = stacked.Config().BurstCPU(d.tagBytes)
	if rowsPerSet == 1 && setsPerRow&(setsPerRow-1) == 0 {
		d.setShift = bits.TrailingZeros64(setsPerRow)
	}
	d.wpStamp = make([]uint32, d.wp.Entries())
	d.wpGen = 1 // stamps start at 0: nothing is stale yet
	return d, nil
}

// Name implements dramcache.Design.
func (d *Unison) Name() string { return "unison" }

// Geometry returns the row layout (for Table II reporting).
func (d *Unison) Geometry() mem.PageGeometry { return d.geo }

// Sets returns the set count.
func (d *Unison) Sets() uint64 { return d.table.Sets() }

// Predictors exposes the three prediction structures for Table V.
func (d *Unison) Predictors() (*predictor.FootprintPredictor, *predictor.WayPredictor, *predictor.SingletonTable) {
	return d.fp, d.wp, d.single
}

// Table exposes the page table for white-box tests.
func (d *Unison) Table() *dramcache.PageTable { return d.table }

// PageOf decomposes a byte address into (page number, block offset) using
// the residue-arithmetic unit.
func (d *Unison) PageOf(a mem.Addr) (page uint64, off int) {
	q, r := d.div.DivMod(a.Block())
	return q, int(r)
}

// rowOf maps a set index to its stacked-DRAM row location.
func (d *Unison) rowOf(set uint64) (ch, bank int, row uint64) {
	var linear uint64
	switch {
	case d.setShift >= 0:
		linear = set >> d.setShift
	case d.rowsPerSet > 1:
		linear = set * d.rowsPerSet
	default:
		linear = set / d.setsPerRow
	}
	return d.stacked.MapAddr(linear * mem.RowBytes)
}

// lookupBytes is the data streamed by the overlapped tag+data read: the
// set's presence metadata plus the predicted way's block. With 4 ways this
// is 32 B + 64 B — the 32 B of tags cost two bursts on the 128-bit TSV bus,
// i.e. the two CPU cycles of §III-A.6.
func (d *Unison) lookupBytes() int {
	if d.cfg.DisableWayPrediction {
		// Fetch-all-ways fallback: every way streams with the tags.
		return d.tagBytes + d.cfg.Ways*mem.BlockSize
	}
	return d.tagBytes + mem.BlockSize
}

// Access implements dramcache.Design.
func (d *Unison) Access(r dramcache.Request) dramcache.Response {
	var p unisonPlan
	d.planOne(r.Addr, &p)
	return d.commit(r, &p)
}

// AccessBatch implements dramcache.Design: the plan phase runs the pure
// address work — residue divmod, set and row mapping, way-predictor table
// probes — over the whole batch in a tight loop, then the commit phase
// replays the batch in arrival order against page-table, predictor and
// DRAM controller state. Probes a same-batch commit retrained are redone
// from the live table, so results are bit-identical to serial Access.
func (d *Unison) AccessBatch(reqs []dramcache.Request, resps []dramcache.Response) {
	if len(reqs) > cap(d.plan) {
		d.plan = make([]unisonPlan, len(reqs))
	}
	plans := d.plan[:len(reqs)]
	for i := range reqs {
		d.planOne(reqs[i].Addr, &plans[i])
	}
	d.wpGen++
	for i := range reqs {
		resps[i] = d.commit(reqs[i], &plans[i])
	}
}

// planOne computes the address-only plan for one request.
func (d *Unison) planOne(a mem.Addr, p *unisonPlan) {
	page, off := d.PageOf(a)
	set := d.table.SetOf(page)
	ch, bank, row := d.rowOf(set)
	// The way prediction and the residue address mapping both happen
	// off the critical path (overlapped with the L2 access, §III-A.7),
	// so the request reaches the stacked DRAM at r.At.
	idx := d.wp.Index(page)
	*p = unisonPlan{
		page:    page,
		row:     row,
		set:     set,
		ch:      int32(ch),
		bank:    int32(bank),
		predWay: int32(d.wp.PredictIndexed(idx)),
		wpIdx:   int32(idx),
		off:     int8(off),
	}
}

// wpTrain updates the way predictor and stamps the entry so planned
// probes of the same entry later in the current batch know to re-probe.
func (d *Unison) wpTrain(page uint64, way int) {
	idx := d.wp.Index(page)
	d.wp.UpdateIndexed(idx, way)
	d.wpStamp[idx] = d.wpGen
}

// commit services one planned request against live state.
func (d *Unison) commit(r dramcache.Request, pl *unisonPlan) dramcache.Response {
	page, off := pl.page, int(pl.off)
	bit := predictor.Footprint(1) << off
	set := pl.set
	ch, bank, row := int(pl.ch), int(pl.bank), pl.row

	predWay := int(pl.predWay)
	if d.wpStamp[pl.wpIdx] == d.wpGen {
		// An earlier commit in this batch retrained the probed entry; the
		// serial path would have seen the new value, so probe again.
		predWay = d.wp.PredictIndexed(int(pl.wpIdx))
	}

	// Overlapped tag + predicted-way data read: one row activation, one
	// combined burst.
	lookup := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: d.lookupBytes(), At: r.At})
	// The tags arrive at the head of the burst; a miss (or wrong way) is
	// known once the metadata bursts have arrived.
	tagKnown := lookup.DataAt + d.tagBurstCPU
	dataReady := lookup.Done
	if d.cfg.SerializeTagData {
		// Ablation: Loh-Hill-style serialization — data read issues only
		// after the tag read completes.
		second := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, At: tagKnown})
		dataReady = second.Done
	}

	way, present := d.table.Lookup(set, page)
	if present {
		return d.accessPresent(r, page, off, bit, set, way, predWay, tagKnown, dataReady, ch, bank, row)
	}

	// Page miss. The tag read has already told us no way matches, so the
	// off-chip path launches at tagKnown — the "DRAM Tag Lookup" miss
	// latency of Table II.
	if !d.cfg.DisableWayPrediction {
		// No way-prediction outcome to record: the page is absent.
		_ = predWay
	}
	if r.Write {
		// Dirty writeback whose page has been evicted: write through.
		d.st.writes++
		res := d.offchip.Access(uint64(r.Addr), tagKnown, mem.BlockSize, true)
		d.st.offWriteBytes += mem.BlockSize
		return dramcache.Response{DoneAt: res.Done, Hit: false}
	}
	d.st.reads++
	d.st.triggerMisses++
	return d.triggerMiss(r, page, off, set, tagKnown)
}

// accessPresent handles accesses to resident pages: hits, way
// mispredictions and underprediction block misses.
func (d *Unison) accessPresent(r dramcache.Request, page uint64, off int, bit predictor.Footprint, set uint64, way, predWay int, tagKnown, dataReady uint64, ch, bank int, row uint64) dramcache.Response {
	p := d.table.Page(set, way)
	d.table.Promote(set, way)

	wayCorrect := way == predWay
	if !d.cfg.DisableWayPrediction && !d.cfg.SerializeTagData {
		d.wp.Record(wayCorrect)
		d.wpTrain(page, way)
		if !wayCorrect {
			d.st.wayMispredicts++
			// Re-read the correct way. The row was just activated, so
			// this is a cheap row-buffer hit (§III-A.6).
			second := d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, At: tagKnown})
			dataReady = second.Done
		}
	}

	if p.Fetched&bit != 0 {
		p.Touched |= bit
		if r.Write {
			p.Dirty |= bit
			d.st.writes++
			// The block write lands in the open row.
			d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: tagKnown})
			return dramcache.Response{DoneAt: tagKnown, Hit: true}
		}
		d.st.reads++
		d.st.readHits++
		d.st.hitLatSum += dataReady - r.At
		return dramcache.Response{DoneAt: dataReady, Hit: true}
	}

	// Underprediction: resident page, unfetched block (§III-A.3). Fetch
	// only the block; eviction-time training repairs the footprint.
	p.Fetched |= bit
	p.Touched |= bit
	if r.Write {
		p.Dirty |= bit
		d.st.writes++
		d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: tagKnown})
		return dramcache.Response{DoneAt: tagKnown, Hit: false}
	}
	d.st.reads++
	d.st.underpredMisses++
	res := d.offchip.Access(uint64(r.Addr), tagKnown, mem.BlockSize, false)
	d.st.offReadBytes += mem.BlockSize
	// Fill the block into the row. Background operations are issued at
	// the demand access's timestamp: the simulator processes requests in
	// core-clock order, so a future-dated reservation would wrongly block
	// demand reads that a real (reordering) controller serves first; the
	// bandwidth and bank occupancy are what must be charged.
	d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: mem.BlockSize, Write: true, At: r.At})
	d.st.missLatSum += res.Done - r.At
	return dramcache.Response{DoneAt: res.Done, Hit: false}
}

// triggerMiss allocates (or singleton-bypasses) on the first access to an
// uncached page.
func (d *Unison) triggerMiss(r dramcache.Request, page uint64, off int, set uint64, tagKnown uint64) dramcache.Response {
	// Consult the footprint history table (small fixed SRAM latency).
	predictAt := tagKnown + d.cfg.FootprintLookupCycles

	var predicted predictor.Footprint
	if pc0, off0, promoted := d.singleCheck(page); promoted {
		predicted = predictor.Footprint(1)<<off0 | predictor.Footprint(1)<<off
		d.fp.Update(pc0, off0, predicted)
	} else {
		predicted = d.fp.Predict(r.PC, off)
	}

	if !d.cfg.DisableSingleton && mem.PopCount32(predicted) == 1 {
		d.st.singletonSkips++
		d.single.Insert(page, r.PC, off)
		res := d.offchip.Access(uint64(r.Addr), predictAt, mem.BlockSize, false)
		d.st.offReadBytes += mem.BlockSize
		d.st.missLatSum += res.Done - r.At
		return dramcache.Response{DoneAt: res.Done, Hit: false}
	}

	way := d.table.Victim(set)
	p := d.table.Page(set, way)
	if p.Valid {
		d.evict(p, predictAt)
	}

	// Fetch the predicted footprint: critical block first, remainder
	// streamed from the same off-chip row (one activation for ~10 blocks,
	// the §V-D energy argument).
	crit := d.offchip.Access(uint64(r.Addr), predictAt, mem.BlockSize, false)
	k := mem.PopCount32(predicted)
	d.st.offReadBytes += uint64(k) * mem.BlockSize
	if k > 1 {
		// The rest of the footprint streams right behind the critical
		// block (same off-chip row, one activation).
		d.offchip.Access(uint64(d.pageAddr(page)), crit.DataAt, (k-1)*mem.BlockSize, false)
	}

	*p = dramcache.PageState{
		Tag:       page,
		Predicted: predicted,
		Fetched:   predicted,
		Touched:   predictor.Footprint(1) << off,
		PC:        r.PC,
		Off:       int8(off),
		Valid:     true,
	}
	d.table.Promote(set, way)
	d.wpTrain(page, way)

	// Write the footprint and the page's metadata (tag, vectors,
	// PC+offset — Figure 2) into the stacked row, off the critical path
	// (charged at the demand timestamp; see the fill comment above).
	ch, bank, row := d.rowOf(set)
	d.stacked.Do(dram.Request{Channel: ch, Bank: bank, Row: row, Bytes: k*mem.BlockSize + 16, Write: true, At: r.At})
	d.st.missLatSum += crit.Done - r.At
	return dramcache.Response{DoneAt: crit.Done, Hit: false}
}

// singleCheck consults the singleton table unless disabled.
func (d *Unison) singleCheck(page uint64) (pc uint64, off int, ok bool) {
	if d.cfg.DisableSingleton {
		return 0, 0, false
	}
	return d.single.Check(page)
}

// pageAddr returns the byte address of the page's first block in memory.
func (d *Unison) pageAddr(page uint64) mem.Addr {
	return mem.BlockAddr(page * uint64(d.cfg.PageBlocks))
}

// evict retires a page: the (PC, offset) pair and bit vectors read from the
// row train the footprint predictor (§III-A.2); dirty blocks write back at
// footprint granularity.
func (d *Unison) evict(p *dramcache.PageState, at uint64) {
	d.fp.RecordEviction(p.PC, int(p.Off), p.Predicted, p.Touched)
	if n := mem.PopCount32(p.Dirty); n > 0 {
		d.offchip.Access(uint64(d.pageAddr(p.Tag)), at, n*mem.BlockSize, true)
		d.st.offWriteBytes += uint64(n) * mem.BlockSize
	}
	p.Valid = false
}

// Snapshot implements dramcache.Design.
func (d *Unison) Snapshot() dramcache.Snapshot {
	s := dramcache.Snapshot{
		Name:              d.Name(),
		Reads:             d.st.reads,
		ReadHits:          d.st.readHits,
		Writes:            d.st.writes,
		TriggerMisses:     d.st.triggerMisses,
		UnderpredMisses:   d.st.underpredMisses,
		SingletonSkips:    d.st.singletonSkips,
		OffchipReadBytes:  d.st.offReadBytes,
		OffchipWriteBytes: d.st.offWriteBytes,
	}
	fps := d.fp.Stats()
	acc, of := fps.Accuracy, fps.Overfetch
	s.FP = &acc
	s.FO = &of
	if !d.cfg.DisableWayPrediction {
		w := d.wp.Stats().Accuracy
		s.WP = &w
	}
	return s
}

// WayMispredicts returns the misprediction count (ablation reporting).
func (d *Unison) WayMispredicts() uint64 { return d.st.wayMispredicts }

// AvgLatencies returns the mean demand-read hit and miss latencies in CPU
// cycles (including queueing).
func (d *Unison) AvgLatencies() (hit, miss float64) {
	if d.st.readHits > 0 {
		hit = float64(d.st.hitLatSum) / float64(d.st.readHits)
	}
	if m := d.st.reads - d.st.readHits; m > 0 {
		miss = float64(d.st.missLatSum) / float64(m)
	}
	return hit, miss
}

// ResetStats implements dramcache.Design.
func (d *Unison) ResetStats() {
	d.st = unisonStats{}
	d.fp.ResetStats()
	d.wp.ResetStats()
	d.single.ResetStats()
}
