package core

import (
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/mem"
)

func parts(t *testing.T) (stacked, offchip *dram.Controller) {
	t.Helper()
	s, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		t.Fatal(err)
	}
	o, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, o
}

func newUC(t *testing.T, cfg Config) (*Unison, *dram.Controller, *dram.Controller) {
	t.Helper()
	s, o := parts(t)
	u, err := New(cfg, s, o)
	if err != nil {
		t.Fatal(err)
	}
	return u, s, o
}

func std(t *testing.T) (*Unison, *dram.Controller, *dram.Controller) {
	return newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 4})
}

// ucAddr returns the byte address of block off within 960B page p.
func ucAddr(page uint64, off int) mem.Addr {
	return mem.BlockAddr(page*15 + uint64(off))
}

func TestConfigValidation(t *testing.T) {
	s, o := parts(t)
	bad := []Config{
		{CapacityBytes: 1 << 20, PageBlocks: 16, Ways: 4}, // not 2^n-1
		{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 3},
		{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 0},
		{CapacityBytes: 100, PageBlocks: 15, Ways: 4},
		{CapacityBytes: 1 << 20, PageBlocks: 0, Ways: 4},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, s, o); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestGeometryTableII(t *testing.T) {
	u, _, _ := std(t)
	g := u.Geometry()
	if g.DataBlocksPerRow() != 120 {
		t.Errorf("blocks/row = %d, want 120", g.DataBlocksPerRow())
	}
	// 1MB = 128 rows x 2 sets.
	if u.Sets() != 256 {
		t.Errorf("sets = %d, want 256", u.Sets())
	}
}

func TestGeometry1984(t *testing.T) {
	u, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 31, Ways: 4})
	if u.Geometry().DataBlocksPerRow() != 124 {
		t.Errorf("blocks/row = %d, want 124", u.Geometry().DataBlocksPerRow())
	}
	if u.Sets() != 128 {
		t.Errorf("sets = %d, want 128 (one set per row)", u.Sets())
	}
}

func TestGeometry32Way(t *testing.T) {
	// The Figure 5 reference point: 32 ways span multiple rows.
	u, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 32})
	if u.Sets() == 0 {
		t.Fatal("no sets")
	}
	if u.Sets() >= 128 {
		t.Errorf("sets = %d: 32-way sets should span multiple rows", u.Sets())
	}
}

func TestPageOfUsesResidueUnit(t *testing.T) {
	u, _, _ := std(t)
	for _, a := range []uint64{0, 64, 959, 960, 961, 14 * 64, 15 * 64, 1 << 30} {
		page, off := u.PageOf(mem.Addr(a))
		wantPage := (a >> 6) / 15
		wantOff := int((a >> 6) % 15)
		if page != wantPage || off != wantOff {
			t.Errorf("PageOf(%d) = (%d,%d), want (%d,%d)", a, page, off, wantPage, wantOff)
		}
	}
}

func TestTriggerMissFetchesFullPageCold(t *testing.T) {
	u, _, o := std(t)
	r := u.Access(dramcache.Request{Addr: ucAddr(3, 4), PC: 7, At: 0})
	if r.Hit {
		t.Error("cold access hit")
	}
	if got := o.Stats().BytesRead; got != 15*64 {
		t.Errorf("cold trigger fetched %d bytes, want 960", got)
	}
	if u.Snapshot().TriggerMisses != 1 {
		t.Error("trigger miss not counted")
	}
}

func TestSpatialHitsAfterTrigger(t *testing.T) {
	u, _, _ := std(t)
	at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
	for off := 1; off < 15; off++ {
		res := u.Access(dramcache.Request{Addr: ucAddr(3, off), PC: 7, At: at})
		if !res.Hit {
			t.Fatalf("block %d missed after footprint fetch", off)
		}
		at = res.DoneAt
	}
	snap := u.Snapshot()
	if snap.ReadHits != 14 {
		t.Errorf("ReadHits = %d, want 14", snap.ReadHits)
	}
}

// evictSet fills page's set with 4 fresh pages (stride = set count).
func evictSet(u *Unison, page uint64, at uint64) uint64 {
	sets := u.Sets()
	for i := uint64(1); i <= 4; i++ {
		at = u.Access(dramcache.Request{Addr: ucAddr(page+i*sets, 0), PC: 999, At: at}).DoneAt
		at = u.Access(dramcache.Request{Addr: ucAddr(page+i*sets, 1), PC: 999, At: at}).DoneAt
	}
	return at
}

func TestFootprintLearningReducesFetch(t *testing.T) {
	u, _, o := std(t)
	// Visit page 0 with PC 5 touching blocks {0,2}.
	at := u.Access(dramcache.Request{Addr: ucAddr(0, 0), PC: 5, At: 0}).DoneAt
	at = u.Access(dramcache.Request{Addr: ucAddr(0, 2), PC: 5, At: at}).DoneAt
	at = evictSet(u, 0, at)
	// New page triggered by PC 5 at offset 0: fetch only {0,2}.
	before := o.Stats().BytesRead
	u.Access(dramcache.Request{Addr: ucAddr(77, 0), PC: 5, At: at})
	if got := o.Stats().BytesRead - before; got != 2*64 {
		t.Errorf("learned trigger fetched %d bytes, want 128", got)
	}
}

func TestUnderpredictionSingleBlockFetch(t *testing.T) {
	u, _, o := std(t)
	at := u.Access(dramcache.Request{Addr: ucAddr(0, 0), PC: 5, At: 0}).DoneAt
	at = u.Access(dramcache.Request{Addr: ucAddr(0, 2), PC: 5, At: at}).DoneAt
	at = evictSet(u, 0, at)
	at = u.Access(dramcache.Request{Addr: ucAddr(77, 0), PC: 5, At: at}).DoneAt
	// Unpredicted block 9 of the resident page: one-block fetch, counted
	// as an underprediction miss.
	before := o.Stats().BytesRead
	res := u.Access(dramcache.Request{Addr: ucAddr(77, 9), PC: 5, At: at})
	if res.Hit {
		t.Error("unpredicted block hit")
	}
	if got := o.Stats().BytesRead - before; got != 64 {
		t.Errorf("underprediction fetched %d bytes, want 64", got)
	}
	snap := u.Snapshot()
	if snap.UnderpredMisses != 1 {
		t.Errorf("UnderpredMisses = %d, want 1", snap.UnderpredMisses)
	}
	// After eviction, the footprint entry includes block 9: no repeat
	// underprediction (§III-A.3).
	at = res.DoneAt
	at = evictSet(u, 77, at)
	at = u.Access(dramcache.Request{Addr: ucAddr(150, 0), PC: 5, At: at}).DoneAt
	if res := u.Access(dramcache.Request{Addr: ucAddr(150, 9), PC: 5, At: at}); !res.Hit {
		t.Error("footprint not repaired after underprediction eviction")
	}
}

func TestSingletonBypassAndPromotion(t *testing.T) {
	u, _, _ := std(t)
	// Train PC 7 singleton at offset 3.
	at := u.Access(dramcache.Request{Addr: ucAddr(0, 3), PC: 7, At: 0}).DoneAt
	at = evictSet(u, 0, at)
	// Predicted singleton: bypass.
	at = u.Access(dramcache.Request{Addr: ucAddr(50, 3), PC: 7, At: at}).DoneAt
	snap := u.Snapshot()
	if snap.SingletonSkips != 1 {
		t.Fatalf("SingletonSkips = %d, want 1", snap.SingletonSkips)
	}
	if _, ok := u.Table().Lookup(u.Table().SetOf(50), 50); ok {
		t.Error("bypassed page allocated")
	}
	// Second block demanded: promote and allocate.
	u.Access(dramcache.Request{Addr: ucAddr(50, 8), PC: 7, At: at})
	if _, ok := u.Table().Lookup(u.Table().SetOf(50), 50); !ok {
		t.Error("promoted page not allocated")
	}
}

func TestSingletonDisabled(t *testing.T) {
	u, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 4, DisableSingleton: true})
	at := u.Access(dramcache.Request{Addr: ucAddr(0, 3), PC: 7, At: 0}).DoneAt
	at = evictSet(u, 0, at)
	u.Access(dramcache.Request{Addr: ucAddr(50, 3), PC: 7, At: at})
	if u.Snapshot().SingletonSkips != 0 {
		t.Error("singleton bypass fired while disabled")
	}
	if _, ok := u.Table().Lookup(u.Table().SetOf(50), 50); !ok {
		t.Error("page not allocated with singleton disabled")
	}
}

func TestWayPredictionLearnsAndMispredictIsCheap(t *testing.T) {
	u, _, _ := std(t)
	at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
	// First hit trains the way; second hit must be predicted correctly.
	r1 := u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, At: at})
	r2 := u.Access(dramcache.Request{Addr: ucAddr(3, 2), PC: 7, At: r1.DoneAt})
	lat1 := r1.DoneAt - at
	lat2 := r2.DoneAt - r1.DoneAt
	if lat2 > lat1 {
		t.Errorf("predicted-way hit (%d) slower than earlier hit (%d)", lat2, lat1)
	}
	wp := u.Snapshot().WP
	if wp == nil || wp.Den == 0 {
		t.Fatal("way prediction not recorded")
	}
}

func TestWayMispredictPenaltyIsRowBufferHit(t *testing.T) {
	u, s, _ := std(t)
	// Allocate two pages in the same set (ways 0 and 1).
	sets := u.Sets()
	at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
	at = u.Access(dramcache.Request{Addr: ucAddr(3+sets, 0), PC: 7, At: at}).DoneAt
	// Accesses alternating between the two pages force way mispredicts
	// (the predictor entry flips).
	rowHits0 := s.Stats().RowHits
	at = u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, At: at}).DoneAt
	at = u.Access(dramcache.Request{Addr: ucAddr(3+sets, 1), PC: 7, At: at}).DoneAt
	_ = at
	if u.WayMispredicts() == 0 {
		t.Skip("alternation did not mispredict (aliasing)")
	}
	if s.Stats().RowHits == rowHits0 {
		t.Error("way mispredict re-read did not hit the row buffer")
	}
}

func TestFetchAllWaysAblationTraffic(t *testing.T) {
	// §V-B: without way prediction, all ways stream on every hit — 4x hit
	// traffic.
	uPred, sPred, _ := std(t)
	uAll, sAll, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 4, DisableWayPrediction: true})

	run := func(u *Unison) {
		at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
		for off := 1; off < 15; off++ {
			at = u.Access(dramcache.Request{Addr: ucAddr(3, off), PC: 7, At: at}).DoneAt
		}
	}
	run(uPred)
	run(uAll)
	predBytes := sPred.Stats().BytesRead
	allBytes := sAll.Stats().BytesRead
	if allBytes < predBytes*2 {
		t.Errorf("fetch-all-ways read %d stacked bytes vs %d with prediction; expected ~4x", allBytes, predBytes)
	}
	if uAll.Snapshot().WP != nil {
		t.Error("ablation still reports WP stats")
	}
}

func TestSerializedTagDataSlower(t *testing.T) {
	// §III-A: overlapping tag and data reads is the latency win; the
	// serialized ablation must have strictly higher hit latency.
	uFast, _, _ := std(t)
	uSlow, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 4, SerializeTagData: true})
	hitLat := func(u *Unison) uint64 {
		at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
		r := u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, At: at + 1000})
		return r.DoneAt - (at + 1000)
	}
	f, s := hitLat(uFast), hitLat(uSlow)
	if s <= f {
		t.Errorf("serialized hit latency %d <= overlapped %d", s, f)
	}
}

func TestHitLatencyCloseToAlloy(t *testing.T) {
	// The design claim: UC's overlapped tag+data read costs the same as
	// AC's TAD stream within the 2-cycle tag-burst overhead.
	u, _, _ := std(t)
	s2, o2 := parts(t)
	a, err := dramcache.NewAlloy(1<<20, 16, s2, o2)
	if err != nil {
		t.Fatal(err)
	}
	atU := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt + 1000
	rU := u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, At: atU})
	ucLat := rU.DoneAt - atU

	rA0 := a.Access(dramcache.Request{Addr: 4096, PC: 7, At: 0})
	atA := rA0.DoneAt + 1000
	rA := a.Access(dramcache.Request{Addr: 4096, PC: 7, At: atA})
	acLat := rA.DoneAt - atA

	if ucLat > acLat+4 {
		t.Errorf("UC hit latency %d exceeds AC %d by more than the tag burst", ucLat, acLat)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	u, _, o := std(t)
	at := u.Access(dramcache.Request{Addr: ucAddr(0, 0), PC: 5, At: 0}).DoneAt
	at = u.Access(dramcache.Request{Addr: ucAddr(0, 1), PC: 5, Write: true, At: at}).DoneAt
	before := o.Stats().BytesWritten
	evictSet(u, 0, at)
	if got := o.Stats().BytesWritten - before; got != 64 {
		t.Errorf("dirty eviction wrote %d bytes, want 64", got)
	}
}

func TestWriteToAbsentPageWritesThrough(t *testing.T) {
	u, _, o := std(t)
	u.Access(dramcache.Request{Addr: ucAddr(10, 0), PC: 1, Write: true, At: 0})
	if o.Stats().BytesWritten != 64 {
		t.Errorf("write-through bytes = %d", o.Stats().BytesWritten)
	}
	if _, ok := u.Table().Lookup(u.Table().SetOf(10), 10); ok {
		t.Error("write miss allocated")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	u, _, o := std(t)
	at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
	before := o.Stats().BytesWritten
	r := u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, Write: true, At: at})
	if !r.Hit {
		t.Error("write to fetched block missed")
	}
	if o.Stats().BytesWritten != before {
		t.Error("write hit went off-chip")
	}
}

func TestAssociativityReducesConflicts(t *testing.T) {
	// §III-A.5: 4 hot pages mapping to one set thrash a direct-mapped
	// cache but coexist in a 4-way cache.
	u4, _, _ := std(t)
	u1, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 1})

	thrash := func(u *Unison) float64 {
		sets := u.Sets()
		var at uint64
		for round := 0; round < 20; round++ {
			for p := uint64(0); p < 4; p++ {
				at = u.Access(dramcache.Request{Addr: ucAddr(3+p*sets, 0), PC: 7, At: at}).DoneAt
			}
		}
		return u.Snapshot().MissRatioPct()
	}
	m4 := thrash(u4)
	m1 := thrash(u1)
	if m4 >= m1 {
		t.Errorf("4-way miss ratio %.1f%% not below direct-mapped %.1f%%", m4, m1)
	}
	if m4 > 20 {
		t.Errorf("4-way should hold all four hot pages, miss ratio %.1f%%", m4)
	}
}

func TestMissLatencySlowerThanHit(t *testing.T) {
	u, _, _ := std(t)
	miss := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0})
	hit := u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, At: miss.DoneAt + 1000})
	if hit.DoneAt-(miss.DoneAt+1000) >= miss.DoneAt {
		t.Error("hit latency not below miss latency")
	}
}

func TestResetStatsKeepsContent(t *testing.T) {
	u, _, _ := std(t)
	at := u.Access(dramcache.Request{Addr: ucAddr(3, 0), PC: 7, At: 0}).DoneAt
	u.ResetStats()
	if u.Snapshot().Reads != 0 {
		t.Error("ResetStats did not zero")
	}
	if r := u.Access(dramcache.Request{Addr: ucAddr(3, 1), PC: 7, At: at}); !r.Hit {
		t.Error("ResetStats lost page")
	}
}

func TestSnapshotShape(t *testing.T) {
	u, _, _ := std(t)
	s := u.Snapshot()
	if s.Name != "unison" {
		t.Error("name")
	}
	if s.FP == nil || s.FO == nil || s.WP == nil {
		t.Error("missing predictor stats")
	}
	if s.MP != nil {
		t.Error("unison should not report MP")
	}
}

func TestPredictorsAccessor(t *testing.T) {
	u, _, _ := std(t)
	fp, wp, st := u.Predictors()
	if fp == nil || wp == nil || st == nil {
		t.Error("nil predictor")
	}
}

func TestCapacityScalingSets(t *testing.T) {
	u1, _, _ := newUC(t, Config{CapacityBytes: 1 << 20, PageBlocks: 15, Ways: 4})
	u8, _, _ := newUC(t, Config{CapacityBytes: 8 << 20, PageBlocks: 15, Ways: 4})
	if u8.Sets() != 8*u1.Sets() {
		t.Errorf("sets not linear in capacity: %d vs %d", u1.Sets(), u8.Sets())
	}
}
