package mem

import "fmt"

// PageGeometry captures how a page-based DRAM cache carves a DRAM row into
// sets, ways, data blocks and embedded metadata. It is pure arithmetic —
// the structures in internal/core and internal/dramcache are built from it,
// and cmd/experiments prints Table II from it.
type PageGeometry struct {
	// PageBlocks is the number of 64 B data blocks per page (15 for 960 B
	// pages, 31 for 1984 B, 32 for Footprint Cache's 2 KB pages).
	PageBlocks int
	// Ways is the set associativity.
	Ways int
	// SetsPerRow is how many complete sets fit in one 8 KB DRAM row.
	SetsPerRow int
	// MetadataBytesPerSet is the in-row metadata footprint of one set
	// (page tags, valid/dirty bit vectors, LRU bits, PC+offset pairs).
	MetadataBytesPerSet int
}

// PageBytes returns the data capacity of one page.
func (g PageGeometry) PageBytes() int { return g.PageBlocks * BlockSize }

// DataBlocksPerRow returns the number of 64 B data blocks stored in one
// DRAM row (the "64B Blocks per 8KB Row" line of Table II).
func (g PageGeometry) DataBlocksPerRow() int {
	return g.PageBlocks * g.Ways * g.SetsPerRow
}

// RowUtilization returns the fraction of an 8 KB row holding data blocks.
func (g PageGeometry) RowUtilization() float64 {
	return float64(g.DataBlocksPerRow()*BlockSize) / float64(RowBytes)
}

// MetadataFraction returns the fraction of the stacked DRAM spent on
// embedded tags/metadata (the "In-DRAM Tag Size" line of Table II).
func (g PageGeometry) MetadataFraction() float64 {
	return 1 - g.RowUtilization()
}

// Validate checks that the layout actually fits in a DRAM row.
func (g PageGeometry) Validate() error {
	used := g.SetsPerRow * (g.Ways*g.PageBytes() + g.MetadataBytesPerSet)
	if used > RowBytes {
		return fmt.Errorf("mem: geometry overflows row: %d bytes in a %d byte row", used, RowBytes)
	}
	if g.PageBlocks <= 0 || g.Ways <= 0 || g.SetsPerRow <= 0 {
		return fmt.Errorf("mem: geometry fields must be positive: %+v", g)
	}
	return nil
}

// UnisonGeometry returns the row layout of the paper's Figure 3 for the
// given page size and associativity.
//
// Per-page metadata (paper §III-A.6 and Figure 2/3): a page tag with valid
// bit (~4 B), a valid bit vector and a dirty bit vector (PageBlocks bits
// each), the triggering PC+offset pair (~4 B compressed), plus shared LRU
// bits per set. For 960 B pages with 4 ways this comes to 32 B of
// presence-critical metadata per set — two bursts on the 128-bit TSV bus,
// i.e. the two CPU cycles of tag-read overhead the paper quotes — plus a
// second metadata region holding the PC+offset pairs read only on eviction.
func UnisonGeometry(pageBlocks, ways int) PageGeometry {
	// Presence metadata (tags + bit vectors) and eviction metadata
	// (PC+offset, LRU) per set, rounded to an 8 B DRAM word per page as
	// in Figure 2.
	meta := ways*16 + 8 // 16 B per way (tag + V/D vectors + PC/offset), 8 B LRU/padding
	g := PageGeometry{PageBlocks: pageBlocks, Ways: ways, SetsPerRow: 1, MetadataBytesPerSet: meta}
	// Pack as many complete sets into the row as fit.
	for fits := 2; ; fits++ {
		trial := g
		trial.SetsPerRow = fits
		if trial.Validate() != nil {
			break
		}
		g = trial
	}
	return g
}

// AlloyGeometry returns the Alloy Cache layout: 72 B tag-and-data units
// (TADs), 112 per 8 KB row (Table II).
func AlloyGeometry() PageGeometry {
	return PageGeometry{PageBlocks: 1, Ways: 1, SetsPerRow: RowBytes / 72, MetadataBytesPerSet: 8}
}

// FootprintGeometry returns the Footprint Cache layout: tags in SRAM, so a
// row is pure data — four 2 KB pages, 128 blocks per row (Table II).
func FootprintGeometry() PageGeometry {
	return PageGeometry{PageBlocks: 32, Ways: 32, SetsPerRow: 0, MetadataBytesPerSet: 0}
}

// SRAMTagBytes estimates the SRAM tag array size for a page-based cache of
// the given capacity with off-DRAM tags (the scaling argument of §II-B and
// Table IV). Per-page cost covers tag, valid/dirty vectors, footprint
// metadata and replacement state.
func SRAMTagBytes(cacheBytes uint64, pageBytes, bytesPerPageTag int) uint64 {
	pages := cacheBytes / uint64(pageBytes)
	return pages * uint64(bytesPerPageTag)
}
