package mem

import "testing"

func TestUnisonGeometry960(t *testing.T) {
	g := UnisonGeometry(15, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SetsPerRow != 2 {
		t.Errorf("SetsPerRow = %d, want 2 (Figure 3: one 8KB row holds two 4-way sets of 960B pages)", g.SetsPerRow)
	}
	if got := g.DataBlocksPerRow(); got != 120 {
		t.Errorf("DataBlocksPerRow = %d, want 120 (Table II)", got)
	}
	if g.PageBytes() != 960 {
		t.Errorf("PageBytes = %d, want 960", g.PageBytes())
	}
}

func TestUnisonGeometry1984(t *testing.T) {
	g := UnisonGeometry(31, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SetsPerRow != 1 {
		t.Errorf("SetsPerRow = %d, want 1 (4 x 1984B pages fill a row)", g.SetsPerRow)
	}
	if got := g.DataBlocksPerRow(); got != 124 {
		t.Errorf("DataBlocksPerRow = %d, want 124 (Table II: 120-124)", got)
	}
}

func TestUnisonGeometryDirectMapped(t *testing.T) {
	g := UnisonGeometry(15, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.DataBlocksPerRow() < 100 {
		t.Errorf("direct-mapped 960B layout too sparse: %d blocks/row", g.DataBlocksPerRow())
	}
}

func TestAlloyGeometry(t *testing.T) {
	g := AlloyGeometry()
	if got := g.SetsPerRow; got != 113 { // 8192/72 = 113.7 -> 113; the paper rounds to 112 after row alignment
		if got != 112 {
			t.Errorf("Alloy TADs per row = %d, want ~112 (Table II)", got)
		}
	}
	if g.DataBlocksPerRow() < 110 || g.DataBlocksPerRow() > 114 {
		t.Errorf("Alloy DataBlocksPerRow = %d, want ~112", g.DataBlocksPerRow())
	}
}

func TestFootprintGeometry(t *testing.T) {
	g := FootprintGeometry()
	if g.PageBytes() != 2048 {
		t.Errorf("FC page = %d bytes, want 2048", g.PageBytes())
	}
}

func TestMetadataFractionTable2(t *testing.T) {
	// Table II: Unison's in-DRAM tag overhead is 3.1-6.2% of DRAM.
	for _, tc := range []struct {
		blocks int
		maxPct float64
	}{{31, 4.0}, {15, 7.0}} {
		g := UnisonGeometry(tc.blocks, 4)
		pct := g.MetadataFraction() * 100
		if pct <= 0 || pct > tc.maxPct {
			t.Errorf("UnisonGeometry(%d,4) metadata = %.1f%%, want (0, %.1f]", tc.blocks, pct, tc.maxPct)
		}
	}
}

func TestValidateRejectsOverflow(t *testing.T) {
	g := PageGeometry{PageBlocks: 64, Ways: 4, SetsPerRow: 2, MetadataBytesPerSet: 0}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a layout larger than a row")
	}
	g = PageGeometry{PageBlocks: 0, Ways: 1, SetsPerRow: 1}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted zero PageBlocks")
	}
}

func TestSRAMTagBytesScaling(t *testing.T) {
	// §II-B / Table II: an 8GB Footprint Cache needs ~50MB of SRAM tags.
	got := SRAMTagBytes(8<<30, 2048, 12)
	if got < 45<<20 || got > 55<<20 {
		t.Errorf("SRAMTagBytes(8GB, 2KB pages) = %d MB, want ~50MB", got>>20)
	}
	// And tags scale linearly with capacity.
	if 2*SRAMTagBytes(1<<30, 2048, 12) != SRAMTagBytes(2<<30, 2048, 12) {
		t.Error("SRAM tag size is not linear in capacity")
	}
}
