package mem

import "testing"

func TestConflictProbabilityBasics(t *testing.T) {
	if ConflictProbability(0, 1, 10) != 0 {
		t.Error("empty cache")
	}
	if ConflictProbability(1024, 1, 1) != 0 {
		t.Error("single hot block cannot conflict")
	}
	if ConflictProbability(1024, 0, 10) != 0 {
		t.Error("zero unit size")
	}
	// More hot blocks -> more conflicts.
	small := ConflictProbability(1<<24, 1, 1000)
	large := ConflictProbability(1<<24, 1, 100000)
	if large <= small {
		t.Errorf("conflict probability not increasing in hot set: %v vs %v", small, large)
	}
	// Capped at 1.
	if p := ConflictProbability(64, 1, 1<<20); p > 1 {
		t.Errorf("probability %v > 1", p)
	}
}

func TestConflictRatioGrowsQuadratically(t *testing.T) {
	// §III-A.5: "the probability of conflicts grows quadratically with the
	// page size". Doubling the page size should ~4x the ratio.
	cacheBlocks := uint64(1 << 30 / 64) // 1GB
	hot := uint64(10_000)               // small enough that the cap does not saturate
	r16 := ConflictRatio(cacheBlocks, 16, hot)
	r32 := ConflictRatio(cacheBlocks, 32, hot)
	if r32 < 3*r16 || r32 > 5*r16 {
		t.Errorf("ratio growth %v -> %v not ~quadratic", r16, r32)
	}
}

func TestConflictRatioPaperMagnitude(t *testing.T) {
	// §III-A.5: for a 1GB cache and 2KB pages the conflict probability
	// grows by a factor of ~500 in the worst case versus block-grain.
	// The birthday model gives the page-size-squared scaling over the
	// shared set space; accept the right order of magnitude.
	ratio := ConflictRatio(1<<30/64, 32, 20_000)
	if ratio < 300 || ratio > 2000 {
		t.Errorf("1GB/2KB conflict ratio = %v, want ~P^2=1024 (paper: ~500, same order)", ratio)
	}
}
