// Package mem provides the address arithmetic shared by every component of
// the simulator: block/page geometry, the access record exchanged between
// pipeline stages, and the residue-arithmetic unit that Unison Cache uses to
// divide physical addresses by non-power-of-two page sizes (paper §III-A.7).
package mem

// Fundamental geometry constants shared across the memory hierarchy
// (Table III of the paper).
const (
	// BlockBits is log2 of the cache block size.
	BlockBits = 6
	// BlockSize is the cache block (line) size in bytes used at every
	// level of the hierarchy.
	BlockSize = 1 << BlockBits
	// RowBytes is the DRAM row-buffer size for both the stacked and the
	// off-chip parts (8 KB per Table III).
	RowBytes = 8 * 1024
	// RowBlocks is the number of 64 B blocks a DRAM row can hold if no
	// space is reserved for metadata.
	RowBlocks = RowBytes / BlockSize
)

// Addr is a physical byte address.
type Addr uint64

// Block returns the block number (address / 64).
func (a Addr) Block() uint64 { return uint64(a) >> BlockBits }

// BlockAligned returns the address truncated to the start of its block.
func (a Addr) BlockAligned() Addr { return a &^ (BlockSize - 1) }

// BlockAddr converts a block number back to the byte address of its first
// byte.
func BlockAddr(block uint64) Addr { return Addr(block << BlockBits) }

// Access is a single memory reference as produced by the workload generator
// and consumed by the cache hierarchy.
type Access struct {
	// Addr is the physical byte address referenced.
	Addr Addr
	// PC identifies the instruction performing the access; the footprint
	// and miss predictors key on it.
	PC uint64
	// Core is the index of the issuing core.
	Core uint8
	// Write is true for stores.
	Write bool
}

// BlockOfPage returns the index of the block containing a within a page of
// pageBlocks 64-byte blocks, along with the page number. pageBlocks need not
// be a power of two; callers on hot paths with pageBlocks of the form 2^n-1
// should use a Divider instead.
func BlockOfPage(a Addr, pageBlocks uint64) (page, block uint64) {
	b := a.Block()
	return b / pageBlocks, b % pageBlocks
}
