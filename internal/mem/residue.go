package mem

import "math/bits"

// This file implements the specialized address-manipulation logic the paper
// calls for in §III-A.7: embedding tags in DRAM makes the Unison Cache page
// size a non-power-of-two number of blocks (15 for 960 B pages, 31 for
// 1984 B pages), so locating a page requires dividing a block address by
// 2^n-1. A general divider would be too slow in hardware; the paper notes
// the modulo with respect to a constant of the form 2^n-1 can be computed
// with a few adders using residue arithmetic. We implement exactly that
// fold-and-add reduction, and recover the exact quotient by multiplying the
// remainder-corrected value with the modular inverse of the divisor, which
// in hardware is a constant multiplier (and in Go a single MUL).

// MersenneMod returns x mod (2^n - 1) for 1 <= n <= 32 using the residue
// fold: the base-2^n digits of x are summed, and the sum is reduced again
// until it fits in n bits. This mirrors the adder tree a hardware
// implementation would use.
func MersenneMod(x uint64, n uint) uint64 {
	m := uint64(1)<<n - 1
	if m == 0 {
		return 0
	}
	// Each fold halves (at most) the number of significant digits; for a
	// 64-bit input and n >= 1 a handful of iterations always suffices.
	for x > m {
		sum := uint64(0)
		for v := x; v > 0; v >>= n {
			sum += v & m
		}
		x = sum
	}
	// The fold computes values in [0, 2^n-1] where 2^n-1 ≡ 0.
	if x == m {
		return 0
	}
	return x
}

// Divider performs exact division and modulo by a fixed divisor of the form
// 2^n - 1. It is the software model of the paper's residue-arithmetic
// address-mapping unit: Mod is an adder tree, Div is one constant multiply.
// The zero value is not usable; construct with NewDivider.
type Divider struct {
	n   uint   // divisor is 2^n - 1
	d   uint64 // the divisor itself
	inv uint64 // multiplicative inverse of d modulo 2^64
}

// NewDivider returns a Divider for the divisor 2^n - 1. It panics if n is
// outside [2, 32]; the simulator only ever uses 15 (n=4) and 31 (n=5), but
// the full range keeps the unit reusable and testable.
func NewDivider(n uint) *Divider {
	if n < 2 || n > 32 {
		panic("mem: Divider modulus must be 2^n-1 with 2 <= n <= 32")
	}
	d := uint64(1)<<n - 1
	return &Divider{n: n, d: d, inv: modInverse64(d)}
}

// Divisor returns the constant this Divider divides by.
func (dv *Divider) Divisor() uint64 { return dv.d }

// Mod returns x mod (2^n - 1).
func (dv *Divider) Mod(x uint64) uint64 { return MersenneMod(x, dv.n) }

// Div returns x / (2^n - 1), exact for any x. x - Mod(x) is divisible by
// the divisor, so multiplying by the modular inverse of the divisor mod 2^64
// yields the true quotient.
func (dv *Divider) Div(x uint64) uint64 {
	return (x - dv.Mod(x)) * dv.inv
}

// DivMod returns the quotient and remainder of x by 2^n - 1.
func (dv *Divider) DivMod(x uint64) (q, r uint64) {
	r = dv.Mod(x)
	return (x - r) * dv.inv, r
}

// modInverse64 computes the multiplicative inverse of odd d modulo 2^64
// using Newton-Raphson iteration; five steps double the valid bits from 5
// to 80 > 64.
func modInverse64(d uint64) uint64 {
	if d&1 == 0 {
		panic("mem: modular inverse requires an odd divisor")
	}
	x := d // 3+ bits correct: d*d ≡ 1 (mod 8) for odd d ⇒ x=d is inverse mod 8... start refined below
	x *= 2 - d*x
	x *= 2 - d*x
	x *= 2 - d*x
	x *= 2 - d*x
	x *= 2 - d*x
	if d*x != 1 {
		// Unreachable for odd d; kept as an invariant check because the
		// cache indexes every access through this unit.
		panic("mem: modular inverse iteration failed to converge")
	}
	return x
}

// XORFoldHash reduces a value to `bits` bits by XOR-folding, the hash the
// paper's way predictor uses ("a 2-bit array directly indexed by the 12-bit
// XOR hash of the page address", §III-A.6).
func XORFoldHash(x uint64, nbits uint) uint64 {
	if nbits == 0 || nbits >= 64 {
		return x
	}
	mask := uint64(1)<<nbits - 1
	h := uint64(0)
	for ; x > 0; x >>= nbits {
		h ^= x & mask
	}
	return h
}

// Mix64 is a splitmix64 finalizer used wherever the simulator needs a
// high-quality deterministic hash (predictor table indexing, synthetic
// pattern derivation). It is a bijection on 64-bit values.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PopCount32 counts set bits in a 32-bit footprint vector.
func PopCount32(v uint32) int { return bits.OnesCount32(v) }
