package mem

// This file is the analytical conflict model of §III-A.5, which the paper
// mentions but omits "for space reasons": why direct-mapped organization is
// catastrophically worse for page-based caches than for block-based ones.
//
// In a block-based direct-mapped cache, two hot blocks conflict only if
// they map to the same set. In a page-based one, two hot blocks conflict
// already when *their pages* share a set — the "false conflict" the paper
// likens to false sharing. Organizing a cache of B blocks in units of P
// blocks shrinks the set count by P (so any unit pair collides P times more
// often) and each collision endangers a P-block unit rather than one block.
// In the worst case — hot blocks spread across distinct pages — the
// expected conflicts per hot block grow by P², which for 2 KB pages (P=32)
// is the "factor of ~500" (order of magnitude) the paper quotes for a 1 GB
// cache. Four-way associativity is what buys this back (Figure 5).

// ConflictProbability returns the expected number of direct-mapped
// conflicts a single hot block suffers (capped at 1), for a cache of
// cacheBlocks 64 B blocks organized in units of unitBlocks, with hotBlocks
// concurrently live blocks spread across distinct units (the worst case of
// §III-A.5). Birthday approximation: each of the other hot units collides
// with this block's unit with probability unit/cache-units⁻¹·... —
// concretely (hot-1) · unitBlocks² / (2 · cacheBlocks).
func ConflictProbability(cacheBlocks, unitBlocks, hotBlocks uint64) float64 {
	if cacheBlocks == 0 || unitBlocks == 0 || hotBlocks < 2 {
		return 0
	}
	sets := cacheBlocks / unitBlocks
	if sets == 0 {
		return 1
	}
	// (hot-1) other units, each sharing this block's set with probability
	// 1/sets; every collision endangers the whole unit, i.e. is unitBlocks
	// times more damaging than a block-grain collision. The /2 accounts
	// for each collision being shared by the pair.
	expected := float64(hotBlocks-1) / float64(sets) * float64(unitBlocks) / 2
	if expected > 1 {
		return 1
	}
	return expected
}

// ConflictRatio returns how many times more likely page conflicts are than
// block conflicts for the same cache size and hot set — the §III-A.5
// quantity that grows quadratically with the page size.
func ConflictRatio(cacheBlocks, pageBlocks, hotBlocks uint64) float64 {
	pb := ConflictProbability(cacheBlocks, 1, hotBlocks)
	pp := ConflictProbability(cacheBlocks, pageBlocks, hotBlocks)
	if pb == 0 {
		return 0
	}
	return pp / pb
}
