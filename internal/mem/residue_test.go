package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMersenneModSmall(t *testing.T) {
	cases := []struct {
		x    uint64
		n    uint
		want uint64
	}{
		{0, 4, 0},
		{14, 4, 14},
		{15, 4, 0},
		{16, 4, 1},
		{30, 4, 0},
		{31, 4, 1},
		{225, 4, 0},
		{226, 4, 1},
		{30, 5, 30},
		{31, 5, 0},
		{62, 5, 0},
		{63, 5, 1},
		{961, 5, 0},
		{math.MaxUint64, 4, math.MaxUint64 % 15},
		{math.MaxUint64, 5, math.MaxUint64 % 31},
		{math.MaxUint64, 32, math.MaxUint64 % ((1 << 32) - 1)},
	}
	for _, c := range cases {
		if got := MersenneMod(c.x, c.n); got != c.want {
			t.Errorf("MersenneMod(%d, %d) = %d, want %d", c.x, c.n, got, c.want)
		}
	}
}

func TestMersenneModMatchesOperator(t *testing.T) {
	for _, n := range []uint{2, 3, 4, 5, 7, 11, 13, 16, 31, 32} {
		m := uint64(1)<<n - 1
		f := func(x uint64) bool { return MersenneMod(x, n) == x%m }
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestDividerDivMod(t *testing.T) {
	for _, n := range []uint{2, 4, 5, 6, 8, 12, 20, 32} {
		dv := NewDivider(n)
		d := dv.Divisor()
		if d != uint64(1)<<n-1 {
			t.Fatalf("Divisor() = %d, want %d", d, uint64(1)<<n-1)
		}
		f := func(x uint64) bool {
			q, r := dv.DivMod(x)
			return q == x/d && r == x%d
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestDividerReconstruction(t *testing.T) {
	// q*d + r must reconstruct x exactly: the address-mapping identity the
	// cache depends on.
	dv := NewDivider(4)
	f := func(x uint64) bool {
		q, r := dv.DivMod(x)
		return q*dv.Divisor()+r == x && r < dv.Divisor()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestNewDividerPanics(t *testing.T) {
	for _, n := range []uint{0, 1, 33, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDivider(%d) did not panic", n)
				}
			}()
			NewDivider(n)
		}()
	}
}

func TestModInverse64(t *testing.T) {
	for _, d := range []uint64{1, 3, 15, 31, 255, 4095, 0xFFFFFFFF, 12345677} {
		if d&1 == 0 {
			continue
		}
		inv := modInverse64(d)
		if d*inv != 1 {
			t.Errorf("modInverse64(%d): d*inv = %d, want 1", d, d*inv)
		}
	}
}

func TestModInverseEvenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("modInverse64(4) did not panic")
		}
	}()
	modInverse64(4)
}

func TestXORFoldHash(t *testing.T) {
	if got := XORFoldHash(0, 12); got != 0 {
		t.Errorf("XORFoldHash(0,12) = %d, want 0", got)
	}
	if got := XORFoldHash(0xFFF, 12); got != 0xFFF {
		t.Errorf("XORFoldHash(0xFFF,12) = %#x, want 0xFFF", got)
	}
	// Folding two identical 12-bit chunks cancels to zero.
	if got := XORFoldHash(0xABC<<12|0xABC, 12); got != 0 {
		t.Errorf("XORFoldHash(dup,12) = %#x, want 0", got)
	}
	f := func(x uint64) bool { return XORFoldHash(x, 12) < 1<<12 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity over a dense small range.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func BenchmarkDividerDivMod15(b *testing.B) {
	dv := NewDivider(4)
	var sink uint64
	for i := 0; i < b.N; i++ {
		q, r := dv.DivMod(uint64(i) * 0x9e3779b9)
		sink += q + r
	}
	_ = sink
}
