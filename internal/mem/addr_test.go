package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrBlock(t *testing.T) {
	cases := []struct {
		a    Addr
		want uint64
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{128, 2},
		{8191, 127},
	}
	for _, c := range cases {
		if got := c.a.Block(); got != c.want {
			t.Errorf("Addr(%d).Block() = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestBlockAligned(t *testing.T) {
	f := func(a uint64) bool {
		al := Addr(a).BlockAligned()
		return uint64(al)%BlockSize == 0 && uint64(al) <= a && a-uint64(al) < BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	f := func(b uint64) bool {
		b &= (1 << 58) - 1 // keep the shift in range
		return BlockAddr(b).Block() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockOfPage(t *testing.T) {
	// 960 B page = 15 blocks.
	page, block := BlockOfPage(Addr(960), 15)
	if page != 1 || block != 0 {
		t.Errorf("BlockOfPage(960,15) = (%d,%d), want (1,0)", page, block)
	}
	page, block = BlockOfPage(Addr(959), 15)
	if page != 0 || block != 14 {
		t.Errorf("BlockOfPage(959,15) = (%d,%d), want (0,14)", page, block)
	}
}

func TestBlockOfPageMatchesDivider(t *testing.T) {
	dv := NewDivider(4)
	f := func(a uint64) bool {
		p1, b1 := BlockOfPage(Addr(a), 15)
		p2, b2 := dv.DivMod(Addr(a).Block())
		return p1 == p2 && b1 == b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
