// Package stats provides the light-weight counters, ratios, histograms and
// confidence-interval helpers the simulator and the experiment harness use
// to report results. Everything is plain in-memory arithmetic; there is no
// locking because each simulated core owns its own counters and the engine
// aggregates them single-threaded.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ratio is a numerator/denominator pair, the workhorse for hit ratios,
// predictor accuracies and overfetch fractions.
type Ratio struct {
	Num, Den uint64
}

// Add accumulates one observation: hit says whether the numerator event
// occurred.
func (r *Ratio) Add(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// AddN accumulates num events out of den trials.
func (r *Ratio) AddN(num, den uint64) {
	r.Num += num
	r.Den += den
}

// Value returns the ratio, or 0 if nothing was recorded.
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Percent returns the ratio scaled to percent.
func (r Ratio) Percent() float64 { return r.Value() * 100 }

// Complement returns 1 - Value as a percentage (e.g. miss ratio from hits).
func (r Ratio) ComplementPercent() float64 {
	if r.Den == 0 {
		return 0
	}
	return 100 - r.Percent()
}

// Merge folds other into r.
func (r *Ratio) Merge(other Ratio) {
	r.Num += other.Num
	r.Den += other.Den
}

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Num, r.Den, r.Percent())
}

// Mean accumulates a running mean/variance using Welford's algorithm.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one sample.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the sample count.
func (m Mean) N() uint64 { return m.n }

// Value returns the mean.
func (m Mean) Value() float64 { return m.mean }

// Variance returns the sample variance.
func (m Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (the SimFlex-style error bound the paper
// quotes: "average error of less than 2% at a 95% confidence level").
func (m Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.StdDev() / math.Sqrt(float64(m.n))
}

// CI returns the half-width of the confidence interval of the mean at the
// given two-sided confidence level (e.g. 0.95), using the Student t
// quantile for the sample count — the small-n-honest version of CI95 the
// sampled-simulation subsystem stops on. Fewer than two samples carry no
// variance information, so the half-width is 0 by convention; callers that
// gate on "CI tight enough" must also require a minimum sample count.
func (m Mean) CI(confidence float64) float64 {
	if m.n < 2 {
		return 0
	}
	t := TQuantile(1-(1-confidence)/2, int(m.n)-1)
	return t * m.StdDev() / math.Sqrt(float64(m.n))
}

// RelCI returns CI(confidence) relative to the absolute mean — the
// "±2% at 95%" form sampling targets are stated in. A zero mean with
// nonzero spread has no meaningful relative width and reports +Inf.
func (m Mean) RelCI(confidence float64) float64 {
	hw := m.CI(confidence)
	if hw == 0 {
		return 0
	}
	if m.mean == 0 {
		return math.Inf(1)
	}
	return hw / math.Abs(m.mean)
}

// NormalQuantile returns the standard normal inverse CDF at p (0 < p < 1),
// via Acklam's rational approximation (relative error below 1.2e-9 —
// far tighter than any confidence bound reported here needs).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const low, high = 0.02425, 1 - 0.02425
	switch {
	case p < low:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > high:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// TQuantile returns the Student t inverse CDF at p with df degrees of
// freedom, via the Cornish-Fisher expansion around the normal quantile.
// Accuracy is ~1e-2 at df 3-4 and a few 1e-3 from df 5 up, for p in the
// CI-relevant range (0.9..0.995) — plenty for stating an error bar; tiny
// df (1, 2) use exact closed forms.
func TQuantile(p float64, df int) float64 {
	if df <= 0 || math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN()
	}
	switch df {
	case 1: // Cauchy.
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		return (2*p - 1) * math.Sqrt(2/(4*p*(1-p)))
	}
	z := NormalQuantile(p)
	v := float64(df)
	z3, z5, z7 := z*z*z, 0.0, 0.0
	z5 = z3 * z * z
	z7 = z5 * z * z
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	g3 := (3*z7 + 19*z5 + 17*z3 - 15*z) / 384
	return z + g1/v + g2/(v*v) + g3/(v*v*v)
}

// RatioSample is one (numerator, denominator) observation — for sampled
// simulation, one measurement window's (instructions, cycles).
type RatioSample struct {
	Y, X float64
}

// RatioMean is the survey-sampling ratio estimator: it estimates
// R = ΣY/ΣX from paired samples, with the classical linearized variance
// over the residuals Y - R·X. This is the right estimator for a
// throughput that is itself a ratio of totals: the naive mean of
// per-window Y/X values weights every window equally regardless of how
// many cycles it spans, which biases the estimate by several percent as
// soon as windows differ in length; the ratio estimator reproduces the
// whole-region value exactly when the windows tile the region, and is
// consistent (bias O(1/n)) on a systematic sample of it.
type RatioMean struct {
	samples []RatioSample
	sy, sx  float64
}

// Add records one sample.
func (r *RatioMean) Add(y, x float64) {
	r.samples = append(r.samples, RatioSample{Y: y, X: x})
	r.sy += y
	r.sx += x
}

// N returns the sample count.
func (r *RatioMean) N() int { return len(r.samples) }

// Value returns the ratio estimate ΣY/ΣX.
func (r *RatioMean) Value() float64 {
	if r.sx == 0 {
		return 0
	}
	return r.sy / r.sx
}

// CI returns the half-width of the confidence interval on Value at the
// given two-sided level: t_{n-1} · s_d / (√n · x̄), where d = Y - R·X.
// Fewer than two samples carry no variance information (half-width 0).
func (r *RatioMean) CI(confidence float64) float64 {
	n := len(r.samples)
	if n < 2 || r.sx == 0 {
		return 0
	}
	R := r.sy / r.sx
	var ss float64
	for _, s := range r.samples {
		d := s.Y - R*s.X
		ss += d * d
	}
	xbar := r.sx / float64(n)
	sd := math.Sqrt(ss / float64(n-1))
	return TQuantile(1-(1-confidence)/2, n-1) * sd / (math.Sqrt(float64(n)) * math.Abs(xbar))
}

// RelCI returns CI relative to the absolute estimate.
func (r *RatioMean) RelCI(confidence float64) float64 {
	hw := r.CI(confidence)
	if hw == 0 {
		return 0
	}
	v := r.Value()
	if v == 0 {
		return math.Inf(1)
	}
	return hw / math.Abs(v)
}

// Samples returns the recorded samples (not a copy).
func (r *RatioMean) Samples() []RatioSample { return r.samples }

// SummedRatios estimates U = Σ_s (ΣY_s / ΣX_s) — a sum of per-series
// RatioMean estimators sharing the same windows. This is the shape of the
// simulator's throughput metric: UIPC is the sum over cores of per-core
// instructions-over-cycles, the windows are common to all cores, and the
// cores are correlated through the shared memory system — so the variance
// must be estimated from per-window influences summed *across* series
// (inside the square), never from series-independent formulas. When the
// windows tile a region, Value reproduces the region's metric exactly.
type SummedRatios struct {
	series []RatioMean
}

// NewSummedRatios creates an estimator over the given series count (one
// per core).
func NewSummedRatios(series int) *SummedRatios {
	return &SummedRatios{series: make([]RatioMean, series)}
}

// AddWindow records one window: samples[s] is series s's (Y, X) for this
// window. len(samples) must equal the series count.
func (u *SummedRatios) AddWindow(samples []RatioSample) {
	if len(samples) != len(u.series) {
		panic(fmt.Sprintf("stats: AddWindow got %d series, estimator has %d", len(samples), len(u.series)))
	}
	for s, smp := range samples {
		u.series[s].Add(smp.Y, smp.X)
	}
}

// N returns the window count.
func (u *SummedRatios) N() int {
	if len(u.series) == 0 {
		return 0
	}
	return u.series[0].N()
}

// Value returns Σ_s ΣY_s/ΣX_s over all windows.
func (u *SummedRatios) Value() float64 {
	v, _, _ := u.prefix(u.N())
	return v
}

// prefix computes the estimate, the per-series ratios and the per-series
// mean denominators over the first n windows.
func (u *SummedRatios) prefix(n int) (value float64, ratio, xbar []float64) {
	ratio = make([]float64, len(u.series))
	xbar = make([]float64, len(u.series))
	if n == 0 {
		return 0, ratio, xbar
	}
	for s := range u.series {
		sy, sx := u.series[s].sy, u.series[s].sx
		if n < u.series[s].N() {
			sy, sx = 0, 0
			for _, smp := range u.series[s].Samples()[:n] {
				sy += smp.Y
				sx += smp.X
			}
		}
		xbar[s] = sx / float64(n)
		if sx != 0 {
			ratio[s] = sy / sx
			value += ratio[s]
		}
	}
	return value, ratio, xbar
}

// influences returns the per-window delta-method influence values over
// the first n windows: e_j = Σ_s (Y_sj - R_s·X_sj)/x̄_s. They sum to zero
// by construction; their spread estimates the variance of Value.
func (u *SummedRatios) influences(n int, ratio, xbar []float64) []float64 {
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		var sum float64
		for s := range u.series {
			if xbar[s] != 0 {
				smp := u.series[s].Samples()[j]
				sum += (smp.Y - ratio[s]*smp.X) / xbar[s]
			}
		}
		e[j] = sum
	}
	return e
}

// CI returns the half-width of the confidence interval on Value at the
// given two-sided level, via the delta method over per-window influences
// with a Student t quantile. Fewer than two windows report 0.
func (u *SummedRatios) CI(confidence float64) float64 {
	n := u.N()
	if n < 2 {
		return 0
	}
	_, ratio, xbar := u.prefix(n)
	var ss float64
	for _, e := range u.influences(n, ratio, xbar) {
		ss += e * e
	}
	return TQuantile(1-(1-confidence)/2, n-1) * math.Sqrt(ss/float64(n*(n-1)))
}

// RelCI returns CI relative to the absolute estimate.
func (u *SummedRatios) RelCI(confidence float64) float64 {
	hw := u.CI(confidence)
	if hw == 0 {
		return 0
	}
	v := u.Value()
	if v == 0 {
		return math.Inf(1)
	}
	return hw / math.Abs(v)
}

// PairedSpeedupCI estimates the speedup U_design/U_baseline from matched
// measurement windows — window j of both estimators must cover the same
// deterministic event range — with a delta-method confidence interval
// over the per-window relative influence differences. The matching
// matters: the difference cancels the workload-phase variance both runs
// share, which is what lets short sampled runs bound a speedup tightly
// (the SMARTS-style matched-pair comparison). When the two runs measured
// different window counts (early stopping), the common prefix is paired.
// Returns (0, 0) with no pairs or a degenerate margin; with one pair the
// half-width is 0 by the n<2 convention.
func PairedSpeedupCI(design, baseline *SummedRatios, confidence float64) (speedup, halfWidth float64) {
	n := design.N()
	if baseline.N() < n {
		n = baseline.N()
	}
	if n == 0 {
		return 0, 0
	}
	ud, rd, xd := design.prefix(n)
	ub, rb, xb := baseline.prefix(n)
	if ud == 0 || ub == 0 {
		return 0, 0
	}
	speedup = ud / ub
	if n < 2 {
		return speedup, 0
	}
	ed := design.influences(n, rd, xd)
	eb := baseline.influences(n, rb, xb)
	var ss float64
	for j := 0; j < n; j++ {
		e := ed[j]/ud - eb[j]/ub
		ss += e * e
	}
	relVar := ss / float64(n*(n-1))
	halfWidth = TQuantile(1-(1-confidence)/2, n-1) * math.Abs(speedup) * math.Sqrt(relVar)
	return speedup, halfWidth
}

// Strata is a stratified mean/variance estimator: samples are assigned to
// a fixed set of independent strata (e.g. one per seed in a cross-seed
// replication), the estimate is the unweighted mean of the stratum means,
// and its variance combines the within-stratum variances — never the
// between-stratum spread, which stratification exists to remove. Strata
// must be independent for the variance to be honest; correlated strata
// (cores sharing one memory system) belong in one stratum.
type Strata struct {
	strata []Mean
}

// NewStrata creates an estimator with k strata.
func NewStrata(k int) *Strata {
	return &Strata{strata: make([]Mean, k)}
}

// K returns the stratum count.
func (s *Strata) K() int { return len(s.strata) }

// Add records one sample in stratum i.
func (s *Strata) Add(i int, x float64) { s.strata[i].Add(x) }

// Mean returns the unweighted mean of the stratum means; strata that have
// seen no samples are excluded.
func (s *Strata) Mean() float64 {
	sum, k := 0.0, 0
	for _, m := range s.strata {
		if m.N() > 0 {
			sum += m.Value()
			k++
		}
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k)
}

// Variance returns the variance of Mean: (1/k^2) * sum var_i/n_i over the
// populated strata.
func (s *Strata) Variance() float64 {
	sum, k := 0.0, 0
	for _, m := range s.strata {
		if m.N() > 0 {
			k++
			if m.N() >= 2 {
				sum += m.Variance() / float64(m.N())
			}
		}
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k*k)
}

// CI returns the half-width of the confidence interval on Mean at the
// given level, with degrees of freedom conservatively taken as the
// smallest populated stratum's n-1.
func (s *Strata) CI(confidence float64) float64 {
	df := 0
	for _, m := range s.strata {
		if m.N() >= 2 {
			d := int(m.N()) - 1
			if df == 0 || d < df {
				df = d
			}
		}
	}
	if df == 0 {
		return 0
	}
	return TQuantile(1-(1-confidence)/2, df) * math.Sqrt(s.Variance())
}

// Histogram is a fixed-bucket histogram over small non-negative integers
// (footprint densities, burst lengths, way indices).
type Histogram struct {
	buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram creates a histogram with buckets 0..max; larger samples are
// clamped into the last bucket.
func NewHistogram(max int) *Histogram {
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// Count returns the number of samples in bucket v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the average sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Fraction returns the share of samples equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// Percentile returns the smallest bucket value at or below which at least
// p (0..1) of the samples fall.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.buckets) - 1
}

// GeoMean returns the geometric mean of xs, the aggregation Figure 7 uses
// for its "Geometric Mean" panel. Non-positive inputs are rejected.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive inputs, got %g", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Median returns the median of xs (xs is not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
