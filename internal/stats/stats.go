// Package stats provides the light-weight counters, ratios, histograms and
// confidence-interval helpers the simulator and the experiment harness use
// to report results. Everything is plain in-memory arithmetic; there is no
// locking because each simulated core owns its own counters and the engine
// aggregates them single-threaded.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ratio is a numerator/denominator pair, the workhorse for hit ratios,
// predictor accuracies and overfetch fractions.
type Ratio struct {
	Num, Den uint64
}

// Add accumulates one observation: hit says whether the numerator event
// occurred.
func (r *Ratio) Add(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// AddN accumulates num events out of den trials.
func (r *Ratio) AddN(num, den uint64) {
	r.Num += num
	r.Den += den
}

// Value returns the ratio, or 0 if nothing was recorded.
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Percent returns the ratio scaled to percent.
func (r Ratio) Percent() float64 { return r.Value() * 100 }

// Complement returns 1 - Value as a percentage (e.g. miss ratio from hits).
func (r Ratio) ComplementPercent() float64 {
	if r.Den == 0 {
		return 0
	}
	return 100 - r.Percent()
}

// Merge folds other into r.
func (r *Ratio) Merge(other Ratio) {
	r.Num += other.Num
	r.Den += other.Den
}

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Num, r.Den, r.Percent())
}

// Mean accumulates a running mean/variance using Welford's algorithm.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one sample.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the sample count.
func (m Mean) N() uint64 { return m.n }

// Value returns the mean.
func (m Mean) Value() float64 { return m.mean }

// Variance returns the sample variance.
func (m Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (the SimFlex-style error bound the paper
// quotes: "average error of less than 2% at a 95% confidence level").
func (m Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.StdDev() / math.Sqrt(float64(m.n))
}

// Histogram is a fixed-bucket histogram over small non-negative integers
// (footprint densities, burst lengths, way indices).
type Histogram struct {
	buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram creates a histogram with buckets 0..max; larger samples are
// clamped into the last bucket.
func NewHistogram(max int) *Histogram {
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// Count returns the number of samples in bucket v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the average sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Fraction returns the share of samples equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// Percentile returns the smallest bucket value at or below which at least
// p (0..1) of the samples fall.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.buckets) - 1
}

// GeoMean returns the geometric mean of xs, the aggregation Figure 7 uses
// for its "Geometric Mean" panel. Non-positive inputs are rejected.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive inputs, got %g", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Median returns the median of xs (xs is not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
