package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRatioBasics(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("zero Ratio should have Value 0")
	}
	r.Add(true)
	r.Add(true)
	r.Add(false)
	r.Add(false)
	if got := r.Value(); got != 0.5 {
		t.Errorf("Value = %v, want 0.5", got)
	}
	if got := r.Percent(); got != 50 {
		t.Errorf("Percent = %v, want 50", got)
	}
	if got := r.ComplementPercent(); got != 50 {
		t.Errorf("ComplementPercent = %v, want 50", got)
	}
}

func TestRatioAddNMerge(t *testing.T) {
	var a, b Ratio
	a.AddN(3, 10)
	b.AddN(7, 10)
	a.Merge(b)
	if a.Num != 10 || a.Den != 20 {
		t.Errorf("after Merge: %+v, want 10/20", a)
	}
	if a.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestMeanWelford(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if got := m.Value(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := m.StdDev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138 (sample)", got)
	}
	if m.N() != 8 {
		t.Errorf("N = %d, want 8", m.N())
	}
	if m.CI95() <= 0 {
		t.Error("CI95 should be positive with varied samples")
	}
}

func TestMeanSingleSample(t *testing.T) {
	var m Mean
	m.Add(42)
	if m.Variance() != 0 || m.CI95() != 0 {
		t.Error("single-sample variance and CI must be 0")
	}
}

func TestMeanMatchesDirectComputation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var m Mean
		sum := 0.0
		for _, v := range raw {
			m.Add(float64(v))
			sum += float64(v)
		}
		want := sum / float64(len(raw))
		return math.Abs(m.Value()-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(15)
	for i := 0; i < 10; i++ {
		h.Add(1)
	}
	for i := 0; i < 5; i++ {
		h.Add(15)
	}
	h.Add(100) // clamps to 15
	h.Add(-3)  // clamps to 0
	if h.Total() != 17 {
		t.Errorf("Total = %d, want 17", h.Total())
	}
	if h.Count(15) != 6 {
		t.Errorf("Count(15) = %d, want 6", h.Count(15))
	}
	if h.Count(0) != 1 {
		t.Errorf("Count(0) = %d, want 1", h.Count(0))
	}
	if h.Count(99) != 0 || h.Count(-1) != 0 {
		t.Error("out-of-range Count should be 0")
	}
	if f := h.Fraction(1); math.Abs(f-10.0/17) > 1e-12 {
		t.Errorf("Fraction(1) = %v", f)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10)
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	if got := h.Percentile(0.5); got != 5 {
		t.Errorf("P50 = %d, want 5", got)
	}
	if got := h.Percentile(1.0); got != 10 {
		t.Errorf("P100 = %d, want 10", got)
	}
	empty := NewHistogram(4)
	if empty.Percentile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram percentile/mean should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) should error")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
	if _, err := GeoMean([]float64{-1}); err == nil {
		t.Error("GeoMean with negative should error")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v) + 1
			xs = append(xs, x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		return err == nil && g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	// Median must not reorder the caller's slice.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}
