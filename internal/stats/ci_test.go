package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestNormalQuantile pins the approximation against the textbook values
// every confidence bound in the repo is built from.
func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.841344746, 1.0},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(1), 1) || !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile must map the endpoints to ±Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile must reject p outside [0,1]")
	}
}

// TestTQuantile checks against standard t-table values. The Cornish-Fisher
// expansion is a few 1e-3 off at small df, so tolerances widen there.
func TestTQuantile(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 1, 12.7062, 1e-3}, // exact closed form
		{0.975, 2, 4.3027, 1e-3},  // exact closed form
		{0.975, 3, 3.1824, 3e-2},
		{0.975, 5, 2.5706, 5e-3},
		{0.975, 7, 2.3646, 3e-3},
		{0.975, 10, 2.2281, 2e-3},
		{0.975, 30, 2.0423, 1e-3},
		{0.95, 5, 2.0150, 5e-3},
		{0.995, 10, 3.1693, 1e-2},
	}
	for _, c := range cases {
		if got := TQuantile(c.p, c.df); math.Abs(got-c.want) > c.tol {
			t.Errorf("TQuantile(%v, %d) = %v, want %v ±%v", c.p, c.df, got, c.want, c.tol)
		}
	}
	if !math.IsNaN(TQuantile(0.975, 0)) {
		t.Error("TQuantile must reject df <= 0")
	}
	if !math.IsNaN(TQuantile(0, 5)) || !math.IsNaN(TQuantile(1, 5)) {
		t.Error("TQuantile must reject p outside (0,1)")
	}
}

// TestWelfordClosedForm pins Mean against closed-form fixtures: the first
// n integers have mean (n+1)/2 and sample variance n(n+1)/12.
func TestWelfordClosedForm(t *testing.T) {
	for _, n := range []int{2, 5, 10, 100} {
		var m Mean
		for i := 1; i <= n; i++ {
			m.Add(float64(i))
		}
		wantMean := float64(n+1) / 2
		wantVar := float64(n) * float64(n+1) / 12
		if math.Abs(m.Value()-wantMean) > 1e-9 {
			t.Errorf("n=%d: mean %v, want %v", n, m.Value(), wantMean)
		}
		if math.Abs(m.Variance()-wantVar) > 1e-9*wantVar {
			t.Errorf("n=%d: variance %v, want %v", n, m.Variance(), wantVar)
		}
	}
}

// TestMeanCIDegenerate covers the cases a deterministic simulator actually
// produces: a single interval (no variance information) and identical
// intervals (zero variance).
func TestMeanCIDegenerate(t *testing.T) {
	var one Mean
	one.Add(3.5)
	if hw := one.CI(0.95); hw != 0 {
		t.Errorf("one sample: CI half-width %v, want 0", hw)
	}
	if rel := one.RelCI(0.95); rel != 0 {
		t.Errorf("one sample: RelCI %v, want 0", rel)
	}
	var flat Mean
	for i := 0; i < 10; i++ {
		flat.Add(2.0)
	}
	if hw := flat.CI(0.95); hw != 0 {
		t.Errorf("zero variance: CI half-width %v, want 0", hw)
	}
	var zero Mean
	zero.Add(-1)
	zero.Add(1)
	if rel := zero.RelCI(0.95); !math.IsInf(rel, 1) {
		t.Errorf("zero mean with spread: RelCI %v, want +Inf", rel)
	}
}

// TestMeanCIShrinks checks the sqrt(n) law: quadrupling the sample count
// roughly halves the half-width on the same distribution.
func TestMeanCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ci := func(n int) float64 {
		var m Mean
		for i := 0; i < n; i++ {
			m.Add(10 + rng.NormFloat64())
		}
		return m.CI(0.95)
	}
	small, large := ci(50), ci(200)
	if large >= small {
		t.Fatalf("CI half-width did not shrink: n=50 -> %v, n=200 -> %v", small, large)
	}
	if ratio := small / large; ratio < 1.4 || ratio > 2.9 {
		t.Errorf("half-width ratio %v, want ~2 (sqrt(4))", ratio)
	}
}

// TestMeanCICoverage is the honesty check on the t-based interval: over
// many deterministic trials of normal samples, ~95% of the intervals must
// contain the true mean.
func TestMeanCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials, n, trueMean = 2000, 12, 5.0
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var m Mean
		for i := 0; i < n; i++ {
			m.Add(trueMean + 0.8*rng.NormFloat64())
		}
		if math.Abs(m.Value()-trueMean) <= m.CI(0.95) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("95%% CI covered the true mean in %.1f%% of trials, want ~95%%", 100*rate)
	}
}

// TestRatioMeanExactOnTiling pins the property the sampled UIPC estimator
// is chosen for: when the windows tile a region, ΣY/ΣX *is* the region's
// ratio, no matter how unevenly the denominators split — exactly where a
// mean of per-window Y/X goes wrong.
func TestRatioMeanExactOnTiling(t *testing.T) {
	// Region: 1000 instructions over 800 cycles, split into uneven windows.
	windows := []RatioSample{{100, 50}, {400, 200}, {300, 350}, {200, 200}}
	var r RatioMean
	var naive Mean
	for _, w := range windows {
		r.Add(w.Y, w.X)
		naive.Add(w.Y / w.X)
	}
	want := 1000.0 / 800
	if got := r.Value(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ratio estimator = %v, want exact region ratio %v", got, want)
	}
	if math.Abs(naive.Value()-want) < 1e-3 {
		t.Errorf("test fixture too tame: naive mean %v should diverge from %v", naive.Value(), want)
	}
}

// TestRatioMeanCoverage checks the linearized ratio CI on synthetic
// known-distribution data: windows with noisy cycle counts around a true
// rate R; ~95% of intervals must contain R.
func TestRatioMeanCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials, n, trueR = 2000, 15, 2.5
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var r RatioMean
		for i := 0; i < n; i++ {
			// Instructions fixed per window, cycles noisy — the shape the
			// simulator produces. The true ratio of totals is trueR.
			y := trueR * 100
			x := 100 * (1 + 0.2*rng.NormFloat64())
			r.Add(y, x)
		}
		if math.Abs(r.Value()-trueR) <= r.CI(0.95) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.91 || rate > 0.99 {
		t.Errorf("95%% ratio CI covered the true value in %.1f%% of trials, want ~95%%", 100*rate)
	}
}

// TestRatioMeanDegenerate: one window and zero variance.
func TestRatioMeanDegenerate(t *testing.T) {
	var one RatioMean
	one.Add(30, 20)
	if one.N() != 1 || one.Value() != 1.5 {
		t.Errorf("one sample: N=%d Value=%v, want 1, 1.5", one.N(), one.Value())
	}
	if hw := one.CI(0.95); hw != 0 {
		t.Errorf("one sample: CI %v, want 0", hw)
	}
	var flat RatioMean
	for i := 0; i < 5; i++ {
		flat.Add(40, 20)
	}
	if flat.Value() != 2 || flat.CI(0.95) != 0 {
		t.Errorf("zero variance: Value=%v CI=%v, want 2, 0", flat.Value(), flat.CI(0.95))
	}
	var empty RatioMean
	if empty.Value() != 0 || empty.CI(0.95) != 0 {
		t.Errorf("empty estimator must report zeros")
	}
}

// TestSummedRatiosExactOnTiling pins the estimator's defining property:
// when windows tile a region, Value reproduces Σ_core I_core/C_core
// exactly — even with wildly uneven per-core cycle splits.
func TestSummedRatiosExactOnTiling(t *testing.T) {
	u := NewSummedRatios(2)
	// Core 0: 600 instr / 400 cycles; core 1: 900 instr / 1500 cycles.
	u.AddWindow([]RatioSample{{100, 50}, {400, 900}})
	u.AddWindow([]RatioSample{{500, 350}, {500, 600}})
	want := 600.0/400 + 900.0/1500
	if got := u.Value(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value = %v, want exact region metric %v", got, want)
	}
	if u.N() != 2 {
		t.Errorf("N = %d, want 2", u.N())
	}
}

// TestSummedRatiosCoverage checks the delta-method CI on synthetic
// known-distribution data: per-core cycles noisy around a shared phase,
// true value known.
func TestSummedRatiosCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials, n, cores = 1200, 15, 4
	covered := 0
	for trial := 0; trial < trials; trial++ {
		u := NewSummedRatios(cores)
		for j := 0; j < n; j++ {
			w := make([]RatioSample, cores)
			for c := range w {
				// instructions fixed per window, cycles noisy: per-core
				// true ratio 1000/800 = 1.25, summed 5.0.
				w[c] = RatioSample{Y: 1000, X: 800 * (1 + 0.2*rng.NormFloat64())}
			}
			u.AddWindow(w)
		}
		if math.Abs(u.Value()-5.0) <= u.CI(0.95) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.91 || rate > 0.99 {
		t.Errorf("95%% CI covered the true value in %.1f%% of trials, want ~95%%", 100*rate)
	}
}

// TestPairedSpeedupCoverage checks matched-pair CI coverage on synthetic
// known-distribution data: both runs share large per-window phase noise
// in their cycle counts, the design is trueSpeedup faster with small
// independent noise. The pairing must cancel the shared noise and the CI
// must cover the true speedup at roughly its nominal rate.
func TestPairedSpeedupCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const trials, pairs, cores, trueSpeedup = 1200, 10, 2, 1.6
	covered := 0
	var width Mean
	for trial := 0; trial < trials; trial++ {
		design := NewSummedRatios(cores)
		baseline := NewSummedRatios(cores)
		for j := 0; j < pairs; j++ {
			dw := make([]RatioSample, cores)
			bw := make([]RatioSample, cores)
			for c := range dw {
				phase := 1 + 0.3*rng.Float64() // shared workload-phase hardness
				bCycles := 400 * phase
				dCycles := bCycles / trueSpeedup * (1 + 0.02*rng.NormFloat64())
				bw[c] = RatioSample{Y: 1000, X: bCycles}
				dw[c] = RatioSample{Y: 1000, X: dCycles}
			}
			design.AddWindow(dw)
			baseline.AddWindow(bw)
		}
		s, hw := PairedSpeedupCI(design, baseline, 0.95)
		width.Add(hw / s)
		if math.Abs(s-trueSpeedup) <= hw {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.995 {
		t.Errorf("matched-pair 95%% CI covered the true speedup in %.1f%% of trials, want ~95%%", 100*rate)
	}
	// The pairing must actually cancel the ±15% shared phase noise: the
	// mean relative half-width must reflect only the ~2% pair noise.
	if width.Value() > 0.06 {
		t.Errorf("mean relative half-width %.3f: pairing failed to cancel shared phase noise", width.Value())
	}
}

// TestPairedSpeedupDegenerate: empty, one-pair and mismatched-count
// inputs.
func TestPairedSpeedupDegenerate(t *testing.T) {
	if s, hw := PairedSpeedupCI(NewSummedRatios(1), NewSummedRatios(1), 0.95); s != 0 || hw != 0 {
		t.Errorf("empty: %v ± %v, want 0, 0", s, hw)
	}
	one := NewSummedRatios(1)
	one.AddWindow([]RatioSample{{30, 10}})
	base := NewSummedRatios(1)
	base.AddWindow([]RatioSample{{30, 20}})
	s, hw := PairedSpeedupCI(one, base, 0.95)
	if s != 2 || hw != 0 {
		t.Errorf("one pair: %v ± %v, want 2, 0", s, hw)
	}
	// Mismatched counts pair the common prefix.
	d := NewSummedRatios(1)
	d.AddWindow([]RatioSample{{30, 10}})
	d.AddWindow([]RatioSample{{30, 10}})
	d.AddWindow([]RatioSample{{99, 1}})
	b := NewSummedRatios(1)
	b.AddWindow([]RatioSample{{30, 20}})
	b.AddWindow([]RatioSample{{30, 20}})
	if s, _ := PairedSpeedupCI(d, b, 0.95); s != 2 {
		t.Errorf("prefix pairing: speedup %v, want 2", s)
	}
	// Zero-variance pairs: exact speedup, zero width.
	if s, hw := PairedSpeedupCI(d2x(2), d2x(4), 0.95); s != 2 || hw != 0 {
		t.Errorf("zero variance: %v ± %v, want 2, 0", s, hw)
	}
}

func d2x(cycles float64) *SummedRatios {
	u := NewSummedRatios(1)
	for i := 0; i < 5; i++ {
		u.AddWindow([]RatioSample{{Y: 8, X: cycles}})
	}
	return u
}

// TestStrata checks the stratified estimator: equal strata reproduce the
// plain mean, and the variance combines only within-stratum spread.
func TestStrata(t *testing.T) {
	s := NewStrata(2)
	// Stratum 0 around 10, stratum 1 around 20: between-stratum spread is
	// structural, not sampling noise.
	for _, x := range []float64{9, 10, 11} {
		s.Add(0, x)
	}
	for _, x := range []float64{19, 20, 21} {
		s.Add(1, x)
	}
	if got := s.Mean(); got != 15 {
		t.Errorf("stratified mean %v, want 15", got)
	}
	// var per stratum = 1, n=3: Variance = (1/4)(1/3 + 1/3) = 1/6.
	if got, want := s.Variance(), 1.0/6; math.Abs(got-want) > 1e-12 {
		t.Errorf("stratified variance %v, want %v", got, want)
	}
	if s.CI(0.95) <= 0 {
		t.Error("populated strata with spread must have a positive CI")
	}

	// One empty stratum is excluded, not averaged in as zero.
	e := NewStrata(3)
	e.Add(0, 4)
	e.Add(1, 6)
	if got := e.Mean(); got != 5 {
		t.Errorf("mean with empty stratum %v, want 5", got)
	}
	if hw := e.CI(0.95); hw != 0 {
		t.Errorf("single samples per stratum: CI %v, want 0", hw)
	}
}
