package stats

import "unisoncache/internal/checkpoint"

// SaveState serializes the histogram's counts into a checkpoint stream.
func (h *Histogram) SaveState(w *checkpoint.Writer) {
	w.U64Slice(h.buckets)
	w.U64(h.total)
	w.U64(h.sum)
}

// LoadState restores counts saved by SaveState into a histogram of the
// same bucket range; a range mismatch is rejected as a geometry error.
func (h *Histogram) LoadState(r *checkpoint.Reader) error {
	r.U64SliceInto(h.buckets)
	h.total = r.U64()
	h.sum = r.U64()
	return r.Err()
}
