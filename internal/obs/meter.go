package obs

import (
	"sync/atomic"
	"time"
)

// Meter is the engine-side throughput gauge: the runner feeds it one
// record per completed simulation (never per event — the replay hot
// path stays untouched), and /metrics renders the cumulative event and
// busy-time counters plus the derived events/sec gauge.
type Meter struct {
	events atomic.Uint64
	busyNs atomic.Int64
	runs   atomic.Uint64
}

// RecordRun accounts one completed simulation: how many trace events it
// replayed and how long it took wall-clock.
func (m *Meter) RecordRun(events uint64, d time.Duration) {
	m.events.Add(events)
	if d > 0 {
		m.busyNs.Add(int64(d))
	}
	m.runs.Add(1)
}

// Events returns the cumulative replayed-event count.
func (m *Meter) Events() uint64 { return m.events.Load() }

// Runs returns how many simulations have been recorded.
func (m *Meter) Runs() uint64 { return m.runs.Load() }

// BusySeconds returns the cumulative wall-clock time spent simulating.
func (m *Meter) BusySeconds() float64 {
	return time.Duration(m.busyNs.Load()).Seconds()
}

// EventsPerSecond returns the lifetime average engine rate (0 before
// the first run completes).
func (m *Meter) EventsPerSecond() float64 {
	s := m.BusySeconds()
	if s <= 0 {
		return 0
	}
	return float64(m.Events()) / s
}
