package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBuckets: observations land in the right buckets, the
// rendered buckets are cumulative and monotone, +Inf equals _count, and
// _sum matches the observed total.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_seconds", "test histogram.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var buf bytes.Buffer
	h.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary-inclusive 0.1
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 102.65",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramConcurrent: racing observers never lose counts.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "concurrent.", nil)
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	if got, want := h.Sum(), float64(workers*each)*0.001; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestVec: one family header, per-label series contiguous and stable,
// and label values quoted.
func TestVec(t *testing.T) {
	v := NewVec("http_seconds", "request latency.", "path", []float64{1})
	v.With("/v1/runs").Observe(0.5)
	v.With("/metrics").Observe(2)
	v.With("/v1/runs").Observe(3)

	var buf bytes.Buffer
	v.Write(&buf)
	out := buf.String()
	if n := strings.Count(out, "# TYPE http_seconds histogram"); n != 1 {
		t.Fatalf("family header rendered %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		`http_seconds_bucket{path="/v1/runs",le="1"} 1`,
		`http_seconds_bucket{path="/v1/runs",le="+Inf"} 2`,
		`http_seconds_count{path="/v1/runs"} 2`,
		`http_seconds_bucket{path="/metrics",le="+Inf"} 1`,
		`http_seconds_sum{path="/metrics"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vec rendering missing %q:\n%s", want, out)
		}
	}

	// An empty vec renders nothing (no orphan header).
	var empty bytes.Buffer
	NewVec("e", "e.", "k", nil).Write(&empty)
	if empty.Len() != 0 {
		t.Errorf("empty vec rendered %q", empty.String())
	}
}
