package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by NewLogger (the daemon's -log-format values).
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a slog.Logger writing to w in the given format at
// the given minimum level. Format is "text" (human-oriented key=value)
// or "json" (one object per line, machine-greppable — what the CI
// cluster smoke scrapes request IDs out of).
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", LogText:
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (have %q, %q)", format, LogText, LogJSON)
	}
}

// ParseLevel maps the daemon's -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (have debug, info, warn, error)", s)
	}
}
