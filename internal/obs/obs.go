// Package obs is the dependency-free observability substrate shared by
// the daemon (internal/serve), the cluster paths, and the client:
// request IDs with context propagation, span timelines with monotonic
// per-stage durations, fixed-bucket Prometheus-text histograms, an
// engine throughput meter, and log/slog construction helpers.
//
// The package deliberately has no third-party dependencies and nothing
// here is allowed to touch the replay hot path's steady state: IDs are
// minted at the HTTP edge, spans are recorded at job state transitions,
// and histograms observe whole-operation durations — never per-event
// work inside the simulator.
package obs

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// RequestIDHeader carries a submission's request ID end to end: minted
// at the edge (client or daemon middleware, whoever sees the request
// first), echoed on every response, and forwarded on proxy one-hops and
// peer cache fills so one ID names the whole distributed request.
const RequestIDHeader = "X-Unison-Request-Id"

// NewRequestID mints a 16-hex-character request ID. IDs only need to be
// unique enough to correlate log lines and job records across a small
// cluster, so a 64-bit random value is plenty; crypto strength is not a
// goal.
func NewRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// Span is one stage of a request's timeline: the stage name, its start
// offset from the timeline's origin, and its duration. Both are
// monotonic-clock intervals (time.Since), so spans order and measure
// correctly even across wall-clock adjustments. Durations marshal as
// integer nanoseconds.
type Span struct {
	Stage string        `json:"stage"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// maxSpans bounds a timeline's memory: a sweep job records one span per
// executed point, and a 100k-point sweep must not grow its job record
// without bound. Past the cap new spans are counted but not retained.
const maxSpans = 64

// Timeline is a thread-safe span recorder for one request. The zero
// value is not usable; construct with NewTimeline, which pins the
// origin the span offsets are measured from.
type Timeline struct {
	mu      sync.Mutex
	origin  time.Time
	spans   []Span
	dropped int
}

// NewTimeline starts a timeline whose origin is now.
func NewTimeline() *Timeline {
	return &Timeline{origin: time.Now()}
}

// Mark records an instantaneous (zero-duration) span at now — state
// transitions like "received" or "done".
func (t *Timeline) Mark(stage string) {
	now := time.Now()
	t.add(Span{Stage: stage, Start: now.Sub(t.origin)})
}

// Observe records a span covering [start, now] — a stage whose caller
// captured its own start time (queue wait, one execution, a peer hop).
func (t *Timeline) Observe(stage string, start time.Time) {
	now := time.Now()
	t.add(Span{Stage: stage, Start: start.Sub(t.origin), Dur: now.Sub(start)})
}

func (t *Timeline) add(s Span) {
	if s.Start < 0 {
		s.Start = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Dropped returns how many spans the cap discarded — surfaced in job JSON
// so a truncated trace is visible as such, not mistaken for a short one.
func (t *Timeline) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the recorded spans in record order. When the
// cap truncated the timeline, a final synthetic "truncated" span carries
// the drop count in its Start field's place — callers render it as-is.
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans), len(t.spans)+1)
	copy(out, t.spans)
	if t.dropped > 0 {
		out = append(out, Span{Stage: fmt.Sprintf("truncated (%d spans dropped)", t.dropped)})
	}
	return out
}
