package obs

import (
	"bytes"
	"context"
	"log/slog"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRequestIDs: format, uniqueness, and context round trip.
func TestRequestIDs(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if !re.MatchString(id) {
			t.Fatalf("NewRequestID() = %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q after %d draws", id, i)
		}
		seen[id] = true
	}

	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != "" {
		t.Errorf("empty context carries ID %q", got)
	}
	ctx = WithRequestID(ctx, "abc")
	if got := RequestIDFrom(ctx); got != "abc" {
		t.Errorf("RequestIDFrom = %q, want abc", got)
	}
	if ctx2, id := EnsureRequestID(ctx); id != "abc" || ctx2 != ctx {
		t.Errorf("EnsureRequestID re-minted over an existing ID")
	}
	ctx3, id := EnsureRequestID(context.Background())
	if id == "" || RequestIDFrom(ctx3) != id {
		t.Errorf("EnsureRequestID did not install a fresh ID")
	}
	if got := WithRequestID(context.Background(), ""); RequestIDFrom(got) != "" {
		t.Errorf("empty ID installed")
	}
}

// TestTimeline: spans record in order with monotone offsets, and the
// cap truncates with an explicit marker instead of growing forever.
func TestTimeline(t *testing.T) {
	tl := NewTimeline()
	tl.Mark("received")
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	tl.Observe("queued", start)
	tl.Mark("done")

	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wantStages := []string{"received", "queued", "done"}
	for i, s := range spans {
		if s.Stage != wantStages[i] {
			t.Errorf("span %d stage %q, want %q", i, s.Stage, wantStages[i])
		}
		if s.Start < 0 {
			t.Errorf("span %d negative start %v", i, s.Start)
		}
	}
	if spans[1].Dur < 2*time.Millisecond {
		t.Errorf("queued span dur %v, want >= 2ms", spans[1].Dur)
	}
	if spans[2].Start < spans[1].Start {
		t.Errorf("spans out of order: done at %v before queued at %v", spans[2].Start, spans[1].Start)
	}

	// Concurrent recording past the cap must not race or grow unbounded.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tl.Mark("flood")
			}
		}()
	}
	wg.Wait()
	spans = tl.Spans()
	if len(spans) != maxSpans+1 {
		t.Fatalf("capped timeline holds %d spans, want %d + truncation marker", len(spans), maxSpans)
	}
	if !strings.Contains(spans[maxSpans].Stage, "truncated") {
		t.Errorf("last span %q is not the truncation marker", spans[maxSpans].Stage)
	}
	// The flood recorded 3 + 200 spans against a cap of maxSpans; every
	// span past the cap must be accounted as dropped, exactly.
	if got, want := tl.Dropped(), 3+200-maxSpans; got != want {
		t.Errorf("Dropped() = %d, want %d", got, want)
	}
}

// TestMeter: cumulative accounting and the derived rate.
func TestMeter(t *testing.T) {
	var m Meter
	if m.EventsPerSecond() != 0 {
		t.Errorf("zero meter rate = %v, want 0", m.EventsPerSecond())
	}
	m.RecordRun(1000, 2*time.Second)
	m.RecordRun(3000, 2*time.Second)
	if m.Events() != 4000 || m.Runs() != 2 {
		t.Errorf("events %d runs %d, want 4000/2", m.Events(), m.Runs())
	}
	if got := m.EventsPerSecond(); got != 1000 {
		t.Errorf("rate = %v, want 1000", got)
	}
}

// TestNewLogger: both formats construct, unknown formats and levels are
// rejected, and the JSON handler emits greppable req_id attributes.
func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, LogJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "req_id", "deadbeefcafe0123")
	if !strings.Contains(buf.String(), `"req_id":"deadbeefcafe0123"`) {
		t.Errorf("json log line missing req_id: %s", buf.String())
	}
	lg.Debug("dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Error("level filter did not drop a debug line")
	}

	if _, err := NewLogger(&buf, "yaml", slog.LevelInfo); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&buf, LogText, slog.LevelDebug); err != nil {
		t.Errorf("text format rejected: %v", err)
	}
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level accepted")
	}
}
