package obs

import "context"

// ctxKey is the private context key for the request ID.
type ctxKey struct{}

// WithRequestID returns ctx carrying id. An empty id returns ctx
// unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// EnsureRequestID returns ctx carrying a request ID, minting one when
// none is present. The high-level client operations call this once per
// logical operation so the submit, the event-stream wait, the final job
// fetch, and every cluster failover attempt all share one ID.
func EnsureRequestID(ctx context.Context) (context.Context, string) {
	if id := RequestIDFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewRequestID()
	return WithRequestID(ctx, id), id
}
