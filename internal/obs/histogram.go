package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket layout in seconds: half a
// millisecond to ten seconds, roughly 2-2.5x apart — wide enough to
// cover a cached submit (sub-millisecond) and a full simulation (many
// seconds) in one histogram.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket, label-free (or single-const-label)
// Prometheus-text histogram. Observations are lock-free atomic adds;
// rendering computes the cumulative buckets the exposition format
// requires. A Histogram standing alone renders its own # HELP/# TYPE
// header; Histograms inside a Vec share the Vec's.
type Histogram struct {
	name    string
	help    string
	labels  string // rendered inside {…} before le, e.g. `path="/v1/runs"`
	bounds  []float64
	counts  []atomic.Uint64 // per-bucket (non-cumulative); len(bounds)+1, last = +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (nil means DefBuckets). The +Inf bucket is implicit.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value (seconds, for the latency histograms).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Write renders the histogram with its # HELP/# TYPE header.
func (h *Histogram) Write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	h.writeSeries(w)
}

// writeSeries renders the _bucket/_sum/_count triple (no header). The
// buckets are cumulative and end at le="+Inf", whose value equals
// _count — the exposition-format invariants the metrics test wall
// checks.
func (h *Histogram) writeSeries(w io.Writer) {
	sep := ""
	if h.labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", h.name, h.labels, sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, h.labels, sep, cum)
	if h.labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", h.name, h.labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", h.name, h.labels, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
	}
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Vec is a minimal fixed-label-key histogram vector: one metric family
// (shared name, help, buckets) with one Histogram per label value,
// created on first use. It exists so per-endpoint latency can be a
// proper labeled family without pulling in a metrics library.
type Vec struct {
	name     string
	help     string
	labelKey string
	bounds   []float64

	mu     sync.Mutex
	order  []string // first-use order, for stable rendering
	series map[string]*Histogram
}

// NewVec builds a histogram family keyed by labelKey.
func NewVec(name, help, labelKey string, bounds []float64) *Vec {
	return &Vec{
		name:     name,
		help:     help,
		labelKey: labelKey,
		bounds:   bounds,
		series:   make(map[string]*Histogram),
	}
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *Vec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[value]
	if !ok {
		h = NewHistogram(v.name, v.help, v.bounds)
		h.labels = fmt.Sprintf("%s=%q", v.labelKey, value)
		v.series[value] = h
		v.order = append(v.order, value)
	}
	return h
}

// Write renders the whole family: one # HELP/# TYPE header, then every
// series in first-use order (all series of one family are contiguous,
// as the exposition format requires).
func (v *Vec) Write(w io.Writer) {
	v.mu.Lock()
	order := append([]string(nil), v.order...)
	v.mu.Unlock()
	if len(order) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for _, value := range order {
		v.With(value).writeSeries(w)
	}
}
