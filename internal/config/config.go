// Package config centralizes the paper's tabulated parameters: the
// Footprint Cache tag-array sizes and latencies of Table IV and the cache
// size sweeps of Figures 5–8.
package config

import (
	"fmt"
	"math"
	"strings"
)

// FCTagPoint is one column of Table IV.
type FCTagPoint struct {
	CacheBytes uint64
	// TagMB is the SRAM tag-array size in megabytes.
	TagMB float64
	// LatencyCycles is the (conservatively estimated) tag lookup latency.
	LatencyCycles uint64
}

// fcTagTable is Table IV verbatim.
var fcTagTable = []FCTagPoint{
	{128 << 20, 0.8, 6},
	{256 << 20, 1.58, 9},
	{512 << 20, 3.12, 11},
	{1 << 30, 6.2, 16},
	{2 << 30, 12.5, 25},
	{4 << 30, 25, 36},
	{8 << 30, 50, 48},
}

// FCTagTable returns Table IV.
func FCTagTable() []FCTagPoint {
	out := make([]FCTagPoint, len(fcTagTable))
	copy(out, fcTagTable)
	return out
}

// FCTagLatency returns the Footprint Cache tag latency for the given
// capacity, using the next tabulated size for intermediate values.
func FCTagLatency(cacheBytes uint64) uint64 {
	for _, p := range fcTagTable {
		if cacheBytes <= p.CacheBytes {
			return p.LatencyCycles
		}
	}
	return fcTagTable[len(fcTagTable)-1].LatencyCycles
}

// FCTagMB returns the Table IV SRAM tag size for the given capacity.
func FCTagMB(cacheBytes uint64) float64 {
	for _, p := range fcTagTable {
		if cacheBytes <= p.CacheBytes {
			return p.TagMB
		}
	}
	return fcTagTable[len(fcTagTable)-1].TagMB
}

// CloudSuiteSizes is the Figure 6/7 cache-size sweep for the CloudSuite
// workloads.
func CloudSuiteSizes() []uint64 {
	return []uint64{128 << 20, 256 << 20, 512 << 20, 1 << 30}
}

// TPCHSizes is the Figure 8 sweep for TPC-H.
func TPCHSizes() []uint64 {
	return []uint64{1 << 30, 2 << 30, 4 << 30, 8 << 30}
}

// ParseSize is SizeLabel's inverse for command-line flags: it understands
// "128MB", "1GB", "8g", "64m", "4KB" and plain byte counts.
func ParseSize(s string) (uint64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(t, "GB"), strings.HasSuffix(t, "G"):
		mult = 1 << 30
		t = strings.TrimSuffix(strings.TrimSuffix(t, "GB"), "G")
	case strings.HasSuffix(t, "MB"), strings.HasSuffix(t, "M"):
		mult = 1 << 20
		t = strings.TrimSuffix(strings.TrimSuffix(t, "MB"), "M")
	case strings.HasSuffix(t, "KB"), strings.HasSuffix(t, "K"):
		mult = 1 << 10
		t = strings.TrimSuffix(strings.TrimSuffix(t, "KB"), "K")
	}
	var v uint64
	for _, c := range t {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad size %q", s)
		}
		d := uint64(c - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, fmt.Errorf("size %q overflows", s)
		}
		v = v*10 + d
	}
	if v == 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if v > math.MaxUint64/mult {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return v * mult, nil
}

// SizeLabel formats a capacity the way the figures do.
func SizeLabel(b uint64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return itoa(b>>30) + "GB"
	case b >= 1<<20:
		return itoa(b>>20) + "MB"
	default:
		return itoa(b) + "B"
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
