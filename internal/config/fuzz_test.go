package config

import (
	"strings"
	"testing"
)

// FuzzParseSize hammers the size-flag parser with arbitrary strings: it
// must never panic, and every accepted input must obey the invariants the
// commands rely on — a positive byte count that round-trips through the
// unit multiplier without overflow.
func FuzzParseSize(f *testing.F) {
	for _, seed := range []string{
		"1GB", "128MB", "8g", "64m", "4KB", "512", "0", "", " 2 GB ",
		"18446744073709551615", "99999999999999999999GB", "-1MB", "1.5GB",
		"GB", "kB", "1kk", "０１", "1\x00GB",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSize(s)
		if err != nil {
			return
		}
		if v == 0 {
			t.Fatalf("ParseSize(%q) accepted a zero size", s)
		}
		// Accepted inputs must be digits plus an optional recognized
		// suffix: anything else slipping through is a parser hole.
		u := strings.ToUpper(strings.TrimSpace(s))
		for _, suf := range []string{"GB", "G", "MB", "M", "KB", "K"} {
			u = strings.TrimSuffix(u, suf)
		}
		for _, c := range u {
			if c < '0' || c > '9' {
				t.Fatalf("ParseSize(%q) = %d accepted non-digit payload %q", s, v, u)
			}
		}
	})
}
