package config

import "testing"

func TestFCTagTableMatchesPaper(t *testing.T) {
	tbl := FCTagTable()
	if len(tbl) != 7 {
		t.Fatalf("Table IV has 7 columns, got %d", len(tbl))
	}
	if tbl[0].CacheBytes != 128<<20 || tbl[0].LatencyCycles != 6 {
		t.Errorf("first column = %+v", tbl[0])
	}
	if tbl[6].CacheBytes != 8<<30 || tbl[6].TagMB != 50 || tbl[6].LatencyCycles != 48 {
		t.Errorf("last column = %+v", tbl[6])
	}
	// Latency and size must grow monotonically with capacity (§II-B).
	for i := 1; i < len(tbl); i++ {
		if tbl[i].LatencyCycles <= tbl[i-1].LatencyCycles || tbl[i].TagMB <= tbl[i-1].TagMB {
			t.Errorf("Table IV not monotone at %d", i)
		}
	}
}

func TestFCTagLatencyLookup(t *testing.T) {
	cases := []struct {
		bytes uint64
		want  uint64
	}{
		{64 << 20, 6},
		{128 << 20, 6},
		{129 << 20, 9},
		{1 << 30, 16},
		{3 << 30, 36},
		{8 << 30, 48},
		{16 << 30, 48},
	}
	for _, c := range cases {
		if got := FCTagLatency(c.bytes); got != c.want {
			t.Errorf("FCTagLatency(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestFCTagMB(t *testing.T) {
	if got := FCTagMB(8 << 30); got != 50 {
		t.Errorf("FCTagMB(8GB) = %v, want 50 (the paper's impractical SRAM array)", got)
	}
	if got := FCTagMB(512 << 20); got != 3.12 {
		t.Errorf("FCTagMB(512MB) = %v", got)
	}
}

func TestSweeps(t *testing.T) {
	cs := CloudSuiteSizes()
	if len(cs) != 4 || cs[0] != 128<<20 || cs[3] != 1<<30 {
		t.Errorf("CloudSuiteSizes = %v", cs)
	}
	th := TPCHSizes()
	if len(th) != 4 || th[0] != 1<<30 || th[3] != 8<<30 {
		t.Errorf("TPCHSizes = %v", th)
	}
}

func TestSizeLabel(t *testing.T) {
	cases := []struct {
		b    uint64
		want string
	}{
		{128 << 20, "128MB"},
		{1 << 30, "1GB"},
		{8 << 30, "8GB"},
		{1536 << 20, "1536MB"},
		{64, "64B"},
		{0, "0B"},
	}
	for _, c := range cases {
		if got := SizeLabel(c.b); got != c.want {
			t.Errorf("SizeLabel(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"128MB", 128 << 20},
		{"1GB", 1 << 30},
		{"8g", 8 << 30},
		{"64m", 64 << 20},
		{"4KB", 4 << 10},
		{" 512mb ", 512 << 20},
		{"8192", 8192},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", "abc", "12x34", "GB", "-1GB", "0", "20000000000G", "99999999999999999999999999"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) accepted", in)
		}
	}
}
