package trace

import (
	"bytes"
	"testing"
)

func captureStreams(t *testing.T, workload string, seed uint64, cores int) []Source {
	t.Helper()
	sources := make([]Source, cores)
	for i := range sources {
		s, err := NewStream(Profiles()[workload], seed, i)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = s
	}
	return sources
}

func TestTraceFileRoundTrip(t *testing.T) {
	const cores, events = 3, 2000
	h := FileHeader{Profile: "web-serving", Seed: 11, ScaleDivisor: 16, Cores: cores, EventsPerCore: events}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, captureStreams(t, "web-serving", 11, cores)); err != nil {
		t.Fatal(err)
	}

	got, sources, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header round trip: got %+v, want %+v", got, h)
	}
	// Replay must reproduce the live streams event for event.
	live := captureStreams(t, "web-serving", 11, cores)
	for c := 0; c < cores; c++ {
		if sources[c].Remaining() != events {
			t.Fatalf("core %d: Remaining() = %d, want %d", c, sources[c].Remaining(), events)
		}
		for i := 0; i < events; i++ {
			want := live[c].Next()
			if ev := sources[c].Next(); ev != want {
				t.Fatalf("core %d event %d: replay %+v, live %+v", c, i, ev, want)
			}
		}
		if sources[c].Remaining() != 0 {
			t.Errorf("core %d: %d events left after full replay", c, sources[c].Remaining())
		}
	}
}

func TestTraceFileDrainPanics(t *testing.T) {
	var buf bytes.Buffer
	h := FileHeader{Profile: "web-search", Seed: 1, ScaleDivisor: 1, Cores: 1, EventsPerCore: 5}
	if err := WriteTrace(&buf, h, captureStreams(t, "web-search", 1, 1)); err != nil {
		t.Fatal(err)
	}
	_, sources, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sources[0].Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("draining past the recorded length did not panic")
		}
	}()
	sources[0].Next()
}

func TestWriteTraceRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	src := captureStreams(t, "web-search", 1, 1)
	cases := []struct {
		name    string
		h       FileHeader
		sources []Source
	}{
		{"zero cores", FileHeader{ScaleDivisor: 1, Cores: 0, EventsPerCore: 1}, nil},
		{"zero events", FileHeader{ScaleDivisor: 1, Cores: 1, EventsPerCore: 0}, src},
		{"zero scale divisor", FileHeader{ScaleDivisor: 0, Cores: 1, EventsPerCore: 1}, src},
		{"source mismatch", FileHeader{ScaleDivisor: 1, Cores: 2, EventsPerCore: 1}, src},
		{"nil source", FileHeader{ScaleDivisor: 1, Cores: 1, EventsPerCore: 1}, []Source{nil}},
	}
	for _, c := range cases {
		if err := WriteTrace(&buf, c.h, c.sources); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestReadTraceRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	h := FileHeader{Profile: "tpch", Seed: 3, ScaleDivisor: 32, Cores: 2, EventsPerCore: 300}
	if err := WriteTrace(&buf, h, captureStreams(t, "tpch", 3, 2)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, _, err := ReadTrace(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ReadTrace(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated file accepted")
	}
	trailing := append(append([]byte{}, good...), 0xff)
	if _, _, err := ReadTrace(bytes.NewReader(trailing)); err == nil {
		t.Error("trailing bytes accepted")
	}
	wrongVersion := append([]byte{}, good...)
	wrongVersion[4] = 99 // the version uvarint directly follows the magic
	if _, _, err := ReadTrace(bytes.NewReader(wrongVersion)); err == nil {
		t.Error("unsupported version accepted")
	}
}
