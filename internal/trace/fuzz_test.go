package trace

import (
	"bytes"
	"testing"
)

// validCapture builds a small well-formed .utrace capture to seed the
// fuzzer with structure-aware inputs.
func validCapture(tb testing.TB, cores, events int) []byte {
	tb.Helper()
	prof := *Profiles()["web-serving"]
	prof.WorkingSetBytes /= 1024
	sources := make([]Source, cores)
	for i := range sources {
		s, err := NewStream(&prof, 3, i)
		if err != nil {
			tb.Fatal(err)
		}
		sources[i] = s
	}
	var buf bytes.Buffer
	err := WriteTrace(&buf, FileHeader{
		Profile: "web-serving", Seed: 3, ScaleDivisor: 1024,
		Cores: cores, EventsPerCore: events,
	}, sources)
	if err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace feeds arbitrary bytes to the .utrace parser. Whatever the
// input — truncated, bit-flipped, or hostile header fields — ReadTrace
// must either succeed on a self-consistent capture or return an error; it
// must never panic, and it must never trust unvalidated header counts
// (the FileMaxCores bound is what keeps a 4-byte header from demanding a
// multi-gigabyte source slice). Successful parses must replay exactly the
// advertised number of events per core.
func FuzzReadTrace(f *testing.F) {
	valid := validCapture(f, 2, 50)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])           // truncated mid-section
	f.Add(valid[:5])                      // truncated header
	f.Add([]byte("UTRC"))                 // magic only
	f.Add([]byte("XXXX junk"))            // wrong magic
	f.Add(append([]byte{}, valid[4:]...)) // missing magic
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, sources, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h.Cores != len(sources) {
			t.Fatalf("header says %d cores, got %d sources", h.Cores, len(sources))
		}
		// A capture that parsed must replay to exactly its advertised
		// length, by Next and by batch.
		slab := make([]Event, 64)
		for c, src := range sources {
			if src.Remaining() != h.EventsPerCore {
				t.Fatalf("core %d: %d events remaining, header says %d", c, src.Remaining(), h.EventsPerCore)
			}
			total := 0
			for {
				n := src.NextBatch(slab)
				total += n
				if n < len(slab) {
					break
				}
			}
			if total != h.EventsPerCore {
				t.Fatalf("core %d: replayed %d events, header says %d", c, total, h.EventsPerCore)
			}
		}
	})
}

// FuzzStreamNextBatch cross-checks batch pulls of arbitrary sizes against
// event-by-event pulls of the generator.
func FuzzStreamNextBatch(f *testing.F) {
	f.Add(uint64(1), 7)
	f.Add(uint64(99), 256)
	f.Fuzz(func(t *testing.T, seed uint64, batch int) {
		if batch <= 0 || batch > 4096 {
			return
		}
		prof := Profiles()["data-analytics"]
		a, err := NewStream(prof, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewStream(prof, seed, 0)
		buf := make([]Event, batch)
		for pulled := 0; pulled < 2000; pulled += batch {
			if n := a.NextBatch(buf); n != batch {
				t.Fatalf("NextBatch(%d) = %d on an unbounded stream", batch, n)
			}
			for i, ev := range buf {
				if want := b.Next(); ev != want {
					t.Fatalf("event %d: batch %+v != next %+v", pulled+i, ev, want)
				}
			}
		}
	})
}
