package trace

import (
	"math"
	"testing"
)

// TestGeometricTabMatchesDenom is the bit-identity wall of the quantile
// table: across every profile's gap and repeat distribution plus a sweep of
// adversarial means, geometricTab must return exactly the value (and
// consume exactly the randomness) of the log1p reference path.
func TestGeometricTabMatchesDenom(t *testing.T) {
	means := []float64{0.1, 0.5, 0.8, 1, 2, 6, 10, 32, 48, 80, 200, 1000}
	for _, p := range Profiles() {
		means = append(means, p.GapMean, p.RepeatMean)
	}
	for _, mean := range means {
		denom := geomDenom(mean)
		tab := geomTableFor(denom)
		a, b := NewRNG(7), NewRNG(7)
		const samples = 200_000
		for i := 0; i < samples; i++ {
			want := a.geometricDenom(denom)
			got := b.geometricTab(tab)
			if got != want {
				t.Fatalf("mean %v sample %d: geometricTab %d != geometricDenom %d", mean, i, got, want)
			}
		}
		if a.state != b.state {
			t.Fatalf("mean %v: RNG states diverged after %d samples", mean, samples)
		}
	}
}

// TestGeometricTabZeroMean checks the mean-<=-0 sentinel: a nil table
// returns 0 without consuming randomness, like geometricDenom(0).
func TestGeometricTabZeroMean(t *testing.T) {
	r := NewRNG(3)
	before := r.state
	if got := r.geometricTab(geomTableFor(geomDenom(0))); got != 0 {
		t.Fatalf("zero-mean sample = %d, want 0", got)
	}
	if r.state != before {
		t.Fatal("zero-mean sample consumed randomness")
	}
}

// TestGeomTableBoundaries forces the table's slow-path buckets: samples
// drawn adjacent to every step boundary of the inverse CDF must still match
// the reference. It scans each bucket edge directly rather than relying on
// random draws to land there.
func TestGeomTableBoundaries(t *testing.T) {
	for _, mean := range []float64{0.8, 6, 32, 80} {
		denom := geomDenom(mean)
		tab := geomTableFor(denom)
		const shift = 53 - geomTableBits
		slow := 0
		for i := 0; i < 1<<geomTableBits; i++ {
			for _, w := range []uint64{uint64(i) << shift, uint64(i)<<shift + (1<<shift - 1)} {
				u := float64(w) / (1 << 53)
				want := int(math.Floor(math.Log1p(-u) / denom))
				var got int
				if v := tab.vals[i]; v >= 0 {
					got = int(v)
				} else {
					slow++
					got = want // slow path evaluates the same formula verbatim
				}
				if got != want {
					t.Fatalf("mean %v bucket %d w=%d: table %d != reference %d", mean, i, w, got, want)
				}
			}
		}
		if slow == 0 {
			t.Fatalf("mean %v: no slow-path buckets marked; boundary fallback untested", mean)
		}
	}
}
