package trace

import "fmt"

// RegionBlocks is the footprint-bearing region size in 64 B blocks: 2 KB,
// matching Footprint Cache's page granularity so every design sees the same
// spatial structure.
const RegionBlocks = 32

// RegionBytes is the region size in bytes.
const RegionBytes = RegionBlocks * 64

// Profile is the statistical description of one workload. The six presets
// below substitute for the CloudSuite and TPC-H traces of §IV-D; their
// parameters are tuned so the per-workload orderings the paper reports
// (spatial locality, footprint predictability, working-set pressure) hold.
type Profile struct {
	// Name identifies the workload ("web-search", ...).
	Name string
	// WorkingSetBytes is the touched data footprint; regions are drawn
	// from a population of WorkingSetBytes / 2 KB.
	WorkingSetBytes uint64
	// ZipfTheta is the region-popularity skew (0 uniform, ~1 very hot).
	ZipfTheta float64
	// PCs is the function-pool size; footprints correlate with these.
	PCs int
	// PCZipfTheta skews which functions run most often.
	PCZipfTheta float64
	// DensityMin/DensityMax bound per-PC footprint density (fraction of
	// the 32 region blocks a visit touches).
	DensityMin, DensityMax float64
	// SingletonPCFrac is the fraction of PCs whose visits touch a single
	// block (pointer-chasing functions).
	SingletonPCFrac float64
	// PatternNoise is the per-block probability that one visit deviates
	// from the PC's base pattern — the irreducible footprint
	// mispredictability.
	PatternNoise float64
	// Scan selects contiguous-run footprints (column scans, postings
	// lists) instead of scattered ones (object graphs). Runs are also
	// alignment-robust, which matters for Unison's 960 B pages.
	Scan bool
	// AffinityClasses partitions the region space into code-affinity
	// classes: a function's visits stay within its own class except for
	// an AffinityEscape fraction. 0 disables partitioning. This models
	// the code/data correlation footprint prediction exploits [10],[27].
	AffinityClasses int
	// AffinityEscape is the probability a visit leaves its class.
	AffinityEscape float64
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	// GapMean is the mean number of non-memory instructions between
	// consecutive memory accesses.
	GapMean float64
	// RepeatMean is the mean extra accesses to a touched block within a
	// visit (temporal reuse absorbed by the L1/L2).
	RepeatMean float64
}

// Validate sanity-checks the profile.
func (p *Profile) Validate() error {
	if p.WorkingSetBytes < RegionBytes {
		return fmt.Errorf("trace: %s: working set below one region", p.Name)
	}
	if p.PCs <= 0 {
		return fmt.Errorf("trace: %s: need at least one PC", p.Name)
	}
	if p.DensityMin <= 0 || p.DensityMax > 1 || p.DensityMin > p.DensityMax {
		return fmt.Errorf("trace: %s: density bounds [%v,%v] invalid", p.Name, p.DensityMin, p.DensityMax)
	}
	if p.PatternNoise < 0 || p.PatternNoise > 0.5 {
		return fmt.Errorf("trace: %s: pattern noise %v outside [0,0.5]", p.Name, p.PatternNoise)
	}
	if p.SingletonPCFrac < 0 || p.SingletonPCFrac > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 {
		return fmt.Errorf("trace: %s: fractions out of range", p.Name)
	}
	return nil
}

// Regions returns the region population size.
func (p *Profile) Regions() uint64 { return p.WorkingSetBytes / RegionBytes }

// Profiles returns the six workload presets keyed by name.
//
// Tuning rationale (per §IV-D and the Figure 5–8 discussion):
//   - data-analytics: Map-Reduce; pointer-intensive hash-table lookups →
//     the lowest spatial locality, many singleton functions, noisy
//     patterns. The workload where block- and page-based designs converge.
//   - data-serving: Cassandra-style key-value store; hot rows → strong
//     skew, dense footprints; the most memory-bound workload (largest
//     speedups in Figure 7).
//   - software-testing: symbolic-execution engine (Cloud9); irregular,
//     noisy footprints → the lowest footprint-prediction accuracy in
//     Table V.
//   - web-search: index serving; postings-list scans → the highest
//     spatial locality and near-perfect footprints.
//   - web-serving: PHP/database stack; mixed behaviour, moderate skew.
//   - tpch: MonetDB column scans over a >100 GB dataset; dense scan
//     footprints over an enormous, mildly skewed population — only
//     multi-gigabyte caches capture it (Figures 6 and 8).
func Profiles() map[string]*Profile {
	list := []*Profile{
		{
			Name:            "data-analytics",
			Scan:            false,
			AffinityClasses: 512,
			AffinityEscape:  0.01,
			WorkingSetBytes: 5 << 30,
			ZipfTheta:       0.68,
			PCs:             512,
			PCZipfTheta:     0.55,
			DensityMin:      0.04,
			DensityMax:      0.16,
			SingletonPCFrac: 0.45,
			PatternNoise:    0.03,
			WriteFrac:       0.12,
			GapMean:         40,
			RepeatMean:      0.6,
		},
		{
			Name:            "data-serving",
			Scan:            true,
			AffinityClasses: 192,
			AffinityEscape:  0.02,
			WorkingSetBytes: 6 << 30,
			ZipfTheta:       0.8,
			PCs:             192,
			PCZipfTheta:     0.5,
			DensityMin:      0.3,
			DensityMax:      0.75,
			SingletonPCFrac: 0.08,
			PatternNoise:    0.02,
			WriteFrac:       0.2,
			GapMean:         6,
			RepeatMean:      0.8,
		},
		{
			Name:            "software-testing",
			Scan:            false,
			AffinityClasses: 1024,
			AffinityEscape:  0.02,
			WorkingSetBytes: 4 << 30,
			ZipfTheta:       0.78,
			PCs:             1024,
			PCZipfTheta:     0.4,
			DensityMin:      0.15,
			DensityMax:      0.6,
			SingletonPCFrac: 0.15,
			PatternNoise:    0.14,
			WriteFrac:       0.18,
			GapMean:         32,
			RepeatMean:      1.0,
		},
		{
			Name:            "web-search",
			Scan:            true,
			AffinityClasses: 128,
			AffinityEscape:  0.02,
			WorkingSetBytes: 4 << 30,
			ZipfTheta:       0.78,
			PCs:             128,
			PCZipfTheta:     0.5,
			DensityMin:      0.8,
			DensityMax:      1.0,
			SingletonPCFrac: 0.04,
			PatternNoise:    0.015,
			WriteFrac:       0.05,
			GapMean:         44,
			RepeatMean:      1.2,
		},
		{
			Name:            "web-serving",
			Scan:            false,
			AffinityClasses: 384,
			AffinityEscape:  0.01,
			WorkingSetBytes: 5 << 30,
			ZipfTheta:       0.78,
			PCs:             384,
			PCZipfTheta:     0.6,
			DensityMin:      0.25,
			DensityMax:      0.7,
			SingletonPCFrac: 0.12,
			PatternNoise:    0.06,
			WriteFrac:       0.15,
			GapMean:         32,
			RepeatMean:      0.9,
		},
		{
			Name:            "tpch",
			Scan:            true,
			AffinityClasses: 96,
			AffinityEscape:  0.02,
			WorkingSetBytes: 96 << 30,
			ZipfTheta:       0.65,
			PCs:             96,
			PCZipfTheta:     0.4,
			DensityMin:      0.45,
			DensityMax:      0.9,
			SingletonPCFrac: 0.06,
			PatternNoise:    0.04,
			WriteFrac:       0.06,
			GapMean:         80,
			RepeatMean:      0.7,
		},
	}
	m := make(map[string]*Profile, len(list))
	for _, p := range list {
		m[p.Name] = p
	}
	return m
}

// Names returns the canonical workload order used by the paper's figures.
func Names() []string {
	return []string{"data-analytics", "data-serving", "software-testing", "web-search", "web-serving", "tpch"}
}
