package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"unisoncache/internal/mem"
)

// The .utrace binary format, version 1.
//
// A capture freezes the exact per-core event streams of one run so it can
// be replayed later — bit-identical, without the synthetic generator. The
// layout is a versioned header followed by one length-prefixed section per
// core:
//
//	magic   4 bytes  "UTRC"
//	version uvarint  (1)
//	profile uvarint length + bytes (workload name the capture came from)
//	seed    uvarint
//	scale   uvarint  (proportional-scaling divisor the streams were generated with)
//	cores   uvarint
//	events  uvarint  (events per core)
//	cores × { uvarint section length, section bytes }
//
// Each section encodes its core's events in order, three varints per event:
//
//	gap<<1 | write    uvarint — instruction gap with the store bit packed low
//	block delta       zigzag varint vs the previous event's block number
//	PC delta          zigzag varint vs the previous event's PC
//
// Deltas start from zero. Addresses are block-aligned (the generator only
// emits block-granular references), so encoding block numbers is lossless.
// Consecutive events mostly walk adjacent blocks under the same PC, so the
// common event costs three bytes.
const (
	// FileVersion is the current .utrace format version.
	FileVersion = 1
	// FileMaxCores bounds the header's core count against corrupt or
	// hostile inputs.
	FileMaxCores = 4096

	fileMagic      = "UTRC"
	maxProfileName = 1024
)

// FileHeader is the metadata a .utrace capture carries.
type FileHeader struct {
	// Profile is the workload name the capture was generated from. Replay
	// does not need the profile itself — the events are frozen — so a
	// capture outlives its workload registration.
	Profile string
	// Seed is the stream seed of the capture.
	Seed uint64
	// ScaleDivisor is the proportional-scaling divisor the streams were
	// generated with: the frozen events embed the divided working set, so
	// a replay is only meaningful against a run using the same divisor.
	ScaleDivisor int
	// Cores is the number of per-core sections.
	Cores int
	// EventsPerCore is each section's event count.
	EventsPerCore int
}

func (h FileHeader) validate() error {
	if h.Cores <= 0 || h.Cores > FileMaxCores {
		return fmt.Errorf("trace: file header: %d cores outside [1,%d]", h.Cores, FileMaxCores)
	}
	if h.EventsPerCore <= 0 {
		return fmt.Errorf("trace: file header: %d events per core", h.EventsPerCore)
	}
	if h.ScaleDivisor < 1 {
		return fmt.Errorf("trace: file header: scale divisor %d", h.ScaleDivisor)
	}
	if len(h.Profile) > maxProfileName {
		return fmt.Errorf("trace: file header: profile name %d bytes long", len(h.Profile))
	}
	return nil
}

// WriteTrace captures h.EventsPerCore events from each source into w in the
// .utrace format. Sources are drained core-major, so memory stays bounded
// by one encoded section regardless of trace length.
func WriteTrace(w io.Writer, h FileHeader, sources []Source) error {
	if err := h.validate(); err != nil {
		return err
	}
	if len(sources) != h.Cores {
		return fmt.Errorf("trace: %d sources for %d header cores", len(sources), h.Cores)
	}
	var hdr []byte
	hdr = append(hdr, fileMagic...)
	hdr = binary.AppendUvarint(hdr, FileVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(h.Profile)))
	hdr = append(hdr, h.Profile...)
	hdr = binary.AppendUvarint(hdr, h.Seed)
	hdr = binary.AppendUvarint(hdr, uint64(h.ScaleDivisor))
	hdr = binary.AppendUvarint(hdr, uint64(h.Cores))
	hdr = binary.AppendUvarint(hdr, uint64(h.EventsPerCore))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var sec []byte
	for core, src := range sources {
		if src == nil {
			return fmt.Errorf("trace: nil source for core %d", core)
		}
		sec = sec[:0]
		var prevBlock, prevPC uint64
		for i := 0; i < h.EventsPerCore; i++ {
			ev := src.Next()
			g := uint64(ev.Gap) << 1
			if ev.Write {
				g |= 1
			}
			block := ev.Addr.Block()
			sec = binary.AppendUvarint(sec, g)
			sec = binary.AppendUvarint(sec, zigzag(int64(block)-int64(prevBlock)))
			sec = binary.AppendUvarint(sec, zigzag(int64(ev.PC)-int64(prevPC)))
			prevBlock, prevPC = block, ev.PC
		}
		if _, err := w.Write(binary.AppendUvarint(nil, uint64(len(sec)))); err != nil {
			return err
		}
		if _, err := w.Write(sec); err != nil {
			return err
		}
	}
	return nil
}

// ReadTrace parses a .utrace capture and returns one ReplaySource per core.
// The whole file is validated up front — every section must decode to
// exactly the header's event count — so the returned sources cannot fail
// mid-replay.
func ReadTrace(r io.Reader) (FileHeader, []*ReplaySource, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return FileHeader{}, nil, fmt.Errorf("trace: reading capture: %w", err)
	}
	buf := bytes.NewBuffer(data)
	if len(data) < len(fileMagic) || string(buf.Next(len(fileMagic))) != fileMagic {
		return FileHeader{}, nil, fmt.Errorf("trace: not a .utrace capture (bad magic)")
	}
	version, err := binary.ReadUvarint(buf)
	if err != nil {
		return FileHeader{}, nil, fmt.Errorf("trace: truncated header")
	}
	if version != FileVersion {
		return FileHeader{}, nil, fmt.Errorf("trace: unsupported .utrace version %d (have %d)", version, FileVersion)
	}
	var h FileHeader
	nameLen, err := binary.ReadUvarint(buf)
	if err != nil || nameLen > maxProfileName || int(nameLen) > buf.Len() {
		return FileHeader{}, nil, fmt.Errorf("trace: corrupt header (profile name)")
	}
	h.Profile = string(buf.Next(int(nameLen)))
	if h.Seed, err = binary.ReadUvarint(buf); err != nil {
		return FileHeader{}, nil, fmt.Errorf("trace: truncated header")
	}
	scale, err0 := binary.ReadUvarint(buf)
	cores, err1 := binary.ReadUvarint(buf)
	events, err2 := binary.ReadUvarint(buf)
	if err0 != nil || err1 != nil || err2 != nil ||
		scale > math.MaxInt32 || cores > math.MaxInt32 || events > math.MaxInt32 {
		return FileHeader{}, nil, fmt.Errorf("trace: truncated header")
	}
	h.ScaleDivisor, h.Cores, h.EventsPerCore = int(scale), int(cores), int(events)
	if err := h.validate(); err != nil {
		return FileHeader{}, nil, err
	}
	sources := make([]*ReplaySource, h.Cores)
	for c := range sources {
		secLen, err := binary.ReadUvarint(buf)
		if err != nil || secLen > uint64(buf.Len()) {
			return FileHeader{}, nil, fmt.Errorf("trace: truncated section for core %d", c)
		}
		rs := &ReplaySource{data: buf.Next(int(secLen)), remaining: h.EventsPerCore}
		if err := rs.verify(); err != nil {
			return FileHeader{}, nil, fmt.Errorf("trace: core %d: %w", c, err)
		}
		sources[c] = rs
	}
	if buf.Len() != 0 {
		return FileHeader{}, nil, fmt.Errorf("trace: %d trailing bytes after last section", buf.Len())
	}
	return h, sources, nil
}

// ReplaySource replays one core's section of a .utrace capture, decoding
// events lazily so a full trace never materializes in memory. It implements
// Source; construct it through ReadTrace, which validates every section.
type ReplaySource struct {
	data      []byte
	pos       int
	remaining int
	prevBlock uint64
	prevPC    uint64
}

// Remaining returns how many recorded events have not been replayed yet.
func (s *ReplaySource) Remaining() int { return s.remaining }

// Next implements Source. ReadTrace has already proven the section decodes
// cleanly, so the only possible failure is pulling past the recorded
// length, which panics — bound demand with Remaining.
func (s *ReplaySource) Next() Event {
	ev, err := s.next()
	if err != nil {
		panic("trace: replay: " + err.Error())
	}
	return ev
}

// NextBatch implements Batcher: it decodes up to len(dst) events straight
// into the caller's slab, returning fewer — eventually 0 — once the
// recorded section drains. Unlike Next, draining is not an error: batching
// callers observe the short count instead of a panic.
func (s *ReplaySource) NextBatch(dst []Event) int {
	n := len(dst)
	if n > s.remaining {
		n = s.remaining
	}
	for i := 0; i < n; i++ {
		ev, err := s.next()
		if err != nil {
			// ReadTrace verified the section; only corruption of the
			// backing array after construction could land here.
			panic("trace: replay: " + err.Error())
		}
		dst[i] = ev
	}
	return n
}

// next decodes one event, reporting truncation or corruption.
func (s *ReplaySource) next() (Event, error) {
	if s.remaining <= 0 {
		return Event{}, fmt.Errorf("source drained past its recorded length")
	}
	g, err := s.uvarint()
	if err != nil {
		return Event{}, err
	}
	if g>>1 > math.MaxUint32 {
		return Event{}, fmt.Errorf("instruction gap overflows uint32")
	}
	blockDelta, err := s.varint()
	if err != nil {
		return Event{}, err
	}
	pcDelta, err := s.varint()
	if err != nil {
		return Event{}, err
	}
	block := int64(s.prevBlock) + blockDelta
	if block < 0 {
		return Event{}, fmt.Errorf("negative block number")
	}
	s.prevBlock = uint64(block)
	s.prevPC = uint64(int64(s.prevPC) + pcDelta)
	s.remaining--
	return Event{
		Gap:   uint32(g >> 1),
		Addr:  mem.BlockAddr(s.prevBlock),
		PC:    s.prevPC,
		Write: g&1 != 0,
	}, nil
}

// verify decodes the whole section on a scratch copy: exactly `remaining`
// events consuming exactly the section's bytes.
func (s *ReplaySource) verify() error {
	t := *s
	for t.remaining > 0 {
		if _, err := t.next(); err != nil {
			return err
		}
	}
	if t.pos != len(t.data) {
		return fmt.Errorf("%d trailing bytes in section", len(t.data)-t.pos)
	}
	return nil
}

func (s *ReplaySource) uvarint() (uint64, error) {
	v, n := binary.Uvarint(s.data[s.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated event at byte %d", s.pos)
	}
	s.pos += n
	return v, nil
}

func (s *ReplaySource) varint() (int64, error) {
	u, err := s.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// zigzag maps signed deltas onto small unsigned varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
