package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 6.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(mean))
	}
	got := sum / n
	if math.Abs(got-mean) > 0.15 {
		t.Errorf("geometric mean = %v, want ~%v", got, mean)
	}
	if r.Geometric(0) != 0 || r.Geometric(-1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestZipfRange(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.72, 1.0, 1.2} {
		z := NewZipf(1000, theta)
		r := NewRNG(3)
		for i := 0; i < 10000; i++ {
			v := z.Sample(r)
			if v >= 1000 {
				t.Fatalf("theta=%v: sample %d out of range", theta, v)
			}
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher theta concentrates mass on low ranks.
	share := func(theta float64) float64 {
		z := NewZipf(100000, theta)
		r := NewRNG(5)
		hot := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Sample(r) < 1000 { // top 1%
				hot++
			}
		}
		return float64(hot) / n
	}
	s0, s5, s9 := share(0), share(0.5), share(0.95)
	if !(s0 < s5 && s5 < s9) {
		t.Errorf("skew not monotone: %.3f %.3f %.3f", s0, s5, s9)
	}
	if s0 > 0.03 {
		t.Errorf("uniform top-1%% share = %.3f, want ~0.01", s0)
	}
	if s9 < 0.3 {
		t.Errorf("theta=0.95 top-1%% share = %.3f, want heavy", s9)
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0,..) did not panic")
		}
	}()
	NewZipf(0, 0.5)
}

func TestPermIsBijection(t *testing.T) {
	for _, n := range []uint64{1, 2, 100, 1000, 4097} {
		p := NewPerm(n, 99)
		seen := make(map[uint64]bool, n)
		for x := uint64(0); x < n; x++ {
			y := p.Apply(x)
			if y >= n {
				t.Fatalf("n=%d: Apply(%d) = %d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: collision at %d", n, y)
			}
			seen[y] = true
		}
	}
}

func TestPermDeterministicAndSeeded(t *testing.T) {
	p1 := NewPerm(1000, 1)
	p2 := NewPerm(1000, 1)
	p3 := NewPerm(1000, 2)
	same := true
	for x := uint64(0); x < 100; x++ {
		if p1.Apply(x) != p2.Apply(x) {
			t.Fatal("same seed differs")
		}
		if p1.Apply(x) != p3.Apply(x) {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical permutations")
	}
}

func TestPermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Apply did not panic")
		}
	}()
	NewPerm(10, 1).Apply(10)
}

func TestProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(ps))
	}
	for _, name := range Names() {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing workload %q", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// TPC-H must dwarf the others (>100GB dataset in the paper).
	if ps["tpch"].WorkingSetBytes <= 4*ps["web-search"].WorkingSetBytes {
		t.Error("tpch working set should be far larger than CloudSuite workloads")
	}
	// Data Analytics must have the lowest spatial locality.
	if ps["data-analytics"].DensityMax >= ps["web-search"].DensityMin {
		t.Error("data-analytics should be sparser than web-search")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := []*Profile{
		{Name: "tiny", WorkingSetBytes: 100, PCs: 1, DensityMin: 0.1, DensityMax: 0.5},
		{Name: "nopc", WorkingSetBytes: 1 << 20, PCs: 0, DensityMin: 0.1, DensityMax: 0.5},
		{Name: "dens", WorkingSetBytes: 1 << 20, PCs: 1, DensityMin: 0.6, DensityMax: 0.5},
		{Name: "noise", WorkingSetBytes: 1 << 20, PCs: 1, DensityMin: 0.1, DensityMax: 0.5, PatternNoise: 0.9},
		{Name: "wf", WorkingSetBytes: 1 << 20, PCs: 1, DensityMin: 0.1, DensityMax: 0.5, WriteFrac: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", p.Name)
		}
	}
}

func newTestStream(t *testing.T, name string, core int) *Stream {
	t.Helper()
	s, err := NewStream(Profiles()[name], 1234, core)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamDeterminism(t *testing.T) {
	a := newTestStream(t, "web-search", 0)
	b := newTestStream(t, "web-search", 0)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with identical seeds diverged")
		}
	}
}

func TestStreamCoresDiffer(t *testing.T) {
	a := newTestStream(t, "web-search", 0)
	b := newTestStream(t, "web-search", 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 50 {
		t.Error("cores look identical")
	}
}

func TestStreamAddressesInWorkingSet(t *testing.T) {
	p := Profiles()["data-analytics"]
	s := newTestStream(t, "data-analytics", 0)
	for i := 0; i < 100000; i++ {
		ev := s.Next()
		if uint64(ev.Addr) >= p.WorkingSetBytes {
			t.Fatalf("address %d beyond working set %d", ev.Addr, p.WorkingSetBytes)
		}
		if uint64(ev.Addr)%64 != 0 {
			t.Fatalf("address %d not block-aligned", ev.Addr)
		}
	}
}

func TestStreamSpatialLocalityOrdering(t *testing.T) {
	// Web Search visits must touch far more blocks per region visit than
	// Data Analytics — the paper's spatial-locality ordering.
	meanVisit := func(name string) float64 {
		s := newTestStream(t, name, 0)
		visits := 0
		blocks := map[uint64]bool{}
		var cur uint64 = ^uint64(0)
		total := 0
		for i := 0; i < 50000; i++ {
			ev := s.Next()
			r := uint64(ev.Addr) / RegionBytes
			if r != cur {
				visits++
				cur = r
				total += len(blocks)
				blocks = map[uint64]bool{}
			}
			blocks[uint64(ev.Addr)>>6] = true
		}
		return float64(total) / float64(visits)
	}
	da := meanVisit("data-analytics")
	ws := meanVisit("web-search")
	if da >= ws/2 {
		t.Errorf("blocks/visit: data-analytics %.1f vs web-search %.1f; want clear separation", da, ws)
	}
}

func TestStreamWriteFraction(t *testing.T) {
	s := newTestStream(t, "data-serving", 0)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	want := Profiles()["data-serving"].WriteFrac
	if math.Abs(got-want) > 0.02 {
		t.Errorf("write fraction = %.3f, want ~%.2f", got, want)
	}
}

func TestStreamGapMean(t *testing.T) {
	s := newTestStream(t, "web-serving", 0)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(s.Next().Gap)
	}
	got := sum / n
	want := Profiles()["web-serving"].GapMean
	if math.Abs(got-want) > 0.5 {
		t.Errorf("gap mean = %.2f, want ~%.1f", got, want)
	}
}

func TestStreamPCFootprintCorrelation(t *testing.T) {
	// The core property the predictors exploit: two visits by the same PC
	// to different regions touch nearly the same relative blocks.
	s := newTestStream(t, "web-search", 0)
	patterns := map[uint64][]uint32{} // pc -> visit patterns
	var curPC uint64
	var curRegion uint64 = ^uint64(0)
	var pat uint32
	flush := func() {
		if curRegion != ^uint64(0) && pat != 0 {
			patterns[curPC] = append(patterns[curPC], pat)
		}
	}
	for i := 0; i < 200000; i++ {
		ev := s.Next()
		r := uint64(ev.Addr) / RegionBytes
		if r != curRegion {
			flush()
			curRegion, curPC, pat = r, ev.PC, 0
		}
		pat |= 1 << ((uint64(ev.Addr) >> 6) % RegionBlocks)
	}
	flush()
	// Compare pattern pairs within PCs: Jaccard similarity should be high.
	simSum, pairs := 0.0, 0
	for _, ps := range patterns {
		if len(ps) < 2 {
			continue
		}
		for i := 1; i < len(ps) && i < 10; i++ {
			inter := popcount(ps[0] & ps[i])
			union := popcount(ps[0] | ps[i])
			if union > 0 {
				simSum += float64(inter) / float64(union)
				pairs++
			}
		}
	}
	if pairs == 0 {
		t.Skip("no repeated PCs observed")
	}
	if sim := simSum / float64(pairs); sim < 0.7 {
		t.Errorf("intra-PC footprint similarity = %.2f, want >= 0.7 (web-search is highly regular)", sim)
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x > 0; x &= x - 1 {
		n++
	}
	return n
}

func TestStreamEventInvariantsProperty(t *testing.T) {
	s := newTestStream(t, "software-testing", 3)
	f := func(steps uint8) bool {
		for i := 0; i < int(steps); i++ {
			ev := s.Next()
			if uint64(ev.Addr)%64 != 0 || ev.PC == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStreamNext(b *testing.B) {
	s, err := NewStream(Profiles()["web-serving"], 9, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
