package trace

import (
	"bytes"
	"testing"
)

// plainSource hides a Stream's NextBatch so AsBatcher must fall back to the
// generic adapter.
type plainSource struct{ s *Stream }

func (p plainSource) Next() Event { return p.s.Next() }

// TestStreamNextBatchMatchesNext pulls the same stream twice — once event
// by event, once in ragged batches — and requires identical sequences: a
// batch is defined as exactly the events the same number of Next calls
// would return.
func TestStreamNextBatchMatchesNext(t *testing.T) {
	prof := Profiles()["web-serving"]
	ref, err := NewStream(prof, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewStream(prof, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20_000
	want := make([]Event, total)
	for i := range want {
		want[i] = ref.Next()
	}
	// Ragged batch sizes exercise mid-visit splits, single-event batches
	// and batches larger than any one visit.
	sizes := []int{1, 3, 256, 7, 1024, 2, 64}
	got := make([]Event, 0, total)
	buf := make([]Event, 1024)
	for si := 0; len(got) < total; si++ {
		n := sizes[si%len(sizes)]
		if n > total-len(got) {
			n = total - len(got)
		}
		if m := batched.NextBatch(buf[:n]); m != n {
			t.Fatalf("NextBatch(%d) on an unbounded source returned %d", n, m)
		}
		got = append(got, buf[:n]...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: batch %+v != next %+v", i, got[i], want[i])
		}
	}
}

// TestStreamBatchNextInterleave mixes Next and NextBatch on one stream and
// checks the combined sequence against a Next-only reference.
func TestStreamBatchNextInterleave(t *testing.T) {
	prof := Profiles()["data-analytics"]
	ref, _ := NewStream(prof, 11, 0)
	mixed, _ := NewStream(prof, 11, 0)
	buf := make([]Event, 37)
	var got []Event
	for len(got) < 5000 {
		got = append(got, mixed.Next())
		n := mixed.NextBatch(buf)
		got = append(got, buf[:n]...)
	}
	for i := range got {
		if want := ref.Next(); got[i] != want {
			t.Fatalf("event %d: interleaved %+v != reference %+v", i, got[i], want)
		}
	}
}

// TestAsBatcherAdapter checks both faces of AsBatcher: a Batcher passes
// through unwrapped, and a plain Source gets an adapter whose batches
// match Next exactly.
func TestAsBatcherAdapter(t *testing.T) {
	prof := Profiles()["web-search"]
	s, _ := NewStream(prof, 3, 1)
	if b := AsBatcher(s); b != Batcher(s) {
		t.Errorf("AsBatcher(*Stream) wrapped a native Batcher")
	}

	ref, _ := NewStream(prof, 5, 2)
	plain, _ := NewStream(prof, 5, 2)
	b := AsBatcher(plainSource{plain})
	buf := make([]Event, 100)
	for pulled := 0; pulled < 3000; pulled += len(buf) {
		if n := b.NextBatch(buf); n != len(buf) {
			t.Fatalf("adapter NextBatch returned %d, want %d", n, len(buf))
		}
		for i, ev := range buf {
			if want := ref.Next(); ev != want {
				t.Fatalf("event %d: adapter %+v != reference %+v", pulled+i, ev, want)
			}
		}
	}
}

// TestReplaySourceNextBatch round-trips a capture and drains one replay
// with Next and another with ragged NextBatch calls: same events, and the
// batched source reports the drain with short counts instead of panicking.
func TestReplaySourceNextBatch(t *testing.T) {
	const cores, events = 2, 5000
	h := FileHeader{Profile: "web-serving", Seed: 9, ScaleDivisor: 64, Cores: cores, EventsPerCore: events}
	prof := *Profiles()["web-serving"]
	prof.WorkingSetBytes /= 64
	record := make([]Source, cores)
	for i := range record {
		s, err := NewStream(&prof, h.Seed, i)
		if err != nil {
			t.Fatal(err)
		}
		record[i] = s
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, record); err != nil {
		t.Fatal(err)
	}
	_, byNext, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, byBatch, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]Event, 513)
	for c := 0; c < cores; c++ {
		var got []Event
		for {
			n := byBatch[c].NextBatch(slab)
			got = append(got, slab[:n]...)
			if n < len(slab) {
				break
			}
		}
		if len(got) != events {
			t.Fatalf("core %d: batched replay yielded %d events, want %d", c, len(got), events)
		}
		for i, ev := range got {
			if want := byNext[c].Next(); ev != want {
				t.Fatalf("core %d event %d: batch %+v != next %+v", c, i, ev, want)
			}
		}
		if n := byBatch[c].NextBatch(slab); n != 0 {
			t.Errorf("core %d: drained source returned %d events", c, n)
		}
		if byBatch[c].Remaining() != 0 {
			t.Errorf("core %d: %d events remaining after drain", c, byBatch[c].Remaining())
		}
	}
}

// TestGeometricDenomMatchesGeometric locks the cached-denominator sampler
// to RNG.Geometric bit for bit: same RNG consumption, same values — the
// contract that lets the stream hoist the constant log1p term.
func TestGeometricDenomMatchesGeometric(t *testing.T) {
	for _, mean := range []float64{-1, 0, 0.3, 0.8, 6, 44, 80} {
		a, b := NewRNG(123), NewRNG(123)
		denom := geomDenom(mean)
		for i := 0; i < 10_000; i++ {
			want := a.Geometric(mean)
			got := b.geometricDenom(denom)
			if got != want {
				t.Fatalf("mean %v sample %d: geometricDenom %d != Geometric %d", mean, i, got, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("mean %v: RNG states diverged", mean)
		}
	}
}

// BenchmarkStreamNextBatch measures the batched generation hot path the
// simulator actually drives.
func BenchmarkStreamNextBatch(b *testing.B) {
	s, err := NewStream(Profiles()["data-serving"], 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Event, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NextBatch(buf)
	}
	b.SetBytes(int64(len(buf)))
}
