package trace

import (
	"fmt"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/mem"
)

// Stateful is implemented by sources whose replay cursor can be frozen
// into a checkpoint and restored into a freshly constructed source of the
// same configuration. The contract is bit-identity: after LoadState, the
// source must emit exactly the events the original would have emitted from
// the save point on. Both built-in sources implement it; a custom Source
// must too before it can be used with segmented or checkpointed replay.
type Stateful interface {
	SaveState(w *checkpoint.Writer)
	LoadState(r *checkpoint.Reader) error
}

// maxPendingRestore bounds the pending-visit buffer a snapshot may carry;
// real visits are bounded by pendingCap and only exceed it pathologically.
const maxPendingRestore = 1 << 20

// SaveState serializes the stream's cursor: the RNG state and the
// unconsumed remainder of the current visit. Profile-derived structures
// (Zipf tables, the region permutation) are pure functions of the
// configuration and are not serialized — LoadState restores into a stream
// built from the same profile and seed.
func (s *Stream) SaveState(w *checkpoint.Writer) {
	w.Section("trace.stream")
	w.U64(s.rng.state)
	rest := s.pending[s.next:]
	w.U64(uint64(len(rest)))
	for _, ev := range rest {
		w.U32(ev.Gap)
		w.U64(uint64(ev.Addr))
		w.U64(ev.PC)
		w.Bool(ev.Write)
	}
}

// LoadState restores a cursor saved by SaveState. The next visit
// generation resets the pending buffer, so restoring the unconsumed suffix
// at position zero reproduces the original event sequence exactly.
func (s *Stream) LoadState(r *checkpoint.Reader) error {
	r.Section("trace.stream")
	state := r.U64()
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n > maxPendingRestore || int(n)*21 > r.Remaining() {
		return fmt.Errorf("trace: snapshot pending-visit length %d is corrupt", n)
	}
	s.rng.state = state
	s.pending = s.pending[:0]
	for i := uint64(0); i < n; i++ {
		ev := Event{Gap: r.U32()}
		addr := r.U64()
		ev.Addr = mem.Addr(addr)
		ev.PC = r.U64()
		ev.Write = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if addr%mem.BlockSize != 0 {
			return fmt.Errorf("trace: snapshot pending event %d has unaligned address", i)
		}
		s.pending = append(s.pending, ev)
	}
	s.next = 0
	return r.Err()
}

// SaveState serializes the replay cursor over the immutable section bytes.
func (s *ReplaySource) SaveState(w *checkpoint.Writer) {
	w.Section("trace.replay")
	w.U64(uint64(s.pos))
	w.U64(uint64(s.remaining))
	w.U64(s.prevBlock)
	w.U64(s.prevPC)
}

// LoadState restores a cursor saved by SaveState into a source replaying
// the same capture. The restored cursor is re-verified — the remaining
// events must decode cleanly and consume the section exactly — so a
// snapshot from a different capture cannot silently replay garbage.
func (s *ReplaySource) LoadState(r *checkpoint.Reader) error {
	r.Section("trace.replay")
	pos := r.U64()
	remaining := r.U64()
	prevBlock := r.U64()
	prevPC := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if pos > uint64(len(s.data)) || remaining > uint64(len(s.data)-int(pos)) {
		return fmt.Errorf("trace: snapshot replay cursor (pos %d, remaining %d) out of range for %d-byte section", pos, remaining, len(s.data))
	}
	restored := ReplaySource{
		data:      s.data,
		pos:       int(pos),
		remaining: int(remaining),
		prevBlock: prevBlock,
		prevPC:    prevPC,
	}
	if err := restored.verify(); err != nil {
		return fmt.Errorf("trace: snapshot replay cursor does not decode: %w", err)
	}
	*s = restored
	return nil
}

// SaveState forwards to the wrapped Source when it is checkpointable.
func (s sourceBatcher) SaveState(w *checkpoint.Writer) {
	st, ok := s.Source.(Stateful)
	if !ok {
		w.Fail(fmt.Errorf("trace: source %T does not support checkpointing", s.Source))
		return
	}
	st.SaveState(w)
}

// LoadState forwards to the wrapped Source when it is checkpointable.
func (s sourceBatcher) LoadState(r *checkpoint.Reader) error {
	st, ok := s.Source.(Stateful)
	if !ok {
		return fmt.Errorf("trace: source %T does not support checkpointing", s.Source)
	}
	return st.LoadState(r)
}

var (
	_ Stateful = (*Stream)(nil)
	_ Stateful = (*ReplaySource)(nil)
	_ Stateful = sourceBatcher{}
)
