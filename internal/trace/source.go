package trace

// Source produces one core's access-event stream. The timing engine pulls
// events one at a time and never looks ahead, so any producer — the live
// synthetic generator (*Stream), a recorded-trace reader (*ReplaySource),
// or a custom generator — can drive a simulation. Implementations must be
// deterministic for the replay engine's bit-identical-results contract to
// hold: pulling N events twice from identically constructed sources must
// yield the same N events.
type Source interface {
	// Next returns the next access event. Sources are unbounded from the
	// consumer's point of view: the simulator decides how many events to
	// pull. Finite sources (trace files) panic when drained past their
	// recorded length; callers bound their demand up front.
	Next() Event
}

var (
	_ Source = (*Stream)(nil)
	_ Source = (*ReplaySource)(nil)
)
