package trace

// Source produces one core's access-event stream. The timing engine pulls
// events one at a time and never looks ahead, so any producer — the live
// synthetic generator (*Stream), a recorded-trace reader (*ReplaySource),
// or a custom generator — can drive a simulation. Implementations must be
// deterministic for the replay engine's bit-identical-results contract to
// hold: pulling N events twice from identically constructed sources must
// yield the same N events.
type Source interface {
	// Next returns the next access event. Sources are unbounded from the
	// consumer's point of view: the simulator decides how many events to
	// pull. Finite sources (trace files) panic when drained past their
	// recorded length; callers bound their demand up front.
	Next() Event
}

// Batcher is the bulk-pull face of a Source: the simulator's hot loop
// prefetches each core's events into a reusable caller-provided slab,
// paying one dynamic dispatch per batch instead of one per event.
//
// NextBatch and Next consume the same underlying stream, so interleaving
// them is legal: a batch is exactly the events the same number of Next
// calls would have returned. A source's events must not depend on *when*
// they are pulled — each core's stream is generated independently — which
// is what makes prefetching invisible to the min-clock-first scheduler
// (see DESIGN.md §8).
type Batcher interface {
	Source
	// NextBatch fills dst with the stream's next events and returns how
	// many were produced: len(dst) for unbounded sources, possibly fewer
	// (eventually 0) for finite ones that have drained. It never retains
	// dst.
	NextBatch(dst []Event) int
}

// AsBatcher returns src's batching face: src itself when it already
// implements Batcher, otherwise an adapter whose NextBatch loops Next. The
// adapter inherits Next's drained behaviour — a finite source that panics
// when over-pulled still panics mid-batch — so callers bound their demand
// exactly as they would with Next.
func AsBatcher(src Source) Batcher {
	if b, ok := src.(Batcher); ok {
		return b
	}
	return sourceBatcher{src}
}

// sourceBatcher adapts a plain Source to the Batcher interface.
type sourceBatcher struct {
	Source
}

func (s sourceBatcher) NextBatch(dst []Event) int {
	for i := range dst {
		dst[i] = s.Next()
	}
	return len(dst)
}

var (
	_ Batcher = (*Stream)(nil)
	_ Batcher = (*ReplaySource)(nil)
	_ Batcher = sourceBatcher{}
)
