package trace

import (
	"unisoncache/internal/mem"
)

// Event is one memory reference with its leading instruction gap.
type Event struct {
	// Gap is the number of non-memory instructions retired before this
	// access.
	Gap uint32
	// Addr is the physical byte address (block-aligned).
	Addr mem.Addr
	// PC identifies the instruction (the visit's function).
	PC uint64
	// Write marks a store.
	Write bool
}

// Stream produces the access stream of one core. Streams sharing a Profile
// and base seed model threads of one application over shared data: they
// draw from the same region population and function pool but interleave
// independently.
type Stream struct {
	prof   *Profile
	rng    *RNG
	zipfR  *Zipf
	zipfPC *Zipf
	perm   *Perm

	// Precomputed geometric quantile tables (see geomTable): the
	// distribution depends only on the profile, so the per-event sampling
	// path reduces to one table lookup for almost every draw — with the
	// exact log1p fallback guaranteeing bit-identical values.
	gapTab, repeatTab *geomTable

	// Current visit replay state.
	pending []Event
	next    int
}

// pendingCap presizes the visit buffer past the largest plausible visit
// (a full 8-region scan with geometric repeats) so steady-state generation
// never grows it.
const pendingCap = 1024

// NewStream builds the access stream for one core. All cores of a run share
// baseSeed (the region permutation key) and differ by core index.
func NewStream(p *Profile, baseSeed uint64, core int) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Stream{
		prof:      p,
		rng:       NewRNG(baseSeed*0x9e3779b97f4a7c15 + uint64(core)*0x100000001b3 + 1),
		zipfR:     NewZipf(p.Regions(), p.ZipfTheta),
		zipfPC:    NewZipf(uint64(p.PCs), p.PCZipfTheta),
		perm:      NewPerm(p.Regions(), baseSeed),
		gapTab:    geomTableFor(geomDenom(p.GapMean)),
		repeatTab: geomTableFor(geomDenom(p.RepeatMean)),
		pending:   make([]Event, 0, pendingCap),
	}, nil
}

// jitterRun grows or shrinks a contiguous run pattern by one block at a
// random end, modelling scans that stop early or read ahead.
func jitterRun(pat uint32, rng *RNG) uint32 {
	if pat == 0 || pat == ^uint32(0)>>(32-RegionBlocks) {
		return pat
	}
	grow := rng.Bernoulli(0.5)
	for b := 0; b < RegionBlocks; b++ {
		cur := pat&(1<<b) != 0
		nxt := pat&(1<<((b+1)%RegionBlocks)) != 0
		if grow && !cur && nxt {
			return pat | 1<<b // extend at the head
		}
		if !grow && cur && !nxt {
			return pat &^ (1 << b) // trim at the tail
		}
	}
	return pat
}

// patternBounds returns the inclusive block range covered by the pattern,
// widened by one block on each side (clipped to the region).
func patternBounds(pat uint32) (lo, hi int) {
	lo, hi = 0, RegionBlocks-1
	for b := 0; b < RegionBlocks; b++ {
		if pat&(1<<b) != 0 {
			lo = b
			break
		}
	}
	for b := RegionBlocks - 1; b >= 0; b-- {
		if pat&(1<<b) != 0 {
			hi = b
			break
		}
	}
	if lo > 0 {
		lo--
	}
	if hi < RegionBlocks-1 {
		hi++
	}
	return lo, hi
}

// pcValue maps a function index to a stable, spread-out PC value.
func pcValue(pcIdx uint64) uint64 {
	return 0x400000 + mem.Mix64(pcIdx)%(1<<20)*4
}

// pcDensity derives the deterministic footprint density class of a
// function: a SingletonPCFrac share of functions touch one block; the rest
// get a density uniform in [DensityMin, DensityMax].
func (s *Stream) pcDensity(pcIdx uint64) (density float64, singleton bool) {
	h := mem.Mix64(pcIdx ^ 0xabcdef)
	u := float64(h>>11) / (1 << 53)
	if u < s.prof.SingletonPCFrac {
		return 0, true
	}
	u2 := float64(mem.Mix64(h)>>11) / (1 << 53)
	return s.prof.DensityMin + u2*(s.prof.DensityMax-s.prof.DensityMin), false
}

// basePattern derives the function's canonical footprint over a region's 32
// blocks. It is a pure function of the PC, which is what makes footprints
// learnable. All footprints are translation-invariant shapes — contiguous
// runs for scan workloads (column scans, postings lists), strided walks for
// object traversals: the same shape recurs at whatever alignment the
// visited region imposes, which is precisely why the (PC, offset) trigger
// pair predicts footprints across page alignments [10],[27]. Purely random
// scatter would lack this property — and so do few real access patterns.
func (s *Stream) basePattern(pcIdx uint64) uint32 {
	density, singleton := s.pcDensity(pcIdx)
	if singleton {
		return 1 << (mem.Mix64(pcIdx^0x5151) % RegionBlocks)
	}
	count, stride, start := s.patternShape(pcIdx, density)
	var pat uint32
	for i := 0; i < count; i++ {
		pat |= 1 << (start + i*stride)
	}
	return pat
}

// patternShape derives the run parameters of a function's base pattern:
// scans are long contiguous reads; non-scan functions touch short object
// runs. density controls how many blocks the walk touches.
func (s *Stream) patternShape(pcIdx uint64, density float64) (count, stride, start int) {
	stride = 1
	count = int(density*RegionBlocks + 0.5)
	if count < 1 {
		count = 1
	}
	if maxCount := (RegionBlocks-1)/stride + 1; count > maxCount {
		count = maxCount
	}
	span := (count-1)*stride + 1
	start = int(mem.Mix64(pcIdx^0x9d9d) % uint64(RegionBlocks-span+1))
	return count, stride, start
}

// pickRegion draws the visit's region under hierarchical popularity: each
// function owns a contiguous band of the popularity ranking. Popular
// functions own small, hot bands (lookup code over hot structures); rare
// functions own wide, cold bands (scan code sweeping the heap). Band
// widths grow cubically with function rank, so per-function traffic is
// strongly hit- or miss-dominated — the bimodality instruction-indexed
// predictors such as MAP-I exploit — and footprint residency unions stay
// within correlated code (except for the escape fraction).
func (s *Stream) pickRegion(pcIdx uint64) uint64 {
	n := s.prof.Regions()
	c := uint64(s.prof.AffinityClasses)
	if c <= 1 || c > n {
		return s.perm.Apply(s.zipfR.Sample(s.rng))
	}
	class := pcIdx % c
	if s.rng.Bernoulli(s.prof.AffinityEscape) {
		class = s.rng.Uint64() % c
	}
	lo, hi := s.bandBounds(class, c, n)
	slot := lo + s.rng.Uint64()%(hi-lo)
	return s.perm.Apply(slot)
}

// bandBounds returns class k's half-open rank range under a sixth-power
// band-width law: boundary(k) = n * (k/c)^6. The steep law leaves few
// fractionally-resident middle classes: most functions are either fully
// cache-resident (hits) or sweeping far more data than any cache holds
// (misses), matching the bimodal hit/miss behaviour of real server code.
func (s *Stream) bandBounds(k, c, n uint64) (lo, hi uint64) {
	bound := func(i uint64) uint64 {
		f := float64(i) / float64(c)
		f3 := f * f * f
		return uint64(float64(n) * f3 * f3)
	}
	lo, hi = bound(k), bound(k+1)
	if hi <= lo {
		hi = lo + 1
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		lo = hi - 1
	}
	return lo, hi
}

// Next returns the next access event, generating a fresh region visit when
// the current one is exhausted.
func (s *Stream) Next() Event {
	for s.next >= len(s.pending) {
		s.generateVisit()
	}
	ev := s.pending[s.next]
	s.next++
	return ev
}

// NextBatch implements Batcher: it fills dst with the same events the same
// number of Next calls would return, copying whole visits at a time.
func (s *Stream) NextBatch(dst []Event) int {
	n := 0
	for n < len(dst) {
		if s.next >= len(s.pending) {
			s.generateVisit()
			continue
		}
		c := copy(dst[n:], s.pending[s.next:])
		n += c
		s.next += c
	}
	return n
}

// generateVisit materializes one visit: pick a function, then either sweep
// several physically consecutive regions (scan workloads) or touch one
// region with the function's pattern, emitting accesses in ascending order
// with per-block repeats and instruction gaps.
func (s *Stream) generateVisit() {
	s.pending = s.pending[:0]
	s.next = 0

	pcIdx := s.zipfPC.Sample(s.rng)
	pc := pcValue(pcIdx)
	if s.prof.Scan {
		s.generateScan(pcIdx, pc)
		return
	}
	region := s.pickRegion(pcIdx)
	base := s.basePattern(pcIdx)

	// Per-visit noise: walks stop early or read ahead (boundary jitter),
	// plus occasional extra touches adjacent to the pattern. Deviations
	// cluster around the data actually accessed — uniform random flips
	// would keep inventing brand-new trigger offsets, which neither real
	// programs nor this generator do.
	pattern := base
	if s.prof.PatternNoise > 0 {
		for i := 0; i < 2; i++ {
			if s.rng.Bernoulli(s.prof.PatternNoise * RegionBlocks / 4) {
				pattern = jitterRun(pattern, s.rng)
			}
		}
		lo, hi := patternBounds(base)
		for b := lo; b <= hi; b++ {
			if s.rng.Bernoulli(s.prof.PatternNoise / 2) {
				pattern ^= 1 << b
			}
		}
	}
	if pattern == 0 {
		pattern = base
	}

	regionBase := region * RegionBlocks
	for b := 0; b < RegionBlocks; b++ {
		if pattern&(1<<b) == 0 {
			continue
		}
		addr := mem.BlockAddr(regionBase + uint64(b))
		repeats := 1 + s.rng.geometricTab(s.repeatTab)
		for rep := 0; rep < repeats; rep++ {
			s.pending = append(s.pending, Event{
				Gap:   uint32(s.rng.geometricTab(s.gapTab)),
				Addr:  addr,
				PC:    pc,
				Write: s.rng.Bernoulli(s.prof.WriteFrac),
			})
		}
	}
}

// generateScan emits one multi-region sequential sweep: scans cover 2-7
// physically consecutive 2 KB regions (4-14 KB), fully reading interior
// regions and partially reading the two boundary ones. Long physically
// contiguous sweeps are what make scan footprints page-size-agnostic:
// whatever page granularity a cache uses, its interior pages are touched
// end to end, so the (PC, offset) trigger predicts them exactly.
func (s *Stream) generateScan(pcIdx, pc uint64) {
	n := s.prof.Regions()
	base := s.pickRegion(pcIdx)
	density, _ := s.pcDensity(pcIdx)
	regions := 3 + int(mem.Mix64(pcIdx^0x5cab)%8)
	// Boundary trims derive from the function (stable) plus jitter.
	// Scans start part-way into their first allocation unit but end at a
	// region boundary (column chunks and postings lists are allocated in
	// region-sized units).
	headTrim := int(mem.Mix64(pcIdx^0xeadd) % (RegionBlocks / 2))
	tailTrim := 0
	if s.prof.PatternNoise > 0 && s.rng.Bernoulli(s.prof.PatternNoise*8) {
		headTrim += s.rng.Intn(3) - 1
	}
	// density scales the sweep: sparse scan functions make short sweeps.
	if density < 0.5 && regions > 3 {
		regions = 3
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	headTrim = clamp(headTrim, 0, RegionBlocks-1)
	tailTrim = clamp(tailTrim, 0, RegionBlocks-1)
	for i := 0; i < regions; i++ {
		region := base + uint64(i)
		if region >= n {
			break
		}
		lo, hi := 0, RegionBlocks
		if i == 0 {
			lo = headTrim
		}
		if i == regions-1 {
			hi = RegionBlocks - tailTrim
		}
		if hi <= lo {
			continue
		}
		s.emitRange(region, lo, hi, pc)
	}
	if len(s.pending) == 0 {
		s.emitRange(base, 0, RegionBlocks, pc)
	}
}

// emitRange appends accesses for blocks [lo, hi) of region.
func (s *Stream) emitRange(region uint64, lo, hi int, pc uint64) {
	regionBase := region * RegionBlocks
	for b := lo; b < hi; b++ {
		addr := mem.BlockAddr(regionBase + uint64(b))
		repeats := 1 + s.rng.geometricTab(s.repeatTab)
		for rep := 0; rep < repeats; rep++ {
			s.pending = append(s.pending, Event{
				Gap:   uint32(s.rng.geometricTab(s.gapTab)),
				Addr:  addr,
				PC:    pc,
				Write: s.rng.Bernoulli(s.prof.WriteFrac),
			})
		}
	}
}
