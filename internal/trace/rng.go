// Package trace generates the synthetic server-workload memory traces that
// substitute for the paper's CloudSuite and TPC-H traces (Methodology §IV).
//
// The generator reproduces the statistical structure the evaluated designs
// key on, rather than any particular program:
//
//   - memory is visited region by region (2 KB regions, Footprint Cache's
//     page size), with region popularity following a Zipf law over a
//     multi-gigabyte population — high page-level spatial locality, little
//     block-level temporal locality, exactly the server-workload regime of
//     §II;
//   - every visit is attributed to a PC drawn from a small "function pool",
//     and the set of blocks touched (the footprint) is a per-PC base
//     pattern perturbed by noise — making footprints PC-correlated and
//     learnable, the property the footprint predictor exploits (§III-A.1);
//   - a configurable fraction of PCs touch a single block (singleton
//     visits, §III-A.4), modelling pointer-chasing code like the hash-table
//     lookups the paper calls out in Data Analytics.
//
// Everything is deterministically seeded; identical seeds give identical
// traces.
package trace

import (
	"math"
	"sync"
)

// RNG is a splitmix64 pseudo-random generator: tiny state, high quality,
// fully deterministic across platforms.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Geometric returns a sample with the given mean from a geometric
// distribution over {0, 1, 2, ...}; mean <= 0 returns 0.
func (r *RNG) Geometric(mean float64) int {
	return r.geometricDenom(geomDenom(mean))
}

// geomDenom precomputes the denominator of Geometric's inverse CDF for a
// fixed mean: log1p(-p) with p = 1/(mean+1). It returns 0 (a value no
// positive mean produces) as the mean-<=-0 sentinel. Hot paths that sample
// the same distribution millions of times (the stream generator) cache this
// and call geometricDenom, halving the transcendental work per sample while
// producing bit-identical values.
func geomDenom(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return math.Log1p(-(1 / (mean + 1)))
}

// geometricDenom samples the geometric distribution whose precomputed
// geomDenom is denom. A zero denom (mean <= 0) returns 0 without consuming
// randomness, matching Geometric exactly.
func (r *RNG) geometricDenom(denom float64) int {
	if denom == 0 {
		return 0
	}
	u := r.Float64()
	// Inverse CDF of the geometric distribution on {0,1,...}.
	return int(math.Floor(math.Log1p(-u) / denom))
}

// geomTableBits sizes the quantile table: 2^14 buckets over the uniform
// sample keeps the exact-formula fallback under ~5% even for the widest
// profile gap means, and under 1% for typical ones.
const geomTableBits = 14

// geomSlow marks a bucket whose samples must take the exact log1p path.
const geomSlow = int16(-1)

// geomTable is a vectorization of geometricDenom: the inverse CDF is a
// step function of the 53-bit uniform sample, so its value is precomputed
// per bucket of the sample's top geomTableBits bits. A bucket entry is
// only trusted when the quotient log1p(-u)/denom stays strictly inside one
// integer cell across the whole bucket with a safety margin of 1e-9 —
// about four orders of magnitude wider than the worst-case rounding error
// of the quotient — so no monotonicity or correct-rounding assumption
// about math.Log1p is needed; every bucket that contains (or merely comes
// near) a step boundary falls back to the exact formula. Sampling through
// the table is therefore bit-identical to geometricDenom by construction.
type geomTable struct {
	denom float64
	vals  [1 << geomTableBits]int16
}

// newGeomTable builds the quantile table for a nonzero denom.
func newGeomTable(denom float64) *geomTable {
	t := &geomTable{denom: denom}
	const shift = 53 - geomTableBits
	const margin = 1e-9
	for i := range t.vals {
		wLo := uint64(i) << shift
		wHi := wLo + (1<<shift - 1)
		qLo := math.Log1p(-float64(wLo)/(1<<53)) / denom
		qHi := math.Log1p(-float64(wHi)/(1<<53)) / denom
		k := math.Floor(qLo)
		t.vals[i] = geomSlow
		if k == math.Floor(qHi) && qLo-k >= margin && k+1-qHi >= margin &&
			k >= 0 && k <= float64(math.MaxInt16) {
			t.vals[i] = int16(k)
		}
	}
	return t
}

// geomTables shares quantile tables across streams: the table depends only
// on the denominator, which depends only on the profile, so every core's
// stream of a run (and every run of a sweep) reuses one 32 KB table per
// distinct (gap|repeat) mean.
var geomTables sync.Map // math.Float64bits(denom) -> *geomTable

// geomTableFor returns the shared table for denom, or nil for the zero
// (mean <= 0) sentinel, building and caching it on first use.
func geomTableFor(denom float64) *geomTable {
	if denom == 0 {
		return nil
	}
	key := math.Float64bits(denom)
	if v, ok := geomTables.Load(key); ok {
		return v.(*geomTable)
	}
	v, _ := geomTables.LoadOrStore(key, newGeomTable(denom))
	return v.(*geomTable)
}

// geometricTab samples the same distribution, consuming the same single
// Uint64 and returning the same value, as geometricDenom(t.denom) — but
// through the precomputed quantile table, skipping the transcendental call
// for the vast majority of draws. A nil table is the mean-<=-0 sentinel.
func (r *RNG) geometricTab(t *geomTable) int {
	if t == nil {
		return 0
	}
	w := r.Uint64() >> 11 // the exact 53-bit sample Float64 would use
	if v := t.vals[w>>(53-geomTableBits)]; v >= 0 {
		return int(v)
	}
	u := float64(w) / (1 << 53)
	return int(math.Floor(math.Log1p(-u) / t.denom))
}

// Zipf samples ranks in [0, N) under a Zipf-like power law with exponent
// theta, using the continuous inverse-CDF approximation of a truncated
// Pareto distribution. Unlike math/rand's Zipf it supports theta <= 1,
// which server-workload popularity distributions need.
type Zipf struct {
	n     uint64
	theta float64
	// Precomputed terms of the inverse CDF.
	oneMinus float64 // 1 - theta
	scale    float64 // (N+1)^(1-theta) - 1, or ln(N+1) when theta == 1
}

// NewZipf builds a sampler over [0, n) with skew theta >= 0 (0 = uniform).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("trace: Zipf over empty range")
	}
	z := &Zipf{n: n, theta: theta, oneMinus: 1 - theta}
	if theta == 1 {
		z.scale = math.Log(float64(n + 1))
	} else {
		z.scale = math.Pow(float64(n+1), z.oneMinus) - 1
	}
	return z
}

// Sample draws a rank; rank 0 is the most popular.
func (z *Zipf) Sample(r *RNG) uint64 {
	u := r.Float64()
	var x float64
	if z.theta == 1 {
		x = math.Exp(u*z.scale) - 1
	} else {
		x = math.Pow(u*z.scale+1, 1/z.oneMinus) - 1
	}
	rank := uint64(x)
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// Perm is a deterministic pseudo-random permutation over [0, n), built as a
// 4-round Feistel network with cycle-walking. It scatters Zipf ranks across
// the physical address space so hot regions do not cluster in adjacent DRAM
// rows and cache sets.
type Perm struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

// NewPerm builds a permutation over [0, n) keyed by seed.
func NewPerm(n uint64, seed uint64) *Perm {
	if n == 0 {
		panic("trace: Perm over empty range")
	}
	bits := uint(1)
	for uint64(1)<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	p := &Perm{n: n, halfBits: bits / 2, halfMask: uint64(1)<<(bits/2) - 1}
	r := NewRNG(seed ^ 0xfeedface)
	for i := range p.keys {
		p.keys[i] = r.Uint64()
	}
	return p
}

// Apply maps x in [0, n) to its permuted image in [0, n).
func (p *Perm) Apply(x uint64) uint64 {
	if x >= p.n {
		panic("trace: Perm input out of range")
	}
	// Cycle-walk: re-encrypt until the image lands inside [0, n).
	for {
		l := x >> p.halfBits
		r := x & p.halfMask
		for _, k := range p.keys {
			l, r = r, l^(feistelF(r, k)&p.halfMask)
		}
		x = l<<p.halfBits | r
		if x < p.n {
			return x
		}
	}
}

func feistelF(r, k uint64) uint64 {
	x := r ^ k
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
