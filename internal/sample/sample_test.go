package sample

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/sim"
	"unisoncache/internal/trace"
)

func TestDefaults(t *testing.T) {
	d := Default()
	if d.WarmupFrac != 2.0/3.0 || d.IntervalEvents != 1000 || d.GapEvents != 3000 ||
		d.MinIntervals != 4 || d.MaxIntervals != 0 || d.Confidence != 0.95 || d.TargetRelCI != 0.03 {
		t.Errorf("unexpected defaults: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

func TestSentinels(t *testing.T) {
	s := Spec{WarmupFrac: -0.5, GapEvents: -7, TargetRelCI: -2}.WithDefaults()
	if s.WarmupFrac != -1 || s.GapEvents != -1 || s.TargetRelCI != -1 {
		t.Errorf("negative sentinels must canonicalize to -1: %+v", s)
	}
	if s.warmup() != 0 || s.gap() != 0 || s.target() != 0 {
		t.Errorf("sentinels must resolve to none: warmup %v gap %d target %v", s.warmup(), s.gap(), s.target())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("sentinel spec must validate: %v", err)
	}
	if again := s.WithDefaults(); again != s {
		t.Errorf("WithDefaults not idempotent: %+v vs %+v", again, s)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{WarmupFrac: 1.5},
		{WarmupFrac: math.NaN()},
		{IntervalEvents: -5},
		{MinIntervals: 1},
		{MaxIntervals: 3}, // below default MinIntervals 6
		{Confidence: 1.2},
		{Confidence: -0.5},
		{TargetRelCI: 2},
	}
	for _, s := range bad {
		if err := s.WithDefaults().Validate(); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("warmup=0.25, interval=500, gap=250, min=4, max=20, conf=0.9, ci=0.05")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{WarmupFrac: 0.25, IntervalEvents: 500, GapEvents: 250,
		MinIntervals: 4, MaxIntervals: 20, Confidence: 0.9, TargetRelCI: 0.05}
	if s != want {
		t.Errorf("Parse = %+v, want %+v", s, want)
	}
	if on, err := Parse("on"); err != nil || on != (Spec{}) {
		t.Errorf("Parse(on) = %+v, %v; want zero spec", on, err)
	}
	for _, bad := range []string{"", "bogus=1", "interval", "interval=x", "conf=2", "warmup=0.5,,ci=0.02"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	s := Spec{WarmupFrac: 0.25, IntervalEvents: 500, MinIntervals: 4}
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", s.String(), err)
	}
	if back.WithDefaults() != s.WithDefaults() {
		t.Errorf("round trip changed the spec: %+v vs %+v", back.WithDefaults(), s.WithDefaults())
	}
}

func TestWindows(t *testing.T) {
	s := Spec{WarmupFrac: 0.5, IntervalEvents: 1000, GapEvents: 1000}
	fit, warm := s.Windows(80_000)
	if warm != 40_000 {
		t.Errorf("warm = %d, want 40000", warm)
	}
	// 40k left: window at 0..1k, then every 2k: 1 + 39000/2000 = 20.
	if fit != 20 {
		t.Errorf("fit = %d, want 20", fit)
	}
	capped := Spec{WarmupFrac: 0.5, IntervalEvents: 1000, GapEvents: 1000, MaxIntervals: 8}
	if fit, _ := capped.Windows(80_000); fit != 8 {
		t.Errorf("capped fit = %d, want 8", fit)
	}
	if fit, _ := s.Windows(1_000); fit != 0 {
		t.Errorf("tiny budget fit = %d, want 0", fit)
	}
}

// testMachine builds a small no-DRAM-cache machine over live synthetic
// streams, the way the facade wires one.
func testMachine(t *testing.T, cores, seed int) *sim.Machine {
	t.Helper()
	prof := *trace.Profiles()["data-serving"]
	prof.WorkingSetBytes /= 64
	sources := make([]trace.Source, cores)
	for i := range sources {
		s, err := trace.NewStream(&prof, uint64(seed), i)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = s
	}
	stacked, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		t.Fatal(err)
	}
	offchip, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Cores = cores
	cfg.L2.SizeBytes = 128 << 10
	m, err := sim.New(cfg, sources, dramcache.NewNone(offchip), stacked, offchip)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunBudgetTooSmall(t *testing.T) {
	if _, err := Run(testMachine(t, 2, 1), 2_000, Spec{}); err == nil {
		t.Fatal("Run accepted a budget too small for MinIntervals windows")
	}
}

func TestRunMeasuresAndBounds(t *testing.T) {
	const accesses = 30_000
	spec := Spec{WarmupFrac: 0.5, IntervalEvents: 500, GapEvents: 500, MinIntervals: 4, TargetRelCI: -1}
	rep, err := Run(testMachine(t, 2, 1), accesses, spec)
	if err != nil {
		t.Fatal(err)
	}
	// No early stop: every window that fits is measured.
	fit, _ := spec.Windows(accesses)
	if len(rep.Windows) != fit {
		t.Errorf("measured %d windows, want all %d", len(rep.Windows), fit)
	}
	if rep.Converged {
		t.Error("Converged must be false with early stop disabled")
	}
	if rep.UIPC <= 0 || rep.Results.Instructions == 0 {
		t.Errorf("empty report: UIPC %v, instr %d", rep.UIPC, rep.Results.Instructions)
	}
	if rep.DetailedPerCore != fit*spec.IntervalEvents {
		t.Errorf("DetailedPerCore = %d, want %d", rep.DetailedPerCore, fit*spec.IntervalEvents)
	}
	if rep.ConsumedPerCore > accesses {
		t.Errorf("consumed %d events per core, budget %d", rep.ConsumedPerCore, accesses)
	}
}

func TestRunEarlyStop(t *testing.T) {
	const accesses = 60_000
	// A loose target a steady workload meets quickly.
	spec := Spec{WarmupFrac: 0.5, IntervalEvents: 1000, GapEvents: 500, MinIntervals: 4, TargetRelCI: 0.3}
	rep, err := Run(testMachine(t, 4, 1), accesses, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("run did not converge at a ±30%% target (windows: %d, halfwidth %v)", len(rep.Windows), rep.HalfWidth)
	}
	fit, _ := spec.Windows(accesses)
	if len(rep.Windows) >= fit {
		t.Errorf("early stop measured all %d windows", fit)
	}
	if rep.ConsumedPerCore >= accesses {
		t.Errorf("early stop saved nothing: consumed %d of %d", rep.ConsumedPerCore, accesses)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := Spec{WarmupFrac: 0.5, IntervalEvents: 500, GapEvents: 500, MinIntervals: 4}
	a, err := Run(testMachine(t, 2, 7), 30_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testMachine(t, 2, 7), 30_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Windows) != len(b.Windows) || a.UIPC != b.UIPC || a.HalfWidth != b.HalfWidth {
		t.Fatalf("sampled runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Windows {
		if !reflect.DeepEqual(a.Windows[i], b.Windows[i]) {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}

func TestSpecStringIsFlagParseable(t *testing.T) {
	if strings.ContainsAny(Default().String(), " \t") {
		t.Error("Spec.String must be a flag-friendly single token")
	}
}
