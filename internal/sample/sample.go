// Package sample implements SMARTS-style sampled simulation: instead of
// measuring one long contiguous interval, a run is scheduled as functional
// warmup followed by short detailed measurement windows separated by
// functional gaps, with a confidence interval computed over the per-window
// metrics and the run terminated early once a requested relative CI
// half-width is reached (e.g. ±2% at 95%).
//
// Phase vocabulary, mapped onto this reproduction's engine (DESIGN.md §9):
//
//   - functional phases (warmup, inter-window gaps) advance every piece of
//     simulated state — cache content, predictor training, row buffers,
//     core clocks — but contribute nothing to the windowed throughput
//     estimate. The engine has no cheaper functional mode (its detailed
//     model *is* its state model), so functional events cost the same
//     wall-clock as detailed ones; the speedup of a sampled run comes from
//     adaptive early termination, which skips the rest of the trace
//     entirely once the estimate is tight.
//   - detailed windows are the measurement intervals: per-core
//     instruction/cycle snapshots at each window's boundaries — taken
//     inside one continuous replay, never by pausing it — feed the summed
//     per-core ratio estimator (stats.SummedRatios) whose delta-method
//     variance carries the confidence interval.
//
// Everything is deterministic: a fixed Spec, Run configuration and seed
// yields a bit-identical Report, including the early-stop decision.
package sample

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"unisoncache/internal/sim"
	"unisoncache/internal/stats"
)

// Spec configures the sampling schedule and stopping rule. The zero value
// of a field selects its default; the -1 sentinels mirror Run.ScaleDivisor
// ("the default choice spelled explicitly" becomes "explicitly none").
type Spec struct {
	// WarmupFrac is the fraction of the run's event budget spent on
	// functional warmup before the first window (default 2/3, matching
	// the full-run pipeline so the windows subsample exactly the region
	// a full run measures; negative means no warmup).
	WarmupFrac float64
	// WarmupEvents, when positive, overrides WarmupFrac with an absolute
	// per-core event count. An absolute warmup pins the window schedule
	// to fixed event offsets independent of the run's budget, which
	// keeps matched pairs aligned across runs with different budgets
	// (CI-target plans refine window *density* instead and never need
	// it — see SweepSampled).
	WarmupEvents int
	// IntervalEvents is the detailed window length, in events per core
	// (default 1000).
	IntervalEvents int
	// GapEvents is the functional gap between consecutive windows, in
	// events per core (default 3x IntervalEvents — a 25% detailed duty
	// cycle that CI-target sweeps densify on demand; -1 means no gap,
	// tiling the windows back to back).
	GapEvents int
	// MinIntervals is the smallest number of windows measured before the
	// stopping rule may trigger (default 4, floor 2 — one window carries
	// no variance information).
	MinIntervals int
	// MaxIntervals caps the window count (default 0: as many as the
	// event budget fits).
	MaxIntervals int
	// Confidence is the two-sided confidence level of the interval
	// (default 0.95).
	Confidence float64
	// TargetRelCI is the early-stop target: measurement ends once the
	// CI half-width divided by the mean is at or below it (default 0.03;
	// -1 means no early stop — measure every window that fits).
	TargetRelCI float64
}

// Default returns the fully defaulted spec.
func Default() Spec { return Spec{}.WithDefaults() }

// WithDefaults fills zero fields and canonicalizes negative sentinels to
// -1. It is idempotent — the facade's Run defaulting and the driver's own
// defaulting may both apply it — which is why "none" is stored as -1
// rather than collapsing to the zero that means "pick the default".
func (s Spec) WithDefaults() Spec {
	switch {
	case s.WarmupFrac == 0:
		s.WarmupFrac = 2.0 / 3.0
	case s.WarmupFrac < 0:
		s.WarmupFrac = -1
	}
	if s.IntervalEvents == 0 {
		s.IntervalEvents = 1000
	}
	switch {
	case s.GapEvents == 0:
		s.GapEvents = 3 * s.IntervalEvents
	case s.GapEvents < 0:
		s.GapEvents = -1
	}
	if s.MinIntervals == 0 {
		s.MinIntervals = 4
	}
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}
	switch {
	case s.TargetRelCI == 0:
		s.TargetRelCI = 0.03
	case s.TargetRelCI < 0:
		s.TargetRelCI = -1
	}
	return s
}

// warmup, gap and target resolve the -1 sentinels to their effective
// values.
func (s Spec) warmup() float64 {
	if s.WarmupFrac < 0 {
		return 0
	}
	return s.WarmupFrac
}

// warmupIn returns the warmup length for one run's event budget.
func (s Spec) warmupIn(accessesPerCore int) int {
	if s.WarmupEvents > 0 {
		if s.WarmupEvents > accessesPerCore {
			return accessesPerCore
		}
		return s.WarmupEvents
	}
	return int(float64(accessesPerCore) * s.warmup())
}

func (s Spec) gap() int {
	if s.GapEvents < 0 {
		return 0
	}
	return s.GapEvents
}

func (s Spec) target() float64 {
	if s.TargetRelCI < 0 {
		return 0
	}
	return s.TargetRelCI
}

// Validate checks a defaulted spec. Call it on s.WithDefaults(); raw specs
// still carrying zero values are not meaningful to validate.
func (s Spec) Validate() error {
	if s.WarmupFrac >= 1 || math.IsNaN(s.WarmupFrac) || (s.WarmupFrac < 0 && s.WarmupFrac != -1) {
		return fmt.Errorf("sample: WarmupFrac %v outside [0,1) (use -1 for none)", s.WarmupFrac)
	}
	if s.WarmupEvents < 0 || s.WarmupEvents > 1<<30 {
		return fmt.Errorf("sample: WarmupEvents %d outside [0, 2^30]", s.WarmupEvents)
	}
	if s.IntervalEvents < 1 {
		return fmt.Errorf("sample: IntervalEvents must be >= 1, got %d", s.IntervalEvents)
	}
	if s.IntervalEvents > 1<<30 {
		return fmt.Errorf("sample: IntervalEvents %d implausibly large", s.IntervalEvents)
	}
	if s.GapEvents > 1<<30 || (s.GapEvents < 0 && s.GapEvents != -1) {
		return fmt.Errorf("sample: GapEvents %d outside [0, 2^30] (use -1 for none)", s.GapEvents)
	}
	if s.MinIntervals < 2 {
		return fmt.Errorf("sample: MinIntervals must be >= 2 (one window carries no variance), got %d", s.MinIntervals)
	}
	if s.MaxIntervals < 0 {
		return fmt.Errorf("sample: MaxIntervals %d negative (0 means unlimited)", s.MaxIntervals)
	}
	if s.MaxIntervals != 0 && s.MaxIntervals < s.MinIntervals {
		return fmt.Errorf("sample: MaxIntervals %d below MinIntervals %d", s.MaxIntervals, s.MinIntervals)
	}
	if s.Confidence <= 0 || s.Confidence >= 1 || math.IsNaN(s.Confidence) {
		return fmt.Errorf("sample: Confidence %v outside (0,1)", s.Confidence)
	}
	if s.TargetRelCI >= 1 || math.IsNaN(s.TargetRelCI) || (s.TargetRelCI < 0 && s.TargetRelCI != -1) {
		return fmt.Errorf("sample: TargetRelCI %v outside [0,1) (use -1 for none)", s.TargetRelCI)
	}
	return nil
}

// Parse reads the flag form of a Spec: a comma-separated key=value list,
// e.g. "warmup=0.5,interval=1000,gap=1000,min=6,max=0,conf=0.95,ci=0.02".
// The words "on" and "default" select the all-defaults spec. Keys may be
// omitted; values use the same zero/-1 conventions as the struct fields.
// The returned spec is raw (defaults not yet applied) but guaranteed to
// validate after WithDefaults.
func Parse(text string) (Spec, error) {
	var s Spec
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return s, fmt.Errorf("sample: empty spec")
	}
	if trimmed == "on" || trimmed == "default" {
		return s, nil
	}
	for _, part := range strings.Split(trimmed, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return s, fmt.Errorf("sample: empty key=value element in %q", text)
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("sample: element %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "warmup":
			s.WarmupFrac, err = parseFloat(val)
		case "warmupevents":
			s.WarmupEvents, err = parseInt(val)
		case "interval":
			s.IntervalEvents, err = parseInt(val)
		case "gap":
			s.GapEvents, err = parseInt(val)
		case "min":
			s.MinIntervals, err = parseInt(val)
		case "max":
			s.MaxIntervals, err = parseInt(val)
		case "conf", "confidence":
			s.Confidence, err = parseFloat(val)
		case "ci", "target":
			s.TargetRelCI, err = parseFloat(val)
		default:
			return s, fmt.Errorf("sample: unknown key %q (have warmup, warmupevents, interval, gap, min, max, conf, ci)", key)
		}
		if err != nil {
			return s, fmt.Errorf("sample: %s=%q: %w", key, val, err)
		}
	}
	if err := s.WithDefaults().Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func parseFloat(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("not finite")
	}
	return f, nil
}

func parseInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("not an integer")
	}
	return n, nil
}

// String renders the spec in Parse's format (defaults applied first), so
// a spec round-trips through the flag form.
func (s Spec) String() string {
	d := s.WithDefaults()
	out := fmt.Sprintf("warmup=%g,interval=%d,gap=%d,min=%d,max=%d,conf=%g,ci=%g",
		d.WarmupFrac, d.IntervalEvents, d.GapEvents, d.MinIntervals, d.MaxIntervals, d.Confidence, d.TargetRelCI)
	if d.WarmupEvents > 0 {
		out += fmt.Sprintf(",warmupevents=%d", d.WarmupEvents)
	}
	return out
}

// Windows returns how many detailed windows the schedule fits into
// accessesPerCore events (before any early stop), and the warmup length.
func (s Spec) Windows(accessesPerCore int) (fit, warm int) {
	d := s.WithDefaults()
	warm = d.warmupIn(accessesPerCore)
	left := accessesPerCore - warm
	if left >= d.IntervalEvents {
		fit = 1 + (left-d.IntervalEvents)/(d.IntervalEvents+d.gap())
	}
	if d.MaxIntervals > 0 && fit > d.MaxIntervals {
		fit = d.MaxIntervals
	}
	return fit, warm
}

// Report is one sampled run's outcome.
type Report struct {
	// Windows holds one entry per detailed measurement window, in
	// schedule order. The per-window (Instructions, Cycles) pairs are
	// the estimator's samples; matched-pair speedup CIs pair them across
	// runs.
	Windows []sim.Interval
	// UIPC is the sampled throughput estimate: the summed per-core ratio
	// estimator Σ_core(Σinstr/Σcycles) over the windows, which reproduces
	// the whole-region UIPC exactly when the windows tile the region. A
	// naive mean of per-window UIPCs weights long and short windows
	// equally (several percent off), and any estimator built from window
	// aggregates alone misses the per-core cycle spread (tens of percent
	// off) — per-core pairing is load-bearing.
	UIPC float64
	// HalfWidth is the CI half-width on UIPC at Spec.Confidence.
	HalfWidth float64
	// Converged reports whether the early-stop target was reached (always
	// false when the target is disabled).
	Converged bool
	// DetailedPerCore and ConsumedPerCore count events per core inside
	// detailed windows and in total (warmup + gaps + windows). The spread
	// between ConsumedPerCore and the run's event budget is what early
	// termination saved.
	DetailedPerCore int
	ConsumedPerCore int
	// Results covers the whole measured region — every event from the
	// first window's start through the last window's end, gaps included —
	// so ratio statistics (miss ratios, predictor accuracies, traffic)
	// use all post-warmup events. Results.UIPC is the region value, NOT
	// the windowed estimate; callers wanting the sampled estimator read
	// Report.UIPC.
	Results sim.Results
}

// Run executes the sampled schedule on a prepared machine: functional
// warmup, then one continuous replay measuring detailed windows separated
// by functional gaps, stopping early once the CI target holds (after
// MinIntervals windows), or at the last window the budget fits. The
// window boundaries are per-core counter snapshots inside the continuous
// replay — no synchronization barrier ever splits the schedule, so the
// event interleaving (and therefore the contention physics) is the same
// one the full run replays. accessesPerCore bounds the total events
// pulled per core — a finite replay source sized to the run is never
// over-pulled.
func Run(m *sim.Machine, accessesPerCore int, spec Spec) (Report, error) {
	return run(m, accessesPerCore, spec, false)
}

// RunWarmed is Run for a machine whose functional warmup has already
// happened — restored from a warmup-boundary checkpoint of the same
// configuration. The schedule from the boundary on is identical to Run's
// (warmup still counts toward ConsumedPerCore; it was simulated, just by
// the run the checkpoint came from), so a warm-started report is
// bit-identical to a cold one.
func RunWarmed(m *sim.Machine, accessesPerCore int, spec Spec) (Report, error) {
	return run(m, accessesPerCore, spec, true)
}

func run(m *sim.Machine, accessesPerCore int, spec Spec, warmed bool) (Report, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	fit, warm := spec.Windows(accessesPerCore)
	if fit < spec.MinIntervals {
		return Report{}, fmt.Errorf(
			"sample: %d accesses per core fit %d measurement windows after %d warmup events, need MinIntervals=%d (shorten the spec or lengthen the run)",
			accessesPerCore, fit, warm, spec.MinIntervals)
	}
	if warm > 0 && !warmed {
		m.Replay(warm)
	}
	m.BeginMeasurement()

	// Window w starts at w*(interval+gap) past the warmup boundary; the
	// replay horizon is the last window's end — nothing beyond it can be
	// measured, so nothing beyond it is simulated.
	starts := make([]int, fit)
	stride := spec.IntervalEvents + spec.gap()
	for w := range starts {
		starts[w] = w * stride
	}
	horizon := starts[fit-1] + spec.IntervalEvents

	var rep Report
	var est *stats.SummedRatios
	consumed := m.ReplaySampled(horizon, starts, spec.IntervalEvents, func(w int, iv sim.Interval) bool {
		rep.Windows = append(rep.Windows, iv)
		if est == nil {
			est = stats.NewSummedRatios(len(iv.PerCore))
		}
		samples := make([]stats.RatioSample, len(iv.PerCore))
		for c, d := range iv.PerCore {
			samples[c] = stats.RatioSample{Y: float64(d.Instructions), X: float64(d.Cycles)}
		}
		est.AddWindow(samples)
		if len(rep.Windows) >= spec.MinIntervals && spec.target() > 0 &&
			est.RelCI(spec.Confidence) <= spec.target() {
			rep.Converged = true
			return false
		}
		return true
	})
	rep.Results = m.CollectResults()
	rep.UIPC = est.Value()
	rep.HalfWidth = est.CI(spec.Confidence)
	rep.DetailedPerCore = len(rep.Windows) * spec.IntervalEvents
	rep.ConsumedPerCore = warm + consumed
	return rep, nil
}
