package sample

import (
	"testing"
)

// FuzzParse hammers the sample-spec flag parser with arbitrary strings: it
// must never panic, and every accepted spec must uphold the invariants the
// sampled-simulation driver relies on — a defaulted spec that validates,
// and a String form that reparses to the same defaulted spec (so flags,
// logs and golden files round-trip).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"on", "default",
		"warmup=0.5,interval=1000,gap=1000,min=6,max=0,conf=0.95,ci=0.02",
		"warmup=-1,gap=-1,ci=-1",
		"interval=500", "conf=0.99", "ci=0.05", "min=2,max=2",
		"warmup=0.999999", "interval=1073741824", "max=1",
		"confidence=0.9,target=0.1", " warmup = 0.25 , interval = 250 ",
		"", "bogus=1", "interval=", "=5", "conf=NaN", "conf=+Inf",
		"interval=99999999999999999999", "warmup=1", "min=-3",
		"warmup=0.5,,ci=0.02", "interval=0x10", "ci=1e-9", "conf=0.5000",
		"interval=1000\x00", "ｗａｒｍｕｐ=0.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		d := s.WithDefaults()
		if verr := d.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted a spec whose defaulted form fails Validate: %v", text, verr)
		}
		// Accepted specs must round-trip through the flag form.
		back, rerr := Parse(s.String())
		if rerr != nil {
			t.Fatalf("Parse(%q).String() = %q does not reparse: %v", text, s.String(), rerr)
		}
		if back.WithDefaults() != d {
			t.Fatalf("round trip changed the spec: %+v vs %+v", back.WithDefaults(), d)
		}
		// The schedule arithmetic must stay panic-free and sane on any
		// accepted spec.
		for _, budget := range []int{0, 1, 999, 80_000} {
			fit, warm := d.Windows(budget)
			if fit < 0 || warm < 0 || warm > budget {
				t.Fatalf("Windows(%d) = fit %d, warm %d on %+v", budget, fit, warm, d)
			}
		}
	})
}
