// Package store is the daemon's persistent result store: a disk-backed,
// crash-safe key/value log for content-addressed simulation results.
// Values are opaque bytes (the service stores canonical Result JSON)
// addressed by their run key, written through on every execution so a
// restarted daemon serves its history from disk instead of re-simulating.
//
// The layout is a classic append-only segment log:
//
//	dir/000000000001.seg
//	dir/000000000002.seg   <- active (appends go here)
//
// Each segment is a sequence of CRC-framed records (see ReadSegment). The
// whole key space lives in an in-memory index (key -> newest record
// location); Get is one ReadAt, Put is one buffered append. Opening a
// directory replays every segment in id order, rebuilding the index —
// later records win, so rewriting a key is just another append. A record
// torn by a crash (truncated tail, flipped bits) fails its CRC; recovery
// drops the torn tail by truncating the segment at the last clean record
// boundary and keeps everything before it. No record that was fully
// written is ever lost, and no partial record is ever served.
//
// The store is byte-bounded with segment-granularity eviction: when the
// total on-disk size exceeds the budget, whole oldest segments are
// deleted (cheap — one unlink, no compaction), dropping whatever keys
// still lived there. Results are immutable and re-derivable, so eviction
// is always safe; it only costs a future re-simulation or peer fetch.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record framing: fixed 8-byte header (key length, value length, little
// endian), key bytes, value bytes, then a CRC-32 (IEEE) over header+key+
// value. The CRC makes every flipped bit and every truncation detectable;
// there is no record-level magic because segment files are never shared
// with other formats.
const recordHeaderLen = 8
const recordTrailerLen = 4

// maxRecordSide bounds each of key and value length so a corrupt header
// cannot ask recovery (or a fuzzer) to allocate gigabytes.
const maxRecordSide = 1 << 30

// Record is one decoded key/value pair.
type Record struct {
	Key   string
	Value []byte
}

// size returns the encoded length of the record.
func (r Record) size() int64 {
	return int64(recordHeaderLen + len(r.Key) + len(r.Value) + recordTrailerLen)
}

// AppendRecord encodes r onto buf and returns the extended slice.
func AppendRecord(buf []byte, r Record) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(r.Value)))
	start := len(buf)
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Key...)
	buf = append(buf, r.Value...)
	crc := crc32.ChecksumIEEE(buf[start:])
	var trailer [recordTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	return append(buf, trailer[:]...)
}

// ReadSegment decodes a segment byte stream into its records. It returns
// every cleanly framed record and the offset just past the last one
// (clean); when the remaining bytes do not form a complete, CRC-valid
// record, err describes the torn tail. A torn tail is data loss only for
// records that were mid-write when the process died — recovery truncates
// at clean and the log stays appendable.
func ReadSegment(data []byte) (recs []Record, clean int, err error) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < recordHeaderLen {
			return recs, pos, fmt.Errorf("store: truncated record header at offset %d", pos)
		}
		keyLen := binary.LittleEndian.Uint32(data[pos : pos+4])
		valLen := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if keyLen > maxRecordSide || valLen > maxRecordSide {
			return recs, pos, fmt.Errorf("store: implausible record lengths (%d, %d) at offset %d", keyLen, valLen, pos)
		}
		total := recordHeaderLen + int(keyLen) + int(valLen) + recordTrailerLen
		if len(data)-pos < total {
			return recs, pos, fmt.Errorf("store: truncated record at offset %d (want %d bytes, have %d)", pos, total, len(data)-pos)
		}
		body := data[pos : pos+total-recordTrailerLen]
		want := binary.LittleEndian.Uint32(data[pos+total-recordTrailerLen : pos+total])
		if crc32.ChecksumIEEE(body) != want {
			return recs, pos, fmt.Errorf("store: CRC mismatch at offset %d", pos)
		}
		key := string(body[recordHeaderLen : recordHeaderLen+int(keyLen)])
		val := append([]byte(nil), body[recordHeaderLen+int(keyLen):]...)
		recs = append(recs, Record{Key: key, Value: val})
		pos += total
	}
	return recs, pos, nil
}

// Options parameterize Open.
type Options struct {
	// MaxBytes bounds the total on-disk size (default 1 GiB). When an
	// append pushes past it, whole oldest segments are evicted.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment
	// (default 4 MiB). Smaller segments evict at finer granularity.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 30
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// segment is one on-disk log file.
type segment struct {
	id   uint64
	path string
	f    *os.File // open for the store's life (reads; writes on the active one)
	size int64
	keys []string // keys appended here (for index cleanup on eviction)
}

// recordLoc addresses one live record.
type recordLoc struct {
	seg    *segment
	off    int64 // offset of the value bytes
	valLen int
}

// Store is the disk-backed key/value store. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	dir   string
	opts  Options
	segs  []*segment // oldest first; last is the active (append) segment
	index map[string]recordLoc
	size  int64
}

// Open opens (or creates) a store in dir, replaying existing segments to
// rebuild the index. Torn segment tails are truncated away; fully written
// records always survive.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, index: make(map[string]recordLoc)}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue // not ours; leave it alone
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := s.replaySegment(id); err != nil {
			s.Close()
			return nil, err
		}
	}
	if len(s.segs) == 0 || s.segs[len(s.segs)-1].size >= opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// replaySegment reads one existing segment file, indexes its clean
// records and truncates any torn tail.
func (s *Store) replaySegment(id uint64) error {
	path := s.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	recs, clean, terr := ReadSegment(data)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if terr != nil && clean < len(data) {
		// Drop the torn tail so future appends land on a clean boundary.
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	seg := &segment{id: id, path: path, f: f, size: int64(clean)}
	off := int64(0)
	for _, r := range recs {
		seg.keys = append(seg.keys, r.Key)
		s.index[r.Key] = recordLoc{
			seg:    seg,
			off:    off + recordHeaderLen + int64(len(r.Key)),
			valLen: len(r.Value),
		}
		off += r.size()
	}
	s.segs = append(s.segs, seg)
	s.size += seg.size
	return nil
}

func (s *Store) segPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%012d.seg", id))
}

// rotateLocked opens a fresh active segment.
func (s *Store) rotateLocked() error {
	var next uint64 = 1
	if n := len(s.segs); n > 0 {
		next = s.segs[n-1].id + 1
	}
	path := s.segPath(next)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{id: next, path: path, f: f})
	return nil
}

// Get returns the newest value stored under key. The returned slice is
// private to the caller.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	val := make([]byte, loc.valLen)
	if _, err := loc.seg.f.ReadAt(val, loc.off); err != nil {
		return nil, false, fmt.Errorf("store: reading %s: %w", loc.seg.path, err)
	}
	return val, true, nil
}

// Put appends the record and indexes it, rotating and evicting as the
// byte budgets require. The write is a single append; a crash mid-Put
// loses at most this record (recovery drops the torn tail).
func (s *Store) Put(key string, val []byte) error {
	rec := Record{Key: key, Value: val}
	blob := AppendRecord(make([]byte, 0, rec.size()), rec)

	s.mu.Lock()
	defer s.mu.Unlock()
	active := s.segs[len(s.segs)-1]
	if active.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.WriteAt(blob, active.size); err != nil {
		return fmt.Errorf("store: appending to %s: %w", active.path, err)
	}
	s.index[key] = recordLoc{
		seg:    active,
		off:    active.size + recordHeaderLen + int64(len(key)),
		valLen: len(val),
	}
	active.keys = append(active.keys, key)
	active.size += int64(len(blob))
	s.size += int64(len(blob))
	s.evictLocked()
	return nil
}

// evictLocked unlinks whole oldest segments until the store fits its byte
// budget. The active segment is never evicted, so one oversized record
// can exceed the budget rather than vanish immediately.
func (s *Store) evictLocked() {
	for s.size > s.opts.MaxBytes && len(s.segs) > 1 {
		seg := s.segs[0]
		s.segs = s.segs[1:]
		for _, k := range seg.keys {
			if loc, ok := s.index[k]; ok && loc.seg == seg {
				delete(s.index, k)
			}
		}
		s.size -= seg.size
		seg.f.Close()
		os.Remove(seg.path)
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// SizeBytes returns the total on-disk size.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close releases every file handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	s.index = map[string]recordLoc{}
	s.size = 0
	return first
}
