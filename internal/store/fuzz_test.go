package store

import (
	"bytes"
	"testing"
)

// FuzzReadSegment fuzzes the segment decoder with the recovery
// invariants: it never panics, never claims clean bytes beyond the
// input, reports an error exactly when it stopped short, and every
// record it does return re-encodes to exactly the bytes it was parsed
// from (so recovery can only ever index data that was genuinely
// written). The committed corpus holds valid segments; the fuzzer's
// flips and truncations of them must all be detected.
func FuzzReadSegment(f *testing.F) {
	var seed []byte
	seed = AppendRecord(seed, Record{Key: "k1", Value: []byte("hello world")})
	seed = AppendRecord(seed, Record{Key: "a-much-longer-key-for-variety", Value: bytes.Repeat([]byte{0x5A}, 100)})
	seed = AppendRecord(seed, Record{Key: "empty", Value: nil})
	f.Add(seed)
	f.Add(AppendRecord(nil, Record{Key: "", Value: []byte("no key")}))
	f.Add([]byte{})
	f.Add(seed[:len(seed)-3]) // torn tail

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := ReadSegment(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d outside input of %d bytes", clean, len(data))
		}
		if (err == nil) != (clean == len(data)) {
			t.Fatalf("err %v inconsistent with clean %d of %d", err, clean, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if len(re) != clean || !bytes.Equal(re, data[:clean]) {
			t.Fatalf("parsed records re-encode to %d bytes differing from the %d clean input bytes", len(re), clean)
		}
	})
}
