package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestStorePutGet: basic round trip, overwrite semantics, and the
// accounting accessors.
func TestStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok, _ := s.Get("missing"); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("alpha-2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("a")
	if err != nil || !ok {
		t.Fatalf("Get(a) = %v, %v", ok, err)
	}
	if string(got) != "alpha-2" {
		t.Fatalf("Get(a) = %q, want the rewritten value", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not accounted")
	}
}

// TestStoreReopen: a clean close-and-reopen serves every record from the
// rebuilt index.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 64}) // force several segments
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("value-%02d", i)
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := r.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("reopened Get(%s) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
}

// TestStoreCrashRecovery is the crash wall: a kill mid-append leaves a
// torn record at the active segment's tail. Reopening must index exactly
// the records that were fully written, drop the torn tail, and keep the
// log appendable.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate the crash: append half of a record to the active segment.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	active := segs[len(segs)-1]
	torn := AppendRecord(nil, Record{Key: "torn-key", Value: bytes.Repeat([]byte{0xAB}, 500)})
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer r.Close()
	if r.Len() != 10 {
		t.Fatalf("recovered Len = %d, want the 10 fully written records", r.Len())
	}
	if _, ok, _ := r.Get("torn-key"); ok {
		t.Fatal("torn record served after recovery")
	}
	for i := 0; i < 10; i++ {
		got, ok, err := r.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("surviving record key-%d lost: %v %v", i, ok, err)
		}
	}
	// The log stays appendable and a third open still agrees.
	if err := r.Put("after-crash", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got, ok, _ := r2.Get("after-crash"); !ok || string(got) != "ok" {
		t.Fatalf("post-recovery append lost: %q %v", got, ok)
	}
}

// TestStoreCorruptMiddleDropsTail: a flipped bit inside a segment fails
// that record's CRC; recovery keeps the records before it and drops the
// rest of that segment (never serving corrupt bytes).
func TestStoreCorruptMiddleDropsTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i + 1)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one value byte in the third record's region.
	recSize := int(Record{Key: "key-0", Value: make([]byte, 50)}.size())
	data[2*recSize+recordHeaderLen+len("key-0")+10] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer r.Close()
	for i := 0; i < 2; i++ {
		if _, ok, err := r.Get(fmt.Sprintf("key-%d", i)); !ok || err != nil {
			t.Errorf("record %d before the corruption lost (%v, %v)", i, ok, err)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok, _ := r.Get(fmt.Sprintf("key-%d", i)); ok {
			t.Errorf("record %d at/after the corruption served", i)
		}
	}
}

// TestStoreByteBoundedEviction: exceeding MaxBytes drops whole oldest
// segments — and only those — keeping the newest records live.
func TestStoreByteBoundedEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 600, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{byte(i)}, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if s.SizeBytes() > 600+200 { // budget plus at most one active segment of slack
		t.Fatalf("SizeBytes = %d, not bounded", s.SizeBytes())
	}
	if _, ok, _ := s.Get("key-00"); ok {
		t.Error("oldest record survived eviction past the byte budget")
	}
	if _, ok, _ := s.Get("key-11"); !ok {
		t.Error("newest record evicted")
	}
	// Evicted segment files are gone from disk too.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	var total int64
	for _, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total != s.SizeBytes() {
		t.Errorf("on-disk bytes %d != accounted %d", total, s.SizeBytes())
	}
}

// TestReadSegmentRejectsEveryFlipAndTruncation is the deterministic
// counterpart of FuzzReadSegment: every single-bit flip and every
// truncation of a valid segment either still parses the unaffected
// prefix or reports a torn tail — never a wrong record.
func TestReadSegmentRejectsEveryFlipAndTruncation(t *testing.T) {
	var blob []byte
	recs := []Record{
		{Key: "k1", Value: []byte("hello")},
		{Key: "key-two", Value: bytes.Repeat([]byte{7}, 33)},
		{Key: "k3", Value: nil},
	}
	for _, r := range recs {
		blob = AppendRecord(blob, r)
	}
	if got, clean, err := ReadSegment(blob); err != nil || clean != len(blob) || len(got) != 3 {
		t.Fatalf("clean parse failed: %d recs, clean %d, %v", len(got), clean, err)
	}

	for cut := 0; cut < len(blob); cut++ {
		got, clean, err := ReadSegment(blob[:cut])
		if clean > cut {
			t.Fatalf("truncation at %d: clean %d beyond input", cut, clean)
		}
		if err == nil && cut != clean {
			t.Fatalf("truncation at %d silently accepted", cut)
		}
		for _, r := range got {
			checkPrefixRecord(t, recs, r)
		}
	}
	for i := 0; i < len(blob); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 1 << bit
			got, _, _ := ReadSegment(mut)
			// Any records that do parse must be byte-identical to an
			// original (the flip can only sever the stream, not alter a
			// record undetected).
			for _, r := range got {
				checkPrefixRecord(t, recs, r)
			}
		}
	}
}

func checkPrefixRecord(t *testing.T, want []Record, got Record) {
	t.Helper()
	for _, w := range want {
		if w.Key == got.Key && bytes.Equal(w.Value, got.Value) {
			return
		}
	}
	t.Fatalf("parsed record %q/%x matches no original", got.Key, got.Value)
}
