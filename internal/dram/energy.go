package dram

// Energy estimation for the §V-D discussion: row activations are the most
// energy-demanding DRAM operation, and footprint-granularity transfers (one
// activation per ~10 blocks) are where Unison and Footprint Cache save an
// order of magnitude in activations over Alloy Cache's per-block transfers.
// Coefficients are representative DDR3/stacked values (activation ≈ 20 nJ
// off-chip, ≈ 8 nJ for the lower-capacitance stacked arrays; I/O ≈ 40 pJ/B
// off-chip over board traces, ≈ 4 pJ/B over TSVs).

// EnergyModel holds per-operation energy coefficients in picojoules.
type EnergyModel struct {
	// ActivationPJ is the ACT+PRE pair cost per row activation.
	ActivationPJ float64
	// TransferPJPerByte is the column access + I/O cost per byte moved.
	TransferPJPerByte float64
}

// OffchipEnergy returns representative DDR3 coefficients.
func OffchipEnergy() EnergyModel {
	return EnergyModel{ActivationPJ: 20_000, TransferPJPerByte: 40}
}

// StackedEnergy returns representative die-stacked coefficients: smaller
// arrays and TSV I/O make both terms several times cheaper.
func StackedEnergy() EnergyModel {
	return EnergyModel{ActivationPJ: 8_000, TransferPJPerByte: 4}
}

// DynamicPJ estimates the dynamic energy of the recorded activity.
func (m EnergyModel) DynamicPJ(s Stats) float64 {
	bytes := float64(s.BytesRead + s.BytesWritten)
	return float64(s.Activations)*m.ActivationPJ + bytes*m.TransferPJPerByte
}

// SystemDynamicPJ combines both parts' activity under their models — the
// quantity whose 20-25% reduction the paper's §V-D cites for the
// footprint-granularity designs.
func SystemDynamicPJ(stacked, offchip Stats) float64 {
	return StackedEnergy().DynamicPJ(stacked) + OffchipEnergy().DynamicPJ(offchip)
}
