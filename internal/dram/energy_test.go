package dram

import "testing"

func TestEnergyModelArithmetic(t *testing.T) {
	m := EnergyModel{ActivationPJ: 100, TransferPJPerByte: 2}
	s := Stats{Activations: 3, BytesRead: 10, BytesWritten: 5}
	if got := m.DynamicPJ(s); got != 3*100+15*2 {
		t.Errorf("DynamicPJ = %v, want 330", got)
	}
	if m.DynamicPJ(Stats{}) != 0 {
		t.Error("empty stats should cost 0")
	}
}

func TestStackedCheaperThanOffchip(t *testing.T) {
	s := Stats{Activations: 100, BytesRead: 64000}
	if StackedEnergy().DynamicPJ(s) >= OffchipEnergy().DynamicPJ(s) {
		t.Error("stacked DRAM should be cheaper per operation than off-chip")
	}
}

func TestActivationReductionDominates(t *testing.T) {
	// §V-D: transferring 10 blocks with one activation must cost far less
	// off-chip energy than 10 single-block activations.
	perBlock := Stats{Activations: 10, BytesRead: 640}
	grouped := Stats{Activations: 1, BytesRead: 640}
	m := OffchipEnergy()
	ratio := m.DynamicPJ(perBlock) / m.DynamicPJ(grouped)
	if ratio < 3 {
		t.Errorf("activation grouping saves only %.1fx, want >= 3x", ratio)
	}
}

func TestSystemDynamicPJ(t *testing.T) {
	stacked := Stats{Activations: 1, BytesRead: 64}
	offchip := Stats{Activations: 1, BytesRead: 64}
	total := SystemDynamicPJ(stacked, offchip)
	want := StackedEnergy().DynamicPJ(stacked) + OffchipEnergy().DynamicPJ(offchip)
	if total != want {
		t.Errorf("SystemDynamicPJ = %v, want %v", total, want)
	}
}
