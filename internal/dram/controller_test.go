package dram

import (
	"testing"
	"testing/quick"
)

func mustController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := StackedConfig().Validate(); err != nil {
		t.Errorf("StackedConfig invalid: %v", err)
	}
	if err := OffchipConfig().Validate(); err != nil {
		t.Errorf("OffchipConfig invalid: %v", err)
	}
	bad := StackedConfig()
	bad.Timing.RC = 1
	if err := bad.Validate(); err == nil {
		t.Error("tRC < tRAS+tRP accepted")
	}
	bad = StackedConfig()
	bad.Org.RowBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("non-block-multiple RowBytes accepted")
	}
	bad = StackedConfig()
	bad.DRAMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	bad = StackedConfig()
	bad.Timing.FAW = 1
	if err := bad.Validate(); err == nil {
		t.Error("tFAW < tRRD accepted")
	}
	bad = StackedConfig()
	bad.Org.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestToCPUConversion(t *testing.T) {
	s := StackedConfig() // 1.6GHz DRAM, 3GHz CPU -> x1.875
	if got := s.ToCPU(0); got != 0 {
		t.Errorf("ToCPU(0) = %d", got)
	}
	if got := s.ToCPU(8); got != 15 {
		t.Errorf("ToCPU(8) = %d, want 15 (8*1.875)", got)
	}
	if got := s.ToCPU(11); got != 21 {
		t.Errorf("ToCPU(11) = %d, want ceil(20.625)=21", got)
	}
	o := OffchipConfig() // 800MHz -> x3.75
	if got := o.ToCPU(4); got != 15 {
		t.Errorf("offchip ToCPU(4) = %d, want 15", got)
	}
}

func TestBurstCPU(t *testing.T) {
	s := StackedConfig() // 32B per bus clock, ~2 CPU cycles per bus clock
	// The paper: 32B of tags = two bursts over the 128-bit bus = one bus
	// cycle = two CPU cycles.
	if got := s.BurstCPU(32); got != 2 {
		t.Errorf("stacked BurstCPU(32) = %d, want 2 (paper §III-A.6)", got)
	}
	if got := s.BurstCPU(64); got != 4 {
		t.Errorf("stacked BurstCPU(64) = %d, want 4", got)
	}
	if got := s.BurstCPU(0); got != 0 {
		t.Errorf("BurstCPU(0) = %d", got)
	}
	if got := s.BurstCPU(1); got != 2 {
		t.Errorf("BurstCPU(1) = %d, want one full bus clock", got)
	}
	o := OffchipConfig() // 16B per bus clock at 800MHz -> 64B = 4 clocks = 15 CPU cycles
	if got := o.BurstCPU(64); got != 15 {
		t.Errorf("offchip BurstCPU(64) = %d, want 15", got)
	}
}

func TestRowMissThenHitLatency(t *testing.T) {
	c := mustController(t, StackedConfig())
	// Cold access: ACT (tRCD) + CAS before data.
	r1 := c.Do(Request{Channel: 0, Bank: 0, Row: 7, Bytes: 64, At: 100})
	if r1.RowHit {
		t.Error("first access reported a row hit")
	}
	wantData := uint64(100) + c.tRCD + c.tCAS
	if r1.DataAt != wantData {
		t.Errorf("cold DataAt = %d, want %d", r1.DataAt, wantData)
	}
	if r1.Done != wantData+c.cfg.BurstCPU(64) {
		t.Errorf("cold Done = %d, want %d", r1.Done, wantData+c.cfg.BurstCPU(64))
	}

	// Same row, later: row hit, only CAS.
	r2 := c.Do(Request{Channel: 0, Bank: 0, Row: 7, Bytes: 64, At: r1.Done + 10})
	if !r2.RowHit {
		t.Error("same-row access missed the row buffer")
	}
	if got := r2.DataAt - (r1.Done + 10); got != c.tCAS {
		t.Errorf("row-hit latency = %d, want tCAS = %d", got, c.tCAS)
	}
}

func TestRowConflictLatency(t *testing.T) {
	c := mustController(t, StackedConfig())
	r1 := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 0})
	// Conflicting row long after tRAS has elapsed: PRE + ACT + CAS.
	at := r1.Done + c.tRAS + c.tRC
	r2 := c.Do(Request{Channel: 0, Bank: 0, Row: 2, Bytes: 64, At: at})
	if r2.RowHit {
		t.Error("conflicting row reported a hit")
	}
	want := at + c.tRP + c.tRCD + c.tCAS
	if r2.DataAt != want {
		t.Errorf("conflict DataAt = %d, want %d (PRE+ACT+CAS)", r2.DataAt, want)
	}
}

func TestTRASGatesEarlyPrecharge(t *testing.T) {
	c := mustController(t, StackedConfig())
	r1 := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 0})
	_ = r1
	// Immediately conflict: the PRE must wait until ACT+tRAS.
	r2 := c.Do(Request{Channel: 0, Bank: 0, Row: 2, Bytes: 64, At: 1})
	minData := c.tRAS + c.tRP + c.tRCD + c.tCAS // ACT at 0
	if r2.DataAt < minData {
		t.Errorf("early conflict DataAt = %d, violates tRAS+tRP+tRCD+tCAS = %d", r2.DataAt, minData)
	}
}

func TestBankParallelism(t *testing.T) {
	c := mustController(t, StackedConfig())
	// Two cold accesses to different banks at the same cycle: the second
	// pays tRRD on the ACT but not a full serialization.
	r1 := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 0})
	r2 := c.Do(Request{Channel: 0, Bank: 1, Row: 1, Bytes: 64, At: 0})
	if r2.DataAt >= r1.Done+c.tRCD {
		t.Errorf("bank parallelism broken: r2.DataAt=%d vs r1.Done=%d", r2.DataAt, r1.Done)
	}
	if r2.DataAt < r1.DataAt {
		t.Error("bus should serialize the two bursts")
	}
}

func TestChannelIndependence(t *testing.T) {
	c := mustController(t, StackedConfig())
	r1 := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 0})
	r2 := c.Do(Request{Channel: 1, Bank: 0, Row: 1, Bytes: 64, At: 0})
	if r1.DataAt != r2.DataAt {
		t.Errorf("independent channels should have identical timing: %d vs %d", r1.DataAt, r2.DataAt)
	}
}

func TestTFAWWindow(t *testing.T) {
	c := mustController(t, StackedConfig())
	// Five cold ACTs to five banks at cycle 0: the fifth must wait for the
	// four-activate window.
	var last Result
	for b := 0; b < 5; b++ {
		last = c.Do(Request{Channel: 0, Bank: b, Row: 1, Bytes: 64, At: 0})
	}
	// The 5th ACT cannot start before firstACT + tFAW = tFAW.
	minData := c.tFAW + c.tRCD + c.tCAS
	if last.DataAt < minData {
		t.Errorf("5th ACT DataAt = %d, violates tFAW floor %d", last.DataAt, minData)
	}
	if c.Stats().Activations != 5 {
		t.Errorf("Activations = %d, want 5", c.Stats().Activations)
	}
}

func TestWriteRecoveryGatesConflict(t *testing.T) {
	c := mustController(t, StackedConfig())
	w := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, Write: true, At: 0})
	// A conflicting row right after the write: PRE waits for write recovery.
	r := c.Do(Request{Channel: 0, Bank: 0, Row: 2, Bytes: 64, At: w.Done})
	minData := w.Done + c.tWR + c.tRP + c.tRCD + c.tCAS
	if r.DataAt < minData {
		t.Errorf("post-write conflict DataAt = %d, violates tWR chain %d", r.DataAt, minData)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	c := mustController(t, StackedConfig())
	w := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, Write: true, At: 0})
	r := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: w.Done})
	if !r.RowHit {
		t.Fatal("expected row hit")
	}
	if r.DataAt < w.Done+c.tWTR+c.tCAS {
		t.Errorf("read after write DataAt = %d, violates tWTR %d", r.DataAt, w.Done+c.tWTR+c.tCAS)
	}
}

func TestBusSerializesLargeBursts(t *testing.T) {
	c := mustController(t, StackedConfig())
	// Two row hits back to back; the second burst starts after the first
	// finishes on the bus.
	c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 0})
	r1 := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 960, At: 200})
	r2 := c.Do(Request{Channel: 0, Bank: 1, Row: 1, Bytes: 64, At: 200})
	if r2.DataAt < r1.Done {
		t.Errorf("bus overlap: burst2 data at %d before burst1 done %d", r2.DataAt, r1.Done)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := mustController(t, StackedConfig())
	c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 0})
	c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 128, At: 1000})
	c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, Write: true, At: 2000})
	s := c.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("Reads/Writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
	if s.RowHits != 2 {
		t.Errorf("RowHits = %d, want 2", s.RowHits)
	}
	if s.BytesRead != 192 || s.BytesWritten != 64 {
		t.Errorf("Bytes = %d/%d, want 192/64", s.BytesRead, s.BytesWritten)
	}
	if s.Activations != 1 {
		t.Errorf("Activations = %d, want 1", s.Activations)
	}
	if got := s.RowHitRate(); got != 2.0/3 {
		t.Errorf("RowHitRate = %v", got)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
	// Row buffer must survive the reset.
	r := c.Do(Request{Channel: 0, Bank: 0, Row: 1, Bytes: 64, At: 3000})
	if !r.RowHit {
		t.Error("ResetStats disturbed bank state")
	}
}

func TestRowHitRateEmpty(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Error("empty RowHitRate should be 0")
	}
}

func TestMapAddrPartitions(t *testing.T) {
	c := mustController(t, StackedConfig())
	seen := map[[3]uint64]bool{}
	for a := uint64(0); a < 64*8192; a += 8192 {
		ch, bk, row := c.MapAddr(a)
		key := [3]uint64{uint64(ch), uint64(bk), row}
		if seen[key] {
			t.Fatalf("MapAddr collision for addr %d: %v", a, key)
		}
		seen[key] = true
	}
}

func TestMapAddrInRange(t *testing.T) {
	c := mustController(t, OffchipConfig())
	f := func(a uint64) bool {
		ch, bk, _ := c.MapAddr(a)
		return ch >= 0 && ch < c.cfg.Org.Channels && bk >= 0 && bk < c.cfg.Org.Ranks*c.cfg.Org.Banks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapAddrSameRowSameBank(t *testing.T) {
	c := mustController(t, StackedConfig())
	// All addresses within one 8KB row map to the same (ch,bank,row).
	ch0, bk0, row0 := c.MapAddr(16384)
	for off := uint64(0); off < 8192; off += 64 {
		ch, bk, row := c.MapAddr(16384 + off)
		if ch != ch0 || bk != bk0 || row != row0 {
			t.Fatalf("intra-row address %d split across banks", 16384+off)
		}
	}
}

func TestTimingMonotonicity(t *testing.T) {
	// Later arrivals never finish earlier, for a fixed single-bank stream.
	c1 := mustController(t, StackedConfig())
	c2 := mustController(t, StackedConfig())
	r1 := c1.Do(Request{Channel: 0, Bank: 0, Row: 3, Bytes: 64, At: 100})
	r2 := c2.Do(Request{Channel: 0, Bank: 0, Row: 3, Bytes: 64, At: 200})
	if r2.Done < r1.Done {
		t.Error("later arrival finished earlier on identical state")
	}
	if r2.Done-r2.DataAt != r1.Done-r1.DataAt {
		t.Error("burst length depends on arrival time")
	}
}

func TestDoPanicsOutOfRange(t *testing.T) {
	c := mustController(t, StackedConfig())
	for _, r := range []Request{
		{Channel: -1, Bank: 0},
		{Channel: 99, Bank: 0},
		{Channel: 0, Bank: -1},
		{Channel: 0, Bank: 99},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Do(%+v) did not panic", r)
				}
			}()
			c.Do(r)
		}()
	}
}

func TestRowCount(t *testing.T) {
	c := mustController(t, StackedConfig())
	// 1GB / 8KB rows = 131072 rows; over 4 channels x 8 banks = 4096 per bank.
	if got := c.RowCount(1 << 30); got != 4096 {
		t.Errorf("RowCount(1GB) = %d, want 4096", got)
	}
}

func TestAccessUsesMapping(t *testing.T) {
	c := mustController(t, StackedConfig())
	res1 := c.Access(0, 0, 64, false)
	res2 := c.Access(32, res1.Done, 64, false) // same row
	if !res2.RowHit {
		t.Error("Access to same row did not hit row buffer")
	}
}

func BenchmarkControllerRowHits(b *testing.B) {
	c, _ := NewController(StackedConfig())
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		r := c.Do(Request{Channel: i & 3, Bank: 0, Row: 5, Bytes: 64, At: at})
		at = r.Done
	}
}

func BenchmarkControllerRowConflicts(b *testing.B) {
	c, _ := NewController(StackedConfig())
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		r := c.Do(Request{Channel: 0, Bank: i & 7, Row: uint64(i), Bytes: 64, At: at})
		at = r.Done
	}
}
