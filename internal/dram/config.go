// Package dram implements the command-level DRAM timing model that stands
// in for the paper's DRAMSim2 substrate. Both the die-stacked part (four
// 128-bit channels at 1.6 GHz) and the off-chip DDR3-1600 channel are
// instances of the same model with different parameters (Table III).
//
// The model tracks, per bank: the open row, ACT/PRE/RD/WR command legality
// windows (tRCD, tRP, tRAS, tRC, tWR, tRTP), and per channel: ACT-to-ACT
// spacing (tRRD), the four-activate window (tFAW) and data-bus occupancy.
// Requests are served in arrival order with full bank-level parallelism —
// an approximation of FR-FCFS that preserves every latency and bandwidth
// effect the paper's evaluation depends on (row-buffer hits, activation
// counts, bus serialization of large transfers).
package dram

import "fmt"

// Timing holds the DRAM timing parameters in DRAM clock cycles, named as in
// Table III of the paper.
type Timing struct {
	CAS int // column access strobe (read latency from column command)
	RCD int // RAS-to-CAS delay (ACT to column command)
	RP  int // row precharge
	RAS int // ACT to PRE minimum
	RC  int // ACT to ACT, same bank
	WR  int // write recovery (end of write data to PRE)
	WTR int // write-to-read turnaround
	RTP int // read-to-precharge
	RRD int // ACT to ACT, different banks, same channel/rank
	FAW int // four-activate window
}

// Validate checks internal consistency of the timing parameters.
func (t Timing) Validate() error {
	if t.CAS <= 0 || t.RCD <= 0 || t.RP <= 0 || t.RAS <= 0 {
		return fmt.Errorf("dram: core timings must be positive: %+v", t)
	}
	if t.RC < t.RAS+t.RP {
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.RC, t.RAS+t.RP)
	}
	if t.FAW < t.RRD {
		return fmt.Errorf("dram: tFAW (%d) < tRRD (%d)", t.FAW, t.RRD)
	}
	return nil
}

// Organization describes the channel/bank/row structure of one DRAM part.
type Organization struct {
	Channels int
	Ranks    int // ranks per channel; tRRD/tFAW apply within a rank
	Banks    int // banks per rank
	RowBytes int
	// BusBytes is the data-bus width in bytes (16 for the 128-bit stacked
	// TSV bus, 8 for the 64-bit DDR3 channel). The bus is double data
	// rate: one bus clock moves 2*BusBytes.
	BusBytes int
}

// Validate checks the organization fields.
func (o Organization) Validate() error {
	if o.Channels <= 0 || o.Ranks <= 0 || o.Banks <= 0 || o.RowBytes <= 0 || o.BusBytes <= 0 {
		return fmt.Errorf("dram: organization fields must be positive: %+v", o)
	}
	if o.RowBytes%64 != 0 {
		return fmt.Errorf("dram: RowBytes (%d) must be a multiple of the 64B block", o.RowBytes)
	}
	return nil
}

// Config fully describes one DRAM part and the CPU clock it serves.
type Config struct {
	Name   string
	Timing Timing
	Org    Organization
	// DRAMHz is the DRAM command-clock frequency; CPUHz the core clock.
	// All external times are expressed in CPU cycles; conversion rounds
	// up (a command cannot complete mid-CPU-cycle).
	DRAMHz uint64
	CPUHz  uint64
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Org.Validate(); err != nil {
		return err
	}
	if c.DRAMHz == 0 || c.CPUHz == 0 {
		return fmt.Errorf("dram: clocks must be non-zero")
	}
	return nil
}

// ToCPU converts a duration in DRAM cycles to CPU cycles, rounding up.
func (c Config) ToCPU(dramCycles int) uint64 {
	if dramCycles <= 0 {
		return 0
	}
	return (uint64(dramCycles)*c.CPUHz + c.DRAMHz - 1) / c.DRAMHz
}

// BurstCPU returns the CPU cycles the data bus is occupied transferring the
// given number of bytes (DDR: 2*BusBytes per bus clock, minimum one clock).
func (c Config) BurstCPU(bytes int) uint64 {
	if bytes <= 0 {
		return 0
	}
	perClock := 2 * c.Org.BusBytes
	clocks := (bytes + perClock - 1) / perClock
	return c.ToCPU(clocks)
}

// Table III parameters. The paper gives the stacked-DRAM timings in DRAM
// cycles at 1.6 GHz: tCAS-tRCD-tRP-tRAS = 11-11-11-28, tRC-tWR-tWTR-tRTP =
// 39-12-6-6, tRRD-tFAW = 5-24. The off-chip DDR3-1600 part uses the same
// cycle counts at its 800 MHz command clock, per the common -11 speed bin.
var tableIIITiming = Timing{
	CAS: 11, RCD: 11, RP: 11, RAS: 28,
	RC: 39, WR: 12, WTR: 6, RTP: 6,
	RRD: 5, FAW: 24,
}

// StackedConfig returns the die-stacked DRAM of Table III: 4 channels,
// 8 banks per rank, 8 KB rows, 128-bit bus at 1.6 GHz, serving a 3 GHz CPU.
func StackedConfig() Config {
	return Config{
		Name:   "stacked",
		Timing: tableIIITiming,
		Org:    Organization{Channels: 4, Ranks: 1, Banks: 8, RowBytes: 8192, BusBytes: 16},
		DRAMHz: 1_600_000_000,
		CPUHz:  3_000_000_000,
	}
}

// OffchipConfig returns the off-chip memory of Table III: one DDR3-1600
// channel (800 MHz command clock), four ranks of 8 banks (a 16-32 GB
// multi-DIMM channel), 8 KB rows, 64-bit bus. The rank count matters: it
// is what lets 16 concurrent access streams keep their open rows without
// an FR-FCFS reordering scheduler.
func OffchipConfig() Config {
	return Config{
		Name:   "offchip",
		Timing: tableIIITiming,
		Org:    Organization{Channels: 1, Ranks: 4, Banks: 8, RowBytes: 8192, BusBytes: 8},
		DRAMHz: 800_000_000,
		CPUHz:  3_000_000_000,
	}
}
