package dram

import (
	"testing"
	"testing/quick"
)

// TestCommandSequences is the table-driven edge-case wall for the
// controller's command legality windows: each case replays a short request
// sequence and pins down the exact row-hit outcomes and data timing the
// Table III parameters dictate — hit vs. conflict sequencing on one bank,
// bus-reservation ordering when banks interleave, and zero-gap
// back-to-back commands arriving at the same cycle.
func TestCommandSequences(t *testing.T) {
	// Expectations may reference the results of earlier steps in the same
	// sequence (prev[i] is step i's Result). Sequences start at cycle 100
	// so the zero-initialized tRRD/tFAW rank history is out of the way.
	type step struct {
		req Request
		// wantHit is the expected row-buffer outcome.
		wantHit bool
		// wantData/wantDone, when set, pin the exact CPU cycles.
		wantData, wantDone func(c *Controller, prev []Result) uint64
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			// Hit, conflict, re-hit on one bank: the conflict pays
			// PRE+ACT+CAS, and coming back to the first row pays it again
			// (the buffer now holds the second row).
			name: "hit-conflict-rehit sequencing",
			steps: []step{
				{req: Request{Bank: 0, Row: 1, Bytes: 64, At: 100}, wantHit: false,
					wantData: func(c *Controller, _ []Result) uint64 { return 100 + c.tRCD + c.tCAS }},
				{req: Request{Bank: 0, Row: 1, Bytes: 64, At: 1000}, wantHit: true,
					wantData: func(c *Controller, _ []Result) uint64 { return 1000 + c.tCAS }},
				{req: Request{Bank: 0, Row: 2, Bytes: 64, At: 2000}, wantHit: false,
					wantData: func(c *Controller, _ []Result) uint64 { return 2000 + c.tRP + c.tRCD + c.tCAS }},
				{req: Request{Bank: 0, Row: 1, Bytes: 64, At: 4000}, wantHit: false,
					wantData: func(c *Controller, _ []Result) uint64 { return 4000 + c.tRP + c.tRCD + c.tCAS }},
			},
		},
		{
			// Interleaved banks, zero-gap hits: with both rows open, two
			// hits arriving at the same cycle on different banks issue
			// their column commands in parallel, but the shared data bus
			// serializes the bursts — the second starts exactly where the
			// first ends.
			name: "interleaved banks share one bus",
			steps: []step{
				{req: Request{Bank: 0, Row: 5, Bytes: 64, At: 100}, wantHit: false},
				{req: Request{Bank: 1, Row: 5, Bytes: 64, At: 300}, wantHit: false},
				{req: Request{Bank: 0, Row: 5, Bytes: 64, At: 1000}, wantHit: true,
					wantData: func(c *Controller, _ []Result) uint64 { return 1000 + c.tCAS },
					wantDone: func(c *Controller, _ []Result) uint64 { return 1000 + c.tCAS + c.burstCPU(64) }},
				{req: Request{Bank: 1, Row: 5, Bytes: 64, At: 1000}, wantHit: true,
					wantData: func(c *Controller, prev []Result) uint64 { return prev[2].Done },
					wantDone: func(c *Controller, prev []Result) uint64 { return prev[2].Done + c.burstCPU(64) }},
			},
		},
		{
			// Zero-gap back-to-back row hits on one bank: the first is
			// CAS-gated, every later burst queues behind its predecessor
			// on the bus with no idle cycles between bursts.
			name: "zero-gap back-to-back row hits",
			steps: []step{
				{req: Request{Bank: 0, Row: 9, Bytes: 64, At: 100}, wantHit: false},
				{req: Request{Bank: 0, Row: 9, Bytes: 64, At: 200}, wantHit: true,
					wantData: func(c *Controller, _ []Result) uint64 { return 200 + c.tCAS }},
				{req: Request{Bank: 0, Row: 9, Bytes: 64, At: 200}, wantHit: true,
					wantData: func(c *Controller, prev []Result) uint64 { return prev[1].Done },
					wantDone: func(c *Controller, prev []Result) uint64 { return prev[1].Done + c.burstCPU(64) }},
				{req: Request{Bank: 0, Row: 9, Bytes: 64, At: 200}, wantHit: true,
					wantData: func(c *Controller, prev []Result) uint64 { return prev[2].Done },
					wantDone: func(c *Controller, prev []Result) uint64 { return prev[2].Done + c.burstCPU(64) }},
			},
		},
		{
			// Zero-gap write-then-read to the same open row: the read's
			// column command waits out the write burst plus tWTR.
			name: "zero-gap write-to-read turnaround",
			steps: []step{
				{req: Request{Bank: 0, Row: 3, Bytes: 64, Write: true, At: 100}, wantHit: false,
					wantData: func(c *Controller, _ []Result) uint64 { return 100 + c.tRCD + c.tCAS }},
				{req: Request{Bank: 0, Row: 3, Bytes: 64, At: 100}, wantHit: true,
					wantData: func(c *Controller, prev []Result) uint64 { return prev[0].Done + c.tWTR + c.tCAS }},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustController(t, StackedConfig())
			var prev []Result
			for i, s := range tc.steps {
				res := c.Do(s.req)
				if res.RowHit != s.wantHit {
					t.Errorf("step %d: RowHit = %v, want %v", i, res.RowHit, s.wantHit)
				}
				if s.wantData != nil {
					if want := s.wantData(c, prev); res.DataAt != want {
						t.Errorf("step %d: DataAt = %d, want %d", i, res.DataAt, want)
					}
				}
				if s.wantDone != nil {
					if want := s.wantDone(c, prev); res.Done != want {
						t.Errorf("step %d: Done = %d, want %d", i, res.Done, want)
					}
				}
				prev = append(prev, res)
			}
		})
	}
}

// TestBusReservationOrder drives reads through every bank of one channel
// at the same arrival cycle and checks the bus hands out strictly
// non-overlapping, monotonically ordered bursts.
func TestBusReservationOrder(t *testing.T) {
	c := mustController(t, StackedConfig())
	var prevDone uint64
	for b := 0; b < c.cfg.Org.Banks; b++ {
		res := c.Do(Request{Bank: b, Row: 1, Bytes: 64, At: 0})
		if res.DataAt < prevDone {
			t.Errorf("bank %d: burst starts at %d inside previous burst (ends %d)", b, res.DataAt, prevDone)
		}
		if res.Done-res.DataAt != c.cfg.BurstCPU(64) {
			t.Errorf("bank %d: burst length %d, want %d", b, res.Done-res.DataAt, c.cfg.BurstCPU(64))
		}
		prevDone = res.Done
	}
	if got := c.Stats().BusBusyCPU; got != uint64(c.cfg.Org.Banks)*c.cfg.BurstCPU(64) {
		t.Errorf("BusBusyCPU = %d, want %d", got, uint64(c.cfg.Org.Banks)*c.cfg.BurstCPU(64))
	}
}

// TestMapAddrFastPathMatchesDivision pins the shift-based address mapping
// to the plain division formula for power-of-two organizations, and
// exercises a non-power-of-two organization through the slow path.
func TestMapAddrFastPathMatchesDivision(t *testing.T) {
	for _, cfg := range []Config{StackedConfig(), OffchipConfig()} {
		c := mustController(t, cfg)
		if !c.mapShifts {
			t.Fatalf("%s: power-of-two organization did not enable the shift path", cfg.Name)
		}
		totalBanks := uint64(cfg.Org.Ranks * cfg.Org.Banks)
		f := func(addr uint64) bool {
			ch, bk, row := c.MapAddr(addr)
			r := addr / uint64(cfg.Org.RowBytes)
			wantCh := int(r % uint64(cfg.Org.Channels))
			r /= uint64(cfg.Org.Channels)
			wantBk := int(r % totalBanks)
			wantRow := r / totalBanks
			return ch == wantCh && bk == wantBk && row == wantRow
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}

	odd := StackedConfig()
	odd.Org.Channels = 3
	c := mustController(t, odd)
	if c.mapShifts {
		t.Fatal("3-channel organization enabled the shift path")
	}
	ch, bk, row := c.MapAddr(5 * 8192)
	if ch != 2 || bk != 1 || row != 0 {
		t.Errorf("slow-path MapAddr = (%d,%d,%d), want (2,1,0)", ch, bk, row)
	}
}

// TestBurstCPUFastPathMatchesConfig pins the controller's memoized burst
// conversion to the Config formula across every size the designs issue.
func TestBurstCPUFastPathMatchesConfig(t *testing.T) {
	for _, cfg := range []Config{StackedConfig(), OffchipConfig()} {
		c := mustController(t, cfg)
		for bytes := 0; bytes <= 4*cfg.Org.RowBytes; bytes += 16 {
			if got, want := c.burstCPU(bytes), cfg.BurstCPU(bytes); got != want {
				t.Fatalf("%s: burstCPU(%d) = %d, want %d", cfg.Name, bytes, got, want)
			}
		}
		for _, bytes := range []int{-1, 1, 31, 33, 8191} {
			if got, want := c.burstCPU(bytes), cfg.BurstCPU(bytes); got != want {
				t.Fatalf("%s: burstCPU(%d) = %d, want %d", cfg.Name, bytes, got, want)
			}
		}
	}
}

// TestControllerFastPathsOddOrg runs a request mix through an organization
// with non-power-of-two channel count and bus width, forcing every slow
// path, and cross-checks against per-request recomputation.
func TestControllerFastPathsOddOrg(t *testing.T) {
	odd := StackedConfig()
	odd.Org.Channels = 3
	odd.Org.BusBytes = 12
	c := mustController(t, odd)
	for i := 0; i < 200; i++ {
		bytes := 16 * (i%40 + 1)
		if got, want := c.burstCPU(bytes), odd.BurstCPU(bytes); got != want {
			t.Fatalf("burstCPU(%d) = %d, want %d", bytes, got, want)
		}
	}
	res := c.Do(Request{Channel: 2, Bank: 3, Row: 4, Bytes: 96, At: 50})
	want := uint64(50) + c.tRCD + c.tCAS
	if res.DataAt != want {
		t.Errorf("odd-org cold DataAt = %d, want %d", res.DataAt, want)
	}
	if res.Done != want+odd.BurstCPU(96) {
		t.Errorf("odd-org Done = %d, want %d", res.Done, want+odd.BurstCPU(96))
	}
}

// TestLog2Of pins the power-of-two detector.
func TestLog2Of(t *testing.T) {
	for _, tc := range []struct {
		v    int
		s    uint
		ok   bool
		note string
	}{
		{1, 0, true, "2^0"}, {2, 1, true, ""}, {8192, 13, true, ""},
		{0, 0, false, "zero"}, {-4, 0, false, "negative"}, {3, 0, false, ""}, {24, 0, false, ""},
	} {
		s, ok := log2of(tc.v)
		if s != tc.s || ok != tc.ok {
			t.Errorf("log2of(%d) = (%d,%v), want (%d,%v) %s", tc.v, s, ok, tc.s, tc.ok, tc.note)
		}
	}
}
