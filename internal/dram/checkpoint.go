package dram

import (
	"fmt"

	"unisoncache/internal/checkpoint"
)

// SaveState serializes the controller's complete timing state — per-channel
// bus occupancy, per-rank activate windows, per-bank row/timing registers —
// plus the access counters. Configuration and the derived timing constants
// are not serialized; they are owned by construction, and LoadState rejects
// a snapshot whose channel/rank/bank geometry disagrees.
func (c *Controller) SaveState(w *checkpoint.Writer) {
	w.Section("dram")
	w.U64(uint64(len(c.ch)))
	for i := range c.ch {
		ch := &c.ch[i]
		w.U64(ch.busFreeAt)
		w.U64(uint64(len(ch.ranks)))
		for j := range ch.ranks {
			rk := &ch.ranks[j]
			w.U64(rk.lastActAt)
			for _, t := range rk.actWindow {
				w.U64(t)
			}
			w.U32(uint32(rk.actIdx))
		}
		w.U64(uint64(len(ch.banks)))
		for j := range ch.banks {
			b := &ch.banks[j]
			w.I64(b.openRow)
			w.U64(b.actAt)
			w.U64(b.readyAt)
			w.U64(b.preOKAt)
			w.U64(b.nextActAt)
		}
	}
	w.U64(c.stats.Reads)
	w.U64(c.stats.Writes)
	w.U64(c.stats.RowHits)
	w.U64(c.stats.Activations)
	w.U64(c.stats.BytesRead)
	w.U64(c.stats.BytesWritten)
	w.U64(c.stats.BusBusyCPU)
}

// LoadState restores state saved by SaveState into an identically
// configured controller.
func (c *Controller) LoadState(r *checkpoint.Reader) error {
	r.Section("dram")
	if n := r.U64(); r.Err() == nil && n != uint64(len(c.ch)) {
		return fmt.Errorf("dram: snapshot has %d channels, controller has %d", n, len(c.ch))
	}
	for i := range c.ch {
		ch := &c.ch[i]
		ch.busFreeAt = r.U64()
		if n := r.U64(); r.Err() == nil && n != uint64(len(ch.ranks)) {
			return fmt.Errorf("dram: snapshot has %d ranks, channel has %d", n, len(ch.ranks))
		}
		for j := range ch.ranks {
			rk := &ch.ranks[j]
			rk.lastActAt = r.U64()
			for k := range rk.actWindow {
				rk.actWindow[k] = r.U64()
			}
			idx := r.U32()
			if r.Err() == nil && idx >= uint32(len(rk.actWindow)) {
				return fmt.Errorf("dram: activate-window index %d out of range", idx)
			}
			rk.actIdx = int(idx)
		}
		if n := r.U64(); r.Err() == nil && n != uint64(len(ch.banks)) {
			return fmt.Errorf("dram: snapshot has %d banks, channel has %d", n, len(ch.banks))
		}
		for j := range ch.banks {
			b := &ch.banks[j]
			b.openRow = r.I64()
			b.actAt = r.U64()
			b.readyAt = r.U64()
			b.preOKAt = r.U64()
			b.nextActAt = r.U64()
		}
	}
	c.stats.Reads = r.U64()
	c.stats.Writes = r.U64()
	c.stats.RowHits = r.U64()
	c.stats.Activations = r.U64()
	c.stats.BytesRead = r.U64()
	c.stats.BytesWritten = r.U64()
	c.stats.BusBusyCPU = r.U64()
	return r.Err()
}
