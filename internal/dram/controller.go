package dram

import (
	"fmt"
	"math/bits"
)

// Stats aggregates the controller's activity counters. Activations are the
// energy proxy the paper's §V-D discussion uses.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	Activations  uint64
	BytesRead    uint64
	BytesWritten uint64
	BusBusyCPU   uint64 // CPU cycles the data buses were occupied
}

// Reset zeroes the counters (used at the warmup/measurement boundary).
func (s *Stats) Reset() { *s = Stats{} }

// RowHitRate returns the fraction of column accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// bank holds the per-bank timing state.
type bank struct {
	openRow   int64  // -1 when precharged
	actAt     uint64 // CPU cycle of the last ACT
	readyAt   uint64 // earliest CPU cycle the next column command may issue
	preOKAt   uint64 // earliest CPU cycle a PRE may issue (tRAS / tWR / tRTP)
	nextActAt uint64 // earliest CPU cycle the next ACT may issue (tRC, tRP)
}

// rank holds the per-rank activate history for tRRD and tFAW.
type rank struct {
	lastActAt uint64
	actWindow [4]uint64 // rolling window of the last four ACT times
	actIdx    int
}

// channel holds per-channel shared state: the data bus, the rank activate
// windows, and the banks (ranks*banksPerRank of them, rank-major).
type channel struct {
	busFreeAt uint64
	ranks     []rank
	banks     []bank
}

// Controller is one DRAM part: a set of channels with banks, serving timed
// requests. It is not safe for concurrent use; the simulation engine is
// single-threaded by design.
type Controller struct {
	cfg Config
	ch  []channel

	// Pre-converted CPU-cycle versions of the timing parameters.
	tCAS, tRCD, tRP, tRAS, tRC, tWR, tWTR, tRTP, tRRD, tFAW uint64

	// Address-mapping and burst fast paths. Every Table III organization
	// is power-of-two shaped, which turns the per-request divisions of
	// MapAddr and BurstCPU into shifts and a small table lookup; the slow
	// path keeps odd organizations working and the results are identical
	// by construction.
	rowShift, chanShift, bankShift uint
	chanMask, bankMask             uint64
	mapShifts                      bool
	perShift                       int // log2(2*BusBytes), -1 when not a power of two
	toCPUTab                       []uint64

	stats Stats
}

// log2of returns (log2(v), true) when v is a positive power of two.
func log2of(v int) (uint, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	return uint(bits.TrailingZeros64(uint64(v))), true
}

// NewController builds a controller for the given configuration.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	c.ch = make([]channel, cfg.Org.Channels)
	for i := range c.ch {
		c.ch[i].ranks = make([]rank, cfg.Org.Ranks)
		c.ch[i].banks = make([]bank, cfg.Org.Ranks*cfg.Org.Banks)
		for b := range c.ch[i].banks {
			c.ch[i].banks[b].openRow = -1
		}
	}
	t := cfg.Timing
	c.tCAS = cfg.ToCPU(t.CAS)
	c.tRCD = cfg.ToCPU(t.RCD)
	c.tRP = cfg.ToCPU(t.RP)
	c.tRAS = cfg.ToCPU(t.RAS)
	c.tRC = cfg.ToCPU(t.RC)
	c.tWR = cfg.ToCPU(t.WR)
	c.tWTR = cfg.ToCPU(t.WTR)
	c.tRTP = cfg.ToCPU(t.RTP)
	c.tRRD = cfg.ToCPU(t.RRD)
	c.tFAW = cfg.ToCPU(t.FAW)

	rowS, rowOK := log2of(cfg.Org.RowBytes)
	chS, chOK := log2of(cfg.Org.Channels)
	bkS, bkOK := log2of(cfg.Org.Ranks * cfg.Org.Banks)
	if rowOK && chOK && bkOK {
		c.rowShift, c.chanShift, c.bankShift = rowS, chS, bkS
		c.chanMask = uint64(cfg.Org.Channels) - 1
		c.bankMask = uint64(cfg.Org.Ranks*cfg.Org.Banks) - 1
		c.mapShifts = true
	}
	c.perShift = -1
	if s, ok := log2of(2 * cfg.Org.BusBytes); ok {
		c.perShift = int(s)
	}
	// Memoize the DRAM-to-CPU clock conversion for every burst length up
	// to a full row (the largest transfer any design issues).
	maxClocks := (cfg.Org.RowBytes+2*cfg.Org.BusBytes-1)/(2*cfg.Org.BusBytes) + 1
	c.toCPUTab = make([]uint64, maxClocks+1)
	for i := range c.toCPUTab {
		c.toCPUTab[i] = cfg.ToCPU(i)
	}
	return c, nil
}

// burstCPU is the controller-side BurstCPU: identical results, with the
// division replaced by a shift and a table lookup on the hot path.
func (c *Controller) burstCPU(bytes int) uint64 {
	if bytes <= 0 {
		return 0
	}
	var clocks int
	if c.perShift >= 0 {
		clocks = (bytes + 1<<c.perShift - 1) >> c.perShift
	} else {
		per := 2 * c.cfg.Org.BusBytes
		clocks = (bytes + per - 1) / per
	}
	if clocks < len(c.toCPUTab) {
		return c.toCPUTab[clocks]
	}
	return c.cfg.ToCPU(clocks)
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing bank state, so warmup
// traffic leaves the row buffers realistically warm.
func (c *Controller) ResetStats() { c.stats.Reset() }

// Request is one timed DRAM transaction addressed physically by
// channel/bank/row. Bytes is the payload moved over the data bus.
type Request struct {
	Channel int
	Bank    int
	Row     uint64
	Bytes   int
	Write   bool
	// At is the CPU cycle the request reaches the controller.
	At uint64
}

// Result reports the timing of a completed request.
type Result struct {
	// DataAt is the CPU cycle the first critical word is available
	// (reads) or the data bus transfer begins (writes).
	DataAt uint64
	// Done is the CPU cycle the full burst has moved over the bus.
	Done uint64
	// RowHit reports whether the access hit an open row buffer.
	RowHit bool
}

// Do services one request and advances the bank/channel state. Requests may
// arrive with non-monotonic At values across banks (per-core clocks drift
// apart); state updates use max() so reservations never move backwards.
func (c *Controller) Do(r Request) Result {
	if r.Channel < 0 || r.Channel >= len(c.ch) {
		panic(fmt.Sprintf("dram: channel %d out of range [0,%d)", r.Channel, len(c.ch)))
	}
	ch := &c.ch[r.Channel]
	if r.Bank < 0 || r.Bank >= len(ch.banks) {
		panic(fmt.Sprintf("dram: bank %d out of range [0,%d)", r.Bank, len(ch.banks)))
	}
	bk := &ch.banks[r.Bank]

	now := r.At
	rowHit := bk.openRow == int64(r.Row)
	if !rowHit {
		if bk.openRow >= 0 {
			// PRE the open row: legal only after tRAS from ACT and any
			// read/write-to-precharge recovery.
			preAt := maxU(now, bk.preOKAt)
			bk.nextActAt = maxU(bk.nextActAt, preAt+c.tRP)
		}
		// ACT the target row, honoring tRC (same bank) and the rank's
		// tRRD/tFAW windows.
		rk := &ch.ranks[r.Bank/c.cfg.Org.Banks]
		actAt := maxU(now, bk.nextActAt)
		actAt = maxU(actAt, rk.lastActAt+c.tRRD)
		if faw := rk.actWindow[rk.actIdx]; faw > 0 {
			actAt = maxU(actAt, faw+c.tFAW)
		}
		bk.openRow = int64(r.Row)
		bk.actAt = actAt
		bk.readyAt = actAt + c.tRCD
		bk.preOKAt = actAt + c.tRAS
		bk.nextActAt = actAt + c.tRC
		rk.lastActAt = actAt
		rk.actWindow[rk.actIdx] = actAt
		rk.actIdx = (rk.actIdx + 1) % len(rk.actWindow)
		c.stats.Activations++
	}

	// Column command: wait for the bank and for the shared data bus.
	burst := c.burstCPU(r.Bytes)
	colAt := maxU(now, bk.readyAt)

	var res Result
	if r.Write {
		// Write data follows the column command after tCWL ~ tCAS-1; we
		// use tCAS for simplicity. The burst occupies the bus; write
		// recovery gates subsequent PRE and reads.
		dataStart := maxU(colAt+c.tCAS, ch.busFreeAt)
		dataEnd := dataStart + burst
		ch.busFreeAt = dataEnd
		bk.readyAt = maxU(bk.readyAt, dataEnd+c.tWTR)
		bk.preOKAt = maxU(bk.preOKAt, dataEnd+c.tWR)
		c.stats.Writes++
		c.stats.BytesWritten += uint64(r.Bytes)
		res = Result{DataAt: dataStart, Done: dataEnd, RowHit: rowHit}
	} else {
		dataStart := maxU(colAt+c.tCAS, ch.busFreeAt)
		dataEnd := dataStart + burst
		ch.busFreeAt = dataEnd
		// Back-to-back reads to the same bank are gated by the bus, which
		// readyAt need not track; read-to-precharge is.
		bk.preOKAt = maxU(bk.preOKAt, colAt+c.tRTP)
		c.stats.Reads++
		c.stats.BytesRead += uint64(r.Bytes)
		res = Result{DataAt: dataStart, Done: dataEnd, RowHit: rowHit}
	}
	if rowHit {
		c.stats.RowHits++
	}
	c.stats.BusBusyCPU += burst
	return res
}

// MapAddr maps a physical address to (channel, bank, row) with row
// interleaving across channels then banks, the layout that maximizes
// bank-level parallelism for the streaming fills the caches perform.
func (c *Controller) MapAddr(addr uint64) (channel, bankIdx int, row uint64) {
	if c.mapShifts {
		r := addr >> c.rowShift
		channel = int(r & c.chanMask)
		r >>= c.chanShift
		bankIdx = int(r & c.bankMask)
		row = r >> c.bankShift
		return channel, bankIdx, row
	}
	totalBanks := uint64(c.cfg.Org.Ranks * c.cfg.Org.Banks)
	r := addr / uint64(c.cfg.Org.RowBytes)
	channel = int(r % uint64(c.cfg.Org.Channels))
	r /= uint64(c.cfg.Org.Channels)
	bankIdx = int(r % totalBanks)
	row = r / totalBanks
	return channel, bankIdx, row
}

// Access is the address-based convenience wrapper over Do used for off-chip
// memory traffic.
func (c *Controller) Access(addr uint64, at uint64, bytes int, write bool) Result {
	ch, bk, row := c.MapAddr(addr)
	return c.Do(Request{Channel: ch, Bank: bk, Row: row, Bytes: bytes, Write: write, At: at})
}

// RowCount returns how many distinct rows the part exposes per bank for a
// given total capacity in bytes.
func (c *Controller) RowCount(capacityBytes uint64) uint64 {
	perRow := uint64(c.cfg.Org.RowBytes)
	totalRows := capacityBytes / perRow
	return totalRows / uint64(c.cfg.Org.Channels*c.cfg.Org.Ranks*c.cfg.Org.Banks)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
