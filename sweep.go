package unisoncache

import (
	"fmt"
	"io"
	"math"

	"unisoncache/internal/runner"
	"unisoncache/internal/stats"
)

// Plan is a declarative sweep: an ordered list of simulation points plus
// the execution policy. Results always come back in Points order, and —
// because every Run is a pure function of its configuration and seed —
// they are bit-identical to calling Execute serially over the same list,
// no matter the worker count.
//
// Points and Jobs form the wire-serializable part of a Plan (stable JSON
// field names); Progress and Executor are process-local policy.
type Plan struct {
	// Points are the runs to execute, in result order. Build the list by
	// hand or expand a Sweep's cross product.
	Points []Run `json:"Points"`
	// Jobs is the worker-pool size. Zero or negative runs one worker per
	// schedulable CPU (runtime.GOMAXPROCS).
	Jobs int `json:"Jobs"`
	// Progress, when non-nil, receives a live completion ticker (pass
	// os.Stderr; one carriage-return-prefixed line per finished job).
	Progress io.Writer `json:"-"`
	// Executor, when non-nil, replaces Execute as the function every
	// defaulted point runs through — the hook the simulation service uses
	// to interpose its content-addressed result cache (and tests use to
	// fake execution). The contract is strict: Executor(r) must return
	// exactly what Execute(r) would — a cached copy is fine, a different
	// value is not — or sweep results lose their bit-identical guarantee.
	// Executors must be safe for concurrent calls; in-plan memoization
	// still applies, so an Executor sees each distinct defaulted
	// configuration at most once per worker-pool pass.
	Executor func(Run) (Result, error) `json:"-"`
}

// exec resolves the plan's point-execution function.
func (p Plan) exec() func(Run) (Result, error) {
	if p.Executor != nil {
		return p.Executor
	}
	return Execute
}

// Sweep declares a cross product of simulation points over a template
// Run. Empty dimensions fall back to the template's value, so a Sweep
// only names the axes it actually varies.
type Sweep struct {
	// Base is the template every point starts from.
	Base Run
	// Workloads, Designs, Capacities, Seeds and UnisonWays are the swept
	// axes; an empty axis keeps Base's value.
	Workloads  []string
	Designs    []DesignKind
	Capacities []uint64
	Seeds      []uint64
	UnisonWays []int
}

// Points expands the cross product in stable order — workload-major, then
// capacity, seed, ways, design innermost — matching how the paper's
// figures group their bars.
func (s Sweep) Points() []Run {
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = []string{s.Base.Workload}
	}
	capacities := s.Capacities
	if len(capacities) == 0 {
		capacities = []uint64{s.Base.Capacity}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{s.Base.Seed}
	}
	ways := s.UnisonWays
	if len(ways) == 0 {
		ways = []int{s.Base.UnisonWays}
	}
	designs := s.Designs
	if len(designs) == 0 {
		designs = []DesignKind{s.Base.Design}
	}
	points := make([]Run, 0, len(workloads)*len(capacities)*len(seeds)*len(ways)*len(designs))
	for _, w := range workloads {
		for _, c := range capacities {
			for _, seed := range seeds {
				for _, wy := range ways {
					for _, d := range designs {
						r := s.Base
						r.Workload, r.Capacity, r.Seed, r.UnisonWays, r.Design = w, c, seed, wy, d
						points = append(points, r)
					}
				}
			}
		}
	}
	return points
}

// ExecuteMany runs every point of the plan over a worker pool and returns
// the results in plan order. Points whose defaulted configurations are
// identical execute once and share a Result.
func ExecuteMany(p Plan) ([]Result, error) {
	runs := make([]Run, len(p.Points))
	for i, r := range p.Points {
		runs[i] = r.withDefaults()
	}
	return runner.MapKeyed(runs, runKey, p.exec(), runner.Options{Jobs: p.Jobs, Progress: p.Progress})
}

// SpeedupResult is one plan point's Speedup outcome.
type SpeedupResult struct {
	// Speedup is design UIPC over baseline UIPC — the Figure 7/8 metric.
	// For sampled runs both UIPCs are the windowed estimates.
	Speedup float64
	// Design and Baseline are the two underlying results. Baseline may be
	// shared (memoized) across points.
	Design   Result
	Baseline Result
	// CI is the matched-pair confidence interval on the speedup, present
	// only when both runs sampled: measurement window i covers the same
	// per-core events in both runs (the schedule is defined in events and
	// the streams are identical), so per-window design/baseline ratios
	// cancel the workload-phase variance the two runs share.
	CI *SpeedupCI `json:",omitempty"`
}

// SpeedupCI is a matched-pair speedup confidence interval.
type SpeedupCI struct {
	// Confidence is the two-sided level (the design spec's).
	Confidence float64
	// Speedup is the matched-pair estimate — the mean of the per-window
	// ratios. It differs from SpeedupResult.Speedup (ratio of the two
	// windowed means) by at most the window-to-window spread; HalfWidth
	// is stated around this center.
	Speedup   float64
	HalfWidth float64
	// Pairs is the number of matched windows (the shorter run's count
	// when early stopping ended the two runs at different points).
	Pairs int
}

// Low and High are the interval bounds.
func (c SpeedupCI) Low() float64  { return c.Speedup - c.HalfWidth }
func (c SpeedupCI) High() float64 { return c.Speedup + c.HalfWidth }

// RelHalfWidth is HalfWidth relative to the estimate (the ±x% form),
// mirroring SampleStats.RelHalfWidth: a zero interval is relatively zero
// regardless of the center, a nonzero interval around a zero (or sign-
// degenerate) center is +Inf — never a value a CI target could mistake
// for converged — and a negative center measures against its magnitude.
func (c SpeedupCI) RelHalfWidth() float64 {
	if c.HalfWidth == 0 {
		return 0
	}
	if c.Speedup == 0 {
		return math.Inf(1)
	}
	return c.HalfWidth / math.Abs(c.Speedup)
}

// speedupCI pairs the two runs' measurement windows; nil unless both
// sampled. Early stopping may have ended the runs at different window
// counts; the common prefix still covers identical event ranges, so the
// pairing stands.
func speedupCI(design, baseline Result) *SpeedupCI {
	if design.CI == nil || baseline.CI == nil {
		return nil
	}
	d, b := design.CI.summedRatios(), baseline.CI.summedRatios()
	k := d.N()
	if b.N() < k {
		k = b.N()
	}
	conf := design.CI.Confidence
	speedup, hw := stats.PairedSpeedupCI(d, b, conf)
	return &SpeedupCI{
		Confidence: conf,
		Speedup:    speedup,
		HalfWidth:  hw,
		Pairs:      k,
	}
}

// SpeedupMany is Speedup over a whole plan: every design point and every
// distinct no-DRAM-cache baseline fan out over one worker pool. The
// DesignNone baseline executes once per unique (workload, seed, capacity,
// accesses, cores, scale) tuple — not once per design point — because
// design-only knobs (associativity, ablation flags) cannot affect a
// system with no DRAM cache. Points whose Sampling is enabled come back
// with matched-pair speedup CIs; use SweepSampled for plans that should
// also escalate unconverged points.
func SpeedupMany(p Plan) ([]SpeedupResult, error) {
	return speedupMany(p, func(runs []Run) ([]Result, error) {
		return runner.MapKeyed(runs, runKey, p.exec(), runner.Options{Jobs: p.Jobs, Progress: p.Progress})
	})
}

// speedupMany builds the design+baseline run list, hands it to execute
// (one worker-pool pass, however adaptive) and assembles the per-point
// speedups.
func speedupMany(p Plan, execute func([]Run) ([]Result, error)) ([]SpeedupResult, error) {
	n := len(p.Points)
	runs := make([]Run, 0, 2*n)
	for _, r := range p.Points {
		runs = append(runs, r.withDefaults())
	}
	for i := 0; i < n; i++ {
		runs = append(runs, baselineRun(runs[i]))
	}
	results, err := execute(runs)
	if err != nil {
		return nil, err
	}
	out := make([]SpeedupResult, n)
	for i := range out {
		design, baseline := results[i], results[n+i]
		if baseline.UIPC == 0 {
			return nil, fmt.Errorf("unisoncache: baseline UIPC is zero")
		}
		out[i] = SpeedupResult{
			Speedup:  design.UIPC / baseline.UIPC,
			Design:   design,
			Baseline: baseline,
			CI:       speedupCI(design, baseline),
		}
	}
	return out, nil
}

// sampledRounds caps a CI-target plan's refinement: an unsatisfied
// point's window density doubles at most this many times (the default
// 25% detailed duty cycle reaches full tiling in two halvings).
const sampledRounds = 2

// SweepSampled executes a CI-target plan: spec (the defaults when zero)
// is applied to every point, SpeedupMany runs the sampled sweep, and any
// point whose matched-pair speedup CI is still wider than the spec's
// TargetRelCI re-runs with its windows twice as dense — the inter-window
// gap halved (down to none), the event budget and warmup untouched —
// while points already inside the target keep their first-round results.
// The target applies to the *speedup* CI here, not the per-run UIPC CI
// the early-stop rule inside each run watches: pairing cancels the
// workload-phase variance the two runs share, so the speedup converges
// at densities where a single run's throughput CI is still wide.
//
// Refining density rather than budget keeps every attempt measuring the
// same region a full run would — a longer run would measure a warmer
// cache and bound a *different* value than the full-run result the CI is
// meant to contain. A point still unsatisfied at full tiling has used
// every event its budget holds; its (honest, wider) CI stands. Results
// remain in plan order and, like every sweep, bit-identical no matter
// the worker count.
func SweepSampled(p Plan, spec SampleSpec) ([]SpeedupResult, error) {
	if !spec.Enabled() {
		spec = DefaultSampleSpec()
	}
	spec = spec.withDefaults()
	pts := make([]Run, len(p.Points))
	for i, r := range p.Points {
		r.Sampling = spec
		pts[i] = r
	}
	target := spec.TargetRelCI
	if target < 0 {
		target = 0
	}
	run := func(points []Run) ([]SpeedupResult, error) {
		return SpeedupMany(Plan{Points: points, Jobs: p.Jobs, Progress: p.Progress, Executor: p.Executor})
	}
	grow := func(r Run, res SpeedupResult) (Run, bool) {
		if target <= 0 || res.CI == nil {
			return r, false
		}
		rel := res.CI.RelHalfWidth()
		if rel <= target {
			return r, false
		}
		d := r.Sampling.withDefaults()
		if d.GapEvents <= 0 {
			return r, false // already tiled: no denser schedule exists
		}
		// The CI shrinks like 1/sqrt(windows), so jump straight to the
		// predicted density instead of probing halvings: stride divided
		// by (rel/target)^2, clamped to full tiling.
		stride := d.IntervalEvents + d.GapEvents
		factor := (rel / target) * (rel / target)
		if next := int(float64(stride) / factor); next > d.IntervalEvents {
			r.Sampling.GapEvents = next - d.IntervalEvents
		} else {
			r.Sampling.GapEvents = -1
		}
		return r, true
	}
	return runner.Refine(pts, run, grow, sampledRounds)
}

// runKey memoizes by the full defaulted configuration: Run is a
// comparable struct, so the struct value itself is the key.
func runKey(r Run) Run { return r }

// baselineRun normalizes a defaulted run into its no-DRAM-cache baseline.
// Design-specific knobs are reset to their defaults so every design point
// over the same workload tuple collapses onto one baseline key. Telemetry
// is stripped too: a speedup's baseline only contributes its UIPC, so
// observing the design point must not fork the baseline key (or record a
// timeline nobody reads).
func baselineRun(r Run) Run {
	r.Design = DesignNone
	r.UnisonWays = 4
	r.FCWays = 32
	r.DisableWayPrediction = false
	r.SerializeTagData = false
	r.DisableSingleton = false
	r.Telemetry = TelemetrySpec{}
	return r
}
