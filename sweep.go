package unisoncache

import (
	"fmt"
	"io"

	"unisoncache/internal/runner"
)

// Plan is a declarative sweep: an ordered list of simulation points plus
// the execution policy. Results always come back in Points order, and —
// because every Run is a pure function of its configuration and seed —
// they are bit-identical to calling Execute serially over the same list,
// no matter the worker count.
type Plan struct {
	// Points are the runs to execute, in result order. Build the list by
	// hand or expand a Sweep's cross product.
	Points []Run
	// Jobs is the worker-pool size. Zero or negative runs one worker per
	// schedulable CPU (runtime.GOMAXPROCS).
	Jobs int
	// Progress, when non-nil, receives a live completion ticker (pass
	// os.Stderr; one carriage-return-prefixed line per finished job).
	Progress io.Writer
}

// Sweep declares a cross product of simulation points over a template
// Run. Empty dimensions fall back to the template's value, so a Sweep
// only names the axes it actually varies.
type Sweep struct {
	// Base is the template every point starts from.
	Base Run
	// Workloads, Designs, Capacities, Seeds and UnisonWays are the swept
	// axes; an empty axis keeps Base's value.
	Workloads  []string
	Designs    []DesignKind
	Capacities []uint64
	Seeds      []uint64
	UnisonWays []int
}

// Points expands the cross product in stable order — workload-major, then
// capacity, seed, ways, design innermost — matching how the paper's
// figures group their bars.
func (s Sweep) Points() []Run {
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = []string{s.Base.Workload}
	}
	capacities := s.Capacities
	if len(capacities) == 0 {
		capacities = []uint64{s.Base.Capacity}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{s.Base.Seed}
	}
	ways := s.UnisonWays
	if len(ways) == 0 {
		ways = []int{s.Base.UnisonWays}
	}
	designs := s.Designs
	if len(designs) == 0 {
		designs = []DesignKind{s.Base.Design}
	}
	points := make([]Run, 0, len(workloads)*len(capacities)*len(seeds)*len(ways)*len(designs))
	for _, w := range workloads {
		for _, c := range capacities {
			for _, seed := range seeds {
				for _, wy := range ways {
					for _, d := range designs {
						r := s.Base
						r.Workload, r.Capacity, r.Seed, r.UnisonWays, r.Design = w, c, seed, wy, d
						points = append(points, r)
					}
				}
			}
		}
	}
	return points
}

// ExecuteMany runs every point of the plan over a worker pool and returns
// the results in plan order. Points whose defaulted configurations are
// identical execute once and share a Result.
func ExecuteMany(p Plan) ([]Result, error) {
	runs := make([]Run, len(p.Points))
	for i, r := range p.Points {
		runs[i] = r.withDefaults()
	}
	return runner.MapKeyed(runs, runKey, Execute, runner.Options{Jobs: p.Jobs, Progress: p.Progress})
}

// SpeedupResult is one plan point's Speedup outcome.
type SpeedupResult struct {
	// Speedup is design UIPC over baseline UIPC — the Figure 7/8 metric.
	Speedup float64
	// Design and Baseline are the two underlying results. Baseline may be
	// shared (memoized) across points.
	Design   Result
	Baseline Result
}

// SpeedupMany is Speedup over a whole plan: every design point and every
// distinct no-DRAM-cache baseline fan out over one worker pool. The
// DesignNone baseline executes once per unique (workload, seed, capacity,
// accesses, cores, scale) tuple — not once per design point — because
// design-only knobs (associativity, ablation flags) cannot affect a
// system with no DRAM cache.
func SpeedupMany(p Plan) ([]SpeedupResult, error) {
	n := len(p.Points)
	runs := make([]Run, 0, 2*n)
	for _, r := range p.Points {
		runs = append(runs, r.withDefaults())
	}
	for i := 0; i < n; i++ {
		runs = append(runs, baselineRun(runs[i]))
	}
	results, err := runner.MapKeyed(runs, runKey, Execute, runner.Options{Jobs: p.Jobs, Progress: p.Progress})
	if err != nil {
		return nil, err
	}
	out := make([]SpeedupResult, n)
	for i := range out {
		design, baseline := results[i], results[n+i]
		if baseline.UIPC == 0 {
			return nil, fmt.Errorf("unisoncache: baseline UIPC is zero")
		}
		out[i] = SpeedupResult{Speedup: design.UIPC / baseline.UIPC, Design: design, Baseline: baseline}
	}
	return out, nil
}

// runKey memoizes by the full defaulted configuration: Run is a
// comparable struct, so the struct value itself is the key.
func runKey(r Run) Run { return r }

// baselineRun normalizes a defaulted run into its no-DRAM-cache baseline.
// Design-specific knobs are reset to their defaults so every design point
// over the same workload tuple collapses onto one baseline key.
func baselineRun(r Run) Run {
	r.Design = DesignNone
	r.UnisonWays = 4
	r.FCWays = 32
	r.DisableWayPrediction = false
	r.SerializeTagData = false
	r.DisableSingleton = false
	return r
}
