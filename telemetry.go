package unisoncache

import (
	"fmt"

	"unisoncache/internal/telemetry"
)

// DefaultEpochEvents is the epoch length a TelemetrySpec gets when enabled
// without choosing one: 10k retired events per core per epoch.
const DefaultEpochEvents = telemetry.DefaultEpochEvents

// TelemetrySpec configures epoch-sliced counter telemetry — the public
// mirror of internal/telemetry.Spec, set on Run.Telemetry. The zero value
// disables it. A non-zero spec makes the run record per-core and
// per-design statistic deltas every EpochEvents retired events per core
// during the measured region, carried on Result.Timeline. Recording is
// barrier-free (the sampled-replay snapshot mechanics), so the run's
// measured Results are bit-identical with telemetry on or off, and
// timelines compose bit-identically with time-parallel execution
// (Segments) and chunked/checkpointed replay. Telemetry and Sampling are
// mutually exclusive: epoch slicing needs every event simulated.
//
// TelemetrySpec is part of the service wire format; the JSON field names
// below are stable.
type TelemetrySpec struct {
	// EpochEvents is the epoch length in retired events per core
	// (default 10000). The final epoch is shorter when the measured
	// region is not a multiple.
	EpochEvents int `json:"EpochEvents"`
}

// DefaultTelemetrySpec returns the all-defaults telemetry configuration —
// assign it to Run.Telemetry to turn epoch timelines on.
func DefaultTelemetrySpec() TelemetrySpec {
	return fromInternalTelemetry(telemetry.Spec{}.WithDefaults())
}

// Enabled reports whether the spec turns telemetry on.
func (s TelemetrySpec) Enabled() bool { return s != (TelemetrySpec{}) }

// internal converts the public spec into the recorder's form.
func (s TelemetrySpec) internal() telemetry.Spec {
	return telemetry.Spec{EpochEvents: s.EpochEvents}
}

func fromInternalTelemetry(s telemetry.Spec) TelemetrySpec {
	return TelemetrySpec{EpochEvents: s.EpochEvents}
}

// withDefaults canonicalizes an enabled spec (idempotent).
func (s TelemetrySpec) withDefaults() TelemetrySpec {
	return fromInternalTelemetry(s.internal().WithDefaults())
}

// Timeline is a run's epoch-sliced counter timeline, carried on
// Result.Timeline when Run.Telemetry is set. Epochs are in schedule order
// and tile the measured region exactly: summing any counter over the
// epochs reproduces the corresponding whole-run Result counter.
type Timeline struct {
	// EpochEvents echoes the spec's epoch length.
	EpochEvents int
	Epochs      []TimelineEpoch
}

// TimelineCore is one core's share of an epoch: retired instructions and
// elapsed cycles within the slice.
type TimelineCore struct {
	Instructions uint64
	Cycles       uint64
}

// TimelineEpoch is one epoch's counter deltas. Start/EndEvents are
// per-core measured-event offsets; every core contributed exactly the
// events in [StartEvents, EndEvents).
type TimelineEpoch struct {
	Index       int
	StartEvents int
	EndEvents   int

	// UIPC is the summed per-core IPC over the epoch (the paper's
	// throughput metric, same estimator as Results.UIPC). Instructions is
	// the epoch total; Cycles the maximum per-core cycle delta.
	UIPC         float64
	Instructions uint64
	Cycles       uint64
	PerCore      []TimelineCore

	// DRAM cache design activity within the epoch.
	Reads             uint64
	ReadHits          uint64
	Writes            uint64
	WayPredHits       uint64
	WayPredLookups    uint64
	TriggerMisses     uint64
	UnderpredMisses   uint64
	SingletonSkips    uint64
	OffchipReadBytes  uint64
	OffchipWriteBytes uint64

	// DRAM controller occupancy: CPU cycles each part's data buses were
	// busy within the epoch.
	StackedBusyCycles uint64
	OffchipBusyCycles uint64

	// Shared L2 activity within the epoch.
	L2Accesses uint64
	L2Hits     uint64
}

// HitRatio is the epoch's DRAM-cache demand-read hit fraction (0 when the
// epoch saw no reads).
func (e TimelineEpoch) HitRatio() float64 {
	if e.Reads == 0 {
		return 0
	}
	return float64(e.ReadHits) / float64(e.Reads)
}

// WayPredMisses is the epoch's mispredicted way-predictor lookups.
func (e TimelineEpoch) WayPredMisses() uint64 { return e.WayPredLookups - e.WayPredHits }

// L2HitRatio is the epoch's shared-L2 hit fraction (0 when idle).
func (e TimelineEpoch) L2HitRatio() float64 {
	if e.L2Accesses == 0 {
		return 0
	}
	return float64(e.L2Hits) / float64(e.L2Accesses)
}

func fromEpoch(e telemetry.Epoch) TimelineEpoch {
	perCore := make([]TimelineCore, len(e.PerCore))
	for c, d := range e.PerCore {
		perCore[c] = TimelineCore{Instructions: d.Instructions, Cycles: d.Cycles}
	}
	return TimelineEpoch{
		Index:             e.Index,
		StartEvents:       e.StartEvents,
		EndEvents:         e.EndEvents,
		UIPC:              e.UIPC,
		Instructions:      e.Instructions,
		Cycles:            e.Cycles,
		PerCore:           perCore,
		Reads:             e.Reads,
		ReadHits:          e.ReadHits,
		Writes:            e.Writes,
		WayPredHits:       e.WayPredHits,
		WayPredLookups:    e.WayPredLookups,
		TriggerMisses:     e.TriggerMisses,
		UnderpredMisses:   e.UnderpredMisses,
		SingletonSkips:    e.SingletonSkips,
		OffchipReadBytes:  e.OffchipReadBytes,
		OffchipWriteBytes: e.OffchipWriteBytes,
		StackedBusyCycles: e.StackedBusyCycles,
		OffchipBusyCycles: e.OffchipBusyCycles,
		L2Accesses:        e.L2Accesses,
		L2Hits:            e.L2Hits,
	}
}

// timelineFrom assembles the public Timeline from a run's recorder (nil
// when the run had no measured events: an empty timeline).
func timelineFrom(rec *telemetry.Recorder, spec telemetry.Spec) (*Timeline, error) {
	tl := &Timeline{EpochEvents: spec.EpochEvents}
	if rec == nil {
		return tl, nil
	}
	epochs, err := rec.Epochs()
	if err != nil {
		return nil, fmt.Errorf("unisoncache: %w", err)
	}
	tl.Epochs = make([]TimelineEpoch, len(epochs))
	for i, e := range epochs {
		tl.Epochs[i] = fromEpoch(e)
	}
	return tl, nil
}

// ExecuteObserved is Execute with live epoch streaming: when the run has
// telemetry enabled, onEpoch is invoked with each timeline epoch the
// moment its closing boundary completes, in order — while the simulation
// is still running. Serial and serial-with-save executions stream truly
// live; a time-parallel repeat execution (Segments with all checkpoints
// present) records per segment and emits the merged timeline in order
// once segments complete. With telemetry disabled (or onEpoch nil) it
// behaves exactly like Execute.
func ExecuteObserved(r Run, onEpoch func(TimelineEpoch)) (Result, error) {
	return execute(r, onEpoch)
}
