package unisoncache

import (
	"bytes"
	"fmt"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/runner"
	"unisoncache/internal/sim"
	"unisoncache/internal/telemetry"
)

// maxSegments bounds Run.Segments. Far beyond any useful parallelism —
// a segment shorter than the warmup transient measures nothing — it exists
// so a corrupt request cannot demand an absurd worker fan-out.
const maxSegments = 1024

// ckStore is the process-wide snapshot store backing time-parallel replay
// and sampled warm-starts. 512 MB holds the boundary states of dozens of
// sweep-sized configurations; least-recently-used entries age out, which
// only costs a future run its parallel fast path, never correctness.
var ckStore = checkpoint.NewStore(512 << 20)

// checkpointPrefix returns the snapshot-store key prefix of a run: the
// RunKey of the configuration with Sampling, Segments and Telemetry
// stripped. A serial run, every segment count, a sampled run, and a
// telemetry-observed run of the same underlying configuration all replay
// the same event schedule up to any boundary — telemetry records without
// perturbing and checkpoints carry no recorder state — so they
// deliberately share snapshots.
func checkpointPrefix(r Run) (string, error) {
	r.Sampling = SampleSpec{}
	r.Segments = 0
	r.Telemetry = TelemetrySpec{}
	return RunKey(r)
}

// segmentBounds returns the interior segment boundaries of a total-step
// run split k ways: global step offsets total*i/k for i in 1..k-1, with
// duplicates and the trivial 0/total offsets dropped (a non-divisor k or a
// tiny run simply yields fewer, unevenly sized segments).
func segmentBounds(total uint64, k int) []uint64 {
	bounds := make([]uint64, 0, k-1)
	prev := uint64(0)
	for i := 1; i < k; i++ {
		b := total * uint64(i) / uint64(k) // total ≤ 2^41ish, k ≤ 1024: no overflow
		if b == prev || b == 0 || b == total {
			continue
		}
		bounds = append(bounds, b)
		prev = b
	}
	return bounds
}

// encodeMachine freezes the machine into a snapshot container keyed by
// (prefix, offset). It fails — rather than silently truncating — when any
// subsystem cannot serialize (a custom trace.Source without checkpoint
// support).
func encodeMachine(m *sim.Machine, prefix string, offset uint64) ([]byte, error) {
	w := checkpoint.NewWriter()
	m.SaveState(w)
	if err := w.Err(); err != nil {
		return nil, err
	}
	return checkpoint.EncodeSnapshot(prefix, offset, w.Bytes()), nil
}

// openSnapshot validates a store blob against the key it was fetched under
// and returns its payload.
func openSnapshot(blob []byte, prefix string, offset uint64) ([]byte, error) {
	p, off, payload, err := checkpoint.ReadSnapshot(blob)
	if err != nil {
		return nil, err
	}
	if p != prefix || off != offset {
		return nil, fmt.Errorf("unisoncache: snapshot stored under (%q, %d) claims key (%q, %d)", prefix, offset, p, off)
	}
	return payload, nil
}

// restoreMachine builds a fresh machine for the run and restores the
// snapshot blob into it. The machine resumes the run's schedule exactly
// where the snapshot froze it.
func restoreMachine(r Run, prefix string, offset uint64, blob []byte) (*sim.Machine, Run, error) {
	payload, err := openSnapshot(blob, prefix, offset)
	if err != nil {
		return nil, Run{}, err
	}
	m, rr, err := newMachine(r)
	if err != nil {
		return nil, Run{}, err
	}
	rd := checkpoint.NewReader(payload)
	if err := m.LoadState(rd); err != nil {
		return nil, Run{}, err
	}
	if err := rd.Finish(); err != nil {
		return nil, Run{}, err
	}
	return m, rr, nil
}

// executeSegmented runs a Segments >= 2 configuration time-parallel
// (DESIGN.md §11). The first execution of a configuration has no boundary
// snapshots, so it simulates serially while writing them — plus the
// warmup-boundary snapshot sampled runs warm-start from; repeat executions
// restore every segment's start state concurrently and stitch the segments
// together with a deterministic fix-up pass. Either way the Results are
// bit-identical to the serial replay.
func executeSegmented(r Run, onEpoch func(TimelineEpoch)) (Result, error) {
	prefix, err := checkpointPrefix(r)
	if err != nil {
		return Result{}, err
	}
	m, rr, err := newMachine(r)
	if err != nil {
		return Result{}, err
	}
	m.BeginRun(rr.AccessesPerCore)
	total := m.TotalSteps()
	bounds := segmentBounds(total, rr.Segments)

	// All-or-nothing: segments run concurrently only when every boundary
	// snapshot is present, because a missing interior snapshot stalls every
	// segment to its right anyway.
	blobs := make([][]byte, len(bounds))
	have := len(bounds) > 0
	for i, b := range bounds {
		blob, ok := ckStore.Get(prefix, b)
		if !ok {
			have = false
			break
		}
		blobs[i] = blob
	}
	if !have {
		return segmentedSerialSave(m, rr, prefix, bounds, onEpoch)
	}
	res, err := segmentedParallel(rr, prefix, total, bounds, blobs, onEpoch)
	if err != nil {
		// A snapshot failed to restore (corrupt entry, geometry skew after
		// a code change): fall back to the serial pass, which also rewrites
		// every boundary and so repairs the store.
		return segmentedSerialSave(m, rr, prefix, bounds, onEpoch)
	}
	return res, nil
}

// segmentedSerialSave replays the run serially on the prepared machine,
// saving a snapshot at every segment boundary and at the warmup boundary
// (the sampled warm-start state). Snapshot encoding failures are not
// errors — a source without checkpoint support simply leaves the store
// unpopulated and every execution serial. With telemetry enabled the one
// machine records the whole timeline and streams epochs live.
func segmentedSerialSave(m *sim.Machine, rr Run, prefix string, bounds []uint64, onEpoch func(TimelineEpoch)) (Result, error) {
	if rr.Telemetry.Enabled() {
		m.SetTelemetry(rr.Telemetry.internal(), emitFunc(onEpoch))
	}
	targets := bounds
	if warm := m.WarmSteps(); warm > 0 && warm < m.TotalSteps() {
		targets = make([]uint64, 0, len(bounds)+1)
		inserted := false
		for _, b := range bounds {
			if !inserted && warm <= b {
				targets = append(targets, warm)
				inserted = true
			}
			if b != warm {
				targets = append(targets, b)
			}
		}
		if !inserted {
			targets = append(targets, warm)
		}
	}
	for _, t := range targets {
		m.RunTo(t)
		if blob, err := encodeMachine(m, prefix, t); err == nil {
			ckStore.Put(prefix, t, blob)
		}
	}
	res := Result{Results: m.FinishRun(), Run: rr}
	if rr.Telemetry.Enabled() {
		tl, err := timelineFrom(m.TelemetryRecorder(), rr.Telemetry.internal())
		if err != nil {
			return Result{}, err
		}
		res.Timeline = tl
	}
	return res, nil
}

// segOut is one segment worker's product: interior segments hand back
// their encoded end state, the last segment the run's Results. With
// telemetry enabled each segment also carries its recorder — the sparse
// set of boundary cells its step range crossed — for the merge.
type segOut struct {
	endBlob []byte
	res     sim.Results
	tele    *telemetry.Recorder
	err     error
}

// runSegment simulates one segment on a private machine: from scratch
// (start == nil) or from a boundary snapshot, up to the end offset. The
// last segment completes the run and collects Results — bit-identical to
// serial because its whole state, statistics counters included, came
// through the checkpoint chain. Telemetry cells are measurement-relative,
// so a segment records exactly the values the serial run would for the
// boundaries its steps cross; the recorder's Sync skips boundaries crossed
// before the segment (they belong to segments to the left).
func runSegment(rr Run, prefix string, start []byte, startOff, end uint64, last bool) segOut {
	var m *sim.Machine
	if start == nil {
		fresh, _, err := newMachine(rr)
		if err != nil {
			return segOut{err: err}
		}
		fresh.BeginRun(rr.AccessesPerCore)
		m = fresh
	} else {
		restored, _, err := restoreMachine(rr, prefix, startOff, start)
		if err != nil {
			return segOut{err: err}
		}
		m = restored
	}
	if rr.Telemetry.Enabled() {
		m.SetTelemetry(rr.Telemetry.internal(), nil)
	}
	if last {
		return segOut{res: m.FinishRun(), tele: m.TelemetryRecorder()}
	}
	m.RunTo(end)
	blob, err := encodeMachine(m, prefix, end)
	if err != nil {
		return segOut{err: err}
	}
	return segOut{endBlob: blob, tele: m.TelemetryRecorder()}
}

// segmentedParallel runs every segment concurrently from the stored
// boundary snapshots, then merges left to right: segment i's computed end
// state must byte-equal the snapshot segment i+1 started from (the
// encoding is deterministic, so state identity is byte identity). A
// mismatch means the store carried a stale boundary — the authoritative
// state is written back and the next segment re-runs from it; the cascade
// proceeds only while mismatches keep propagating. The final segment's
// Results therefore always descend from an authoritative state chain.
// Telemetry merges the same way: each segment's recorder holds the cells
// its (authoritative) step range crossed, a re-run replaces the stale
// segment's recorder wholesale, and the union assembles the timeline the
// serial run records, bit for bit.
func segmentedParallel(rr Run, prefix string, total uint64, bounds []uint64, blobs [][]byte, onEpoch func(TimelineEpoch)) (Result, error) {
	k := len(bounds) + 1
	endOf := func(i int) uint64 {
		if i < len(bounds) {
			return bounds[i]
		}
		return total
	}
	startOf := func(i int) (blob []byte, off uint64) {
		if i == 0 {
			return nil, 0
		}
		return blobs[i-1], bounds[i-1]
	}

	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	// One worker per segment: segments are few and the whole point is
	// overlapping their wall-clock, so the pool never throttles them.
	outs, err := runner.Map(idx, func(i int) (segOut, error) {
		blob, off := startOf(i)
		o := runSegment(rr, prefix, blob, off, endOf(i), i == k-1)
		return o, o.err
	}, runner.Options{Jobs: k})
	if err != nil {
		return Result{}, err
	}

	for i := 0; i+1 < k; i++ {
		if bytes.Equal(outs[i].endBlob, blobs[i]) {
			continue
		}
		ckStore.Put(prefix, bounds[i], outs[i].endBlob)
		outs[i+1] = runSegment(rr, prefix, outs[i].endBlob, bounds[i], endOf(i+1), i+1 == k-1)
		if outs[i+1].err != nil {
			return Result{}, outs[i+1].err
		}
	}
	res := Result{Results: outs[k-1].res, Run: rr}
	if rr.Telemetry.Enabled() {
		// Union the segments' sparse cell sets left to right (a segment
		// that never reached the measurement phase has no recorder).
		var merged *telemetry.Recorder
		for _, o := range outs {
			if o.tele == nil {
				continue
			}
			if merged == nil {
				merged = o.tele
				continue
			}
			if err := merged.Absorb(o.tele); err != nil {
				return Result{}, err
			}
		}
		tl, err := timelineFrom(merged, rr.Telemetry.internal())
		if err != nil {
			return Result{}, err
		}
		res.Timeline = tl
		if onEpoch != nil {
			for _, e := range tl.Epochs {
				onEpoch(e)
			}
		}
	}
	return res, nil
}
