package unisoncache_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	uc "unisoncache"
)

// The golden determinism wall: testdata/golden.json freezes the complete
// Result — UIPC, miss taxonomy, predictor ratios, DRAM counters, everything
// the simulator measures — for a small fixed Run across all seven designs
// and two representative workloads. TestGolden compares byte-exact JSON, so
// any change to simulated behaviour, however small, fails loudly. This is
// the guard that lets hot-path rewrites prove "faster, not different":
// optimizations must land with this test passing against an unchanged file.
//
// Regenerate (only when behaviour is *meant* to change) with:
//
//	go test -run TestGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator")

const goldenPath = "testdata/golden.json"

// goldenRuns spans every design (the full switch in buildDesign) and two
// workloads chosen for contrast: web-search (scan footprints, near-perfect
// prediction) and data-analytics (singleton-heavy, noisy). Small core count
// and trace length keep the wall under a couple of seconds.
func goldenRuns() []uc.Run {
	var runs []uc.Run
	for _, w := range []string{"web-search", "data-analytics"} {
		for _, d := range uc.Designs() {
			runs = append(runs, uc.Run{
				Workload:        w,
				Design:          d,
				Capacity:        256 << 20,
				Cores:           4,
				AccessesPerCore: 20_000,
				Seed:            1,
			})
		}
	}
	return runs
}

// goldenKey names one run's entry in the golden file.
func goldenKey(r uc.Run) string { return fmt.Sprintf("%s/%s", r.Workload, r.Design) }

// encodeResult renders a Result to the canonical JSON stored in the golden
// file. Go's float encoding is the shortest round-trip representation, so
// byte equality of the JSON is bit equality of every float64.
func encodeResult(t *testing.T, res uc.Result) json.RawMessage {
	t.Helper()
	b, err := json.MarshalIndent(res, "    ", "  ")
	if err != nil {
		t.Fatalf("marshaling result: %v", err)
	}
	return b
}

func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden wall replays 14 full simulations; skipped in -short")
	}
	runs := goldenRuns()
	got := make(map[string]json.RawMessage, len(runs))
	for _, r := range runs {
		res, err := uc.Execute(r)
		if err != nil {
			t.Fatalf("%s: %v", goldenKey(r), err)
		}
		got[goldenKey(r)] = encodeResult(t, res)
	}

	if *updateGolden {
		writeGolden(t, runs, got)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (generate it with -update): %v", goldenPath, err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(runs) {
		t.Errorf("golden file holds %d entries, expected %d", len(want), len(runs))
	}
	for _, r := range runs {
		key := goldenKey(r)
		t.Run(key, func(t *testing.T) {
			w, ok := want[key]
			if !ok {
				t.Fatalf("no golden entry for %s (regenerate with -update)", key)
			}
			if string(w) != string(got[key]) {
				t.Errorf("result diverged from golden (run with -update only if the change is intended)\ngolden: %s\n   got: %s",
					w, got[key])
			}
		})
	}
}

// The sampled golden wall: testdata/golden_sampled.json freezes complete
// sampled Results — the windowed UIPC estimate, the CI block with every
// per-window per-core sample, the early-stop outcome and the event
// accounting — for a fixed SampleSpec across three designs and two
// workloads. Bit-exact JSON equality pins the whole sampled pipeline:
// schedule arithmetic, the no-barrier boundary snapshots, the ratio
// estimator, the t-quantiles and the stopping rule.
const goldenSampledPath = "testdata/golden_sampled.json"

// goldenSampledRuns: unison + alloy + the no-cache baseline, so the wall
// also covers exactly the runs a sampled speedup pairs.
func goldenSampledRuns() []uc.Run {
	spec := uc.SampleSpec{IntervalEvents: 500, GapEvents: 500, MinIntervals: 4}
	var runs []uc.Run
	for _, w := range []string{"web-search", "data-analytics"} {
		for _, d := range []uc.DesignKind{uc.DesignUnison, uc.DesignAlloy, uc.DesignNone} {
			runs = append(runs, uc.Run{
				Workload:        w,
				Design:          d,
				Capacity:        256 << 20,
				Cores:           4,
				AccessesPerCore: 20_000,
				Seed:            1,
				Sampling:        spec,
			})
		}
	}
	return runs
}

func TestGoldenSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled golden wall replays 6 simulations; skipped in -short")
	}
	runs := goldenSampledRuns()
	got := make(map[string]json.RawMessage, len(runs))
	for _, r := range runs {
		res, err := uc.Execute(r)
		if err != nil {
			t.Fatalf("%s: %v", goldenKey(r), err)
		}
		if res.CI == nil {
			t.Fatalf("%s: sampled run returned no CI", goldenKey(r))
		}
		got[goldenKey(r)] = encodeResult(t, res)
	}

	if *updateGolden {
		writeGoldenFile(t, goldenSampledPath, runs, got)
		return
	}

	data, err := os.ReadFile(goldenSampledPath)
	if err != nil {
		t.Fatalf("reading %s (generate it with -update): %v", goldenSampledPath, err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenSampledPath, err)
	}
	if len(want) != len(runs) {
		t.Errorf("golden file holds %d entries, expected %d", len(want), len(runs))
	}
	for _, r := range runs {
		key := goldenKey(r)
		t.Run(key, func(t *testing.T) {
			w, ok := want[key]
			if !ok {
				t.Fatalf("no golden entry for %s (regenerate with -update)", key)
			}
			if string(w) != string(got[key]) {
				t.Errorf("sampled result diverged from golden (run with -update only if the change is intended)\ngolden: %s\n   got: %s",
					w, got[key])
			}
		})
	}
}

// writeGolden rewrites the golden file with deterministic key order.
func writeGolden(t *testing.T, runs []uc.Run, got map[string]json.RawMessage) {
	t.Helper()
	writeGoldenFile(t, goldenPath, runs, got)
}

// writeGoldenFile writes one golden fixture with deterministic key order.
func writeGoldenFile(t *testing.T, goldenPath string, runs []uc.Run, got map[string]json.RawMessage) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = append(buf, "{\n"...)
	for i, r := range runs {
		key := goldenKey(r)
		buf = append(buf, fmt.Sprintf("  %q: ", key)...)
		buf = append(buf, got[key]...)
		if i < len(runs)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, "}\n"...)
	if err := os.WriteFile(goldenPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", goldenPath, len(runs))
}
