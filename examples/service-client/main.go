// Example service-client drives a running unisonserved daemon through
// the public client package: it submits a small Figure 7-style speedup
// sweep, prints the results, submits the identical sweep again, and shows
// — straight from the daemon's /metrics — that the repeat came out of the
// content-addressed result cache without simulating anything.
//
// Start a daemon, then run the example:
//
//	go run ./cmd/unisonserved -addr 127.0.0.1:8080 &
//	go run ./examples/service-client -server http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	uc "unisoncache"
	"unisoncache/client"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "unisonserved base URL")
	accesses := flag.Int("accesses", 20_000, "accesses per core")
	flag.Parse()

	cl := client.New(*server)
	ctx := context.Background()
	if _, err := cl.Health(ctx); err != nil {
		fatal(fmt.Errorf("cannot reach %s (start one with: go run ./cmd/unisonserved): %w", *server, err))
	}

	points := uc.Sweep{
		Base:    uc.Run{Workload: "web-search", Capacity: 1 << 30, Cores: 4, AccessesPerCore: *accesses},
		Designs: []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison},
	}.Points()

	sweep := func(label string) {
		results, err := cl.SpeedupMany(ctx, points)
		if err != nil {
			fatal(err)
		}
		m, err := cl.Metrics(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s:\n", label)
		for i, r := range results {
			fmt.Printf("  %-10s speedup %.2fx  (miss %.1f%%)\n",
				points[i].Design, r.Speedup, r.Design.MissRatioPct())
		}
		fmt.Printf("  daemon totals: %.0f simulated, %.0f served from cache\n",
			m["unisonserved_cache_misses_total"], m["unisonserved_cache_hits_total"])
	}

	sweep("first submission (simulates)")
	sweep("identical resubmission (content-addressed cache)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "service-client:", err)
	os.Exit(1)
}
