// Quickstart: simulate a 1 GB Unison Cache on the Web Search workload and
// print the numbers the paper's abstract leads with — hit ratio and speedup
// over a system with no DRAM cache.
package main

import (
	"flag"
	"fmt"
	"log"

	uc "unisoncache"
)

func main() {
	accesses := flag.Int("accesses", 0, "accesses per core (0 = library default; CI smoke passes a reduced count)")
	flag.Parse()

	run := uc.Run{
		Workload:        "web-search",
		Design:          uc.DesignUnison,
		Capacity:        1 << 30, // 1 GB of die-stacked DRAM
		AccessesPerCore: *accesses,
	}

	speedup, res, base, err := uc.Speedup(run)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Unison Cache, %s, 1GB stacked DRAM\n", run.Workload)
	fmt.Printf("  hit ratio:            %.1f%%\n", 100-res.MissRatioPct())
	fmt.Printf("  footprint prediction: %.1f%% accurate, %.1f%% overfetch\n",
		res.Design.FP.Percent(), res.Design.FO.Percent())
	fmt.Printf("  way prediction:       %.1f%% accurate\n", res.Design.WP.Percent())
	fmt.Printf("  throughput (UIPC):    %.2f vs %.2f without a DRAM cache\n", res.UIPC, base.UIPC)
	fmt.Printf("  speedup:              %.2fx\n", speedup)
}
