// Tpch reproduces the paper's Figure 8 scenario: TPC-H analytic queries
// over a >100 GB column store, with multi-gigabyte stacked caches (1-8 GB).
// This is the regime the paper argues makes SRAM page tags impractical:
// Footprint Cache's tag array would grow to ~50 MB and its lookup latency
// to ~48 cycles, while Unison Cache's in-DRAM tags scale for free.
package main

import (
	"fmt"
	"log"

	uc "unisoncache"
)

func main() {
	sizes := []uint64{1 << 30, 2 << 30, 4 << 30, 8 << 30}

	fmt.Println("TPC-H queries: 1-8GB stacked caches (Figure 8)")
	fmt.Printf("%-6s %28s %28s\n", "", "speedup over baseline", "miss ratio")
	fmt.Printf("%-6s %8s %9s %9s %9s %8s %9s\n", "size", "alloy", "footprint", "unison", "alloy", "footprnt", "unison")
	for _, size := range sizes {
		base, err := uc.Execute(uc.Run{Workload: "tpch", Design: uc.DesignNone, Capacity: size})
		if err != nil {
			log.Fatal(err)
		}
		var sp [3]float64
		var miss [3]float64
		for i, d := range []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison} {
			res, err := uc.Execute(uc.Run{Workload: "tpch", Design: d, Capacity: size})
			if err != nil {
				log.Fatal(err)
			}
			sp[i] = res.UIPC / base.UIPC
			miss[i] = res.MissRatioPct()
		}
		fmt.Printf("%dGB %10.2f %9.2f %9.2f %8.1f%% %8.1f%% %8.1f%%\n",
			size>>30, sp[0], sp[1], sp[2], miss[0], miss[1], miss[2])
	}
	fmt.Println("\nNote how Footprint Cache's speedup stalls as its tag latency grows")
	fmt.Println("with capacity (Table IV), while Unison Cache keeps improving — the")
	fmt.Println("paper's scalability argument.")
}
