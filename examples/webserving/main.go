// Webserving reproduces one panel of the paper's Figure 7 for the Web
// Serving workload: it sweeps the stacked-DRAM capacity from 128 MB to 1 GB
// and compares all four designs against the no-cache baseline, showing the
// crossover the paper highlights — Footprint Cache wins while its SRAM tag
// array is small and fast, Unison Cache wins as capacity (and therefore FC
// tag latency) grows.
package main

import (
	"fmt"
	"log"

	uc "unisoncache"
)

func main() {
	sizes := []uint64{128 << 20, 256 << 20, 512 << 20, 1 << 30}
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal}

	fmt.Println("Web Serving: speedup over no-DRAM-cache baseline (Figure 7 panel)")
	fmt.Printf("%-8s %8s %10s %8s %8s\n", "size", "alloy", "footprint", "unison", "ideal")
	for _, size := range sizes {
		base, err := uc.Execute(uc.Run{Workload: "web-serving", Design: uc.DesignNone, Capacity: size})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", label(size))
		for _, d := range designs {
			res, err := uc.Execute(uc.Run{Workload: "web-serving", Design: d, Capacity: size})
			if err != nil {
				log.Fatal(err)
			}
			width := 8
			if d == uc.DesignFootprint {
				width = 10
			}
			fmt.Printf(" %*.2f", width, res.UIPC/base.UIPC)
		}
		fmt.Println()
	}
	fmt.Println("\nFootprint Cache's SRAM tag array at these sizes would be 0.8-6.2 MB")
	fmt.Println("(Table IV); at 8 GB it reaches ~50 MB, which is why Unison Cache keeps")
	fmt.Println("its tags in the stacked DRAM itself.")
}

func label(b uint64) string {
	if b >= 1<<30 {
		return fmt.Sprintf("%dGB", b>>30)
	}
	return fmt.Sprintf("%dMB", b>>20)
}
