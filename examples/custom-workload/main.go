// Custom-workload shows how to study Unison Cache on a workload you define
// yourself, entirely through the public unisoncache API: it registers an
// in-memory key-value-store-like Profile under a name, re-runs the same
// trace with the Figure 5 associativity sweep plus the §V-B way-prediction
// ablation through the sweep engine, and finally records the workload to a
// .utrace capture and replays it, proving the replay is bit-identical.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	uc "unisoncache"
)

func main() {
	// An in-memory KV store: strong skew, small dense objects, heavy
	// writes. The working set is declared at full scale; ScaleDivisor
	// shrinks it 1/16 along with the cache, like the facade's automatic
	// proportional scaling would.
	kv := uc.Profile{
		WorkingSetBytes: 2 << 30,
		ZipfTheta:       0.85,
		PCs:             96,
		PCZipfTheta:     0.5,
		DensityMin:      0.2,
		DensityMax:      0.5,
		SingletonPCFrac: 0.1,
		PatternNoise:    0.03,
		Scan:            false,
		AffinityClasses: 96,
		AffinityEscape:  0.02,
		WriteFrac:       0.3,
		GapMean:         10,
		RepeatMean:      1.0,
	}
	if err := uc.RegisterWorkload("kv-store", kv); err != nil {
		log.Fatal(err)
	}

	base := uc.Run{
		Workload:        "kv-store",
		Design:          uc.DesignUnison,
		Capacity:        512 << 20,
		ScaleDivisor:    16,
		Seed:            7,
		AccessesPerCore: 200_000,
	}
	configs := []struct {
		name string
		mut  func(*uc.Run)
	}{
		{"direct-mapped", func(r *uc.Run) { r.UnisonWays = 1 }},
		{"4-way (design point)", func(r *uc.Run) {}},
		{"32-way (reference)", func(r *uc.Run) { r.UnisonWays = 32 }},
		{"4-way, 1984B pages", func(r *uc.Run) { r.Design = uc.DesignUnison1984 }},
		{"4-way, no way pred", func(r *uc.Run) { r.DisableWayPrediction = true }},
		{"4-way, serialized tag", func(r *uc.Run) { r.SerializeTagData = true }},
	}
	points := make([]uc.Run, len(configs))
	for i, c := range configs {
		points[i] = base
		c.mut(&points[i])
	}
	results, err := uc.ExecuteMany(uc.Plan{Points: points})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom kv-store workload, 512MB-class Unison Cache (1/16 scale)")
	fmt.Printf("%-22s %8s %8s %8s\n", "configuration", "miss%", "FPacc%", "UIPC")
	for i, c := range configs {
		res := results[i]
		fmt.Printf("%-22s %8.1f %8.1f %8.2f\n",
			c.name, res.Design.MissRatioPct(), res.Design.FP.Percent(), res.UIPC)
	}

	// Record/replay: capture the design-point run, replay it from the
	// .utrace file, and check the two results match bit for bit.
	short := base
	short.AccessesPerCore = 60_000
	path := filepath.Join(os.TempDir(), "kv-store.utrace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := uc.RecordTrace(short, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	live, err := uc.Execute(short)
	if err != nil {
		log.Fatal(err)
	}
	replayRun := short
	replayRun.TracePath = path
	replayed, err := uc.Execute(replayRun)
	if err != nil {
		log.Fatal(err)
	}
	identical := live.UIPC == replayed.UIPC && live.Cycles == replayed.Cycles &&
		live.Design.Reads == replayed.Design.Reads && live.Design.ReadHits == replayed.Design.ReadHits
	fmt.Printf("\nrecord/replay via %s:\n", path)
	fmt.Printf("  live UIPC %.4f, replayed UIPC %.4f — bit-identical: %v\n",
		live.UIPC, replayed.UIPC, identical)
	if !identical {
		log.Fatal("record/replay drifted — the replay no longer reproduces the live run")
	}
}
