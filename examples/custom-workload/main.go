// Custom-workload shows how to study Unison Cache's internal mechanisms on
// a workload you define yourself, driving the internal packages directly
// rather than the facade: it builds an in-memory key-value-store-like
// profile, wires up the DRAM parts, a Unison Cache and the replay engine by
// hand, and then re-runs the same trace with the Figure 5 associativity
// sweep plus the §V-B way-prediction ablation.
package main

import (
	"fmt"
	"log"

	"unisoncache/internal/core"
	"unisoncache/internal/dram"
	"unisoncache/internal/sim"
	"unisoncache/internal/trace"
)

func main() {
	// An in-memory KV store: strong skew, small dense objects, heavy
	// writes. 2 GB working set scaled 1/16 like the facade would.
	profile := &trace.Profile{
		Name:            "kv-store",
		WorkingSetBytes: 2 << 30 / 16,
		ZipfTheta:       0.85,
		PCs:             96,
		PCZipfTheta:     0.5,
		DensityMin:      0.2,
		DensityMax:      0.5,
		SingletonPCFrac: 0.1,
		PatternNoise:    0.03,
		Scan:            false,
		AffinityClasses: 96,
		AffinityEscape:  0.02,
		WriteFrac:       0.3,
		GapMean:         10,
		RepeatMean:      1.0,
	}
	if err := profile.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom kv-store workload, 512MB-class Unison Cache (1/16 scale)")
	fmt.Printf("%-22s %8s %8s %8s\n", "configuration", "miss%", "FPacc%", "UIPC")
	for _, cfg := range []struct {
		name string
		conf core.Config
	}{
		{"direct-mapped", core.Config{PageBlocks: 15, Ways: 1}},
		{"4-way (design point)", core.Config{PageBlocks: 15, Ways: 4}},
		{"32-way (reference)", core.Config{PageBlocks: 15, Ways: 32}},
		{"4-way, 1984B pages", core.Config{PageBlocks: 31, Ways: 4}},
		{"4-way, no way pred", core.Config{PageBlocks: 15, Ways: 4, DisableWayPrediction: true}},
		{"4-way, serialized tag", core.Config{PageBlocks: 15, Ways: 4, SerializeTagData: true}},
	} {
		res, err := runOnce(profile, cfg.conf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.1f %8.1f %8.2f\n",
			cfg.name, res.Design.MissRatioPct(), res.Design.FP.Percent(), res.UIPC)
	}
}

// runOnce wires the full system by hand — the long way the facade wraps.
func runOnce(profile *trace.Profile, conf core.Config) (sim.Results, error) {
	stacked, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		return sim.Results{}, err
	}
	offchip, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		return sim.Results{}, err
	}
	conf.CapacityBytes = 512 << 20 / 16
	conf.LabelBytes = 512 << 20
	design, err := core.New(conf, stacked, offchip)
	if err != nil {
		return sim.Results{}, err
	}
	cfg := sim.Default()
	cfg.L2.SizeBytes = 256 << 10
	streams := make([]*trace.Stream, cfg.Cores)
	for i := range streams {
		if streams[i], err = trace.NewStream(profile, 7, i); err != nil {
			return sim.Results{}, err
		}
	}
	machine, err := sim.New(cfg, streams, design, stacked, offchip)
	if err != nil {
		return sim.Results{}, err
	}
	return machine.Run(200_000), nil
}
