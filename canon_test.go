package unisoncache

import (
	"math"
	"testing"
)

// The canonicalization wall: the service's content-addressed cache keys
// stand on runKey (in-plan memoization identity) and baselineRun
// (baseline collapse), so their algebra is pinned here.

// TestRunKeyIsDefaultedIdentity: runKey is the identity on defaulted
// runs, and defaulting collapses implicit and explicit defaults onto the
// same key — the property both the in-plan memoizer and RunKey rely on.
func TestRunKeyIsDefaultedIdentity(t *testing.T) {
	implicit := Run{Workload: "web-search", Design: DesignUnison, Capacity: 1 << 30}.withDefaults()
	explicit := Run{
		Workload: "web-search", Design: DesignUnison, Capacity: 1 << 30,
		AccessesPerCore: 400_000, Seed: 1, Cores: 16,
		UnisonWays: 4, FCWays: 32, ScaleDivisor: AutoScaleDivisor(1 << 30),
	}.withDefaults()
	if runKey(implicit) != runKey(explicit) {
		t.Errorf("implicit and explicit defaults key differently:\n%+v\n%+v", implicit, explicit)
	}
	if runKey(implicit) != implicit {
		t.Error("runKey is not the identity")
	}
	// Any stream- or design-shaping difference must change the key.
	for name, mod := range map[string]func(*Run){
		"workload":  func(r *Run) { r.Workload = "data-serving" },
		"design":    func(r *Run) { r.Design = DesignAlloy },
		"capacity":  func(r *Run) { r.Capacity = 2 << 30 },
		"seed":      func(r *Run) { r.Seed = 2 },
		"ways":      func(r *Run) { r.UnisonWays = 32 },
		"sampling":  func(r *Run) { r.Sampling = DefaultSampleSpec() },
		"telemetry": func(r *Run) { r.Telemetry = DefaultTelemetrySpec() },
	} {
		r := implicit
		mod(&r)
		if runKey(r.withDefaults()) == runKey(implicit) {
			t.Errorf("%s change did not change the key", name)
		}
	}
}

// TestBaselineRunCanonicalization: every design point over the same
// workload tuple collapses onto one baseline key, design-only knobs are
// all reset, and the workload-shaping fields survive untouched.
func TestBaselineRunCanonicalization(t *testing.T) {
	base := Run{Workload: "web-search", Capacity: 1 << 30, Seed: 3, Cores: 8,
		AccessesPerCore: 10_000}.withDefaults()

	variants := []func(*Run){
		func(r *Run) { r.Design = DesignUnison },
		func(r *Run) { r.Design = DesignAlloy },
		func(r *Run) { r.Design = DesignFootprint; r.FCWays = 16 },
		func(r *Run) { r.Design = DesignUnison; r.UnisonWays = 32 },
		func(r *Run) { r.Design = DesignUnison; r.DisableWayPrediction = true },
		func(r *Run) { r.Design = DesignUnison; r.SerializeTagData = true },
		func(r *Run) { r.Design = DesignUnison; r.DisableSingleton = true },
		func(r *Run) { r.Design = DesignUnison; r.Telemetry = DefaultTelemetrySpec() },
	}
	want := baselineRun(base)
	for i, mod := range variants {
		r := base
		mod(&r)
		got := baselineRun(r.withDefaults())
		if got != want {
			t.Errorf("variant %d: baseline %+v, want the shared %+v", i, got, want)
		}
	}

	if want.Design != DesignNone {
		t.Errorf("baseline design = %q, want %q", want.Design, DesignNone)
	}
	if want.UnisonWays != 4 || want.FCWays != 32 ||
		want.DisableWayPrediction || want.SerializeTagData || want.DisableSingleton {
		t.Errorf("baseline did not reset all design knobs: %+v", want)
	}
	if want.Workload != base.Workload || want.Seed != base.Seed || want.Cores != base.Cores ||
		want.Capacity != base.Capacity || want.AccessesPerCore != base.AccessesPerCore ||
		want.ScaleDivisor != base.ScaleDivisor {
		t.Errorf("baseline disturbed the workload tuple: %+v vs %+v", want, base)
	}
	if got := baselineRun(want); got != want {
		t.Errorf("baselineRun not idempotent: %+v", got)
	}

	// Sampling and trace replay are part of the tuple: a sampled design
	// point pairs with a sampled baseline, a replayed one with the same
	// capture.
	sampled := base
	sampled.Sampling = DefaultSampleSpec()
	if b := baselineRun(sampled.withDefaults()); b.Sampling != sampled.withDefaults().Sampling {
		t.Error("baseline dropped the sampling spec")
	}
	replay := base
	replay.TracePath = "some.utrace"
	if b := baselineRun(replay); b.TracePath != "some.utrace" {
		t.Error("baseline dropped the trace path")
	}
}

// TestSpeedupCIArithmetic: Low/High/RelHalfWidth across regular,
// zero-width, zero-center and negative-center intervals — the degenerate
// cases the CI-target refinement loop must never misread as converged.
func TestSpeedupCIArithmetic(t *testing.T) {
	cases := []struct {
		name               string
		ci                 SpeedupCI
		low, high, relhalf float64
	}{
		{"regular", SpeedupCI{Speedup: 1.25, HalfWidth: 0.05}, 1.20, 1.30, 0.04},
		{"exact", SpeedupCI{Speedup: 2, HalfWidth: 0}, 2, 2, 0},
		{"zero speedup zero width", SpeedupCI{}, 0, 0, 0},
		{"zero speedup nonzero width", SpeedupCI{Speedup: 0, HalfWidth: 0.3}, -0.3, 0.3, math.Inf(1)},
		{"negative speedup", SpeedupCI{Speedup: -2, HalfWidth: 0.5}, -2.5, -1.5, 0.25},
		{"tiny speedup", SpeedupCI{Speedup: 1e-300, HalfWidth: 1e-3}, -1e-3 + 1e-300, 1e-3 + 1e-300, 1e297},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.ci.Low(); math.Abs(got-tc.low) > 1e-12 {
				t.Errorf("Low = %v, want %v", got, tc.low)
			}
			if got := tc.ci.High(); math.Abs(got-tc.high) > 1e-12 {
				t.Errorf("High = %v, want %v", got, tc.high)
			}
			got := tc.ci.RelHalfWidth()
			switch {
			case math.IsInf(tc.relhalf, 1):
				if !math.IsInf(got, 1) {
					t.Errorf("RelHalfWidth = %v, want +Inf", got)
				}
			case tc.relhalf >= 1e296:
				if got < 1e296 {
					t.Errorf("RelHalfWidth = %v, want huge", got)
				}
			default:
				if math.Abs(got-tc.relhalf) > 1e-12 {
					t.Errorf("RelHalfWidth = %v, want %v", got, tc.relhalf)
				}
			}
			// The refinement loop's invariant: an interval that is not
			// actually tight never reports a small relative width.
			if tc.ci.HalfWidth > 0 && got <= 0 {
				t.Errorf("nonzero interval reported RelHalfWidth %v — a CI target would accept it", got)
			}
		})
	}
}
