package unisoncache

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"unisoncache/internal/trace"
)

// Profile is the statistical description of a workload — the public mirror
// of the internal generator's parameters. Register one under a name with
// RegisterWorkload and every entry point that takes a workload name
// (Execute, Speedup, Plan, Sweep, SpeedupMany) accepts it exactly like the
// six built-ins. See DESIGN.md §7 for how each field shapes the generated
// access stream.
type Profile struct {
	// WorkingSetBytes is the touched data footprint; regions are drawn
	// from a population of WorkingSetBytes / 2 KB. The proportional-scaling
	// divisor (Run.ScaleDivisor) divides it at execution time, so declare
	// the full-scale footprint here.
	WorkingSetBytes uint64
	// ZipfTheta is the region-popularity skew (0 uniform, ~1 very hot).
	ZipfTheta float64
	// PCs is the function-pool size; footprints correlate with these.
	PCs int
	// PCZipfTheta skews which functions run most often.
	PCZipfTheta float64
	// DensityMin and DensityMax bound per-PC footprint density (fraction
	// of the 32 region blocks a visit touches).
	DensityMin, DensityMax float64
	// SingletonPCFrac is the fraction of PCs whose visits touch a single
	// block (pointer-chasing functions).
	SingletonPCFrac float64
	// PatternNoise is the per-block probability that one visit deviates
	// from the PC's base pattern — the irreducible footprint
	// mispredictability.
	PatternNoise float64
	// Scan selects contiguous-run footprints (column scans, postings
	// lists) instead of scattered ones (object graphs).
	Scan bool
	// AffinityClasses partitions the region space into code-affinity
	// classes; a function's visits stay within its own class except for an
	// AffinityEscape fraction. 0 disables partitioning.
	AffinityClasses int
	// AffinityEscape is the probability a visit leaves its class.
	AffinityEscape float64
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	// GapMean is the mean number of non-memory instructions between
	// consecutive memory accesses.
	GapMean float64
	// RepeatMean is the mean extra accesses to a touched block within a
	// visit (temporal reuse absorbed by the L1/L2).
	RepeatMean float64
}

// internal converts the public profile into the generator's form.
func (p Profile) internal(name string) *trace.Profile {
	return &trace.Profile{
		Name:            name,
		WorkingSetBytes: p.WorkingSetBytes,
		ZipfTheta:       p.ZipfTheta,
		PCs:             p.PCs,
		PCZipfTheta:     p.PCZipfTheta,
		DensityMin:      p.DensityMin,
		DensityMax:      p.DensityMax,
		SingletonPCFrac: p.SingletonPCFrac,
		PatternNoise:    p.PatternNoise,
		Scan:            p.Scan,
		AffinityClasses: p.AffinityClasses,
		AffinityEscape:  p.AffinityEscape,
		WriteFrac:       p.WriteFrac,
		GapMean:         p.GapMean,
		RepeatMean:      p.RepeatMean,
	}
}

// publicProfile is the inverse of Profile.internal.
func publicProfile(p *trace.Profile) Profile {
	return Profile{
		WorkingSetBytes: p.WorkingSetBytes,
		ZipfTheta:       p.ZipfTheta,
		PCs:             p.PCs,
		PCZipfTheta:     p.PCZipfTheta,
		DensityMin:      p.DensityMin,
		DensityMax:      p.DensityMax,
		SingletonPCFrac: p.SingletonPCFrac,
		PatternNoise:    p.PatternNoise,
		Scan:            p.Scan,
		AffinityClasses: p.AffinityClasses,
		AffinityEscape:  p.AffinityEscape,
		WriteFrac:       p.WriteFrac,
		GapMean:         p.GapMean,
		RepeatMean:      p.RepeatMean,
	}
}

var (
	workloadMu sync.RWMutex
	registered = map[string]*trace.Profile{}
)

// RegisterWorkload adds (or replaces) a user-defined workload under name.
// The profile is validated now, so a registered name never fails at
// execution time. Built-in names cannot be shadowed. Registration is safe
// for concurrent use, but the name's meaning must not change while a Plan
// referencing it is executing: the sweep engine memoizes results by Run
// configuration, and the workload name is part of that key.
func RegisterWorkload(name string, p Profile) error {
	if name == "" {
		return fmt.Errorf("unisoncache: empty workload name")
	}
	if _, builtin := trace.Profiles()[name]; builtin {
		return fmt.Errorf("unisoncache: workload %q would shadow a built-in", name)
	}
	prof := p.internal(name)
	if err := prof.Validate(); err != nil {
		return fmt.Errorf("unisoncache: workload %q: %w", name, err)
	}
	workloadMu.Lock()
	defer workloadMu.Unlock()
	registered[name] = prof
	return nil
}

// Workloads lists every selectable workload name: the six built-ins in the
// paper's canonical figure order, then registered workloads sorted by name.
func Workloads() []string {
	names := trace.Names()
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	extra := make([]string, 0, len(registered))
	for n := range registered {
		extra = append(extra, n)
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// WorkloadProfile returns the profile registered or built in under name.
func WorkloadProfile(name string) (Profile, bool) {
	p, ok := lookupProfile(name)
	if !ok {
		return Profile{}, false
	}
	return publicProfile(p), true
}

// lookupProfile resolves a workload name: built-ins first, then the
// registry. The returned profile is never mutated by callers (scaling
// copies it).
func lookupProfile(name string) (*trace.Profile, bool) {
	if p, ok := trace.Profiles()[name]; ok {
		return p, true
	}
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	p, ok := registered[name]
	return p, ok
}

// scaleProfile applies the proportional-scaling methodology to the working
// set (DESIGN.md §5), flooring at one region.
func scaleProfile(p *trace.Profile, divisor int) *trace.Profile {
	scaled := *p
	scaled.WorkingSetBytes = p.WorkingSetBytes / uint64(divisor)
	if scaled.WorkingSetBytes < trace.RegionBytes {
		scaled.WorkingSetBytes = trace.RegionBytes
	}
	return &scaled
}

// liveSources builds the per-core synthetic streams Execute(r) replays: the
// workload's profile, scaled by r.ScaleDivisor, seeded by (r.Seed, core).
func liveSources(r Run) ([]trace.Source, error) {
	if r.Cores <= 0 {
		return nil, fmt.Errorf("unisoncache: Cores must be positive, got %d", r.Cores)
	}
	prof, ok := lookupProfile(r.Workload)
	if !ok {
		return nil, fmt.Errorf("unisoncache: unknown workload %q (have %v)", r.Workload, Workloads())
	}
	scaled := scaleProfile(prof, r.ScaleDivisor)
	sources := make([]trace.Source, r.Cores)
	for i := range sources {
		s, err := trace.NewStream(scaled, r.Seed, i)
		if err != nil {
			return nil, err
		}
		sources[i] = s
	}
	return sources, nil
}

// RecordTrace captures to w, in the .utrace binary format, the exact
// per-core event streams Execute(r) would replay live: r.AccessesPerCore
// events on each of r.Cores cores. Executing the same Run with TracePath
// pointing at the capture yields Results bit-identical to the live run. The
// capture freezes the events themselves, so it outlives the workload's
// registration and reproduces runs across processes and machines.
func RecordTrace(r Run, w io.Writer) error {
	if r.TracePath != "" {
		return fmt.Errorf("unisoncache: cannot record from a replay (TracePath set)")
	}
	r = r.withDefaults()
	if r.ScaleDivisor < 1 {
		return fmt.Errorf("unisoncache: ScaleDivisor must be >= 1, got %d", r.ScaleDivisor)
	}
	sources, err := liveSources(r)
	if err != nil {
		return err
	}
	return trace.WriteTrace(w, trace.FileHeader{
		Profile:       r.Workload,
		Seed:          r.Seed,
		ScaleDivisor:  r.ScaleDivisor,
		Cores:         r.Cores,
		EventsPerCore: r.AccessesPerCore,
	}, sources)
}

// replaySources opens r.TracePath and returns the capture's per-core
// sources, reconciling the Run against the file header: zero-valued
// Workload, Seed, Cores and AccessesPerCore take the header's values;
// explicitly set ones must match (AccessesPerCore may replay a prefix),
// and the run's effective ScaleDivisor must equal the capture's.
func replaySources(r Run) (Run, []trace.Source, error) {
	f, err := os.Open(r.TracePath)
	if err != nil {
		return r, nil, fmt.Errorf("unisoncache: opening trace: %w", err)
	}
	defer f.Close()
	hdr, replays, err := trace.ReadTrace(f)
	if err != nil {
		return r, nil, err
	}
	if r.Workload == "" {
		r.Workload = hdr.Profile
	} else if r.Workload != hdr.Profile {
		return r, nil, fmt.Errorf("unisoncache: trace %s was captured from workload %q, not %q", r.TracePath, hdr.Profile, r.Workload)
	}
	if r.Seed == 0 {
		r.Seed = hdr.Seed
	} else if r.Seed != hdr.Seed {
		return r, nil, fmt.Errorf("unisoncache: trace %s was captured with seed %d, not %d", r.TracePath, hdr.Seed, r.Seed)
	}
	// The frozen events embed the capture-time divided working set, so a
	// replay under any other divisor would silently break the
	// capacity-to-working-set ratio. r.ScaleDivisor is already defaulted
	// (auto from Capacity) and validated >= 1 by Execute.
	if r.ScaleDivisor != hdr.ScaleDivisor {
		return r, nil, fmt.Errorf("unisoncache: trace %s was captured at scale divisor %d, run uses %d (match the capture's Capacity/ScaleDivisor)", r.TracePath, hdr.ScaleDivisor, r.ScaleDivisor)
	}
	if r.Cores == 0 {
		r.Cores = hdr.Cores
	} else if r.Cores != hdr.Cores {
		return r, nil, fmt.Errorf("unisoncache: trace %s holds %d cores, run wants %d", r.TracePath, hdr.Cores, r.Cores)
	}
	if r.AccessesPerCore == 0 {
		r.AccessesPerCore = hdr.EventsPerCore
	} else if r.AccessesPerCore > hdr.EventsPerCore {
		return r, nil, fmt.Errorf("unisoncache: trace %s holds %d events per core, run wants %d", r.TracePath, hdr.EventsPerCore, r.AccessesPerCore)
	}
	sources := make([]trace.Source, len(replays))
	for i, rs := range replays {
		sources[i] = rs
	}
	return r, sources, nil
}

// sources resolves the Run's event producers — a .utrace replay when
// TracePath is set, live synthetic streams otherwise — and returns the Run
// with any header-derived fields filled in.
func (r Run) sources() (Run, []trace.Source, error) {
	if r.TracePath != "" {
		return replaySources(r)
	}
	live, err := liveSources(r)
	return r, live, err
}
