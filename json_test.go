package unisoncache_test

import (
	"encoding/json"
	"strings"
	"testing"

	uc "unisoncache"
)

// TestRunJSONRoundTrip: a fully-populated Run survives marshal →
// unmarshal unchanged (Run is comparable, so this is exact equality).
func TestRunJSONRoundTrip(t *testing.T) {
	r := uc.Run{
		Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30,
		AccessesPerCore: 123_456, Seed: 9, Cores: 8, ScaleDivisor: 64,
		TracePath:  "",
		Sampling:   uc.SampleSpec{IntervalEvents: 500, GapEvents: 1500, MinIntervals: 4, Confidence: 0.99, TargetRelCI: 0.02},
		UnisonWays: 32, DisableWayPrediction: true, SerializeTagData: true, DisableSingleton: true,
		FCWays: 16,
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got uc.Run
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", blob, err)
	}
	if got != r {
		t.Errorf("round trip changed the run:\n was %+v\n now %+v", r, got)
	}
}

// TestRunJSONStableFieldNames: the wire names are the exported Go names
// — a rename would silently break every stored payload, so they are
// pinned.
func TestRunJSONStableFieldNames(t *testing.T) {
	blob, err := json.Marshal(uc.Run{Workload: "web-search", Sampling: uc.DefaultSampleSpec()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`"Workload"`, `"Design"`, `"Capacity"`, `"AccessesPerCore"`, `"Seed"`, `"Cores"`,
		`"ScaleDivisor"`, `"TracePath"`, `"Sampling"`, `"UnisonWays"`, `"DisableWayPrediction"`,
		`"SerializeTagData"`, `"DisableSingleton"`, `"FCWays"`,
		// SampleSpec's nested names.
		`"WarmupFrac"`, `"IntervalEvents"`, `"GapEvents"`, `"MinIntervals"`, `"MaxIntervals"`,
		`"Confidence"`, `"TargetRelCI"`,
	} {
		if !strings.Contains(string(blob), name) {
			t.Errorf("marshaled Run lost the stable field %s: %s", name, blob)
		}
	}
}

// TestRunJSONRejectsUnknown: strict decoding — unknown JSON fields and
// unknown designs fail with errors that name the offender and the valid
// choices. Workload names are NOT checked at decode time (they live in a
// per-process registry, and responses echo server-side names); the
// request boundary checks them via ValidateNames.
func TestRunJSONRejectsUnknown(t *testing.T) {
	cases := []struct {
		name, payload, wantSub string
	}{
		{"misspelled field", `{"Workload":"web-search","Capasity":1024}`, "Capasity"},
		{"unknown design", `{"Workload":"web-search","Design":"l4-cache"}`, `unknown design "l4-cache"`},
		{"design typo lists designs", `{"Design":"unisom"}`, string(uc.DesignUnison)},
		{"wrong type", `{"Capacity":"big"}`, "Capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r uc.Run
			err := json.Unmarshal([]byte(tc.payload), &r)
			if err == nil {
				t.Fatalf("decoded %s without error", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// Empty symbolic fields stay legal: sweeps and replays fill them in.
	var r uc.Run
	if err := json.Unmarshal([]byte(`{"Capacity":1024}`), &r); err != nil {
		t.Errorf("empty workload+design rejected: %v", err)
	}
	// A Run naming a workload this process never registered still
	// decodes — a service Result echoing a server-side workload must be
	// readable everywhere.
	if err := json.Unmarshal([]byte(`{"Workload":"only-on-the-server"}`), &r); err != nil {
		t.Errorf("foreign workload name rejected at decode time: %v", err)
	}
}

// TestRunValidateNames: the request-boundary check consults the live
// registry — built-ins and registered workloads pass, typos fail with
// the valid choices listed.
func TestRunValidateNames(t *testing.T) {
	if err := (uc.Run{Workload: "web-search", Design: uc.DesignUnison}).ValidateNames(); err != nil {
		t.Errorf("built-in rejected: %v", err)
	}
	if err := (uc.Run{}).ValidateNames(); err != nil {
		t.Errorf("zero names rejected: %v", err)
	}
	err := (uc.Run{Workload: "web-searhc"}).ValidateNames()
	if err == nil || !strings.Contains(err.Error(), `unknown workload "web-searhc"`) ||
		!strings.Contains(err.Error(), "web-search") {
		t.Errorf("typo error = %v, want the name and the valid list", err)
	}
	if err := (uc.Run{Design: "unicorn"}).ValidateNames(); err == nil {
		t.Error("unknown design accepted")
	}

	prof, _ := uc.WorkloadProfile("web-search")
	if err := uc.RegisterWorkload("json-test-workload", prof); err != nil {
		t.Fatal(err)
	}
	if err := (uc.Run{Workload: "json-test-workload"}).ValidateNames(); err != nil {
		t.Errorf("registered workload rejected: %v", err)
	}
}

// TestPlanJSON: the wire part of a Plan (Points, Jobs) marshals; the
// process-local policy (Progress writer, Executor hook) is excluded
// rather than breaking encoding.
func TestPlanJSON(t *testing.T) {
	p := uc.Plan{
		Points:   []uc.Run{{Workload: "web-search", Design: uc.DesignUnison}},
		Jobs:     3,
		Progress: &strings.Builder{},
		Executor: func(uc.Run) (uc.Result, error) { return uc.Result{}, nil },
	}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Plan with Progress+Executor does not marshal: %v", err)
	}
	var got uc.Plan
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Jobs != 3 || len(got.Points) != 1 || got.Points[0] != p.Points[0] {
		t.Errorf("Plan round trip = %+v", got)
	}
	if strings.Contains(string(blob), "Progress") || strings.Contains(string(blob), "Executor") {
		t.Errorf("process-local fields leaked into the wire form: %s", blob)
	}
}

// TestResultJSONRoundTrip: a real Result (sampled, so every optional
// block is populated) re-marshals byte-identically after a round trip —
// the property that makes service results CSV-equivalent to local ones.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := uc.Execute(uc.Run{
		Workload: "web-search", Design: uc.DesignUnison, Capacity: 256 << 20,
		Cores: 2, AccessesPerCore: 4_000,
		Sampling: uc.SampleSpec{IntervalEvents: 250, GapEvents: 250, MinIntervals: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back uc.Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Errorf("Result JSON not bit-stable across a round trip:\n was %s\n now %s", blob, blob2)
	}
}
