package unisoncache

import (
	"fmt"
	"math"

	"unisoncache/internal/checkpoint"
	"unisoncache/internal/sample"
	"unisoncache/internal/sim"
	"unisoncache/internal/stats"
)

// SampleSpec configures SMARTS-style sampled simulation — the public
// mirror of internal/sample.Spec, set on Run.Sampling. The zero value
// disables sampling; a non-zero spec schedules the run as functional
// warmup followed by short detailed measurement windows separated by
// functional gaps, estimates UIPC from the per-window samples with a
// confidence interval (Result.CI), and terminates early once the
// requested relative CI half-width is reached.
//
// Zero fields select defaults (warmup 2/3 — the same boundary the full
// pipeline uses, so windows subsample the region a full run measures —
// interval 1000, gap 3x interval, min 4 windows, unlimited max, 95%
// confidence, ±3% target); negative
// values mean "explicitly none" where that is meaningful (WarmupFrac,
// GapEvents, TargetRelCI), mirroring Run.ScaleDivisor's -1 idiom. Use
// DefaultSampleSpec() to turn sampling on with all defaults.
//
// SampleSpec is part of the service wire format; the JSON field names
// below are stable.
type SampleSpec struct {
	// WarmupFrac is the fraction of AccessesPerCore spent on functional
	// warmup before the first measurement window (negative: none).
	WarmupFrac float64 `json:"WarmupFrac"`
	// WarmupEvents, when positive, overrides WarmupFrac with an absolute
	// per-core event count, pinning the window schedule to fixed event
	// offsets independent of AccessesPerCore — useful when comparing
	// sampled runs across different budgets, where a fractional warmup
	// would shift every window.
	WarmupEvents int `json:"WarmupEvents"`
	// IntervalEvents is the detailed window length in events per core.
	IntervalEvents int `json:"IntervalEvents"`
	// GapEvents is the functional gap between windows (negative: none —
	// windows tile back to back).
	GapEvents int `json:"GapEvents"`
	// MinIntervals is the smallest window count before early stop may
	// trigger; MaxIntervals caps the count (0: as many as fit).
	MinIntervals int `json:"MinIntervals"`
	MaxIntervals int `json:"MaxIntervals"`
	// Confidence is the two-sided confidence level (e.g. 0.95).
	Confidence float64 `json:"Confidence"`
	// TargetRelCI is the early-stop target on the relative CI half-width
	// (e.g. 0.02 for ±2%; negative: never stop early).
	TargetRelCI float64 `json:"TargetRelCI"`
}

// DefaultSampleSpec returns the all-defaults sampling configuration —
// assign it to Run.Sampling to turn sampling on.
func DefaultSampleSpec() SampleSpec {
	return fromInternalSpec(sample.Default())
}

// ParseSampleSpec reads the flag form of a spec, e.g.
// "warmup=0.5,interval=1000,gap=1000,min=6,max=0,conf=0.95,ci=0.02" ("on"
// selects the defaults). See internal/sample.Parse for the grammar.
func ParseSampleSpec(text string) (SampleSpec, error) {
	s, err := sample.Parse(text)
	if err != nil {
		return SampleSpec{}, fmt.Errorf("unisoncache: %w", err)
	}
	// A spec parsed from a flag is meant to sample: canonicalize through
	// the defaults so even "on" (the zero spec) comes back enabled.
	return fromInternalSpec(s.WithDefaults()), nil
}

// Enabled reports whether the spec turns sampling on.
func (s SampleSpec) Enabled() bool { return s != SampleSpec{} }

// internal converts the public spec into the driver's form.
func (s SampleSpec) internal() sample.Spec {
	return sample.Spec{
		WarmupFrac:     s.WarmupFrac,
		WarmupEvents:   s.WarmupEvents,
		IntervalEvents: s.IntervalEvents,
		GapEvents:      s.GapEvents,
		MinIntervals:   s.MinIntervals,
		MaxIntervals:   s.MaxIntervals,
		Confidence:     s.Confidence,
		TargetRelCI:    s.TargetRelCI,
	}
}

func fromInternalSpec(s sample.Spec) SampleSpec {
	return SampleSpec{
		WarmupFrac:     s.WarmupFrac,
		WarmupEvents:   s.WarmupEvents,
		IntervalEvents: s.IntervalEvents,
		GapEvents:      s.GapEvents,
		MinIntervals:   s.MinIntervals,
		MaxIntervals:   s.MaxIntervals,
		Confidence:     s.Confidence,
		TargetRelCI:    s.TargetRelCI,
	}
}

// withDefaults canonicalizes an enabled spec (idempotent).
func (s SampleSpec) withDefaults() SampleSpec {
	return fromInternalSpec(s.internal().WithDefaults())
}

// SampleStats is a sampled run's statistical outcome, carried on
// Result.CI. The run's Result.UIPC is the sampled estimate (the ratio
// estimator over the measurement windows); every other Result field
// covers the whole measured region — first window start to last window
// end, functional gaps included — so ratio statistics use all
// post-warmup events.
type SampleStats struct {
	// Confidence is the two-sided level HalfWidth is stated at.
	Confidence float64
	// UIPC is the sampled estimate (equal to Result.UIPC) and HalfWidth
	// its confidence-interval half-width.
	UIPC      float64
	HalfWidth float64
	// Converged reports whether the early-stop target was reached.
	Converged bool
	// Windows holds one entry per measurement window, in schedule order;
	// the (Instructions, Cycles) pairs are the estimator's samples, and
	// the matched-pair speedup CI pairs them across runs.
	Windows []WindowStat
	// DetailedEvents counts events simulated inside measurement windows,
	// across all cores. SimulatedEvents adds the functional warmup and
	// gaps; FullRunEvents is what the run would have simulated with
	// sampling off (AccessesPerCore x Cores). FullRunEvents over
	// DetailedEvents is the sampling reduction; FullRunEvents over
	// SimulatedEvents is the early-termination wall-clock factor.
	DetailedEvents  uint64
	SimulatedEvents uint64
	FullRunEvents   uint64
}

// WindowStat is one measurement window's metrics: summed per-core IPC,
// total retired instructions, the maximum per-core cycle delta, and the
// per-core deltas the estimator and the matched-pair speedup CI are
// built from.
type WindowStat struct {
	UIPC         float64
	Instructions uint64
	Cycles       uint64
	PerCore      []CoreWindowStat
}

// CoreWindowStat is one core's share of a measurement window.
type CoreWindowStat struct {
	Instructions uint64
	Cycles       uint64
}

// RelHalfWidth is HalfWidth relative to the estimate (the ±x% form).
func (s SampleStats) RelHalfWidth() float64 {
	if s.HalfWidth == 0 {
		return 0
	}
	if s.UIPC == 0 {
		return math.Inf(1)
	}
	return s.HalfWidth / math.Abs(s.UIPC)
}

// Low and High are the interval bounds.
func (s SampleStats) Low() float64  { return s.UIPC - s.HalfWidth }
func (s SampleStats) High() float64 { return s.UIPC + s.HalfWidth }

// Intervals is the measured window count.
func (s SampleStats) Intervals() int { return len(s.Windows) }

// summedRatios rebuilds the windowed estimator from the stored per-core
// samples (for matched-pair speedup CIs).
func (s SampleStats) summedRatios() *stats.SummedRatios {
	if len(s.Windows) == 0 || len(s.Windows[0].PerCore) == 0 {
		return stats.NewSummedRatios(0)
	}
	u := stats.NewSummedRatios(len(s.Windows[0].PerCore))
	row := make([]stats.RatioSample, len(s.Windows[0].PerCore))
	for _, w := range s.Windows {
		for c, d := range w.PerCore {
			row[c] = stats.RatioSample{Y: float64(d.Instructions), X: float64(d.Cycles)}
		}
		u.AddWindow(row)
	}
	return u
}

// executeSampled runs the sampled schedule on a prepared machine and
// assembles the Result (the sampled counterpart of machine.Run in
// Execute).
func executeSampled(m *sim.Machine, r Run) (Result, error) {
	rep, err := sample.Run(m, r.AccessesPerCore, r.Sampling.internal())
	if err != nil {
		return Result{}, err
	}
	return assembleSampled(rep, r), nil
}

// executeSampledWarm tries to serve a sampled run's functional warmup from
// the snapshot store: when a warmup-boundary checkpoint of the underlying
// configuration exists (written by that configuration's segmented or
// serial-with-save execution) and the spec's warmup boundary is exactly
// the full-run one, the warmup replay is skipped entirely by restoring the
// checkpoint. The report is bit-identical to the cold path's — the
// restored state IS the state the cold warmup produces — so any miss or
// restore failure silently falls back (ok == false) to cold execution.
func executeSampledWarm(r Run) (Result, bool) {
	spec := r.Sampling.internal().WithDefaults()
	if spec.Validate() != nil {
		return Result{}, false // the cold path reports the error
	}
	prefix, err := checkpointPrefix(r)
	if err != nil {
		return Result{}, false
	}
	m, rr, err := newMachine(r)
	if err != nil {
		return Result{}, false
	}
	m.BeginRun(rr.AccessesPerCore)
	warmSteps := m.WarmSteps()
	_, warm := spec.Windows(rr.AccessesPerCore)
	if warmSteps == 0 || warmSteps != uint64(warm)*uint64(rr.Cores) {
		return Result{}, false
	}
	blob, ok := ckStore.Get(prefix, warmSteps)
	if !ok {
		return Result{}, false
	}
	payload, err := openSnapshot(blob, prefix, warmSteps)
	if err != nil {
		return Result{}, false
	}
	rd := checkpoint.NewReader(payload)
	if m.LoadState(rd) != nil || rd.Finish() != nil {
		// The machine may hold a partial restore; the cold path builds its
		// own fresh one.
		return Result{}, false
	}
	rep, err := sample.RunWarmed(m, rr.AccessesPerCore, r.Sampling.internal())
	if err != nil {
		return Result{}, false
	}
	return assembleSampled(rep, rr), true
}

// assembleSampled converts a sampled report into the public Result shape.
func assembleSampled(rep sample.Report, r Run) Result {
	res := Result{Results: rep.Results, Run: r}
	res.UIPC = rep.UIPC
	windows := make([]WindowStat, len(rep.Windows))
	for i, w := range rep.Windows {
		perCore := make([]CoreWindowStat, len(w.PerCore))
		for c, d := range w.PerCore {
			perCore[c] = CoreWindowStat{Instructions: d.Instructions, Cycles: d.Cycles}
		}
		windows[i] = WindowStat{UIPC: w.UIPC, Instructions: w.Instructions, Cycles: w.Cycles, PerCore: perCore}
	}
	cores := uint64(r.Cores)
	res.CI = &SampleStats{
		Confidence:      r.Sampling.withDefaults().Confidence,
		UIPC:            rep.UIPC,
		HalfWidth:       rep.HalfWidth,
		Converged:       rep.Converged,
		Windows:         windows,
		DetailedEvents:  uint64(rep.DetailedPerCore) * cores,
		SimulatedEvents: uint64(rep.ConsumedPerCore) * cores,
		FullRunEvents:   uint64(r.AccessesPerCore) * cores,
	}
	return res
}
