package unisoncache

import (
	"reflect"
	"testing"

	"unisoncache/internal/trace"
)

// TestProfileMirrorsTraceProfile guards the hand-maintained conversion pair
// (Profile.internal / publicProfile): the public Profile must mirror every
// trace.Profile field except Name, with identical names and types, so a new
// generator parameter cannot silently vanish from the public API.
func TestProfileMirrorsTraceProfile(t *testing.T) {
	pub := reflect.TypeOf(Profile{})
	pubFields := map[string]reflect.Type{}
	for i := 0; i < pub.NumField(); i++ {
		f := pub.Field(i)
		pubFields[f.Name] = f.Type
	}
	intl := reflect.TypeOf(trace.Profile{})
	mirrored := 0
	for i := 0; i < intl.NumField(); i++ {
		f := intl.Field(i)
		if f.Name == "Name" {
			continue
		}
		ty, ok := pubFields[f.Name]
		if !ok {
			t.Errorf("trace.Profile field %s missing from public Profile", f.Name)
			continue
		}
		if ty != f.Type {
			t.Errorf("field %s: public type %v, internal type %v", f.Name, ty, f.Type)
		}
		mirrored++
	}
	if mirrored != len(pubFields) {
		t.Errorf("public Profile has %d fields, trace.Profile accounts for %d", len(pubFields), mirrored)
	}
}

// TestProfileConversionRoundTrips sets every public field to a distinct
// non-zero value and pushes it through both converters: a field either
// converter forgets comes back zeroed and fails the comparison.
func TestProfileConversionRoundTrips(t *testing.T) {
	var p Profile
	v := reflect.ValueOf(&p).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Int:
			f.SetInt(int64(i + 1))
		case reflect.Float64:
			f.SetFloat(float64(i+1) / 100)
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("field %s: unhandled kind %v — extend this test", v.Type().Field(i).Name, f.Kind())
		}
	}
	internal := p.internal("round-trip")
	if internal.Name != "round-trip" {
		t.Errorf("internal name = %q", internal.Name)
	}
	if got := publicProfile(internal); got != p {
		t.Errorf("conversion round trip lost data:\n in  %+v\n out %+v", p, got)
	}
}
