module unisoncache

go 1.24
