// Command tracegen inspects the synthetic workload generator and captures
// its streams for replay. In its default mode it replays a stream and
// reports the statistical properties the DRAM cache designs key on —
// footprint density distribution, spatial locality, write fraction,
// instruction gaps — to sanity-check the CloudSuite/TPC-H substitutions
// (DESIGN.md §1) or preview a custom profile before a full simulation. With
// -record it freezes the exact per-core streams a simulation would replay
// into a .utrace file (DESIGN.md §7), which `unisonsim -trace` and
// Run.TracePath replay bit-identically.
//
// Usage:
//
//	tracegen -workload web-search -events 2000000
//	tracegen -record ws.utrace -workload web-search -size 1GB -events 400000
package main

import (
	"flag"
	"fmt"
	"io"
	"math/bits"
	"os"
	"strings"

	uc "unisoncache"
	"unisoncache/internal/config"
	"unisoncache/internal/stats"
	"unisoncache/internal/trace"
)

func main() {
	workload := flag.String("workload", "web-search", "one of: "+strings.Join(uc.Workloads(), ", "))
	events := flag.Int("events", 1_000_000, "events to generate (per core in record mode)")
	seed := flag.Uint64("seed", 1, "stream seed")
	record := flag.String("record", "", "write a .utrace capture to this path instead of analyzing")
	cores := flag.Int("cores", 16, "cores to capture in record mode")
	size := flag.String("size", "1GB", "record mode: labeled cache capacity the capture targets (sets the automatic scale divisor)")
	scale := flag.Int("scale", 0, "record mode: working-set scale divisor (0 = automatic from -size)")
	flag.Parse()

	if *record != "" {
		if *events <= 0 || *cores <= 0 {
			fatal(fmt.Errorf("record mode needs positive -events and -cores (got %d, %d)", *events, *cores))
		}
		capacity, err := config.ParseSize(*size)
		if err != nil {
			fatal(err)
		}
		run := uc.Run{
			Workload:        *workload,
			Seed:            *seed,
			Cores:           *cores,
			AccessesPerCore: *events,
			Capacity:        capacity,
			ScaleDivisor:    *scale,
		}
		if err := recordTrace(run, *record); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d events x %d cores of %s to %s\n", *events, *cores, *workload, *record)
		return
	}

	prof, ok := trace.Profiles()[*workload]
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	stream, err := trace.NewStream(prof, *seed, 0)
	if err != nil {
		fatal(err)
	}
	analyze(os.Stdout, prof, stream, *events)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

// recordTrace captures run's streams to path through the public facade, so
// the file replays bit-identically against the equivalent Execute.
func recordTrace(run uc.Run, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := uc.RecordTrace(run, f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// analyze replays events accesses from src and prints the generator's
// statistical fingerprint.
func analyze(w io.Writer, prof *trace.Profile, src trace.Source, events int) {
	density := stats.NewHistogram(trace.RegionBlocks)
	var gaps stats.Mean
	var writes stats.Ratio
	distinct := map[uint64]struct{}{}

	// One visit's touched blocks live in a reused 32-bit bitset (the
	// region is 32 blocks) instead of a fresh map per visit — this loop
	// runs once per event.
	var curRegion uint64 = ^uint64(0)
	var visitBlocks uint32
	inVisit := false
	visits := 0
	flush := func() {
		if inVisit {
			density.Add(bits.OnesCount32(visitBlocks))
			visits++
		}
	}
	for i := 0; i < events; i++ {
		ev := src.Next()
		block := ev.Addr.Block()
		region := block / trace.RegionBlocks
		if region != curRegion {
			flush()
			curRegion = region
			visitBlocks = 0
			inVisit = true
		}
		visitBlocks |= 1 << (block % trace.RegionBlocks)
		distinct[region] = struct{}{}
		gaps.Add(float64(ev.Gap))
		writes.Add(ev.Write)
	}
	flush()

	fmt.Fprintf(w, "workload            %s\n", prof.Name)
	fmt.Fprintf(w, "working set         %d MB (%d regions of 2KB)\n", prof.WorkingSetBytes>>20, prof.Regions())
	fmt.Fprintf(w, "events              %d across %d region visits\n", events, visits)
	fmt.Fprintf(w, "distinct regions    %d (footprint %d MB)\n", len(distinct), uint64(len(distinct))*trace.RegionBytes>>20)
	fmt.Fprintf(w, "write fraction      %.1f%% (profile %.1f%%)\n", writes.Percent(), prof.WriteFrac*100)
	fmt.Fprintf(w, "instruction gap     %.1f mean (profile %.1f)\n", gaps.Value(), prof.GapMean)
	fmt.Fprintf(w, "blocks per visit    %.1f mean, P50=%d, P90=%d\n",
		density.Mean(), density.Percentile(0.5), density.Percentile(0.9))
	fmt.Fprintf(w, "singleton visits    %.1f%%\n", 100*density.Fraction(1))
	fmt.Fprintln(w, "\nvisit footprint density (blocks of 32):")
	for v := 1; v <= trace.RegionBlocks; v++ {
		f := density.Fraction(v)
		if f < 0.002 {
			continue
		}
		bar := strings.Repeat("#", int(f*200))
		fmt.Fprintf(w, "%3d %6.1f%% %s\n", v, f*100, bar)
	}
}
