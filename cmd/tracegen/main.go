// Command tracegen inspects the synthetic workload generator: it replays a
// stream and reports the statistical properties the DRAM cache designs key
// on — footprint density distribution, spatial locality, write fraction,
// instruction gaps, region reuse distance. Use it to sanity-check the
// CloudSuite/TPC-H substitutions (DESIGN.md §1) or to preview a custom
// profile before a full simulation.
//
// Usage:
//
//	tracegen -workload web-search -events 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unisoncache/internal/stats"
	"unisoncache/internal/trace"
)

func main() {
	workload := flag.String("workload", "web-search", "one of: "+strings.Join(trace.Names(), ", "))
	events := flag.Int("events", 1_000_000, "events to generate")
	seed := flag.Uint64("seed", 1, "stream seed")
	flag.Parse()

	prof, ok := trace.Profiles()[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workload)
		os.Exit(1)
	}
	stream, err := trace.NewStream(prof, *seed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	density := stats.NewHistogram(trace.RegionBlocks)
	var gaps stats.Mean
	var writes stats.Ratio
	distinct := map[uint64]struct{}{}

	var curRegion uint64 = ^uint64(0)
	var visitBlocks map[uint64]struct{}
	visits := 0
	flush := func() {
		if visitBlocks != nil {
			density.Add(len(visitBlocks))
			visits++
		}
	}
	for i := 0; i < *events; i++ {
		ev := stream.Next()
		region := uint64(ev.Addr) / trace.RegionBytes
		if region != curRegion {
			flush()
			curRegion = region
			visitBlocks = map[uint64]struct{}{}
		}
		visitBlocks[ev.Addr.Block()] = struct{}{}
		distinct[region] = struct{}{}
		gaps.Add(float64(ev.Gap))
		writes.Add(ev.Write)
	}
	flush()

	fmt.Printf("workload            %s\n", prof.Name)
	fmt.Printf("working set         %d MB (%d regions of 2KB)\n", prof.WorkingSetBytes>>20, prof.Regions())
	fmt.Printf("events              %d across %d region visits\n", *events, visits)
	fmt.Printf("distinct regions    %d (footprint %d MB)\n", len(distinct), uint64(len(distinct))*trace.RegionBytes>>20)
	fmt.Printf("write fraction      %.1f%% (profile %.1f%%)\n", writes.Percent(), prof.WriteFrac*100)
	fmt.Printf("instruction gap     %.1f mean (profile %.1f)\n", gaps.Value(), prof.GapMean)
	fmt.Printf("blocks per visit    %.1f mean, P50=%d, P90=%d\n",
		density.Mean(), density.Percentile(0.5), density.Percentile(0.9))
	fmt.Printf("singleton visits    %.1f%%\n", 100*density.Fraction(1))
	fmt.Println("\nvisit footprint density (blocks of 32):")
	for v := 1; v <= trace.RegionBlocks; v++ {
		f := density.Fraction(v)
		if f < 0.002 {
			continue
		}
		bar := strings.Repeat("#", int(f*200))
		fmt.Printf("%3d %6.1f%% %s\n", v, f*100, bar)
	}
}
