package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	uc "unisoncache"
	"unisoncache/internal/trace"
)

func TestAnalyzeSmoke(t *testing.T) {
	prof := trace.Profiles()["web-serving"]
	stream, err := trace.NewStream(prof, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	analyze(&out, prof, stream, 50_000)
	report := out.String()
	for _, want := range []string{
		"workload            web-serving",
		"events              50000 across",
		"blocks per visit",
		"visit footprint density",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestAnalyzeMatchesVisitStructure pins the bitset accounting: singleton
// fractions and per-visit block counts stay within the region's 32 blocks.
func TestAnalyzeMatchesVisitStructure(t *testing.T) {
	prof := trace.Profiles()["data-analytics"]
	stream, err := trace.NewStream(prof, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	analyze(&out, prof, stream, 20_000)
	if !strings.Contains(out.String(), "singleton visits") {
		t.Fatalf("no singleton line:\n%s", out.String())
	}
}

func TestRecordWritesReplayableCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.utrace")
	run := uc.Run{Workload: "web-search", Seed: 5, Cores: 2, AccessesPerCore: 1000, Capacity: 64 << 20}
	if err := recordTrace(run, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, sources, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 64MB defaults to the automatic divisor floor of 16.
	want := trace.FileHeader{Profile: "web-search", Seed: 5, ScaleDivisor: 16, Cores: 2, EventsPerCore: 1000}
	if hdr != want {
		t.Errorf("header = %+v, want %+v", hdr, want)
	}
	if len(sources) != 2 || sources[0].Remaining() != 1000 {
		t.Errorf("sources = %d x %d events", len(sources), sources[0].Remaining())
	}
}

func TestRecordRejectsUnknownWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.utrace")
	if err := recordTrace(uc.Run{Workload: "nope", AccessesPerCore: 10, Capacity: 64 << 20}, path); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed capture left a file behind")
	}
}
