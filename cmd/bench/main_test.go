package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	first := Record{Label: "a", GoVersion: "go0", Benchmarks: map[string]Measurement{
		"x": {NsPerOp: 123, AllocsPerOp: 4, Metrics: map[string]float64{"speedup": 2.5}},
	}}
	if err := appendRecord(path, first); err != nil {
		t.Fatal(err)
	}
	second := Record{Label: "b", GoVersion: "go0", Benchmarks: map[string]Measurement{
		"x": {NsPerOp: 99},
	}}
	if err := appendRecord(path, second); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != 1 || len(f.Records) != 2 {
		t.Fatalf("file = %+v, want schema 1 with 2 records", f)
	}
	if f.Records[0].Label != "a" || f.Records[1].Label != "b" {
		t.Errorf("labels = %q, %q", f.Records[0].Label, f.Records[1].Label)
	}
	if got := f.Records[0].Benchmarks["x"].Metrics["speedup"]; got != 2.5 {
		t.Errorf("metric round-trip = %v, want 2.5", got)
	}
}

func TestAppendRecordRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendRecord(path, Record{Label: "x"}); err == nil {
		t.Fatal("appendRecord accepted a corrupt trajectory file")
	}
}

// TestSteadyMachineReplays exercises the bench's hand-wired machine: it
// must replay without panicking and allocate nothing once warm (the
// contract the -max-steady-allocs gate enforces).
func TestSteadyMachineReplays(t *testing.T) {
	m := steadyMachine(2, 2.0/3.0)
	m.Replay(4_000)
	if allocs := testing.AllocsPerRun(5, func() { m.Replay(1_000) }); allocs != 0 {
		t.Errorf("steady machine allocates %v per replay, want 0", allocs)
	}
}
