// Command bench runs the repository's end-to-end performance benchmarks
// and records the numbers in a JSON trajectory file (BENCH_core.json at the
// repo root), so every PR measures itself against the ones before it.
//
// Three kinds of benchmarks run:
//
//   - Fig7Performance/<design>: one complete Figure 7 simulation per
//     iteration (the same cell bench_test.go measures), reporting ns/op,
//     allocs/op, simulated events per second and the headline metrics
//     (speedup over the no-cache baseline, UIPC).
//   - ServeCachedRun: one POST /v1/runs round trip against an in-process
//     simulation daemon, answered from the content-addressed result
//     cache — the service-overhead / repeat-traffic-throughput datapoint.
//   - SteadyReplay/unison: the measured-interval hot loop in isolation — a
//     prewarmed machine replaying events with no setup in the timed
//     region, batching forced off so the cell stays comparable with
//     pre-batching records. Its allocs/op is the zero-allocation contract:
//     the run fails (exit 1) if it exceeds -max-steady-allocs, which
//     defaults to 0.
//   - ReplayBatched/unison: the same cell on the batched drain path
//     (the default machine mode), with batched_vs_serial recording the
//     back-to-back speedup over SteadyReplay. The run fails (exit 1) if
//     the ratio falls below -min-batched-ratio.
//   - ReplayTelemetry/unison: the batched hot loop with epoch-sliced
//     telemetry armed (the Run/BeginRun cursor, since Replay never
//     records). telemetry_vs_batched is the back-to-back throughput
//     ratio; the run fails (exit 1) if recording costs more than
//     -max-telemetry-overhead of the batched cell's events/s.
//
// Usage:
//
//	go run ./cmd/bench                      # full run, appends to BENCH_core.json
//	go run ./cmd/bench -quick               # CI-sized run (~seconds)
//	go run ./cmd/bench -label my-change     # tag the record
//	go run ./cmd/bench -out /tmp/b.json     # write elsewhere
//
// Records append: the committed file keeps one record per milestone, so
// the improvement (or regression) of each change stays visible. Compare
// the newest record's ns_per_op against any older one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/core"
	"unisoncache/internal/dram"
	"unisoncache/internal/serve"
	"unisoncache/internal/sim"
	"unisoncache/internal/telemetry"
	"unisoncache/internal/trace"
)

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	NsPerOp      float64            `json:"ns_per_op"`
	AllocsPerOp  int64              `json:"allocs_per_op"`
	BytesPerOp   int64              `json:"bytes_per_op"`
	EventsPerSec float64            `json:"events_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// Record is one bench invocation: a labeled set of measurements. The
// host-parallelism fields qualify every number in the record: ns_per_op on
// a one-CPU container and on a 32-way box are different experiments.
type Record struct {
	Label          string                 `json:"label"`
	GoVersion      string                 `json:"go_version"`
	Gomaxprocs     int                    `json:"gomaxprocs"`
	CoresAvailable int                    `json:"cores_available"`
	Quick          bool                   `json:"quick,omitempty"`
	Benchmarks     map[string]Measurement `json:"benchmarks"`
}

// File is the BENCH_core.json layout.
type File struct {
	Schema  int      `json:"schema"`
	Records []Record `json:"records"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "trajectory file to append to")
	label := flag.String("label", "HEAD", "label for this record")
	quick := flag.Bool("quick", false, "CI-sized run: shorter traces, one pass")
	maxSteadyAllocs := flag.Int64("max-steady-allocs", 0, "fail if SteadyReplay allocs/op exceed this (negative disables)")
	minBatchedRatio := flag.Float64("min-batched-ratio", 0.8, "fail if ReplayBatched events/s fall below this fraction of SteadyReplay's (negative disables)")
	maxTeleOverhead := flag.Float64("max-telemetry-overhead", 0.02, "fail if ReplayTelemetry events/s fall more than this fraction below ReplayBatched's (negative disables)")
	flag.Parse()

	accesses := 60_000
	if *quick {
		accesses = 20_000
	}

	rec := Record{
		Label:          *label,
		GoVersion:      runtime.Version(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		CoresAvailable: runtime.NumCPU(),
		Quick:          *quick,
		Benchmarks:     map[string]Measurement{},
	}

	// The three steady cells: the prewarmed hot loop alone. One op = batch
	// events on every core; setup happens before the timer starts. The
	// steady cells run first, ahead of the minutes-long Fig7 cells, so the
	// hot-loop numbers come from a freshly started, minimally perturbed
	// process.
	//
	// Their exit guards police few-percent ratios, which single 1-second
	// samples cannot resolve on a shared host — run-to-run swings of ±15%
	// are routine on a noisy-neighbor container. So the cells are measured
	// as many short timing samples taken round-robin across the three
	// loops. The headline ns/op is each loop's minimum sample (the
	// quiet-host cost — every sample a neighbor or GC perturbed is
	// discarded). The guarded ratios are estimated directly from paired
	// samples: each round's loops run ~10ms apart, so slow host drift
	// hits both sides of a pair equally and cancels in the quotient; the
	// median over all rounds then shrugs off the asymmetric spikes. The
	// minimum-of-mins quotient cannot do this — its two minima come from
	// different rounds, so ±3% estimator noise lands straight in a 2%
	// guard band.
	//
	// The three machines also advance in lockstep: identical prewarm and
	// identical op counts at every stage, never an adaptive benchmark
	// loop. Per-event cost varies with trace phase (miss rates drift as
	// the stream moves through its working set), so two machines at
	// different stream positions measure different workloads — lockstep
	// keeps every sampled pair on the same trace segment, leaving the
	// drain mode as the only difference between cells.
	const steadyBatch = 5_000
	steadyCores := 16

	// SteadyReplay: batching forced off so the cell keeps its meaning
	// across records — every pre-batching record measured the
	// one-Access-per-request schedule.
	m := steadyMachine(steadyCores, 2.0/3.0)
	m.SetBatching(false)
	m.Replay(20_000)

	// ReplayBatched: the batched drain path (the default) — design
	// accesses accumulate in serial order and flush through AccessBatch.
	mb := steadyMachine(steadyCores, 2.0/3.0)
	mb.Replay(20_000)

	// ReplayTelemetry: the batched hot loop with telemetry recording every
	// 10k retired events per core. Replay() never arms telemetry, so this
	// cell drives the same loop through the BeginRun/RunTo cursor with
	// WarmupFrac 0 (measurement — and therefore recording — from step 0).
	// The run is sized so the timed region never reaches TotalSteps: every
	// timed op advances exactly steadyBatch events per core, the same work
	// as the cells above.
	const teleRunAccesses = 40_000_000
	mt := steadyMachine(steadyCores, 0)
	mt.SetTelemetry(telemetry.Spec{EpochEvents: 10_000}, nil)
	mt.BeginRun(teleRunAccesses)
	teleTarget := uint64(20_000) * uint64(steadyCores)
	mt.RunTo(teleTarget)

	steadyOps := []func(){
		func() { m.Replay(steadyBatch) },
		func() { mb.Replay(steadyBatch) },
		func() {
			teleTarget += uint64(steadyBatch) * uint64(steadyCores)
			mt.RunTo(teleTarget)
		},
	}
	// Allocation accounting over a fixed op count (the loops are
	// deterministic, so a handful of ops suffices); doubles as the final
	// warmup stage, and every cell advances the same number of events.
	const allocOps = 4
	allocs := make([]int64, len(steadyOps))
	bytes := make([]int64, len(steadyOps))
	for i, op := range steadyOps {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for n := 0; n < allocOps; n++ {
			op()
		}
		runtime.ReadMemStats(&after)
		allocs[i] = int64(after.Mallocs-before.Mallocs) / allocOps
		bytes[i] = int64(after.TotalAlloc-before.TotalAlloc) / allocOps
	}
	const robustRounds, robustOps = 120, 2
	minNs := make([]float64, len(steadyOps))
	rounds := make([][]float64, len(steadyOps))
	for i := range rounds {
		rounds[i] = make([]float64, robustRounds)
	}
	for round := 0; round < robustRounds; round++ {
		for i, op := range steadyOps {
			start := time.Now()
			for n := 0; n < robustOps; n++ {
				op()
			}
			ns := float64(time.Since(start).Nanoseconds()) / robustOps
			rounds[i][round] = ns
			if round == 0 || ns < minNs[i] {
				minNs[i] = ns
			}
		}
	}
	serialNs, batchedNs, teleNs := minNs[0], minNs[1], minNs[2]
	batchedVsSerial := medianRatio(rounds[0], rounds[1])
	teleVsBatched := medianRatio(rounds[1], rounds[2])
	if teleTarget >= mt.TotalSteps() {
		fatal(fmt.Errorf("telemetry cell exhausted its run budget (%d steps): numbers are clamped junk", teleTarget))
	}

	steady := Measurement{
		NsPerOp:      serialNs,
		AllocsPerOp:  allocs[0],
		BytesPerOp:   bytes[0],
		EventsPerSec: float64(steadyBatch*steadyCores) / serialNs * 1e9,
	}
	rec.Benchmarks["SteadyReplay/unison"] = steady
	fmt.Printf("%-28s %12.0f ns/op  %8.2fM events/s  %4d allocs/op\n",
		"SteadyReplay/unison", steady.NsPerOp, steady.EventsPerSec/1e6, steady.AllocsPerOp)

	// batched_vs_serial is the in-process speedup over the SteadyReplay
	// cell — the paired-median ratio, so the comparison survives both
	// day-to-day machine drift and within-run host noise.
	batched := Measurement{
		NsPerOp:      batchedNs,
		AllocsPerOp:  allocs[1],
		BytesPerOp:   bytes[1],
		EventsPerSec: float64(steadyBatch*steadyCores) / batchedNs * 1e9,
		Metrics: map[string]float64{
			"batched_vs_serial": batchedVsSerial,
		},
	}
	rec.Benchmarks["ReplayBatched/unison"] = batched
	fmt.Printf("%-28s %12.0f ns/op  %8.2fM events/s  %4d allocs/op  %.2fx vs serial cell\n",
		"ReplayBatched/unison", batched.NsPerOp, batched.EventsPerSec/1e6, batched.AllocsPerOp,
		batchedVsSerial)

	// telemetry_vs_batched is the whole cost of epoch slicing on the hot
	// path: the paired-median throughput ratio over ReplayBatched.
	tele := Measurement{
		NsPerOp:      teleNs,
		AllocsPerOp:  allocs[2],
		BytesPerOp:   bytes[2],
		EventsPerSec: float64(steadyBatch*steadyCores) / teleNs * 1e9,
		Metrics: map[string]float64{
			"telemetry_vs_batched": teleVsBatched,
		},
	}
	rec.Benchmarks["ReplayTelemetry/unison"] = tele
	fmt.Printf("%-28s %12.0f ns/op  %8.2fM events/s  %4d allocs/op  %.3fx vs batched cell\n",
		"ReplayTelemetry/unison", tele.NsPerOp, tele.EventsPerSec/1e6, tele.AllocsPerOp,
		teleVsBatched)

	// Fig7Performance: speedup per design over the shared no-cache
	// baseline, exactly the bench_test.go cell.
	base, err := uc.Execute(uc.Run{Workload: "data-serving", Design: uc.DesignNone,
		Capacity: 1 << 30, AccessesPerCore: accesses})
	if err != nil {
		fatal(err)
	}
	for _, d := range []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal} {
		name := "Fig7Performance/" + string(d)
		var res uc.Result
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = uc.Execute(uc.Run{Workload: "data-serving", Design: d,
					Capacity: 1 << 30, AccessesPerCore: accesses})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		events := float64(res.Run.AccessesPerCore) * float64(res.Run.Cores)
		rec.Benchmarks[name] = Measurement{
			NsPerOp:      float64(br.NsPerOp()),
			AllocsPerOp:  br.AllocsPerOp(),
			BytesPerOp:   br.AllocedBytesPerOp(),
			EventsPerSec: events / float64(br.NsPerOp()) * 1e9,
			Metrics: map[string]float64{
				"speedup": res.UIPC / base.UIPC,
				"uipc":    res.UIPC,
			},
		}
		fmt.Printf("%-28s %12.0f ns/op  %8.2fM events/s  %4d allocs/op  speedup %.3f\n",
			name, float64(br.NsPerOp()), events/float64(br.NsPerOp())*1e3, br.AllocsPerOp(), res.UIPC/base.UIPC)
	}

	// Fig7Sampled: the same unison cell under SMARTS-style sampled
	// simulation. Wall-clock parity with Fig7Performance/unison is the
	// expectation — this engine's functional phases run the full timing
	// model, so sampling buys error bars and detailed-event reduction,
	// not raw speed (DESIGN.md §9) — and the datapoint pins both the
	// bookkeeping overhead (ns_per_op vs the full cell) and the sampling
	// payoff (detailed_reduction, rel_ci).
	{
		sampledRun := uc.Run{Workload: "data-serving", Design: uc.DesignUnison,
			Capacity: 1 << 30, AccessesPerCore: accesses,
			Sampling: uc.SampleSpec{IntervalEvents: 500, GapEvents: 1500, MinIntervals: 4}}
		var res uc.Result
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = uc.Execute(sampledRun)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		ci := res.CI
		events := float64(ci.SimulatedEvents)
		rec.Benchmarks["Fig7Sampled/unison"] = Measurement{
			NsPerOp:      float64(br.NsPerOp()),
			AllocsPerOp:  br.AllocsPerOp(),
			BytesPerOp:   br.AllocedBytesPerOp(),
			EventsPerSec: events / float64(br.NsPerOp()) * 1e9,
			Metrics: map[string]float64{
				"speedup":            res.UIPC / base.UIPC,
				"uipc":               res.UIPC,
				"rel_ci":             ci.RelHalfWidth(),
				"windows":            float64(ci.Intervals()),
				"detailed_reduction": float64(ci.FullRunEvents) / float64(ci.DetailedEvents),
			},
		}
		fmt.Printf("%-28s %12.0f ns/op  %8.2fM events/s  %4d allocs/op  %.1fx fewer detailed, ±%.1f%% CI\n",
			"Fig7Sampled/unison", float64(br.NsPerOp()), events/float64(br.NsPerOp())*1e3, br.AllocsPerOp(),
			float64(ci.FullRunEvents)/float64(ci.DetailedEvents), 100*ci.RelHalfWidth())
	}

	// ReplaySegmented: the same unison cell executed time-parallel
	// (Run.Segments = 4). One untimed Execute populates the boundary
	// snapshots (the serial-with-save pass), so every timed iteration takes
	// the concurrent path: four workers replay their quarter of the run
	// from restored checkpoints and the fix-up cascade stitches them
	// together. Results are bit-identical to the serial cell; the win is
	// wall-clock, which scales with available cores — on a single-CPU host
	// the workers serialize and the datapoint degrades to roughly the
	// serial cell plus snapshot codec overhead.
	{
		segRun := uc.Run{Workload: "data-serving", Design: uc.DesignUnison,
			Capacity: 1 << 30, AccessesPerCore: accesses, Segments: 4}
		warm, err := uc.Execute(segRun)
		if err != nil {
			fatal(err)
		}
		var res uc.Result
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = uc.Execute(segRun)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		if res.UIPC != warm.UIPC || res.Instructions != warm.Instructions {
			fatal(fmt.Errorf("segmented replay diverged across iterations: UIPC %v vs %v", res.UIPC, warm.UIPC))
		}
		events := float64(res.Run.AccessesPerCore) * float64(res.Run.Cores)
		serial := rec.Benchmarks["Fig7Performance/"+string(uc.DesignUnison)]
		rec.Benchmarks["ReplaySegmented/unison"] = Measurement{
			NsPerOp:      float64(br.NsPerOp()),
			AllocsPerOp:  br.AllocsPerOp(),
			BytesPerOp:   br.AllocedBytesPerOp(),
			EventsPerSec: events / float64(br.NsPerOp()) * 1e9,
			Metrics: map[string]float64{
				"segments":          float64(segRun.Segments),
				"cores_available":   float64(runtime.NumCPU()),
				"speedup":           res.UIPC / base.UIPC,
				"speedup_vs_serial": serial.NsPerOp / float64(br.NsPerOp()),
			},
		}
		fmt.Printf("%-28s %12.0f ns/op  %8.2fM events/s  %4d allocs/op  %.2fx vs serial cell (%d cpu)\n",
			"ReplaySegmented/unison", float64(br.NsPerOp()), events/float64(br.NsPerOp())*1e3, br.AllocsPerOp(),
			serial.NsPerOp/float64(br.NsPerOp()), runtime.NumCPU())
	}

	// ServeCachedRun: the simulation service's repeat-traffic hot path —
	// one POST /v1/runs round trip against a local daemon answered
	// synchronously from the content-addressed result cache (decode,
	// canonical RunKey hash, LRU lookup, response marshal; zero
	// simulation in the timed loop). ns/op is the per-request service
	// overhead and req_per_sec the cached-throughput ceiling.
	{
		srv := serve.New(serve.Config{})
		ts := httptest.NewServer(srv.Handler())
		cl := client.New(ts.URL)
		ctx := context.Background()
		cachedRun := uc.Run{Workload: "data-serving", Design: uc.DesignUnison,
			Capacity: 1 << 30, AccessesPerCore: accesses}
		if _, err := cl.Execute(ctx, cachedRun); err != nil {
			fatal(err)
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j, err := cl.SubmitRun(ctx, cachedRun)
				if err != nil {
					b.Fatal(err)
				}
				if !j.Terminal() || j.Result == nil {
					b.Fatal("cached submission was not served synchronously")
				}
			}
		})
		hits, err := cl.Metrics(ctx)
		if err != nil {
			fatal(err)
		}
		rec.Benchmarks["ServeCachedRun"] = Measurement{
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Metrics: map[string]float64{
				"req_per_sec": 1e9 / float64(br.NsPerOp()),
				"cache_hits":  hits["unisonserved_cache_hits_total"],
			},
		}
		ts.Close()
		if err := srv.Drain(ctx); err != nil {
			fatal(err)
		}
		fmt.Printf("%-28s %12.0f ns/op  %8.0f req/s     %4d allocs/op\n",
			"ServeCachedRun", float64(br.NsPerOp()), 1e9/float64(br.NsPerOp()), br.AllocsPerOp())
	}

	// ClusterCachedRun: the same repeat-traffic datapoint through a
	// 3-member consistent-hash cluster — client-side RunKey hashing and
	// ring routing, then one POST answered synchronously from the owning
	// daemon's cache. The delta over ServeCachedRun is the whole cost of
	// clustering on the cached hot path.
	{
		const members = 3
		ctx := context.Background()
		handlers := make([]*atomic.Value, members)
		tss := make([]*httptest.Server, members)
		urls := make([]string, members)
		for i := range tss {
			h := &atomic.Value{}
			handlers[i] = h
			tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if hh, _ := h.Load().(http.Handler); hh != nil {
					hh.ServeHTTP(w, r)
					return
				}
				http.Error(w, "starting", http.StatusServiceUnavailable)
			}))
			urls[i] = tss[i].URL
		}
		servers := make([]*serve.Server, members)
		for i := range servers {
			servers[i] = serve.New(serve.Config{Self: urls[i], Peers: urls})
			handlers[i].Store(servers[i].Handler())
		}
		cl, err := client.NewCluster(urls)
		if err != nil {
			fatal(err)
		}
		cachedRun := uc.Run{Workload: "data-serving", Design: uc.DesignUnison,
			Capacity: 1 << 30, AccessesPerCore: accesses}
		if _, err := cl.Execute(ctx, cachedRun); err != nil {
			fatal(err)
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cl.Execute(ctx, cachedRun)
				if err != nil {
					b.Fatal(err)
				}
				if res.UIPC <= 0 {
					b.Fatal("cluster hit returned junk")
				}
			}
		})
		var hits float64
		for _, u := range urls {
			m, err := cl.Node(u).Metrics(ctx)
			if err != nil {
				fatal(err)
			}
			hits += m["unisonserved_cache_hits_total"]
		}
		rec.Benchmarks["ClusterCachedRun"] = Measurement{
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Metrics: map[string]float64{
				"req_per_sec": 1e9 / float64(br.NsPerOp()),
				"cache_hits":  hits,
				"members":     members,
			},
		}
		for i := range servers {
			tss[i].Close()
			if err := servers[i].Drain(ctx); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-28s %12.0f ns/op  %8.0f req/s     %4d allocs/op\n",
			"ClusterCachedRun", float64(br.NsPerOp()), 1e9/float64(br.NsPerOp()), br.AllocsPerOp())
	}

	if err := appendRecord(*out, rec); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %q in %s\n", *label, *out)

	if *maxSteadyAllocs >= 0 && steady.AllocsPerOp > *maxSteadyAllocs {
		fmt.Fprintf(os.Stderr, "bench: steady-state replay allocates %d times per op (max %d): the zero-allocation hot-path contract regressed\n",
			steady.AllocsPerOp, *maxSteadyAllocs)
		os.Exit(1)
	}
	if *maxSteadyAllocs >= 0 && batched.AllocsPerOp > *maxSteadyAllocs {
		fmt.Fprintf(os.Stderr, "bench: batched replay allocates %d times per op (max %d): the zero-allocation hot-path contract regressed\n",
			batched.AllocsPerOp, *maxSteadyAllocs)
		os.Exit(1)
	}
	if *minBatchedRatio >= 0 && batchedVsSerial < *minBatchedRatio {
		fmt.Fprintf(os.Stderr, "bench: batched replay ran at %.2fx the serial cell (min %.2fx): the batched drain path regressed\n",
			batchedVsSerial, *minBatchedRatio)
		os.Exit(1)
	}
	if *maxTeleOverhead >= 0 && teleVsBatched < 1-*maxTeleOverhead {
		fmt.Fprintf(os.Stderr, "bench: telemetry replay ran at %.3fx the batched cell (floor %.3fx): epoch recording is no longer near-free\n",
			teleVsBatched, 1-*maxTeleOverhead)
		os.Exit(1)
	}
}

// medianRatio estimates how fast loop b runs relative to loop a (>1 means
// b is faster) from paired per-round samples: each round's quotient
// cancels the host drift common to both sides, and the median over rounds
// discards the asymmetric spikes.
func medianRatio(a, b []float64) float64 {
	ratios := make([]float64, len(a))
	for i := range a {
		ratios[i] = a[i] / b[i]
	}
	sort.Float64s(ratios)
	n := len(ratios)
	if n%2 == 1 {
		return ratios[n/2]
	}
	return (ratios[n/2-1] + ratios[n/2]) / 2
}

// steadyMachine wires the Figure 7 unison cell at simulation scale, the
// way the facade does, but exposed as a raw machine so the timed region is
// nothing but the replay loop. warmupFrac only matters to cells that drive
// the BeginRun/RunTo cursor (Replay ignores the run bookkeeping entirely).
func steadyMachine(cores int, warmupFrac float64) *sim.Machine {
	const labelCap = uint64(1 << 30)
	div := uint64(uc.AutoScaleDivisor(labelCap))
	prof := *trace.Profiles()["data-serving"]
	prof.WorkingSetBytes /= div
	sources := make([]trace.Source, cores)
	for i := range sources {
		s, err := trace.NewStream(&prof, 1, i)
		if err != nil {
			fatal(err)
		}
		sources[i] = s
	}
	stacked, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		fatal(err)
	}
	offchip, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		fatal(err)
	}
	design, err := core.New(core.Config{
		CapacityBytes: labelCap / div,
		LabelBytes:    labelCap,
		PageBlocks:    15,
		Ways:          4,
	}, stacked, offchip)
	if err != nil {
		fatal(err)
	}
	cfg := sim.Default()
	cfg.Cores = cores
	cfg.WarmupFrac = warmupFrac
	cfg.L2.SizeBytes = 128 << 10
	m, err := sim.New(cfg, sources, design, stacked, offchip)
	if err != nil {
		fatal(err)
	}
	return m
}

// appendRecord loads the trajectory file (if any), appends rec and writes
// it back.
func appendRecord(path string, rec Record) error {
	f := File{Schema: 1}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Schema = 1
	f.Records = append(f.Records, rec)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
