package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"128MB", 128 << 20},
		{"1GB", 1 << 30},
		{"8g", 8 << 30},
		{"64m", 64 << 20},
		{"4KB", 4 << 10},
		{" 512mb ", 512 << 20},
		{"8192", 8192},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeRejects(t *testing.T) {
	for _, in := range []string{"", "abc", "12x34", "GB", "-1GB", "0"} {
		if _, err := parseSize(in); err == nil {
			t.Errorf("parseSize(%q) accepted", in)
		}
	}
}
