// Command unisonsim runs one DRAM cache simulation and prints a full
// report: miss ratio and taxonomy, predictor accuracies, speedup over the
// no-DRAM-cache baseline, and DRAM activity.
//
// Usage:
//
//	unisonsim -workload web-search -design unison -size 1GB
//	unisonsim -workload tpch -design footprint -size 8GB -accesses 500000
//	unisonsim -workload web-serving -design unison -ways 1 -size 128MB
//	unisonsim -trace ws.utrace -design unison -size 1GB
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	uc "unisoncache"
	"unisoncache/internal/config"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the whole run so its defers — in particular the pprof
// stop/flush — execute on error paths too; os.Exit happens only in main.
// The return is named so the -memprofile defer can fail the process.
func realMain() (code int) {
	workload := flag.String("workload", "web-search", "one of: "+strings.Join(uc.Workloads(), ", "))
	design := flag.String("design", "unison", "one of: unison, unison-1984, alloy, footprint, ideal, none")
	size := flag.String("size", "1GB", "cache capacity (e.g. 128MB, 1GB, 8GB)")
	accesses := flag.Int("accesses", 400_000, "accesses per core (warmup included)")
	seed := flag.Uint64("seed", 1, "workload seed")
	ways := flag.Int("ways", 0, "Unison associativity override (1, 4, 32)")
	scale := flag.Int("scale", 0, "capacity scale divisor (0 = automatic)")
	tracePath := flag.String("trace", "", "replay a .utrace capture (tracegen -record); workload, seed and core count come from the file")
	sampleFlag := flag.Bool("sample", false, "SMARTS-style sampled simulation: windowed measurement with a confidence interval and adaptive early stop")
	confidence := flag.Float64("confidence", 0, "confidence level for -sample intervals (default 0.95)")
	sampleSpec := flag.String("sample-spec", "", "full sampling spec, e.g. interval=1000,gap=3000,ci=0.03 (implies -sample)")
	noBaseline := flag.Bool("no-baseline", false, "skip the baseline run (no speedup)")
	jobs := flag.Int("jobs", 0, "concurrent simulations for the design+baseline pair (0 = one per CPU)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the simulation to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				code = fail(err)
				return
			}
			defer f.Close()
			runtime.GC() // surface live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				code = fail(err)
			}
		}()
	}

	capacity, err := parseSize(*size)
	if err != nil {
		return fail(err)
	}
	run := uc.Run{
		Workload:        *workload,
		Design:          uc.DesignKind(*design),
		Capacity:        capacity,
		AccessesPerCore: *accesses,
		Seed:            *seed,
		UnisonWays:      *ways,
		ScaleDivisor:    *scale,
		TracePath:       *tracePath,
	}
	if *sampleFlag || *sampleSpec != "" || *confidence != 0 {
		run.Sampling = uc.DefaultSampleSpec()
		if *sampleSpec != "" {
			spec, err := uc.ParseSampleSpec(*sampleSpec)
			if err != nil {
				return fail(err)
			}
			run.Sampling = spec
		}
		if *confidence != 0 {
			run.Sampling.Confidence = *confidence
		}
	}
	if *tracePath != "" {
		// The capture header defines the stream. Flags left at their
		// defaults defer to the header; explicitly set ones pass through
		// so the library can reject a mismatched capture (-accesses may
		// replay a prefix).
		if !flagProvided("workload") {
			run.Workload = ""
		}
		if !flagProvided("seed") {
			run.Seed = 0
		}
		if !flagProvided("accesses") {
			run.AccessesPerCore = 0
		}
	}

	var res, base uc.Result
	var speedup float64
	var speedupCI *uc.SpeedupCI
	if *noBaseline || run.Design == uc.DesignNone {
		res, err = uc.Execute(run)
	} else {
		// The design and its no-DRAM-cache baseline run concurrently
		// through the sweep engine; a sampled pair goes through the
		// CI-target plan, which densifies the windows until the speedup
		// CI meets the spec's target.
		var sp []uc.SpeedupResult
		plan := uc.Plan{Points: []uc.Run{run}, Jobs: *jobs}
		if run.Sampling.Enabled() {
			sp, err = uc.SweepSampled(plan, run.Sampling)
		} else {
			sp, err = uc.SpeedupMany(plan)
		}
		if err == nil {
			speedup, res, base = sp[0].Speedup, sp[0].Design, sp[0].Baseline
			speedupCI = sp[0].CI
		}
	}
	if err != nil {
		return fail(err)
	}

	d := res.Design
	fmt.Printf("workload        %s\n", res.Run.Workload)
	if res.Run.TracePath != "" {
		fmt.Printf("trace           %s (replay)\n", res.Run.TracePath)
	}
	fmt.Printf("design          %s\n", d.Name)
	fmt.Printf("capacity        %s (simulated at 1/%d scale)\n", *size, res.Run.ScaleDivisor)
	fmt.Printf("accesses/core   %d (x%d cores)\n", res.Run.AccessesPerCore, res.Run.Cores)
	fmt.Println()
	if ci := res.CI; ci != nil {
		fmt.Printf("UIPC            %.3f ± %.3f (%.0f%% CI over %d windows, %s)\n",
			res.UIPC, ci.HalfWidth, 100*ci.Confidence, ci.Intervals(), convergenceLabel(ci))
		fmt.Printf("sampling        %d detailed events of %d simulated (full run: %d; %.1fx fewer detailed)\n",
			ci.DetailedEvents, ci.SimulatedEvents, ci.FullRunEvents,
			float64(ci.FullRunEvents)/float64(ci.DetailedEvents))
	} else {
		fmt.Printf("UIPC            %.3f\n", res.UIPC)
	}
	if speedup > 0 {
		if speedupCI != nil {
			fmt.Printf("speedup         %.2fx ± %.3f over no-DRAM-cache baseline (%.0f%% CI, %d matched windows; baseline UIPC %.3f)\n",
				speedup, speedupCI.HalfWidth, 100*speedupCI.Confidence, speedupCI.Pairs, base.UIPC)
		} else {
			fmt.Printf("speedup         %.2fx over no-DRAM-cache baseline (UIPC %.3f)\n", speedup, base.UIPC)
		}
	}
	fmt.Printf("miss ratio      %.1f%%  (%d reads: %d trigger, %d underprediction, %d singleton-bypassed)\n",
		d.MissRatioPct(), d.Reads, d.TriggerMisses, d.UnderpredMisses, d.SingletonSkips)
	fmt.Printf("mean read lat   %.0f cycles below the L2\n", res.AvgDRAMReadLatency)
	fmt.Println()
	if d.FP != nil {
		fmt.Printf("footprint pred  %.1f%% accuracy, %.1f%% overfetch\n", d.FP.Percent(), d.FO.Percent())
	}
	if d.WP != nil {
		fmt.Printf("way predictor   %.1f%% accuracy\n", d.WP.Percent())
	}
	if d.MP != nil {
		fmt.Printf("miss predictor  %.1f%% accuracy, %.1f%% overfetch\n", d.MP.Percent(), d.MPOverfetchPct)
	}
	fmt.Println()
	fmt.Printf("off-chip        %.1f B/kilo-instruction (%d MB read, %d MB written)\n",
		res.OffchipBytesPerKI, d.OffchipReadBytes>>20, d.OffchipWriteBytes>>20)
	fmt.Printf("off-chip DRAM   %.0f%% row-buffer hits, %d activations\n",
		100*res.Offchip.RowHitRate(), res.Offchip.Activations)
	fmt.Printf("stacked DRAM    %.0f%% row-buffer hits, %d activations\n",
		100*res.Stacked.RowHitRate(), res.Stacked.Activations)
	fmt.Printf("L1 hit rate     %.1f%%   L2 hit rate %.1f%%\n", 100*res.L1HitRate, 100*res.L2.HitRate())
	return 0
}

// convergenceLabel describes how a sampled run ended.
func convergenceLabel(ci *uc.SampleStats) string {
	if ci.Converged {
		return "early-stopped at target"
	}
	return "window budget exhausted"
}

// fail reports err and returns the process exit code; callers return it so
// deferred cleanups (profile flushes) still run before main exits.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "unisonsim:", err)
	return 1
}

// flagProvided reports whether the named flag was set on the command line.
func flagProvided(name string) bool {
	found := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

// parseSize understands "128MB", "1GB", "8g", "64m", plain bytes.
func parseSize(s string) (uint64, error) { return config.ParseSize(s) }
