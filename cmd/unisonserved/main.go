// Command unisonserved is the simulation daemon: it serves the
// unisoncache simulation engine over HTTP/JSON with a job scheduler, a
// content-addressed result cache, an optional crash-safe persistent
// result store, and optional cluster routing, so repeated and
// overlapping sweeps — across clients, across restarts, and across a
// fleet of daemons — execute each distinct configuration once.
//
// Usage:
//
//	unisonserved -addr :8080
//	unisonserved -addr 127.0.0.1:8080 -workers 2 -jobs 8 -store-dir /var/lib/unison
//	unisonserved -addr 127.0.0.1:8081 -self http://127.0.0.1:8081 \
//	    -peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	    -store-dir /var/lib/unison-1 -log-format json -pprof-addr 127.0.0.1:6061
//
// Endpoints: POST /v1/runs, POST /v1/sweeps, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (NDJSON progress), DELETE /v1/jobs/{id},
// GET /v1/results/{key} (pure cache/store lookup), GET /healthz
// (readiness: 503 while draining), GET /livez (liveness), GET /metrics
// (Prometheus text: counters, gauges, latency histograms).
//
// With -store-dir the daemon persists every result it produces to an
// append-only segment log and serves its history from disk after a
// restart — even a kill -9 (recovery drops only a torn tail). With
// -self/-peers the daemons build a shared consistent-hash ring and
// route each run to the member owning its key, filling from peer
// caches before ever re-simulating.
//
// Observability: logs are structured (log/slog; -log-format text|json,
// -log-level), every request carries an X-Unison-Request-Id that
// follows it across cluster hops, requests slower than -slow-threshold
// are warned about, and -pprof-addr exposes net/http/pprof on a
// separate listener (off by default — keep it on loopback or a private
// interface).
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions get
// 503 and /healthz flips to 503 (load balancers stop routing), accepted
// jobs run to completion (bounded by -drain-timeout), then the listener
// closes. Point clients at it with the unisoncache/client package or
// cmd/experiments -server (which accepts the same comma-separated
// member list).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unisoncache/internal/obs"
	"unisoncache/internal/serve"
	"unisoncache/internal/store"
)

// options is the parsed flag set.
type options struct {
	addr          string
	jobs          int
	workers       int
	cacheBytes    int64
	self          string
	peers         string
	storeDir      string
	storeBytes    int64
	drainTimeout  time.Duration
	logFormat     string
	logLevel      string
	slowThreshold time.Duration
	pprofAddr     string
}

// parseFlags reads the daemon's configuration from args.
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("unisonserved", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.jobs, "jobs", 0, "per-sweep concurrent simulations (0 = one per CPU)")
	fs.IntVar(&o.workers, "workers", 2, "jobs executing concurrently; queued jobs wait FIFO")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", 256<<20, "in-memory result cache budget in bytes (LRU by marshaled size)")
	fs.StringVar(&o.self, "self", "", "this daemon's base URL in the -peers list (enables cluster routing)")
	fs.StringVar(&o.peers, "peers", "", "comma-separated base URLs of every cluster member, including this one")
	fs.StringVar(&o.storeDir, "store-dir", "", "directory for the persistent result store (empty = memory only)")
	fs.Int64Var(&o.storeBytes, "store-bytes", 1<<30, "persistent store budget in bytes (oldest segments evicted)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "how long SIGTERM waits for accepted jobs (0 = forever)")
	fs.StringVar(&o.logFormat, "log-format", obs.LogText, "structured log format: text or json")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	fs.DurationVar(&o.slowThreshold, "slow-threshold", time.Minute, "warn about HTTP requests slower than this (0 disables; the events stream is exempt)")
	fs.StringVar(&o.pprofAddr, "pprof-addr", "", "listen address for net/http/pprof (empty = disabled; use loopback)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if (o.self == "") != (o.peers == "") {
		return options{}, fmt.Errorf("-self and -peers must be set together")
	}
	// Validate the observability flags at parse time so a typo fails the
	// daemon before it binds anything.
	if _, err := obs.NewLogger(os.Stderr, o.logFormat, slog.LevelInfo); err != nil {
		return options{}, fmt.Errorf("-log-format: %w", err)
	}
	if _, err := obs.ParseLevel(o.logLevel); err != nil {
		return options{}, fmt.Errorf("-log-level: %w", err)
	}
	return o, nil
}

// logger builds the daemon logger from the validated flags.
func logger(o options) *slog.Logger {
	level, _ := obs.ParseLevel(o.logLevel)
	lg, _ := obs.NewLogger(os.Stderr, o.logFormat, level)
	return lg
}

// peerList splits the -peers value.
func peerList(peers string) []string {
	var out []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newServer builds the service from the options and the (possibly nil)
// persistent store.
func newServer(o options, st *store.Store, lg *slog.Logger) *serve.Server {
	return serve.New(serve.Config{
		Jobs:          o.jobs,
		Workers:       o.workers,
		CacheBytes:    o.cacheBytes,
		Store:         st,
		Self:          o.self,
		Peers:         peerList(o.peers),
		Logger:        lg,
		SlowThreshold: o.slowThreshold,
	})
}

// servePprof starts the profiling listener when -pprof-addr is set: the
// standard net/http/pprof handlers on their own mux and port, kept off
// the API listener so profiling exposure is an explicit, separately
// firewallable choice. Errors are returned; the caller treats a pprof
// bind failure as fatal (an operator who asked for profiling wants to
// know it isn't there).
func servePprof(addr string, lg *slog.Logger) (string, closer, error) {
	if addr == "" {
		return "", nil, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			lg.Error("pprof server failed", "error", err.Error())
		}
	}()
	lg.Info("pprof listening", "addr", ln.Addr().String())
	return ln.Addr().String(), srv, nil
}

// closer lets run hold the pprof server only for shutdown.
type closer interface{ Close() error }

// run listens, serves until a signal arrives on stop, then drains and
// shuts down. ready (when non-nil) receives the bound address once the
// listener is up — tests use it to connect to an ":0" listener.
func run(o options, stop <-chan os.Signal, ready func(addr string)) error {
	lg := logger(o)
	var st *store.Store
	if o.storeDir != "" {
		var err error
		st, err = store.Open(o.storeDir, store.Options{MaxBytes: o.storeBytes})
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
		defer st.Close()
		lg.Info("store recovered",
			"dir", o.storeDir, "results", st.Len(), "bytes", st.SizeBytes())
	}
	_, pp, err := servePprof(o.pprofAddr, lg)
	if err != nil {
		return err
	}
	if pp != nil {
		defer pp.Close()
	}
	s := newServer(o, st, lg)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: s.Handler()}
	lg.Info("listening",
		"addr", ln.Addr().String(), "workers", o.workers, "cache_bytes", o.cacheBytes,
		"cluster", o.self != "", "log_format", o.logFormat)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		lg.Info("signal received; draining", "signal", sig.String())
	}

	drainCtx := context.Background()
	if o.drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, o.drainTimeout)
		defer cancel()
	}
	if err := s.Drain(drainCtx); err != nil {
		lg.Warn("drain incomplete", "error", err.Error())
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	lg.Info("stopped")
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	if err := run(o, stop, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "unisonserved:", err)
		os.Exit(1)
	}
}
