// Command unisonserved is the simulation daemon: it serves the
// unisoncache simulation engine over HTTP/JSON with a job scheduler, a
// content-addressed result cache, an optional crash-safe persistent
// result store, and optional cluster routing, so repeated and
// overlapping sweeps — across clients, across restarts, and across a
// fleet of daemons — execute each distinct configuration once.
//
// Usage:
//
//	unisonserved -addr :8080
//	unisonserved -addr 127.0.0.1:8080 -workers 2 -jobs 8 -store-dir /var/lib/unison
//	unisonserved -addr 127.0.0.1:8081 -self http://127.0.0.1:8081 \
//	    -peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	    -store-dir /var/lib/unison-1
//
// Endpoints: POST /v1/runs, POST /v1/sweeps, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (NDJSON progress), DELETE /v1/jobs/{id},
// GET /v1/results/{key} (pure cache/store lookup), GET /healthz,
// GET /metrics (Prometheus text).
//
// With -store-dir the daemon persists every result it produces to an
// append-only segment log and serves its history from disk after a
// restart — even a kill -9 (recovery drops only a torn tail). With
// -self/-peers the daemons build a shared consistent-hash ring and
// route each run to the member owning its key, filling from peer
// caches before ever re-simulating.
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions get
// 503, accepted jobs run to completion (bounded by -drain-timeout), then
// the listener closes. Point clients at it with the unisoncache/client
// package or cmd/experiments -server (which accepts the same
// comma-separated member list).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unisoncache/internal/serve"
	"unisoncache/internal/store"
)

// options is the parsed flag set.
type options struct {
	addr         string
	jobs         int
	workers      int
	cacheBytes   int64
	self         string
	peers        string
	storeDir     string
	storeBytes   int64
	drainTimeout time.Duration
}

// parseFlags reads the daemon's configuration from args.
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("unisonserved", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.jobs, "jobs", 0, "per-sweep concurrent simulations (0 = one per CPU)")
	fs.IntVar(&o.workers, "workers", 2, "jobs executing concurrently; queued jobs wait FIFO")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", 256<<20, "in-memory result cache budget in bytes (LRU by marshaled size)")
	fs.StringVar(&o.self, "self", "", "this daemon's base URL in the -peers list (enables cluster routing)")
	fs.StringVar(&o.peers, "peers", "", "comma-separated base URLs of every cluster member, including this one")
	fs.StringVar(&o.storeDir, "store-dir", "", "directory for the persistent result store (empty = memory only)")
	fs.Int64Var(&o.storeBytes, "store-bytes", 1<<30, "persistent store budget in bytes (oldest segments evicted)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "how long SIGTERM waits for accepted jobs (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if (o.self == "") != (o.peers == "") {
		return options{}, fmt.Errorf("-self and -peers must be set together")
	}
	return o, nil
}

// peerList splits the -peers value.
func peerList(peers string) []string {
	var out []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newServer builds the service from the options and the (possibly nil)
// persistent store.
func newServer(o options, st *store.Store) *serve.Server {
	return serve.New(serve.Config{
		Jobs:       o.jobs,
		Workers:    o.workers,
		CacheBytes: o.cacheBytes,
		Store:      st,
		Self:       o.self,
		Peers:      peerList(o.peers),
	})
}

// run listens, serves until a signal arrives on stop, then drains and
// shuts down. ready (when non-nil) receives the bound address once the
// listener is up — tests use it to connect to an ":0" listener.
func run(o options, stop <-chan os.Signal, ready func(addr string)) error {
	var st *store.Store
	if o.storeDir != "" {
		var err error
		st, err = store.Open(o.storeDir, store.Options{MaxBytes: o.storeBytes})
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
		defer st.Close()
		fmt.Fprintf(os.Stderr, "unisonserved: store %s recovered %d results (%d bytes)\n",
			o.storeDir, st.Len(), st.SizeBytes())
	}
	s := newServer(o, st)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "unisonserved: listening on %s (workers %d, cache %d bytes)\n",
		ln.Addr(), o.workers, o.cacheBytes)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "unisonserved: %v: draining (new submissions rejected)\n", sig)
	}

	drainCtx := context.Background()
	if o.drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, o.drainTimeout)
		defer cancel()
	}
	if err := s.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "unisonserved: drain incomplete: %v\n", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "unisonserved: stopped")
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	if err := run(o, stop, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "unisonserved:", err)
		os.Exit(1)
	}
}
