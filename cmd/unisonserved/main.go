// Command unisonserved is the simulation daemon: it serves the
// unisoncache simulation engine over HTTP/JSON with a job scheduler and
// a content-addressed result cache, so repeated and overlapping sweeps —
// across clients and across time — execute each distinct configuration
// once.
//
// Usage:
//
//	unisonserved -addr :8080
//	unisonserved -addr 127.0.0.1:8080 -workers 2 -jobs 8 -cache-entries 4096
//
// Endpoints: POST /v1/runs, POST /v1/sweeps, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (NDJSON progress), DELETE /v1/jobs/{id},
// GET /healthz, GET /metrics (Prometheus text).
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions get
// 503, accepted jobs run to completion (bounded by -drain-timeout), then
// the listener closes. Point clients at it with the unisoncache/client
// package or cmd/experiments -server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unisoncache/internal/serve"
)

// options is the parsed flag set.
type options struct {
	addr         string
	jobs         int
	workers      int
	cacheEntries int
	drainTimeout time.Duration
}

// parseFlags reads the daemon's configuration from args.
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("unisonserved", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.jobs, "jobs", 0, "per-sweep concurrent simulations (0 = one per CPU)")
	fs.IntVar(&o.workers, "workers", 2, "jobs executing concurrently; queued jobs wait FIFO")
	fs.IntVar(&o.cacheEntries, "cache-entries", 4096, "max results held by the content-addressed cache (LRU)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "how long SIGTERM waits for accepted jobs (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

// newServer builds the service from the options.
func newServer(o options) *serve.Server {
	return serve.New(serve.Config{
		Jobs:         o.jobs,
		Workers:      o.workers,
		CacheEntries: o.cacheEntries,
	})
}

// run listens, serves until a signal arrives on stop, then drains and
// shuts down. ready (when non-nil) receives the bound address once the
// listener is up — tests use it to connect to an ":0" listener.
func run(o options, stop <-chan os.Signal, ready func(addr string)) error {
	s := newServer(o)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "unisonserved: listening on %s (workers %d, cache %d entries)\n",
		ln.Addr(), o.workers, o.cacheEntries)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "unisonserved: %v: draining (new submissions rejected)\n", sig)
	}

	drainCtx := context.Background()
	if o.drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, o.drainTimeout)
		defer cancel()
	}
	if err := s.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "unisonserved: drain incomplete: %v\n", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "unisonserved: stopped")
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	if err := run(o, stop, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "unisonserved:", err)
		os.Exit(1)
	}
}
