package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	uc "unisoncache"
	"unisoncache/client"
)

// TestParseFlags: defaults and rejection of stray arguments.
func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.workers != 2 || o.cacheEntries != 4096 || o.jobs != 0 {
		t.Errorf("defaults = %+v", o)
	}
	if _, err := parseFlags([]string{"-addr", ":0", "stray"}); err == nil {
		t.Error("stray argument accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestDaemonLifecycle boots the daemon on a random port, executes a run
// through the client, then SIGTERMs it and verifies the graceful stop.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation through the daemon")
	}
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, stop, func(addr string) { addrCh <- addr }) }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}
	cl := client.New("http://" + addr)
	ctx := context.Background()

	if h, err := cl.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}
	run := uc.Run{Workload: "web-search", Design: uc.DesignUnison,
		Capacity: 256 << 20, Cores: 2, AccessesPerCore: 2_000}
	res, err := cl.Execute(ctx, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.UIPC <= 0 {
		t.Errorf("UIPC = %v, want > 0", res.UIPC)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not stop within 30s of SIGTERM")
	}
}
