package main

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	uc "unisoncache"
	"unisoncache/client"
)

// TestParseFlags: defaults and rejection of stray arguments.
func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.workers != 2 || o.cacheBytes != 256<<20 || o.jobs != 0 {
		t.Errorf("defaults = %+v", o)
	}
	if o.storeDir != "" || o.storeBytes != 1<<30 || o.self != "" || o.peers != "" {
		t.Errorf("cluster/store defaults = %+v", o)
	}
	if _, err := parseFlags([]string{"-addr", ":0", "stray"}); err == nil {
		t.Error("stray argument accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-self", "http://x:1"}); err == nil {
		t.Error("-self without -peers accepted")
	}
	if o.logFormat != "text" || o.logLevel != "info" || o.slowThreshold != time.Minute || o.pprofAddr != "" {
		t.Errorf("observability defaults = %+v", o)
	}
	if _, err := parseFlags([]string{"-log-format", "yaml"}); err == nil {
		t.Error("-log-format yaml accepted")
	}
	if _, err := parseFlags([]string{"-log-level", "loud"}); err == nil {
		t.Error("-log-level loud accepted")
	}
	if o, err := parseFlags([]string{"-log-format", "json", "-log-level", "debug", "-slow-threshold", "2s", "-pprof-addr", "127.0.0.1:0"}); err != nil ||
		o.logFormat != "json" || o.logLevel != "debug" || o.slowThreshold != 2*time.Second || o.pprofAddr != "127.0.0.1:0" {
		t.Errorf("observability flags = %+v, %v", o, err)
	}
}

// TestPprofListener: -pprof-addr serves the standard profile index on
// its own listener, and empty means disabled.
func TestPprofListener(t *testing.T) {
	lg := slog.New(slog.DiscardHandler)
	if addr, c, err := servePprof("", lg); addr != "" || c != nil || err != nil {
		t.Fatalf("disabled pprof = %q, %v, %v", addr, c, err)
	}
	addr, c, err := servePprof("127.0.0.1:0", lg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof cmdline response")
	}
}

// TestDaemonLifecycle boots the daemon on a random port, executes a run
// through the client, then SIGTERMs it and verifies the graceful stop.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation through the daemon")
	}
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, stop, func(addr string) { addrCh <- addr }) }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}
	cl := client.New("http://" + addr)
	ctx := context.Background()

	if h, err := cl.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}
	run := uc.Run{Workload: "web-search", Design: uc.DesignUnison,
		Capacity: 256 << 20, Cores: 2, AccessesPerCore: 2_000}
	res, err := cl.Execute(ctx, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.UIPC <= 0 {
		t.Errorf("UIPC = %v, want > 0", res.UIPC)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not stop within 30s of SIGTERM")
	}
}

// TestDaemonRestartServesFromStore: with -store-dir, a result produced
// before a graceful stop is served from disk by the next boot — no
// re-simulation (cache_misses stays 0, store_hits advances).
func TestDaemonRestartServesFromStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation through the daemon")
	}
	dir := t.TempDir()
	boot := func() (chan os.Signal, chan error, string) {
		o, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-store-dir", dir})
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan os.Signal, 1)
		addrCh := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(o, stop, func(addr string) { addrCh <- addr }) }()
		select {
		case addr := <-addrCh:
			return stop, done, addr
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
			return nil, nil, ""
		}
	}
	halt := func(stop chan os.Signal, done chan error) {
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after SIGTERM", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not stop within 30s of SIGTERM")
		}
	}
	ctx := context.Background()
	point := uc.Run{Workload: "web-search", Design: uc.DesignUnison,
		Capacity: 256 << 20, Cores: 2, AccessesPerCore: 2_000}

	stop, done, addr := boot()
	first, err := client.New("http://"+addr).Execute(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	halt(stop, done)

	stop, done, addr = boot()
	defer halt(stop, done)
	cl := client.New("http://" + addr)
	second, err := cl.Execute(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	if first.UIPC != second.UIPC {
		t.Errorf("restarted daemon returned UIPC %v, want %v", second.UIPC, first.UIPC)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["unisonserved_cache_misses_total"] != 0 {
		t.Errorf("restarted daemon re-simulated (%v misses)", m["unisonserved_cache_misses_total"])
	}
	if m["unisonserved_store_hits_total"] < 1 {
		t.Errorf("store_hits = %v, want >= 1", m["unisonserved_store_hits_total"])
	}
}
