package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"unisoncache/client"
	"unisoncache/internal/serve"
)

// TestFig7CSVMatchesServer pins the service acceptance criterion: fig7
// routed through a unisonserved daemon writes CSVs byte-identical to the
// in-process path, and resubmitting the same sweep is served from the
// daemon's content-addressed cache without re-executing.
func TestFig7CSVMatchesServer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations twice (local + service)")
	}
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	local := options{
		accesses:  2_000,
		seed:      1,
		workloads: []string{"web-search", "data-serving"},
		outDir:    t.TempDir(),
	}
	if err := fig7(local); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(local.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}

	cl := client.New(ts.URL)
	served := local
	served.outDir = t.TempDir()
	served.srv = cl
	if err := fig7(served); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(served.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("-server fig7.csv diverges from the in-process path:\n--- served ---\n%s\n--- local ---\n%s", got, want)
	}

	// Resubmission: every run is already cached, so the second service
	// pass executes nothing new and still reproduces the bytes.
	ctx := context.Background()
	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rerun := served
	rerun.outDir = t.TempDir()
	if err := fig7(rerun); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(filepath.Join(rerun.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(want) {
		t.Fatal("cached -server rerun diverges from the in-process CSV")
	}
	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after["unisonserved_cache_misses_total"] != before["unisonserved_cache_misses_total"] {
		t.Errorf("cached rerun executed %v new simulations, want 0",
			after["unisonserved_cache_misses_total"]-before["unisonserved_cache_misses_total"])
	}
	if after["unisonserved_cache_hits_total"] <= before["unisonserved_cache_hits_total"] {
		t.Errorf("cached rerun recorded no cache hits (before %v, after %v)",
			before["unisonserved_cache_hits_total"], after["unisonserved_cache_hits_total"])
	}
}
