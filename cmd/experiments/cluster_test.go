package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"unisoncache/client"
	"unisoncache/internal/serve"
	"unisoncache/internal/store"
)

// expNode is one in-process cluster member with a persistent store,
// restartable via boot().
type expNode struct {
	ts      *httptest.Server
	s       *serve.Server
	st      *store.Store
	handler *atomic.Value // holds handlerBox (one concrete type for Store)
	dir     string
	url     string
}

// handlerBox gives atomic.Value the single concrete type it requires.
type handlerBox struct{ h http.Handler }

// boot (re)builds the node's daemon over its store directory and swaps
// it live — the in-process equivalent of restarting unisonserved with
// the same -store-dir.
func (n *expNode) boot(t *testing.T, urls []string) {
	t.Helper()
	st, err := store.Open(n.dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n.st = st
	n.s = serve.New(serve.Config{Self: n.url, Peers: urls, Store: st})
	n.handler.Store(handlerBox{n.s.Handler()})
}

// halt drains the node and closes its store, leaving the listener up
// (requests 503 until the next boot).
func (n *expNode) halt(t *testing.T) {
	t.Helper()
	n.handler.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "restarting", http.StatusServiceUnavailable)
	})})
	if err := n.s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := n.st.Close(); err != nil {
		t.Fatal(err)
	}
}

// startExpCluster boots a 3-member cluster, each with its own store.
func startExpCluster(t *testing.T) ([]*expNode, []string) {
	t.Helper()
	const n = 3
	nodes := make([]*expNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nd := &expNode{handler: &atomic.Value{}, dir: t.TempDir()}
		nd.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			box, _ := nd.handler.Load().(handlerBox)
			if box.h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			box.h.ServeHTTP(w, r)
		}))
		nd.url = nd.ts.URL
		urls[i] = nd.url
		nodes[i] = nd
		t.Cleanup(nd.ts.Close)
	}
	for _, nd := range nodes {
		nd.boot(t, urls)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.s.Drain(context.Background())
			nd.st.Close()
		}
	})
	return nodes, urls
}

// clusterMisses sums actually-simulated executions across the members.
func clusterMisses(t *testing.T, urls []string) float64 {
	t.Helper()
	var total float64
	for _, u := range urls {
		m, err := client.New(u).Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		total += m["unisonserved_cache_misses_total"]
	}
	return total
}

// TestFig7CSVMatchesCluster pins the cluster acceptance criterion: fig7
// through a 3-daemon consistent-hash cluster writes CSVs byte-identical
// to the in-process path — cold, and again after one member restarts
// and must serve its shard from its persistent store instead of
// re-simulating.
func TestFig7CSVMatchesCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across an in-process cluster")
	}
	nodes, urls := startExpCluster(t)

	local := options{
		accesses:  2_000,
		seed:      1,
		workloads: []string{"web-search", "data-serving"},
		outDir:    t.TempDir(),
	}
	if err := fig7(local); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(local.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}

	srv, err := newService(urls[0] + "," + urls[1] + "," + urls[2])
	if err != nil {
		t.Fatal(err)
	}
	served := local
	served.outDir = t.TempDir()
	served.srv = srv
	if err := fig7(served); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(served.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("cluster fig7.csv diverges from the in-process path:\n--- cluster ---\n%s\n--- local ---\n%s", got, want)
	}

	// Restart every member: all memory caches (and metrics counters) are
	// gone, the stores are not — the rerun can only be fed from disk.
	// (Restarting all of them rather than one keeps the assertions
	// independent of which member the ring picks as plan coordinator.)
	for _, nd := range nodes {
		nd.halt(t)
		nd.boot(t, urls)
	}

	rerun := served
	rerun.outDir = t.TempDir()
	if err := fig7(rerun); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(filepath.Join(rerun.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(want) {
		t.Fatal("post-restart cluster rerun diverges from the in-process CSV")
	}
	if d := clusterMisses(t, urls); d != 0 {
		t.Errorf("post-restart rerun re-simulated %v runs, want 0 (results must come from the stores)", d)
	}
	var storeHits, storeRecords float64
	for _, u := range urls {
		m, err := client.New(u).Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		storeHits += m["unisonserved_store_hits_total"]
		storeRecords += m["unisonserved_store_records"]
	}
	if storeHits < 1 {
		t.Errorf("post-restart rerun recorded no store hits (want >= 1)")
	}
	if storeRecords < 1 {
		t.Errorf("restarted cluster recovered no records from disk")
	}
}
