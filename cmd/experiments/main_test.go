package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	uc "unisoncache"
	"unisoncache/internal/config"
	"unisoncache/internal/stats"
)

// TestExperimentIndex: the -list output names every experiment exactly
// once, with a paper mapping, plus the "all" pseudo-entry.
func TestExperimentIndex(t *testing.T) {
	var buf bytes.Buffer
	printIndex(&buf)
	out := buf.String()
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.name] {
			t.Errorf("experiment %q listed twice", e.name)
		}
		seen[e.name] = true
		if !strings.Contains(out, e.name) {
			t.Errorf("-list output missing %q", e.name)
		}
		if e.paper == "" || e.fn == nil {
			t.Errorf("experiment %q lacks a paper mapping or runner", e.name)
		}
	}
	if !strings.Contains(out, "all") {
		t.Error("-list output missing the all pseudo-entry")
	}
}

// TestFig7SampledCSV: with sampling enabled the fig7 CSV gains one CI
// column per design, populated for workload rows and empty for the
// geomean aggregate rows.
func TestFig7SampledCSV(t *testing.T) {
	spec, err := uc.ParseSampleSpec("interval=250,gap=250,min=2")
	if err != nil {
		t.Fatal(err)
	}
	opt := options{
		accesses:  6_000,
		seed:      1,
		workloads: []string{"web-search"},
		outDir:    t.TempDir(),
		sample:    spec,
	}
	if err := fig7(opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(opt.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	wantHeader := "workload,size,alloy,footprint,unison,ideal,alloy_ci,footprint_ci,unison_ci,ideal_ci"
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 10 {
			t.Fatalf("row %q has %d columns, want 10", line, len(cols))
		}
		if strings.HasPrefix(line, "geomean") {
			if cols[6] != "" {
				t.Errorf("geomean row carries a CI: %q", line)
			}
			continue
		}
		for _, ci := range cols[6:] {
			if ci == "" {
				t.Errorf("workload row missing CI value: %q", line)
			}
		}
	}
}

// TestFig7CSVMatchesSerial pins the acceptance criterion: the concurrent,
// baseline-memoized fig7 must write a CSV byte-identical to the
// pre-refactor serial path — one Execute per design point plus one
// DesignNone Execute per (workload, size) cell.
func TestFig7CSVMatchesSerial(t *testing.T) {
	opt := options{
		accesses:  2_000,
		seed:      1,
		workloads: []string{"web-search", "data-serving"},
		outDir:    t.TempDir(),
	}
	if err := fig7(opt); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(opt.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// The serial reference, transcribed from the pre-runner fig7.
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal}
	var b strings.Builder
	b.WriteString("workload,size,alloy,footprint,unison,ideal\n")
	geo := map[uc.DesignKind]map[uint64][]float64{}
	for _, d := range designs {
		geo[d] = map[uint64][]float64{}
	}
	for _, w := range cloudSuite(opt) {
		for _, size := range config.CloudSuiteSizes() {
			base, err := uc.Execute(uc.Run{Workload: w, Design: uc.DesignNone, Capacity: size,
				AccessesPerCore: opt.accesses, Seed: opt.seed})
			if err != nil {
				t.Fatal(err)
			}
			var sp [4]float64
			for i, d := range designs {
				res, err := uc.Execute(uc.Run{Workload: w, Design: d, Capacity: size,
					AccessesPerCore: opt.accesses, Seed: opt.seed})
				if err != nil {
					t.Fatal(err)
				}
				sp[i] = res.UIPC / base.UIPC
				geo[d][size] = append(geo[d][size], sp[i])
			}
			fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%s\n", w, config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3]))
		}
	}
	for _, size := range config.CloudSuiteSizes() {
		var g [4]float64
		for i, d := range designs {
			v, err := stats.GeoMean(geo[d][size])
			if err != nil {
				continue
			}
			g[i] = v
		}
		fmt.Fprintf(&b, "geomean,%s,%s,%s,%s,%s\n", config.SizeLabel(size), f2(g[0]), f2(g[1]), f2(g[2]), f2(g[3]))
	}

	if string(got) != b.String() {
		t.Fatalf("fig7.csv diverges from serial reference:\n--- got ---\n%s\n--- want ---\n%s", got, b.String())
	}
}

// TestFig7TelemetryCSV: -telemetry writes the companion per-epoch CSV
// while leaving fig7.csv byte-identical to the telemetry-free run — the
// recording is observable only in the extra file.
func TestFig7TelemetryCSV(t *testing.T) {
	plain := options{
		accesses:  2_000,
		seed:      1,
		workloads: []string{"web-search"},
		outDir:    t.TempDir(),
	}
	if err := fig7(plain); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(plain.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}

	tele := plain
	tele.outDir = t.TempDir()
	tele.telemetry = uc.TelemetrySpec{EpochEvents: 200}
	if err := fig7(tele); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(tele.outDir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fig7.csv changed under -telemetry:\n--- with ---\n%s\n--- without ---\n%s", got, want)
	}

	data, err := os.ReadFile(filepath.Join(tele.outDir, "fig7_epochs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	wantHeader := "workload,size,design,epoch,start_events,end_events," +
		"uipc,instructions,cycles,hit_ratio,waypred_hits,waypred_lookups," +
		"trigger_misses,underpred_misses,singleton_skips," +
		"offchip_read_bytes,offchip_write_bytes," +
		"stacked_busy_cycles,offchip_busy_cycles,l2_hit_ratio"
	if lines[0] != wantHeader {
		t.Fatalf("epochs header = %q, want %q", lines[0], wantHeader)
	}
	if len(lines) < 2 {
		t.Fatal("fig7_epochs.csv has no epoch rows")
	}
	// Every design point contributes epochs; spot-check the vocabulary.
	body := strings.Join(lines[1:], "\n")
	for _, d := range []string{"alloy", "footprint", "unison", "ideal"} {
		if !strings.Contains(body, ","+d+",") {
			t.Errorf("fig7_epochs.csv records no epochs for design %q", d)
		}
	}
	for i, line := range lines[1:] {
		if cols := strings.Split(line, ","); len(cols) != 20 {
			t.Fatalf("epoch row %d has %d columns, want 20: %q", i, len(cols), line)
		}
	}
}
