package main

import (
	"fmt"

	uc "unisoncache"
	"unisoncache/internal/config"
	"unisoncache/internal/dram"
	"unisoncache/internal/mem"
	"unisoncache/internal/predictor"
)

// table2 computes the key-characteristics comparison from the implemented
// geometometries and predictor sizings (paper Table II).
func table2(opt options) error {
	fmt.Println("== Table II: key characteristics (computed from the implementation) ==")
	u960 := mem.UnisonGeometry(15, 4)
	u1984 := mem.UnisonGeometry(31, 4)
	alloy := mem.AlloyGeometry()

	const eightGB = uint64(8) << 30
	fcTags := mem.SRAMTagBytes(eightGB, 2048, 12)
	acInDRAM := eightGB - eightGB/mem.RowBytes*uint64(alloy.DataBlocksPerRow())*mem.BlockSize
	uc960InDRAM := eightGB - eightGB/mem.RowBytes*uint64(u960.DataBlocksPerRow())*mem.BlockSize
	uc1984InDRAM := eightGB - eightGB/mem.RowBytes*uint64(u1984.DataBlocksPerRow())*mem.BlockSize

	mp := predictor.NewMissPredictor(16, 256)
	fp := predictor.NewFootprintPredictor(16384, 32)
	st := predictor.NewSingletonTable(256)
	wpSmall := predictor.NewWayPredictor(12, 4)
	wpLarge := predictor.NewWayPredictor(16, 4)

	rows := [][]string{
		{"associativity", "1 (direct)", "32", "4"},
		{"blocks_per_8KB_row", itoa(alloy.DataBlocksPerRow()), "128", itoa(u960.DataBlocksPerRow()) + "-" + itoa(u1984.DataBlocksPerRow())},
		{"sram_tags_at_8GB", "-", fmt.Sprintf("%.0fMB", float64(fcTags)/(1<<20)), "-"},
		{"indram_tags_at_8GB", fmt.Sprintf("%dMB (%.1f%%)", acInDRAM>>20, 100*alloy.MetadataFraction()),
			"-", fmt.Sprintf("%d-%dMB (%.1f-%.1f%%)", uc1984InDRAM>>20, uc960InDRAM>>20, 100*u1984.MetadataFraction(), 100*u960.MetadataFraction())},
		{"miss_predictor", fmt.Sprintf("%dB (96B/core)", mp.SizeBytes()), "-", "-"},
		{"way_predictor", "-", "-", fmt.Sprintf("%d-%dKB", wpSmall.SizeBytes()>>10, wpLarge.SizeBytes()>>10)},
		{"footprint_table", "-", fmt.Sprintf("%dKB", fp.SizeBytes()>>10), fmt.Sprintf("%dKB", fp.SizeBytes()>>10)},
		{"singleton_table", "-", fmt.Sprintf("%dKB", st.SizeBytes()>>10), fmt.Sprintf("%dKB", st.SizeBytes()>>10)},
	}
	fmt.Printf("%-22s %-18s %-14s %-22s\n", "Characteristic", "Alloy", "Footprint", "Unison")
	for _, r := range rows {
		fmt.Printf("%-22s %-18s %-14s %-22s\n", r[0], r[1], r[2], r[3])
	}
	fmt.Println()
	return writeCSV(opt, "table2", []string{"characteristic", "alloy", "footprint", "unison"}, rows)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// table4 prints the Footprint Cache tag-array scaling table used to
// parameterize the FC baseline (paper Table IV).
func table4(opt options) error {
	fmt.Println("== Table IV: Footprint Cache tag array vs capacity ==")
	header := []string{"size", "tag_mb", "latency_cycles"}
	var rows [][]string
	fmt.Printf("%-8s %10s %10s\n", "size", "tags(MB)", "latency")
	for _, p := range config.FCTagTable() {
		rows = append(rows, []string{config.SizeLabel(p.CacheBytes), f2(p.TagMB), itoa(int(p.LatencyCycles))})
		fmt.Printf("%-8s %10.2f %10d\n", config.SizeLabel(p.CacheBytes), p.TagMB, p.LatencyCycles)
	}
	fmt.Println()
	return writeCSV(opt, "table4", header, rows)
}

// ablationWay quantifies §V-B's way-prediction claim: versus fetching all
// ways in parallel (bandwidth) and versus serializing tag-then-data
// (latency), at 1 GB.
func ablationWay(opt options) error {
	fmt.Println("== Ablation (§V-B): way prediction vs alternatives, 1GB ==")
	header := []string{"workload", "variant", "speedup", "miss_pct", "stacked_read_bytes_per_ki"}
	var rows [][]string
	fmt.Printf("%-18s %-14s %8s %8s %12s\n", "workload", "variant", "speedup", "miss%", "stackedB/KI")
	variants := []struct {
		name string
		mod  func(*uc.Run)
	}{
		{"predicted", func(r *uc.Run) {}},
		{"fetch-all", func(r *uc.Run) { r.DisableWayPrediction = true }},
		{"serialized", func(r *uc.Run) { r.SerializeTagData = true }},
	}
	var points []uc.Run
	var names []string
	for _, w := range opt.workloads {
		if w == "tpch" {
			continue
		}
		for _, v := range variants {
			run := opt.run(w, uc.DesignUnison, 1<<30)
			v.mod(&run)
			points = append(points, run)
			names = append(names, v.name)
		}
	}
	// The three variants per workload share one memoized baseline.
	results, err := opt.speedupMany(points)
	if err != nil {
		return err
	}
	for i, r := range results {
		w, res := points[i].Workload, r.Design
		sbki := float64(res.Stacked.BytesRead) * 1000 / float64(res.Instructions)
		rows = append(rows, []string{w, names[i], f2(r.Speedup), f1(res.MissRatioPct()), f1(sbki)})
		fmt.Printf("%-18s %-14s %8s %8s %12s\n", w, names[i], f2(r.Speedup), f1(res.MissRatioPct()), f1(sbki))
	}
	fmt.Println()
	return writeCSV(opt, "ablation_way", header, rows)
}

// ablationSingleton quantifies §III-A.4: singleton bypass preserves
// effective capacity on singleton-heavy workloads.
func ablationSingleton(opt options) error {
	fmt.Println("== Ablation (§III-A.4): singleton bypass, 1GB ==")
	header := []string{"workload", "variant", "miss_pct", "offchip_bytes_per_ki", "speedup"}
	var rows [][]string
	fmt.Printf("%-18s %-14s %8s %12s %8s\n", "workload", "variant", "miss%", "offB/KI", "speedup")
	var points []uc.Run
	var names []string
	for _, w := range opt.workloads {
		if w == "tpch" {
			continue
		}
		for _, disable := range []bool{false, true} {
			name := "bypass-on"
			if disable {
				name = "bypass-off"
			}
			run := opt.run(w, uc.DesignUnison, 1<<30)
			run.DisableSingleton = disable
			points = append(points, run)
			names = append(names, name)
		}
	}
	results, err := opt.speedupMany(points)
	if err != nil {
		return err
	}
	for i, r := range results {
		w, res := points[i].Workload, r.Design
		rows = append(rows, []string{w, names[i], f1(res.MissRatioPct()), f1(res.OffchipBytesPerKI), f2(r.Speedup)})
		fmt.Printf("%-18s %-14s %8s %12s %8s\n", w, names[i], f1(res.MissRatioPct()), f1(res.OffchipBytesPerKI), f2(r.Speedup))
	}
	fmt.Println()
	return writeCSV(opt, "ablation_singleton", header, rows)
}

// energy reproduces the §V-D discussion's proxy metric: off-chip DRAM row
// activations per kilo-instruction. Footprint-granularity transfers (FC,
// UC) activate one row per ~10 blocks; Alloy activates per block.
func energy(opt options) error {
	fmt.Println("== Energy (§V-D): off-chip activations/KI and dynamic DRAM energy/KI, 1GB ==")
	header := []string{"workload", "alloy_acts", "footprint_acts", "unison_acts", "none_acts",
		"alloy_nj_ki", "footprint_nj_ki", "unison_nj_ki", "none_nj_ki"}
	var rows [][]string
	fmt.Printf("%-18s %8s %8s %8s %8s | %8s %8s %8s %8s\n",
		"workload", "AC.act", "FC.act", "UC.act", "none", "AC.nJ", "FC.nJ", "UC.nJ", "none.nJ")
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignNone}
	var points []uc.Run
	for _, w := range opt.workloads {
		if w == "tpch" {
			continue
		}
		for _, d := range designs {
			points = append(points, opt.run(w, d, 1<<30))
		}
	}
	results, err := opt.executeMany(points)
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var acts, njs [4]float64
		for i := range designs {
			res := results[at+i]
			ki := float64(res.Instructions) / 1000
			acts[i] = float64(res.Offchip.Activations) / ki
			njs[i] = dram.SystemDynamicPJ(res.Stacked, res.Offchip) / 1000 / ki
		}
		w := points[at].Workload
		rows = append(rows, []string{w, f2(acts[0]), f2(acts[1]), f2(acts[2]), f2(acts[3]),
			f2(njs[0]), f2(njs[1]), f2(njs[2]), f2(njs[3])})
		fmt.Printf("%-18s %8s %8s %8s %8s | %8s %8s %8s %8s\n",
			w, f2(acts[0]), f2(acts[1]), f2(acts[2]), f2(acts[3]), f2(njs[0]), f2(njs[1]), f2(njs[2]), f2(njs[3]))
	}
	fmt.Println()
	return writeCSV(opt, "energy", header, rows)
}

// priorart compares Unison Cache against the full lineage of block-based
// designs §II-A discusses: Loh-Hill (serialized in-DRAM tags + MissMap) and
// Alloy Cache, at 1 GB.
func priorArt(opt options) error {
	fmt.Println("== Prior art (§II-A): Loh-Hill vs Alloy vs Unison, 1GB ==")
	header := []string{"workload", "design", "miss_pct", "speedup", "avg_read_lat"}
	var rows [][]string
	fmt.Printf("%-18s %-10s %8s %8s %10s\n", "workload", "design", "miss%", "speedup", "readLat")
	var points []uc.Run
	for _, w := range opt.workloads {
		if w == "tpch" {
			continue
		}
		for _, d := range []uc.DesignKind{uc.DesignLohHill, uc.DesignAlloy, uc.DesignUnison} {
			points = append(points, opt.run(w, d, 1<<30))
		}
	}
	results, err := opt.speedupMany(points)
	if err != nil {
		return err
	}
	for i, r := range results {
		w, d, res := points[i].Workload, points[i].Design, r.Design
		rows = append(rows, []string{w, string(d), f1(res.MissRatioPct()), f2(r.Speedup), f1(res.AvgDRAMReadLatency)})
		fmt.Printf("%-18s %-10s %8s %8s %10s\n", w, d, f1(res.MissRatioPct()), f2(r.Speedup), f1(res.AvgDRAMReadLatency))
	}
	fmt.Println()
	return writeCSV(opt, "priorart", header, rows)
}

// conflictModel prints the §III-A.5 analytical model: the page-vs-block
// direct-mapped conflict amplification.
func conflictModel(opt options) error {
	fmt.Println("== Analytical conflict model (§III-A.5), 1GB cache ==")
	header := []string{"unit", "conflict_ratio_vs_block"}
	var rows [][]string
	cacheBlocks := uint64(1 << 30 / 64)
	fmt.Printf("%-12s %24s\n", "unit", "conflicts vs block-grain")
	for _, unit := range []uint64{1, 15, 31, 32} {
		ratio := mem.ConflictRatio(cacheBlocks, unit, 20_000)
		label := fmt.Sprintf("%dB", unit*64)
		rows = append(rows, []string{label, f1(ratio)})
		fmt.Printf("%-12s %24s\n", label, f1(ratio))
	}
	fmt.Println("(the paper quotes ~500x worst case for 2KB pages; the model gives P^2)")
	fmt.Println()
	return writeCSV(opt, "conflict_model", header, rows)
}
