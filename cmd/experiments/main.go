// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables I, II, IV, V and Figures 5–8), plus the ablations
// DESIGN.md calls out. Results are printed as aligned text tables and also
// written as CSV under -out.
//
// Usage:
//
//	experiments -list                  # print the experiment index
//	experiments -exp fig6              # one experiment, full length
//	experiments -exp all -quick        # everything, shortened runs
//	experiments -exp table5 -workloads web-search,tpch
//	experiments -exp fig7 -quick -sample -confidence 0.95
//	experiments -exp fig7 -quick -telemetry    # + fig7_epochs.csv timeline
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/config"
	"unisoncache/internal/obs"
	"unisoncache/internal/stats"
)

type options struct {
	accesses  int
	seed      uint64
	workloads []string
	outDir    string
	jobs      int
	// segments, when >= 2, runs every simulation point time-parallel
	// (Run.Segments). Results — and therefore every CSV — are
	// byte-identical to serial execution; only wall-clock changes.
	segments int
	// sample, when enabled, switches the speedup figures (fig7, fig8) to
	// SMARTS-style sampled simulation: SweepSampled plans, CI columns
	// appended to the CSVs, and a detailed-event accounting line. Every
	// other experiment — including the speedup-reporting ablations —
	// ignores it and runs full-length.
	sample uc.SampleSpec
	// telemetry, when enabled, records epoch-sliced counter timelines on
	// the speedup figures' design points and writes them as companion
	// per-epoch CSVs (fig7_epochs.csv, fig8_epochs.csv). The figure CSVs
	// themselves stay byte-identical — recording never perturbs a replay.
	// Mutually exclusive with -sample (epoch slicing needs every event).
	telemetry uc.TelemetrySpec
	// srv, when non-nil, routes every simulation through the unisonserved
	// service (-server, one or more comma-separated daemon URLs) instead
	// of executing in-process. The service's determinism contract keeps
	// all CSVs byte-identical to the local path — including through a
	// multi-daemon cluster — and repeat invocations hit the daemons'
	// result caches and stores.
	srv service
}

// service is the slice of the client API the experiments route through:
// both a single daemon (*client.Client) and a consistent-hash cluster
// (*client.Cluster) satisfy it, so every experiment is oblivious to how
// many daemons are behind -server.
type service interface {
	Health(context.Context) (client.Health, error)
	ExecuteMany(context.Context, []uc.Run) ([]uc.Result, error)
	SpeedupMany(context.Context, []uc.Run) ([]uc.SpeedupResult, error)
	SweepSampled(context.Context, []uc.Run, uc.SampleSpec) ([]uc.SpeedupResult, error)
}

// newService builds the -server client: a fan-out Cluster for a
// comma-separated list, a plain Client for a single URL. Retries are
// surfaced on stderr through the client's structured logger — a long
// figure run that silently stalls on a flapping daemon is much worse
// than a few warning lines.
func newService(servers string) (service, error) {
	retryLog, _ := obs.NewLogger(os.Stderr, obs.LogText, slog.LevelWarn)
	var addrs []string
	for _, a := range strings.Split(servers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 1 {
		cl := client.New(addrs[0])
		cl.Logger = retryLog
		return cl, nil
	}
	cluster, err := client.NewCluster(addrs)
	if err != nil {
		return nil, err
	}
	for _, n := range cluster.Nodes() {
		cluster.Node(n).Logger = retryLog
	}
	return cluster, nil
}

// executeMany runs an ExecuteMany plan locally or through -server.
func (o options) executeMany(points []uc.Run) ([]uc.Result, error) {
	if o.srv != nil {
		return o.srv.ExecuteMany(context.Background(), points)
	}
	return uc.ExecuteMany(o.plan(points))
}

// speedupMany runs a SpeedupMany plan locally or through -server.
func (o options) speedupMany(points []uc.Run) ([]uc.SpeedupResult, error) {
	if o.srv != nil {
		return o.srv.SpeedupMany(context.Background(), points)
	}
	return uc.SpeedupMany(o.plan(points))
}

// plan wraps a point list with the sweep engine's execution policy: the
// -jobs worker count and a live progress ticker on stderr.
func (o options) plan(points []uc.Run) uc.Plan {
	return uc.Plan{Points: points, Jobs: o.jobs, Progress: os.Stderr}
}

// run fills the shared fields every experiment point carries.
func (o options) run(workload string, design uc.DesignKind, capacity uint64) uc.Run {
	return uc.Run{Workload: workload, Design: design, Capacity: capacity,
		AccessesPerCore: o.accesses, Seed: o.seed, Segments: o.segments}
}

// experiments is the index: every runnable experiment, its paper mapping,
// and its runner, in canonical order.
var experiments = []struct {
	name  string
	paper string
	fn    func(options) error
}{
	{"table1", "Table I — qualitative comparison of AC / FC / UC (static)", table1},
	{"table2", "Table II — key characteristics, computed from the implemented geometries", table2},
	{"table4", "Table IV — Footprint Cache tag-array scaling", table4},
	{"table5", "Table V — predictor accuracies (MP / FP / WP)", table5},
	{"fig5", "Figure 5 — Unison miss ratio vs associativity (1/4/32 ways)", fig5},
	{"fig6", "Figure 6 — miss ratio: Alloy vs Footprint vs Unison", fig6},
	{"fig7", "Figure 7 — CloudSuite speedup over no-DRAM-cache baseline", fig7},
	{"fig8", "Figure 8 — TPC-H speedup, 1-8 GB caches", fig8},
	{"ablation-way", "§V-B — way prediction vs fetch-all and serialized tag-data", ablationWay},
	{"ablation-singleton", "§III-A.4 — singleton bypass ablation", ablationSingleton},
	{"energy", "§V-D — off-chip activations and dynamic DRAM energy per KI", energy},
	{"priorart", "§II-A — Loh-Hill vs Alloy vs Unison lineage", priorArt},
	{"conflict", "§III-A.5 — analytical page-vs-block conflict model", conflictModel},
}

// printIndex writes the experiment index (names + paper mapping).
func printIndex(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(w, "  %-20s %s\n", e.name, e.paper)
	}
	fmt.Fprintf(w, "  %-20s run every experiment above, in order\n", "all")
}

func main() {
	exp := flag.String("exp", "all", "experiment name (see -list), or all")
	list := flag.Bool("list", false, "print the experiment index (names + paper mapping) and exit")
	quick := flag.Bool("quick", false, "shortened runs (~5x faster, noisier)")
	accesses := flag.Int("accesses", 0, "accesses per core (0 = default)")
	seed := flag.Uint64("seed", 1, "workload seed")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload filter")
	out := flag.String("out", "results", "CSV output directory")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = one per CPU)")
	segments := flag.Int("segments", 0, "time-parallel segments per simulation (0/1 = serial; results are byte-identical either way)")
	sampleFlag := flag.Bool("sample", false, "sampled simulation for the speedup figures: CI-target sweeps, CI columns in fig7/fig8 CSVs")
	confidence := flag.Float64("confidence", 0, "confidence level for -sample intervals (default 0.95)")
	sampleSpec := flag.String("sample-spec", "", "full sampling spec, e.g. interval=1000,gap=3000,ci=0.03 (implies -sample)")
	telemetryFlag := flag.Bool("telemetry", false, "record epoch-sliced counter timelines on the speedup figures and write per-epoch CSVs (fig7_epochs.csv, fig8_epochs.csv); figure CSVs stay byte-identical")
	epochEvents := flag.Int("epoch-events", 0, "telemetry epoch length in retired events per core (0 = default; implies -telemetry)")
	server := flag.String("server", "", "unisonserved base URL(s), comma-separated for a cluster (e.g. http://127.0.0.1:8080,http://127.0.0.1:8081); route all simulations through the service")
	serialAccess := flag.Bool("serial-access", false, "force one-at-a-time design lookups instead of the batched AccessBatch drain (A/B verification; output is byte-identical)")
	flag.Parse()

	if *list {
		printIndex(os.Stdout)
		return
	}
	uc.SerialDesignAccess = *serialAccess

	opt := options{accesses: *accesses, seed: *seed, outDir: *out, jobs: *jobs, segments: *segments}
	if *server != "" {
		srv, err := newService(*server)
		if err != nil {
			fatal(err)
		}
		if _, err := srv.Health(context.Background()); err != nil {
			fatal(fmt.Errorf("cannot reach -server %s: %w", *server, err))
		}
		opt.srv = srv
	}
	if *sampleFlag || *sampleSpec != "" || *confidence != 0 {
		opt.sample = uc.DefaultSampleSpec()
		if *sampleSpec != "" {
			spec, err := uc.ParseSampleSpec(*sampleSpec)
			if err != nil {
				fatal(err)
			}
			opt.sample = spec
		}
		if *confidence != 0 {
			opt.sample.Confidence = *confidence
		}
	}
	if *telemetryFlag || *epochEvents != 0 {
		opt.telemetry = uc.DefaultTelemetrySpec()
		if *epochEvents != 0 {
			opt.telemetry.EpochEvents = *epochEvents
		}
		if opt.sample.Enabled() {
			fatal(fmt.Errorf("-telemetry and -sample are mutually exclusive (epoch slicing needs every event simulated)"))
		}
	}
	if opt.accesses == 0 {
		opt.accesses = 400_000
		if *quick {
			opt.accesses = 80_000
		}
	}
	if *workloadsFlag != "" {
		opt.workloads = strings.Split(*workloadsFlag, ",")
		// Fail fast, before any simulation runs: the registry knows every
		// valid name (built-in or registered).
		known := map[string]bool{}
		for _, w := range uc.Workloads() {
			known[w] = true
		}
		for _, w := range opt.workloads {
			if !known[w] {
				fatal(fmt.Errorf("unknown workload %q (have %v)", w, uc.Workloads()))
			}
		}
	} else {
		opt.workloads = uc.Workloads()
	}
	if err := os.MkdirAll(opt.outDir, 0o755); err != nil {
		fatal(err)
	}

	if *exp == "all" {
		for _, e := range experiments {
			if err := e.fn(opt); err != nil {
				fatal(err)
			}
		}
		return
	}
	for _, e := range experiments {
		if e.name == *exp {
			if err := e.fn(opt); err != nil {
				fatal(err)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
	printIndex(os.Stderr)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// cloudSuite filters opt.workloads to the five CloudSuite workloads.
func cloudSuite(opt options) []string {
	var out []string
	for _, w := range opt.workloads {
		if w != "tpch" {
			out = append(out, w)
		}
	}
	return out
}

func hasTPCH(opt options) bool {
	for _, w := range opt.workloads {
		if w == "tpch" {
			return true
		}
	}
	return false
}

// writeCSV stores rows under the experiment's name.
func writeCSV(opt options, name string, header []string, rows [][]string) error {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(opt.outDir, name+".csv"), []byte(b.String()), 0o644)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func u64(v uint64) string { return strconv.FormatUint(v, 10) }

// telemetryPoints stamps the -telemetry spec on a figure's design
// points. SpeedupMany's baseline canonicalization strips the spec again,
// so the memoized baselines keep their usual cache keys and record
// nothing.
func (o options) telemetryPoints(points []uc.Run) []uc.Run {
	if !o.telemetry.Enabled() {
		return points
	}
	out := make([]uc.Run, len(points))
	for i, r := range points {
		r.Telemetry = o.telemetry
		out[i] = r
	}
	return out
}

// writeEpochsCSV writes a figure's companion per-epoch CSV: one row per
// (workload, size, design, epoch) from the design results' timelines —
// the microarchitectural counters resolved in time instead of collapsed
// into whole-run totals.
func writeEpochsCSV(opt options, name string, results []uc.SpeedupResult) error {
	header := []string{"workload", "size", "design", "epoch", "start_events", "end_events",
		"uipc", "instructions", "cycles", "hit_ratio",
		"waypred_hits", "waypred_lookups",
		"trigger_misses", "underpred_misses", "singleton_skips",
		"offchip_read_bytes", "offchip_write_bytes",
		"stacked_busy_cycles", "offchip_busy_cycles", "l2_hit_ratio"}
	var rows [][]string
	for _, r := range results {
		res := r.Design
		if res.Timeline == nil {
			continue
		}
		for _, e := range res.Timeline.Epochs {
			rows = append(rows, []string{
				res.Run.Workload, config.SizeLabel(res.Run.Capacity), string(res.Run.Design),
				strconv.Itoa(e.Index), strconv.Itoa(e.StartEvents), strconv.Itoa(e.EndEvents),
				f4(e.UIPC), u64(e.Instructions), u64(e.Cycles), f4(e.HitRatio()),
				u64(e.WayPredHits), u64(e.WayPredLookups),
				u64(e.TriggerMisses), u64(e.UnderpredMisses), u64(e.SingletonSkips),
				u64(e.OffchipReadBytes), u64(e.OffchipWriteBytes),
				u64(e.StackedBusyCycles), u64(e.OffchipBusyCycles), f4(e.L2HitRatio()),
			})
		}
	}
	if len(rows) == 0 {
		return nil
	}
	return writeCSV(opt, name, header, rows)
}

// speedupResults executes a speedup plan, sampled (CI-target sweep) or
// full, per the options — locally or through -server.
func (o options) speedupResults(points []uc.Run) ([]uc.SpeedupResult, error) {
	if o.sample.Enabled() {
		if o.srv != nil {
			return o.srv.SweepSampled(context.Background(), points, o.sample)
		}
		return uc.SweepSampled(o.plan(points), o.sample)
	}
	return o.speedupMany(points)
}

// sampleSummary prints the sampled sweep's event accounting — how many
// detailed events the design runs measured versus what full runs would
// have simulated — plus the spread of the speedup CIs.
func sampleSummary(results []uc.SpeedupResult) {
	if len(results) == 0 || results[0].Design.CI == nil {
		return
	}
	var detailed, fullEvents uint64
	var worst float64
	within := 0
	for _, r := range results {
		d := r.Design.CI
		detailed += d.DetailedEvents
		fullEvents += d.FullRunEvents
		if r.CI != nil {
			if rel := r.CI.RelHalfWidth(); rel > worst {
				worst = rel
			}
			target := r.Design.Run.Sampling.TargetRelCI
			if target > 0 && r.CI.RelHalfWidth() <= target {
				within++
			}
		}
	}
	conf := results[0].Design.CI.Confidence
	fmt.Printf("sampling: %d detailed events vs %d full-run (%.1fx fewer); %d/%d speedup CIs within target, worst ±%.1f%% at %.0f%% confidence\n",
		detailed, fullEvents, float64(fullEvents)/float64(detailed), within, len(results), 100*worst, 100*conf)
}

// ciCell renders a speedup with its half-width in sampled mode.
func ciCell(sp float64, ci *uc.SpeedupCI) string {
	if ci == nil {
		return f2(sp)
	}
	return f2(sp) + "±" + f3(ci.HalfWidth)
}

// table1 prints the qualitative comparison (static, from §I Table I).
func table1(opt options) error {
	fmt.Println("== Table I: qualitative comparison (AC / FC / UC) ==")
	rows := [][]string{
		{"No SRAM tag overhead", "yes", "no", "yes"},
		{"Low hit latency", "yes", "no", "yes"},
		{"High hit rate", "no", "yes", "yes"},
		{"High effective capacity", "no", "yes", "yes"},
		{"Scalability", "yes", "no", "yes"},
	}
	fmt.Printf("%-28s %-6s %-6s %-6s\n", "Property", "AC", "FC", "UC")
	for _, r := range rows {
		fmt.Printf("%-28s %-6s %-6s %-6s\n", r[0], r[1], r[2], r[3])
	}
	fmt.Println()
	return writeCSV(opt, "table1", []string{"property", "alloy", "footprint", "unison"}, rows)
}

// table5 reproduces the predictor-accuracy table: MP for Alloy, FP for
// Footprint and both Unison page sizes, WP for Unison. 1 GB caches (8 GB
// for TPC-H), as in the paper.
func table5(opt options) error {
	fmt.Println("== Table V: predictor accuracy (1GB cache; 8GB for TPC-H) ==")
	header := []string{"workload", "ac_mp_acc", "ac_mp_overfetch", "fc_fp_acc", "fc_fp_overfetch",
		"uc960_fp_acc", "uc960_fp_overfetch", "uc960_wp_acc",
		"uc1984_fp_acc", "uc1984_fp_overfetch", "uc1984_wp_acc"}
	var rows [][]string
	fmt.Printf("%-18s %8s %8s | %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"workload", "MP.acc", "MP.ovf", "FC.acc", "FC.ovf", "U960.acc", "U960.ovf", "U960.wp", "U1984.ac", "U1984.ov", "U1984.wp")
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignUnison1984}
	var points []uc.Run
	for _, w := range opt.workloads {
		capacity := uint64(1 << 30)
		if w == "tpch" {
			capacity = 8 << 30
		}
		for _, d := range designs {
			points = append(points, opt.run(w, d, capacity))
		}
	}
	results, err := opt.executeMany(points)
	if err != nil {
		return err
	}
	for i, w := range opt.workloads {
		acRes, fcRes := results[len(designs)*i], results[len(designs)*i+1]
		u960Res, u1984Res := results[len(designs)*i+2], results[len(designs)*i+3]

		row := []string{w,
			f1(acRes.Design.MP.Percent()), f1(acRes.Design.MPOverfetchPct),
			f1(fcRes.Design.FP.Percent()), f1(fcRes.Design.FO.Percent()),
			f1(u960Res.Design.FP.Percent()), f1(u960Res.Design.FO.Percent()), f1(u960Res.Design.WP.Percent()),
			f1(u1984Res.Design.FP.Percent()), f1(u1984Res.Design.FO.Percent()), f1(u1984Res.Design.WP.Percent()),
		}
		rows = append(rows, row)
		fmt.Printf("%-18s %8s %8s | %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
			w, row[1], row[2], row[3], row[4], row[5], row[6], row[7], row[8], row[9], row[10])
	}
	fmt.Println()
	return writeCSV(opt, "table5", header, rows)
}

// fig5 reproduces the associativity sweep: Unison miss ratio with 1, 4 and
// 32 ways at a small and a large cache size per workload.
func fig5(opt options) error {
	fmt.Println("== Figure 5: Unison Cache miss ratio vs associativity ==")
	header := []string{"workload", "size", "ways1", "ways4", "ways32"}
	var rows [][]string
	fmt.Printf("%-18s %-8s %8s %8s %8s\n", "workload", "size", "1-way", "4-way", "32-way")
	waySweep := []int{1, 4, 32}
	var points []uc.Run
	for _, w := range opt.workloads {
		sizes := []uint64{128 << 20, 1 << 30}
		if w == "tpch" {
			sizes = []uint64{1 << 30, 8 << 30}
		}
		points = append(points, uc.Sweep{
			Base:       opt.run(w, uc.DesignUnison, 0),
			Capacities: sizes,
			UnisonWays: waySweep,
		}.Points()...)
	}
	results, err := opt.executeMany(points)
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(waySweep) {
		var miss [3]float64
		for i := range waySweep {
			miss[i] = results[at+i].MissRatioPct()
		}
		w, size := points[at].Workload, points[at].Capacity
		rows = append(rows, []string{w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2])})
		fmt.Printf("%-18s %-8s %8s %8s %8s\n", w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2]))
	}
	fmt.Println()
	return writeCSV(opt, "fig5", header, rows)
}

// fig6 reproduces the miss-ratio comparison across designs and sizes.
func fig6(opt options) error {
	fmt.Println("== Figure 6: miss ratio, Alloy vs Footprint vs Unison ==")
	header := []string{"workload", "size", "alloy", "footprint", "unison"}
	var rows [][]string
	fmt.Printf("%-18s %-8s %8s %8s %8s\n", "workload", "size", "alloy", "footpr", "unison")
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison}
	var points []uc.Run
	for _, w := range opt.workloads {
		sizes := config.CloudSuiteSizes()
		if w == "tpch" {
			sizes = config.TPCHSizes()
		}
		points = append(points, uc.Sweep{
			Base:       opt.run(w, "", 0),
			Capacities: sizes,
			Designs:    designs,
		}.Points()...)
	}
	results, err := opt.executeMany(points)
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var miss [3]float64
		for i := range designs {
			miss[i] = results[at+i].MissRatioPct()
		}
		w, size := points[at].Workload, points[at].Capacity
		rows = append(rows, []string{w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2])})
		fmt.Printf("%-18s %-8s %8s %8s %8s\n", w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2]))
	}
	fmt.Println()
	return writeCSV(opt, "fig6", header, rows)
}

// fig7 reproduces the CloudSuite performance comparison: speedup over the
// no-DRAM-cache baseline for the four designs, plus the geometric mean.
// With -sample the sweep runs as a CI-target plan and the CSV gains one
// half-width column per design.
func fig7(opt options) error {
	fmt.Println("== Figure 7: speedup over no-DRAM-cache baseline ==")
	sampled := opt.sample.Enabled()
	header := []string{"workload", "size", "alloy", "footprint", "unison", "ideal"}
	if sampled {
		header = append(header, "alloy_ci", "footprint_ci", "unison_ci", "ideal_ci")
	}
	var rows [][]string
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal}
	rowFmt := "%-18s %-8s %8s %8s %8s %8s\n"
	if sampled {
		rowFmt = "%-18s %-8s %12s %12s %12s %12s\n"
	}
	fmt.Printf(rowFmt, "workload", "size", "alloy", "footpr", "unison", "ideal")
	geo := map[uc.DesignKind]map[uint64][]float64{}
	for _, d := range designs {
		geo[d] = map[uint64][]float64{}
	}
	// An empty workload filter must stay a no-op sweep: Sweep's
	// empty-axis fallback would otherwise inject the zero workload.
	var points []uc.Run
	if ws := cloudSuite(opt); len(ws) > 0 {
		points = uc.Sweep{
			Base:       opt.run("", "", 0),
			Workloads:  ws,
			Capacities: config.CloudSuiteSizes(),
			Designs:    designs,
		}.Points()
	}
	results, err := opt.speedupResults(opt.telemetryPoints(points))
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var sp [4]float64
		var cells, cis [4]string
		for i, d := range designs {
			r := results[at+i]
			sp[i] = r.Speedup
			cells[i] = ciCell(sp[i], r.CI)
			if r.CI != nil {
				cis[i] = f3(r.CI.HalfWidth)
			}
			geo[d][points[at].Capacity] = append(geo[d][points[at].Capacity], sp[i])
		}
		w, size := points[at].Workload, points[at].Capacity
		row := []string{w, config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3])}
		if sampled {
			row = append(row, cis[0], cis[1], cis[2], cis[3])
		}
		rows = append(rows, row)
		fmt.Printf(rowFmt, w, config.SizeLabel(size), cells[0], cells[1], cells[2], cells[3])
	}
	for _, size := range config.CloudSuiteSizes() {
		var g [4]float64
		for i, d := range designs {
			v, err := stats.GeoMean(geo[d][size])
			if err != nil {
				continue
			}
			g[i] = v
		}
		row := []string{"geomean", config.SizeLabel(size), f2(g[0]), f2(g[1]), f2(g[2]), f2(g[3])}
		if sampled {
			row = append(row, "", "", "", "")
		}
		rows = append(rows, row)
		fmt.Printf(rowFmt, "geomean", config.SizeLabel(size), f2(g[0]), f2(g[1]), f2(g[2]), f2(g[3]))
	}
	if sampled {
		sampleSummary(results)
	}
	if opt.telemetry.Enabled() {
		if err := writeEpochsCSV(opt, "fig7_epochs", results); err != nil {
			return err
		}
	}
	fmt.Println()
	return writeCSV(opt, "fig7", header, rows)
}

// fig8 reproduces the TPC-H scaling study: 1–8 GB caches.
func fig8(opt options) error {
	if !hasTPCH(opt) {
		return nil
	}
	fmt.Println("== Figure 8: TPC-H speedup, 1-8GB caches ==")
	sampled := opt.sample.Enabled()
	header := []string{"size", "alloy", "footprint", "unison", "ideal"}
	if sampled {
		header = append(header, "alloy_ci", "footprint_ci", "unison_ci", "ideal_ci")
	}
	var rows [][]string
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal}
	rowFmt := "%-8s %8s %8s %8s %8s\n"
	if sampled {
		rowFmt = "%-8s %12s %12s %12s %12s\n"
	}
	fmt.Printf(rowFmt, "size", "alloy", "footpr", "unison", "ideal")
	points := uc.Sweep{
		Base:       opt.run("tpch", "", 0),
		Capacities: config.TPCHSizes(),
		Designs:    designs,
	}.Points()
	results, err := opt.speedupResults(opt.telemetryPoints(points))
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var sp [4]float64
		var cells, cis [4]string
		for i := range designs {
			r := results[at+i]
			sp[i] = r.Speedup
			cells[i] = ciCell(sp[i], r.CI)
			if r.CI != nil {
				cis[i] = f3(r.CI.HalfWidth)
			}
		}
		size := points[at].Capacity
		row := []string{config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3])}
		if sampled {
			row = append(row, cis[0], cis[1], cis[2], cis[3])
		}
		rows = append(rows, row)
		fmt.Printf(rowFmt, config.SizeLabel(size), cells[0], cells[1], cells[2], cells[3])
	}
	if sampled {
		sampleSummary(results)
	}
	if opt.telemetry.Enabled() {
		if err := writeEpochsCSV(opt, "fig8_epochs", results); err != nil {
			return err
		}
	}
	fmt.Println()
	return writeCSV(opt, "fig8", header, rows)
}
