// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables I, II, IV, V and Figures 5–8), plus the ablations
// DESIGN.md calls out. Results are printed as aligned text tables and also
// written as CSV under -out.
//
// Usage:
//
//	experiments -exp fig6              # one experiment, full length
//	experiments -exp all -quick        # everything, shortened runs
//	experiments -exp table5 -workloads web-search,tpch
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	uc "unisoncache"
	"unisoncache/internal/config"
	"unisoncache/internal/stats"
)

type options struct {
	accesses  int
	seed      uint64
	workloads []string
	outDir    string
	jobs      int
}

// plan wraps a point list with the sweep engine's execution policy: the
// -jobs worker count and a live progress ticker on stderr.
func (o options) plan(points []uc.Run) uc.Plan {
	return uc.Plan{Points: points, Jobs: o.jobs, Progress: os.Stderr}
}

// run fills the shared fields every experiment point carries.
func (o options) run(workload string, design uc.DesignKind, capacity uint64) uc.Run {
	return uc.Run{Workload: workload, Design: design, Capacity: capacity,
		AccessesPerCore: o.accesses, Seed: o.seed}
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|table4|table5|fig5|fig6|fig7|fig8|ablation-way|ablation-singleton|energy|priorart|conflict|all")
	quick := flag.Bool("quick", false, "shortened runs (~5x faster, noisier)")
	accesses := flag.Int("accesses", 0, "accesses per core (0 = default)")
	seed := flag.Uint64("seed", 1, "workload seed")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload filter")
	out := flag.String("out", "results", "CSV output directory")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = one per CPU)")
	flag.Parse()

	opt := options{accesses: *accesses, seed: *seed, outDir: *out, jobs: *jobs}
	if opt.accesses == 0 {
		opt.accesses = 400_000
		if *quick {
			opt.accesses = 80_000
		}
	}
	if *workloadsFlag != "" {
		opt.workloads = strings.Split(*workloadsFlag, ",")
		// Fail fast, before any simulation runs: the registry knows every
		// valid name (built-in or registered).
		known := map[string]bool{}
		for _, w := range uc.Workloads() {
			known[w] = true
		}
		for _, w := range opt.workloads {
			if !known[w] {
				fatal(fmt.Errorf("unknown workload %q (have %v)", w, uc.Workloads()))
			}
		}
	} else {
		opt.workloads = uc.Workloads()
	}
	if err := os.MkdirAll(opt.outDir, 0o755); err != nil {
		fatal(err)
	}

	runners := map[string]func(options) error{
		"table1":             table1,
		"table2":             table2,
		"table4":             table4,
		"table5":             table5,
		"fig5":               fig5,
		"fig6":               fig6,
		"fig7":               fig7,
		"fig8":               fig8,
		"ablation-way":       ablationWay,
		"ablation-singleton": ablationSingleton,
		"energy":             energy,
		"priorart":           priorArt,
		"conflict":           conflictModel,
	}
	order := []string{"table1", "table2", "table4", "table5", "fig5", "fig6", "fig7", "fig8", "ablation-way", "ablation-singleton", "energy", "priorart", "conflict"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](opt); err != nil {
				fatal(err)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := run(opt); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// cloudSuite filters opt.workloads to the five CloudSuite workloads.
func cloudSuite(opt options) []string {
	var out []string
	for _, w := range opt.workloads {
		if w != "tpch" {
			out = append(out, w)
		}
	}
	return out
}

func hasTPCH(opt options) bool {
	for _, w := range opt.workloads {
		if w == "tpch" {
			return true
		}
	}
	return false
}

// writeCSV stores rows under the experiment's name.
func writeCSV(opt options, name string, header []string, rows [][]string) error {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(opt.outDir, name+".csv"), []byte(b.String()), 0o644)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// table1 prints the qualitative comparison (static, from §I Table I).
func table1(opt options) error {
	fmt.Println("== Table I: qualitative comparison (AC / FC / UC) ==")
	rows := [][]string{
		{"No SRAM tag overhead", "yes", "no", "yes"},
		{"Low hit latency", "yes", "no", "yes"},
		{"High hit rate", "no", "yes", "yes"},
		{"High effective capacity", "no", "yes", "yes"},
		{"Scalability", "yes", "no", "yes"},
	}
	fmt.Printf("%-28s %-6s %-6s %-6s\n", "Property", "AC", "FC", "UC")
	for _, r := range rows {
		fmt.Printf("%-28s %-6s %-6s %-6s\n", r[0], r[1], r[2], r[3])
	}
	fmt.Println()
	return writeCSV(opt, "table1", []string{"property", "alloy", "footprint", "unison"}, rows)
}

// table5 reproduces the predictor-accuracy table: MP for Alloy, FP for
// Footprint and both Unison page sizes, WP for Unison. 1 GB caches (8 GB
// for TPC-H), as in the paper.
func table5(opt options) error {
	fmt.Println("== Table V: predictor accuracy (1GB cache; 8GB for TPC-H) ==")
	header := []string{"workload", "ac_mp_acc", "ac_mp_overfetch", "fc_fp_acc", "fc_fp_overfetch",
		"uc960_fp_acc", "uc960_fp_overfetch", "uc960_wp_acc",
		"uc1984_fp_acc", "uc1984_fp_overfetch", "uc1984_wp_acc"}
	var rows [][]string
	fmt.Printf("%-18s %8s %8s | %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"workload", "MP.acc", "MP.ovf", "FC.acc", "FC.ovf", "U960.acc", "U960.ovf", "U960.wp", "U1984.ac", "U1984.ov", "U1984.wp")
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignUnison1984}
	var points []uc.Run
	for _, w := range opt.workloads {
		capacity := uint64(1 << 30)
		if w == "tpch" {
			capacity = 8 << 30
		}
		for _, d := range designs {
			points = append(points, opt.run(w, d, capacity))
		}
	}
	results, err := uc.ExecuteMany(opt.plan(points))
	if err != nil {
		return err
	}
	for i, w := range opt.workloads {
		acRes, fcRes := results[len(designs)*i], results[len(designs)*i+1]
		u960Res, u1984Res := results[len(designs)*i+2], results[len(designs)*i+3]

		row := []string{w,
			f1(acRes.Design.MP.Percent()), f1(acRes.Design.MPOverfetchPct),
			f1(fcRes.Design.FP.Percent()), f1(fcRes.Design.FO.Percent()),
			f1(u960Res.Design.FP.Percent()), f1(u960Res.Design.FO.Percent()), f1(u960Res.Design.WP.Percent()),
			f1(u1984Res.Design.FP.Percent()), f1(u1984Res.Design.FO.Percent()), f1(u1984Res.Design.WP.Percent()),
		}
		rows = append(rows, row)
		fmt.Printf("%-18s %8s %8s | %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
			w, row[1], row[2], row[3], row[4], row[5], row[6], row[7], row[8], row[9], row[10])
	}
	fmt.Println()
	return writeCSV(opt, "table5", header, rows)
}

// fig5 reproduces the associativity sweep: Unison miss ratio with 1, 4 and
// 32 ways at a small and a large cache size per workload.
func fig5(opt options) error {
	fmt.Println("== Figure 5: Unison Cache miss ratio vs associativity ==")
	header := []string{"workload", "size", "ways1", "ways4", "ways32"}
	var rows [][]string
	fmt.Printf("%-18s %-8s %8s %8s %8s\n", "workload", "size", "1-way", "4-way", "32-way")
	waySweep := []int{1, 4, 32}
	var points []uc.Run
	for _, w := range opt.workloads {
		sizes := []uint64{128 << 20, 1 << 30}
		if w == "tpch" {
			sizes = []uint64{1 << 30, 8 << 30}
		}
		points = append(points, uc.Sweep{
			Base:       opt.run(w, uc.DesignUnison, 0),
			Capacities: sizes,
			UnisonWays: waySweep,
		}.Points()...)
	}
	results, err := uc.ExecuteMany(opt.plan(points))
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(waySweep) {
		var miss [3]float64
		for i := range waySweep {
			miss[i] = results[at+i].MissRatioPct()
		}
		w, size := points[at].Workload, points[at].Capacity
		rows = append(rows, []string{w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2])})
		fmt.Printf("%-18s %-8s %8s %8s %8s\n", w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2]))
	}
	fmt.Println()
	return writeCSV(opt, "fig5", header, rows)
}

// fig6 reproduces the miss-ratio comparison across designs and sizes.
func fig6(opt options) error {
	fmt.Println("== Figure 6: miss ratio, Alloy vs Footprint vs Unison ==")
	header := []string{"workload", "size", "alloy", "footprint", "unison"}
	var rows [][]string
	fmt.Printf("%-18s %-8s %8s %8s %8s\n", "workload", "size", "alloy", "footpr", "unison")
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison}
	var points []uc.Run
	for _, w := range opt.workloads {
		sizes := config.CloudSuiteSizes()
		if w == "tpch" {
			sizes = config.TPCHSizes()
		}
		points = append(points, uc.Sweep{
			Base:       opt.run(w, "", 0),
			Capacities: sizes,
			Designs:    designs,
		}.Points()...)
	}
	results, err := uc.ExecuteMany(opt.plan(points))
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var miss [3]float64
		for i := range designs {
			miss[i] = results[at+i].MissRatioPct()
		}
		w, size := points[at].Workload, points[at].Capacity
		rows = append(rows, []string{w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2])})
		fmt.Printf("%-18s %-8s %8s %8s %8s\n", w, config.SizeLabel(size), f1(miss[0]), f1(miss[1]), f1(miss[2]))
	}
	fmt.Println()
	return writeCSV(opt, "fig6", header, rows)
}

// fig7 reproduces the CloudSuite performance comparison: speedup over the
// no-DRAM-cache baseline for the four designs, plus the geometric mean.
func fig7(opt options) error {
	fmt.Println("== Figure 7: speedup over no-DRAM-cache baseline ==")
	header := []string{"workload", "size", "alloy", "footprint", "unison", "ideal"}
	var rows [][]string
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal}
	fmt.Printf("%-18s %-8s %8s %8s %8s %8s\n", "workload", "size", "alloy", "footpr", "unison", "ideal")
	geo := map[uc.DesignKind]map[uint64][]float64{}
	for _, d := range designs {
		geo[d] = map[uint64][]float64{}
	}
	// An empty workload filter must stay a no-op sweep: Sweep's
	// empty-axis fallback would otherwise inject the zero workload.
	var points []uc.Run
	if ws := cloudSuite(opt); len(ws) > 0 {
		points = uc.Sweep{
			Base:       opt.run("", "", 0),
			Workloads:  ws,
			Capacities: config.CloudSuiteSizes(),
			Designs:    designs,
		}.Points()
	}
	results, err := uc.SpeedupMany(opt.plan(points))
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var sp [4]float64
		for i, d := range designs {
			sp[i] = results[at+i].Speedup
			geo[d][points[at].Capacity] = append(geo[d][points[at].Capacity], sp[i])
		}
		w, size := points[at].Workload, points[at].Capacity
		rows = append(rows, []string{w, config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3])})
		fmt.Printf("%-18s %-8s %8s %8s %8s %8s\n", w, config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3]))
	}
	for _, size := range config.CloudSuiteSizes() {
		var g [4]float64
		for i, d := range designs {
			v, err := stats.GeoMean(geo[d][size])
			if err != nil {
				continue
			}
			g[i] = v
		}
		rows = append(rows, []string{"geomean", config.SizeLabel(size), f2(g[0]), f2(g[1]), f2(g[2]), f2(g[3])})
		fmt.Printf("%-18s %-8s %8s %8s %8s %8s\n", "geomean", config.SizeLabel(size), f2(g[0]), f2(g[1]), f2(g[2]), f2(g[3]))
	}
	fmt.Println()
	return writeCSV(opt, "fig7", header, rows)
}

// fig8 reproduces the TPC-H scaling study: 1–8 GB caches.
func fig8(opt options) error {
	if !hasTPCH(opt) {
		return nil
	}
	fmt.Println("== Figure 8: TPC-H speedup, 1-8GB caches ==")
	header := []string{"size", "alloy", "footprint", "unison", "ideal"}
	var rows [][]string
	designs := []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal}
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "size", "alloy", "footpr", "unison", "ideal")
	points := uc.Sweep{
		Base:       opt.run("tpch", "", 0),
		Capacities: config.TPCHSizes(),
		Designs:    designs,
	}.Points()
	results, err := uc.SpeedupMany(opt.plan(points))
	if err != nil {
		return err
	}
	for at := 0; at < len(results); at += len(designs) {
		var sp [4]float64
		for i := range designs {
			sp[i] = results[at+i].Speedup
		}
		size := points[at].Capacity
		rows = append(rows, []string{config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3])})
		fmt.Printf("%-8s %8s %8s %8s %8s\n", config.SizeLabel(size), f2(sp[0]), f2(sp[1]), f2(sp[2]), f2(sp[3]))
	}
	fmt.Println()
	return writeCSV(opt, "fig8", header, rows)
}
