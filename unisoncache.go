// Package unisoncache is a from-scratch reproduction of "Unison Cache: A
// Scalable and Effective Die-Stacked DRAM Cache" (Jevdjic, Loh, Kaynak,
// Falsafi — MICRO 2014) as a standalone Go simulation library.
//
// It bundles a command-level DRAM timing model, an SRAM cache hierarchy, a
// synthetic server-workload generator, and four die-stacked DRAM cache
// designs — Unison Cache (the paper's contribution), Alloy Cache, Footprint
// Cache and an ideal latency-optimized cache — behind one entry point:
// configure a Run, call Execute, read the Result.
//
//	res, err := unisoncache.Execute(unisoncache.Run{
//	    Workload: "web-search",
//	    Design:   unisoncache.DesignUnison,
//	    Capacity: 1 << 30,
//	})
//
// Whole evaluations run through the sweep engine: declare a Plan (or
// expand a Sweep's cross product) and call ExecuteMany or SpeedupMany to
// fan the points out over a worker pool with shared baselines memoized.
//
// Everything is deterministic for a fixed Seed — concurrent plans return
// results bit-identical to a serial loop. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
package unisoncache

import (
	"fmt"

	"unisoncache/internal/config"
	"unisoncache/internal/core"
	"unisoncache/internal/dram"
	"unisoncache/internal/dramcache"
	"unisoncache/internal/mem"
	"unisoncache/internal/sim"
	"unisoncache/internal/telemetry"
)

// DesignKind selects the DRAM cache organization under test.
type DesignKind string

// The evaluated designs (§IV-C plus the two Figure 7 references).
const (
	// DesignUnison is the paper's contribution: 960 B pages, 4-way,
	// in-DRAM tags, way + footprint prediction.
	DesignUnison DesignKind = "unison"
	// DesignUnison1984 is the 1984 B-page design point of Table V.
	DesignUnison1984 DesignKind = "unison-1984"
	// DesignAlloy is the state-of-the-art block-based baseline [24].
	DesignAlloy DesignKind = "alloy"
	// DesignFootprint is the state-of-the-art page-based baseline [10].
	DesignFootprint DesignKind = "footprint"
	// DesignLohHill is the earlier block-based design of Loh & Hill [20]:
	// row-as-set tags in DRAM with serialized tag-then-data lookups and a
	// MissMap (discussed in §II-A as Alloy Cache's predecessor).
	DesignLohHill DesignKind = "lohhill"
	// DesignIdeal never misses and has no tag overhead (die-stacked main
	// memory).
	DesignIdeal DesignKind = "ideal"
	// DesignNone is the no-DRAM-cache baseline every speedup is relative
	// to.
	DesignNone DesignKind = "none"
)

// Designs lists all selectable designs.
func Designs() []DesignKind {
	return []DesignKind{DesignUnison, DesignUnison1984, DesignAlloy, DesignFootprint, DesignLohHill, DesignIdeal, DesignNone}
}

// Run configures one simulation.
//
// Run is part of the service wire format: the JSON field names below are
// stable, decoding is strict (see UnmarshalJSON), and a fully-defaulted
// Run canonically hashes to its content-addressed cache key via RunKey.
type Run struct {
	// Workload is one of Workloads() — a built-in name or one added with
	// RegisterWorkload. When replaying a trace (TracePath set) it may be
	// left empty to take the capture's workload name.
	Workload string `json:"Workload"`
	// Design is the DRAM cache organization under test.
	Design DesignKind `json:"Design"`
	// Capacity is the stacked-DRAM cache capacity in bytes.
	Capacity uint64 `json:"Capacity"`
	// AccessesPerCore is the trace length per core, warmup included
	// (default 400k; the first WarmupFrac is discarded).
	AccessesPerCore int `json:"AccessesPerCore"`
	// Seed makes runs reproducible (default 1).
	Seed uint64 `json:"Seed"`
	// Cores overrides the 16-core default.
	Cores int `json:"Cores"`
	// ScaleDivisor applies the proportional-scaling methodology: the
	// simulated cache capacity and the workload working set are both
	// divided by this factor, preserving every capacity-to-working-set
	// ratio while making multi-gigabyte configurations tractable without
	// the paper's 30-billion-instruction traces. The default (0) picks
	// the divisor automatically so the simulated cache is at most 32 MB —
	// small enough to fill, evict and reach predictor steady state within
	// a few hundred thousand accesses per core. Latency-relevant
	// parameters — the Footprint Cache tag-array latency (Table IV) and
	// the way-predictor sizing — remain keyed to the *labeled* Capacity,
	// because the real hardware structures scale with it. Set to 1 for
	// full-scale simulation (needs very long traces), or -1 for the
	// automatic choice spelled explicitly.
	ScaleDivisor int `json:"ScaleDivisor"`

	// TracePath, when non-empty, replays a .utrace capture (written by
	// RecordTrace or tracegen -record) instead of generating the synthetic
	// stream live. Zero-valued Workload, Seed, Cores and AccessesPerCore
	// take the capture header's values; explicitly set ones must match the
	// header, except AccessesPerCore, which may replay a prefix of the
	// capture. The effective ScaleDivisor must equal the capture's (the
	// frozen events embed the capture-time scaled working set), so keep
	// Capacity/ScaleDivisor as recorded; design knobs (Design, ways,
	// ablations) apply freely, so one capture serves a whole design sweep.
	TracePath string `json:"TracePath"`

	// Sampling, when non-zero, switches the run to SMARTS-style sampled
	// simulation: functional warmup, short detailed measurement windows
	// with a confidence interval over their UIPC samples (Result.CI),
	// and adaptive early termination once the spec's CI target holds.
	// The zero value simulates every event, exactly as before. Replay
	// runs sample fine — the schedule only ever replays a prefix of the
	// capture.
	Sampling SampleSpec `json:"Sampling,omitzero"`

	// Segments, when >= 2, executes the run time-parallel: the replay is
	// split into that many segments, simulated concurrently from
	// checkpointed start states and merged with a deterministic fix-up
	// pass (DESIGN.md §11). Results are bit-identical to the serial run —
	// the first execution of a configuration simulates serially while
	// writing the segment checkpoints, and repeat executions (the sweep
	// refinement pattern, result-cache misses on design variants) run all
	// segments concurrently. 0 and 1 both mean serial. A sampled run
	// (Sampling set) instead uses the segment store's warm-boundary
	// snapshot to skip its functional warmup when one is available.
	Segments int `json:"Segments"`

	// Telemetry, when non-zero, records an epoch-sliced counter timeline
	// over the measured region (Result.Timeline): per-core and per-design
	// statistic deltas every EpochEvents retired events per core.
	// Recording is barrier-free, so the measured Results are bit-identical
	// with telemetry on or off, and it composes with Segments. Mutually
	// exclusive with Sampling.
	Telemetry TelemetrySpec `json:"Telemetry,omitzero"`

	// UnisonWays overrides Unison Cache's 4-way associativity (Figure 5
	// sweeps 1/4/32).
	UnisonWays int `json:"UnisonWays"`
	// Ablations (Unison only).
	DisableWayPrediction bool `json:"DisableWayPrediction"`
	SerializeTagData     bool `json:"SerializeTagData"`
	DisableSingleton     bool `json:"DisableSingleton"`

	// FCWays overrides Footprint Cache's 32-way associativity.
	FCWays int `json:"FCWays"`
}

// withDefaults fills zero fields. Trace replays leave the stream-shaped
// fields (workload, seed, cores, accesses) zero so Execute can fill them
// from the capture's header instead.
func (r Run) withDefaults() Run {
	if r.TracePath == "" {
		if r.AccessesPerCore == 0 {
			r.AccessesPerCore = 400_000
		}
		if r.Seed == 0 {
			r.Seed = 1
		}
		if r.Cores == 0 {
			r.Cores = 16
		}
	}
	if r.UnisonWays == 0 {
		r.UnisonWays = 4
	}
	if r.FCWays == 0 {
		r.FCWays = 32
	}
	if r.ScaleDivisor == 0 || r.ScaleDivisor == -1 {
		r.ScaleDivisor = AutoScaleDivisor(r.Capacity)
	}
	if r.Sampling.Enabled() {
		r.Sampling = r.Sampling.withDefaults()
	}
	if r.Telemetry.Enabled() {
		r.Telemetry = r.Telemetry.withDefaults()
	}
	return r
}

// AutoScaleDivisor returns the proportional-scaling divisor a Run with
// this labeled capacity gets by default (ScaleDivisor 0 or -1): the
// divisor that maps the capacity to at most a 32 MB simulated cache, with
// a floor of 16 so even the smallest design point stays proportionally
// scaled. The 32 MB cap is what lets a run cycle the cache's full
// capacity several times within a few hundred thousand accesses per core
// — the predictor-training steady state the paper reaches with
// 30-billion-instruction traces. Exported so out-of-band tooling (the
// bench harness) can reproduce the exact cell a defaulted Run simulates.
func AutoScaleDivisor(capacity uint64) int {
	d := 16
	for capacity/uint64(d) > 32<<20 {
		d *= 2
	}
	return d
}

// Result is one simulation's measured output.
type Result struct {
	sim.Results
	// Run echoes the (defaulted) configuration.
	Run Run
	// CI carries the confidence-interval statistics of a sampled run
	// (Run.Sampling non-zero) and is nil for full runs. When set, UIPC
	// is the sampled estimate over the measurement windows; all other
	// fields cover the whole measured region, gaps included.
	CI *SampleStats `json:",omitempty"`
	// Timeline carries the epoch-sliced counter timeline of a run with
	// telemetry enabled (Run.Telemetry non-zero) and is nil otherwise.
	// Every other Result field is bit-identical with telemetry on or off.
	Timeline *Timeline `json:",omitempty"`
}

// MissRatioPct is the DRAM cache demand-read miss ratio in percent.
func (r Result) MissRatioPct() float64 { return r.Design.MissRatioPct() }

// Execute runs one simulation to completion. The event streams come from
// the workload's synthetic generator, or — when Run.TracePath is set — from
// a .utrace capture, which reproduces the recorded run bit-identically.
// With Run.Segments >= 2 the replay executes time-parallel (see Segments);
// the Results are bit-identical either way.
func Execute(r Run) (Result, error) {
	return execute(r, nil)
}

// execute is Execute's dispatch with an optional live epoch observer
// (ExecuteObserved).
func execute(r Run, onEpoch func(TimelineEpoch)) (Result, error) {
	r = r.withDefaults()
	if r.ScaleDivisor < 1 {
		return Result{}, fmt.Errorf("unisoncache: ScaleDivisor must be >= 1, got %d", r.ScaleDivisor)
	}
	if r.Segments < 0 || r.Segments > maxSegments {
		return Result{}, fmt.Errorf("unisoncache: Segments must be in [0, %d], got %d", maxSegments, r.Segments)
	}
	if r.Telemetry.Enabled() {
		if r.Sampling.Enabled() {
			return Result{}, fmt.Errorf("unisoncache: Telemetry and Sampling are mutually exclusive (epoch slicing needs every event simulated)")
		}
		if err := r.Telemetry.internal().Validate(); err != nil {
			return Result{}, fmt.Errorf("unisoncache: %w", err)
		}
	}
	if r.Sampling.Enabled() {
		if r.Segments > 1 {
			if res, ok := executeSampledWarm(r); ok {
				return res, nil
			}
		}
		machine, r, err := newMachine(r)
		if err != nil {
			return Result{}, err
		}
		return executeSampled(machine, r)
	}
	if r.Segments > 1 {
		return executeSegmented(r, onEpoch)
	}
	machine, r, err := newMachine(r)
	if err != nil {
		return Result{}, err
	}
	if !r.Telemetry.Enabled() {
		return Result{Results: machine.Run(r.AccessesPerCore), Run: r}, nil
	}
	spec := r.Telemetry.internal()
	machine.SetTelemetry(spec, emitFunc(onEpoch))
	res := Result{Results: machine.Run(r.AccessesPerCore), Run: r}
	tl, err := timelineFrom(machine.TelemetryRecorder(), spec)
	if err != nil {
		return Result{}, err
	}
	res.Timeline = tl
	return res, nil
}

// emitFunc adapts a public epoch observer to the recorder's callback (nil
// stays nil, keeping live emission off).
func emitFunc(onEpoch func(TimelineEpoch)) func(telemetry.Epoch) {
	if onEpoch == nil {
		return nil
	}
	return func(e telemetry.Epoch) { onEpoch(fromEpoch(e)) }
}

// newMachine builds the complete simulated system a defaulted Run
// describes — event sources, DRAM controllers, the design under test and
// the core/cache machine — and returns the Run with trace-header
// reconciliation applied. Machines for the same Run are interchangeable:
// construction is deterministic, which is what lets segment workers build
// private machines and restore checkpoints into them.
func newMachine(r Run) (*sim.Machine, Run, error) {
	r, sources, err := r.sources()
	if err != nil {
		return nil, Run{}, err
	}
	stacked, err := dram.NewController(dram.StackedConfig())
	if err != nil {
		return nil, Run{}, err
	}
	offchip, err := dram.NewController(dram.OffchipConfig())
	if err != nil {
		return nil, Run{}, err
	}
	design, err := buildDesign(r, stacked, offchip)
	if err != nil {
		return nil, Run{}, err
	}
	cfg := sim.Default()
	cfg.Cores = r.Cores
	// The proportional-scaling methodology shrinks the L2 with the same
	// divisor (floor 256 KB) so the L2:DRAM-cache capacity ratio — which
	// controls how much re-reference traffic the DRAM cache actually sees
	// — stays faithful to the full-scale system.
	if scaledL2 := cfg.L2.SizeBytes / r.ScaleDivisor; scaledL2 >= 128<<10 {
		cfg.L2.SizeBytes = scaledL2
	} else {
		cfg.L2.SizeBytes = 128 << 10
	}
	machine, err := sim.New(cfg, sources, design, stacked, offchip)
	if err != nil {
		return nil, Run{}, err
	}
	if SerialDesignAccess {
		machine.SetBatching(false)
	}
	return machine, r, nil
}

// SerialDesignAccess forces every machine this package builds onto the
// one-Access-per-request reference path instead of the batched
// AccessBatch drain (DESIGN.md §12). Batching is a pure performance
// transform — results are bit-identical either way — so this is a
// process-level engine toggle for A/B verification (cmd/experiments
// -serial-access), deliberately not a Run field: it never reaches
// RunKey canonicalization or the service cache.
var SerialDesignAccess bool

// buildDesign constructs the requested design over the DRAM parts. The
// simulated structures are sized by the scaled capacity; latency-relevant
// parameters (FC tag latency, way-predictor width) use the labeled one.
func buildDesign(r Run, stacked, offchip *dram.Controller) (dramcache.Design, error) {
	simCap := r.Capacity / uint64(r.ScaleDivisor)
	if simCap < mem.RowBytes {
		simCap = mem.RowBytes
	}
	switch r.Design {
	case DesignUnison, DesignUnison1984:
		pageBlocks := 15
		if r.Design == DesignUnison1984 {
			pageBlocks = 31
		}
		return core.New(core.Config{
			CapacityBytes:        simCap,
			LabelBytes:           r.Capacity,
			PageBlocks:           pageBlocks,
			Ways:                 r.UnisonWays,
			DisableWayPrediction: r.DisableWayPrediction,
			SerializeTagData:     r.SerializeTagData,
			DisableSingleton:     r.DisableSingleton,
		}, stacked, offchip)
	case DesignAlloy:
		return dramcache.NewAlloy(simCap, r.Cores, stacked, offchip)
	case DesignFootprint:
		return dramcache.NewFootprint(dramcache.FCConfig{
			CapacityBytes: simCap,
			Ways:          r.FCWays,
			TagLatency:    config.FCTagLatency(r.Capacity),
		}, stacked, offchip)
	case DesignLohHill:
		return dramcache.NewLohHill(simCap, stacked, offchip)
	case DesignIdeal:
		return dramcache.NewIdeal(stacked), nil
	case DesignNone:
		return dramcache.NewNone(offchip), nil
	default:
		return nil, fmt.Errorf("unisoncache: unknown design %q", r.Design)
	}
}

// Speedup runs the design and the no-cache baseline on identical traces and
// returns design UIPC / baseline UIPC — the Figure 7/8 metric — along with
// both results. The two runs execute concurrently; for whole sweeps use
// SpeedupMany, which also memoizes baselines across points.
func Speedup(r Run) (speedup float64, design, baseline Result, err error) {
	res, err := SpeedupMany(Plan{Points: []Run{r}})
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	return res[0].Speedup, res[0].Design, res[0].Baseline, nil
}
