package unisoncache

import (
	"encoding/json"
	"reflect"
	"testing"
)

// telemetryRun is a small-but-real configuration: big enough to cross
// several epoch boundaries per core, small enough to replay many designs.
func telemetryRun(design DesignKind, workload string) Run {
	return Run{
		Workload:        workload,
		Design:          design,
		Capacity:        1 << 30,
		AccessesPerCore: 20_000,
		Cores:           4,
		Telemetry:       TelemetrySpec{EpochEvents: 1_000},
	}
}

// TestTelemetryEpochSumsMatchResult is the conservation wall: the epochs
// tile the measured region, so summing any counter over them must
// reproduce the corresponding whole-run Result counter exactly — across
// every design (each exercises a different subset of the counters) and
// two workloads.
func TestTelemetryEpochSumsMatchResult(t *testing.T) {
	designs := []DesignKind{DesignUnison, DesignAlloy, DesignFootprint, DesignIdeal, DesignNone}
	workloads := []string{"web-search", "data-serving"}
	for _, d := range designs {
		for _, w := range workloads {
			t.Run(string(d)+"/"+w, func(t *testing.T) {
				res, err := Execute(telemetryRun(d, w))
				if err != nil {
					t.Fatal(err)
				}
				if res.Timeline == nil {
					t.Fatal("telemetry enabled but Result.Timeline is nil")
				}
				checkTimelineSums(t, res)
			})
		}
	}
}

func checkTimelineSums(t *testing.T, res Result) {
	t.Helper()
	tl := res.Timeline
	meas := res.Run.AccessesPerCore - int(float64(res.Run.AccessesPerCore)*2.0/3.0)
	if len(tl.Epochs) == 0 {
		t.Fatal("empty timeline")
	}
	// The epochs tile [0, meas) contiguously.
	prevEnd := 0
	for i, e := range tl.Epochs {
		if e.Index != i {
			t.Errorf("epoch %d carries index %d", i, e.Index)
		}
		if e.StartEvents != prevEnd {
			t.Errorf("epoch %d starts at %d, want %d", i, e.StartEvents, prevEnd)
		}
		if e.EndEvents <= e.StartEvents {
			t.Errorf("epoch %d is empty: [%d, %d)", i, e.StartEvents, e.EndEvents)
		}
		prevEnd = e.EndEvents
	}
	if prevEnd != meas {
		t.Errorf("timeline ends at %d, measured region is %d events per core", prevEnd, meas)
	}

	type sums struct {
		instr, reads, readHits, writes              uint64
		wpHits, wpLookups                           uint64
		trigger, underpred, singleton               uint64
		offRead, offWrite, stackedBusy, offchipBusy uint64
		l2Accesses, l2Hits                          uint64
		perCoreInstr, perCoreCycles                 []uint64
	}
	s := sums{
		perCoreInstr:  make([]uint64, res.Run.Cores),
		perCoreCycles: make([]uint64, res.Run.Cores),
	}
	for _, e := range tl.Epochs {
		s.instr += e.Instructions
		s.reads += e.Reads
		s.readHits += e.ReadHits
		s.writes += e.Writes
		s.wpHits += e.WayPredHits
		s.wpLookups += e.WayPredLookups
		s.trigger += e.TriggerMisses
		s.underpred += e.UnderpredMisses
		s.singleton += e.SingletonSkips
		s.offRead += e.OffchipReadBytes
		s.offWrite += e.OffchipWriteBytes
		s.stackedBusy += e.StackedBusyCycles
		s.offchipBusy += e.OffchipBusyCycles
		s.l2Accesses += e.L2Accesses
		s.l2Hits += e.L2Hits
		if len(e.PerCore) != res.Run.Cores {
			t.Fatalf("epoch %d has %d per-core rows, want %d", e.Index, len(e.PerCore), res.Run.Cores)
		}
		for c, d := range e.PerCore {
			s.perCoreInstr[c] += d.Instructions
			s.perCoreCycles[c] += d.Cycles
		}
	}

	if s.instr != res.Instructions {
		t.Errorf("Σ epoch Instructions = %d, Result.Instructions = %d", s.instr, res.Instructions)
	}
	var maxCycles, sumInstr uint64
	for c := range s.perCoreCycles {
		sumInstr += s.perCoreInstr[c]
		if s.perCoreCycles[c] > maxCycles {
			maxCycles = s.perCoreCycles[c]
		}
	}
	if sumInstr != res.Instructions {
		t.Errorf("Σ per-core epoch instructions = %d, Result.Instructions = %d", sumInstr, res.Instructions)
	}
	if maxCycles != res.Cycles {
		t.Errorf("max_c Σ epoch cycles = %d, Result.Cycles = %d", maxCycles, res.Cycles)
	}
	if s.reads != res.Design.Reads || s.readHits != res.Design.ReadHits || s.writes != res.Design.Writes {
		t.Errorf("design sums (reads %d hits %d writes %d) != Result (%d %d %d)",
			s.reads, s.readHits, s.writes, res.Design.Reads, res.Design.ReadHits, res.Design.Writes)
	}
	if s.trigger != res.Design.TriggerMisses || s.underpred != res.Design.UnderpredMisses || s.singleton != res.Design.SingletonSkips {
		t.Errorf("miss-taxonomy sums (%d %d %d) != Result (%d %d %d)",
			s.trigger, s.underpred, s.singleton,
			res.Design.TriggerMisses, res.Design.UnderpredMisses, res.Design.SingletonSkips)
	}
	if s.offRead != res.Design.OffchipReadBytes || s.offWrite != res.Design.OffchipWriteBytes {
		t.Errorf("off-chip traffic sums (%d %d) != Result (%d %d)",
			s.offRead, s.offWrite, res.Design.OffchipReadBytes, res.Design.OffchipWriteBytes)
	}
	if wp := res.Design.WP; wp != nil {
		if s.wpHits != wp.Num || s.wpLookups != wp.Den {
			t.Errorf("way-predictor sums (%d/%d) != Result WP (%d/%d)", s.wpHits, s.wpLookups, wp.Num, wp.Den)
		}
	} else if s.wpHits != 0 || s.wpLookups != 0 {
		t.Errorf("design without way predictor recorded WP activity (%d/%d)", s.wpHits, s.wpLookups)
	}
	if s.stackedBusy != res.Stacked.BusBusyCPU || s.offchipBusy != res.Offchip.BusBusyCPU {
		t.Errorf("controller occupancy sums (%d %d) != Result (%d %d)",
			s.stackedBusy, s.offchipBusy, res.Stacked.BusBusyCPU, res.Offchip.BusBusyCPU)
	}
	if s.l2Accesses != res.L2.Accesses || s.l2Hits != res.L2.Hits {
		t.Errorf("L2 sums (%d %d) != Result (%d %d)", s.l2Accesses, s.l2Hits, res.L2.Accesses, res.L2.Hits)
	}
}

// TestTelemetryOnOffBitIdentity: recording must not perturb the replay.
// With the timeline and the echoed spec stripped, the telemetry run's
// Result must marshal byte-identically to the plain run's.
func TestTelemetryOnOffBitIdentity(t *testing.T) {
	for _, d := range []DesignKind{DesignUnison, DesignFootprint} {
		t.Run(string(d), func(t *testing.T) {
			r := telemetryRun(d, "web-search")
			on, err := Execute(r)
			if err != nil {
				t.Fatal(err)
			}
			r.Telemetry = TelemetrySpec{}
			off, err := Execute(r)
			if err != nil {
				t.Fatal(err)
			}
			on.Timeline = nil
			on.Run.Telemetry = TelemetrySpec{}
			onJSON, _ := json.MarshalIndent(on, "", "  ")
			offJSON, _ := json.MarshalIndent(off, "", "  ")
			if string(onJSON) != string(offJSON) {
				t.Errorf("telemetry perturbed the measured Result:\non:  %s\noff: %s", onJSON, offJSON)
			}
		})
	}
}

// TestTelemetrySegmentedMatchesSerial: epoch timelines must compose with
// time-parallel replay — the serial recording, the first segmented
// execution (serial-with-save), and the repeat (parallel from
// checkpoints, merged across segment recorders) must all produce the
// identical timeline. Live observation must stream those same epochs.
func TestTelemetrySegmentedMatchesSerial(t *testing.T) {
	r := telemetryRun(DesignUnison, "web-search")
	r.Seed = 777 // private snapshot-store key: the first segmented run below must save serially

	var live []TimelineEpoch
	serial, err := ExecuteObserved(r, func(e TimelineEpoch) { live = append(live, e) })
	if err != nil {
		t.Fatal(err)
	}
	if serial.Timeline == nil || len(serial.Timeline.Epochs) == 0 {
		t.Fatal("serial run recorded no timeline")
	}
	if !reflect.DeepEqual(live, serial.Timeline.Epochs) {
		t.Error("live-streamed epochs differ from the assembled timeline")
	}

	r.Segments = 4
	saved, err := Execute(r) // no snapshots yet: serial-with-save
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Execute(r) // snapshots present: parallel + merge
	if err != nil {
		t.Fatal(err)
	}
	want := timelineJSON(t, serial.Timeline)
	if got := timelineJSON(t, saved.Timeline); got != want {
		t.Errorf("serial-with-save timeline diverged:\n%s\nwant:\n%s", got, want)
	}
	if got := timelineJSON(t, parallel.Timeline); got != want {
		t.Errorf("parallel merged timeline diverged:\n%s\nwant:\n%s", got, want)
	}
}

func timelineJSON(t *testing.T, tl *Timeline) string {
	t.Helper()
	if tl == nil {
		t.Fatal("nil timeline")
	}
	b, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTelemetryValidation pins the spec's error surface: sampling and
// telemetry are mutually exclusive, and a negative epoch length is
// rejected rather than defaulted.
func TestTelemetryValidation(t *testing.T) {
	r := telemetryRun(DesignUnison, "web-search")
	r.Sampling = DefaultSampleSpec()
	if _, err := Execute(r); err == nil {
		t.Error("Telemetry+Sampling accepted, want error")
	}
	r = telemetryRun(DesignUnison, "web-search")
	r.Telemetry = TelemetrySpec{EpochEvents: -5}
	if _, err := Execute(r); err == nil {
		t.Error("negative EpochEvents accepted, want error")
	}
}

// TestTelemetryDefaults: an enabled spec canonicalizes through the
// defaults, and the epoch length is echoed on the timeline.
func TestTelemetryDefaults(t *testing.T) {
	if got := DefaultTelemetrySpec().EpochEvents; got != DefaultEpochEvents {
		t.Errorf("DefaultTelemetrySpec().EpochEvents = %d, want %d", got, DefaultEpochEvents)
	}
	r := telemetryRun(DesignNone, "web-search")
	res, err := Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Telemetry.EpochEvents != 1_000 {
		t.Errorf("echoed EpochEvents = %d, want 1000", res.Run.Telemetry.EpochEvents)
	}
	if res.Timeline.EpochEvents != 1_000 {
		t.Errorf("Timeline.EpochEvents = %d, want 1000", res.Timeline.EpochEvents)
	}
}
