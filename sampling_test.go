package unisoncache_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	uc "unisoncache"
)

func TestParseSampleSpec(t *testing.T) {
	s, err := uc.ParseSampleSpec("interval=500,gap=250,conf=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Enabled() {
		t.Fatal("parsed spec must be enabled")
	}
	if s.IntervalEvents != 500 || s.GapEvents != 250 || s.Confidence != 0.9 {
		t.Errorf("unexpected spec: %+v", s)
	}
	// "on" selects the defaults — and must come back enabled even though
	// the raw parse is the zero spec.
	on, err := uc.ParseSampleSpec("on")
	if err != nil {
		t.Fatal(err)
	}
	if !on.Enabled() || on != uc.DefaultSampleSpec() {
		t.Errorf("ParseSampleSpec(on) = %+v, want DefaultSampleSpec", on)
	}
	if _, err := uc.ParseSampleSpec("bogus=1"); err == nil {
		t.Error("bad spec accepted")
	}
	if (uc.SampleSpec{}).Enabled() {
		t.Error("zero spec must be disabled")
	}
}

// sampleRun is the shared small sampled configuration: big enough for
// the default schedule, small enough to keep the wall fast.
func sampleRun(workload string, design uc.DesignKind) uc.Run {
	return uc.Run{
		Workload:        workload,
		Design:          design,
		Capacity:        256 << 20,
		Cores:           4,
		AccessesPerCore: 40_000,
		Seed:            1,
		Sampling:        uc.SampleSpec{IntervalEvents: 500, GapEvents: 1500, MinIntervals: 4},
	}
}

func TestExecuteSampled(t *testing.T) {
	res, err := uc.Execute(sampleRun("web-search", uc.DesignUnison))
	if err != nil {
		t.Fatal(err)
	}
	ci := res.CI
	if ci == nil {
		t.Fatal("sampled run returned no CI")
	}
	if ci.UIPC != res.UIPC {
		t.Errorf("CI.UIPC %v != Result.UIPC %v", ci.UIPC, res.UIPC)
	}
	if ci.Intervals() < 4 {
		t.Errorf("measured %d windows, want >= MinIntervals", ci.Intervals())
	}
	if ci.Confidence != 0.95 {
		t.Errorf("Confidence = %v, want the 0.95 default", ci.Confidence)
	}
	if ci.HalfWidth <= 0 {
		t.Errorf("HalfWidth = %v, want > 0 on a live workload", ci.HalfWidth)
	}
	wantDetailed := uint64(ci.Intervals()) * 500 * 4
	if ci.DetailedEvents != wantDetailed {
		t.Errorf("DetailedEvents = %d, want %d", ci.DetailedEvents, wantDetailed)
	}
	if ci.FullRunEvents != 40_000*4 {
		t.Errorf("FullRunEvents = %d, want %d", ci.FullRunEvents, 40_000*4)
	}
	if ci.SimulatedEvents > ci.FullRunEvents {
		t.Errorf("SimulatedEvents %d exceed the budget %d", ci.SimulatedEvents, ci.FullRunEvents)
	}
	if ci.DetailedEvents >= ci.SimulatedEvents {
		t.Errorf("DetailedEvents %d not below SimulatedEvents %d (functional warmup missing?)", ci.DetailedEvents, ci.SimulatedEvents)
	}
	for _, w := range ci.Windows {
		if len(w.PerCore) != 4 || w.Instructions == 0 {
			t.Fatalf("malformed window %+v", w)
		}
	}
	// The echoed Run carries the defaulted spec.
	if res.Run.Sampling.Confidence != 0.95 || res.Run.Sampling.TargetRelCI != 0.03 {
		t.Errorf("echoed spec not defaulted: %+v", res.Run.Sampling)
	}
}

// TestExecuteSampledDeterministic pins bit-identical sampled Results for
// a fixed spec and seed — including the window list and the early-stop
// outcome.
func TestExecuteSampledDeterministic(t *testing.T) {
	a, err := uc.Execute(sampleRun("data-serving", uc.DesignUnison))
	if err != nil {
		t.Fatal(err)
	}
	b, err := uc.Execute(sampleRun("data-serving", uc.DesignUnison))
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("sampled runs diverged:\n%s\n%s", ja, jb)
	}
}

// TestFullRunJSONUntouched: with sampling off, a Result's JSON must carry
// neither the Sampling spec nor a CI block — byte-identical output to the
// pre-sampling schema, which is also what keeps the golden wall's
// committed file valid.
func TestFullRunJSONUntouched(t *testing.T) {
	r := sampleRun("web-search", uc.DesignUnison)
	r.Sampling = uc.SampleSpec{}
	res, err := uc.Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.CI != nil {
		t.Fatal("full run carries a CI")
	}
	b, _ := json.Marshal(res)
	for _, field := range []string{"Sampling", "\"CI\""} {
		if strings.Contains(string(b), field) {
			t.Errorf("full-run JSON contains %s:\n%s", field, b)
		}
	}
}

// TestSampledEarlyStop: a loose target stops the run before the window
// budget and skips the unsimulated tail.
func TestSampledEarlyStop(t *testing.T) {
	r := sampleRun("web-search", uc.DesignNone)
	r.Sampling.TargetRelCI = 0.5
	res, err := uc.Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CI.Converged {
		t.Fatalf("±50%% target did not converge (relCI %v after %d windows)", res.CI.RelHalfWidth(), res.CI.Intervals())
	}
	if res.CI.Intervals() != 4 {
		t.Errorf("converged at %d windows, want MinIntervals=4", res.CI.Intervals())
	}
	if res.CI.SimulatedEvents >= res.CI.FullRunEvents {
		t.Errorf("early stop saved nothing: simulated %d of %d", res.CI.SimulatedEvents, res.CI.FullRunEvents)
	}
}

// TestSpeedupManySampledCI: sampled plan points come back with matched-
// pair CIs, and plan order and worker count leave results bit-identical.
func TestSpeedupManySampledCI(t *testing.T) {
	points := []uc.Run{
		sampleRun("web-search", uc.DesignUnison),
		sampleRun("web-search", uc.DesignAlloy),
	}
	serial, err := uc.SpeedupMany(uc.Plan{Points: points, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := uc.SpeedupMany(uc.Plan{Points: points, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sampled sweep results depend on worker count")
	}
	for i, r := range serial {
		if r.CI == nil {
			t.Fatalf("point %d: no speedup CI", i)
		}
		if r.CI.Pairs == 0 || r.CI.HalfWidth <= 0 {
			t.Errorf("point %d: degenerate CI %+v", i, r.CI)
		}
		if r.CI.Confidence != 0.95 {
			t.Errorf("point %d: confidence %v", i, r.CI.Confidence)
		}
		// The matched-pair center and the ratio of sampled UIPCs must
		// agree to well within the interval.
		if diff := r.CI.Speedup - r.Speedup; diff > r.CI.HalfWidth || -diff > r.CI.HalfWidth {
			t.Errorf("point %d: pair center %v vs UIPC ratio %v beyond half-width %v",
				i, r.CI.Speedup, r.Speedup, r.CI.HalfWidth)
		}
	}
	// A full (unsampled) plan must not grow CIs.
	full := points
	for i := range full {
		full[i].Sampling = uc.SampleSpec{}
	}
	plain, err := uc.SpeedupMany(uc.Plan{Points: full, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].CI != nil {
		t.Error("unsampled plan points carry a speedup CI")
	}
}

// TestSweepSampledAcceptance is the PR's headline criterion on a reduced
// fig7 cell set: for every point, the sampled 95% CI must contain the
// full-run speedup, and the sampled runs must report at least 3x fewer
// detailed events than the full runs simulate.
func TestSweepSampledAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full and sampled sweeps; skipped in -short")
	}
	var points []uc.Run
	for _, w := range []string{"web-search", "data-serving"} {
		for _, d := range []uc.DesignKind{uc.DesignUnison, uc.DesignAlloy} {
			points = append(points, uc.Run{Workload: w, Design: d, Capacity: 1 << 30,
				AccessesPerCore: 80_000, Seed: 1})
		}
	}
	full, err := uc.SpeedupMany(uc.Plan{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := uc.SweepSampled(uc.Plan{Points: points}, uc.SampleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var detailed, fullEvents uint64
	for i, p := range points {
		want := full[i].Speedup
		ci := sampled[i].CI
		if ci == nil {
			t.Fatalf("%s/%s: no CI", p.Workload, p.Design)
		}
		if want < ci.Low() || want > ci.High() {
			t.Errorf("%s/%s: full-run speedup %.4f outside sampled CI [%.4f, %.4f]",
				p.Workload, p.Design, want, ci.Low(), ci.High())
		}
		d := sampled[i].Design.CI
		detailed += d.DetailedEvents
		fullEvents += d.FullRunEvents
	}
	if detailed*3 > fullEvents {
		t.Errorf("sampled sweep measured %d detailed events of %d full-run events — less than the required 3x reduction",
			detailed, fullEvents)
	}
}
