package unisoncache_test

import (
	"testing"

	uc "unisoncache"
)

// short keeps facade tests fast: the scaled caches still cycle.
const short = 40_000

func run(t *testing.T, r uc.Run) uc.Result {
	t.Helper()
	if r.AccessesPerCore == 0 {
		r.AccessesPerCore = short
	}
	res, err := uc.Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkloadsAndDesignsEnumerate(t *testing.T) {
	// Other tests may register extra workloads; the six built-ins must
	// always lead the listing in the paper's canonical order.
	ws := uc.Workloads()
	if len(ws) < 6 {
		t.Fatalf("Workloads() = %v, want at least the 6 built-ins", ws)
	}
	want := []string{"data-analytics", "data-serving", "software-testing", "web-search", "web-serving", "tpch"}
	for i, w := range want {
		if ws[i] != w {
			t.Errorf("Workloads()[%d] = %q, want %q", i, ws[i], w)
		}
	}
	if len(uc.Designs()) != 7 {
		t.Errorf("Designs() = %v, want 7", uc.Designs())
	}
}

func TestExecuteRejectsBadInput(t *testing.T) {
	if _, err := uc.Execute(uc.Run{Workload: "nope", Design: uc.DesignUnison, Capacity: 1 << 30}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := uc.Execute(uc.Run{Workload: "web-search", Design: "bogus", Capacity: 1 << 30}); err == nil {
		t.Error("unknown design accepted")
	}
	if _, err := uc.Execute(uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30, ScaleDivisor: -2}); err == nil {
		t.Error("negative scale divisor accepted")
	}
}

func TestExecuteAllDesignsAllWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-product")
	}
	for _, w := range uc.Workloads() {
		for _, d := range uc.Designs() {
			res := run(t, uc.Run{Workload: w, Design: d, Capacity: 256 << 20, AccessesPerCore: 8000})
			if res.UIPC <= 0 {
				t.Errorf("%s/%s: UIPC = %v", w, d, res.UIPC)
			}
			if res.Design.Reads == 0 {
				t.Errorf("%s/%s: no DRAM-level reads", w, d)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 256 << 20, Seed: 9})
	b := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 256 << 20, Seed: 9})
	if a.UIPC != b.UIPC || a.Cycles != b.Cycles || a.Design.Reads != b.Design.Reads ||
		a.Design.ReadHits != b.Design.ReadHits || *a.Design.FP != *b.Design.FP {
		t.Error("identical runs diverged")
	}
	c := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 256 << 20, Seed: 10})
	if a.UIPC == c.UIPC && a.Cycles == c.Cycles {
		t.Error("different seeds produced identical results")
	}
}

func TestIdealBeatsEverything(t *testing.T) {
	ideal := run(t, uc.Run{Workload: "web-search", Design: uc.DesignIdeal, Capacity: 512 << 20})
	for _, d := range []uc.DesignKind{uc.DesignNone, uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison} {
		res := run(t, uc.Run{Workload: "web-search", Design: d, Capacity: 512 << 20})
		if res.UIPC >= ideal.UIPC {
			t.Errorf("%s UIPC %.2f >= ideal %.2f", d, res.UIPC, ideal.UIPC)
		}
	}
}

func TestPageBasedDesignsBeatAlloyOnMissRatio(t *testing.T) {
	// The Figure 6 headline: page-based designs exploit spatial locality.
	alloy := run(t, uc.Run{Workload: "web-search", Design: uc.DesignAlloy, Capacity: 512 << 20})
	fc := run(t, uc.Run{Workload: "web-search", Design: uc.DesignFootprint, Capacity: 512 << 20})
	unison := run(t, uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 512 << 20})
	if fc.MissRatioPct() >= alloy.MissRatioPct()/2 {
		t.Errorf("FC miss %.1f%% not well below Alloy %.1f%%", fc.MissRatioPct(), alloy.MissRatioPct())
	}
	if unison.MissRatioPct() >= alloy.MissRatioPct()/2 {
		t.Errorf("Unison miss %.1f%% not well below Alloy %.1f%%", unison.MissRatioPct(), alloy.MissRatioPct())
	}
}

func TestUnisonHighHitRatio(t *testing.T) {
	// §III-A: "often 90% or better" at large sizes on spatial workloads.
	res := run(t, uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30, AccessesPerCore: 80_000})
	if hit := 100 - res.MissRatioPct(); hit < 85 {
		t.Errorf("Unison hit ratio %.1f%%, want >= 85%%", hit)
	}
}

func TestUnisonBeatsAlloyAtLargeSizes(t *testing.T) {
	// The paper's headline: 14% over Alloy Cache at 1GB (geomean). One
	// workload at reduced length: just require a clear win.
	a := run(t, uc.Run{Workload: "data-serving", Design: uc.DesignAlloy, Capacity: 1 << 30, AccessesPerCore: 80_000})
	u := run(t, uc.Run{Workload: "data-serving", Design: uc.DesignUnison, Capacity: 1 << 30, AccessesPerCore: 80_000})
	if u.UIPC <= a.UIPC {
		t.Errorf("Unison UIPC %.2f <= Alloy %.2f at 1GB", u.UIPC, a.UIPC)
	}
}

func TestMissRatioShrinksWithCapacity(t *testing.T) {
	small := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 128 << 20})
	large := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 1 << 30})
	if large.MissRatioPct() >= small.MissRatioPct() {
		t.Errorf("miss ratio did not shrink: %.1f%% (128MB) -> %.1f%% (1GB)",
			small.MissRatioPct(), large.MissRatioPct())
	}
}

func TestAssociativityHelps(t *testing.T) {
	// Figure 5: 4-way beats direct-mapped.
	dm := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 256 << 20, UnisonWays: 1})
	w4 := run(t, uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 256 << 20, UnisonWays: 4})
	if w4.MissRatioPct() >= dm.MissRatioPct() {
		t.Errorf("4-way miss %.1f%% not below direct-mapped %.1f%%", w4.MissRatioPct(), dm.MissRatioPct())
	}
}

func TestSpeedupHelper(t *testing.T) {
	sp, design, base, err := uc.Speedup(uc.Run{Workload: "data-serving", Design: uc.DesignIdeal,
		Capacity: 512 << 20, AccessesPerCore: short})
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 {
		t.Errorf("ideal speedup = %.2f, want > 1", sp)
	}
	if sp != design.UIPC/base.UIPC {
		t.Error("speedup inconsistent with component results")
	}
	if base.Design.Name != "none" {
		t.Errorf("baseline design = %s", base.Design.Name)
	}
}

func TestSnapshotFieldsByDesign(t *testing.T) {
	u := run(t, uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 256 << 20})
	if u.Design.FP == nil || u.Design.WP == nil || u.Design.MP != nil {
		t.Error("unison snapshot predictor fields wrong")
	}
	a := run(t, uc.Run{Workload: "web-search", Design: uc.DesignAlloy, Capacity: 256 << 20})
	if a.Design.MP == nil || a.Design.FP != nil {
		t.Error("alloy snapshot predictor fields wrong")
	}
	f := run(t, uc.Run{Workload: "web-search", Design: uc.DesignFootprint, Capacity: 256 << 20})
	if f.Design.FP == nil || f.Design.WP != nil {
		t.Error("footprint snapshot predictor fields wrong")
	}
}

func TestScaleDivisorExplicit(t *testing.T) {
	res := run(t, uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30, ScaleDivisor: 64})
	if res.Run.ScaleDivisor != 64 {
		t.Errorf("ScaleDivisor = %d, want 64", res.Run.ScaleDivisor)
	}
	auto := run(t, uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 8 << 30, AccessesPerCore: 8000})
	if got := auto.Run.ScaleDivisor; got != 256 {
		t.Errorf("auto ScaleDivisor for 8GB = %d, want 256 (32MB cap)", got)
	}
}

func TestOffchipTrafficOrdering(t *testing.T) {
	// Page-based designs with footprint prediction must not blow up
	// off-chip traffic versus the baseline by more than the overfetch
	// margin (the bandwidth-efficiency claim of §V-A).
	base := run(t, uc.Run{Workload: "web-search", Design: uc.DesignNone, Capacity: 512 << 20})
	u := run(t, uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 512 << 20})
	if u.OffchipBytesPerKI > base.OffchipBytesPerKI*1.5 {
		t.Errorf("Unison off-chip %.0f B/KI vs baseline %.0f: overfetch out of control",
			u.OffchipBytesPerKI, base.OffchipBytesPerKI)
	}
}
