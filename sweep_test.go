package unisoncache

import (
	"reflect"
	"strings"
	"testing"
)

// sweepTestAccesses keeps each simulated point cheap: determinism is a
// property of the engine, not the trace length.
const sweepTestAccesses = 2_000

// TestExecuteManyMatchesSerial checks the concurrent engine returns
// results bit-identical to a serial Execute loop over the same points.
func TestExecuteManyMatchesSerial(t *testing.T) {
	sweep := Sweep{
		Base:      Run{Capacity: 64 << 20, AccessesPerCore: sweepTestAccesses},
		Workloads: []string{"web-search", "data-serving"},
		Designs:   []DesignKind{DesignAlloy, DesignUnison, DesignNone},
	}
	points := sweep.Points()

	want := make([]Result, len(points))
	for i, r := range points {
		res, err := Execute(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, jobs := range []int{1, 4, 0} {
		got, err := ExecuteMany(Plan{Points: points, Jobs: jobs})
		if err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("Jobs=%d: point %d (%s/%s) diverges from serial execution",
					jobs, i, points[i].Workload, points[i].Design)
			}
		}
	}
}

// TestSpeedupManyMatchesSpeedup checks baseline memoization does not
// change any number: a plan where four design points share one baseline
// must reproduce per-point Speedup calls exactly.
func TestSpeedupManyMatchesSpeedup(t *testing.T) {
	base := Run{Workload: "web-serving", Capacity: 64 << 20, AccessesPerCore: sweepTestAccesses}
	points := []Run{base, base, base, base}
	points[0].Design = DesignAlloy
	points[1].Design = DesignUnison
	points[2].Design = DesignUnison
	points[2].UnisonWays = 1 // different design point, same baseline
	points[3].Design = DesignIdeal

	many, err := SpeedupMany(Plan{Points: points, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range points {
		sp, design, baseline, err := Speedup(r)
		if err != nil {
			t.Fatal(err)
		}
		if many[i].Speedup != sp {
			t.Fatalf("point %d: SpeedupMany %v != Speedup %v", i, many[i].Speedup, sp)
		}
		if !reflect.DeepEqual(many[i].Design, design) || !reflect.DeepEqual(many[i].Baseline, baseline) {
			t.Fatalf("point %d: results diverge from per-point Speedup", i)
		}
	}
}

// TestBaselineRunCollapses checks design points differing only in
// design-specific knobs share one baseline key — the memoization that
// turns fig7's 4 baselines per cell into 1.
func TestBaselineRunCollapses(t *testing.T) {
	base := Run{Workload: "web-search", Capacity: 1 << 30, AccessesPerCore: 400_000}
	variants := []Run{base, base, base, base}
	variants[0].Design = DesignAlloy
	variants[1].Design = DesignUnison
	variants[1].UnisonWays = 32
	variants[2].Design = DesignFootprint
	variants[2].FCWays = 16
	variants[3].Design = DesignUnison
	variants[3].SerializeTagData = true
	variants[3].DisableSingleton = true

	want := baselineRun(variants[0].withDefaults())
	for i, v := range variants {
		if got := baselineRun(v.withDefaults()); got != want {
			t.Fatalf("variant %d: baseline key %+v != %+v", i, got, want)
		}
	}
	if want.Design != DesignNone {
		t.Fatalf("baseline design = %s, want %s", want.Design, DesignNone)
	}

	other := base
	other.Seed = 7
	if baselineRun(other.withDefaults()) == want {
		t.Fatal("different seed must not share a baseline")
	}
}

// TestSweepPointsOrder checks the cross product expands workload-major
// with designs innermost, and that empty axes inherit the template.
func TestSweepPointsOrder(t *testing.T) {
	s := Sweep{
		Base:       Run{Seed: 3, AccessesPerCore: 100},
		Workloads:  []string{"a", "b"},
		Capacities: []uint64{1, 2},
		Designs:    []DesignKind{DesignAlloy, DesignUnison},
	}
	points := s.Points()
	if len(points) != 8 {
		t.Fatalf("len = %d, want 8", len(points))
	}
	var got []string
	for _, p := range points {
		got = append(got, p.Workload+"/"+string(p.Design))
		if p.Seed != 3 || p.AccessesPerCore != 100 || p.Capacity == 0 {
			t.Fatalf("point %+v lost template fields", p)
		}
	}
	want := "a/alloy a/unison a/alloy a/unison b/alloy b/unison b/alloy b/unison"
	if strings.Join(got, " ") != want {
		t.Fatalf("order %v, want %v", got, want)
	}
	if points[0].Capacity != 1 || points[2].Capacity != 2 {
		t.Fatalf("capacity order wrong: %d then %d", points[0].Capacity, points[2].Capacity)
	}
}

// TestExecuteManyErrorPropagation checks a bad point fails the plan with
// the point's own error.
func TestExecuteManyErrorPropagation(t *testing.T) {
	points := []Run{
		{Workload: "web-search", Design: DesignUnison, Capacity: 64 << 20, AccessesPerCore: sweepTestAccesses},
		{Workload: "no-such-workload", Design: DesignUnison, Capacity: 64 << 20, AccessesPerCore: sweepTestAccesses},
	}
	_, err := ExecuteMany(Plan{Points: points})
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("err = %v, want unknown-workload error", err)
	}
}
