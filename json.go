package unisoncache

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// runJSON mirrors Run field-for-field so UnmarshalJSON can use the stock
// decoding machinery without recursing into itself. The conversion is
// checked at compile time by the Run(...) cast below.
type runJSON Run

// UnmarshalJSON decodes a Run strictly: unknown JSON fields are rejected
// (a misspelled "Capasity" fails at decode time instead of silently
// simulating the default), and so are unknown designs — previously a
// mistyped design only surfaced deep inside buildDesign, after the
// workload streams had already been built. The design set is static, so
// this check can never disagree between processes. Workload names are
// deliberately NOT checked here: they live in a per-process registry, and
// a decoded Run often arrives inside a *response* (a service Result
// echoing its Run) from a process with workloads this one never
// registered — request boundaries validate workloads explicitly with
// ValidateNames instead. Empty Design/Workload pass: sweeps fill them
// from the template and trace replays take the capture header's workload.
func (r *Run) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var a runJSON
	if err := dec.Decode(&a); err != nil {
		return fmt.Errorf("unisoncache: decoding Run: %w", err)
	}
	run := Run(a)
	if run.Design != "" && !knownDesign(run.Design) {
		return fmt.Errorf("unisoncache: unknown design %q (have %v)", run.Design, Designs())
	}
	*r = run
	return nil
}

// ValidateNames checks the Run's symbolic fields against what this
// process can actually execute: an unknown design or a workload that is
// neither built in nor registered fails with the valid choices listed.
// Zero values pass — defaulting and trace-header reconciliation give
// them meaning later. The simulation service calls this on every
// submitted Run, so a mistyped name is rejected at the request boundary
// instead of failing mid-sweep.
func (r Run) ValidateNames() error {
	if r.Design != "" && !knownDesign(r.Design) {
		return fmt.Errorf("unisoncache: unknown design %q (have %v)", r.Design, Designs())
	}
	if r.Workload != "" {
		if _, ok := lookupProfile(r.Workload); !ok {
			return fmt.Errorf("unisoncache: unknown workload %q (have %v)", r.Workload, Workloads())
		}
	}
	return nil
}

// knownDesign reports whether d is one of Designs().
func knownDesign(d DesignKind) bool {
	for _, k := range Designs() {
		if d == k {
			return true
		}
	}
	return false
}
