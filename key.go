package unisoncache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runKeyVersion is folded into every RunKey so a change to the key
// discipline (new Run fields, different canonicalization) can never
// collide with keys minted under the old one.
const runKeyVersion = "unisoncache/run/v1\n"

// RunKey returns the canonical content-addressed key of a Run: a SHA-256
// hex digest of the fully-defaulted configuration. Two Runs share a key
// exactly when Execute is guaranteed to return bit-identical Results for
// them — the same discipline the sweep engine's in-plan memoization uses
// (runs are pure functions of their defaulted configuration), extended so
// the key is stable across processes and safe for replay runs:
//
//   - Defaulting first means a zero Seed and an explicit Seed of 1 (etc.)
//     collapse onto one key, matching what Execute actually simulates.
//   - For replay runs a SHA-256 digest of the trace file's *content* is
//     folded in next to TracePath, so editing the capture under an
//     unchanged path changes the key and a stale cached result can never
//     be served. The literal path stays part of the key too: Execute
//     echoes it verbatim in Result.Run, so two paths holding identical
//     bytes must keep distinct keys for a cached Result to be
//     bit-identical to executing directly. Reading the file is the only
//     I/O RunKey performs, and only for replay runs.
//
// The simulation service uses RunKey to address its result cache; it is
// exported so clients can compute cache keys without talking to a daemon.
// Keys are only meaningful between processes that agree on the meaning of
// the workload names involved (built-ins always do; registered workloads
// must be registered identically on both sides).
func RunKey(r Run) (string, error) {
	d := r.withDefaults()
	if d.TracePath != "" {
		digest, err := fileDigest(d.TracePath)
		if err != nil {
			return "", fmt.Errorf("unisoncache: digesting trace for run key: %w", err)
		}
		// NUL can appear in neither a JSON-encoded path nor hex, so the
		// combined field cannot collide with a plain path.
		d.TracePath = d.TracePath + "\x00sha256:" + digest
	}
	blob, err := json.Marshal(d)
	if err != nil {
		return "", fmt.Errorf("unisoncache: encoding run for key: %w", err)
	}
	sum := sha256.Sum256(append([]byte(runKeyVersion), blob...))
	return hex.EncodeToString(sum[:]), nil
}

// fileDigest streams the file through SHA-256.
func fileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
