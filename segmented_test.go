package unisoncache

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// resultJSON renders a Result exactly as the golden wall does, after
// normalizing the one field segmented execution is allowed to differ in:
// the echoed Segments configuration. Everything else — every counter,
// every float — must be byte-identical to the serial run.
func resultJSON(t *testing.T, res Result) string {
	t.Helper()
	res.Run.Segments = 0
	b, err := json.MarshalIndent(res, "    ", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSegmentBounds(t *testing.T) {
	cases := []struct {
		total uint64
		k     int
		want  []uint64
	}{
		{total: 100, k: 1, want: nil},
		{total: 100, k: 2, want: []uint64{50}},
		{total: 100, k: 4, want: []uint64{25, 50, 75}},
		{total: 80_000, k: 7, want: []uint64{11428, 22857, 34285, 45714, 57142, 68571}},
		// Non-divisor, tiny run: duplicate boundaries collapse.
		{total: 3, k: 4, want: []uint64{1, 2}},
		{total: 2, k: 7, want: []uint64{1}},
		{total: 1, k: 5, want: nil},
		{total: 0, k: 3, want: nil},
	}
	for _, c := range cases {
		got := segmentBounds(c.total, c.k)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("segmentBounds(%d, %d) = %v, want %v", c.total, c.k, got, c.want)
		}
		prev := uint64(0)
		for _, b := range got {
			if b <= prev || b >= c.total {
				t.Errorf("segmentBounds(%d, %d): boundary %d out of order or trivial", c.total, c.k, b)
			}
			prev = b
		}
	}
}

// TestTimeParallelGolden extends the golden determinism wall to segmented
// execution: for every committed golden entry and K in {1, 2, 4, 7} —
// non-divisor segment counts included — both the first (serial-with-save)
// and second (parallel from checkpoints) execution must reproduce the
// committed serial bytes exactly, modulo the echoed Segments field.
func TestTimeParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("segmented golden wall replays each golden run 8 more times; skipped in -short")
	}
	data, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"web-search", "data-analytics"} {
		for _, d := range Designs() {
			key := fmt.Sprintf("%s/%s", w, d)
			golden, ok := want[key]
			if !ok {
				t.Fatalf("no golden entry for %s", key)
			}
			for _, k := range []int{1, 2, 4, 7} {
				t.Run(fmt.Sprintf("%s/K=%d", key, k), func(t *testing.T) {
					ckStore.Reset()
					r := Run{
						Workload:        w,
						Design:          d,
						Capacity:        256 << 20,
						Cores:           4,
						AccessesPerCore: 20_000,
						Seed:            1,
						Segments:        k,
					}
					for _, pass := range []string{"serial-with-save", "parallel"} {
						res, err := Execute(r)
						if err != nil {
							t.Fatalf("%s: %v", pass, err)
						}
						if got := resultJSON(t, res); got != string(golden) {
							t.Errorf("%s pass diverged from serial golden\ngolden: %s\n   got: %s", pass, golden, got)
						}
					}
				})
			}
		}
	}
}

// TestSegmentedParityShort is the always-on (and race-detector-visible)
// slice of the segmented wall: one small configuration, serial versus both
// segmented passes.
func TestSegmentedParityShort(t *testing.T) {
	ckStore.Reset()
	r := Run{Workload: "data-serving", Design: DesignUnison, Capacity: 128 << 20,
		Cores: 2, AccessesPerCore: 4_000, Seed: 7}
	serial, err := Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, serial)
	r.Segments = 3
	for _, pass := range []string{"serial-with-save", "parallel"} {
		res, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		if got := resultJSON(t, res); got != want {
			t.Errorf("%s pass diverged from serial\nwant: %s\n got: %s", pass, want, got)
		}
	}
	if n := ckStore.Len(); n == 0 {
		t.Error("segmented execution left no snapshots in the store")
	}
}

// TestCheckpointRoundTrip is the tentpole's codec wall: for every design
// and every built-in workload, freeze a run at a random offset (seeds
// committed below), restore the snapshot into a freshly built machine,
// replay to completion, and require Results bit-identical to the
// uninterrupted run. Offsets land in warmup, at the boundary and in the
// measurement phase across the table.
func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trips every design x workload; skipped in -short")
	}
	rng := rand.New(rand.NewSource(0x5eed_c0de)) // committed: offsets are part of the wall
	for _, w := range []string{"data-analytics", "data-serving", "software-testing", "web-search", "web-serving", "tpch"} {
		for _, d := range Designs() {
			t.Run(fmt.Sprintf("%s/%s", w, d), func(t *testing.T) {
				r := Run{Workload: w, Design: d, Capacity: 128 << 20,
					Cores: 2, AccessesPerCore: 3_000, Seed: 3}.withDefaults()
				m, rr, err := newMachine(r)
				if err != nil {
					t.Fatal(err)
				}
				m.BeginRun(rr.AccessesPerCore)
				total := m.TotalSteps()
				offset := 1 + uint64(rng.Int63n(int64(total-1)))

				want := resultJSON(t, Result{Results: m.FinishRun(), Run: rr})

				saver, _, err := newMachine(r)
				if err != nil {
					t.Fatal(err)
				}
				saver.BeginRun(rr.AccessesPerCore)
				saver.RunTo(offset)
				blob, err := encodeMachine(saver, "t", offset)
				if err != nil {
					t.Fatalf("encoding at offset %d: %v", offset, err)
				}

				restored, _, err := restoreMachine(r, "t", offset, blob)
				if err != nil {
					t.Fatalf("restoring at offset %d: %v", offset, err)
				}
				got := resultJSON(t, Result{Results: restored.FinishRun(), Run: rr})
				if got != want {
					t.Errorf("offset %d/%d: restored run diverged\nwant: %s\n got: %s", offset, total, want, got)
				}
			})
		}
	}
}

// TestCheckpointRoundTripReplay covers the recorded-trace source: a
// checkpoint taken mid-replay of a .utrace capture restores and completes
// bit-identically.
func TestCheckpointRoundTripReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roundtrip.utrace")
	rec := Run{Workload: "web-search", Design: DesignUnison, Capacity: 128 << 20,
		Cores: 2, AccessesPerCore: 3_000, Seed: 5}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := RecordTrace(rec, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := Run{TracePath: path, Design: DesignUnison, Capacity: 128 << 20}.withDefaults()
	m, rr, err := newMachine(r)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginRun(rr.AccessesPerCore)
	total := m.TotalSteps()
	want := resultJSON(t, Result{Results: m.FinishRun(), Run: rr})

	for _, offset := range []uint64{1, total / 3, total / 2, total - 1} {
		saver, _, err := newMachine(r)
		if err != nil {
			t.Fatal(err)
		}
		saver.BeginRun(rr.AccessesPerCore)
		saver.RunTo(offset)
		blob, err := encodeMachine(saver, "t", offset)
		if err != nil {
			t.Fatalf("offset %d: %v", offset, err)
		}
		restored, _, err := restoreMachine(r, "t", offset, blob)
		if err != nil {
			t.Fatalf("offset %d: %v", offset, err)
		}
		if got := resultJSON(t, Result{Results: restored.FinishRun(), Run: rr}); got != want {
			t.Errorf("offset %d: replay round-trip diverged", offset)
		}
	}
}

// TestSegmentedFixupCascade poisons the snapshot store with a hash-valid
// snapshot of the WRONG state (a different seed's trajectory at the same
// offset) and requires the parallel pass to detect the stale boundary,
// write back the authoritative state and still return bit-identical
// Results.
func TestSegmentedFixupCascade(t *testing.T) {
	ckStore.Reset()
	r := Run{Workload: "web-search", Design: DesignAlloy, Capacity: 128 << 20,
		Cores: 2, AccessesPerCore: 4_000, Seed: 1, Segments: 3}
	first, err := Execute(r) // serial-with-save: populates the boundaries
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, first)

	rr := r.withDefaults()
	prefix, err := checkpointPrefix(rr)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := newMachine(rr)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginRun(rr.AccessesPerCore)
	bounds := segmentBounds(m.TotalSteps(), rr.Segments)
	if len(bounds) != 2 {
		t.Fatalf("expected 2 interior bounds, got %v", bounds)
	}

	// Forge the poison: the same configuration with a different seed,
	// frozen at the same offset and encoded under the victim's key. The
	// container is perfectly valid — only the state inside is wrong.
	other := rr
	other.Seed = 99
	om, orr, err := newMachine(other.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	om.BeginRun(orr.AccessesPerCore)
	om.RunTo(bounds[0])
	poison, err := encodeMachine(om, prefix, bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	good, ok := ckStore.Get(prefix, bounds[0])
	if !ok {
		t.Fatal("boundary snapshot missing after serial-with-save")
	}
	if string(good) == string(poison) {
		t.Fatal("poison snapshot equals the genuine one; test is vacuous")
	}
	ckStore.Put(prefix, bounds[0], poison)

	res, err := Execute(r) // parallel pass over the poisoned store
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("fix-up cascade failed to repair the poisoned boundary\nwant: %s\n got: %s", want, got)
	}
	repaired, ok := ckStore.Get(prefix, bounds[0])
	if !ok {
		t.Fatal("boundary snapshot vanished")
	}
	if string(repaired) != string(good) {
		t.Error("store still holds the stale boundary after the fix-up pass")
	}
}

// TestSegmentedCorruptSnapshotFallsBack: a snapshot that fails to restore
// (here: a different machine geometry under the right key) must route the
// run through the serial fallback — identical Results, no panic — and
// rewrite the store.
func TestSegmentedCorruptSnapshotFallsBack(t *testing.T) {
	ckStore.Reset()
	r := Run{Workload: "data-serving", Design: DesignFootprint, Capacity: 128 << 20,
		Cores: 2, AccessesPerCore: 4_000, Seed: 2, Segments: 2}
	first, err := Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, first)

	rr := r.withDefaults()
	prefix, err := checkpointPrefix(rr)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := newMachine(rr)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginRun(rr.AccessesPerCore)
	bounds := segmentBounds(m.TotalSteps(), rr.Segments)

	// A 4-core machine's state under the 2-core run's key: hash-valid,
	// geometry-skewed.
	skew := rr
	skew.Cores = 4
	sm, srr, err := newMachine(skew.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	sm.BeginRun(srr.AccessesPerCore)
	sm.RunTo(bounds[0])
	blob, err := encodeMachine(sm, prefix, bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	ckStore.Put(prefix, bounds[0], blob)

	res, err := Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); got != want {
		t.Errorf("serial fallback after restore failure diverged\nwant: %s\n got: %s", want, got)
	}
	// The fallback's serial pass rewrote the boundary; a third execution
	// runs parallel again off the repaired store.
	res, err = Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); got != want {
		t.Error("parallel pass after store repair diverged")
	}
}

// TestSampledFromCheckpoint is the sampled warm-start wall. Bit-parity: a
// sampled run warm-started from the store's warmup-boundary snapshot must
// equal the cold sampled run byte for byte. Acceptance: its CI must
// contain the full-run speedup, the same bound TestSweepSampledAcceptance
// enforces on cold sampled sweeps.
func TestSampledFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full, sampled and segmented executions; skipped in -short")
	}
	spec := SampleSpec{IntervalEvents: 500, GapEvents: 1500, MinIntervals: 4}
	for _, d := range []DesignKind{DesignUnison, DesignNone} {
		r := Run{Workload: "web-search", Design: d, Capacity: 256 << 20,
			Cores: 4, AccessesPerCore: 40_000, Seed: 1}

		ckStore.Reset()
		cold := r
		cold.Sampling = spec
		coldRes, err := Execute(cold)
		if err != nil {
			t.Fatal(err)
		}
		if coldRes.CI == nil {
			t.Fatal("cold sampled run returned no CI")
		}

		// Populate the store: the segmented run writes the warm-boundary
		// snapshot alongside its segment boundaries.
		seg := r
		seg.Segments = 4
		segRes, err := Execute(seg)
		if err != nil {
			t.Fatal(err)
		}

		warm := cold
		warm.Segments = 4
		warmRes, err := Execute(warm)
		if err != nil {
			t.Fatal(err)
		}
		if warmRes.CI == nil {
			t.Fatal("warm sampled run returned no CI")
		}
		cj, wj := resultJSON(t, coldRes), resultJSON(t, warmRes)
		if cj != wj {
			t.Errorf("%s: warm-started sampled run diverged from cold\ncold: %s\nwarm: %s", d, cj, wj)
		}
		if warmRes.CI.SimulatedEvents != coldRes.CI.SimulatedEvents {
			t.Errorf("%s: warm-start changed the event accounting", d)
		}

		// Acceptance bound: the sampled CI brackets the full-run UIPC.
		fullUIPC := segRes.UIPC
		if fullUIPC < warmRes.CI.Low() || fullUIPC > warmRes.CI.High() {
			t.Errorf("%s: full-run UIPC %.5f outside warm sampled CI [%.5f, %.5f]",
				d, fullUIPC, warmRes.CI.Low(), warmRes.CI.High())
		}
	}
}

// TestSegmentsValidation: out-of-range Segments fail at the Execute
// boundary; 0 and 1 mean serial and echo through unchanged.
func TestSegmentsValidation(t *testing.T) {
	r := Run{Workload: "web-search", Design: DesignNone, Capacity: 128 << 20,
		Cores: 2, AccessesPerCore: 1_000, Seed: 1}
	for _, bad := range []int{-1, maxSegments + 1} {
		r.Segments = bad
		if _, err := Execute(r); err == nil {
			t.Errorf("Segments=%d accepted", bad)
		}
	}
	r.Segments = 1
	res, err := Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Segments != 1 {
		t.Errorf("echoed Segments = %d, want 1", res.Run.Segments)
	}
}

// TestSnapshotStoreSharing: every segment count of a configuration — and
// its sampled variant — addresses the same snapshot prefix, so warmup is
// computed once and shared.
func TestSnapshotStoreSharing(t *testing.T) {
	base := Run{Workload: "tpch", Design: DesignIdeal, Capacity: 128 << 20,
		Cores: 2, AccessesPerCore: 2_000, Seed: 1}.withDefaults()
	p0, err := checkpointPrefix(base)
	if err != nil {
		t.Fatal(err)
	}
	seg := base
	seg.Segments = 8
	p1, err := checkpointPrefix(seg)
	if err != nil {
		t.Fatal(err)
	}
	sam := base
	sam.Sampling = DefaultSampleSpec()
	p2, err := checkpointPrefix(sam)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != p1 || p0 != p2 {
		t.Errorf("prefixes differ: serial %s, segmented %s, sampled %s", p0, p1, p2)
	}
	other := base
	other.Seed = 2
	p3, err := checkpointPrefix(other)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p0 {
		t.Error("different seeds share a snapshot prefix")
	}
}
