// Package client is the Go client for the unisonserved simulation
// service (internal/serve behind cmd/unisonserved): submit Runs and
// sweeps over HTTP/JSON, follow job progress, and collect results that
// are bit-identical to calling Execute / ExecuteMany / SpeedupMany /
// SweepSampled in process — repeat submissions come back from the
// daemon's content-addressed result cache without re-simulating.
//
//	cl := client.New("http://127.0.0.1:8080")
//	res, err := cl.Execute(ctx, unisoncache.Run{
//	    Workload: "web-search",
//	    Design:   unisoncache.DesignUnison,
//	    Capacity: 1 << 30,
//	})
//
// The high-level calls (Execute, ExecuteMany, SpeedupMany, SweepSampled)
// submit, wait on the job's NDJSON event stream, and unwrap the results;
// the low-level Submit/Job/Wait/Cancel surface is exported for callers
// that manage jobs themselves.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	uc "unisoncache"
	"unisoncache/internal/obs"
)

// Retry defaults: up to defaultRetries additional attempts after a
// transient connect failure, exponential backoff from defaultRetryBase
// with ±50% jitter so a burst of clients retrying a recovering daemon
// does not stampede in lockstep.
const (
	defaultRetries   = 3
	defaultRetryBase = 100 * time.Millisecond
)

// Client talks to one daemon. The zero value is not usable; construct
// with New.
type Client struct {
	base string
	hc   *http.Client

	// Header entries (when non-nil) are added to every request. The
	// daemon's cluster layer uses this to mark proxied peer traffic;
	// callers can use it for auth or tracing headers.
	Header http.Header

	// MaxRetries caps the additional attempts made after a transient
	// connect error (connection refused/reset, dial timeout — failures
	// where the daemon never saw the request). 0 means the default (3);
	// negative disables retrying. Responses from the daemon, of any
	// status, are never retried here.
	MaxRetries int
	// RetryBackoff is the first retry's base delay, doubling per attempt
	// with jitter. 0 means the default (100ms).
	RetryBackoff time.Duration

	// OnRetry, when non-nil, is called before each retry sleep with the
	// attempt number just failed (1-based), the chosen backoff, and the
	// transport error. Tests and progress UIs hook it; it must not block.
	OnRetry func(attempt int, wait time.Duration, err error)
	// Logger, when non-nil, receives a structured warning per retry
	// (attempt, wait, error, URL). Nil stays silent — the default for a
	// library client.
	Logger *slog.Logger
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). The transport carries dial, TLS-handshake and
// response-header timeouts so a black-holed daemon fails the call in
// seconds instead of stalling forever — but deliberately no global
// request timeout: jobs run for as long as their simulations take, and
// the NDJSON wait path holds one response open for the whole job. Bound
// individual calls with their contexts. Transient connect errors retry
// with jittered exponential backoff (see MaxRetries).
func New(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc: &http.Client{
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout:   5 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				TLSHandshakeTimeout: 5 * time.Second,
				// Every endpoint writes its headers immediately — even the
				// events stream flushes the current state first — so waiting
				// longer than this means the daemon is wedged, not working.
				ResponseHeaderTimeout: 60 * time.Second,
				MaxIdleConnsPerHost:   16,
				IdleConnTimeout:       90 * time.Second,
			},
		},
	}
}

// URL returns the daemon base URL the client talks to.
func (c *Client) URL() string { return c.base }

// send performs one HTTP round trip with the shared request policy:
// per-client headers applied, the context's request ID stamped on the
// wire (so one logical operation correlates across daemons), and
// transient connect errors retried with jittered exponential backoff.
// Reaching the daemon ends retrying — a received response is returned
// whatever its status, so a non-idempotent submit is never replayed
// after the daemon accepted it. When retries were needed, the final
// error says how many attempts were made.
func (c *Client) send(req *http.Request) (*http.Response, error) {
	for k, vs := range c.Header {
		req.Header[k] = append([]string(nil), vs...)
	}
	if req.Header.Get(obs.RequestIDHeader) == "" {
		if id := obs.RequestIDFrom(req.Context()); id != "" {
			req.Header.Set(obs.RequestIDHeader, id)
		}
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = defaultRetries
	}
	base := c.RetryBackoff
	if base <= 0 {
		base = defaultRetryBase
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		r := req
		if attempt > 0 {
			// Do closes the request body even on connect failure; rebuild
			// it for the retry (NewRequestWithContext fills GetBody for
			// the in-memory readers every call here uses).
			r = req.Clone(req.Context())
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				r.Body = body
			}
		}
		resp, err := c.hc.Do(r)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= retries || !transientConnectError(err) || req.Context().Err() != nil {
			if attempt > 0 {
				return nil, fmt.Errorf("client: %d attempts failed: %w", attempt+1, lastErr)
			}
			return nil, lastErr
		}
		// Jittered exponential backoff: base << attempt, scaled by a
		// uniform factor in [0.5, 1.5).
		delay := time.Duration(float64(base<<attempt) * (0.5 + rand.Float64()))
		if c.OnRetry != nil {
			c.OnRetry(attempt+1, delay, err)
		}
		if c.Logger != nil {
			c.Logger.Warn("retrying request",
				"req_id", req.Header.Get(obs.RequestIDHeader),
				"method", req.Method, "url", req.URL.String(),
				"attempt", attempt+1, "wait", delay.String(), "error", err.Error())
		}
		select {
		case <-req.Context().Done():
			if attempt > 0 {
				return nil, fmt.Errorf("client: %d attempts failed: %w", attempt+1, lastErr)
			}
			return nil, lastErr
		case <-time.After(delay):
		}
	}
}

// transientConnectError reports whether err is a connect-level failure
// worth retrying: the request never reached a daemon, so replaying it is
// safe. Timeouts on an established exchange (a genuinely wedged daemon)
// and every delivered response are not retried.
func transientConnectError(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		return true
	}
	return false
}

// apiError is a non-2xx daemon response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("unisonserved: %s (status %d)", e.Msg, e.Status)
}

// do performs one JSON round trip: in (when non-nil) is the request
// body, out (when non-nil) receives the decoded 2xx response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.send(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &apiError{Status: resp.StatusCode, Msg: eb.Error}
		}
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches /metrics and parses the flat exposition into a
// name → value map (comment lines skipped).
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.send(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, nil
}

// LookupResult fetches a cached result by run key from the daemon's
// result cache and store — a pure lookup that never triggers execution.
// ok=false means the daemon doesn't have it (HTTP 404).
func (c *Client) LookupResult(ctx context.Context, key string) (uc.Result, bool, error) {
	var res uc.Result
	err := c.do(ctx, http.MethodGet, "/v1/results/"+key, nil, &res)
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return uc.Result{}, false, nil
		}
		return uc.Result{}, false, err
	}
	return res, true, nil
}

// SubmitRun submits one Run and returns the job record — already
// terminal (with Result populated) when the daemon answered from its
// cache.
func (c *Client) SubmitRun(ctx context.Context, run uc.Run) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodPost, "/v1/runs", RunRequest{Run: run}, &j)
	return j, err
}

// SubmitSweep submits a point list.
func (c *Client) SubmitSweep(ctx context.Context, req SweepRequest) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &j)
	return j, err
}

// Job fetches one job snapshot.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Cancel cancels a job (queued jobs never execute; a running sweep
// aborts at its next point) and returns the current snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Wait blocks until the job reaches a terminal state and returns its
// final snapshot (results included). It follows the NDJSON event stream
// — no polling while the connection holds — and falls back to polling if
// the stream drops. The final snapshot is fetched the moment the
// terminal event arrives; the daemon retains finished jobs for its
// -job-history depth (1024 by default), so only that many other jobs
// finishing in between could evict the record first (surfaced as a
// not-found error, never a silent loss).
func (c *Client) Wait(ctx context.Context, id string) (Job, error) {
	for {
		terminal, err := c.followEvents(ctx, id)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Job{}, ctxErr
		}
		if err == nil && terminal {
			return c.Job(ctx, id)
		}
		// Stream ended early or never opened: resnapshot, maybe retry.
		j, jerr := c.Job(ctx, id)
		if jerr != nil {
			return Job{}, jerr
		}
		if j.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return Job{}, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// followEvents consumes the event stream until a terminal event (true),
// clean EOF without one (false), or transport error.
func (c *Client) followEvents(ctx context.Context, id string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.send(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, &apiError{Status: resp.StatusCode, Msg: "event stream unavailable"}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return false, nil
			}
			return false, err
		}
		switch e.State {
		case StateDone, StateFailed, StateCanceled:
			return true, nil
		}
	}
}

// Telemetry follows the job's epoch timeline stream
// (GET /v1/jobs/{id}/telemetry), invoking fn per TimelineEpoch in order
// — live while the job runs, replayed from the job record once it
// finished. It returns when the daemon closes the stream (the job turned
// terminal and every epoch was delivered) or on transport error; a job
// without telemetry returns immediately with no calls.
func (c *Client) Telemetry(ctx context.Context, id string, fn func(uc.TimelineEpoch)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/telemetry", nil)
	if err != nil {
		return err
	}
	resp, err := c.send(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return &apiError{Status: resp.StatusCode, Msg: "telemetry stream unavailable"}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var e uc.TimelineEpoch
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		fn(e)
	}
}

// CollectTelemetry follows the job's telemetry stream to completion and
// returns its epochs in order.
func (c *Client) CollectTelemetry(ctx context.Context, id string) ([]uc.TimelineEpoch, error) {
	var out []uc.TimelineEpoch
	err := c.Telemetry(ctx, id, func(e uc.TimelineEpoch) { out = append(out, e) })
	return out, err
}

// await takes a fresh submission's (job, error) pair, waits for the
// terminal state, and converts failed/canceled jobs into errors.
func (c *Client) await(ctx context.Context, j Job, err error) (Job, error) {
	if err != nil {
		return Job{}, err
	}
	if !j.Terminal() {
		if j, err = c.Wait(ctx, j.ID); err != nil {
			return Job{}, err
		}
	}
	switch j.State {
	case StateDone:
		return j, nil
	case StateCanceled:
		return Job{}, fmt.Errorf("unisonserved: job %s canceled", j.ID)
	default:
		return Job{}, fmt.Errorf("unisonserved: job %s failed: %s", j.ID, j.Error)
	}
}

// Execute runs one simulation through the service. The whole operation
// — submit, wait, fetch, any retries — shares one request ID (minted
// here unless the context already carries one), so it reads as a single
// trace in the daemons' logs.
func (c *Client) Execute(ctx context.Context, run uc.Run) (uc.Result, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	j, err := c.SubmitRun(ctx, run)
	if j, err = c.await(ctx, j, err); err != nil {
		return uc.Result{}, err
	}
	if j.Result == nil {
		return uc.Result{}, fmt.Errorf("unisonserved: job %s done without a result", j.ID)
	}
	return *j.Result, nil
}

// ExecuteMany is the service-side ExecuteMany: results in point order.
func (c *Client) ExecuteMany(ctx context.Context, points []uc.Run) ([]uc.Result, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	j, err := c.SubmitSweep(ctx, SweepRequest{Points: points, Mode: ModeExecute})
	if j, err = c.await(ctx, j, err); err != nil {
		return nil, err
	}
	return j.Results, nil
}

// SpeedupMany is the service-side SpeedupMany: per-point speedups over
// memoized no-DRAM-cache baselines, in point order.
func (c *Client) SpeedupMany(ctx context.Context, points []uc.Run) ([]uc.SpeedupResult, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	j, err := c.SubmitSweep(ctx, SweepRequest{Points: points, Mode: ModeSpeedup})
	if j, err = c.await(ctx, j, err); err != nil {
		return nil, err
	}
	return j.Speedups, nil
}

// SweepSampled is the service-side SweepSampled: a CI-target sampled
// speedup sweep under spec.
func (c *Client) SweepSampled(ctx context.Context, points []uc.Run, spec uc.SampleSpec) ([]uc.SpeedupResult, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	j, err := c.SubmitSweep(ctx, SweepRequest{Points: points, Mode: ModeSpeedup, Sample: &spec})
	if j, err = c.await(ctx, j, err); err != nil {
		return nil, err
	}
	return j.Speedups, nil
}
